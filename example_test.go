package srcg_test

import (
	"fmt"

	"srcg"
)

// ExampleTargetNames lists the simulated machines available for discovery.
func ExampleTargetNames() {
	fmt.Println(srcg.TargetNames())
	// Output: [alpha mips sparc vax x86]
}

// ExampleDiscover runs the complete pipeline against a simulated SPARC and
// prints a few discovered facts (deterministic at a fixed seed).
func ExampleDiscover() {
	t := srcg.NewTarget("sparc")
	d, err := srcg.Discover(t, srcg.Options{Seed: 1})
	if err != nil {
		fmt.Println(err)
		return
	}
	r := d.Model.ImmRange["add:1"]
	fmt.Printf("comment char %q, add immediates [%d,%d], %%g0 hardwired to %d\n",
		d.Model.CommentChar, r[0], r[1], d.Model.Hardwired["%g0"])
	fmt.Printf("samples solved: %d, failed: %d\n", len(d.Outcome.Solved), len(d.Outcome.Failed))
	// Output:
	// comment char "!", add immediates [-4096,4095], %g0 hardwired to 0
	// samples solved: 35, failed: 0
}
