package synth

import (
	"fmt"
	"strings"

	"srcg/internal/dfg"
)

// discoverCallees probes the shapes of user procedures with 0, 1, and 2
// parameters: header/footer by diffing increasing local counts (§7.2),
// parameter slots by compiling `w1 = p1; return w1;` and matching the Move
// template, and the return sequence from the probe tails.
func (in Input) discoverCallees(s *Spec) error {
	if s.Const == nil || s.Move == nil {
		return fmt.Errorf("synth: callee probing needs Const and Move templates")
	}
	for nparams := 0; nparams <= 2; nparams++ {
		cm, err := in.discoverCallee(s, nparams)
		if err != nil {
			return fmt.Errorf("synth: callee with %d params: %w", nparams, err)
		}
		s.Callees[nparams] = cm
	}
	return nil
}

func calleeParams(n int) string {
	switch n {
	case 0:
		return ""
	case 1:
		return "int p1"
	default:
		return "int p1, int p2"
	}
}

func (in Input) discoverCallee(s *Spec, nparams int) (*CalleeModel, error) {
	headers := map[int][]string{}
	tails := map[int][]string{}
	var probedSlot string

	for _, k := range probeKs {
		var ws []string
		for i := 1; i <= k; i++ {
			ws = append(ws, fmt.Sprintf("w%d", i))
		}
		src := fmt.Sprintf(`int Q(%s)
{
	int %s;
	%s = %d;
	return %s;
}`, calleeParams(nparams), strings.Join(ws, ", "), ws[k-1], probeMarker, ws[k-1])
		text, err := in.Rig.CompileAsm(src)
		if err != nil {
			return nil, err
		}
		lines := strings.Split(text, "\n")
		idx := -1
		for i, l := range lines {
			if strings.Contains(l, fmt.Sprintf("%d", probeMarker)) {
				idx = i
				break
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("marker not found in callee probe k=%d", k)
		}
		headers[k] = lines[:idx]
		binds, n, err := matchTemplate(s.Const.Lines, lines[idx:],
			map[string]string{"k": fmt.Sprintf("%d", probeMarker)})
		if err != nil {
			return nil, fmt.Errorf("const template mismatch in callee: %w", err)
		}
		slotK := binds["dst"]
		if k == probeKs[len(probeKs)-1] {
			probedSlot = slotK
		}
		var t []string
		for _, l := range lines[idx+n:] {
			t = append(t, strings.ReplaceAll(l, slotK, "{src1}"))
		}
		tails[k] = t
	}
	header, err := parametrizeLines(headers, probeKs)
	if err != nil {
		return nil, err
	}
	// Callee slots follow the same progression as main's, but locals may
	// start after parameter spill slots (register-argument machines).
	// Infer the base from the probed k-th slot.
	kMax := probeKs[len(probeKs)-1]
	pn, _, err := splitSlot(probedSlot)
	if err != nil {
		return nil, err
	}
	idx := (pn - s.Main.Slots.Start) / s.Main.Slots.Stride
	localBase := int(idx) - (kMax - 1)
	if localBase < 0 || localBase > 8 ||
		dfg.NormalizeAddr(s.Main.Slots.Slot(localBase+kMax-1)) != dfg.NormalizeAddr(probedSlot) {
		return nil, fmt.Errorf("callee slot %q does not fit the frame model", probedSlot)
	}

	cm := &CalleeModel{
		NParams:   nparams,
		Frame:     FrameModel{Header: header, Slots: s.Main.Slots},
		LocalBase: localBase,
	}
	retLines, err := parametrizeLines(tails, probeKs)
	if err != nil {
		return nil, fmt.Errorf("callee tail: %w", err)
	}
	cm.RetTail = Template{Name: "Return", Lines: retLines, Instrs: len(retLines)}

	// Parameter slots: `w1 = pN; return w1;` — the body must match the
	// Move template with dst = slot 0.
	for p := 1; p <= nparams; p++ {
		src := fmt.Sprintf(`int Q(%s)
{
	int w1, w2;
	w1 = p%d;
	return w1;
}`, calleeParams(nparams), p)
		text, err := in.Rig.CompileAsm(src)
		if err != nil {
			return nil, err
		}
		lines := strings.Split(text, "\n")
		hdr := cm.Frame.RenderHeader(2)
		if len(lines) < len(hdr) {
			return nil, fmt.Errorf("param probe shorter than header")
		}
		binds, _, err := matchTemplate(s.Move.Lines, lines[len(hdr):],
			map[string]string{"dst": s.Main.Slots.Slot(cm.LocalBase)})
		if err != nil {
			return nil, fmt.Errorf("move template mismatch in param probe: %w", err)
		}
		cm.ParamSlots = append(cm.ParamSlots, binds["src1"])
	}
	return cm, nil
}
