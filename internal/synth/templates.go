package synth

import (
	"fmt"
	"sort"
	"strings"

	"srcg/internal/dfg"
	"srcg/internal/discovery"
	"srcg/internal/ir"
	"srcg/internal/mutate"
)

// Input bundles what the Synthesizer consumes from the earlier phases.
type Input struct {
	Rig      *discovery.Rig
	Model    *discovery.Model
	Engine   *mutate.Engine
	Samples  map[string]*discovery.Sample
	Analyses map[string]*mutate.Analysis
	Slots    dfg.Slots
	Solved   map[string]bool // sample names whose semantics were extracted
}

// irOpSample maps intermediate operations to the sample whose region
// realizes them.
var irOpSample = map[ir.Op]string{
	ir.Add: "int.add.b_c", ir.Sub: "int.sub.b_c", ir.Mul: "int.mul.b_c",
	ir.Div: "int.div.b_c", ir.Mod: "int.mod.b_c", ir.And: "int.and.b_c",
	ir.Or: "int.or.b_c", ir.Xor: "int.xor.b_c", ir.Shl: "int.shl.b_c",
	ir.Shr: "int.shr.b_c", ir.Neg: "int.neg.b", ir.Not: "int.not.b",
}

// negRel maps an intermediate branch relation to the C relation whose
// sample *branches* on it (the sample for `if (b != c)` branches around on
// ==, so its region is the BranchEQ template — the Combiner pairing of §6).
var negRel = map[ir.Rel]string{
	ir.EQ: "ne", ir.NE: "eq", ir.LT: "ge", ir.LE: "gt", ir.GT: "le", ir.GE: "lt",
}

// Synthesize builds the machine description.
func Synthesize(in Input) (*Spec, error) {
	s := &Spec{
		Arch:     in.Model.Arch,
		WordBits: in.Model.WordBits,
		Ops:      map[ir.Op]*Template{},
		Branches: map[ir.Rel]*Template{},
		Calls:    map[int]*Template{},
		Callees:  map[int]*CalleeModel{},
	}

	// Sorted iteration throughout: opTemplate and friends probe the
	// toolchain, and the probe sequence must be identical run to run.
	ops := make([]ir.Op, 0, len(irOpSample))
	for op := range irOpSample {
		ops = append(ops, op)
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i] < ops[j] })
	for _, op := range ops {
		t, err := in.opTemplate(irOpSample[op], op.String())
		if err != nil {
			s.Gaps = append(s.Gaps, op.String())
			continue
		}
		s.Ops[op] = t
	}
	if t, err := in.opTemplate("int.move.b", "Move"); err == nil {
		s.Move = t
	} else {
		s.Gaps = append(s.Gaps, "Move")
	}
	if t, err := in.constTemplate(); err == nil {
		s.Const = t
	} else {
		s.Gaps = append(s.Gaps, "Const")
	}
	rels := make([]ir.Rel, 0, len(negRel))
	for rel := range negRel {
		rels = append(rels, rel)
	}
	sort.Slice(rels, func(i, j int) bool { return rels[i] < rels[j] })
	for _, rel := range rels {
		t, err := in.branchTemplate(negRel[rel], "Branch"+rel.String())
		if err != nil {
			s.Gaps = append(s.Gaps, "Branch"+rel.String())
			continue
		}
		s.Branches[rel] = t
	}
	if t, err := in.jumpTemplate(); err == nil {
		s.Jump = t
	} else {
		s.Gaps = append(s.Gaps, "Jump")
	}
	for n, name := range []string{"int.call.none", "int.call.b", "int.call.b_c"} {
		t, err := in.callTemplate(name, n)
		if err != nil {
			s.Gaps = append(s.Gaps, fmt.Sprintf("Call%d", n))
			continue
		}
		s.Calls[n] = t
	}
	sort.Strings(s.Gaps)

	if err := in.discoverMain(s); err != nil {
		return nil, err
	}
	if err := in.discoverCallees(s); err != nil {
		return nil, err
	}
	in.deriveChains(s)
	// Synthesis telemetry on the run's shared tracer: how much of the
	// machine description materialized, and where the gaps are.
	tr := in.Rig.Trace()
	tr.Count("synth.op_templates", int64(len(s.Ops)))
	tr.Count("synth.branch_templates", int64(len(s.Branches)))
	tr.Count("synth.call_templates", int64(len(s.Calls)))
	tr.Count("synth.gaps", int64(len(s.Gaps)))
	return s, nil
}

// analyzed fetches a sample's analysis, requiring extraction success.
func (in Input) analyzed(name string) (*discovery.Sample, *mutate.Analysis, error) {
	s, ok := in.Samples[name]
	if !ok {
		return nil, nil, fmt.Errorf("synth: no sample %s", name)
	}
	a, ok := in.Analyses[name]
	if !ok {
		return nil, nil, fmt.Errorf("synth: sample %s was not analyzed", name)
	}
	if in.Solved != nil && !in.Solved[name] {
		return nil, nil, fmt.Errorf("synth: sample %s has no verified semantics", name)
	}
	return s, a, nil
}

// substSlots rewrites slot operands to placeholders in a cloned region.
func (in Input) substSlots(region []discovery.Instr, sub map[string]string) []discovery.Instr {
	out := discovery.CloneInstrs(region)
	for i := range out {
		for j := range out[i].Args {
			arg := &out[i].Args[j]
			if arg.Kind != discovery.KMem && arg.Kind != discovery.KSym {
				continue
			}
			if repl, ok := sub[dfg.NormalizeAddr(arg.Text)]; ok {
				arg.Text = repl
			}
		}
	}
	return out
}

// templateLines renders a region as template lines (labels stripped — they
// are sample-local).
func templateLines(region []discovery.Instr) ([]string, int) {
	var lines []string
	n := 0
	for _, ins := range region {
		if ins.Op == "" {
			continue
		}
		bare := ins
		bare.Labels = nil
		lines = append(lines, bare.Text())
		n++
	}
	return lines, n
}

// opTemplate extracts the template realizing `dst = src1 OP src2` (or the
// unary/move `dst = OP src1`) from a sample's analyzed region.
func (in Input) opTemplate(sampleName, tmplName string) (*Template, error) {
	_, a, err := in.analyzed(sampleName)
	if err != nil {
		return nil, err
	}
	region := in.substSlots(a.Region, map[string]string{
		in.Slots.B: "{src1}",
		in.Slots.C: "{src2}",
		in.Slots.A: "{dst}",
	})
	lines, n := templateLines(region)
	return &Template{Name: tmplName, Lines: lines, Instrs: n}, nil
}

// constTemplate extracts `dst = k` from the distinctive-constant sample.
func (in Input) constTemplate() (*Template, error) {
	s, a, err := in.analyzed("int.const.34117")
	if err != nil {
		return nil, err
	}
	region := in.substSlots(a.Region, map[string]string{in.Slots.A: "{dst}"})
	for i := range region {
		for j := range region[i].Args {
			arg := &region[i].Args[j]
			if arg.Kind == discovery.KLit && arg.Lit == s.K {
				arg.Text = strings.Replace(arg.Text, "34117", "{k}", 1)
			}
		}
	}
	lines, n := templateLines(region)
	return &Template{Name: "Const", Lines: lines, Instrs: n}, nil
}

// branchTemplate extracts `if (src1 REL src2) goto label` from the
// conditional sample that branches on REL: everything in the region except
// the guarded store, with the branch target abstracted.
func (in Input) branchTemplate(cRel, tmplName string) (*Template, error) {
	_, a, err := in.analyzed("int.cond." + cRel + ".lt")
	if err != nil {
		// Any flavor will do.
		if _, a, err = in.analyzed("int.cond." + cRel + ".gt"); err != nil {
			return nil, err
		}
	}
	region := in.substSlots(a.Region, map[string]string{
		in.Slots.B: "{src1}",
		in.Slots.C: "{src2}",
	})
	var kept []discovery.Instr
	branched := false
	for _, ins := range region {
		if ins.Op == "" {
			continue
		}
		if branched {
			// The branch semantically ends the template; what follows is
			// the guarded statement — except operand-less padding, which
			// may be filling a delay slot (SPARC's nop) and must stay.
			if len(ins.Args) != 0 {
				continue
			}
			kept = append(kept, ins)
			continue
		}
		for j := range ins.Args {
			if ins.Args[j].Kind == discovery.KLabelRef {
				ins.Args[j].Text = "{label}"
				branched = true
			}
		}
		kept = append(kept, ins)
	}
	lines, n := templateLines(kept)
	if n == 0 {
		return nil, fmt.Errorf("synth: empty branch template for %s", cRel)
	}
	return &Template{Name: tmplName, Lines: lines, Instrs: n}, nil
}

// callTemplate extracts `dst = fn(src1, ...)` from a call sample.
func (in Input) callTemplate(sampleName string, nargs int) (*Template, error) {
	_, a, err := in.analyzedCall(sampleName)
	if err != nil {
		return nil, err
	}
	// Use the pre-elimination region: an argument push whose stack cell
	// happens to alias a sample variable's slot is invisible to mutation
	// analysis, but very much required by the convention.
	region := in.substSlots(a.RegionPreElim, map[string]string{
		in.Slots.B: "{src1}",
		in.Slots.C: "{src2}",
		in.Slots.A: "{dst}",
	})
	for i := range region {
		for j := range region[i].Args {
			arg := &region[i].Args[j]
			if arg.Kind == discovery.KSym && strings.HasPrefix(arg.Sym, "P") {
				arg.Text = "{fn}"
			}
		}
	}
	lines, n := templateLines(region)
	return &Template{Name: fmt.Sprintf("Call%d", nargs), Lines: lines, Instrs: n}, nil
}

// analyzedCall is analyzed() without the solved-semantics requirement
// (calls to arbitrary procedures are convention templates, not semantics).
func (in Input) analyzedCall(name string) (*discovery.Sample, *mutate.Analysis, error) {
	s, ok := in.Samples[name]
	if !ok {
		return nil, nil, fmt.Errorf("synth: no sample %s", name)
	}
	a, ok := in.Analyses[name]
	if !ok {
		return nil, nil, fmt.Errorf("synth: sample %s was not analyzed", name)
	}
	return s, a, nil
}

// jumpTemplate discovers the unconditional branch: candidate opcodes are
// the label-target instructions of the harness's goto maze, validated by
// substituting them for a conditional branch and observing that the guard
// is now always taken (the store is always skipped).
func (in Input) jumpTemplate() (*Template, error) {
	s, a, err := in.analyzed("int.cond.lt.lt")
	if err != nil {
		return nil, err
	}
	// Candidate opcodes by frequency across one full text.
	freq := map[string]int{}
	labels := map[string]bool{}
	lines := strings.Split(s.FullAsm, "\n")
	type cand struct {
		op string
		n  int
	}
	for _, raw := range lines {
		t := strings.TrimSpace(raw)
		if i := strings.Index(t, ":"); i >= 0 && !strings.ContainsAny(t[:i], " \t") {
			labels[t[:i]] = true
		}
	}
	for _, raw := range lines {
		t := strings.TrimSpace(raw)
		parts := strings.Fields(t)
		if len(parts) == 2 && labels[parts[1]] {
			freq[parts[0]]++
		}
	}
	var cands []cand
	for op, n := range freq {
		cands = append(cands, cand{op, n})
	}
	// Tiebreak on the opcode name: equal counts must not leave the probe
	// order to the map iteration above.
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].n != cands[j].n {
			return cands[i].n > cands[j].n
		}
		return cands[i].op < cands[j].op
	})

	// The probe region: the conditional sample with its branch replaced.
	branchIdx := -1
	var target string
	for i, ins := range a.Region {
		for _, arg := range ins.Args {
			if arg.Kind == discovery.KLabelRef {
				branchIdx = i
				target = arg.Sym
			}
		}
	}
	if branchIdx < 0 {
		return nil, fmt.Errorf("synth: no branch in conditional region")
	}
	for _, c := range cands {
		region := discovery.CloneInstrs(a.Region)
		region[branchIdx] = discovery.Instr{
			Op:     c.op,
			Labels: region[branchIdx].Labels,
			Args: []discovery.Operand{{
				Text: target, Kind: discovery.KLabelRef, Sym: target,
			}},
		}
		ok := true
		for vi, v := range s.Valuations() {
			out, err := in.Engine.OutputOf(s, region, vi)
			if err != nil || out != fmt.Sprintf("%d\n", int32(v.A0)) {
				ok = false
				break
			}
		}
		if ok {
			return &Template{Name: "Jump", Lines: []string{"\t" + c.op + " {label}"}, Instrs: 1}, nil
		}
	}
	return nil, fmt.Errorf("synth: no unconditional branch discovered")
}
