package synth

import (
	"strings"

	"srcg/internal/discovery"
)

// deriveChains looks for addressing-mode chain rules (Fig. 15 b/c): a
// displacement mode with its constant specialized to 0 coinciding with the
// stripped (register-indirect) form. The check is purely behavioral: two
// mutants of the move sample whose source operand is rewritten to each
// form must assemble and produce identical output — whatever cell they
// now read, they read the same one.
func (in Input) deriveChains(s *Spec) {
	smp, ok := in.Samples["int.move.b"]
	if !ok {
		return
	}
	a, ok := in.Analyses["int.move.b"]
	if !ok {
		return
	}
	raw, err := in.rawSlot(in.Slots.B)
	if err != nil {
		return
	}
	_, pattern, err := splitSlot(raw)
	if err != nil {
		return
	}
	zeroForms := []string{
		renderPattern(pattern, "0"),
		renderPattern(pattern, "+0"),
	}
	stripped := strippedForm(pattern)

	rewrite := func(form string) ([]discovery.Instr, bool) {
		region := discovery.CloneInstrs(a.Region)
		found := false
		for i := range region {
			for j := range region[i].Args {
				if region[i].Args[j].Text == raw {
					region[i].Args[j].Text = form
					found = true
				}
			}
		}
		return region, found
	}
	outOf := func(form string) (string, bool) {
		region, found := rewrite(form)
		if !found {
			return "", false
		}
		out, err := in.Engine.OutputOf(smp, region, 0)
		if err != nil {
			return "", false
		}
		return out, true
	}

	strippedOut, okStripped := outOf(stripped)
	if !okStripped {
		return
	}
	for _, zf := range zeroForms {
		if zo, ok := outOf(zf); ok && zo == strippedOut {
			dispMode := strings.ReplaceAll(renderShape(pattern, "⟨n⟩"), "%", "%")
			regMode := renderShape(strippedPattern(pattern), "")
			s.Chains = append(s.Chains, ChainRule{ModeA: dispMode, ModeB: regMode, Constant: 0})
			return
		}
	}
}

// renderPattern instantiates a splitSlot pattern with a literal string in
// place of the %d verb.
func renderPattern(pattern, num string) string {
	p := strings.Replace(pattern, "%d", "\x00", 1)
	p = strings.ReplaceAll(p, "%%", "%")
	return strings.Replace(p, "\x00", num, 1)
}

// strippedForm removes the displacement (and its sign) from the pattern.
func strippedForm(pattern string) string {
	return renderPattern(strippedPattern(pattern), "")
}

// strippedPattern removes the %d verb and any directly preceding sign.
func strippedPattern(pattern string) string {
	i := strings.Index(pattern, "%d")
	if i < 0 {
		return pattern
	}
	j := i
	for j > 0 && (pattern[j-1] == '-' || pattern[j-1] == '+') {
		j--
	}
	return pattern[:j] + "%d" + pattern[i+2:]
}

// renderShape renders a mode shape for documentation (⟨n⟩ marker in place
// of the displacement).
func renderShape(pattern, marker string) string {
	return renderPattern(pattern, marker)
}
