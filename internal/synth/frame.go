package synth

import (
	"fmt"
	"sort"
	"strings"

	"srcg/internal/dfg"
	"srcg/internal/discovery"
)

// probeMarker is a distinctive constant planted in frame probes.
const probeMarker = 29313

// probeKs are the local counts probed. Even counts only: frame sizes may
// be rounded to an alignment, which is linear on a fixed parity; the
// generated back end rounds its local count up to even.
var probeKs = []int{4, 6, 8}

// rawSlot finds the raw operand text for a normalized slot address by
// scanning an analyzed region.
func (in Input) rawSlot(norm string) (string, error) {
	for _, name := range []string{"int.move.b", "int.add.b_c", "int.const.34117"} {
		a, ok := in.Analyses[name]
		if !ok {
			continue
		}
		for _, ins := range a.Region {
			for _, arg := range ins.Args {
				if (arg.Kind == discovery.KMem || arg.Kind == discovery.KSym) &&
					dfg.NormalizeAddr(arg.Text) == norm {
					return arg.Text, nil
				}
			}
		}
	}
	return "", fmt.Errorf("synth: no raw operand found for slot %q", norm)
}

// discoverMain probes the shape of `main` by compiling programs with
// increasing local counts and diffing the results — the paper's §7.2
// recipe ("compiling int P(){}, int P(){int a;}, ... will result in
// procedure headers which only differ in the amount of stack space"). It
// also derives the print and exit templates from the probe's tail.
func (in Input) discoverMain(s *Spec) error {
	if s.Const == nil {
		return fmt.Errorf("synth: frame probing needs the Const template")
	}
	headers := map[int][]string{}
	tails := map[int][]string{}
	var probedSlot string // raw text of the last local's slot at k=max

	for _, k := range probeKs {
		text, err := in.Rig.CompileAsm(mainProbe(k))
		if err != nil {
			return fmt.Errorf("synth: frame probe k=%d: %w", k, err)
		}
		lines := strings.Split(text, "\n")
		idx := -1
		for i, l := range lines {
			if strings.Contains(l, fmt.Sprintf("%d", probeMarker)) {
				idx = i
				break
			}
		}
		if idx < 0 {
			return fmt.Errorf("synth: frame probe k=%d: marker not found", k)
		}
		headers[k] = lines[:idx]
		binds, n, err := matchTemplate(s.Const.Lines,
			lines[idx:], map[string]string{"k": fmt.Sprintf("%d", probeMarker)})
		if err != nil {
			return fmt.Errorf("synth: frame probe: const template mismatch: %w", err)
		}
		slotK := binds["dst"]
		if k == probeKs[len(probeKs)-1] {
			probedSlot = slotK
		}
		// Abstract the probed slot per k so the only remaining variation
		// in the tail is the frame size (footer stack adjustments).
		var t []string
		for _, l := range lines[idx+n:] {
			t = append(t, strings.ReplaceAll(l, slotK, "{src1}"))
		}
		tails[k] = t
	}

	header, err := parametrizeLines(headers, probeKs)
	if err != nil {
		return fmt.Errorf("synth: main header: %w", err)
	}
	tail, err := parametrizeLines(tails, probeKs)
	if err != nil {
		return fmt.Errorf("synth: main tail: %w", err)
	}
	slots, err := in.slotModel()
	if err != nil {
		return err
	}
	kMax := probeKs[len(probeKs)-1]
	if dfg.NormalizeAddr(slots.Slot(kMax-1)) != dfg.NormalizeAddr(probedSlot) {
		return fmt.Errorf("synth: slot extrapolation mismatch: computed %q, probed %q",
			slots.Slot(kMax-1), probedSlot)
	}
	s.Main = FrameModel{Header: header, Slots: slots}

	printfIdx := -1
	for i, l := range tail {
		if discovery.HasToken(l, "printf") {
			printfIdx = i
			break
		}
	}
	if printfIdx < 0 {
		return fmt.Errorf("synth: printf not found in probe tail")
	}
	s.Print = &Template{Name: "Print", Lines: append([]string(nil), tail[:printfIdx+1]...),
		Instrs: printfIdx + 1}
	s.ExitTail = append([]string(nil), tail[printfIdx+1:]...)
	return nil
}

// mainProbe is a standalone main with k locals whose last local is set to
// the marker, printed, then the program exits.
func mainProbe(k int) string {
	var names []string
	for i := 1; i <= k; i++ {
		names = append(names, fmt.Sprintf("v%d", i))
	}
	return fmt.Sprintf(`main() {
	int %s;
	%s = %d;
	printf("%%i\n", %s);
	exit(0);
}`, strings.Join(names, ", "), names[k-1], probeMarker, names[k-1])
}

// slotModel derives the arithmetic progression of frame slots from the
// three bound variable slots (raw operand forms).
func (in Input) slotModel() (SlotModel, error) {
	nums := make([]int64, 3)
	var pattern string
	for i, norm := range []string{in.Slots.A, in.Slots.B, in.Slots.C} {
		raw, err := in.rawSlot(norm)
		if err != nil {
			return SlotModel{}, err
		}
		n, pat, err := splitSlot(raw)
		if err != nil {
			return SlotModel{}, err
		}
		nums[i] = n
		if i == 0 {
			pattern = pat
		} else if pat != pattern {
			return SlotModel{}, fmt.Errorf("synth: slot patterns differ: %q vs %q", pattern, pat)
		}
	}
	stride := nums[1] - nums[0]
	if nums[2]-nums[1] != stride || stride == 0 {
		return SlotModel{}, fmt.Errorf("synth: slots not in arithmetic progression: %v", nums)
	}
	return SlotModel{Pattern: pattern, Start: nums[0], Stride: stride}, nil
}

// splitSlot extracts the integer from a raw slot operand and returns a
// fmt pattern reproducing it ("-4(%ebp)" -> -4 with "%d(%%ebp)").
func splitSlot(slot string) (int64, string, error) {
	start, end := -1, -1
	for i := 0; i < len(slot); i++ {
		c := slot[i]
		if c >= '0' && c <= '9' {
			if start < 0 {
				start = i
				if i > 0 && (slot[i-1] == '-' || slot[i-1] == '+') {
					start = i - 1
				}
			}
			end = i + 1
		} else if start >= 0 {
			break
		}
	}
	if start < 0 {
		return 0, "", fmt.Errorf("synth: no offset in slot %q", slot)
	}
	var n int64
	if _, err := fmt.Sscanf(strings.TrimPrefix(slot[start:end], "+"), "%d", &n); err != nil {
		return 0, "", err
	}
	esc := func(x string) string { return strings.ReplaceAll(x, "%", "%%") }
	return n, esc(slot[:start]) + "%d" + esc(slot[end:]), nil
}

// parametrizeLines merges per-k line lists into one template: lines must
// agree except for single integer tokens varying linearly with k.
func parametrizeLines(byK map[int][]string, ks []int) ([]string, error) {
	base := byK[ks[0]]
	for _, k := range ks {
		if len(byK[k]) != len(base) {
			return nil, fmt.Errorf("header line count varies with locals (%d vs %d)", len(byK[k]), len(base))
		}
	}
	out := make([]string, len(base))
	for i := range base {
		same := true
		for _, k := range ks[1:] {
			if byK[k][i] != base[i] {
				same = false
			}
		}
		if same {
			out[i] = base[i]
			continue
		}
		// Derive the shared prefix/suffix from any differing pair, then
		// read each k's value out of its line.
		var prefix, suffix string
		found := false
		for _, k := range ks[1:] {
			if byK[k][i] != base[i] {
				p, sfx, _, ok := diffInt(base[i], byK[k][i])
				if !ok {
					return nil, fmt.Errorf("non-numeric variation in header line %q", base[i])
				}
				prefix, suffix = p, sfx
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("inconsistent header line %q", base[i])
		}
		vals := map[int]int64{}
		for _, k := range ks {
			l := byK[k][i]
			if !strings.HasPrefix(l, prefix) || !strings.HasSuffix(l, suffix) ||
				len(l) < len(prefix)+len(suffix) {
				return nil, fmt.Errorf("irregular header line %q", l)
			}
			var v int64
			if _, err := fmt.Sscanf(l[len(prefix):len(l)-len(suffix)], "%d", &v); err != nil {
				return nil, fmt.Errorf("non-numeric variation in header line %q", l)
			}
			vals[k] = v
		}
		// Fit n(k) = c0 + stride*k over the probed points.
		dk := int64(ks[1] - ks[0])
		stride := (vals[ks[1]] - vals[ks[0]]) / dk
		c0 := vals[ks[0]] - stride*int64(ks[0])
		for _, k := range ks {
			if vals[k] != c0+stride*int64(k) {
				return nil, fmt.Errorf("non-linear frame growth in %q", base[i])
			}
		}
		out[i] = fmt.Sprintf("%s{frame:%d:%d}%s", prefix, c0, stride, suffix)
	}
	return out, nil
}

// diffInt locates the single integer token at which two otherwise equal
// lines differ, returning the shared prefix/suffix and the value in b.
func diffInt(a, b string) (prefix, suffix string, v int64, ok bool) {
	i := 0
	for i < len(a) && i < len(b) && a[i] == b[i] {
		i++
	}
	for i > 0 && isDigitByte(b[i-1]) {
		i--
	}
	if i > 0 && b[i-1] == '-' {
		i--
	}
	ja, jb := len(a), len(b)
	for ja > i && jb > i && a[ja-1] == b[jb-1] {
		ja--
		jb--
	}
	for jb < len(b) && isDigitByte(b[jb]) {
		jb++
	}
	numB := b[i:jb]
	if numB == "" {
		return "", "", 0, false
	}
	if _, err := fmt.Sscanf(numB, "%d", &v); err != nil {
		return "", "", 0, false
	}
	return b[:i], b[jb:], v, true
}

func isDigitByte(c byte) bool { return c >= '0' && c <= '9' }

// matchTemplate matches template lines (with {placeholders}) against
// actual lines, given some placeholder bindings; it returns the full
// binding set and the number of lines consumed.
func matchTemplate(tmpl, actual []string, binds map[string]string) (map[string]string, int, error) {
	out := map[string]string{}
	for k, v := range binds {
		out[k] = v
	}
	if len(actual) < len(tmpl) {
		return nil, 0, fmt.Errorf("template longer than input")
	}
	for i, tl := range tmpl {
		// Pre-substitute known bindings (in sorted order — a binding value
		// containing a brace pair must not make the match depend on map
		// iteration order) so literals line up. Recollected per line:
		// matchLine adds bindings as lines match.
		keys := make([]string, 0, len(out))
		for k := range out {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			tl = strings.ReplaceAll(tl, "{"+k+"}", out[k])
		}
		if err := matchLine(tl, actual[i], out); err != nil {
			return nil, 0, fmt.Errorf("line %d: %w", i, err)
		}
	}
	return out, len(tmpl), nil
}

// matchLine unifies one template line against one actual line.
func matchLine(tmpl, actual string, binds map[string]string) error {
	ti, ai := 0, 0
	for ti < len(tmpl) {
		if tmpl[ti] == '{' {
			end := strings.IndexByte(tmpl[ti:], '}')
			if end < 0 {
				return fmt.Errorf("malformed template %q", tmpl)
			}
			name := tmpl[ti+1 : ti+end]
			ti += end + 1
			next := tmpl[ti:]
			stop := len(actual)
			if next != "" {
				lit := next
				if j := strings.IndexByte(next, '{'); j >= 0 {
					lit = next[:j]
				}
				k := strings.Index(actual[ai:], lit)
				if k < 0 {
					return fmt.Errorf("literal %q not found in %q", lit, actual)
				}
				stop = ai + k
			}
			val := actual[ai:stop]
			if old, ok := binds[name]; ok && old != val {
				return fmt.Errorf("placeholder %s: %q vs %q", name, old, val)
			}
			binds[name] = val
			ai = stop
			continue
		}
		if ai >= len(actual) || actual[ai] != tmpl[ti] {
			return fmt.Errorf("mismatch at %q vs %q", tmpl[ti:], actual[ai:])
		}
		ti++
		ai++
	}
	if ai != len(actual) {
		return fmt.Errorf("trailing text %q", actual[ai:])
	}
	return nil
}
