package synth

import (
	"testing"
)

func TestSplitSlot(t *testing.T) {
	cases := []struct {
		slot    string
		n       int64
		pattern string
	}{
		{"-4(%ebp)", -4, "%%d(%%%%ebp)"},
		{"[%fp-8]", -8, ""},
		{"8($sp)", 8, ""},
		{"-4(fp)", -4, ""},
	}
	for _, c := range cases {
		n, pat, err := splitSlot(c.slot)
		if err != nil {
			t.Errorf("splitSlot(%q): %v", c.slot, err)
			continue
		}
		if n != c.n {
			t.Errorf("splitSlot(%q) n = %d, want %d", c.slot, n, c.n)
		}
		// The pattern must round-trip.
		if got := renderPattern(pat, itoa(n)); got != c.slot {
			t.Errorf("pattern %q renders %q, want %q", pat, got, c.slot)
		}
	}
}

func itoa(n int64) string {
	if n < 0 {
		return "-" + itoa(-n)
	}
	if n < 10 {
		return string(rune('0' + n))
	}
	return itoa(n/10) + string(rune('0'+n%10))
}

func TestSlotModelRendering(t *testing.T) {
	m := SlotModel{Pattern: "%d(%%ebp)", Start: -4, Stride: -4}
	if m.Slot(0) != "-4(%ebp)" || m.Slot(3) != "-16(%ebp)" {
		t.Errorf("slots: %q %q", m.Slot(0), m.Slot(3))
	}
	m2 := SlotModel{Pattern: "[%%fp%d]", Start: -4, Stride: -4}
	if m2.Slot(1) != "[%fp-8]" {
		t.Errorf("sparc slot: %q", m2.Slot(1))
	}
}

func TestParametrizeLines(t *testing.T) {
	byK := map[int][]string{
		4: {"\tpushl %ebp", "\tsubl $16, %esp"},
		6: {"\tpushl %ebp", "\tsubl $24, %esp"},
		8: {"\tpushl %ebp", "\tsubl $32, %esp"},
	}
	out, err := parametrizeLines(byK, []int{4, 6, 8})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != "\tpushl %ebp" {
		t.Errorf("constant line changed: %q", out[0])
	}
	if got := RenderFrameLine(out[1], 10); got != "\tsubl $40, %esp" {
		t.Errorf("render k=10: %q (template %q)", got, out[1])
	}
}

func TestParametrizeRejectsNonLinear(t *testing.T) {
	byK := map[int][]string{
		4: {"\tsubl $16, %esp"},
		6: {"\tsubl $24, %esp"},
		8: {"\tsubl $40, %esp"},
	}
	if _, err := parametrizeLines(byK, []int{4, 6, 8}); err == nil {
		t.Error("non-linear growth must be rejected")
	}
}

func TestMatchLine(t *testing.T) {
	binds := map[string]string{}
	if err := matchLine("\tmovl ${k}, {dst}", "\tmovl $29313, -32(%ebp)", binds); err != nil {
		t.Fatal(err)
	}
	if binds["k"] != "29313" || binds["dst"] != "-32(%ebp)" {
		t.Errorf("binds = %v", binds)
	}
	// Conflicting rebinding must fail.
	if err := matchLine("\taddl {dst}, {dst}", "\taddl %eax, %ebx", map[string]string{}); err == nil {
		t.Error("conflicting placeholder must fail")
	}
	if err := matchLine("\tmovl ${k}", "\taddl $5", map[string]string{}); err == nil {
		t.Error("literal mismatch must fail")
	}
}

func TestMatchTemplateWithKnownBindings(t *testing.T) {
	tmpl := []string{"\tset {k}, %l0", "\tst %l0, {dst}"}
	actual := []string{"\tset 29313, %l0", "\tst %l0, [%fp-32]"}
	binds, n, err := matchTemplate(tmpl, actual, map[string]string{"k": "29313"})
	if err != nil || n != 2 {
		t.Fatalf("match: %v n=%d", err, n)
	}
	if binds["dst"] != "[%fp-32]" {
		t.Errorf("dst = %q", binds["dst"])
	}
}

func TestTemplateRender(t *testing.T) {
	tm := &Template{Lines: []string{"\tadd {src1}, {src2}, {dst}"}}
	got := tm.Render(map[string]string{"src1": "%l0", "src2": "%l1", "dst": "%l2"})
	if got[0] != "\tadd %l0, %l1, %l2" {
		t.Errorf("render = %q", got[0])
	}
}

func TestRenderFrameLine(t *testing.T) {
	if got := RenderFrameLine("\tsave %sp, -{frame:96:4}, %sp", 6); got != "\tsave %sp, -120, %sp" {
		t.Errorf("render = %q", got)
	}
	if got := RenderFrameLine("\tnop", 6); got != "\tnop" {
		t.Errorf("render = %q", got)
	}
}

func TestStrippedPattern(t *testing.T) {
	if got := strippedForm("%d(%%ebp)"); got != "(%ebp)" {
		t.Errorf("stripped = %q", got)
	}
	if got := strippedForm("[%%fp%d]"); got != "[%fp]" {
		t.Errorf("stripped = %q", got)
	}
}
