// Package synth implements the Synthesizer (paper §6): it collects
// everything the earlier phases discovered and converts it into a machine
// description — code templates for every intermediate-code operation
// (combinations of machine instructions where needed, the Combiner's job),
// a parametric stack-frame model probed per §7.2's header/footer trick,
// addressing-mode chain rules (Fig. 15 b/c), and a rendered BEG-style
// specification (Fig. 15).
package synth

import (
	"fmt"
	"sort"
	"strings"

	"srcg/internal/discovery"
	"srcg/internal/ir"
)

// Template is a sequence of instruction lines with placeholders:
// {src1} {src2} {dst} — frame slots; {k} — an integer constant;
// {label} — a code label; {fn} — a call target.
type Template struct {
	Name  string
	Lines []string
	// Instrs counts machine instructions — the Combiner statistic (how
	// many instructions cover one intermediate-code operation).
	Instrs int
}

// Render substitutes placeholders. Keys are applied in sorted order so a
// substitution value that itself contains a placeholder cannot make the
// result depend on map iteration order.
func (t *Template) Render(sub map[string]string) []string {
	keys := make([]string, 0, len(sub))
	for k := range sub {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, 0, len(t.Lines))
	for _, l := range t.Lines {
		for _, k := range keys {
			l = strings.ReplaceAll(l, "{"+k+"}", sub[k])
		}
		out = append(out, l)
	}
	return out
}

// SlotModel renders frame slots: slot i has the shape Pattern with the
// integer Start + i*Stride.
type SlotModel struct {
	Pattern string // e.g. "%d(%%ebp)" — rendered with the offset
	Start   int64
	Stride  int64
}

// Slot renders the i-th frame slot operand.
func (m SlotModel) Slot(i int) string {
	return fmt.Sprintf(m.Pattern, m.Start+int64(i)*m.Stride)
}

// FrameModel is a parametric function skeleton discovered by compiling
// increasingly complex procedures (§7.2): header and footer lines where
// one integer token varies linearly with the local count.
type FrameModel struct {
	Header []string // lines with {frame:<base>:<stride>} placeholders
	Slots  SlotModel
}

// RenderHeader instantiates the header for n local slots.
func (f *FrameModel) RenderHeader(n int) []string {
	out := make([]string, 0, len(f.Header))
	for _, l := range f.Header {
		out = append(out, renderFrameLine(l, n))
	}
	return out
}

// RenderFrameLine substitutes {frame:base:stride} placeholders for a
// function with n local slots.
func RenderFrameLine(l string, n int) string { return renderFrameLine(l, n) }

func renderFrameLine(l string, n int) string {
	for {
		i := strings.Index(l, "{frame:")
		if i < 0 {
			return l
		}
		j := strings.Index(l[i:], "}")
		var base, stride int64
		fmt.Sscanf(l[i:i+j+1], "{frame:%d:%d}", &base, &stride)
		l = l[:i] + fmt.Sprintf("%d", base+stride*int64(n)) + l[i+j+1:]
	}
}

// CalleeModel is the discovered shape of a user procedure with a given
// parameter count.
type CalleeModel struct {
	NParams int
	Frame   FrameModel
	// LocalBase is the slot index of the first local: parameter spill
	// slots may precede locals in the frame (register-argument machines).
	LocalBase  int
	ParamSlots []string // operand text for each incoming parameter
	// RetTail computes `return {src}` plus the footer.
	RetTail Template
}

// ChainRule records that two addressing-mode shapes coincide under a
// constant specialization (Fig. 15 b/c: register+offset with offset 0 is
// the register-indirect mode).
type ChainRule struct {
	ModeA, ModeB string
	Constant     int64
}

// Spec is the complete synthesized machine description.
type Spec struct {
	Arch     string
	WordBits int

	Ops      map[ir.Op]*Template  // binary/unary operations
	Move     *Template            // {dst} = {src1}
	Const    *Template            // {dst} = {k}
	Branches map[ir.Rel]*Template // branch to {label} if {src1} REL {src2}
	Jump     *Template            // unconditional branch to {label}
	Calls    map[int]*Template    // n-argument call: {fn}, {src1..}, {dst}
	Print    *Template            // print {src1} (terminal, followed by Exit)
	ExitTail []string             // exit sequence + trailing data/footer lines

	Main    FrameModel
	Callees map[int]*CalleeModel

	Chains []ChainRule

	// Gaps lists intermediate-code operations with no covering template
	// (the paper's "almost correct" specifications, §7.2).
	Gaps []string
}

// Coverage returns the Combiner report: instructions per covered
// intermediate-code operation.
func (s *Spec) Coverage() map[string]int {
	out := map[string]int{}
	for op, t := range s.Ops {
		out[op.String()] = t.Instrs
	}
	if s.Move != nil {
		out["Move"] = s.Move.Instrs
	}
	if s.Const != nil {
		out["Const"] = s.Const.Instrs
	}
	for rel, t := range s.Branches {
		out["Branch"+rel.String()] = t.Instrs
	}
	if s.Jump != nil {
		out["Jump"] = s.Jump.Instrs
	}
	for n, t := range s.Calls {
		out[fmt.Sprintf("Call%d", n)] = t.Instrs
	}
	return out
}

// RenderBEG prints the specification in a BEG-like rule syntax (Fig. 15).
func (s *Spec) RenderBEG(m *discovery.Model) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "/* BEG machine description for %s — generated by the\n", s.Arch)
	fmt.Fprintf(&sb, "   architecture discovery unit (Collberg, PLDI'97 reproduction). */\n\n")
	fmt.Fprintf(&sb, "TARGET %s;  WORDBITS %d;\n", s.Arch, s.WordBits)
	fmt.Fprintf(&sb, "REGISTERS %s;\n\n", strings.Join(m.Registers, " "))
	for _, mode := range m.Modes {
		fmt.Fprintf(&sb, "ADDRESSING MODE %s;\n", mode)
	}
	for _, c := range s.Chains {
		fmt.Fprintf(&sb, "CHAIN %s -> %s  CONDITION{offset=%d}; COST 0;\n", c.ModeA, c.ModeB, c.Constant)
	}
	sb.WriteString("\n")

	rule := func(name string, t *Template, args string) {
		if t == nil {
			return
		}
		fmt.Fprintf(&sb, "RULE %s %s;\n  COST %d;\n  EMIT {\n", name, args, t.Instrs)
		for _, l := range t.Lines {
			fmt.Fprintf(&sb, "    print %q;\n", strings.TrimSpace(l))
		}
		sb.WriteString("  }\n")
	}
	ops := make([]ir.Op, 0, len(s.Ops))
	for op := range s.Ops {
		ops = append(ops, op)
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i] < ops[j] })
	for _, op := range ops {
		rule(op.String(), s.Ops[op], "Mem.src1 Mem.src2 -> Mem.dst")
	}
	rule("Move", s.Move, "Mem.src1 -> Mem.dst")
	rule("Const", s.Const, "IntConstant.k -> Mem.dst")
	rels := make([]ir.Rel, 0, len(s.Branches))
	for r := range s.Branches {
		rels = append(rels, r)
	}
	sort.Slice(rels, func(i, j int) bool { return rels[i] < rels[j] })
	for _, r := range rels {
		rule("Branch"+r.String(), s.Branches[r], "Label.l Mem.src1 Mem.src2")
	}
	rule("Jump", s.Jump, "Label.l")
	for n := 0; n <= 6; n++ {
		if t, ok := s.Calls[n]; ok {
			rule(fmt.Sprintf("Call%d", n), t, "Proc.fn ... -> Mem.dst")
		}
	}
	if len(s.Gaps) > 0 {
		fmt.Fprintf(&sb, "\n/* uncovered intermediate operations: %s */\n", strings.Join(s.Gaps, " "))
	}
	return sb.String()
}
