// Package pool is the parallel probe engine's fan-out seam — the one
// package directory in the analysis tree allowed to own goroutines (the
// gohygiene analyzer audits exactly this seam). It fans independent units
// of probe work across Workers goroutines against forked probers and
// reduces the results in task order.
//
// Determinism contract (DESIGN §10): every task runs on a Prober fork —
// its own virtual clock, counters, and noisy-latch snapshot — so a task's
// behavior and telemetry are a pure function of its inputs, independent
// of scheduling. The parent joins the forks' bundles strictly in task
// index order, and the serial path (workers ≤ 1) drives the identical
// fork/join machinery, so discovery results and traces are byte-identical
// at any worker count. Fault injection (internal/faulty) schedules faults
// by global call order and is the one declared exception: determinism
// under injected faults holds at workers=1 only.
package pool

import (
	"sync"
	"sync/atomic"

	"srcg/internal/discovery"
	"srcg/internal/probe"
)

// Counter names the pool maintains on the parent prober's tracer. They
// are unsealed (obs.Unsealed): strategy numbers, visible in reports but
// excluded from the sealed trace so worker count cannot perturb it.
const (
	// CtrBatches counts Run invocations (one fan-out each).
	CtrBatches = "probe.pool_batches"
	// CtrTasks counts tasks fanned out across all batches.
	CtrTasks = "probe.pool_tasks"
	// CtrWorkers accumulates the effective worker count per batch; with
	// CtrBatches it yields the mean fan-out width.
	CtrWorkers = "probe.pool_workers"
)

// Run fans n independent tasks over workers goroutines. Each task
// receives its index and a forked Prober; results land in task order, and
// each fork's telemetry joins the parent in task order too (a completed
// task's bundle is joined as soon as all lower-indexed tasks have
// joined). workers ≤ 1, or n < 2, runs the tasks inline on the same
// fork/join path.
func Run[R any](p *probe.Prober, workers, n int, task func(i int, sub *probe.Prober) R) []R {
	out := make([]R, n)
	if n == 0 {
		return out
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	tr := p.Tracer()
	tr.Count(CtrBatches, 1)
	tr.Count(CtrTasks, int64(n))
	tr.Count(CtrWorkers, int64(workers))

	// Fork every task's prober up front: each fork snapshots the parent's
	// noisy latch at batch start, so the snapshot a task sees cannot
	// depend on which earlier tasks happened to finish first.
	subs := make([]*probe.Prober, n)
	for i := range subs {
		subs[i] = p.Fork()
	}

	if workers == 1 {
		for i := 0; i < n; i++ {
			out[i] = task(i, subs[i])
			p.Join(subs[i])
		}
		return out
	}

	done := make([]chan struct{}, n)
	for i := range done {
		done[i] = make(chan struct{})
	}
	next := int64(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				func() {
					defer close(done[i])
					out[i] = task(i, subs[i])
				}()
			}
		}()
	}
	// Ordered reduction: join bundle i only after bundles 0..i-1.
	for i := 0; i < n; i++ {
		<-done[i]
		p.Join(subs[i])
	}
	wg.Wait()
	return out
}

// RunRig is Run at the Rig level: each task receives a single-worker Rig
// wrapping the forked prober, so existing probe helpers (Accepts,
// LinkRun, the mutation engine) work unchanged inside a task. The fan-out
// width is r.Workers.
func RunRig[R any](r *discovery.Rig, n int, task func(i int, sub *discovery.Rig) R) []R {
	return Run(r.P, r.Workers, n, func(i int, sub *probe.Prober) R {
		return task(i, &discovery.Rig{TC: r.TC, P: sub, Workers: 1})
	})
}
