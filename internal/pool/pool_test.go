package pool

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"srcg/internal/asm"
	"srcg/internal/obs"
	"srcg/internal/probe"
	"srcg/internal/target"
)

// pure is a stateless, thread-safe toolchain: every answer is a pure
// function of the call's inputs, so it is safe under any worker count
// (unlike a scripted toolchain, whose answers depend on global call
// order).
type pure struct{}

func (pure) Name() string { return "pure" }

func (pure) CompileC(src string) (string, error) {
	if strings.Contains(src, "bad") {
		return "", fmt.Errorf("cc: cannot compile %q", src)
	}
	return "asm<" + src + ">", nil
}

func (pure) Assemble(text string) (*asm.Unit, error) {
	return &asm.Unit{Globals: []string{text}}, nil
}

func (pure) Link(units []*asm.Unit) (*asm.Image, error) {
	var sb strings.Builder
	for _, u := range units {
		sb.WriteString(u.Globals[0])
	}
	return &asm.Image{Arch: sb.String()}, nil
}

func (pure) Execute(img *asm.Image) (string, error) {
	return "ran " + img.Arch + "\n", nil
}

var _ target.Toolchain = pure{}

// runBatch runs n independent probe tasks at the given worker count and
// returns the resulting JSONL telemetry bytes plus the final stats.
func runBatch(t *testing.T, workers, n int) ([]byte, probe.Stats) {
	t.Helper()
	var buf bytes.Buffer
	cfg := probe.DefaultConfig()
	cfg.Trace = obs.New(nil, obs.NewJSONLSink(&buf))
	p := probe.New(pure{}, cfg)
	outs := Run(p, workers, n, func(i int, sub *probe.Prober) string {
		src := fmt.Sprintf("main(){int a=%d;}", i)
		text, err := sub.CompileC(src)
		if err != nil {
			t.Errorf("task %d compile: %v", i, err)
			return ""
		}
		u, err := sub.Assemble(text)
		if err != nil {
			t.Errorf("task %d assemble: %v", i, err)
			return ""
		}
		img, err := sub.Link([]*asm.Unit{u})
		if err != nil {
			t.Errorf("task %d link: %v", i, err)
			return ""
		}
		out, err := sub.Execute(img)
		if err != nil {
			t.Errorf("task %d execute: %v", i, err)
			return ""
		}
		return out
	})
	for i, out := range outs {
		want := fmt.Sprintf("ran asm<main(){int a=%d;}>\n", i)
		if out != want {
			t.Errorf("workers=%d task %d = %q, want %q", workers, i, out, want)
		}
	}
	if err := cfg.Trace.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	return buf.Bytes(), p.Stats()
}

// TestRunByteIdenticalAcrossWorkerCounts is the pool's determinism
// contract in miniature: the same task batch at workers 1, 2, 4, and 16
// must produce identical results, identical stats, and byte-identical
// telemetry — ordered reduction makes scheduling invisible.
func TestRunByteIdenticalAcrossWorkerCounts(t *testing.T) {
	const n = 12
	base, baseStats := runBatch(t, 1, n)
	if len(base) == 0 {
		t.Fatal("serial run emitted no telemetry")
	}
	for _, workers := range []int{2, 4, 16} {
		got, gotStats := runBatch(t, workers, n)
		if !bytes.Equal(base, got) {
			t.Errorf("workers=%d trace differs from serial trace", workers)
		}
		if gotStats != baseStats {
			t.Errorf("workers=%d stats = %+v, serial %+v", workers, gotStats, baseStats)
		}
	}
}

// TestRunPropagatesNoisyLatch: a fork that catches the machine lying must
// latch the parent on join.
func TestRunPropagatesNoisyLatch(t *testing.T) {
	cfg := probe.DefaultConfig()
	p := probe.New(&noisyOnce{}, cfg)
	Run(p, 4, 8, func(i int, sub *probe.Prober) struct{} {
		sub.Execute(&asm.Image{Entry: i})
		return struct{}{}
	})
	if !p.Noisy() {
		t.Error("a quorum conflict inside a pooled task must latch the parent prober")
	}
}

// noisyOnce disagrees on the first run of image 3 and agrees thereafter.
// Image 3 is only ever executed inside task 3's quorum loop — a single
// goroutine — so the counter needs no lock.
type noisyOnce struct{ seen int }

func (*noisyOnce) Name() string                           { return "noisyOnce" }
func (*noisyOnce) CompileC(src string) (string, error)    { return src, nil }
func (*noisyOnce) Assemble(t string) (*asm.Unit, error)   { return &asm.Unit{}, nil }
func (*noisyOnce) Link(u []*asm.Unit) (*asm.Image, error) { return &asm.Image{}, nil }

func (n *noisyOnce) Execute(img *asm.Image) (string, error) {
	if img.Entry == 3 {
		n.seen++
		if n.seen == 1 {
			return "garbled\n", nil
		}
	}
	return "ok\n", nil
}
