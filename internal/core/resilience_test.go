package core

import (
	"testing"

	"srcg/internal/faulty"
	"srcg/internal/target"
	"srcg/internal/target/alpha"
	"srcg/internal/target/mips"
	"srcg/internal/target/sparc"
	"srcg/internal/target/vax"
	"srcg/internal/target/x86"
)

var gauntletTargets = []struct {
	arch string
	ctor func() target.Toolchain
}{
	{"x86", func() target.Toolchain { return x86.New() }},
	{"sparc", func() target.Toolchain { return sparc.New() }},
	{"mips", func() target.Toolchain { return mips.New() }},
	{"alpha", func() target.Toolchain { return alpha.New() }},
	{"vax", func() target.Toolchain { return vax.New() }},
}

// TestDiscoveryByteIdenticalUnderFaults is the acceptance gauntlet: with a
// seeded fault schedule injecting transient toolchain errors at >=10% per
// call plus scratch-register output noise, Discover must complete on every
// target and synthesize a machine description byte-identical to the clean
// run's — the probe layer retried every injected error and the output
// quorum outvoted every lie, so not one bit of noise reached analysis.
func TestDiscoveryByteIdenticalUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("full five-target gauntlet")
	}
	for _, tt := range gauntletTargets {
		tt := tt
		t.Run(tt.arch, func(t *testing.T) {
			t.Parallel()
			opts := Options{Seed: 11}
			clean, err := Discover(tt.ctor(), opts)
			if err != nil {
				t.Fatalf("clean discovery failed: %v", err)
			}
			if clean.Spec == nil {
				t.Fatalf("clean discovery synthesized no spec: %v", clean.SpecErr)
			}
			want := clean.Spec.RenderBEG(clean.Model)

			inj := faulty.New(tt.ctor(), faulty.Config{Seed: 7, Rate: 0.12, Noise: 0.10})
			d, err := Discover(inj, opts)
			if err != nil {
				t.Fatalf("faulty discovery aborted: %v", err)
			}
			if inj.InjectedTotal() == 0 {
				t.Fatal("the gauntlet injected nothing — the test proves nothing")
			}
			if d.Spec == nil {
				t.Fatalf("faulty discovery synthesized no spec: %v", d.SpecErr)
			}
			got := d.Spec.RenderBEG(d.Model)
			if got != want {
				t.Errorf("machine description diverged under faults (%d vs %d bytes)",
					len(got), len(want))
			}
			ps := d.ProbeStats
			if ps.Retries == 0 && ps.FaultsSurvived == 0 {
				t.Errorf("probe stats show no resilience work despite %d injected faults: %s",
					inj.InjectedTotal(), ps)
			}
			if ps.Exhausted != 0 {
				t.Errorf("probe budget exhausted %d times at a 12%% fault rate: %s",
					ps.Exhausted, ps)
			}
			t.Logf("%s: injected=%d %s", tt.arch, inj.InjectedTotal(), ps)
		})
	}
}

// TestQuorumNeverAttributesNoiseAsSemantics pins the §4 safety property at
// the pipeline level: scratch-register noise alone (no injected errors, so
// every run "succeeds") must not change a single solved semantics.
func TestQuorumNeverAttributesNoiseAsSemantics(t *testing.T) {
	opts := Options{Seed: 11}
	clean, err := Discover(x86.New(), opts)
	if err != nil {
		t.Fatal(err)
	}
	inj := faulty.New(x86.New(), faulty.Config{Seed: 23, Rate: 0, Noise: 0.15})
	d, err := Discover(inj, opts)
	if err != nil {
		t.Fatalf("noisy discovery aborted: %v", err)
	}
	if inj.InjectedTotal() == 0 {
		t.Fatal("no noise injected")
	}
	if got, want := d.Spec.RenderBEG(d.Model), clean.Spec.RenderBEG(clean.Model); got != want {
		t.Error("pure output noise changed the synthesized machine description")
	}
	if d.ProbeStats.QuorumConflicts == 0 {
		t.Error("noise at 15% must surface as quorum conflicts")
	}
}

// TestQuorumDisabledDegradesGracefully: with QuorumN=1 the probe layer
// trusts single runs, so scratch noise reaches mutation analysis. The run
// may lose samples — but it must complete with a diagnosis, never absorb a
// lie silently into verified semantics that then miscompile.
func TestQuorumDisabledDegradesGracefully(t *testing.T) {
	inj := faulty.New(x86.New(), faulty.Config{Seed: 23, Rate: 0, Noise: 0.02})
	d, err := Discover(inj, Options{Seed: 11, QuorumN: 1, Check: true})
	if err != nil {
		return // aborting with a diagnosis is acceptable degradation
	}
	if d.Spec == nil {
		return
	}
	for _, r := range d.Validate(x86.New(), ValidationSuite) {
		if !r.OK && r.Err == nil {
			t.Errorf("%s: silent wrong output %q (want %q)", r.Program, r.Got, r.Want)
		}
	}
}
