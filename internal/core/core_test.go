package core

import (
	"strings"
	"testing"

	"srcg/internal/sem"
	"srcg/internal/target"
	"srcg/internal/target/alpha"
	"srcg/internal/target/mips"
	"srcg/internal/target/sparc"
	"srcg/internal/target/vax"
	"srcg/internal/target/x86"
)

func discover(t *testing.T, tc target.Toolchain) *Discovery {
	t.Helper()
	d, err := Discover(tc, Options{Seed: 11})
	if err != nil {
		t.Fatalf("Discover(%s): %v", tc.Name(), err)
	}
	return d
}

// findSem returns the semantics of the first signature whose opcode matches.
func findSem(d *Discovery, op string) (string, *sem.Sem) {
	for sig, s := range d.Ext.Sems {
		if strings.HasPrefix(sig, op+":") || sig == op+":" {
			return sig, s
		}
	}
	return "", nil
}

func TestDiscoverAllTargets(t *testing.T) {
	// §7.2: the unit must discover the integer instruction sets of all
	// five architectures. We allow a small number of failed samples
	// ("almost correct" specs) but the bulk must solve.
	for _, tc := range []target.Toolchain{x86.New(), sparc.New(), mips.New(), alpha.New(), vax.New()} {
		tc := tc
		t.Run(tc.Name(), func(t *testing.T) {
			d := discover(t, tc)
			total := len(d.Outcome.Solved) + len(d.Outcome.Failed)
			if len(d.Outcome.Failed) > total/5 {
				t.Errorf("too many failures: solved=%d failed=%v skipped=%v",
					len(d.Outcome.Solved), d.Outcome.Failed, d.Skipped)
			}
			if len(d.Skipped) > 2 {
				t.Errorf("too many skipped samples: %v", d.Skipped)
			}
		})
	}
}

func TestX86Semantics(t *testing.T) {
	d := discover(t, x86.New())
	cases := map[string]string{
		"addl":  "add",
		"subl":  "sub(a1, load(a0))",
		"imull": "mul",
		"idivl": "div(r%eax, load(a0))",
		"negl":  "neg",
		"cmpl":  "compare",
	}
	for op, want := range cases {
		sig, s := findSem(d, op)
		if s == nil {
			t.Errorf("no semantics discovered for %s", op)
			continue
		}
		if !strings.Contains(s.String(), want) {
			t.Errorf("%s = %s, want ~%q", sig, s, want)
		}
	}
	// idivl must also deliver the remainder in %edx.
	_, s := findSem(d, "idivl")
	if s == nil || s.Outs["r%edx"] == nil || !strings.Contains(s.Outs["r%edx"].String(), "mod") {
		t.Errorf("idivl remainder not discovered: %v", s)
	}
}

func TestSPARCSemantics(t *testing.T) {
	d := discover(t, sparc.New())
	// The software multiply: call .mul must read %o0/%o1 and define %o0
	// with mul (Fig. 15e).
	var mulSem *sem.Sem
	for sig, s := range d.Ext.Sems {
		if strings.Contains(sig, ".mul") {
			mulSem = s
		}
	}
	if mulSem == nil {
		t.Fatalf("call .mul semantics not discovered; sems: %v", d.Report())
	}
	out := mulSem.Outs["r%o0"]
	if out == nil || !strings.Contains(out.String(), "mul(") {
		t.Errorf("call .mul = %v, want mul over %%o0/%%o1", mulSem)
	}
}

func TestMIPSSemantics(t *testing.T) {
	d := discover(t, mips.New())
	// div writes the quotient and remainder to the hidden lo/hi channels,
	// read by mflo and mfhi respectively.
	sig, s := findSem(d, "div")
	if s == nil || s.Outs["h.mflo"] == nil || !strings.Contains(s.Outs["h.mflo"].String(), "div(") {
		t.Errorf("div = %s %v, want hidden quotient for mflo", sig, s)
	}
	if s == nil || s.Outs["h.mfhi"] == nil || !strings.Contains(s.Outs["h.mfhi"].String(), "mod(") {
		t.Errorf("div = %s %v, want hidden remainder for mfhi", sig, s)
	}
	_, mflo := findSem(d, "mflo")
	if mflo == nil {
		t.Errorf("mflo not discovered")
	}
}

func TestVAXSemantics(t *testing.T) {
	d := discover(t, vax.New())
	// The one-instruction memory-to-memory add (Fig. 3).
	_, s := findSem(d, "addl3")
	if s == nil || !strings.Contains(s.String(), "add(") {
		t.Errorf("addl3 = %v, want add of two loads", s)
	}
	// bicl3 is and-with-complement.
	_, bic := findSem(d, "bicl3")
	if bic == nil || !strings.Contains(bic.String(), "not(") {
		t.Errorf("bicl3 = %v, want and/not composition", bic)
	}
	// ashl (sign-directed shift) is beyond the Fig. 14 primitives for
	// variable counts; the constant-count shift samples must still solve
	// (ashl $3, x, y is a plain shift).
}

func TestAlphaSemantics(t *testing.T) {
	d := discover(t, alpha.New())
	// cmplt and its consuming branch admit a boolean-inversion symmetry:
	// (isLT, isNE) and (isGE, isEQ) are observationally identical in the
	// sample language, and either pair generates correct code. Require a
	// relation-of-comparison shape.
	_, s := findSem(d, "cmplt")
	if s == nil || !strings.Contains(s.String(), "(compare(") {
		t.Errorf("cmplt = %v, want isREL(compare(...))", s)
	}
	_, bne := findSem(d, "bne")
	if bne == nil || bne.Cond == nil {
		t.Errorf("bne = %v, want conditional branch", bne)
	}
}

func TestCostAccounting(t *testing.T) {
	d := discover(t, x86.New())
	st := d.Rig.Stats()
	if st.Compiles == 0 || st.Assemblies == 0 || st.Executions == 0 || st.Mutations == 0 {
		t.Errorf("implausible stats: %v", st)
	}
	// The likelihood heuristics must keep the search small (§5.2.2: "often
	// ... after just one or two tries").
	if st.CandidatesTried > 20000 {
		t.Errorf("search tried %d candidates; heuristics ineffective", st.CandidatesTried)
	}
}
