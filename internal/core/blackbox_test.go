package core

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestBlackBoxDiscipline enforces the DESIGN.md rule: no discovery-side
// package may import a concrete target implementation — the unit sees
// machines only through the target.Toolchain interface, exactly as the
// paper's system sees machines only through cc/as/ld/rsh.
func TestBlackBoxDiscipline(t *testing.T) {
	discoverySide := []string{
		"gen", "lexer", "mutate", "dfg", "extract", "synth", "core",
		"discovery", "sem", "enquire", "beg", "check",
	}
	for _, pkg := range discoverySide {
		dir := filepath.Join("..", pkg)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("%s: %v", pkg, err)
		}
		for _, e := range entries {
			if !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
				continue
			}
			fset := token.NewFileSet()
			f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ImportsOnly)
			if err != nil {
				t.Fatalf("%s/%s: %v", pkg, e.Name(), err)
			}
			for _, imp := range f.Imports {
				path := strings.Trim(imp.Path.Value, `"`)
				if strings.HasPrefix(path, "srcg/internal/target/") {
					t.Errorf("%s/%s imports %s: discovery-side code must stay behind the toolchain interface",
						pkg, e.Name(), path)
				}
			}
		}
	}
}
