package core

import (
	"bytes"
	"strconv"
	"testing"

	"srcg/internal/obs"
)

// TestDoubleRunDiscoveryByteIdentical is the determinism contract's
// end-to-end backstop: two complete discoveries of the same target under
// the same options must produce byte-identical reports and specs. The
// static analyzers in internal/check/analyzers forbid the obvious
// nondeterminism sources (wall clock, global rand, map-order output,
// mutable package state); this test catches whatever slips past them —
// probe-order drift, allocation-order artifacts, anything. CI runs it
// under -race, so it also doubles as a data-race probe over the full
// pipeline.
func TestDoubleRunDiscoveryByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("ten full discoveries")
	}
	for _, tt := range gauntletTargets {
		tt := tt
		t.Run(tt.arch, func(t *testing.T) {
			t.Parallel()
			// Each run gets its own virtual-clock tracer with a JSONL
			// sink: the full telemetry stream — timestamps included —
			// must be byte-identical between identical runs.
			var trace1, trace2 bytes.Buffer
			tr1 := obs.New(nil, obs.NewJSONLSink(&trace1))
			tr2 := obs.New(nil, obs.NewJSONLSink(&trace2))
			d1, err := Discover(tt.ctor(), Options{Seed: 1, Check: true, Trace: tr1})
			if err != nil {
				t.Fatalf("first discovery failed: %v", err)
			}
			d2, err := Discover(tt.ctor(), Options{Seed: 1, Check: true, Trace: tr2})
			if err != nil {
				t.Fatalf("second discovery failed: %v", err)
			}
			if err := tr1.Flush(); err != nil {
				t.Fatalf("flush run1 trace: %v", err)
			}
			if err := tr2.Flush(); err != nil {
				t.Fatalf("flush run2 trace: %v", err)
			}
			if !bytes.Equal(trace1.Bytes(), trace2.Bytes()) {
				t.Errorf("JSONL traces differ between identical runs:\n%s",
					firstDiffLine(trace1.String(), trace2.String()))
			}
			if trace1.Len() == 0 {
				t.Error("trace is empty — the pipeline emitted no telemetry")
			}
			r1, r2 := d1.Report(), d2.Report()
			if r1 != r2 {
				t.Errorf("reports differ between identical runs:\n%s",
					firstDiffLine(r1, r2))
			}
			if d1.Spec == nil || d2.Spec == nil {
				t.Fatalf("spec missing: run1=%v run2=%v", d1.SpecErr, d2.SpecErr)
			}
			b1 := d1.Spec.RenderBEG(d1.Model)
			b2 := d2.Spec.RenderBEG(d2.Model)
			if b1 != b2 {
				t.Errorf("rendered BEG specs differ between identical runs:\n%s",
					firstDiffLine(b1, b2))
			}
			if d1.Rig.Stats.Executions != d2.Rig.Stats.Executions {
				t.Errorf("execution counts differ: %d vs %d — the probe sequence "+
					"itself is nondeterministic", d1.Rig.Stats.Executions,
					d2.Rig.Stats.Executions)
			}
		})
	}
}

// firstDiffLine renders the first line where two texts diverge, with a
// little context, so a failure is diagnosable without dumping both specs.
func firstDiffLine(a, b string) string {
	la, lb := splitLines(a), splitLines(b)
	n := len(la)
	if len(lb) < n {
		n = len(lb)
	}
	for i := 0; i < n; i++ {
		if la[i] != lb[i] {
			return "line " + strconv.Itoa(i+1) + ":\n  run1: " + la[i] + "\n  run2: " + lb[i]
		}
	}
	return "line " + strconv.Itoa(n+1) + ": one run has " + strconv.Itoa(len(la)) +
		" lines, the other " + strconv.Itoa(len(lb))
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	return append(lines, s[start:])
}
