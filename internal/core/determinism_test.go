package core

import (
	"bytes"
	"os"
	"strconv"
	"testing"

	"srcg/internal/obs"
	"srcg/internal/probe"
)

// parallelWorkers is the pool width the determinism tests exercise beside
// the serial baseline. SRCG_WORKERS overrides it (CI runs a matrix).
func parallelWorkers() int {
	if s := os.Getenv("SRCG_WORKERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 4
}

// TestDoubleRunDiscoveryByteIdentical is the determinism contract's
// end-to-end backstop: two complete discoveries of the same target under
// the same options must produce byte-identical reports and specs. The
// static analyzers in internal/check/analyzers forbid the obvious
// nondeterminism sources (wall clock, global rand, map-order output,
// mutable package state); this test catches whatever slips past them —
// probe-order drift, allocation-order artifacts, anything. CI runs it
// under -race, so it also doubles as a data-race probe over the full
// pipeline.
func TestDoubleRunDiscoveryByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("ten full discoveries")
	}
	for _, tt := range gauntletTargets {
		tt := tt
		t.Run(tt.arch, func(t *testing.T) {
			t.Parallel()
			// Each run gets its own virtual-clock tracer with a JSONL
			// sink: the full telemetry stream — timestamps included —
			// must be byte-identical between identical runs.
			var trace1, trace2, trace3 bytes.Buffer
			tr1 := obs.New(nil, obs.NewJSONLSink(&trace1))
			tr2 := obs.New(nil, obs.NewJSONLSink(&trace2))
			tr3 := obs.New(nil, obs.NewJSONLSink(&trace3))
			d1, err := Discover(tt.ctor(), Options{Seed: 1, Check: true, Trace: tr1})
			if err != nil {
				t.Fatalf("first discovery failed: %v", err)
			}
			d2, err := Discover(tt.ctor(), Options{Seed: 1, Check: true, Trace: tr2})
			if err != nil {
				t.Fatalf("second discovery failed: %v", err)
			}
			// Third run: same options, pooled. The parallel engine's ordered
			// reduction must make worker count invisible — report, spec, and
			// every trace byte included.
			workers := parallelWorkers()
			d3, err := Discover(tt.ctor(), Options{Seed: 1, Check: true, Trace: tr3, Workers: workers})
			if err != nil {
				t.Fatalf("parallel discovery failed: %v", err)
			}
			if err := tr1.Flush(); err != nil {
				t.Fatalf("flush run1 trace: %v", err)
			}
			if err := tr2.Flush(); err != nil {
				t.Fatalf("flush run2 trace: %v", err)
			}
			if err := tr3.Flush(); err != nil {
				t.Fatalf("flush run3 trace: %v", err)
			}
			if !bytes.Equal(trace1.Bytes(), trace2.Bytes()) {
				t.Errorf("JSONL traces differ between identical runs:\n%s",
					firstDiffLine(trace1.String(), trace2.String()))
			}
			if !bytes.Equal(trace1.Bytes(), trace3.Bytes()) {
				t.Errorf("JSONL trace at workers=%d differs from serial run:\n%s",
					workers, firstDiffLine(trace1.String(), trace3.String()))
			}
			if r1, r3 := d1.Report(), d3.Report(); r1 != r3 {
				t.Errorf("report at workers=%d differs from serial run:\n%s",
					workers, firstDiffLine(r1, r3))
			}
			if trace1.Len() == 0 {
				t.Error("trace is empty — the pipeline emitted no telemetry")
			}
			r1, r2 := d1.Report(), d2.Report()
			if r1 != r2 {
				t.Errorf("reports differ between identical runs:\n%s",
					firstDiffLine(r1, r2))
			}
			if d1.Spec == nil || d2.Spec == nil {
				t.Fatalf("spec missing: run1=%v run2=%v", d1.SpecErr, d2.SpecErr)
			}
			b1 := d1.Spec.RenderBEG(d1.Model)
			b2 := d2.Spec.RenderBEG(d2.Model)
			if b1 != b2 {
				t.Errorf("rendered BEG specs differ between identical runs:\n%s",
					firstDiffLine(b1, b2))
			}
			if d3.Spec != nil {
				if b3 := d3.Spec.RenderBEG(d3.Model); b1 != b3 {
					t.Errorf("rendered BEG spec at workers=%d differs from serial run:\n%s",
						workers, firstDiffLine(b1, b3))
				}
			} else {
				t.Errorf("parallel run produced no spec: %v", d3.SpecErr)
			}
			if d1.Rig.Stats().Executions != d2.Rig.Stats().Executions {
				t.Errorf("execution counts differ: %d vs %d — the probe sequence "+
					"itself is nondeterministic", d1.Rig.Stats().Executions,
					d2.Rig.Stats().Executions)
			}
		})
	}
}

// TestProbeCacheColdWarm pins the probe cache's correctness contract: a
// discovery against a cold shared cache and a second discovery replaying
// from the now-warm cache must produce byte-identical reports, specs, and
// telemetry traces (cache counters are unsealed, so the sealed stream
// cannot see the cache state), while the warm run demonstrably replays —
// its probe.cache_hits counter exceeds the cold run's.
func TestProbeCacheColdWarm(t *testing.T) {
	if testing.Short() {
		t.Skip("two full discoveries")
	}
	cache := probe.NewCache()
	var cold, warm bytes.Buffer
	trCold := obs.New(nil, obs.NewJSONLSink(&cold))
	trWarm := obs.New(nil, obs.NewJSONLSink(&warm))
	opts := Options{Seed: 1, Workers: parallelWorkers(), Cache: cache}

	o1 := opts
	o1.Trace = trCold
	d1, err := Discover(gauntletTargets[0].ctor(), o1)
	if err != nil {
		t.Fatalf("cold discovery failed: %v", err)
	}
	coldHits := trCold.Counter(probe.CtrCacheHits)
	if cache.Len() == 0 {
		t.Fatal("cold run stored nothing in the cache")
	}

	o2 := opts
	o2.Trace = trWarm
	d2, err := Discover(gauntletTargets[0].ctor(), o2)
	if err != nil {
		t.Fatalf("warm discovery failed: %v", err)
	}
	warmHits := trWarm.Counter(probe.CtrCacheHits)
	if warmHits == 0 {
		t.Error("warm run recorded no cache hits")
	}
	if warmHits <= coldHits {
		t.Errorf("warm run hit the cache %d times, cold run %d — the warm run should replay more", warmHits, coldHits)
	}

	if err := trCold.Flush(); err != nil {
		t.Fatalf("flush cold trace: %v", err)
	}
	if err := trWarm.Flush(); err != nil {
		t.Fatalf("flush warm trace: %v", err)
	}
	if !bytes.Equal(cold.Bytes(), warm.Bytes()) {
		t.Errorf("JSONL traces differ between cold and warm cache runs:\n%s",
			firstDiffLine(cold.String(), warm.String()))
	}
	if r1, r2 := d1.Report(), d2.Report(); r1 != r2 {
		t.Errorf("reports differ between cold and warm cache runs:\n%s", firstDiffLine(r1, r2))
	}
	if d1.Spec == nil || d2.Spec == nil {
		t.Fatalf("spec missing: cold=%v warm=%v", d1.SpecErr, d2.SpecErr)
	}
	if b1, b2 := d1.Spec.RenderBEG(d1.Model), d2.Spec.RenderBEG(d2.Model); b1 != b2 {
		t.Errorf("rendered BEG specs differ between cold and warm cache runs:\n%s", firstDiffLine(b1, b2))
	}
}

// firstDiffLine renders the first line where two texts diverge, with a
// little context, so a failure is diagnosable without dumping both specs.
func firstDiffLine(a, b string) string {
	la, lb := splitLines(a), splitLines(b)
	n := len(la)
	if len(lb) < n {
		n = len(lb)
	}
	for i := 0; i < n; i++ {
		if la[i] != lb[i] {
			return "line " + strconv.Itoa(i+1) + ":\n  run1: " + la[i] + "\n  run2: " + lb[i]
		}
	}
	return "line " + strconv.Itoa(n+1) + ": one run has " + strconv.Itoa(len(la)) +
		" lines, the other " + strconv.Itoa(len(lb))
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	return append(lines, s[start:])
}
