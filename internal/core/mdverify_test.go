package core

import (
	"strings"
	"testing"

	"srcg/internal/check"
	"srcg/internal/target"
	"srcg/internal/target/alpha"
	"srcg/internal/target/mips"
	"srcg/internal/target/sparc"
	"srcg/internal/target/vax"
	"srcg/internal/target/x86"
)

// mdCodes are the semantic machine-description analyzer's diagnostics.
var mdCodes = map[string]bool{
	check.CodeUncoveredDemand:     true,
	check.CodeDeadRule:            true,
	check.CodeShadowedRule:        true,
	check.CodeRewriteCycle:        true,
	check.CodeFootprintMismatch:   true,
	check.CodeStructuralInvariant: true,
}

// Every built-in target's discovered machine description must pass the
// semantic analyzer with zero suppressions: the coverage fixpoint proves
// full IR-operator coverage, no rule is dead or shadowed, every template
// footprint matches its contract, and the structural invariants hold.
// VAX runs with the signed-shift extension — without it, Shr is a
// declared gap, pinned separately below.
func TestMDVerifyAllTargetsClean(t *testing.T) {
	for _, tc := range []target.Toolchain{x86.New(), sparc.New(), mips.New(), alpha.New(), vax.New()} {
		tc := tc
		t.Run(tc.Name(), func(t *testing.T) {
			opts := Options{Seed: 11, CheckMD: true}
			if tc.Name() == "vax" {
				opts.SignedShifts = true
			}
			d, err := Discover(tc, opts)
			if err != nil {
				t.Fatalf("Discover: %v", err)
			}
			if d.Attrib == nil {
				t.Fatal("CheckMD run retained no attribution table")
			}
			for _, dg := range d.CheckReport.Diags {
				if mdCodes[dg.Code] {
					t.Errorf("MD diagnostic on a clean target: %s", dg.String())
				}
			}
		})
	}
}

// Without the signed-shift extension, VAX's Shr limitation (§5.2.3) is a
// declared gap: the coverage pass reports it as a warning naming the
// gap, never as an error — the gate stays green while the hole stays
// visible.
func TestMDVerifyVAXDeclaredGap(t *testing.T) {
	d, err := Discover(vax.New(), Options{Seed: 11, CheckMD: true})
	if err != nil {
		t.Fatalf("Discover: %v", err)
	}
	var mdDiags []check.Diagnostic
	for _, dg := range d.CheckReport.Diags {
		if mdCodes[dg.Code] {
			mdDiags = append(mdDiags, dg)
		}
	}
	if len(mdDiags) != 1 {
		t.Fatalf("got %d MD diagnostics, want exactly the declared Shr gap:\n%v", len(mdDiags), mdDiags)
	}
	dg := mdDiags[0]
	if dg.Code != check.CodeUncoveredDemand || dg.Severity != check.Warning {
		t.Errorf("declared gap reported as %s/%v, want SA020 warning", dg.Code, dg.Severity)
	}
	if !strings.Contains(dg.Message, "declared gap") || !strings.Contains(dg.Message, "Shr") {
		t.Errorf("gap message does not name the declared gap: %s", dg.Message)
	}
}

// MDVerify re-runs from retained state alone — a served or cached spec
// is re-verifiable without touching the toolchain again.
func TestMDVerifyFromRetainedState(t *testing.T) {
	d, err := Discover(x86.New(), Options{Seed: 11, CheckMD: true})
	if err != nil {
		t.Fatalf("Discover: %v", err)
	}
	probesBefore := d.Rig.Stats()
	if diags := d.MDVerify(); len(diags) != 0 {
		t.Errorf("re-verification of a clean spec drew:\n%v", diags)
	}
	if after := d.Rig.Stats(); after != probesBefore {
		t.Errorf("MDVerify touched the toolchain: %+v -> %+v", probesBefore, after)
	}

	// A Check-only run retains enough state for a lazy re-verification.
	d2, err := Discover(x86.New(), Options{Seed: 11, Check: true})
	if err != nil {
		t.Fatalf("Discover: %v", err)
	}
	if d2.Attrib != nil {
		t.Error("Check-only run eagerly built the attribution table")
	}
	if diags := d2.MDVerify(); len(diags) != 0 {
		t.Errorf("lazy re-verification drew:\n%v", diags)
	}
	if d2.Attrib == nil {
		t.Error("MDVerify did not build the attribution table lazily")
	}
}
