package core

import (
	"strings"
	"testing"

	"srcg/internal/asm"
	"srcg/internal/target"
	"srcg/internal/target/x86"
)

// miscompiler wraps a machine with a C compiler that silently turns every
// addition into a subtraction — the kind of toolchain bug the paper's §1.2
// catalog of gcc machine-description comments is full of.
type miscompiler struct {
	*x86.Toolchain
}

func (m *miscompiler) Name() string { return "x86-buggy" }

func (m *miscompiler) CompileC(src string) (string, error) {
	text, err := m.Toolchain.CompileC(src)
	if err != nil {
		return "", err
	}
	return strings.ReplaceAll(text, "addl", "subl"), nil
}

var _ target.Toolchain = (*miscompiler)(nil)

// TestMiscompilingToolchain: the discovery unit must not learn nonsense
// from a broken compiler — the baseline check (every sample must reproduce
// its expected output before any mutation runs) quarantines the damage.
func TestMiscompilingToolchain(t *testing.T) {
	d, err := Discover(&miscompiler{x86.New()}, Options{Seed: 5})
	if err != nil {
		// Failing outright is acceptable (the harness itself miscompiles).
		return
	}
	// If discovery proceeded, the poisoned samples must be skipped, not
	// absorbed: the addition sample cannot have verified semantics.
	for _, solved := range d.Outcome.Solved {
		if solved == "int.add.b_c" {
			t.Error("the miscompiled addition sample must not solve")
		}
	}
	if len(d.Skipped) == 0 && len(d.Outcome.Failed) == 0 {
		t.Error("a broken toolchain must surface as skipped or failed samples")
	}
}

// truncatingAssembler drops the last unit instruction — a corrupt `as`.
type truncatingAssembler struct {
	*x86.Toolchain
}

func (m *truncatingAssembler) Assemble(text string) (*asm.Unit, error) {
	u, err := m.Toolchain.Assemble(text)
	if err != nil {
		return nil, err
	}
	if len(u.Instrs) > 0 {
		u.Instrs = u.Instrs[:len(u.Instrs)-1]
	}
	return u, nil
}

func TestTruncatingAssembler(t *testing.T) {
	// Dropping the trailing `ret` of every unit breaks even the syntax
	// probes' execution; discovery must fail with a diagnosis, not hang
	// or panic.
	_, err := Discover(&truncatingAssembler{x86.New()}, Options{Seed: 5})
	if err == nil {
		t.Error("a truncating assembler should abort discovery")
	}
}

// flakyMachine wraps a machine whose executor lies on a fraction of runs
// (a loose board on the 1997 machine-room shelf): every 17th execution
// reports an extra digit. Discovery must either reject the affected
// samples or abort — never absorb unreproducible behavior as semantics.
type flakyMachine struct {
	*x86.Toolchain
	runs int
}

func (m *flakyMachine) Name() string { return "x86-flaky" }

func (m *flakyMachine) Execute(img *asm.Image) (string, error) {
	out, err := m.Toolchain.Execute(img)
	m.runs++
	if m.runs%17 == 0 && err == nil && len(out) > 1 {
		return "9" + out, nil
	}
	return out, err
}

func TestFlakyExecutor(t *testing.T) {
	// The probe layer's output quorum must absorb the lies outright: a
	// garble that never repeats within one quorum window cannot outvote
	// the truth, so discovery on the flaky machine must reproduce the
	// clean machine's description byte for byte.
	clean, err := Discover(x86.New(), Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	d, err := Discover(&flakyMachine{Toolchain: x86.New()}, Options{Seed: 5})
	if err != nil {
		t.Fatalf("the quorum should carry discovery past a 1-in-17 liar: %v", err)
	}
	if d.ProbeStats.QuorumConflicts == 0 {
		t.Error("the flaky runs must surface as quorum conflicts")
	}
	if d.Spec == nil {
		t.Fatalf("no spec synthesized: %v", d.SpecErr)
	}
	got := strings.ReplaceAll(d.Spec.RenderBEG(d.Model), "x86-flaky", "x86")
	if want := clean.Spec.RenderBEG(clean.Model); got != want {
		t.Error("flaky executions leaked into the machine description")
	}
	// And the result must still validate end-to-end on the honest machine.
	for _, r := range d.Validate(x86.New(), ValidationSuite) {
		if !r.OK {
			t.Errorf("%s: got %q want %q (err %v)", r.Program, r.Got, r.Want, r.Err)
		}
	}
}
