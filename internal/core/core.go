// Package core orchestrates the architecture discovery unit end to end
// (paper Fig. 2): Generator → Lexer → Preprocessor → Extractor →
// Synthesizer, against a target reachable only through its toolchain.
package core

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strings"

	"srcg/internal/check"
	"srcg/internal/check/mdverify"
	"srcg/internal/dfg"
	"srcg/internal/discovery"
	"srcg/internal/extract"
	"srcg/internal/gen"
	"srcg/internal/lexer"
	"srcg/internal/mutate"
	"srcg/internal/obs"
	"srcg/internal/pool"
	"srcg/internal/probe"
	"srcg/internal/synth"
	"srcg/internal/target"
)

// Options configures a discovery run.
type Options struct {
	Seed    int64
	Full    bool // use the complete §3 shape set
	Weights extract.Weights
	Budget  int // reverse-interpreter candidate budget per sample (0 = default)
	// SignedShifts enables the ash-primitive extension (beyond the
	// paper): the reverse interpreter may use a signed-count shift,
	// resolving the VAX ashl limitation of §5.2.3.
	SignedShifts bool
	// NoVariants strips the extra hidden-value valuations from every
	// sample — an ablation knob (E20). Single-valuation samples are what
	// the paper literally describes; without the variants, conditional
	// samples lose their dead branch to redundancy elimination and
	// value-symmetric misinterpretations slip through.
	NoVariants bool
	// Check runs the static verification layer (internal/check) over
	// every data-flow graph and the synthesized spec, attaching a
	// CheckReport to the Discovery.
	Check bool
	// CheckMD additionally runs the semantic machine-description
	// analyzer (internal/check/mdverify, SA020–SA025) over the
	// synthesized spec: coverage closure, rule shadowing, symbolic
	// template verification, structural invariants. Implies Check.
	CheckMD bool
	// ProbeRetries caps the transient-fault retries the probe layer spends
	// per toolchain interaction (0 = probe.DefaultRetries).
	ProbeRetries int
	// QuorumN caps the executions spent seeking an output quorum per run
	// (0 = probe.DefaultQuorumN; 1 trusts single runs — no re-probing).
	QuorumN int
	// CheckRetries is the checker-gated retry budget: how many times a
	// sample whose data-flow graph draws an Error-severity diagnostic has
	// its mutation analysis re-run with a fresh seed before the sample is
	// dropped. Effective only with Check; 0 means DefaultCheckRetries.
	CheckRetries int
	// Trace receives the run's telemetry: phase spans, per-probe events,
	// counters, histograms. Nil gets a private sink-less tracer on a
	// virtual clock, so phase attribution and counters always exist. The
	// tracer's clock is the pipeline's only time source — core code never
	// reads a wall clock, so a virtual-clock trace is byte-identical
	// across double runs.
	Trace *obs.Tracer
	// Workers fans independent probe work — per-sample mutation analysis,
	// assembler-bisection keys, validation programs — across a worker
	// pool at the probe seam (internal/pool). Results and traces are
	// byte-identical at any width: tasks run on forked probers with
	// per-sample seeds and telemetry joins in task order. 0 or 1 keeps
	// every loop serial.
	Workers int
	// Cache, when non-nil, is a content-addressed probe memo shared
	// across runs in this process (sample text → assembly →
	// quorum-accepted run output): a repeat discovery replays memoized
	// probes instead of re-interrogating the toolchain, with traces
	// byte-identical to the cold run. Share one Cache only between runs
	// with the same ProbeRetries/QuorumN policy.
	Cache *probe.Cache
}

// Counter names the core pipeline maintains on its tracer. The
// resilience lines in Report() are views over these, the same way
// probe.Stats views the probe.* counters.
const (
	CtrCheckRetries   = "core.check_retries"
	CtrSamplesDropped = "core.samples_dropped"
)

// DefaultCheckRetries is the checker-gated retry budget when the caller
// does not set one.
const DefaultCheckRetries = 2

// constantExpect reports whether every valuation of s expects the same
// output — a degenerate sample that cannot pin value-dependent semantics.
func constantExpect(s *discovery.Sample) bool {
	vals := s.Valuations()
	if len(vals) < 2 {
		return false // a single valuation carries no variance information
	}
	for _, v := range vals[1:] {
		if v.Expect != vals[0].Expect {
			return false
		}
	}
	return true
}

// Discovery is the complete result of analyzing one target.
type Discovery struct {
	Rig      *discovery.Rig
	Model    *discovery.Model
	Samples  []*discovery.Sample
	Analyses map[string]*mutate.Analysis
	Slots    dfg.Slots
	Graphs   map[string]*dfg.Graph
	Matches  []*extract.MatchResult
	Ext      *extract.Extractor
	Outcome  extract.Outcome
	Engine   *mutate.Engine
	Spec     *synth.Spec
	SpecErr  error // non-fatal synthesis failure ("almost correct" specs)
	// Attrib is the per-signature attribution table aggregated from the
	// surviving analyses — what the machine-description analyzer
	// verifies templates against, retained so a served or cached spec
	// can be re-verified without re-running discovery (MDVerify).
	Attrib *dfg.AttribTable
	// Skipped samples (preprocessing failures), with reasons.
	Skipped map[string]string
	// CheckReport holds the static verifier's findings (Options.Check).
	CheckReport *check.Report
	// ProbeStats snapshots the probe layer's resilience counters: probes
	// issued, transient faults retried, quorum re-executions, conflicts
	// outvoted (see internal/probe).
	ProbeStats probe.Stats
	// CheckRetried counts mutation analyses re-run under the checker gate.
	CheckRetried int
	// Dropped lists samples abandoned after exhausting their checker-gated
	// retry budget, with the diagnostic that condemned them. Dropped
	// samples also appear in Skipped: discovery degrades, never aborts.
	Dropped map[string]string
	// Trace is the run's telemetry tracer (Options.Trace, or the private
	// one Discover created). Report() renders its phase attribution;
	// Validate() continues on it.
	Trace *obs.Tracer
}

// Discover runs the full pipeline up to semantic extraction.
func Discover(tc target.Toolchain, opts Options) (*Discovery, error) {
	if opts.Weights == (extract.Weights{}) {
		opts.Weights = extract.DefaultWeights
	}
	if opts.CheckMD {
		opts.Check = true // the MD analyzer extends the checker layer
	}
	tr := opts.Trace
	if tr == nil {
		tr = obs.New(nil)
	}
	probeCfg := probe.DefaultConfig()
	probeCfg.Retries = opts.ProbeRetries
	probeCfg.QuorumN = opts.QuorumN
	probeCfg.Trace = tr
	probeCfg.Cache = opts.Cache
	rig := discovery.NewRigConfig(tc, probeCfg)
	rig.Workers = opts.Workers
	rnd := rand.New(rand.NewSource(opts.Seed))

	// Phase 1 — syntax discovery: generate the sample set and bootstrap
	// the lexical model off the toolchain (the assembler-bisection span
	// nests inside, around immediate-range discovery).
	var samples []*discovery.Sample
	var model *discovery.Model
	err := tr.Phase(obs.PhaseLexerBootstrap, func() error {
		var err error
		samples, err = gen.Samples(gen.Config{Rand: rnd, Full: opts.Full})
		if err != nil {
			return err
		}
		if opts.NoVariants {
			for _, s := range samples {
				s.Variants = nil
			}
		}
		model, err = lexer.Bootstrap(rig, samples)
		return err
	})
	if err != nil {
		return nil, err
	}
	d := &Discovery{
		Rig:      rig,
		Model:    model,
		Samples:  samples,
		Analyses: map[string]*mutate.Analysis{},
		Graphs:   map[string]*dfg.Graph{},
		Skipped:  map[string]string{},
		Dropped:  map[string]string{},
		Trace:    tr,
	}

	engine := mutate.New(rig, model, rand.New(rand.NewSource(opts.Seed+1)))
	d.Engine = engine

	// Phase 2 — mutation analysis: per-sample analyses, slot binding,
	// memory-writer and hardwired-register detection, and the data-flow
	// graphs behind the checker gate.
	err = tr.Phase(obs.PhaseMutationAnalysis, func() error {
		// Per-sample analyses are independent of each other, so they fan
		// out over the worker pool: each task gets its own engine on a
		// forked rig with a seed derived from the sample name — not a
		// position in a shared RNG stream — so outcomes are identical at
		// any worker count.
		work := make([]*discovery.Sample, 0, len(samples))
		for _, s := range samples {
			if s.Kind == discovery.PStress {
				continue // register-pressure sample: lexer-only
			}
			if s.Kind == discovery.PBinary && constantExpect(s) {
				// A payload whose expected output never varies (b>>b is 0 for
				// every representable b; a-a, a^a, a%a likewise) cannot
				// distinguish value-dependent interpretations, and mutation
				// analysis on it degenerates: with the result insensitive to
				// the inputs, the operand loads test as "redundant" and the
				// region collapses. The full §3 shape set contains a handful
				// of these; they carry no semantic signal and are skipped.
				d.Skipped[s.Name] = "expected output is valuation-invariant"
				continue
			}
			work = append(work, s)
		}
		type analyzed struct {
			a   *mutate.Analysis
			err error
		}
		results := pool.RunRig(rig, len(work), func(i int, sub *discovery.Rig) analyzed {
			s := work[i]
			eng := mutate.New(sub, model, rand.New(rand.NewSource(sampleSeed(opts.Seed, s.Name))))
			a, err := eng.Analyze(s)
			return analyzed{a, err}
		})
		for i, s := range work {
			if results[i].err != nil {
				d.Skipped[s.Name] = results[i].err.Error()
				continue
			}
			d.Analyses[s.Name] = results[i].a
		}

		slots, err := d.findSlots()
		if err != nil {
			return err
		}
		d.Slots = slots

		// Locate each sample's output-cell writer (needed so only genuine
		// stores get memory-output ports in the data-flow graphs).
		if constA, ok := d.Analyses["int.const.34117"]; ok {
			// Walk the sample list, not the map: FindMemWriter probes the
			// toolchain, and the probe sequence must be identical run to run.
			for _, s := range samples {
				if a, ok := d.Analyses[s.Name]; ok {
					engine.FindMemWriter(a, constA.Region, 34117)
				}
			}
		}

		// Hardwired-register detection (the paper's declared missing piece,
		// §7.2, implemented here as an extension).
		if a, ok := d.Analyses["int.move.b"]; ok {
			model.Hardwired = engine.DetectHardwired(a)
		}

		checkRetries := opts.CheckRetries
		if checkRetries <= 0 {
			checkRetries = DefaultCheckRetries
		}
		for _, s := range samples {
			a, ok := d.Analyses[s.Name]
			if !ok {
				continue
			}
			if a.AWriter < 0 {
				// Nothing in the region observably writes the output cell:
				// the payload is an identity (a = a & a) whose store mutation
				// analysis legitimately eliminated. No semantic signal.
				d.Skipped[s.Name] = "payload has no observable effect"
				delete(d.Analyses, s.Name)
				continue
			}
			g, err := dfg.Build(model, a, slots)
			if err != nil {
				d.Skipped[s.Name] = err.Error()
				continue
			}
			// Checker-gated retries: a graph the static verifier condemns is
			// evidence the machine lied to mutation analysis (noise that
			// slipped past the quorum, a flaked probe). Rather than shipping a
			// suspect graph — or aborting the run — the sample's analysis is
			// re-run with a fresh seed; a sample still faulty after its budget
			// is dropped with a diagnostic.
			if opts.Check {
				diags := check.VerifyGraph(model, a, g)
				for retry := 1; countErrors(diags) > 0 && retry <= checkRetries; retry++ {
					tr.Count(CtrCheckRetries, 1)
					retryEngine := mutate.New(rig, model, rand.New(rand.NewSource(retrySeed(opts.Seed, s.Name, retry))))
					a2, err := retryEngine.Analyze(s)
					if err != nil {
						continue
					}
					if constA, ok := d.Analyses["int.const.34117"]; ok {
						retryEngine.FindMemWriter(a2, constA.Region, 34117)
					}
					if a2.AWriter < 0 {
						continue
					}
					g2, err := dfg.Build(model, a2, slots)
					if err != nil {
						continue
					}
					if d2 := check.VerifyGraph(model, a2, g2); countErrors(d2) < countErrors(diags) {
						a, g, diags = a2, g2, d2
						d.Analyses[s.Name] = a2
					}
				}
				if countErrors(diags) > 0 {
					reason := fmt.Sprintf("dropped by checker gate after %d retries: %s",
						checkRetries, diags[0].String())
					d.Dropped[s.Name] = reason
					d.Skipped[s.Name] = reason
					delete(d.Analyses, s.Name)
					tr.Count(CtrSamplesDropped, 1)
					tr.DropEvent(s.Name, diags[0].String())
					continue
				}
			}
			d.Graphs[s.Name] = g
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Phase 3 — reverse interpretation: graph matching feeds the M
	// component of the likelihood, then the extractor searches for each
	// sample's semantics.
	_ = tr.Phase(obs.PhaseReverseInterp, func() error {
		for _, s := range samples {
			if g, ok := d.Graphs[s.Name]; ok {
				if m := extract.Match(g); m != nil {
					d.Matches = append(d.Matches, m)
				}
			}
		}

		d.Ext = extract.New(model.WordBits, opts.Weights, extract.MBoosts(d.Matches))
		d.Ext.Tr = tr
		d.Ext.SignedShifts = opts.SignedShifts
		if opts.Budget > 0 {
			d.Ext.Budget = opts.Budget
		}
		d.Outcome = d.Ext.SolveAll(d.ExtractionGraphs())
		return nil
	})

	// Phase 4 — machine-description synthesis (§6) plus the final static
	// verification report.
	_ = tr.Phase(obs.PhaseSynthesis, func() error {
		byName := map[string]*discovery.Sample{}
		for _, s := range samples {
			byName[s.Name] = s
		}
		solved := map[string]bool{}
		for _, n := range d.Outcome.Solved {
			solved[n] = true
		}
		spec, err := synth.Synthesize(synth.Input{
			Rig:      rig,
			Model:    model,
			Engine:   engine,
			Samples:  byName,
			Analyses: d.Analyses,
			Slots:    d.Slots,
			Solved:   solved,
		})
		if err != nil {
			d.SpecErr = err
		}
		d.Spec = spec

		if opts.Check {
			rep := &check.Report{}
			for _, s := range samples {
				g, ok := d.Graphs[s.Name]
				if !ok {
					continue
				}
				rep.Add(check.VerifyGraph(model, d.Analyses[s.Name], g)...)
			}
			if spec != nil {
				rep.Add(check.LintSpec(model, spec)...)
				rep.Add(check.LintHiddenPairs(d.Analyses, spec)...)
			}
			if opts.CheckMD {
				d.Attrib = dfg.BuildAttrib(model, d.Analyses, d.Slots)
				rep.Add(d.MDVerify()...)
			}
			for _, name := range sortedKeys(d.Dropped) {
				rep.Add(check.Diagnostic{Code: check.CodeSampleDropped, Severity: check.Warning,
					Sample: name, Step: -1, Message: d.Dropped[name]})
			}
			d.CheckReport = rep
		}
		return nil
	})

	// The resilience fields are views over the tracer's counters — one
	// source of truth shared with the trace stream and Report().
	d.CheckRetried = int(tr.Counter(CtrCheckRetries))
	d.ProbeStats = rig.ProbeStats()
	if opts.Cache != nil {
		// Occupancy gauges for the shared probe memo: how many logical
		// probes this run left memoized and their approximate resident
		// size. Unsealed (probe.* cache names), so warm and cold traces
		// stay byte-identical.
		tr.Gauge(probe.CtrCacheEntries, int64(opts.Cache.Len()))
		tr.Gauge(probe.CtrCacheBytes, opts.Cache.Bytes())
	}
	return d, nil
}

// MDVerify runs the semantic machine-description analyzer (SA020–SA025)
// over the discovery's synthesized spec: coverage closure, rule
// shadowing, symbolic template verification against the attribution
// table, and structural invariants. It works from retained state only —
// no probes — so a served or cached spec can be re-verified at any
// point. The attribution table is built lazily from the surviving
// analyses if Discover did not populate it.
func (d *Discovery) MDVerify() []check.Diagnostic {
	if d.Model == nil || d.Spec == nil {
		return nil
	}
	if d.Attrib == nil && len(d.Analyses) > 0 {
		d.Attrib = dfg.BuildAttrib(d.Model, d.Analyses, d.Slots)
	}
	return mdverify.Verify(d.Model, d.Spec, d.Attrib)
}

// countErrors counts Error-severity diagnostics.
func countErrors(diags []check.Diagnostic) int {
	n := 0
	for _, dg := range diags {
		if dg.Severity == check.Error {
			n++
		}
	}
	return n
}

// retrySeed derives the fresh, deterministic seed for a checker-gated
// re-analysis of one sample.
func retrySeed(seed int64, name string, retry int) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return seed + 1009*int64(retry) + int64(h.Sum64()&0xffff)
}

// sampleSeed derives one sample's mutation-analysis seed from the run
// seed and the sample name alone — no position in a shared RNG stream —
// so a pooled analysis draws the same values at any worker count.
func sampleSeed(seed int64, name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return seed + 1 + int64(h.Sum64()&0xffffff)
}

// sortedKeys returns m's keys in deterministic order.
func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ExtractionGraphs selects the graphs the Extractor works on: every
// analyzed sample except calls to arbitrary procedures (P, P2), which have
// no primitive semantics and exist for convention discovery.
func (d *Discovery) ExtractionGraphs() []*dfg.Graph {
	var graphs []*dfg.Graph
	for _, s := range d.Samples {
		g, ok := d.Graphs[s.Name]
		if !ok {
			continue
		}
		if s.Kind == discovery.PCall && !isPrimitiveCall(g) {
			continue
		}
		graphs = append(graphs, g)
	}
	return graphs
}

// isPrimitiveCall reports whether a call sample's target is a millicode
// arithmetic routine (SPARC .mul/.div/.rem) rather than a user procedure.
func isPrimitiveCall(g *dfg.Graph) bool {
	for _, st := range g.Steps {
		if st.Target != "" && strings.HasPrefix(st.Target, ".") {
			return true
		}
	}
	return false
}

// findSlots binds the sample variables a, b, c to their memory addresses
// using the single-variable samples: the constant sample's unique memory
// operand is a's slot, the move sample adds b's, and a binary sample adds
// c's (§5.2.1's address-binding trick).
func (d *Discovery) findSlots() (dfg.Slots, error) {
	memOps := func(name string) []string {
		a, ok := d.Analyses[name]
		if !ok {
			return nil
		}
		var out []string
		seen := map[string]bool{}
		for i, ins := range a.Region {
			if a.Filler[i] {
				continue
			}
			for _, arg := range ins.Args {
				if arg.Kind == discovery.KMem || arg.Kind == discovery.KSym {
					t := dfg.NormalizeAddr(arg.Text)
					if !seen[t] {
						seen[t] = true
						out = append(out, t)
					}
				}
			}
		}
		return out
	}
	var slots dfg.Slots
	for _, s := range d.Samples {
		if s.Kind == discovery.PConst {
			if ops := memOps(s.Name); len(ops) == 1 {
				slots.A = ops[0]
				break
			}
		}
	}
	if slots.A == "" {
		return slots, fmt.Errorf("core: could not bind variable a to a memory cell")
	}
	for _, t := range memOps("int.move.b") {
		if t != slots.A {
			slots.B = t
		}
	}
	if slots.B == "" {
		return slots, fmt.Errorf("core: could not bind variable b to a memory cell")
	}
	for _, t := range memOps("int.add.b_c") {
		if t != slots.A && t != slots.B {
			slots.C = t
		}
	}
	if slots.C == "" {
		return slots, fmt.Errorf("core: could not bind variable c to a memory cell")
	}
	return slots, nil
}

// Report renders a human-readable summary of the run.
func (d *Discovery) Report() string {
	var sb strings.Builder
	sb.WriteString(lexer.DescribeModel(d.Model))
	fmt.Fprintf(&sb, "slots:          a=%s b=%s c=%s\n", d.Slots.A, d.Slots.B, d.Slots.C)
	fmt.Fprintf(&sb, "solved %d samples, failed %d, skipped %d\n",
		len(d.Outcome.Solved), len(d.Outcome.Failed), len(d.Skipped))
	sigs := make([]string, 0, len(d.Ext.Sems))
	for sig := range d.Ext.Sems {
		sigs = append(sigs, sig)
	}
	sort.Strings(sigs)
	for _, sig := range sigs {
		fmt.Fprintf(&sb, "  %-28s %s\n", sig, d.Ext.Sems[sig])
	}
	fmt.Fprintf(&sb, "cost: %s\n", d.Rig.Stats())
	fmt.Fprintf(&sb, "probe: %s\n", d.ProbeStats)
	// Cache occupancy is a view over the unsealed gauges Discover set; a
	// run without a shared cache never wrote them and prints nothing.
	if n := d.Trace.Counter(probe.CtrCacheEntries); n > 0 {
		fmt.Fprintf(&sb, "cache: entries=%d bytes=%d\n",
			n, d.Trace.Counter(probe.CtrCacheBytes))
	}
	// Resilience numbers come from the tracer's counters — the same
	// source the trace stream reports — falling back to the snapshot
	// fields for hand-built Discovery values without a tracer.
	cr, sd := d.Trace.Counter(CtrCheckRetries), d.Trace.Counter(CtrSamplesDropped)
	if d.Trace == nil {
		cr, sd = int64(d.CheckRetried), int64(len(d.Dropped))
	}
	if cr > 0 || sd > 0 {
		fmt.Fprintf(&sb, "resilience: check_retries=%d samples_dropped=%d\n", cr, sd)
	}
	if t := obs.FormatPhaseTable(d.Trace.PhaseSummary()); t != "" {
		sb.WriteString(t)
	}
	return sb.String()
}
