package core

import (
	"sort"
	"strings"
	"testing"

	"srcg/internal/target"
	"srcg/internal/target/alpha"
	"srcg/internal/target/mips"
	"srcg/internal/target/sparc"
	"srcg/internal/target/vax"
	"srcg/internal/target/x86"
)

// TestFullShapeDiscovery runs discovery with the complete §3 operand-shape
// sample set (the paper's ~150 samples per type) on every architecture.
// Every non-degenerate sample must extract — except the VAX's right-shift
// family, which compiles to ashl with a negated count and is exactly the
// limitation the paper reports (§5.2.3). Slower, so skipped under -short.
func TestFullShapeDiscovery(t *testing.T) {
	if testing.Short() {
		t.Skip("full shape set is slow")
	}
	for _, tc := range []target.Toolchain{x86.New(), sparc.New(), mips.New(), alpha.New(), vax.New()} {
		tc := tc
		t.Run(tc.Name(), func(t *testing.T) {
			d, err := Discover(tc, Options{Seed: 7, Full: true})
			if err != nil {
				t.Fatal(err)
			}
			failed := append([]string(nil), d.Outcome.Failed...)
			sort.Strings(failed)
			if tc.Name() == "vax" {
				for _, name := range failed {
					if !strings.HasPrefix(name, "int.shr.") {
						t.Errorf("unexpected failure beyond the ashl family: %s", name)
					}
				}
				if len(failed) == 0 {
					t.Error("expected the paper's ashl right-shift failures on the VAX")
				}
			} else if len(failed) != 0 {
				t.Errorf("failures: %v", failed)
			}
			if len(d.Outcome.Solved) < 85 {
				t.Errorf("solved only %d samples", len(d.Outcome.Solved))
			}
			// The skips must all be degenerate shapes (identity payloads
			// and valuation-invariant results), not analysis breakdowns.
			for name, reason := range d.Skipped {
				if !strings.Contains(reason, "no observable effect") &&
					!strings.Contains(reason, "valuation-invariant") {
					t.Errorf("unexpected skip %s: %s", name, reason)
				}
			}
			if d.SpecErr != nil {
				t.Errorf("synthesis: %v", d.SpecErr)
			}
			for _, r := range d.Validate(tc, ValidationSuite) {
				if !r.OK && tc.Name() != "vax" {
					t.Errorf("%s: %v got=%q want=%q", r.Program, r.Err, r.Got, r.Want)
				}
			}
		})
	}
}

// TestFullShapeVAXSignedShifts exercises the SignedShifts extension on the
// architecture it exists for: with the signed-count shift primitive the
// complete VAX shape set — including every ashl-based right shift the paper
// reports as unhandled (§5.2.3) — must extract with no failures. The only
// discards are the degenerate shapes (a = a & a identities and
// valuation-invariant payloads like b >> b).
func TestFullShapeVAXSignedShifts(t *testing.T) {
	if testing.Short() {
		t.Skip("full shape set is slow")
	}
	d, err := Discover(vax.New(), Options{Seed: 3, Full: true, SignedShifts: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Outcome.Failed) != 0 {
		t.Errorf("failures with SignedShifts: %v", d.Outcome.Failed)
	}
	if len(d.Outcome.Solved) < 85 {
		t.Errorf("solved only %d samples", len(d.Outcome.Solved))
	}
	if len(d.Spec.Gaps) != 0 {
		t.Errorf("operation gaps remain: %v", d.Spec.Gaps)
	}
	if d.SpecErr != nil {
		t.Fatalf("synthesis: %v", d.SpecErr)
	}
	for _, r := range d.Validate(vax.New(), ValidationSuite) {
		if !r.OK {
			t.Errorf("%s: %v got=%q want=%q", r.Program, r.Err, r.Got, r.Want)
		}
	}
}
