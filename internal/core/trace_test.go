package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"srcg/internal/obs"
	"srcg/internal/target/vax"
)

// discoverVaxTrace runs one checked vax discovery with a JSONL trace and
// returns the raw trace bytes.
func discoverVaxTrace(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	tr := obs.New(nil, obs.NewJSONLSink(&buf))
	if _, err := Discover(vax.New(), Options{Seed: 1, Check: true, Trace: tr}); err != nil {
		t.Fatalf("vax discovery failed: %v", err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatalf("flush trace: %v", err)
	}
	return buf.Bytes()
}

// TestTraceSchemaValid holds every line of a real end-to-end trace to the
// exported event schema: each line is valid JSON, its kind is known, all
// of the kind's required fields are present, and no field outside
// required+optional appears. The trace exercises every event kind the
// clean pipeline can emit (spans, probes, counters, hists).
func TestTraceSchemaValid(t *testing.T) {
	if testing.Short() {
		t.Skip("full vax discovery")
	}
	raw := discoverVaxTrace(t)
	kindsSeen := map[string]int{}
	for i, line := range bytes.Split(bytes.TrimRight(raw, "\n"), []byte("\n")) {
		var fields map[string]any
		if err := json.Unmarshal(line, &fields); err != nil {
			t.Fatalf("line %d: invalid JSON: %v\n%s", i+1, err, line)
		}
		kind, _ := fields["kind"].(string)
		schema, ok := obs.Schema[kind]
		if !ok {
			t.Fatalf("line %d: unknown kind %q", i+1, kind)
		}
		kindsSeen[kind]++
		allowed := map[string]bool{}
		for _, f := range schema.Required {
			if _, present := fields[f]; !present {
				t.Errorf("line %d (%s): missing required field %q\n%s", i+1, kind, f, line)
			}
			allowed[f] = true
		}
		for _, f := range schema.Optional {
			allowed[f] = true
		}
		for f := range fields {
			if !allowed[f] {
				t.Errorf("line %d (%s): field %q outside the schema\n%s", i+1, kind, f, line)
			}
		}
	}
	// A clean run must produce spans, probes, and the Flush tail; the
	// fault-only kinds (retry, quorum, drop) are covered by the probe
	// layer's own tests.
	for _, kind := range []string{"span_begin", "span_end", "probe", "counter", "hist"} {
		if kindsSeen[kind] == 0 {
			t.Errorf("trace has no %q events", kind)
		}
	}
}

// traceDigest summarizes a trace for the golden file: total line count,
// per-kind event counts, and the stream's SHA-256 — small enough to
// commit, strong enough that any byte of drift fails.
func traceDigest(raw []byte) string {
	counts := map[string]int{}
	lines := 0
	for _, line := range bytes.Split(bytes.TrimRight(raw, "\n"), []byte("\n")) {
		lines++
		var fields struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(line, &fields); err == nil {
			counts[fields.Kind]++
		}
	}
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	var sb strings.Builder
	fmt.Fprintf(&sb, "lines %d\n", lines)
	sum := sha256.Sum256(raw)
	fmt.Fprintf(&sb, "sha256 %s\n", hex.EncodeToString(sum[:]))
	for _, k := range kinds {
		fmt.Fprintf(&sb, "%s %d\n", k, counts[k])
	}
	return sb.String()
}

// TestVaxTraceGolden pins the vax discovery trace against a committed
// digest: line count, per-kind counts, and the stream hash. The full
// trace is ~1 MB, so the digest stands in for it; regenerate with
//
//	SRCG_UPDATE_GOLDEN=1 go test ./internal/core -run TestVaxTraceGolden
//
// after an intentional pipeline or telemetry change.
func TestVaxTraceGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full vax discovery")
	}
	golden := filepath.Join("testdata", "vax_trace_digest.txt")
	got := traceDigest(discoverVaxTrace(t))
	if os.Getenv("SRCG_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden digest (SRCG_UPDATE_GOLDEN=1 to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("vax trace digest drifted from golden:\n--- want\n%s--- got\n%s"+
			"An intentional telemetry or pipeline change needs SRCG_UPDATE_GOLDEN=1.",
			want, got)
	}
}
