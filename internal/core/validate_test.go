package core

import (
	"strings"
	"testing"

	"srcg/internal/target"
	"srcg/internal/target/alpha"
	"srcg/internal/target/mips"
	"srcg/internal/target/sparc"
	"srcg/internal/target/vax"
	"srcg/internal/target/x86"
)

// TestSelfRetargetingValidation is the headline §7.2 experiment: the spec
// synthesized for each architecture drives a generated back end; every
// validation program must run correctly — except where the spec has a
// documented gap (VAX variable shifts: the paper's own `ash` limitation).
func TestSelfRetargetingValidation(t *testing.T) {
	allowedGaps := map[string]map[string]bool{
		"vax": {"logic": true}, // ashl's sign-directed count is beyond the Fig. 14 primitives
	}
	for _, tc := range []target.Toolchain{x86.New(), sparc.New(), mips.New(), alpha.New(), vax.New()} {
		tc := tc
		t.Run(tc.Name(), func(t *testing.T) {
			d := discover(t, tc)
			if d.SpecErr != nil {
				t.Fatalf("synthesis: %v", d.SpecErr)
			}
			for _, r := range d.Validate(tc, ValidationSuite) {
				if r.OK {
					continue
				}
				if allowedGaps[tc.Name()][r.Program] {
					// The documented gap must fail loudly in the back end,
					// not silently miscompile.
					if r.Err == nil || !strings.Contains(r.Err.Error(), "spec gap") {
						t.Errorf("%s: expected a spec-gap error, got err=%v got=%q", r.Program, r.Err, r.Got)
					}
					continue
				}
				t.Errorf("%s: err=%v got=%q want=%q", r.Program, r.Err, r.Got, r.Want)
			}
		})
	}
}

func TestSynthesizedSpecShape(t *testing.T) {
	d := discover(t, sparc.New())
	if d.SpecErr != nil {
		t.Fatalf("synthesis: %v", d.SpecErr)
	}
	spec := d.Spec
	// Fig. 15(e): SPARC multiplication is a software-call combination.
	if spec.Ops == nil {
		t.Fatal("no op templates")
	}
	mul := spec.Coverage()["Mul"]
	if mul < 5 {
		t.Errorf("SPARC Mul covered by %d instructions; want the .mul call sequence", mul)
	}
	// Fig. 15(d): branches are compare+branch combinations.
	if spec.Coverage()["BranchEQ"] < 2 {
		t.Errorf("SPARC BranchEQ = %d instructions, want a cmp+be combination", spec.Coverage()["BranchEQ"])
	}
	text := spec.RenderBEG(d.Model)
	for _, want := range []string{"RULE Mul", "RULE BranchEQ", "call .mul", "REGISTERS"} {
		if !strings.Contains(text, want) {
			t.Errorf("rendered BEG spec missing %q", want)
		}
	}
}

func TestHardwiredRegisterDiscovery(t *testing.T) {
	// E18: the paper's declared missing feature, implemented here.
	cases := map[string]string{"sparc": "%g0", "mips": "$0", "alpha": "$31"}
	for _, tc := range []target.Toolchain{sparc.New(), mips.New(), alpha.New()} {
		d := discover(t, tc)
		reg := cases[tc.Name()]
		if v, ok := d.Model.Hardwired[reg]; !ok || v != 0 {
			t.Errorf("%s: hardwired %s not discovered: %v", tc.Name(), reg, d.Model.Hardwired)
		}
	}
	d := discover(t, x86.New())
	if len(d.Model.Hardwired) != 0 {
		t.Errorf("x86 has no hardwired registers, found %v", d.Model.Hardwired)
	}
}

func TestChainRules(t *testing.T) {
	// Fig. 15(b/c): the displacement mode with offset 0 coincides with the
	// register-indirect mode on displacement machines.
	for _, tc := range []target.Toolchain{x86.New(), mips.New(), alpha.New(), vax.New()} {
		d := discover(t, tc)
		if d.Spec == nil || len(d.Spec.Chains) == 0 {
			t.Errorf("%s: no chain rules derived", tc.Name())
		}
	}
}

// TestBackendErrorPaths: the generated back end must refuse, not
// miscompile, programs beyond the discovered conventions.
func TestBackendErrorPaths(t *testing.T) {
	d := discover(t, x86.New())
	if d.SpecErr != nil {
		t.Fatal(d.SpecErr)
	}
	bad := []Program{
		{"too-many-params", `int f(int a, int b, int c) { return a; } main(){ printf("%i\n", f(1,2,3)); exit(0);}`},
		{"no-exit", `main(){ printf("%i\n", 1); }`},
		{"globals", `int z; main(){ z = 1; printf("%i\n", z); exit(0);}`},
	}
	for _, r := range d.Validate(x86.New(), bad) {
		if r.OK {
			t.Errorf("%s: expected a back-end refusal, got OK", r.Program)
		}
		if r.Err == nil {
			t.Errorf("%s: expected an error", r.Program)
		}
	}
}
