package core

import (
	"strings"
	"testing"

	"srcg/internal/check"
	"srcg/internal/faulty"
	"srcg/internal/target/x86"
)

// TestCheckerGateRetriesAndDrops: with the output quorum disabled, scratch
// noise reaches mutation analysis and corrupts data-flow graphs; the
// checker gate must catch the damage — re-running condemned analyses with
// fresh seeds and dropping incorrigible samples — instead of shipping
// suspect graphs or aborting. Noise interleaving varies run to run, so the
// assertions aggregate over seeds and check structural invariants rather
// than exact counts.
func TestCheckerGateRetriesAndDrops(t *testing.T) {
	retried, dropped := 0, 0
	for _, seed := range []int64{1, 2, 3} {
		inj := faulty.New(x86.New(), faulty.Config{Seed: seed, Rate: 0, Noise: 0.03})
		d, err := Discover(inj, Options{Seed: 11, QuorumN: 1, Check: true})
		if err != nil {
			continue // noise killed a bootstrap probe; acceptable degradation
		}
		retried += d.CheckRetried
		dropped += len(d.Dropped)

		for name, reason := range d.Dropped {
			if d.Skipped[name] != reason {
				t.Errorf("seed %d: dropped sample %s missing from Skipped", seed, name)
			}
			if _, ok := d.Analyses[name]; ok {
				t.Errorf("seed %d: dropped sample %s still has an analysis", seed, name)
			}
			if _, ok := d.Graphs[name]; ok {
				t.Errorf("seed %d: dropped sample %s still has a graph", seed, name)
			}
		}
		// Every drop surfaces as an SA015 warning in the check report.
		sa015 := map[string]bool{}
		for _, diag := range d.CheckReport.Diags {
			if diag.Code == check.CodeSampleDropped {
				if diag.Severity != check.Warning {
					t.Error("SA015 is graceful degradation, not an error")
				}
				sa015[diag.Sample] = true
			}
		}
		for name := range d.Dropped {
			if !sa015[name] {
				t.Errorf("seed %d: dropped sample %s has no SA015 diagnostic", seed, name)
			}
		}
		if len(sa015) != len(d.Dropped) {
			t.Errorf("seed %d: %d SA015 diagnostics for %d dropped samples",
				seed, len(sa015), len(d.Dropped))
		}
		if d.CheckRetried > 0 || len(d.Dropped) > 0 {
			if !strings.Contains(d.Report(), "resilience:") {
				t.Errorf("seed %d: Report() omits the resilience summary", seed)
			}
		}
		if !strings.Contains(d.Report(), "probe:") {
			t.Errorf("seed %d: Report() omits the probe summary", seed)
		}
	}
	if retried == 0 {
		t.Error("no analysis was ever retried under quorum-disabled noise")
	}
	if dropped == 0 {
		t.Error("no sample was ever dropped under quorum-disabled noise")
	}
}

// TestCleanRunNeverTripsGate: on an honest machine the gate must be inert.
func TestCleanRunNeverTripsGate(t *testing.T) {
	d, err := Discover(x86.New(), Options{Seed: 11, Check: true})
	if err != nil {
		t.Fatal(err)
	}
	if d.CheckRetried != 0 || len(d.Dropped) != 0 {
		t.Errorf("clean run: retried=%d dropped=%d; the gate must be inert",
			d.CheckRetried, len(d.Dropped))
	}
	if errs := d.CheckReport.Errors(); errs != 0 {
		t.Errorf("clean run: %d check errors\n%s", errs, d.CheckReport)
	}
}

// TestRetrySeedIsDeterministicAndDistinct pins the retry-seed derivation:
// re-analysis must be reproducible, yet actually different per sample and
// per attempt (same seed = same mutation schedule = same wrong answer).
func TestRetrySeedIsDeterministicAndDistinct(t *testing.T) {
	if retrySeed(11, "int.add.b_c", 1) != retrySeed(11, "int.add.b_c", 1) {
		t.Error("retrySeed is not deterministic")
	}
	seen := map[int64]string{}
	for _, name := range []string{"int.add.b_c", "int.sub.b_c", "goto.fwd"} {
		for retry := 1; retry <= 3; retry++ {
			s := retrySeed(11, name, retry)
			if s == 11 || s == 12 {
				t.Errorf("retrySeed(%s,%d) collides with the run's own seeds", name, retry)
			}
			if prev, ok := seen[s]; ok {
				t.Errorf("retrySeed collision: %s/%d and %s", name, retry, prev)
			}
			seen[s] = name
		}
	}
}

func TestCountErrors(t *testing.T) {
	diags := []check.Diagnostic{
		{Code: "SA001", Severity: check.Error},
		{Code: "SA015", Severity: check.Warning},
		{Code: "SA002", Severity: check.Error},
	}
	if got := countErrors(diags); got != 2 {
		t.Errorf("countErrors = %d; want 2 (warnings do not condemn a graph)", got)
	}
}
