package core

import (
	"fmt"

	"srcg/internal/asm"
	"srcg/internal/beg"
	"srcg/internal/cc"
	"srcg/internal/ir"
	"srcg/internal/obs"
	"srcg/internal/pool"
	"srcg/internal/probe"
	"srcg/internal/target"
)

// Program is one validation program in mini-C.
type Program struct {
	Name   string
	Source string
}

// ValidationSuite exercises every part of a synthesized back end:
// arithmetic, logic, shifts, control flow, loops, recursion, and calls.
var ValidationSuite = []Program{
	{"arith", `main(){int a=313,b=109,c; c = a*b + a/b - a%b; printf("%i\n", c); exit(0);}`},
	{"logic", `main(){int a=503,b=3,c; c = ((a<<b) ^ (a>>1)) & (a|b); printf("%i\n", c); exit(0);}`},
	{"branches", `main(){int a=5,b=9,c=0;
		if (a < b) c = c + 1;
		if (a > b) c = c + 10;
		if (a == 5) c = c + 100;
		if (b != 9) c = c + 1000;
		if (a <= 5) c = c + 10000;
		if (b >= 10) c = c + 100000;
		printf("%i\n", c); exit(0);}`},
	{"loop", `main(){int i=0,s=0; while (i<25) { s = s + i*i; i = i + 1; } printf("%i\n", s); exit(0);}`},
	{"fib", `int fib(int n){ if (n < 2) return n; return fib(n-1) + fib(n-2); }
		main(){int r; r = fib(15); printf("%i\n", r); exit(0);}`},
	{"gcd", `int gcd(int a, int b){ while (b != 0) { int t; t = a % b; a = b; b = t; } return a; }
		main(){int r; r = gcd(20448, 2841); printf("%i\n", r); exit(0);}`},
	{"multiprint", `main(){int i=1; while (i<6) { printf("%i\n", i*i); i = i + 1; } printf("%i\n", 999); exit(0);}`},
	{"negatives", `main(){int a=-37,b=5,c; c = a/b + a%b + (-a); printf("%i\n", c); exit(0);}`},
	{"bitops", `main(){int a=503,b=3,c; c = (a<<b) + (~a & 255) + (-b) + (a ^ 89); printf("%i\n", c); exit(0);}`},
	{"calls", `int sq(int x){ return x*x; }
		int hyp2(int a, int b){ return sq(a) + sq(b); }
		main(){int r; r = hyp2(9, 12) - sq(5); printf("%i\n", r); exit(0);}`},
}

// ValidationResult records one program's outcome on the generated back end.
type ValidationResult struct {
	Program string
	OK      bool
	Err     error
	Got     string
	Want    string
}

// Validate compiles each program through the generated back end, runs it
// on the target, and compares against the reference interpreter — the
// strongest check available for an "(almost) correct" spec (§7.2).
func (d *Discovery) Validate(tc target.Toolchain, progs []Program) []ValidationResult {
	out := make([]ValidationResult, 0, len(progs))
	backend := beg.New(d.Spec)
	// Validation drives the toolchain through the same resilient probe
	// layer as discovery: transient faults retry, noisy runs go to quorum.
	// It shares the discovery run's tracer (its own prober, though — the
	// noisy latch must not leak between toolchains), so validation probes
	// land in the same trace under their own phase span.
	cfg := probe.DefaultConfig()
	cfg.Trace = d.Trace
	pr := probe.New(tc, cfg)
	_ = d.Trace.Phase(obs.PhaseValidation, func() error {
		out = d.validate(pr, backend, progs)
		return nil
	})
	return out
}

func (d *Discovery) validate(pr *probe.Prober, backend *beg.Backend, progs []Program) []ValidationResult {
	// Programs validate independently, so they fan out over the pool;
	// results come back in program order regardless of worker count.
	workers := 1
	if d.Rig != nil {
		workers = d.Rig.Workers
	}
	return pool.Run(pr, workers, len(progs), func(i int, sub *probe.Prober) ValidationResult {
		p := progs[i]
		r := ValidationResult{Program: p.Name}
		unit, err := cc.CompileUnit(p.Source)
		if err != nil {
			r.Err = fmt.Errorf("front end: %w", err)
			return r
		}
		want, err := ir.Eval(unit)
		if err != nil {
			r.Err = fmt.Errorf("reference eval: %w", err)
			return r
		}
		r.Want = want
		text, err := backend.Compile(unit)
		if err != nil {
			r.Err = fmt.Errorf("back end: %w", err)
			return r
		}
		u, err := sub.Assemble(text)
		if err != nil {
			r.Err = fmt.Errorf("assemble: %w", err)
			return r
		}
		img, err := sub.Link([]*asm.Unit{u})
		if err != nil {
			r.Err = fmt.Errorf("link: %w", err)
			return r
		}
		got, err := sub.Execute(img)
		if err != nil {
			r.Err = fmt.Errorf("execute: %w", err)
			return r
		}
		r.Got = got
		r.OK = got == want
		return r
	})
}
