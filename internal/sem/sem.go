// Package sem implements the semantic domain of the Extractor (paper §5.2):
// the RISC-like primitive set of Fig. 14, semantic trees built from it, the
// interpreter I that evaluates an instruction region under an environment,
// and the machinery the reverse interpreter R needs to enumerate and test
// candidate interpretations. Arithmetic is performed in the integer width
// discovered by enquire (§5.2.1: "simulate arithmetic in the correct
// precision").
package sem

import (
	"fmt"
	"sort"
	"strings"
)

// Primitive names (Fig. 14). compare yields an encoded condition (-1,0,1);
// the is* primitives map conditions to booleans (0/1); br consumes a
// boolean. Values are integers; addresses are opaque tokens.
const (
	PArg  = "arg"  // value of input port n
	PLit  = "lit"  // small-constant leaf (0, 1, wordbits-1)
	PLoad = "load" // load(addr)
	PAdd  = "add"
	PSub  = "sub"
	PMul  = "mul"
	PDiv  = "div"
	PMod  = "mod"
	PAnd  = "and"
	POr   = "or"
	PXor  = "xor"
	PShl  = "shiftLeft"
	PShr  = "shiftRight" // arithmetic
	// PAsh is the signed-count arithmetic shift: left for non-negative
	// counts, right by the magnitude for negative ones. It is not in the
	// paper's Fig. 14 vocabulary — the paper reports the VAX's ashl as
	// unhandled for exactly this reason (§5.2.3) — and is offered to the
	// reverse interpreter only under the SignedShifts extension.
	PAsh  = "shiftSigned"
	PNeg  = "neg"
	PNot  = "not"
	PMove = "move"
	PCmp  = "compare"
	PIsEQ = "isEQ"
	PIsNE = "isNE"
	PIsLT = "isLT"
	PIsLE = "isLE"
	PIsGT = "isGT"
	PIsGE = "isGE"
)

// Tree is a semantic expression tree over the primitives. Input ports are
// referenced by stable string keys ("a0" = explicit operand 0, "r%eax" =
// implicit register, "h" = hidden channel) so that one signature's
// semantics applies uniformly across samples.
type Tree struct {
	Prim string
	Key  string // PArg: input port key
	Lit  int64  // PLit
	Kids []*Tree
}

// Leaf constructors.
func Arg(key string) *Tree       { return &Tree{Prim: PArg, Key: key} }
func Lit(v int64) *Tree          { return &Tree{Prim: PLit, Lit: v} }
func Load(a *Tree) *Tree         { return &Tree{Prim: PLoad, Kids: []*Tree{a}} }
func Un(p string, x *Tree) *Tree { return &Tree{Prim: p, Kids: []*Tree{x}} }
func Bin(p string, x, y *Tree) *Tree {
	return &Tree{Prim: p, Kids: []*Tree{x, y}}
}

// Size counts tree nodes — the reverse interpreter prefers the shortest
// interpretation (§5.2.1).
func (t *Tree) Size() int {
	n := 1
	for _, k := range t.Kids {
		n += k.Size()
	}
	return n
}

func (t *Tree) String() string {
	switch t.Prim {
	case PArg:
		return t.Key
	case PLit:
		return fmt.Sprintf("%d", t.Lit)
	default:
		parts := make([]string, len(t.Kids))
		for i, k := range t.Kids {
			parts[i] = k.String()
		}
		return t.Prim + "(" + strings.Join(parts, ", ") + ")"
	}
}

// Equal reports structural equality.
func (t *Tree) Equal(o *Tree) bool {
	if t == nil || o == nil {
		return t == o
	}
	if t.Prim != o.Prim || t.Key != o.Key || t.Lit != o.Lit || len(t.Kids) != len(o.Kids) {
		return false
	}
	for i := range t.Kids {
		if !t.Kids[i].Equal(o.Kids[i]) {
			return false
		}
	}
	return true
}

// Value is an integer or an opaque address token.
type Value struct {
	Addr string // non-empty: an address
	N    int64
}

// IsAddr reports whether the value is an address token.
func (v Value) IsAddr() bool { return v.Addr != "" }

func (v Value) String() string {
	if v.IsAddr() {
		return "&" + v.Addr
	}
	return fmt.Sprintf("%d", v.N)
}

// State is the interpreter environment: a memory keyed by address tokens
// plus the integer width.
type State struct {
	Mem  map[string]int64
	Bits int
}

// NewState creates an empty environment of the given width.
func NewState(bits int) *State {
	return &State{Mem: map[string]int64{}, Bits: bits}
}

// trunc wraps v to the environment width.
func (st *State) trunc(v int64) int64 {
	if st.Bits >= 64 {
		return v
	}
	shift := 64 - uint(st.Bits)
	return (v << shift) >> shift
}

// Eval evaluates the tree given the instruction's input port values.
func (t *Tree) Eval(in map[string]Value, st *State) (Value, error) {
	switch t.Prim {
	case PArg:
		v, ok := in[t.Key]
		if !ok {
			return Value{}, fmt.Errorf("sem: no input port %q", t.Key)
		}
		return v, nil
	case PLit:
		return Value{N: t.Lit}, nil
	case PLoad:
		a, err := t.Kids[0].Eval(in, st)
		if err != nil {
			return Value{}, err
		}
		if !a.IsAddr() {
			return Value{}, fmt.Errorf("sem: load of non-address %s", a)
		}
		v, ok := st.Mem[a.Addr]
		if !ok {
			return Value{}, fmt.Errorf("sem: load of undefined cell %s", a.Addr)
		}
		return Value{N: v}, nil
	case PMove:
		return t.Kids[0].Eval(in, st)
	}
	// Numeric primitives: all operands must be integers.
	args := make([]int64, len(t.Kids))
	for i, k := range t.Kids {
		v, err := k.Eval(in, st)
		if err != nil {
			return Value{}, err
		}
		if v.IsAddr() {
			return Value{}, fmt.Errorf("sem: %s of address %s", t.Prim, v)
		}
		args[i] = v.N
	}
	var r int64
	switch t.Prim {
	case PAdd:
		r = args[0] + args[1]
	case PSub:
		r = args[0] - args[1]
	case PMul:
		r = args[0] * args[1]
	case PDiv:
		if args[1] == 0 {
			return Value{}, fmt.Errorf("sem: division by zero")
		}
		r = args[0] / args[1]
	case PMod:
		if args[1] == 0 {
			return Value{}, fmt.Errorf("sem: division by zero")
		}
		r = args[0] % args[1]
	case PAnd:
		r = args[0] & args[1]
	case POr:
		r = args[0] | args[1]
	case PXor:
		r = args[0] ^ args[1]
	case PShl:
		if args[1] < 0 || args[1] >= 64 {
			return Value{}, fmt.Errorf("sem: shift count %d", args[1])
		}
		r = args[0] << uint(args[1])
	case PShr:
		if args[1] < 0 || args[1] >= 64 {
			return Value{}, fmt.Errorf("sem: shift count %d", args[1])
		}
		r = args[0] >> uint(args[1])
	case PAsh:
		if args[1] <= -64 || args[1] >= 64 {
			return Value{}, fmt.Errorf("sem: shift count %d", args[1])
		}
		if args[1] < 0 {
			r = args[0] >> uint(-args[1])
		} else {
			r = args[0] << uint(args[1])
		}
	case PNeg:
		r = -args[0]
	case PNot:
		r = ^args[0]
	case PCmp:
		switch {
		case args[0] < args[1]:
			r = -1
		case args[0] == args[1]:
			r = 0
		default:
			r = 1
		}
		return Value{N: r}, nil // condition codes are not width-truncated
	case PIsEQ:
		r = b2i(args[0] == 0)
	case PIsNE:
		r = b2i(args[0] != 0)
	case PIsLT:
		r = b2i(args[0] < 0)
	case PIsLE:
		r = b2i(args[0] <= 0)
	case PIsGT:
		r = b2i(args[0] > 0)
	case PIsGE:
		r = b2i(args[0] >= 0)
	default:
		return Value{}, fmt.Errorf("sem: unknown primitive %q", t.Prim)
	}
	return Value{N: st.trunc(r)}, nil
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// Sem is one instruction signature's semantic interpretation: a tree per
// output port (keyed like input ports) plus an optional branch condition
// (the branch target comes from the instruction's label operand).
type Sem struct {
	Outs map[string]*Tree // output port key -> value tree
	Cond *Tree            // non-nil: branch taken when the tree evaluates non-zero
}

// Size is the total interpretation size (shorter is preferred, §5.2.1).
func (s *Sem) Size() int {
	n := 0
	for _, t := range s.Outs {
		n += t.Size()
	}
	if s.Cond != nil {
		n += s.Cond.Size()
	}
	return n
}

func (s *Sem) String() string {
	keys := make([]string, 0, len(s.Outs))
	for k := range s.Outs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys)+1)
	for _, k := range keys {
		parts = append(parts, k+"="+s.Outs[k].String())
	}
	if s.Cond != nil {
		parts = append(parts, "br="+s.Cond.String())
	}
	return strings.Join(parts, "; ")
}
