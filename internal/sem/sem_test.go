package sem

import (
	"testing"
	"testing/quick"
)

func env(vals map[string]Value) map[string]Value { return vals }

func evalInt(t *testing.T, tree *Tree, in map[string]Value, bits int) int64 {
	t.Helper()
	st := NewState(bits)
	v, err := tree.Eval(in, st)
	if err != nil {
		t.Fatalf("Eval(%s): %v", tree, err)
	}
	if v.IsAddr() {
		t.Fatalf("Eval(%s) returned address", tree)
	}
	return v.N
}

// TestPrimitivesMatchGo checks every arithmetic primitive against native
// 32-bit Go semantics on random operands.
func TestPrimitivesMatchGo(t *testing.T) {
	prims := map[string]func(a, b int32) (int32, bool){
		PAdd: func(a, b int32) (int32, bool) { return a + b, true },
		PSub: func(a, b int32) (int32, bool) { return a - b, true },
		PMul: func(a, b int32) (int32, bool) { return a * b, true },
		PDiv: func(a, b int32) (int32, bool) {
			if b == 0 || (a == -1<<31 && b == -1) {
				return 0, false
			}
			return a / b, true
		},
		PMod: func(a, b int32) (int32, bool) {
			if b == 0 || (a == -1<<31 && b == -1) {
				return 0, false
			}
			return a % b, true
		},
		PAnd: func(a, b int32) (int32, bool) { return a & b, true },
		POr:  func(a, b int32) (int32, bool) { return a | b, true },
		PXor: func(a, b int32) (int32, bool) { return a ^ b, true },
	}
	for prim, ref := range prims {
		prim, ref := prim, ref
		f := func(a, b int32) bool {
			want, ok := ref(a, b)
			if !ok {
				return true
			}
			tree := Bin(prim, Arg("x"), Arg("y"))
			in := env(map[string]Value{"x": {N: int64(a)}, "y": {N: int64(b)}})
			st := NewState(32)
			got, err := tree.Eval(in, st)
			return err == nil && got.N == int64(want)
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", prim, err)
		}
	}
}

func TestShiftsAndUnary(t *testing.T) {
	in := env(map[string]Value{"x": {N: 503}, "y": {N: 3}})
	if got := evalInt(t, Bin(PShl, Arg("x"), Arg("y")), in, 32); got != 4024 {
		t.Errorf("shl = %d", got)
	}
	if got := evalInt(t, Bin(PShr, Lit(-64), Lit(3)), in, 32); got != -8 {
		t.Errorf("shr = %d (must be arithmetic)", got)
	}
	if got := evalInt(t, Un(PNeg, Arg("x")), in, 32); got != -503 {
		t.Errorf("neg = %d", got)
	}
	if got := evalInt(t, Un(PNot, Lit(0)), in, 32); got != -1 {
		t.Errorf("not = %d", got)
	}
}

// TestSignedShiftPrimitive checks the ash extension: non-negative counts
// shift left, negative counts shift right arithmetically, and the property
// ash(x, n) == shl(x, n) / shr(x, -n) holds on random operands.
func TestSignedShiftPrimitive(t *testing.T) {
	in := env(map[string]Value{})
	if got := evalInt(t, Bin(PAsh, Lit(5), Lit(3)), in, 32); got != 40 {
		t.Errorf("ash(5,3) = %d, want 40", got)
	}
	if got := evalInt(t, Bin(PAsh, Lit(-64), Lit(-3)), in, 32); got != -8 {
		t.Errorf("ash(-64,-3) = %d, want -8 (arithmetic)", got)
	}
	if got := evalInt(t, Bin(PAsh, Lit(7), Lit(0)), in, 32); got != 7 {
		t.Errorf("ash(7,0) = %d, want 7", got)
	}
	for _, bad := range []int64{64, -64, 99} {
		if _, err := Bin(PAsh, Lit(1), Lit(bad)).Eval(in, NewState(32)); err == nil {
			t.Errorf("ash count %d must fail", bad)
		}
	}
	f := func(x int32, n uint8) bool {
		k := int64(n % 32)
		inn := env(map[string]Value{"x": {N: int64(x)}})
		st := NewState(32)
		left, err1 := Bin(PAsh, Arg("x"), Lit(k)).Eval(inn, st)
		wantL, err2 := Bin(PShl, Arg("x"), Lit(k)).Eval(inn, st)
		if err1 != nil || err2 != nil || left.N != wantL.N {
			return false
		}
		right, err3 := Bin(PAsh, Arg("x"), Lit(-k)).Eval(inn, st)
		wantR, err4 := Bin(PShr, Arg("x"), Lit(k)).Eval(inn, st)
		return err3 == nil && err4 == nil && right.N == wantR.N
	}
	if err := quick.Check(f, nil); err != nil {
		t.Errorf("ash/shl/shr agreement: %v", err)
	}
}

func TestWidthTruncation(t *testing.T) {
	in := env(map[string]Value{"x": {N: 1<<31 - 1}, "y": {N: 1}})
	if got := evalInt(t, Bin(PAdd, Arg("x"), Arg("y")), in, 32); got != -1<<31 {
		t.Errorf("32-bit wrap = %d", got)
	}
	if got := evalInt(t, Bin(PAdd, Arg("x"), Arg("y")), in, 64); got != 1<<31 {
		t.Errorf("64-bit add = %d", got)
	}
}

func TestCompareAndRelations(t *testing.T) {
	cases := []struct {
		a, b int64
		rel  string
		want int64
	}{
		{1, 2, PIsLT, 1}, {2, 1, PIsLT, 0}, {2, 2, PIsLT, 0},
		{2, 2, PIsEQ, 1}, {1, 2, PIsEQ, 0},
		{3, 2, PIsGT, 1}, {2, 2, PIsGE, 1}, {1, 2, PIsLE, 1}, {1, 2, PIsNE, 1},
	}
	for _, c := range cases {
		tree := Un(c.rel, Bin(PCmp, Arg("a"), Arg("b")))
		in := env(map[string]Value{"a": {N: c.a}, "b": {N: c.b}})
		if got := evalInt(t, tree, in, 32); got != c.want {
			t.Errorf("%s(compare(%d,%d)) = %d, want %d", c.rel, c.a, c.b, got, c.want)
		}
	}
}

func TestLoadStoreThroughMemory(t *testing.T) {
	st := NewState(32)
	st.Mem["cell"] = 77
	tree := Load(Arg("p"))
	in := env(map[string]Value{"p": {Addr: "cell"}})
	v, err := tree.Eval(in, st)
	if err != nil || v.N != 77 {
		t.Errorf("load = %v, %v", v, err)
	}
	if _, err := tree.Eval(env(map[string]Value{"p": {N: 5}}), st); err == nil {
		t.Error("load of a non-address must fail")
	}
	if _, err := Load(Arg("p")).Eval(env(map[string]Value{"p": {Addr: "other"}}), st); err == nil {
		t.Error("load of an undefined cell must fail")
	}
}

func TestErrors(t *testing.T) {
	in := env(map[string]Value{"a": {Addr: "x"}, "b": {N: 0}})
	if _, err := Bin(PAdd, Arg("a"), Arg("b")).Eval(in, NewState(32)); err == nil {
		t.Error("arithmetic on an address must fail")
	}
	if _, err := Bin(PDiv, Lit(1), Arg("b")).Eval(in, NewState(32)); err == nil {
		t.Error("division by zero must fail")
	}
	if _, err := Bin(PShl, Lit(1), Lit(99)).Eval(in, NewState(32)); err == nil {
		t.Error("oversized shift must fail")
	}
	if _, err := Arg("zzz").Eval(in, NewState(32)); err == nil {
		t.Error("missing input port must fail")
	}
}

func TestTreeEqualSizeString(t *testing.T) {
	a := Bin(PAdd, Load(Arg("a0")), Lit(5))
	b := Bin(PAdd, Load(Arg("a0")), Lit(5))
	c := Bin(PAdd, Load(Arg("a0")), Lit(6))
	if !a.Equal(b) || a.Equal(c) {
		t.Error("structural equality broken")
	}
	if a.Size() != 4 {
		t.Errorf("size = %d, want 4", a.Size())
	}
	if a.String() != "add(load(a0), 5)" {
		t.Errorf("string = %q", a)
	}
}

func TestSemString(t *testing.T) {
	s := &Sem{Outs: map[string]*Tree{
		"a1":    Load(Arg("a0")),
		"r%edx": Un(PNeg, Arg("a0")),
	}}
	got := s.String()
	// Keys render in sorted order for determinism.
	if got != "a1=load(a0); r%edx=neg(a0)" {
		t.Errorf("String = %q", got)
	}
}
