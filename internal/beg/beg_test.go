package beg

import (
	"strings"
	"testing"
)

func TestRenameLocalLabels(t *testing.T) {
	in := []string{
		"\tjmp Lret_Q",
		"Lret_Q:",
		"\tret",
	}
	out := renameLocalLabels(in, "_fib")
	if out[0] != "\tjmp Lret_Q_fib" || out[1] != "Lret_Q_fib:" {
		t.Errorf("renamed = %q", out)
	}
	// Lines without label definitions pass through untouched.
	plain := renameLocalLabels([]string{"\tnop"}, "_x")
	if plain[0] != "\tnop" {
		t.Errorf("plain = %q", plain)
	}
	// A reference that merely contains the label as a substring of a
	// longer token must not be rewritten.
	tricky := renameLocalLabels([]string{"L1:", "\tjmp L12", "\tjmp L1"}, "_f")
	if !strings.Contains(tricky[1], "L12") || strings.Contains(tricky[1], "L12_f") {
		t.Errorf("substring label corrupted: %q", tricky)
	}
	if tricky[2] != "\tjmp L1_f" {
		t.Errorf("reference not renamed: %q", tricky)
	}
}
