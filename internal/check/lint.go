package check

import (
	"fmt"
	"sort"
	"strings"

	"srcg/internal/discovery"
	"srcg/internal/ir"
	"srcg/internal/lexer"
	"srcg/internal/synth"
)

// LintSpec checks the synthesized machine description against the probed
// syntax model: no two operations may share one instruction sequence,
// every emitted immediate must fall inside the range the lexer bisected
// for that operand, the operation templates' scratch registers must not
// overlap the frame-base class, and every operand must use an
// addressing-mode shape some sample witnessed.
func LintSpec(m *discovery.Model, s *synth.Spec) []Diagnostic {
	var diags []Diagnostic
	tmpls := namedTemplates(s)

	// SA010: contradictory templates — identical instruction sequences
	// claimed to implement different operations.
	byBody := map[string][]string{}
	for _, nt := range tmpls {
		body := strings.Join(nt.t.Lines, "\n")
		byBody[body] = append(byBody[body], nt.name)
	}
	bodies := make([]string, 0, len(byBody))
	for body := range byBody {
		bodies = append(bodies, body)
	}
	sort.Strings(bodies)
	for _, body := range bodies {
		names := byBody[body]
		if len(names) > 1 {
			sort.Strings(names)
			diags = append(diags, errf(CodeDuplicateTemplate, "spec", -1,
				"operations %s share one instruction sequence (%q)",
				strings.Join(names, ", "), strings.Split(body, "\n")[0]))
		}
	}

	// A representative substitution: slot operands for the sources and
	// destination, a small in-range constant, so template lines become
	// classifiable instruction text.
	slot := s.Main.Slots.Slot(0)
	sub := map[string]string{"src1": slot, "src2": slot, "dst": slot, "k": "1"}

	frameRegs := registersIn(m, slot)
	scratch := map[string]string{} // register -> first template using it

	for _, nt := range tmpls {
		for _, raw := range nt.t.Render(sub) {
			if strings.Contains(raw, "{") {
				continue // label/procedure placeholders have no syntax to lint
			}
			op, args := lexer.SplitLine(raw)
			if op == "" || strings.HasPrefix(op, ".") {
				continue
			}
			for idx, text := range args {
				arg := lexer.ClassifyText(m, text)
				switch arg.Kind {
				case discovery.KLit:
					key := fmt.Sprintf("%s:%d", op, idx)
					if r, ok := m.ImmRange[key]; ok && (arg.Lit < r[0] || arg.Lit > r[1]) {
						diags = append(diags, errf(CodeImmediateRange, "spec", -1,
							"template %s emits %q: immediate %d outside the probed range [%d,%d] of %s",
							nt.name, raw, arg.Lit, r[0], r[1], key))
					}
				case discovery.KReg:
					reg := arg.Regs[0]
					if _, hard := m.Hardwired[reg]; !hard {
						if _, seen := scratch[reg]; !seen {
							scratch[reg] = nt.name
						}
					}
					fallthrough
				case discovery.KMem:
					if !witnessedMode(m, arg.ModeShape) {
						diags = append(diags, errf(CodeUnwitnessedMode, "spec", -1,
							"template %s operand %q uses addressing mode %s, witnessed by no sample",
							nt.name, text, arg.ModeShape))
					}
				}
			}
		}
	}

	// SA012: the scratch class of the operation templates must not
	// overlap the frame-base class (hardwired sinks are exempt: writing
	// to an always-zero register is the architectural no-op the
	// delay-slot fillers rely on).
	var overlapping []string
	for reg := range frameRegs {
		if tmpl, ok := scratch[reg]; ok {
			overlapping = append(overlapping, fmt.Sprintf("%s (in %s)", reg, tmpl))
		}
	}
	if len(overlapping) > 0 {
		sort.Strings(overlapping)
		diags = append(diags, errf(CodeRegisterClassOverlap, "spec", -1,
			"frame-base registers double as template scratch registers: %s",
			strings.Join(overlapping, ", ")))
	}
	return diags
}

// NamedRule pairs one spec rule with its deterministic display name
// ("Op/Add", "Move", "Branch/EQ", "Call1", …) — the enumeration the
// machine-description analyzers share.
type NamedRule struct {
	Name string
	T    *synth.Template
}

// SpecRules collects every sample-derived rule of the spec in the
// deterministic order namedTemplates establishes, exported for the
// semantic analyzer (check/mdverify).
func SpecRules(s *synth.Spec) []NamedRule {
	nts := namedTemplates(s)
	out := make([]NamedRule, len(nts))
	for i, nt := range nts {
		out[i] = NamedRule{Name: nt.name, T: nt.t}
	}
	return out
}

type namedTemplate struct {
	name string
	t    *synth.Template
}

// namedTemplates collects every sample-derived template of the spec in a
// deterministic order. Frame headers and return tails are excluded: they
// come from the §7.2 procedure probes, not the sample set, so the
// witnessed-mode ledger does not cover them.
func namedTemplates(s *synth.Spec) []namedTemplate {
	var out []namedTemplate
	add := func(name string, t *synth.Template) {
		if t != nil && len(t.Lines) > 0 {
			out = append(out, namedTemplate{name, t})
		}
	}
	ops := make([]int, 0, len(s.Ops))
	for op := range s.Ops {
		ops = append(ops, int(op))
	}
	sort.Ints(ops)
	for _, op := range ops {
		add("Op/"+ir.Op(op).String(), s.Ops[ir.Op(op)])
	}
	add("Move", s.Move)
	add("Const", s.Const)
	rels := make([]int, 0, len(s.Branches))
	for rel := range s.Branches {
		rels = append(rels, int(rel))
	}
	sort.Ints(rels)
	for _, rel := range rels {
		add("Branch/"+ir.Rel(rel).String(), s.Branches[ir.Rel(rel)])
	}
	add("Jump", s.Jump)
	ns := make([]int, 0, len(s.Calls))
	for n := range s.Calls {
		ns = append(ns, n)
	}
	sort.Ints(ns)
	for _, n := range ns {
		add(fmt.Sprintf("Call%d", n), s.Calls[n])
	}
	add("Print", s.Print)
	return out
}

// registersIn collects the model registers occurring in an operand text.
func registersIn(m *discovery.Model, text string) map[string]bool {
	out := map[string]bool{}
	for _, r := range lexer.ClassifyText(m, text).Regs {
		out[r] = true
	}
	return out
}

func witnessedMode(m *discovery.Model, shape string) bool {
	for _, mode := range m.Modes {
		if mode == shape {
			return true
		}
	}
	return false
}
