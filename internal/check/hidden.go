package check

import (
	"sort"
	"strings"

	"srcg/internal/lexer"
	"srcg/internal/mutate"
	"srcg/internal/synth"
)

// LintHiddenPairs cross-checks the synthesized Branches/Calls templates
// against the hidden-channel pairs mutation analysis observed (§7.1): if
// the samples showed that an opcode consumes a hidden value (condition
// codes, hi/lo) written by some producer opcode, then any template that
// emits the consumer must emit one of its observed producers on an earlier
// line — otherwise the generated code branches (or calls) on garbage the
// template never set up.
func LintHiddenPairs(analyses map[string]*mutate.Analysis, s *synth.Spec) []Diagnostic {
	ledger := hiddenPairLedger(analyses)
	if len(ledger) == 0 || s == nil {
		return nil
	}
	var diags []Diagnostic
	for _, nt := range namedTemplates(s) {
		if !strings.HasPrefix(nt.name, "Branch") && !strings.HasPrefix(nt.name, "Call") {
			continue
		}
		ops := templateOps(nt.t.Lines)
		for i, op := range ops {
			producers, consuming := ledger[op]
			if !consuming {
				continue
			}
			ok := false
			for j := 0; j < i; j++ {
				if producers[ops[j]] {
					ok = true
					break
				}
			}
			if !ok {
				diags = append(diags, errf(CodeUnpairedHiddenConsumer, "spec", -1,
					"template %s emits %q, which samples observed reading a hidden value "+
						"written by %s, but no producing instruction precedes it",
					nt.name, op, orList(producers)))
			}
		}
	}
	return diags
}

// hiddenPairLedger collects, over every analyzed sample, the opcodes seen
// consuming a hidden channel, mapped to the opcodes seen producing the
// value they read. Filler instructions the Preprocessor inserted carry no
// sample semantics and do not witness either side.
//
// An opcode some sample observed running standalone — in a group with no
// incoming hidden edge — is exempt: the samples themselves witness that it
// does not require a producer. This is what separates a conditional branch
// (every observation reads condition codes) from x86's call (which reads a
// pushed stack argument when there is one, and nothing when there isn't:
// a zero-argument Call template must not be forced to push).
func hiddenPairLedger(analyses map[string]*mutate.Analysis) map[string]map[string]bool {
	ledger := map[string]map[string]bool{}
	standalone := map[string]bool{}
	for _, a := range analyses {
		if a == nil {
			continue
		}
		consuming := map[int]bool{}
		for _, h := range a.Hidden {
			if h.From < 0 || h.To < 0 || h.From >= len(a.Groups) || h.To >= len(a.Groups) {
				continue
			}
			consuming[h.To] = true
			producers := groupOps(a, h.From)
			for _, consumer := range groupOps(a, h.To) {
				if ledger[consumer] == nil {
					ledger[consumer] = map[string]bool{}
				}
				for _, p := range producers {
					ledger[consumer][p] = true
				}
			}
		}
		for g := range a.Groups {
			if consuming[g] {
				continue
			}
			for _, op := range groupOps(a, g) {
				standalone[op] = true
			}
		}
	}
	// An opcode observed on both sides of hidden pairs (e.g. a
	// compare-and-branch hybrid) would demand itself as its own producer;
	// drop self-pairs. Standalone witnesses exempt the opcode entirely.
	for consumer, producers := range ledger {
		delete(producers, consumer)
		if len(producers) == 0 || standalone[consumer] {
			delete(ledger, consumer)
		}
	}
	return ledger
}

// groupOps lists the non-filler opcodes of one analysis group.
func groupOps(a *mutate.Analysis, group int) []string {
	var out []string
	for i := a.Groups[group][0]; i < a.Groups[group][1] && i < len(a.Region); i++ {
		if a.Filler[i] {
			continue
		}
		out = append(out, a.Region[i].Op)
	}
	return out
}

// templateOps extracts the opcode of every instruction line of a template
// (directives and label definitions carry no opcode).
func templateOps(lines []string) []string {
	out := make([]string, 0, len(lines))
	for _, raw := range lines {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasSuffix(line, ":") {
			continue
		}
		op, _ := lexer.SplitLine(line)
		if op == "" || strings.HasPrefix(op, ".") {
			continue
		}
		out = append(out, op)
	}
	return out
}

func orList(set map[string]bool) string {
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, " or ")
}
