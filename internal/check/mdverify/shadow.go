package mdverify

import (
	"strings"

	"srcg/internal/check"
	"srcg/internal/discovery"
	"srcg/internal/lexer"
	"srcg/internal/synth"
)

// Shadowing runs the overlap pass (SA022) and the cost-monotonicity
// pass (SA023).
//
// Chain rules fire by pattern: the first rule whose premise mode and
// condition constant match wins, so a later rule with an identical
// (mode, constant) pair can never fire — pairwise pattern intersection
// over the finite condition space reduces to this key comparison
// (SA022). Chains carry cost 0; rewriting therefore terminates only if
// the chain graph is acyclic — any cycle lets the rewriter loop without
// ever decreasing cost (SA023). The same monotonicity argument needs
// every template's declared cost to be honest: the rule selector
// compares costs to pick covers, and a cost that disagrees with the
// instructions the template actually emits (or a non-positive cost)
// breaks the ordering the termination proof rests on.
func Shadowing(m *discovery.Model, s *synth.Spec) []check.Diagnostic {
	var diags []check.Diagnostic

	// SA022: a chain rule shadowed by an earlier one with the same
	// premise mode and condition constant.
	type chainKey struct {
		mode     string
		constant int64
	}
	first := map[chainKey]int{}
	for i, c := range s.Chains {
		k := chainKey{c.ModeA, c.Constant}
		if j, ok := first[k]; ok {
			diags = append(diags, errf(check.CodeShadowedRule,
				"chain rule %d (%s -> %s, offset=%d) is shadowed by rule %d matching the same pattern; it can never fire",
				i, c.ModeA, c.ModeB, c.Constant, j))
			continue
		}
		first[k] = i
	}

	// SA023: cycles in the zero-cost chain graph.
	next := map[string][]string{}
	for _, c := range s.Chains {
		next[c.ModeA] = append(next[c.ModeA], c.ModeB)
	}
	// Deterministic DFS order: chains are a slice, so walk premises in
	// first-occurrence order.
	seenPremise := map[string]bool{}
	var modes []string
	for _, c := range s.Chains {
		if !seenPremise[c.ModeA] {
			seenPremise[c.ModeA] = true
			modes = append(modes, c.ModeA)
		}
	}
	state := map[string]int{} // 0 unvisited, 1 on stack, 2 done
	reported := false
	var visit func(mode string, path []string)
	visit = func(mode string, path []string) {
		state[mode] = 1
		for _, to := range next[mode] {
			switch state[to] {
			case 1:
				if !reported {
					reported = true
					cycle := append(append([]string{}, path...), mode, to)
					diags = append(diags, errf(check.CodeRewriteCycle,
						"chain rules form a zero-cost rewrite cycle %s; rewriting cannot be proven to terminate",
						strings.Join(cycle[indexOf(cycle, to):], " -> ")))
				}
			case 0:
				visit(to, append(path, mode))
			}
		}
		state[mode] = 2
	}
	for _, mode := range modes {
		if state[mode] == 0 {
			visit(mode, nil)
		}
	}

	// SA023: cost honesty per rule.
	for _, nr := range check.SpecRules(s) {
		n := instructionCount(nr.T.Lines)
		if nr.T.Instrs <= 0 {
			diags = append(diags, errf(check.CodeRewriteCycle,
				"rule %s declares non-positive cost %d; a zero-cost cover breaks the rewrite ordering",
				nr.Name, nr.T.Instrs))
			continue
		}
		if nr.T.Instrs != n {
			diags = append(diags, errf(check.CodeRewriteCycle,
				"rule %s declares cost %d but emits %d instructions; the cost ordering is dishonest",
				nr.Name, nr.T.Instrs, n))
		}
	}
	return diags
}

// instructionCount counts the machine instructions among template lines,
// skipping blanks, directives, and pure label definitions — the same
// counting the synthesizer's Instrs statistic uses.
func instructionCount(lines []string) int {
	n := 0
	for _, l := range lines {
		op, _ := lexer.SplitLine(strings.TrimSpace(l))
		if op == "" || strings.HasPrefix(op, ".") || strings.HasSuffix(op, ":") {
			continue
		}
		n++
	}
	return n
}

// indexOf returns the first index of x in xs (list is known to hold x).
func indexOf(xs []string, x string) int {
	for i, v := range xs {
		if v == x {
			return i
		}
	}
	return 0
}
