package mdverify

import (
	"sort"
	"strings"

	"srcg/internal/check"
	"srcg/internal/discovery"
	"srcg/internal/synth"
)

// Invariants is the cross-target differential lint (SA025): structural
// facts that must hold on every discovered machine description, whatever
// the architecture. A violation here means the description is internally
// inconsistent — no probe evidence can justify it.
func Invariants(m *discovery.Model, s *synth.Spec) []check.Diagnostic {
	var diags []check.Diagnostic

	// Register-class partition: the register list must be non-empty,
	// duplicate-free, and total against the membership set; hardwired
	// registers must be members of the class they specialize.
	if len(m.Registers) == 0 {
		diags = append(diags, errf(check.CodeStructuralInvariant,
			"register class is empty; the partition is not total"))
	}
	seen := map[string]bool{}
	for _, r := range m.Registers {
		if seen[r] {
			diags = append(diags, errf(check.CodeStructuralInvariant,
				"register %s is listed twice; the register-class partition is not a partition", r))
		}
		seen[r] = true
		if !m.RegSet[r] {
			diags = append(diags, errf(check.CodeStructuralInvariant,
				"register %s is listed but absent from the membership set", r))
		}
	}
	for _, r := range sortedKeys(m.RegSet) {
		if !seen[r] {
			diags = append(diags, errf(check.CodeStructuralInvariant,
				"register %s is in the membership set but not the register list; the partition is not total", r))
		}
	}
	for _, r := range sortedKeysInt64(m.Hardwired) {
		if !m.RegSet[r] {
			diags = append(diags, errf(check.CodeStructuralInvariant,
				"hardwired register %s is outside the register class", r))
		}
	}

	// Immediate ranges must be well-formed, non-empty intervals.
	for _, key := range sortedKeysRange(m.ImmRange) {
		r := m.ImmRange[key]
		if r[0] > r[1] {
			diags = append(diags, errf(check.CodeStructuralInvariant,
				"immediate range of %s is the empty interval [%d,%d]", key, r[0], r[1]))
		}
	}

	// Addressing-mode grammar: every mode shape distinct and non-empty —
	// two identical shapes make operand classification ambiguous.
	modeSeen := map[string]bool{}
	for _, mode := range m.Modes {
		if mode == "" {
			diags = append(diags, errf(check.CodeStructuralInvariant,
				"empty addressing-mode shape; the mode grammar is ambiguous"))
			continue
		}
		if modeSeen[mode] {
			diags = append(diags, errf(check.CodeStructuralInvariant,
				"addressing mode %s appears twice; the mode grammar is ambiguous", mode))
		}
		modeSeen[mode] = true
	}

	// Word width must be a positive machine-plausible width.
	if m.WordBits <= 0 || m.WordBits > 128 {
		diags = append(diags, errf(check.CodeStructuralInvariant,
			"discovered word width %d bits is not a plausible machine word", m.WordBits))
	}

	// Frame model: the slot pattern must render exactly one offset and
	// step by a non-zero stride, or slots collide.
	if p := s.Main.Slots.Pattern; p != "" {
		if strings.Count(p, "%d") != 1 {
			diags = append(diags, errf(check.CodeStructuralInvariant,
				"frame slot pattern %q does not render exactly one offset", p))
		} else if s.Main.Slots.Stride == 0 {
			diags = append(diags, errf(check.CodeStructuralInvariant,
				"frame slot stride is zero; every slot renders the same cell"))
		}
	}

	// Callee conventions: parameter slots must match the declared arity,
	// and the return tail must exist for the emitter to close a body.
	for _, n := range sortedIntKeys(s.Callees) {
		cm := s.Callees[n]
		if cm == nil {
			continue
		}
		if cm.NParams != n {
			diags = append(diags, errf(check.CodeStructuralInvariant,
				"callee convention keyed %d declares %d parameters", n, cm.NParams))
		}
		if len(cm.ParamSlots) != cm.NParams {
			diags = append(diags, errf(check.CodeStructuralInvariant,
				"callee convention of arity %d binds %d parameter slots", cm.NParams, len(cm.ParamSlots)))
		}
		if cm.LocalBase < 0 {
			diags = append(diags, errf(check.CodeStructuralInvariant,
				"callee convention of arity %d places locals at negative base %d", cm.NParams, cm.LocalBase))
		}
	}
	return diags
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedKeysInt64(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedKeysRange(m map[string][2]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedIntKeys(m map[int]*synth.CalleeModel) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
