package mdverify

import (
	"fmt"
	"sort"
	"strings"

	"srcg/internal/check"
	"srcg/internal/dfg"
	"srcg/internal/discovery"
	"srcg/internal/ir"
	"srcg/internal/lexer"
	"srcg/internal/synth"
)

// ruleShape describes which placeholders a rule class binds and what
// its footprint must look like.
type ruleShape struct {
	srcs     []string // source placeholders the template must read
	dst      bool     // the template must write {dst}, and only {dst}
	label    bool     // the template must reference {label}
	noMemOps bool     // the template must touch no operand cells at all (Jump)
}

// Symbolic verifies each rule's assembly template abstractly (SA024):
// the template is rendered with distinguishable operand cells, its
// lines are classified under the syntax model exactly as sample
// instructions are, and the sequence is interpreted through the dfg
// port machinery against the mutation-analysis attribution table. The
// resulting footprint must match the rule's contract — every source
// cell read, the destination cell written and nothing else, no frame
// cell touched the rule has no operand for, and no register consumed
// whose value neither the frame model, a hardwired constant, a
// witnessed live-in, nor an earlier template line accounts for.
//
// Lines whose signature the table has no witnesses for contribute
// nothing (probe-derived sequences, delay-slot fillers); the
// completeness checks (cell must be read/written) only run when every
// line was interpreted, so a partially witnessed template can fail
// soundness checks but never completeness ones.
func Symbolic(m *discovery.Model, s *synth.Spec, at *dfg.AttribTable) []check.Diagnostic {
	var diags []check.Diagnostic
	slots := s.Main.Slots
	if !strings.Contains(slots.Pattern, "%d") {
		return nil // no frame model: nothing to render operands with
	}
	sub := map[string]string{
		"src1": slots.Slot(10), "src2": slots.Slot(11), "dst": slots.Slot(12),
		"k": "1", "label": "MDVL", "fn": "P",
	}
	// Call-instruction signatures key on the callee symbol, and the
	// attribution of a call IS arity-specific: the arity-1 witness reads
	// the first argument register, the arity-0 witness reads none. So
	// {fn} renders per rule as the discovery sample set's callee of the
	// matching arity (gen: P0/P/P2) — the only symbols whose call lines
	// have witnesses at all.
	calleeByArity := map[int]string{0: "P0", 1: "P", 2: "P2"}
	cell := map[string]string{
		"src1": dfg.NormalizeAddr(sub["src1"]),
		"src2": dfg.NormalizeAddr(sub["src2"]),
		"dst":  dfg.NormalizeAddr(sub["dst"]),
	}
	frameRegs := map[string]bool{}
	for _, r := range lexer.ClassifyText(m, slots.Slot(0)).Regs {
		frameRegs[r] = true
	}
	// Every rule executes inside main's body, after the frame prologue.
	// Registers the prologue defines — and those it consumes from the
	// environment itself (the OS-established stack pointer) — are
	// accounted-for values a template may legitimately read.
	envRegs := map[string]bool{}
	proFP := at.Footprint(m, classifyTemplate(m, s.Main.RenderHeader(16)))
	for reg := range proFP.RegWrites {
		envRegs[reg] = true
	}
	for reg := range proFP.ExtReads {
		envRegs[reg] = true
	}

	for _, nr := range check.SpecRules(s) {
		shape, ok := shapeOf(nr.Name)
		if !ok {
			continue // probe-derived rules (Print) are outside the contract
		}
		rsub := sub
		if strings.HasPrefix(nr.Name, "Call") {
			var n int
			fmt.Sscanf(nr.Name, "Call%d", &n)
			if sym, ok := calleeByArity[n]; ok {
				rsub = map[string]string{}
				for k, v := range sub {
					rsub[k] = v
				}
				rsub["fn"] = sym
			}
		}
		instrs := classifyTemplate(m, nr.T.Render(rsub))
		fp := at.Footprint(m, instrs)
		if fp.Known == 0 {
			continue // nothing interpretable: no witnesses to compare against
		}
		complete := len(fp.Unknown) == 0

		allowed := map[string]bool{}
		for _, src := range shape.srcs {
			allowed[cell[src]] = true
		}
		if shape.dst {
			allowed[cell["dst"]] = true
		}

		// Soundness: no write outside the destination cell.
		for _, addr := range sortedSet(fp.MemWrites) {
			if !shape.dst || addr != cell["dst"] {
				diags = append(diags, errf(check.CodeFootprintMismatch,
					"rule %s writes cell %s, which is not its destination operand", nr.Name, addr))
			}
		}
		// Soundness: no operand-class cell read the rule has no operand
		// for (stack-convention cells off the frame class are the call
		// templates' business, not the rule contract's).
		for _, addr := range sortedSet(fp.MemReads) {
			if !allowed[addr] && inFrameClass(m, addr, frameRegs) {
				diags = append(diags, errf(check.CodeFootprintMismatch,
					"rule %s reads frame cell %s, which is none of its operands", nr.Name, addr))
			}
			if shape.noMemOps && inFrameClass(m, addr, frameRegs) {
				diags = append(diags, errf(check.CodeFootprintMismatch,
					"rule %s touches cell %s but takes no value operands", nr.Name, addr))
			}
		}
		// Soundness: every register consumed from outside the template
		// must be accounted for.
		for _, reg := range sortedSet(fp.ExtReads) {
			if frameRegs[reg] || envRegs[reg] || at.ExternalIn[reg] {
				continue
			}
			if _, hard := m.Hardwired[reg]; hard {
				continue
			}
			diags = append(diags, errf(check.CodeFootprintMismatch,
				"rule %s reads register %s before any template line defines it, and no attribution accounts for the value",
				nr.Name, reg))
		}
		// Completeness (full interpretation only): sources read,
		// destination written, label referenced.
		if complete {
			for _, src := range shape.srcs {
				if !fp.MemReads[cell[src]] {
					diags = append(diags, errf(check.CodeFootprintMismatch,
						"rule %s never reads its source operand {%s} (cell %s)", nr.Name, src, cell[src]))
				}
			}
			if shape.dst && !fp.MemWrites[cell["dst"]] {
				diags = append(diags, errf(check.CodeFootprintMismatch,
					"rule %s never writes its destination operand {dst} (cell %s)", nr.Name, cell["dst"]))
			}
		}
		if shape.label && !referencesLabel(instrs, "MDVL") {
			diags = append(diags, errf(check.CodeFootprintMismatch,
				"rule %s never references its {label} operand; the transfer has no target", nr.Name))
		}
	}
	return diags
}

// shapeOf maps a rule display name to its contract.
func shapeOf(name string) (ruleShape, bool) {
	switch {
	case strings.HasPrefix(name, "Op/"):
		op, ok := opByName(strings.TrimPrefix(name, "Op/"))
		if !ok || (!op.IsBinary() && !op.IsUnary()) {
			return ruleShape{}, false // dead rules are SA021's finding, not SA024's
		}
		if op.IsUnary() {
			return ruleShape{srcs: []string{"src1"}, dst: true}, true
		}
		return ruleShape{srcs: []string{"src1", "src2"}, dst: true}, true
	case name == "Move":
		return ruleShape{srcs: []string{"src1"}, dst: true}, true
	case name == "Const":
		return ruleShape{dst: true}, true
	case strings.HasPrefix(name, "Branch/"):
		return ruleShape{srcs: []string{"src1", "src2"}, label: true}, true
	case name == "Jump":
		return ruleShape{label: true, noMemOps: true}, true
	case strings.HasPrefix(name, "Call"):
		var n int
		fmt.Sscanf(name, "Call%d", &n)
		srcs := make([]string, 0, n)
		for i := 1; i <= n && i <= 2; i++ {
			srcs = append(srcs, fmt.Sprintf("src%d", i))
		}
		return ruleShape{srcs: srcs, dst: true}, true
	}
	return ruleShape{}, false
}

// opByName resolves an operator display name ("Add") back to its ir.Op.
func opByName(name string) (ir.Op, bool) {
	for op := ir.Const; op <= ir.Call; op++ {
		if op.String() == name {
			return op, true
		}
	}
	return 0, false
}

// classifyTemplate turns rendered template lines into classified
// instructions, with the rendered branch label in scope so targets
// classify as label references — precisely how the same text would
// classify inside a sample.
func classifyTemplate(m *discovery.Model, lines []string) []discovery.Instr {
	var out []discovery.Instr
	labels := map[string]bool{"MDVL": true}
	for _, raw := range lines {
		line := strings.TrimSpace(raw)
		if line == "" || strings.Contains(line, "{") {
			continue // unrendered placeholders have no instruction syntax
		}
		op, args := lexer.SplitLine(line)
		if op == "" || strings.HasPrefix(op, ".") || strings.HasSuffix(op, ":") {
			continue
		}
		ins := discovery.Instr{Op: op}
		for _, text := range args {
			ins.Args = append(ins.Args, lexer.ClassifyTextIn(m, labels, text))
		}
		out = append(out, ins)
	}
	return out
}

// referencesLabel reports whether any instruction references the label.
func referencesLabel(instrs []discovery.Instr, label string) bool {
	for _, ins := range instrs {
		for _, arg := range ins.Args {
			if (arg.Kind == discovery.KLabelRef || arg.Kind == discovery.KSym) && arg.Sym == label {
				return true
			}
		}
	}
	return false
}

// inFrameClass reports whether a cell address is based on a frame
// register — an operand-class cell the rule contract governs.
func inFrameClass(m *discovery.Model, addr string, frameRegs map[string]bool) bool {
	for _, r := range lexer.ClassifyText(m, addr).Regs {
		if frameRegs[r] {
			return true
		}
	}
	return false
}

// sortedSet returns a bool-set's members in sorted order.
func sortedSet(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
