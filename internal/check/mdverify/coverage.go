package mdverify

import (
	"fmt"
	"sort"
	"strings"

	"srcg/internal/check"
	"srcg/internal/discovery"
	"srcg/internal/ir"
	"srcg/internal/synth"
)

// A valuation class abstracts where an operand's value can come from at
// rule-selection time. The front end (internal/beg) holds every
// intermediate value in a frame slot; literals start as immediates and
// become slot-deliverable only once the Const rule is covered.
const (
	vSlot = "slot" // a frame-slot cell
	vImm  = "imm"  // a source-level integer literal
	vLbl  = "label"
	vProc = "proc"
)

// Demand is one front-end-emittable combination: a rule plus the
// valuation classes of its operands.
type Demand struct {
	Rule string   // display name ("Op/Add", "Branch/EQ", "Call2", …)
	Gap  string   // the Spec.Gaps key declaring this rule uncovered
	Vals []string // operand valuation classes
}

// FrontEndDemands enumerates every rule × operand-valuation combination
// the intermediate-code emitter can produce — the demand side of the
// coverage fixpoint, exported so tools can render the closure table.
func FrontEndDemands() []Demand {
	var ds []Demand
	binVals := [][]string{{vSlot, vSlot}, {vSlot, vImm}, {vImm, vSlot}, {vImm, vImm}}
	for op := ir.Add; op <= ir.Shr; op++ {
		for _, vv := range binVals {
			ds = append(ds, Demand{Rule: "Op/" + op.String(), Gap: op.String(), Vals: vv})
		}
	}
	for _, op := range []ir.Op{ir.Neg, ir.Not} {
		for _, v := range []string{vSlot, vImm} {
			ds = append(ds, Demand{Rule: "Op/" + op.String(), Gap: op.String(), Vals: []string{v}})
		}
	}
	ds = append(ds, Demand{Rule: "Move", Gap: "Move", Vals: []string{vSlot}})
	ds = append(ds, Demand{Rule: "Const", Gap: "Const", Vals: []string{vSlot}})
	for rel := ir.EQ; rel <= ir.GE; rel++ {
		for _, vv := range binVals {
			ds = append(ds, Demand{Rule: "Branch/" + rel.String(), Gap: "Branch" + rel.String(),
				Vals: append([]string{vLbl}, vv...)})
		}
	}
	ds = append(ds, Demand{Rule: "Jump", Gap: "Jump", Vals: []string{vLbl}})
	for n := 0; n <= 2; n++ {
		argVals := [][]string{{}}
		for i := 0; i < n; i++ {
			var next [][]string
			for _, vv := range argVals {
				next = append(next, append(append([]string{}, vv...), vSlot),
					append(append([]string{}, vv...), vImm))
			}
			argVals = next
		}
		for _, vv := range argVals {
			ds = append(ds, Demand{Rule: fmt.Sprintf("Call%d", n), Gap: fmt.Sprintf("Call%d", n),
				Vals: append([]string{vProc, vSlot}, vv...)})
		}
	}
	ds = append(ds, Demand{Rule: "Print", Gap: "Print", Vals: []string{vSlot}})
	ds = append(ds, Demand{Rule: "Exit", Gap: "Exit", Vals: nil})
	return ds
}

// Coverage runs the coverage-closure fixpoint (SA020) and the dead-rule
// scan (SA021).
//
// The fixpoint works over deliverable valuation classes: labels and
// procedure symbols are free; frame slots become deliverable once the
// frame model can render them; immediates become slot-deliverable once
// the Const rule is itself covered (a literal must be materialized into
// a slot before any other rule consumes it). Iteration continues until
// no class is added, then every front-end demand is checked against the
// final set — a finite rule chain exists exactly when the demand's rule
// has a template and each operand class is deliverable.
func Coverage(m *discovery.Model, s *synth.Spec) []check.Diagnostic {
	var diags []check.Diagnostic
	declared := map[string]bool{}
	for _, g := range s.Gaps {
		declared[g] = true
	}

	ruleCovered := func(rule string) bool {
		has := func(t *synth.Template) bool { return t != nil && len(t.Lines) > 0 }
		switch {
		case strings.HasPrefix(rule, "Op/"):
			for op := range s.Ops {
				if "Op/"+op.String() == rule && has(s.Ops[op]) {
					return true
				}
			}
			return false
		case rule == "Move":
			return has(s.Move)
		case rule == "Const":
			return has(s.Const)
		case strings.HasPrefix(rule, "Branch/"):
			for rel := range s.Branches {
				if "Branch/"+rel.String() == rule && has(s.Branches[rel]) {
					return true
				}
			}
			return false
		case rule == "Jump":
			return has(s.Jump)
		case strings.HasPrefix(rule, "Call"):
			var n int
			fmt.Sscanf(rule, "Call%d", &n)
			return has(s.Calls[n]) && s.Callees[n] != nil
		case rule == "Print":
			return has(s.Print)
		case rule == "Exit":
			return len(s.ExitTail) > 0
		}
		return false
	}

	// Worklist fixpoint over deliverable classes.
	facts := map[string]bool{vLbl: true, vProc: true}
	if strings.Contains(s.Main.Slots.Pattern, "%d") {
		facts[vSlot] = true
	}
	for changed := true; changed; {
		changed = false
		if !facts[vImm] && facts[vSlot] && ruleCovered("Const") {
			facts[vImm] = true
			changed = true
		}
	}

	// Check every demand, aggregating per rule so one missing template
	// reports once with every valuation it strands.
	uncovered := map[string][]string{}
	var order []string
	for _, d := range FrontEndDemands() {
		ok := ruleCovered(d.Rule)
		for _, v := range d.Vals {
			if !facts[v] {
				ok = false
			}
		}
		if !ok {
			if _, seen := uncovered[d.Rule]; !seen {
				order = append(order, d.Rule)
			}
			uncovered[d.Rule] = append(uncovered[d.Rule], "["+strings.Join(d.Vals, ",")+"]")
		}
	}
	for _, rule := range order {
		gap := gapKey(rule)
		msg := fmt.Sprintf("no finite rule chain covers front-end demand %s for valuations %s",
			rule, strings.Join(uncovered[rule], " "))
		if declared[gap] {
			diags = append(diags, warnf(check.CodeUncoveredDemand, "%s (declared gap %q)", msg, gap))
		} else {
			diags = append(diags, errf(check.CodeUncoveredDemand, "%s", msg))
		}
	}

	diags = append(diags, deadRules(m, s)...)
	return diags
}

// gapKey maps a rule display name to its Spec.Gaps key.
func gapKey(rule string) string {
	switch {
	case strings.HasPrefix(rule, "Op/"):
		return strings.TrimPrefix(rule, "Op/")
	case strings.HasPrefix(rule, "Branch/"):
		return "Branch" + strings.TrimPrefix(rule, "Branch/")
	}
	return rule
}

// deadRules flags rules no front-end demand can ever reach (SA021): an
// operation template keyed outside the binary/unary operator set, a
// call template whose arity has no callee convention (or a convention
// with no call rule), a branch keyed outside the relation set, and a
// chain rule whose premise mode the mode closure cannot deliver.
func deadRules(m *discovery.Model, s *synth.Spec) []check.Diagnostic {
	var diags []check.Diagnostic
	ops := make([]int, 0, len(s.Ops))
	for op := range s.Ops {
		ops = append(ops, int(op))
	}
	sort.Ints(ops)
	for _, o := range ops {
		op := ir.Op(o)
		if !op.IsBinary() && !op.IsUnary() {
			diags = append(diags, errf(check.CodeDeadRule,
				"operation rule Op/%s is keyed outside the emitter's operator set; no demand reaches it", op))
		}
	}
	rels := make([]int, 0, len(s.Branches))
	for rel := range s.Branches {
		rels = append(rels, int(rel))
	}
	sort.Ints(rels)
	for _, r := range rels {
		if r < int(ir.EQ) || r > int(ir.GE) {
			diags = append(diags, errf(check.CodeDeadRule,
				"branch rule Branch/%s is keyed outside the relation set; no demand reaches it", ir.Rel(r)))
		}
	}
	ns := make([]int, 0, len(s.Calls))
	for n := range s.Calls {
		ns = append(ns, n)
	}
	sort.Ints(ns)
	for _, n := range ns {
		if s.Callees[n] == nil {
			diags = append(diags, errf(check.CodeDeadRule,
				"call rule Call%d has no callee convention of arity %d; the emitter can never select it", n, n))
		}
	}
	cns := make([]int, 0, len(s.Callees))
	for n := range s.Callees {
		cns = append(cns, n)
	}
	sort.Ints(cns)
	for _, n := range cns {
		if _, ok := s.Calls[n]; !ok {
			diags = append(diags, errf(check.CodeDeadRule,
				"callee convention of arity %d has no Call%d rule; no demand reaches it", n, n))
		}
	}

	// Mode closure: witnessed modes are axioms; a chain rule derives its
	// target mode once its premise mode is deliverable. A chain whose
	// premise never becomes deliverable can never fire. Chain rules render
	// their modes with the concrete frame register ("⟨n⟩(%ebp)") while the
	// lexer's witnessed shapes abstract registers to ⟨r⟩ ("⟨n⟩(⟨r⟩)"), so
	// the closure runs in generalized mode-shape space.
	deliverable := map[string]bool{}
	for _, mode := range m.Modes {
		deliverable[mode] = true
	}
	for changed := true; changed; {
		changed = false
		for _, c := range s.Chains {
			a, b := generalizeMode(m, c.ModeA), generalizeMode(m, c.ModeB)
			if deliverable[a] && !deliverable[b] {
				deliverable[b] = true
				changed = true
			}
		}
	}
	for i, c := range s.Chains {
		if !deliverable[generalizeMode(m, c.ModeA)] {
			diags = append(diags, errf(check.CodeDeadRule,
				"chain rule %d (%s -> %s) rewrites mode %q, which no sample witnessed and no chain derives",
				i, c.ModeA, c.ModeB, c.ModeA))
		}
	}
	return diags
}

// generalizeMode abstracts the concrete register names in a rendered
// mode back to the lexer's ⟨r⟩ marker, so chain-rule modes compare
// against witnessed mode shapes. Longer names substitute first, so a
// register that is a prefix of another cannot alias.
func generalizeMode(m *discovery.Model, mode string) string {
	regs := append([]string{}, m.Registers...)
	sort.Slice(regs, func(i, j int) bool { return len(regs[i]) > len(regs[j]) })
	for _, r := range regs {
		mode = strings.ReplaceAll(mode, r, "⟨r⟩")
	}
	return mode
}
