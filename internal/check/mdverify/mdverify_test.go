package mdverify

import (
	"strings"
	"testing"

	"srcg/internal/check"
	"srcg/internal/dfg"
	"srcg/internal/discovery"
	"srcg/internal/ir"
	"srcg/internal/synth"
)

// The fixture is a small load/store machine rich enough to cover every
// front-end demand: three registers (r1, r2 scratch; fp frame), a
// "%d(fp)" frame-slot grammar, and generic templates over the opcodes
// xld/xst/xadd/xneg/xci/xcmp/xb/xjmp/xcall/xprint/xhalt. Each SA02x
// test corrupts exactly one fact in a fresh copy and expects exactly
// one diagnostic — proving both that the analyzer catches the seeded
// defect and that nothing else in the clean description trips it.

func toyModel() *discovery.Model {
	return &discovery.Model{
		Arch:      "toy",
		Registers: []string{"fp", "r1", "r2"},
		RegSet:    map[string]bool{"fp": true, "r1": true, "r2": true},
		WordBits:  32,
		ImmRange:  map[string][2]int64{"xci:1": {-128, 127}},
		Hardwired: map[string]int64{},
		Modes:     []string{"⟨n⟩", "⟨n⟩(⟨r⟩)", "⟨r⟩"},
	}
}

func tmpl(name string, instrs int, lines ...string) *synth.Template {
	return &synth.Template{Name: name, Lines: lines, Instrs: instrs}
}

func toySpec() *synth.Spec {
	s := &synth.Spec{
		Arch:     "toy",
		WordBits: 32,
		Ops:      map[ir.Op]*synth.Template{},
		Branches: map[ir.Rel]*synth.Template{},
		Calls:    map[int]*synth.Template{},
		Callees:  map[int]*synth.CalleeModel{},
	}
	for op := ir.Add; op <= ir.Shr; op++ {
		s.Ops[op] = tmpl("op", 4,
			"\txld r1, {src1}", "\txld r2, {src2}", "\txadd r1, r2", "\txst r1, {dst}")
	}
	for _, op := range []ir.Op{ir.Neg, ir.Not} {
		s.Ops[op] = tmpl("unary", 3, "\txld r1, {src1}", "\txneg r1", "\txst r1, {dst}")
	}
	s.Move = tmpl("move", 2, "\txld r1, {src1}", "\txst r1, {dst}")
	s.Const = tmpl("const", 2, "\txci r1, {k}", "\txst r1, {dst}")
	for rel := ir.EQ; rel <= ir.GE; rel++ {
		s.Branches[rel] = tmpl("branch", 4,
			"\txld r1, {src1}", "\txld r2, {src2}", "\txcmp r1, r2", "\txb {label}")
	}
	s.Jump = tmpl("jump", 1, "\txjmp {label}")
	s.Calls[0] = tmpl("call0", 2, "\txcall {fn}", "\txst r1, {dst}")
	s.Calls[1] = tmpl("call1", 3, "\txld r1, {src1}", "\txcall {fn}", "\txst r1, {dst}")
	s.Calls[2] = tmpl("call2", 4,
		"\txld r1, {src1}", "\txld r2, {src2}", "\txcall {fn}", "\txst r1, {dst}")
	s.Print = tmpl("print", 1, "\txprint")
	s.ExitTail = []string{"\txhalt"}
	s.Main = synth.FrameModel{
		Header: []string{"main:", "\txenter"},
		Slots:  synth.SlotModel{Pattern: "%d(fp)", Start: 8, Stride: 4},
	}
	for n := 0; n <= 2; n++ {
		cm := &synth.CalleeModel{NParams: n, LocalBase: n}
		for i := 0; i < n; i++ {
			cm.ParamSlots = append(cm.ParamSlots, s.Main.Slots.Slot(i))
		}
		s.Callees[n] = cm
	}
	s.Chains = []synth.ChainRule{{ModeA: "⟨n⟩(fp)", ModeB: "(fp)", Constant: 0}}
	return s
}

func toyAttrib() *dfg.AttribTable {
	sig := func(name string, nargs int) *dfg.SigAttrib {
		return &dfg.SigAttrib{Sig: name, NArgs: nargs,
			PosRead:  make([]bool, nargs),
			PosWrite: make([]bool, nargs), MemWriteAt: make([]bool, nargs),
			Witnesses: 1}
	}
	at := &dfg.AttribTable{Sigs: map[string]*dfg.SigAttrib{}, ExternalIn: map[string]bool{}}
	ld := sig("xld:reg,mem", 2)
	ld.PosWrite[0] = true
	st := sig("xst:reg,mem", 2)
	st.PosRead[0] = true
	st.MemWriteAt[1] = true
	add := sig("xadd:reg,reg", 2)
	add.PosRead[0], add.PosRead[1], add.PosWrite[0] = true, true, true
	neg := sig("xneg:reg", 1)
	neg.PosRead[0], neg.PosWrite[0] = true, true
	ci := sig("xci:reg,lit", 2)
	ci.PosWrite[0] = true
	cmp := sig("xcmp:reg,reg", 2)
	cmp.PosRead[0], cmp.PosRead[1] = true, true
	call0 := sig("xcall:sym=P0", 1)
	call0.ImplicitDefs = []string{"r1"}
	call1 := sig("xcall:sym=P", 1)
	call1.ImplicitReads, call1.ImplicitDefs = []string{"r1"}, []string{"r1"}
	call2 := sig("xcall:sym=P2", 1)
	call2.ImplicitReads, call2.ImplicitDefs = []string{"r1", "r2"}, []string{"r1"}
	for _, sa := range []*dfg.SigAttrib{ld, st, add, neg, ci, cmp, call0, call1, call2,
		sig("xb:label", 1), sig("xjmp:label", 1)} {
		at.Sigs[sa.Sig] = sa
	}
	return at
}

// runToy verifies a fresh toy description after applying a corruption.
func runToy(t *testing.T, corrupt func(*discovery.Model, *synth.Spec, *dfg.AttribTable)) []check.Diagnostic {
	t.Helper()
	m, s, at := toyModel(), toySpec(), toyAttrib()
	if corrupt != nil {
		corrupt(m, s, at)
	}
	return Verify(m, s, at)
}

// expectOne asserts the corruption fired exactly one diagnostic of the
// given code and severity.
func expectOne(t *testing.T, diags []check.Diagnostic, code string, sev check.Severity) check.Diagnostic {
	t.Helper()
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly 1 %s:\n%v", len(diags), code, diags)
	}
	if diags[0].Code != code || diags[0].Severity != sev {
		t.Fatalf("got %s/%v, want %s/%v: %s",
			diags[0].Code, diags[0].Severity, code, sev, diags[0].Message)
	}
	return diags[0]
}

func TestCleanToyDescriptionVerifies(t *testing.T) {
	if diags := runToy(t, nil); len(diags) != 0 {
		t.Errorf("clean description drew %d diagnostics:\n%v", len(diags), diags)
	}
}

func TestSA020UncoveredDemand(t *testing.T) {
	d := expectOne(t, runToy(t, func(m *discovery.Model, s *synth.Spec, at *dfg.AttribTable) {
		delete(s.Ops, ir.Shr)
	}), check.CodeUncoveredDemand, check.Error)
	// One aggregated diagnostic lists every stranded valuation vector.
	for _, vals := range []string{"[slot,slot]", "[slot,imm]", "[imm,slot]", "[imm,imm]"} {
		if !strings.Contains(d.Message, vals) {
			t.Errorf("SA020 message misses valuation %s: %s", vals, d.Message)
		}
	}
}

func TestSA020DeclaredGapIsWarning(t *testing.T) {
	expectOne(t, runToy(t, func(m *discovery.Model, s *synth.Spec, at *dfg.AttribTable) {
		delete(s.Ops, ir.Shr)
		s.Gaps = []string{"Shr"}
	}), check.CodeUncoveredDemand, check.Warning)
}

func TestSA020ConstGapStrandsImmediates(t *testing.T) {
	// Without the Const rule, no literal can ever be materialized into a
	// slot: every imm-carrying demand fails alongside Const itself.
	diags := runToy(t, func(m *discovery.Model, s *synth.Spec, at *dfg.AttribTable) {
		s.Const = nil
	})
	if len(diags) < 2 {
		t.Fatalf("Const removal strands the imm class; got only %v", diags)
	}
	for _, d := range diags {
		if d.Code != check.CodeUncoveredDemand {
			t.Errorf("unexpected %s: %s", d.Code, d.Message)
		}
	}
}

func TestSA021DeadRule(t *testing.T) {
	d := expectOne(t, runToy(t, func(m *discovery.Model, s *synth.Spec, at *dfg.AttribTable) {
		s.Ops[ir.Load] = tmpl("dead", 2, "\txld r1, {src1}", "\txst r1, {dst}")
	}), check.CodeDeadRule, check.Error)
	if !strings.Contains(d.Message, "Load") {
		t.Errorf("SA021 message does not name the dead rule: %s", d.Message)
	}
}

func TestSA021UnwitnessedChainPremise(t *testing.T) {
	expectOne(t, runToy(t, func(m *discovery.Model, s *synth.Spec, at *dfg.AttribTable) {
		s.Chains = []synth.ChainRule{{ModeA: "⟨n⟩[zz]", ModeB: "(fp)", Constant: 0}}
	}), check.CodeDeadRule, check.Error)
}

func TestSA022ShadowedChain(t *testing.T) {
	d := expectOne(t, runToy(t, func(m *discovery.Model, s *synth.Spec, at *dfg.AttribTable) {
		s.Chains = append(s.Chains, synth.ChainRule{ModeA: "⟨n⟩(fp)", ModeB: "⟨n⟩", Constant: 0})
	}), check.CodeShadowedRule, check.Error)
	if !strings.Contains(d.Message, "shadowed by rule 0") {
		t.Errorf("SA022 message does not name the shadowing rule: %s", d.Message)
	}
}

func TestSA023RewriteCycle(t *testing.T) {
	expectOne(t, runToy(t, func(m *discovery.Model, s *synth.Spec, at *dfg.AttribTable) {
		s.Chains = []synth.ChainRule{{ModeA: "⟨n⟩(fp)", ModeB: "⟨n⟩(fp)", Constant: 1}}
	}), check.CodeRewriteCycle, check.Error)
}

func TestSA023DishonestCost(t *testing.T) {
	expectOne(t, runToy(t, func(m *discovery.Model, s *synth.Spec, at *dfg.AttribTable) {
		s.Move.Instrs = 5
	}), check.CodeRewriteCycle, check.Error)
	expectOne(t, runToy(t, func(m *discovery.Model, s *synth.Spec, at *dfg.AttribTable) {
		s.Jump.Instrs = 0
	}), check.CodeRewriteCycle, check.Error)
}

func TestSA024DroppedStore(t *testing.T) {
	d := expectOne(t, runToy(t, func(m *discovery.Model, s *synth.Spec, at *dfg.AttribTable) {
		s.Move = tmpl("move", 1, "\txld r1, {src1}")
	}), check.CodeFootprintMismatch, check.Error)
	if !strings.Contains(d.Message, "never writes its destination") {
		t.Errorf("SA024 message: %s", d.Message)
	}
}

func TestSA024WriteOutsideDestination(t *testing.T) {
	d := expectOne(t, runToy(t, func(m *discovery.Model, s *synth.Spec, at *dfg.AttribTable) {
		// An extra store lands in {src1}: a write outside the destination.
		// The destination is still written, so this is the ONLY violated
		// clause.
		s.Move = tmpl("move", 3, "\txld r1, {src1}", "\txst r1, {dst}", "\txst r1, {src1}")
	}), check.CodeFootprintMismatch, check.Error)
	if !strings.Contains(d.Message, "writes cell") {
		t.Errorf("SA024 message: %s", d.Message)
	}
}

func TestSA024UnaccountedRegisterRead(t *testing.T) {
	d := expectOne(t, runToy(t, func(m *discovery.Model, s *synth.Spec, at *dfg.AttribTable) {
		// r2 is never defined inside the template and nothing (frame
		// model, hardwired constant, live-in) accounts for its value.
		s.Const = tmpl("const", 2, "\txci r1, {k}", "\txst r2, {dst}")
	}), check.CodeFootprintMismatch, check.Error)
	if !strings.Contains(d.Message, "reads register r2") {
		t.Errorf("SA024 message: %s", d.Message)
	}
}

func TestSA024MissingBranchLabel(t *testing.T) {
	d := expectOne(t, runToy(t, func(m *discovery.Model, s *synth.Spec, at *dfg.AttribTable) {
		s.Branches[ir.EQ] = tmpl("branch", 3,
			"\txld r1, {src1}", "\txld r2, {src2}", "\txcmp r1, r2")
	}), check.CodeFootprintMismatch, check.Error)
	if !strings.Contains(d.Message, "{label}") {
		t.Errorf("SA024 message: %s", d.Message)
	}
}

func TestSA025EmptyImmediateRange(t *testing.T) {
	expectOne(t, runToy(t, func(m *discovery.Model, s *synth.Spec, at *dfg.AttribTable) {
		m.ImmRange["xci:1"] = [2]int64{5, -5}
	}), check.CodeStructuralInvariant, check.Error)
}

func TestSA025RegisterPartition(t *testing.T) {
	expectOne(t, runToy(t, func(m *discovery.Model, s *synth.Spec, at *dfg.AttribTable) {
		m.Registers = append(m.Registers, "r9") // listed but not a member
	}), check.CodeStructuralInvariant, check.Error)
	expectOne(t, runToy(t, func(m *discovery.Model, s *synth.Spec, at *dfg.AttribTable) {
		m.Hardwired["zero"] = 0 // hardwired outside the register class
	}), check.CodeStructuralInvariant, check.Error)
}

func TestSA025CalleeConvention(t *testing.T) {
	expectOne(t, runToy(t, func(m *discovery.Model, s *synth.Spec, at *dfg.AttribTable) {
		s.Callees[2].LocalBase = -1
	}), check.CodeStructuralInvariant, check.Error)
}

// Unknown template lines must disable completeness checks (a partially
// witnessed template can fail soundness, never completeness) — the rule
// whose store line uses an unwitnessed opcode draws no diagnostics.
func TestUnknownLinesSuppressCompleteness(t *testing.T) {
	if diags := runToy(t, func(m *discovery.Model, s *synth.Spec, at *dfg.AttribTable) {
		s.Move = tmpl("move", 2, "\txld r1, {src1}", "\txstv r1, {dst}")
	}); len(diags) != 0 {
		t.Errorf("partially witnessed template drew completeness diagnostics:\n%v", diags)
	}
}

// A nil attribution table (re-verifying a served spec without its run
// state) skips the symbolic pass but still runs the structural ones.
func TestVerifyWithoutAttrib(t *testing.T) {
	m, s := toyModel(), toySpec()
	if diags := Verify(m, s, nil); len(diags) != 0 {
		t.Errorf("clean description with nil attrib drew:\n%v", diags)
	}
	s.Move = tmpl("move", 1, "\txld r1, {src1}") // SA024-only defect
	if diags := Verify(m, s, nil); len(diags) != 0 {
		t.Errorf("symbolic pass ran without an attribution table:\n%v", diags)
	}
	m.WordBits = 0 // SA025 defect still caught
	if diags := Verify(m, s, nil); len(diags) != 1 || diags[0].Code != check.CodeStructuralInvariant {
		t.Errorf("structural pass missing without attrib:\n%v", diags)
	}
}

// The demand table itself: every emitter-reachable rule appears, and the
// fixpoint facts section of the closure is exercised end to end by the
// clean-description test above.
func TestFrontEndDemandTable(t *testing.T) {
	rules := map[string]bool{}
	for _, d := range FrontEndDemands() {
		rules[d.Rule] = true
	}
	for _, want := range []string{"Op/Add", "Op/Shr", "Op/Neg", "Move", "Const",
		"Branch/EQ", "Branch/GE", "Jump", "Call0", "Call1", "Call2", "Print", "Exit"} {
		if !rules[want] {
			t.Errorf("demand table misses rule %s", want)
		}
	}
}
