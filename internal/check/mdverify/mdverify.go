// Package mdverify is the semantic analyzer over the synthesized machine
// description — the static pass that proves a discovered MD sound and
// complete without re-running a single probe. Where internal/check's
// SA001–SA015 verify the discovery *process* (data-flow graphs, probe
// consistency, template syntax), this package verifies the discovered
// *artifact*: a cached or client-uploaded spec can be validated against
// the syntax model and attribution tables alone, with no target
// toolchain in reach.
//
// Four cooperating passes, each with stable diagnostic codes:
//
//   - coverage closure (SA020/SA021): a worklist fixpoint over IR
//     operators × operand valuations proves every combination the front
//     end can emit reachable through a finite rule chain, and flags
//     rules no demand can ever reach;
//   - overlap & shadowing (SA022/SA023): pairwise pattern intersection
//     finds rules an earlier rule always subsumes, and cost-model
//     monotonicity proves rewrite chains terminate;
//   - symbolic template verification (SA024): each rule's rendered
//     assembly template is interpreted abstractly through the dfg port
//     machinery and its read/write/clobber footprint compared against
//     the mutation-analysis attributions;
//   - structural invariants (SA025): cross-target lint every discovered
//     MD must satisfy — total register partition, well-formed immediate
//     intervals, unambiguous addressing-mode grammar, coherent frame
//     and callee models.
package mdverify

import (
	"fmt"

	"srcg/internal/check"
	"srcg/internal/dfg"
	"srcg/internal/discovery"
	"srcg/internal/synth"
)

// Verify runs all four machine-description passes and returns their
// findings. The attribution table at drives the symbolic pass; a nil
// table skips it (structure-only verification, e.g. a spec with no
// surviving analyses).
func Verify(m *discovery.Model, s *synth.Spec, at *dfg.AttribTable) []check.Diagnostic {
	if m == nil || s == nil {
		return nil
	}
	var diags []check.Diagnostic
	diags = append(diags, Coverage(m, s)...)
	diags = append(diags, Shadowing(m, s)...)
	if at != nil {
		diags = append(diags, Symbolic(m, s, at)...)
	}
	diags = append(diags, Invariants(m, s)...)
	return diags
}

func errf(code string, format string, args ...interface{}) check.Diagnostic {
	return check.Diagnostic{Code: code, Severity: check.Error, Sample: "spec", Step: -1,
		Message: fmt.Sprintf(format, args...)}
}

func warnf(code string, format string, args ...interface{}) check.Diagnostic {
	return check.Diagnostic{Code: code, Severity: check.Warning, Sample: "spec", Step: -1,
		Message: fmt.Sprintf(format, args...)}
}
