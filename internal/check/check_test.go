package check_test

import (
	"strings"
	"testing"

	"srcg"
	"srcg/internal/check"
	"srcg/internal/dfg"
	"srcg/internal/discovery"
	"srcg/internal/ir"
	"srcg/internal/mutate"
	"srcg/internal/synth"
)

// TestGoldenTargetsClean runs a real discovery on every simulated machine
// with the checker enabled and requires a completely clean report: the
// verifier and linter must stay silent on the graphs and specs the
// pipeline actually produces.
func TestGoldenTargetsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("five full discovery runs")
	}
	for _, name := range srcg.TargetNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			tc, err := srcg.LookupTarget(name)
			if err != nil {
				t.Fatal(err)
			}
			d, err := srcg.Discover(tc, srcg.Options{Seed: 1, Check: true})
			if err != nil {
				t.Fatal(err)
			}
			if d.CheckReport == nil {
				t.Fatal("Options.Check set but no CheckReport attached")
			}
			if len(d.CheckReport.Diags) != 0 {
				t.Errorf("clean discovery produced diagnostics:\n%s", d.CheckReport)
			}
			if len(d.Graphs) == 0 {
				t.Error("discovery produced no graphs to verify")
			}
		})
	}
}

// cleanFixture builds a small, internally consistent model + analysis +
// graph by hand: two steps computing a = op(b) through register r1.
//
//	step 0  seti 5, r1        (defines r1)
//	step 1  store r1, [a]     (reads r1, writes the a-cell)
//
// The seeded-fault tests corrupt copies of it and assert the verifier's
// diagnostic codes.
func cleanFixture() (*discovery.Model, *mutate.Analysis, *dfg.Graph) {
	m := &discovery.Model{
		Arch:      "toy",
		Registers: []string{"r1", "r2", "fp"},
		RegSet:    map[string]bool{"r1": true, "r2": true, "fp": true},
		WordBits:  32,
		Modes:     []string{"⟨r⟩", "⟨n⟩(⟨r⟩)"},
		ImmRange:  map[string][2]int64{"seti:0": {-4096, 4095}},
	}
	region := []discovery.Instr{
		{Op: "seti", Args: []discovery.Operand{
			{Text: "5", Kind: discovery.KLit, Lit: 5},
			{Text: "r1", Kind: discovery.KReg, Regs: []string{"r1"}},
		}},
		{Op: "store", Args: []discovery.Operand{
			{Text: "r1", Kind: discovery.KReg, Regs: []string{"r1"}},
			{Text: "-4(fp)", Kind: discovery.KMem, Regs: []string{"fp"}},
		}},
	}
	a := &mutate.Analysis{
		Sample:     &discovery.Sample{Name: "toy.sample"},
		Region:     region,
		Filler:     map[int]bool{},
		Groups:     [][2]int{{0, 1}, {1, 2}},
		Reads:      map[string][]int{"r1": {1}, "fp": {1}},
		Defs:       map[string][]int{"r1": {0}},
		UseDefs:    map[string][]int{},
		ExternalIn: []string{"fp"},
		AWriter:    1,
	}
	g := &dfg.Graph{
		Sample: a.Sample,
		Labels: map[string]int{},
		SlotA:  "-4(fp)",
		Steps: []dfg.Step{
			{
				Instr: region[0], Sig: "seti:lit,reg",
				Ins:  []dfg.Port{{Kind: dfg.PLit, Lit: 5, ArgIdx: 0, Producer: -1}},
				Outs: []dfg.Port{{Kind: dfg.PReg, Reg: "r1", ArgIdx: 1, Producer: -1}},
			},
			{
				Instr: region[1], Sig: "store:reg,mem",
				Ins: []dfg.Port{
					{Kind: dfg.PReg, Reg: "r1", ArgIdx: 0, Producer: 0},
					{Kind: dfg.PMem, Addr: "-4(fp)", ArgIdx: 1, Producer: -1},
				},
				Outs: []dfg.Port{{Kind: dfg.PMem, Addr: "-4(fp)", ArgIdx: 1, Producer: -1}},
			},
		},
	}
	return m, a, g
}

// hiddenFixture extends the clean fixture with a compare/branch pair
// communicating through a hidden channel.
func hiddenFixture() (*discovery.Model, *mutate.Analysis, *dfg.Graph) {
	m, a, g := cleanFixture()
	cmp := discovery.Instr{Op: "cmp", Args: []discovery.Operand{
		{Text: "r1", Kind: discovery.KReg, Regs: []string{"r1"}},
		{Text: "r1", Kind: discovery.KReg, Regs: []string{"r1"}},
	}}
	br := discovery.Instr{Op: "beq", Args: []discovery.Operand{
		{Text: "L3", Kind: discovery.KLabelRef, Sym: "L3"},
	}}
	a.Region = append(a.Region, cmp, br)
	a.Groups = append(a.Groups, [2]int{2, 3}, [2]int{3, 4})
	a.Reads["r1"] = append(a.Reads["r1"], 2)
	g.Steps = append(g.Steps,
		dfg.Step{
			Instr: cmp, Sig: "cmp:reg,reg",
			Ins: []dfg.Port{
				{Kind: dfg.PReg, Reg: "r1", ArgIdx: 0, Producer: 0},
				{Kind: dfg.PReg, Reg: "r1", ArgIdx: 1, Producer: 0},
			},
			Outs: []dfg.Port{{Kind: dfg.PHidden, Tag: "cc2", ArgIdx: -1, Producer: -1, KeyName: "h.beq"}},
		},
		dfg.Step{
			Instr: br, Sig: "beq:label", Target: "L3",
			Ins: []dfg.Port{{Kind: dfg.PHidden, Tag: "cc2", ArgIdx: -1, Producer: 2, KeyName: "h"}},
		},
	)
	g.Labels["L3"] = 4
	return m, a, g
}

func TestCleanFixtureVerifies(t *testing.T) {
	for _, fix := range []func() (*discovery.Model, *mutate.Analysis, *dfg.Graph){
		cleanFixture, hiddenFixture,
	} {
		m, a, g := fix()
		if diags := check.VerifyGraph(m, a, g); len(diags) != 0 {
			t.Errorf("clean fixture produced diagnostics: %v", diags)
		}
	}
}

// TestSeededGraphFaults corrupts the fixture graph one invariant at a
// time and asserts the stable diagnostic code the verifier reports.
func TestSeededGraphFaults(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(a *mutate.Analysis, g *dfg.Graph)
		code   string
	}{
		{
			name: "dangling producer: later step",
			mutate: func(a *mutate.Analysis, g *dfg.Graph) {
				g.Steps[1].Ins[0].Producer = 1
			},
			code: check.CodeDanglingProducer,
		},
		{
			name: "dangling producer: step defines no such register",
			mutate: func(a *mutate.Analysis, g *dfg.Graph) {
				g.Steps[1].Ins[0].Reg = "r2"
			},
			code: check.CodeDanglingProducer,
		},
		{
			name: "dead-register use",
			mutate: func(a *mutate.Analysis, g *dfg.Graph) {
				// The store claims to read r2 from outside the region,
				// but nothing defines r2 and it is not live-in.
				g.Steps[1].Ins = append(g.Steps[1].Ins,
					dfg.Port{Kind: dfg.PReg, Reg: "r2", ArgIdx: -1, Producer: -1})
				a.Reads["r2"] = []int{1}
			},
			code: check.CodeDeadRegisterUse,
		},
		{
			name: "broken hidden channel: writer without reader",
			mutate: func(a *mutate.Analysis, g *dfg.Graph) {
				g.Steps[0].Outs = append(g.Steps[0].Outs,
					dfg.Port{Kind: dfg.PHidden, Tag: "cc0", ArgIdx: -1, Producer: -1, KeyName: "h.store"})
			},
			code: check.CodeHiddenChannel,
		},
		{
			name: "broken hidden channel: reader without producer",
			mutate: func(a *mutate.Analysis, g *dfg.Graph) {
				g.Steps[1].Ins = append(g.Steps[1].Ins,
					dfg.Port{Kind: dfg.PHidden, Tag: "cc9", ArgIdx: -1, Producer: -1, KeyName: "h"})
			},
			code: check.CodeHiddenChannel,
		},
		{
			name: "unresolvable label",
			mutate: func(a *mutate.Analysis, g *dfg.Graph) {
				g.Labels["L9"] = 99
			},
			code: check.CodeLabelResolution,
		},
		{
			name: "external wire shadowing a reaching definition",
			mutate: func(a *mutate.Analysis, g *dfg.Graph) {
				g.Steps[1].Ins[0].Producer = -1
				a.ExternalIn = append(a.ExternalIn, "r1")
			},
			code: check.CodeAttributionMismatch,
		},
		{
			name: "step misalignment",
			mutate: func(a *mutate.Analysis, g *dfg.Graph) {
				g.Steps = g.Steps[:1]
			},
			code: check.CodeAttributionMismatch,
		},
		{
			name: "vanishing definition",
			mutate: func(a *mutate.Analysis, g *dfg.Graph) {
				g.Steps[1].Ins[0].Producer = -1
				g.Steps[1].Ins[0].Reg = "fp"
				g.Steps[1].Ins[0].ArgIdx = -1
				a.Reads["r1"] = nil
			},
			code: check.CodeDeadDefinition,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, a, g := cleanFixture()
			tc.mutate(a, g)
			diags := check.VerifyGraph(m, a, g)
			if !hasCode(diags, tc.code) {
				t.Errorf("want %s, got %v", tc.code, diags)
			}
		})
	}
}

// specFixture is a minimal self-consistent machine description for the
// toy model of cleanFixture.
func specFixture() (*discovery.Model, *synth.Spec) {
	m, _, _ := cleanFixture()
	s := &synth.Spec{
		Arch: "toy", WordBits: 32,
		Ops: map[ir.Op]*synth.Template{
			ir.Add: {Name: "Add", Lines: []string{
				"load {src1}, r1", "load {src2}, r2", "add r1, r2, r1", "store r1, {dst}",
			}, Instrs: 4},
			ir.Sub: {Name: "Sub", Lines: []string{
				"load {src1}, r1", "load {src2}, r2", "sub r1, r2, r1", "store r1, {dst}",
			}, Instrs: 4},
		},
		Const: &synth.Template{Name: "Const", Lines: []string{
			"seti {k}, r1", "store r1, {dst}",
		}, Instrs: 2},
		Main: synth.FrameModel{Slots: synth.SlotModel{Pattern: "%d(fp)", Start: -4, Stride: -4}},
	}
	return m, s
}

func TestCleanSpecLints(t *testing.T) {
	m, s := specFixture()
	if diags := check.LintSpec(m, s); len(diags) != 0 {
		t.Errorf("clean spec produced diagnostics: %v", diags)
	}
}

// TestSeededSpecFaults corrupts the machine description one way at a time
// and asserts the linter's stable codes.
func TestSeededSpecFaults(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(m *discovery.Model, s *synth.Spec)
		code   string
	}{
		{
			name: "contradictory templates",
			mutate: func(m *discovery.Model, s *synth.Spec) {
				s.Ops[ir.Sub] = s.Ops[ir.Add]
			},
			code: check.CodeDuplicateTemplate,
		},
		{
			name: "immediate outside the probed range",
			mutate: func(m *discovery.Model, s *synth.Spec) {
				s.Const.Lines = []string{"seti 99999, r1", "store r1, {dst}"}
			},
			code: check.CodeImmediateRange,
		},
		{
			name: "register classes overlap",
			mutate: func(m *discovery.Model, s *synth.Spec) {
				s.Ops[ir.Add].Lines = []string{
					"load {src1}, fp", "add fp, fp, fp", "store fp, {dst}",
				}
			},
			code: check.CodeRegisterClassOverlap,
		},
		{
			name: "addressing mode never witnessed",
			mutate: func(m *discovery.Model, s *synth.Spec) {
				s.Ops[ir.Add].Lines = append(s.Ops[ir.Add].Lines, "load 8(r1+r2), r1")
			},
			code: check.CodeUnwitnessedMode,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, s := specFixture()
			tc.mutate(m, s)
			diags := check.LintSpec(m, s)
			if !hasCode(diags, tc.code) {
				t.Errorf("want %s, got %v", tc.code, diags)
			}
		})
	}
}

// TestDistinctCodes asserts the seeded-fault suite demonstrates at least
// four distinct stable SA codes, the acceptance bar for this layer.
func TestDistinctCodes(t *testing.T) {
	rep := &check.Report{}
	m, a, g := cleanFixture()
	g.Steps[1].Ins[0].Producer = 1
	rep.Add(check.VerifyGraph(m, a, g)...)

	m, a, g = cleanFixture()
	g.Steps[1].Ins = append(g.Steps[1].Ins,
		dfg.Port{Kind: dfg.PReg, Reg: "r2", ArgIdx: -1, Producer: -1})
	a.Reads["r2"] = []int{1}
	rep.Add(check.VerifyGraph(m, a, g)...)

	m, a, g = cleanFixture()
	g.Steps[0].Outs = append(g.Steps[0].Outs,
		dfg.Port{Kind: dfg.PHidden, Tag: "cc0", ArgIdx: -1, Producer: -1, KeyName: "h.x"})
	rep.Add(check.VerifyGraph(m, a, g)...)

	m, a, g = cleanFixture()
	g.Labels["L"] = 42
	rep.Add(check.VerifyGraph(m, a, g)...)

	ms, s := specFixture()
	s.Const.Lines = []string{"seti 99999, r1"}
	rep.Add(check.LintSpec(ms, s)...)

	codes := rep.Codes()
	if len(codes) < 4 {
		t.Errorf("only %d distinct codes: %v", len(codes), codes)
	}
	want := []string{check.CodeDanglingProducer, check.CodeDeadRegisterUse,
		check.CodeHiddenChannel, check.CodeLabelResolution, check.CodeImmediateRange}
	for _, w := range want {
		if !hasCode(rep.Diags, w) {
			t.Errorf("code %s missing from %v", w, codes)
		}
	}
	if rep.Errors() == 0 {
		t.Error("seeded faults produced no Error-severity diagnostics")
	}
	if !strings.Contains(rep.String(), check.CodeDanglingProducer) {
		t.Error("report rendering lost the diagnostic codes")
	}
}

func hasCode(diags []check.Diagnostic, code string) bool {
	for _, d := range diags {
		if d.Code == code {
			return true
		}
	}
	return false
}
