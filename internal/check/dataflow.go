package check

import (
	"srcg/internal/dfg"
	"srcg/internal/mutate"
)

// facts is the per-step dataflow input re-derived for one sample: the
// def/use sets the mutation engine attributed to each execution group,
// aligned with the graph steps, plus a conservative control-flow graph
// built from the region's resolved labels. The reaching-definitions and
// liveness fixpoints computed over it are may-analyses: every edge that
// could be taken is present (a transfer whose conditionality is unknown
// keeps its fall-through edge), so "no definition reaches" and "never
// read afterwards" are safe claims.
type facts struct {
	defs  []map[string]bool // step -> registers the step defines
	uses  []map[string]bool // step -> registers the step reads
	succs [][]int           // step -> successor steps (len(steps) = exit)
	n     int
}

// buildFacts aligns the analysis execution groups with the graph steps
// (label-only and pure-filler groups produce no step) and collects
// per-step def/use sets from the mutation attributions. It returns false
// when the group sequence cannot be aligned with the steps — a corrupted
// graph the caller reports.
func buildFacts(a *mutate.Analysis, g *dfg.Graph) (*facts, bool) {
	var groups []int
	for grp := range a.Groups {
		ins := a.GroupInstr(grp)
		if ins.Op == "" {
			continue
		}
		if a.Filler[a.Groups[grp][0]] && a.Groups[grp][1]-a.Groups[grp][0] == 1 {
			continue
		}
		groups = append(groups, grp)
	}
	if len(groups) != len(g.Steps) {
		return nil, false
	}
	f := &facts{n: len(g.Steps)}
	f.defs = make([]map[string]bool, f.n)
	f.uses = make([]map[string]bool, f.n)
	for i, grp := range groups {
		f.defs[i] = map[string]bool{}
		f.uses[i] = map[string]bool{}
		for reg, gs := range a.Defs {
			if containsInt(gs, grp) {
				f.defs[i][reg] = true
			}
		}
		for reg, gs := range a.UseDefs {
			if containsInt(gs, grp) {
				f.defs[i][reg] = true
				f.uses[i][reg] = true
			}
		}
		for reg, gs := range a.Reads {
			if containsInt(gs, grp) {
				f.uses[i][reg] = true
			}
		}
	}
	f.succs = make([][]int, f.n)
	for i := range g.Steps {
		f.succs[i] = append(f.succs[i], i+1)
		if t := g.Steps[i].Target; t != "" {
			if idx, ok := g.Labels[t]; ok && idx != i+1 {
				f.succs[i] = append(f.succs[i], idx)
			}
		}
	}
	return f, true
}

// reaching computes, for every step, which definitions may reach its
// entry: reach[i][reg] is the set of step indexes whose definition of reg
// survives along at least one path to i.
func (f *facts) reaching() []map[string]map[int]bool {
	reach := make([]map[string]map[int]bool, f.n)
	for i := range reach {
		reach[i] = map[string]map[int]bool{}
	}
	changed := true
	for changed {
		changed = false
		for i := 0; i < f.n; i++ {
			// Transfer: out = gen ∪ (in − kill).
			out := map[string]map[int]bool{}
			for reg, srcs := range reach[i] {
				if f.defs[i][reg] {
					continue
				}
				for s := range srcs {
					if out[reg] == nil {
						out[reg] = map[int]bool{}
					}
					out[reg][s] = true
				}
			}
			for reg := range f.defs[i] {
				if out[reg] == nil {
					out[reg] = map[int]bool{}
				}
				out[reg][i] = true
			}
			for _, s := range f.succs[i] {
				if s >= f.n {
					continue
				}
				for reg, srcs := range out {
					for d := range srcs {
						if !reach[s][reg][d] {
							if reach[s][reg] == nil {
								reach[s][reg] = map[int]bool{}
							}
							reach[s][reg][d] = true
							changed = true
						}
					}
				}
			}
		}
	}
	return reach
}

// liveness computes may-liveness: liveOut[i][reg] holds when some path
// from i's exit reaches a read of reg before any redefinition.
func (f *facts) liveness() (liveIn, liveOut []map[string]bool) {
	liveIn = make([]map[string]bool, f.n)
	liveOut = make([]map[string]bool, f.n)
	for i := range liveIn {
		liveIn[i] = map[string]bool{}
		liveOut[i] = map[string]bool{}
	}
	changed := true
	for changed {
		changed = false
		for i := f.n - 1; i >= 0; i-- {
			for _, s := range f.succs[i] {
				if s >= f.n {
					continue
				}
				for reg := range liveIn[s] {
					if !liveOut[i][reg] {
						liveOut[i][reg] = true
						changed = true
					}
				}
			}
			for reg := range liveOut[i] {
				if !f.defs[i][reg] && !liveIn[i][reg] {
					liveIn[i][reg] = true
					changed = true
				}
			}
			for reg := range f.uses[i] {
				if !liveIn[i][reg] {
					liveIn[i][reg] = true
					changed = true
				}
			}
		}
	}
	return liveIn, liveOut
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
