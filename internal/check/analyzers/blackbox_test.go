package analyzers

import (
	"os"
	"path/filepath"
	"testing"
)

// TestBlackBoxClean runs the analyzer over the real tree: no
// discovery-side package may import the simulator or a concrete target.
func TestBlackBoxClean(t *testing.T) {
	findings, err := RunAll(BlackBox, filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestBlackBoxDetects seeds a violating file in a temporary package and
// asserts the analyzer reports both forbidden import classes.
func TestBlackBoxDetects(t *testing.T) {
	dir := t.TempDir()
	src := `package bad

import (
	_ "srcg/internal/machine"
	_ "srcg/internal/target/vax"
	_ "srcg/internal/target"
	_ "fmt"
)
`
	if err := os.WriteFile(filepath.Join(dir, "bad.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	// A test file with the same imports must be exempt.
	if err := os.WriteFile(filepath.Join(dir, "bad_test.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	findings, err := BlackBox.Run(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 2 {
		t.Fatalf("want 2 findings (machine + target/vax, interface and test file exempt), got %d: %v",
			len(findings), findings)
	}
}
