// Fixture for the blessed obs.WallClock seam: the WallClock methods and
// constructor may read real time; everything else in the package — an
// emitter stamping events on its own, a throttle — still fails.
package obs

import "time"

type WallClock struct{ epoch time.Time }

func NewWallClock() *WallClock { return &WallClock{epoch: time.Now()} } // blessed constructor

func (w *WallClock) Now() time.Duration { return time.Since(w.epoch) } // blessed method

func strayStamp() int64 { return time.Now().UnixNano() } // flagged: outside the seam

func emitThrottled() { time.Sleep(time.Millisecond) } // flagged: emitters never sleep
