// Package mapiter is a seeded-violation fixture for the mapiter
// analyzer: order-dependent work inside a range over a map must be
// flagged; the blessed idioms (collect-then-sort, per-key writes,
// commutative accumulation, constant latches, deletion) must pass.
package mapiter

import (
	"fmt"
	"sort"
)

type model struct {
	bases map[int]string
}

func emitInMapOrder(m map[string]int) []string {
	var out []string
	for k := range m {
		fmt.Println(k)
		out = append(out, k)
	}
	return out
}

func lastWriterWins(mdl *model, reps map[string]int) {
	for rep, base := range reps {
		mdl.bases[base] = rep
	}
}

func pickArbitrary(m map[string]bool) string {
	for k := range m {
		return k
	}
	return ""
}

func safeCollectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func safePerKeyCopy(dst, src map[string]int) {
	for k, v := range src {
		dst[k] = v
	}
}

func safeLatch(index map[string]map[int]bool, n int) bool {
	changed := false
	for k := range index {
		if index[k] == nil {
			index[k] = map[int]bool{}
		}
		index[k][n] = true
		changed = true
	}
	return changed
}

func safeCommutative(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func safeDelete(m map[string]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}
