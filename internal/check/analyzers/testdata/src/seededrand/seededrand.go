// Package seededrand is a seeded-violation fixture for the seededrand
// analyzer: the package-level math/rand generator (process-global,
// unseeded or seeded once) must be flagged; an explicit rand.New with a
// caller-supplied seed must pass.
package seededrand

import "math/rand"

func flagged() int {
	rand.Seed(42)
	n := rand.Intn(10)
	_ = rand.Float64()
	rand.Shuffle(n, func(i, j int) {})
	return n
}

func safe(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
