// Package wallclock is a seeded-violation fixture for the wallclock
// analyzer: every read of the wall clock must be flagged; duration
// arithmetic and formatting helpers must pass.
package wallclock

import "time"

func flagged() {
	start := time.Now()
	time.Sleep(5 * time.Millisecond)
	_ = time.Since(start)
	_ = time.Until(start)
	<-time.After(time.Second)
	tick := time.NewTicker(time.Second)
	tick.Stop()
}

func safe(d time.Duration) string {
	d = d * 2
	budget := 3 * time.Millisecond
	if d > budget {
		d = budget
	}
	return d.String()
}
