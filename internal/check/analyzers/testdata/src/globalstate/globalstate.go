// Package globalstate is a seeded-violation fixture for the globalstate
// analyzer: package-level variables that start zero-valued or are
// reassigned after initialization must be flagged; initialized-once
// tables, error sentinels, and blank assertions must pass.
package globalstate

import "errors"

var hook func(string)

var counter = 0

var errBad = errors.New("bad")

var table = map[string]int{"a": 1}

var _ = errBad

func flagged() {
	counter++
	hook = nil
}

func safe() int {
	counter := 5
	table := map[string]int{}
	table = nil
	_ = table
	return counter
}
