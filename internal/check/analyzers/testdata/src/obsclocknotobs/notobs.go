// Fixture proving the WallClock exemption is package-gated: an identical
// WallClock shape outside package obs earns no blessing.
package notobs

import "time"

type WallClock struct{ epoch time.Time }

func NewWallClock() *WallClock { return &WallClock{epoch: time.Now()} } // flagged: wrong package

func (w *WallClock) Now() time.Duration { return time.Since(w.epoch) } // flagged: wrong package
