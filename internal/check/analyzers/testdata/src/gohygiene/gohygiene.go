// Package gohygiene is a seeded-violation fixture for the gohygiene
// analyzer: goroutines, channels, sends, receives, and selects must all
// be flagged; mutex-guarded sequential code must pass.
package gohygiene

import "sync"

func flagged(n int) int {
	ch := make(chan int)
	go func() { ch <- n }()
	return <-ch
}

func alsoFlagged(done chan struct{}) {
	select {
	case <-done:
	default:
	}
}

func safe(counts map[string]int) func(string) {
	var mu sync.Mutex
	return func(k string) {
		mu.Lock()
		defer mu.Unlock()
		counts[k]++
	}
}
