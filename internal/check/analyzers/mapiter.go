package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// MapIter forbids order-dependent work inside `range` over a map — the
// classic source of run-to-run machine-description diffs. Go randomizes
// map iteration order on purpose, so any loop body that emits output,
// hashes, accumulates into a slice, appends diagnostics, or calls into
// the toolchain observes a different order on every run. The analyzer
// permits the bodies that genuinely commute:
//
//   - declarations and writes to loop-local variables,
//   - delete/clear/panic builtins,
//   - x++/x-- and commutative op-assignments (+= on numbers, |=, &=, ^=),
//   - idempotent latches (m[k] = true, changed = true, x = nil),
//   - per-key writes: an indexed write whose index mentions the range
//     KEY variable (copying a map is fine; keying by the VALUE is not),
//   - slice accumulation that is sorted before leaving the function
//     (collect-then-sort, the canonical fix).
//
// Everything else order-couples the result and is flagged. Map types are
// resolved by the package-local inference in determinism.go; expressions
// it cannot resolve are never flagged, and call arguments/conditions are
// not analyzed — the double-run discovery test backstops what static
// conservatism lets through.
var MapIter = &Analyzer{
	Name: "mapiter",
	Doc: "forbid order-dependent loop bodies in range-over-map: no output, " +
		"hashing, diagnostics or unsorted slice accumulation from map order",
	Run: runMapIter,
}

// sortishFuncs are the sort entry points that discharge a slice
// accumulation when called after the loop in the same function.
var sortishFuncs = map[string]bool{
	"Strings": true, "Ints": true, "Float64s": true,
	"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
	"SortFunc": true, "SortStableFunc": true,
}

func runMapIter(dir string) ([]Finding, error) {
	pkg, err := parsePkg(dir)
	if err != nil {
		return nil, err
	}
	pkg.types.module = loadModuleTypes(dir)
	var findings []Finding
	pkg.funcScopes(func(f *ast.File, fn *ast.FuncDecl, sc *funcScope) {
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok || !sc.isMapExpr(rs.X) {
				return true
			}
			checkMapRange(pkg, sc, fn, rs, &findings)
			return true
		})
	})
	return findings, nil
}

func checkMapRange(pkg *parsedPkg, sc *funcScope, fn *ast.FuncDecl, rs *ast.RangeStmt, findings *[]Finding) {
	keyName := identName(rs.Key)
	valName := identName(rs.Value)
	if keyName == "" && valName == "" {
		return // `for range m` bodies cannot distinguish iterations
	}
	mapName := exprString(rs.X)

	flag := func(pos token.Pos, format string, args ...interface{}) {
		*findings = append(*findings, Finding{
			Pos:     pkg.fset.Position(pos),
			Message: fmt.Sprintf(format, args...) + fmt.Sprintf(" (in range over map %s)", mapName),
		})
	}

	// Names declared inside the loop body (plus the loop variables
	// themselves) are per-iteration state: writes to them commute.
	locals := bodyLocals(rs)
	if keyName != "" {
		locals[keyName] = true
	}
	if valName != "" {
		locals[valName] = true
	}

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ExprStmt:
			call, ok := st.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Obj == nil &&
				(id.Name == "delete" || id.Name == "clear" || id.Name == "panic") {
				return true
			}
			flag(st.Pos(), "call %s ordered by map iteration: output, hashing and "+
				"toolchain probes must not observe map order — iterate sorted keys",
				exprString(call.Fun))
		case *ast.DeferStmt:
			flag(st.Pos(), "defer ordered by map iteration")
		case *ast.ReturnStmt:
			for _, r := range st.Results {
				if !isConstLike(r) {
					flag(st.Pos(), "return selects an arbitrary map element: "+
						"which iteration returns first varies run to run")
					break
				}
			}
		case *ast.IncDecStmt:
			return true // counting commutes
		case *ast.AssignStmt:
			checkMapRangeAssign(st, keyName, locals, sc, fn, rs, flag)
		}
		return true
	})
}

func checkMapRangeAssign(st *ast.AssignStmt, keyName string, locals map[string]bool,
	sc *funcScope, fn *ast.FuncDecl, rs *ast.RangeStmt,
	flag func(token.Pos, string, ...interface{})) {

	switch st.Tok {
	case token.DEFINE:
		return // declares per-iteration variables
	case token.ADD_ASSIGN:
		// Numeric += commutes across iterations; string += concatenates in
		// iteration order. Unresolvable types pass (conservative).
		lhs := st.Lhs[0]
		if id := assignBase(lhs); id != nil && locals[id.Name] {
			return
		}
		if t, ok := sc.underlying(sc.typeOf(st.Lhs[0])).(*ast.Ident); ok && t.Name == "string" {
			flag(st.Pos(), "string concatenation onto %s in map order", exprString(lhs))
		}
		return
	case token.SUB_ASSIGN, token.MUL_ASSIGN, token.AND_ASSIGN,
		token.OR_ASSIGN, token.XOR_ASSIGN:
		return // commutative accumulation
	case token.QUO_ASSIGN, token.REM_ASSIGN, token.SHL_ASSIGN,
		token.SHR_ASSIGN, token.AND_NOT_ASSIGN:
		flag(st.Pos(), "non-commutative op-assignment to %s accumulates in map order",
			exprString(st.Lhs[0]))
		return
	}

	// Plain `=`.
	for i, lhs := range st.Lhs {
		if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
			continue
		}
		base := assignBase(lhs)
		if base != nil && locals[base.Name] {
			continue
		}
		// Idempotent latch: every iteration stores the same constant.
		if len(st.Lhs) == len(st.Rhs) && isConstLike(st.Rhs[i]) {
			continue
		}
		// Self-append: legal only when the accumulated slice is sorted
		// before the function is done with it.
		if len(st.Lhs) == 1 && len(st.Rhs) == 1 {
			if call, ok := st.Rhs[0].(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" && id.Obj == nil &&
					len(call.Args) > 0 && exprString(call.Args[0]) == exprString(lhs) {
					if !sortedAfter(fn, rs, exprString(lhs)) {
						flag(st.Pos(), "%s accumulates map elements in iteration "+
							"order and is never sorted afterwards", exprString(lhs))
					}
					continue
				}
			}
		}
		// Per-key write: the destination is indexed by the range KEY, so
		// each iteration touches its own slot regardless of order.
		if indexMentions(lhs, keyName) {
			continue
		}
		flag(st.Pos(), "write to %s depends on map iteration order: the last "+
			"iteration wins and the winner varies run to run", exprString(lhs))
	}
}

// bodyLocals collects every name declared inside the loop body: short
// variable declarations, var decls, nested loop variables, type-switch
// bindings and func-literal parameters.
func bodyLocals(rs *ast.RangeStmt) map[string]bool {
	locals := map[string]bool{}
	add := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			locals[id.Name] = true
		}
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if x.Tok == token.DEFINE {
				for _, lhs := range x.Lhs {
					add(lhs)
				}
			}
		case *ast.GenDecl:
			if x.Tok == token.VAR {
				for _, spec := range x.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, name := range vs.Names {
							add(name)
						}
					}
				}
			}
		case *ast.RangeStmt:
			if x.Tok == token.DEFINE {
				if x.Key != nil {
					add(x.Key)
				}
				if x.Value != nil {
					add(x.Value)
				}
			}
		case *ast.TypeSwitchStmt:
			if a, ok := x.Assign.(*ast.AssignStmt); ok {
				for _, lhs := range a.Lhs {
					add(lhs)
				}
			}
		case *ast.FuncLit:
			for _, fld := range x.Type.Params.List {
				for _, name := range fld.Names {
					add(name)
				}
			}
		}
		return true
	})
	return locals
}

// identName returns the name of a loop-variable expression, "" for nil
// or the blank identifier.
func identName(e ast.Expr) string {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return ""
	}
	return id.Name
}

// assignBase unwraps an assignment target to the identifier being
// written through: m.LitBases[b] writes through m.
func assignBase(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isConstLike reports whether storing e is idempotent across iterations:
// literals, true/false/nil, negated literals, and empty composite
// literals (the make-the-bucket idiom `m[k] = map[string]bool{}`).
func isConstLike(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.BasicLit:
		return true
	case *ast.Ident:
		return x.Obj == nil && (x.Name == "true" || x.Name == "false" || x.Name == "nil")
	case *ast.UnaryExpr:
		return isConstLike(x.X)
	case *ast.CompositeLit:
		return len(x.Elts) == 0
	case *ast.CallExpr:
		// make(...) with constant args mints an identical empty container
		// each iteration.
		if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "make" && id.Obj == nil {
			return true
		}
	}
	return false
}

// indexMentions reports whether e is (or contains) an indexed write whose
// index expression mentions the given name.
func indexMentions(e ast.Expr, name string) bool {
	if name == "" {
		return false
	}
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			if mentionsIdent(x.Index, name) {
				return true
			}
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return false
		}
	}
}

// sortedAfter reports whether a sort call covering target appears after
// the range statement in the same function — the collect-then-sort idiom.
func sortedAfter(fn *ast.FuncDecl, rs *ast.RangeStmt, target string) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !sortishFuncs[sel.Sel.Name] {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); !ok || (id.Name != "sort" && id.Name != "slices") || id.Obj != nil {
			return true
		}
		for _, arg := range call.Args {
			as := exprString(arg)
			if as == target || strings.Contains(as, "("+target+")") ||
				strings.HasPrefix(as, target+"[") {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
