// Package analyzers holds source-level analyzers for the repository
// itself, in the style of go/analysis passes. The golang.org/x/tools
// module is not vendored here, so each analyzer is a self-contained
// struct with the same shape (Name, Doc, Run) driven from a test; CI
// executes them via `go test ./internal/check/...`.
package analyzers

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Analyzer is a minimal stand-in for *analysis.Analyzer: Run inspects the
// package rooted at dir and returns one Finding per violation.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(dir string) ([]Finding, error)
}

// Finding locates one violation.
type Finding struct {
	Pos     token.Position
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s", f.Pos, f.Message)
}

// DiscoverySide lists the packages that implement the architecture
// discovery unit. The paper's premise is that the unit learns a machine
// purely through its toolchain (§2); these packages therefore must not
// reach into a concrete machine model or target implementation.
var DiscoverySide = []string{
	"gen", "lexer", "mutate", "dfg", "extract", "synth", "core",
	"discovery", "sem", "enquire", "beg", "check", "pool", "probe",
	"faulty", "obs",
}

// forbidden import paths for discovery-side code: the instruction-level
// machine model (simulator ground truth) and every concrete target.
var forbidden = []struct {
	path   string
	prefix bool
	why    string
}{
	{"srcg/internal/machine", false,
		"the simulator's ground truth is off-limits to discovery code"},
	{"srcg/internal/target/", true,
		"discovery-side code must stay behind the toolchain interface"},
}

// BlackBox forbids discovery-side packages from importing the machine
// simulator or any concrete target package. The plain
// "srcg/internal/target" interface package is allowed — it is the
// toolchain abstraction itself. Test files are exempt: they may drive
// real targets end to end.
var BlackBox = &Analyzer{
	Name: "blackbox",
	Doc: "forbid discovery-side packages from importing the machine " +
		"simulator or concrete target implementations",
	Run: runBlackBox,
}

func runBlackBox(dir string) ([]Finding, error) {
	var findings []Finding
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, imp := range f.Imports {
			ip := strings.Trim(imp.Path.Value, `"`)
			for _, rule := range forbidden {
				bad := ip == rule.path || (rule.prefix && strings.HasPrefix(ip, rule.path))
				if bad {
					findings = append(findings, Finding{
						Pos:     fset.Position(imp.Pos()),
						Message: fmt.Sprintf("imports %s: %s", ip, rule.why),
					})
				}
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		return findings[i].String() < findings[j].String()
	})
	return findings, nil
}

// RunAll applies an analyzer to every discovery-side package under the
// given internal/ root and returns the combined findings.
func RunAll(a *Analyzer, internalRoot string) ([]Finding, error) {
	var all []Finding
	for _, pkg := range DiscoverySide {
		fs, err := a.Run(filepath.Join(internalRoot, pkg))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", pkg, err)
		}
		all = append(all, fs...)
	}
	return all, nil
}
