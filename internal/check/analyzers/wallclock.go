package analyzers

import (
	"fmt"
	"go/ast"
)

// wallclockDenied are the time package functions that read or schedule
// against the wall clock. time.Duration arithmetic and the duration
// constants stay legal: internal/probe models its backoff schedule in
// virtual time — durations are computed and accounted, never measured.
var wallclockDenied = map[string]string{
	"Now":       "reads the wall clock",
	"Since":     "reads the wall clock",
	"Until":     "reads the wall clock",
	"Sleep":     "blocks on the wall clock",
	"After":     "schedules on the wall clock",
	"AfterFunc": "schedules on the wall clock",
	"Tick":      "schedules on the wall clock",
	"NewTicker": "schedules on the wall clock",
	"NewTimer":  "schedules on the wall clock",
}

// Wallclock forbids wall-clock time in analysis code. Two discovery runs
// with the same seed must be bit-identical; any value derived from
// time.Now (timestamps in reports, elapsed-time cutoffs, timer-driven
// retries) varies between runs and between workers, so analysis code may
// only use virtual time: durations computed from configuration and
// accounted in Stats.
//
// One seam is blessed: obs.WallClock, the telemetry layer's injectable
// wall-clock reader. Real time may enter the system only there, and only
// at the edge (bench harness, CLI) via clock injection — so the
// exemption covers exactly the WallClock methods and NewWallClock
// constructor inside package obs. A stray time.Now anywhere else in obs
// (an emitter stamping events on its own, say) still fails.
var Wallclock = &Analyzer{
	Name: "wallclock",
	Doc: "forbid time.Now/time.Since and timers in analysis code; " +
		"virtual time only, except the blessed obs.WallClock seam",
	Run: runWallclock,
}

// isBlessedClockDecl reports whether fd is part of the one sanctioned
// wall-clock seam: a method on obs.WallClock, or its constructor.
func isBlessedClockDecl(pkgName string, fd *ast.FuncDecl) bool {
	if pkgName != "obs" {
		return false
	}
	if fd.Recv != nil {
		for _, fld := range fd.Recv.List {
			t := fld.Type
			if st, ok := t.(*ast.StarExpr); ok {
				t = st.X
			}
			if id, ok := t.(*ast.Ident); ok && id.Name == "WallClock" {
				return true
			}
		}
		return false
	}
	return fd.Name.Name == "NewWallClock"
}

func runWallclock(dir string) ([]Finding, error) {
	pkg, err := parsePkg(dir)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	for _, f := range pkg.files {
		local := importedAs(f, "time")
		if local == "" {
			continue
		}
		check := func(n ast.Node) bool {
			e, isExpr := n.(ast.Expr)
			if !isExpr {
				return true
			}
			sel, ok := isPkgSelector(e, local)
			if !ok {
				return true
			}
			why, denied := wallclockDenied[sel]
			if !denied {
				return true
			}
			findings = append(findings, Finding{
				Pos: pkg.fset.Position(n.Pos()),
				Message: fmt.Sprintf("time.%s %s: analysis code must be "+
					"bit-deterministic across runs and workers — use virtual "+
					"time (computed durations) or inject an obs.Clock", sel, why),
			})
			return true
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && isBlessedClockDecl(f.Name.Name, fd) {
				continue // the sanctioned obs.WallClock seam
			}
			ast.Inspect(decl, check)
		}
	}
	return findings, nil
}
