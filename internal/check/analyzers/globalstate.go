package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
)

// GlobalState forbids package-level mutable variables in analysis code.
// A package-level var written at runtime is shared state between
// concurrent discoveries (and between samples within one discovery), so
// results come to depend on execution order. Two forms are flagged:
//
//   - a var with no initializer (zero-valued state that exists to be
//     assigned later, e.g. a hook), and
//   - a var assigned anywhere in its own package.
//
// Initialized-and-never-written vars pass: error sentinels, lookup
// tables, and the analyzer registry itself are effectively constants that
// Go's const syntax cannot express. Blank vars (`var _ = ...`) pass too —
// they are compile-time interface assertions.
var GlobalState = &Analyzer{
	Name: "globalstate",
	Doc: "forbid package-level mutable vars in analysis packages; " +
		"consts, error sentinels and fixed tables exempt",
	Run: runGlobalState,
}

func runGlobalState(dir string) ([]Finding, error) {
	pkg, err := parsePkg(dir)
	if err != nil {
		return nil, err
	}

	// Pass 1: collect package-level vars. The object identity (when the
	// reference is in the declaring file) or a nil Obj (cross-file
	// reference) distinguishes them from local shadows.
	type pkgVar struct {
		spec        *ast.ValueSpec
		pos         token.Pos
		initialized bool
	}
	vars := map[string]pkgVar{}
	specs := map[*ast.ValueSpec]bool{}
	for _, f := range pkg.files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				specs[vs] = true
				for _, n := range vs.Names {
					if n.Name == "_" {
						continue
					}
					vars[n.Name] = pkgVar{spec: vs, pos: n.Pos(), initialized: len(vs.Values) > 0}
				}
			}
		}
	}
	if len(vars) == 0 {
		return nil, nil
	}

	// refersToPkgVar reports whether ident id is a reference to the
	// package-level var of the same name (not a local shadow): either the
	// parser resolved it to the package-level ValueSpec (same file), or it
	// resolved to nothing at all (cross-file package scope).
	refersToPkgVar := func(id *ast.Ident) bool {
		v, isPkgVar := vars[id.Name]
		if !isPkgVar {
			return false
		}
		if id.Obj == nil {
			return true
		}
		decl, _ := id.Obj.Decl.(*ast.ValueSpec)
		return decl != nil && specs[decl] && decl == v.spec
	}

	// baseIdent unwraps an assignment target (index, selector, deref,
	// parens) to the identifier being written through.
	var baseIdent func(e ast.Expr) *ast.Ident
	baseIdent = func(e ast.Expr) *ast.Ident {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.IndexExpr:
			return baseIdent(x.X)
		case *ast.SelectorExpr:
			return baseIdent(x.X)
		case *ast.StarExpr:
			return baseIdent(x.X)
		case *ast.ParenExpr:
			return baseIdent(x.X)
		}
		return nil
	}

	// Pass 2: find writes.
	written := map[string]token.Pos{}
	note := func(e ast.Expr) {
		if id := baseIdent(e); id != nil && refersToPkgVar(id) {
			if _, seen := written[id.Name]; !seen {
				written[id.Name] = e.Pos()
			}
		}
	}
	for _, f := range pkg.files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				if st.Tok == token.DEFINE {
					return true // := always declares new (possibly shadowing) names
				}
				for _, lhs := range st.Lhs {
					note(lhs)
				}
			case *ast.IncDecStmt:
				note(st.X)
			case *ast.RangeStmt:
				if st.Tok == token.ASSIGN {
					if st.Key != nil {
						note(st.Key)
					}
					if st.Value != nil {
						note(st.Value)
					}
				}
			}
			return true
		})
	}

	names := make([]string, 0, len(vars))
	for name := range vars {
		names = append(names, name)
	}
	sort.Strings(names)
	var findings []Finding
	for _, name := range names {
		v := vars[name]
		switch {
		case !v.initialized:
			findings = append(findings, Finding{
				Pos: pkg.fset.Position(v.pos),
				Message: fmt.Sprintf("package-level var %s has no initializer: "+
					"zero-valued package state exists to be mutated — thread it "+
					"through a struct field or parameter instead", name),
			})
		default:
			if wpos, ok := written[name]; ok {
				findings = append(findings, Finding{
					Pos: pkg.fset.Position(v.pos),
					Message: fmt.Sprintf("package-level var %s is written at %s: "+
						"mutable package state couples concurrent discoveries — "+
						"move it into the owning struct", name,
						pkg.fset.Position(wpos)),
				})
			}
		}
	}
	return findings, nil
}
