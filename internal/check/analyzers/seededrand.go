package analyzers

import (
	"fmt"
	"go/ast"
)

// seededRandAllowed are the math/rand selectors that do not touch the
// package-level (globally seeded, lock-shared) generator: constructors
// that take an explicit source and the generator/source type names.
var seededRandAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	"Rand":      true,
	"Source":    true,
	"Source64":  true,
	"Zipf":      true,
}

// SeededRand forbids the math/rand package-level generator. The paper's
// mutation analysis is replayed under fixed seeds (retry seeds are
// derived per sample); randomness must flow from an explicit seed
// parameter through rand.New(rand.NewSource(seed)) so that two runs — or
// two workers splitting one run — draw identical sequences. math/rand/v2
// is banned outright: its top-level generators are auto-seeded.
var SeededRand = &Analyzer{
	Name: "seededrand",
	Doc: "forbid math/rand top-level functions; randomness must flow " +
		"from an explicit seed via rand.New(rand.NewSource(seed))",
	Run: runSeededRand,
}

func runSeededRand(dir string) ([]Finding, error) {
	pkg, err := parsePkg(dir)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	for _, f := range pkg.files {
		for _, imp := range f.Imports {
			if imp.Path.Value == `"math/rand/v2"` {
				findings = append(findings, Finding{
					Pos: pkg.fset.Position(imp.Pos()),
					Message: "imports math/rand/v2: its top-level generators are " +
						"auto-seeded and unreplayable — use math/rand with an " +
						"explicit rand.NewSource(seed)",
				})
			}
		}
		local := importedAs(f, "math/rand")
		if local == "" {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			e, isExpr := n.(ast.Expr)
			if !isExpr {
				return true
			}
			sel, ok := isPkgSelector(e, local)
			if !ok || seededRandAllowed[sel] {
				return true
			}
			findings = append(findings, Finding{
				Pos: pkg.fset.Position(n.Pos()),
				Message: fmt.Sprintf("rand.%s uses the package-level generator: "+
					"mutation analysis must be replayable under a fixed seed — "+
					"thread a *rand.Rand built from rand.NewSource(seed)", sel),
			})
			return true
		})
	}
	return findings, nil
}
