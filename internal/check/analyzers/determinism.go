// Determinism contract infrastructure.
//
// The ROADMAP's parallel probe engine is only sound if discovery is
// bit-deterministic at any worker count: mutation analysis compares runs
// of mutated samples, so any run-to-run wobble in the pipeline itself is
// indistinguishable from machine behavior. The five analyzers in this
// directory (wallclock, seededrand, mapiter, globalstate, gohygiene)
// statically enforce that contract over every analysis-side package; the
// simulated targets under internal/target are the machines being
// interrogated, not the interrogator, and are covered by the end-to-end
// double-run test instead.
//
// Like the black-box analyzer, everything here is stdlib-only: no
// golang.org/x/tools and no go/types importer (unreliable under modules
// in a hermetic build), so map-typed expressions are resolved by a
// lightweight per-package syntactic inference (see pkgTypes). The
// inference is deliberately conservative: an expression whose type cannot
// be resolved is never flagged.
package analyzers

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// DeterminismScope lists every analysis-side package directory (relative
// to internal/) the determinism contract covers. internal/target and its
// simulators are excluded: they are the ground truth being discovered,
// reachable only through the toolchain interface, and their determinism
// is asserted end to end by the double-run discovery test.
var DeterminismScope = []string{
	"asm", "beg", "cc", "check", "check/analyzers", "check/mdverify",
	"cliflags", "core",
	"dfg", "discovery", "enquire", "experiments", "extract", "faulty",
	"gen", "ir", "lexer", "machine", "mutate", "obs", "pool", "probe",
	"sem", "synth",
}

// Determinism bundles the five contract analyzers in reporting order.
var Determinism = []*Analyzer{Wallclock, SeededRand, MapIter, GlobalState, GoHygiene}

// RunScope applies an analyzer to every package in scope under the given
// internal/ root and returns the combined findings, sorted by position.
func RunScope(a *Analyzer, internalRoot string, scope []string) ([]Finding, error) {
	var all []Finding
	for _, pkg := range scope {
		fs, err := a.Run(filepath.Join(internalRoot, pkg))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", pkg, err)
		}
		all = append(all, fs...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].String() < all[j].String() })
	return all, nil
}

// parsedPkg is one directory's parsed, non-test Go files.
type parsedPkg struct {
	fset  *token.FileSet
	files []*ast.File
	types *pkgTypes
}

// parsePkg parses every non-test .go file directly in dir. Files are
// parsed with object resolution, so an *ast.Ident referring to a
// declaration in the same file carries a non-nil Obj; idents naming
// imported packages (and cross-file package-level objects) have Obj nil.
func parsePkg(dir string) (*parsedPkg, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	p := &parsedPkg{fset: token.NewFileSet()}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(p.fset, filepath.Join(dir, e.Name()), nil, 0)
		if err != nil {
			return nil, err
		}
		p.files = append(p.files, f)
	}
	p.types = inferPkgTypes(p.files)
	return p, nil
}

// importedAs returns the local name under which path is imported in f, or
// "" if f does not import it. An unnamed import of "a/b/c" binds "c".
func importedAs(f *ast.File, path string) string {
	for _, imp := range f.Imports {
		ip := strings.Trim(imp.Path.Value, `"`)
		if ip != path {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name
		}
		if i := strings.LastIndex(ip, "/"); i >= 0 {
			return ip[i+1:]
		}
		return ip
	}
	return ""
}

// isPkgSelector reports whether e is a selector pkgName.Sel where pkgName
// is the package ident (Obj == nil: not a local or same-file object).
func isPkgSelector(e ast.Expr, pkgName string) (sel string, ok bool) {
	s, isSel := e.(*ast.SelectorExpr)
	if !isSel {
		return "", false
	}
	id, isIdent := s.X.(*ast.Ident)
	if !isIdent || id.Name != pkgName || id.Obj != nil {
		return "", false
	}
	return s.Sel.Name, true
}

// pkgTypes is the package-local type environment the map-iteration
// analyzer resolves expressions against: named types, struct field types,
// package-level variable types, and single-result function signatures,
// all gathered syntactically from the package's own files. module, when
// present, maps "pkg.Type" to type expressions gathered from sibling
// scope packages so cross-package selectors resolve too.
type pkgTypes struct {
	named   map[string]ast.Expr // type name -> underlying type expression
	fields  map[string]ast.Expr // struct field name -> type expression (unambiguous only)
	ambig   map[string]bool     // field names with conflicting types across structs
	globals map[string]ast.Expr // package-level var name -> type expression
	results map[string]ast.Expr // func or method name -> sole result type
	module  map[string]ast.Expr // "pkg.Type" -> type expression, cross-package
}

func inferPkgTypes(files []*ast.File) *pkgTypes {
	pt := &pkgTypes{
		named:   map[string]ast.Expr{},
		fields:  map[string]ast.Expr{},
		ambig:   map[string]bool{},
		globals: map[string]ast.Expr{},
		results: map[string]ast.Expr{},
	}
	for _, f := range files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						pt.named[s.Name.Name] = s.Type
						if st, ok := s.Type.(*ast.StructType); ok {
							for _, fld := range st.Fields.List {
								for _, n := range fld.Names {
									if prev, seen := pt.fields[n.Name]; seen &&
										exprString(prev) != exprString(fld.Type) {
										pt.ambig[n.Name] = true
									}
									pt.fields[n.Name] = fld.Type
								}
							}
						}
					case *ast.ValueSpec:
						if d.Tok != token.VAR {
							continue
						}
						for i, n := range s.Names {
							if s.Type != nil {
								pt.globals[n.Name] = s.Type
							} else if i < len(s.Values) {
								pt.globals[n.Name] = typeFromValue(s.Values[i])
							}
						}
					}
				}
			case *ast.FuncDecl:
				if d.Type.Results != nil && len(d.Type.Results.List) == 1 &&
					len(d.Type.Results.List[0].Names) <= 1 {
					pt.results[d.Name.Name] = d.Type.Results.List[0].Type
				}
			}
		}
	}
	return pt
}

// typeFromValue extracts a type expression from an initializer when the
// syntax carries one: composite literals and make calls.
func typeFromValue(v ast.Expr) ast.Expr {
	switch e := v.(type) {
	case *ast.CompositeLit:
		return e.Type
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "make" && id.Obj == nil && len(e.Args) > 0 {
			return e.Args[0]
		}
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			if t := typeFromValue(e.X); t != nil {
				return &ast.StarExpr{X: t}
			}
		}
	}
	return nil
}

// loadModuleTypes builds the cross-package named-type table for the
// module containing dir: every TypeSpec in every determinism-scope
// package, keyed "pkgname.TypeName". dir is located inside the module by
// its "internal" path element; when dir is not under an internal/ tree
// (testdata fixtures), the table is nil and resolution stays
// package-local. Parse failures in sibling packages are skipped — this
// table only adds precision, never findings of its own.
func loadModuleTypes(dir string) map[string]ast.Expr {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil
	}
	parts := strings.Split(filepath.ToSlash(abs), "/")
	root := ""
	for i := len(parts) - 1; i >= 0; i-- {
		if parts[i] == "internal" {
			root = strings.Join(parts[:i+1], "/")
			break
		}
	}
	if root == "" {
		return nil
	}
	module := map[string]ast.Expr{}
	for _, pkg := range DeterminismScope {
		pdir := filepath.Join(filepath.FromSlash(root), pkg)
		entries, err := os.ReadDir(pdir)
		if err != nil {
			continue
		}
		fset := token.NewFileSet()
		for _, e := range entries {
			if !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(pdir, e.Name()), nil, 0)
			if err != nil {
				continue
			}
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					if ts, ok := spec.(*ast.TypeSpec); ok {
						module[f.Name.Name+"."+ts.Name.Name] = ts.Type
					}
				}
			}
		}
	}
	return module
}

// funcScope resolves expression types inside one function body.
type funcScope struct {
	pkg  *pkgTypes
	vars map[string]ast.Expr // local name -> type expression (nil = unknown)
}

// newFuncScope builds the flow-insensitive local type table for fn:
// parameters, receivers, var declarations, := assignments, and range
// variables, walking nested blocks too. First declaration of a name wins;
// the inference only needs to answer "is this a map" for idioms where a
// name has one type per function.
func newFuncScope(pkg *pkgTypes, ftype *ast.FuncType, recv *ast.FieldList, body *ast.BlockStmt) *funcScope {
	s := &funcScope{pkg: pkg, vars: map[string]ast.Expr{}}
	bind := func(names []*ast.Ident, t ast.Expr) {
		for _, n := range names {
			if n.Name == "_" {
				continue
			}
			if _, seen := s.vars[n.Name]; !seen {
				s.vars[n.Name] = t
			}
		}
	}
	if recv != nil {
		for _, fld := range recv.List {
			bind(fld.Names, fld.Type)
		}
	}
	if ftype.Params != nil {
		for _, fld := range ftype.Params.List {
			bind(fld.Names, fld.Type)
		}
	}
	if ftype.Results != nil {
		for _, fld := range ftype.Results.List {
			bind(fld.Names, fld.Type)
		}
	}
	if body == nil {
		return s
	}
	// Two passes: first bind declarations whose type is syntactically
	// present, then resolve the rest (calls, indexing) against pass one.
	for pass := 0; pass < 2; pass++ {
		ast.Inspect(body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.DeclStmt:
				if gd, ok := st.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
					for _, spec := range gd.Specs {
						if vs, ok := spec.(*ast.ValueSpec); ok {
							t := vs.Type
							if t == nil && len(vs.Values) == 1 {
								t = s.resolveValue(vs.Values[0], pass)
							}
							if t != nil {
								bind(vs.Names, t)
							}
						}
					}
				}
			case *ast.AssignStmt:
				if st.Tok != token.DEFINE {
					return true
				}
				if len(st.Lhs) == len(st.Rhs) {
					for i, lhs := range st.Lhs {
						if id, ok := lhs.(*ast.Ident); ok {
							if t := s.resolveValue(st.Rhs[i], pass); t != nil {
								bind([]*ast.Ident{id}, t)
							}
						}
					}
				}
			case *ast.RangeStmt:
				if t := s.typeOf(st.X); t != nil {
					under := s.underlying(t)
					if mt, ok := under.(*ast.MapType); ok {
						if id, ok := st.Key.(*ast.Ident); ok {
							bind([]*ast.Ident{id}, mt.Key)
						}
						if st.Value != nil {
							if id, ok := st.Value.(*ast.Ident); ok {
								bind([]*ast.Ident{id}, mt.Value)
							}
						}
					} else if at, ok := under.(*ast.ArrayType); ok && st.Value != nil {
						if id, ok := st.Value.(*ast.Ident); ok {
							bind([]*ast.Ident{id}, at.Elt)
						}
					}
				}
			}
			return true
		})
	}
	return s
}

// resolveValue maps an initializer expression to a type expression. Pass
// 0 handles syntactically evident types; pass 1 may consult the partial
// var table (calls, indexing, field access).
func (s *funcScope) resolveValue(v ast.Expr, pass int) ast.Expr {
	if t := typeFromValue(v); t != nil {
		return t
	}
	if pass == 0 {
		return nil
	}
	return s.typeOf(v)
}

// typeOf returns the type expression of e, or nil when unknown.
func (s *funcScope) typeOf(e ast.Expr) ast.Expr {
	switch x := e.(type) {
	case *ast.Ident:
		if t, ok := s.vars[x.Name]; ok {
			return t
		}
		if t, ok := s.pkg.globals[x.Name]; ok {
			return t
		}
	case *ast.ParenExpr:
		return s.typeOf(x.X)
	case *ast.SelectorExpr:
		// Struct-precise first: resolve the base expression's type down to
		// a struct and look the field up there (this also crosses package
		// boundaries via the module table).
		if bt, ok := s.underlying(s.deref(s.typeOf(x.X))).(*ast.StructType); ok {
			for _, fld := range bt.Fields.List {
				for _, n := range fld.Names {
					if n.Name == x.Sel.Name {
						return fld.Type
					}
				}
			}
			return nil
		}
		// Fallback: the flat field table, but only when every struct in
		// the package agrees on the field's type.
		if t, ok := s.pkg.fields[x.Sel.Name]; ok && !s.pkg.ambig[x.Sel.Name] {
			return t
		}
	case *ast.IndexExpr:
		base := s.underlying(s.typeOf(x.X))
		switch bt := base.(type) {
		case *ast.MapType:
			return bt.Value
		case *ast.ArrayType:
			return bt.Elt
		}
	case *ast.StarExpr:
		return s.deref(s.typeOf(x.X))
	case *ast.CallExpr:
		switch fn := x.Fun.(type) {
		case *ast.Ident:
			if fn.Name == "make" && fn.Obj == nil && len(x.Args) > 0 {
				return x.Args[0]
			}
			if t, ok := s.pkg.results[fn.Name]; ok {
				return t
			}
		case *ast.SelectorExpr:
			if t, ok := s.pkg.results[fn.Sel.Name]; ok {
				return t
			}
		}
	}
	return nil
}

// deref strips one pointer level from a type expression.
func (s *funcScope) deref(t ast.Expr) ast.Expr {
	if st, ok := t.(*ast.StarExpr); ok {
		return st.X
	}
	return t
}

// underlying resolves named types (and pointers) down to a structural
// type expression, bounded against cycles.
func (s *funcScope) underlying(t ast.Expr) ast.Expr {
	for i := 0; i < 8 && t != nil; i++ {
		switch x := t.(type) {
		case *ast.Ident:
			u, ok := s.pkg.named[x.Name]
			if !ok {
				return t
			}
			t = u
		case *ast.SelectorExpr:
			// A qualified type like dfg.Graph: resolve through the
			// module-wide table when available.
			id, ok := x.X.(*ast.Ident)
			if !ok || id.Obj != nil {
				return t
			}
			u, ok := s.pkg.module[id.Name+"."+x.Sel.Name]
			if !ok {
				return t
			}
			t = u
		case *ast.ParenExpr:
			t = x.X
		case *ast.StarExpr:
			t = x.X
		default:
			return t
		}
	}
	return t
}

// isMapExpr reports whether e resolves to a map type in this scope.
func (s *funcScope) isMapExpr(e ast.Expr) bool {
	// A composite literal or make() ranged directly.
	if t := typeFromValue(e); t != nil {
		_, ok := s.underlying(t).(*ast.MapType)
		return ok
	}
	t := s.typeOf(e)
	if t == nil {
		return false
	}
	_, ok := s.underlying(s.deref(t)).(*ast.MapType)
	return ok
}

// funcScopes yields every function (and method) body in the package with
// its resolved local scope.
func (p *parsedPkg) funcScopes(visit func(f *ast.File, fn *ast.FuncDecl, sc *funcScope)) {
	for _, f := range p.files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			visit(f, fd, newFuncScope(p.types, fd.Type, fd.Recv, fd.Body))
		}
	}
}

// mentionsIdent reports whether expr mentions an identifier named name.
func mentionsIdent(expr ast.Node, name string) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}

// exprString renders an expression compactly for matching and messages.
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprString(x.X) + "[" + exprString(x.Index) + "]"
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	case *ast.ParenExpr:
		return "(" + exprString(x.X) + ")"
	case *ast.CallExpr:
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = exprString(a)
		}
		return exprString(x.Fun) + "(" + strings.Join(args, ",") + ")"
	case *ast.BasicLit:
		return x.Value
	case *ast.UnaryExpr:
		return x.Op.String() + exprString(x.X)
	case *ast.BinaryExpr:
		return exprString(x.X) + x.Op.String() + exprString(x.Y)
	case *ast.MapType:
		return "map[" + exprString(x.Key) + "]" + exprString(x.Value)
	case *ast.ArrayType:
		if x.Len == nil {
			return "[]" + exprString(x.Elt)
		}
		return "[" + exprString(x.Len) + "]" + exprString(x.Elt)
	case *ast.InterfaceType:
		return "interface{...}"
	case *ast.StructType:
		return "struct{...}"
	case *ast.FuncType:
		return "func(...)"
	case *ast.Ellipsis:
		return "..." + exprString(x.Elt)
	}
	return "?"
}
