package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"strings"
)

// GoHygiene forbids ad-hoc concurrency in analysis code: naked go
// statements, channel types, sends, receives, and select. Parallelism is
// planned, but it must land through one audited seam (the future
// internal/pool worker pool attached at probe.Prober) where an ordered
// reduction keeps results bit-identical at any worker count. A goroutine
// launched anywhere else reintroduces scheduling order as a hidden input
// to analysis. sync primitives (Mutex et al.) stay legal — probe.Prober
// already guards its counters with one.
var GoHygiene = &Analyzer{
	Name: "gohygiene",
	Doc: "forbid go statements and channel use outside internal/pool so " +
		"concurrency lands through one audited seam",
	Run: runGoHygiene,
}

func runGoHygiene(dir string) ([]Finding, error) {
	if strings.HasSuffix(filepath.ToSlash(dir), "internal/pool") {
		return nil, nil // the audited seam itself
	}
	pkg, err := parsePkg(dir)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	flag := func(pos token.Pos, what string) {
		findings = append(findings, Finding{
			Pos: pkg.fset.Position(pos),
			Message: fmt.Sprintf("%s: concurrency may only enter through the "+
				"audited internal/pool seam, where an ordered reduction keeps "+
				"discovery bit-identical at any worker count", what),
		})
	}
	for _, f := range pkg.files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.GoStmt:
				flag(x.Pos(), "naked go statement")
			case *ast.SendStmt:
				flag(x.Pos(), "channel send")
			case *ast.UnaryExpr:
				if x.Op == token.ARROW {
					flag(x.Pos(), "channel receive")
				}
			case *ast.SelectStmt:
				flag(x.Pos(), "select statement")
			case *ast.ChanType:
				flag(x.Pos(), "channel type")
			}
			return true
		})
	}
	return findings, nil
}
