package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"strings"
)

// GoHygiene forbids ad-hoc concurrency in analysis code: naked go
// statements, channel types, sends, receives, and select. Parallelism is
// planned, but it must land through one audited seam (the future
// internal/pool worker pool attached at probe.Prober) where an ordered
// reduction keeps results bit-identical at any worker count. A goroutine
// launched anywhere else reintroduces scheduling order as a hidden input
// to analysis. sync primitives (Mutex et al.) stay legal — probe.Prober
// already guards its counters with one.
var GoHygiene = &Analyzer{
	Name: "gohygiene",
	Doc: "forbid go statements and channel use outside the audited " +
		"concurrency seams so parallelism lands through one reviewed door",
	Run: runGoHygiene,
}

// concurrencySeams are the only package directories allowed to own
// goroutines and channels. internal/pool is the planned worker-pool seam
// at probe.Prober. internal/obs is deliberately NOT a seam: the tracer
// is mutex-guarded and its sinks run under the tracer's lock on the
// caller's goroutine — telemetry must never introduce scheduling order
// as a hidden input to discovery.
var concurrencySeams = []string{"internal/pool"}

func runGoHygiene(dir string) ([]Finding, error) {
	// Resolve relative paths ("../../pool" from a test, "internal/pool"
	// from srcganalyze) to one canonical form before the seam check.
	slash := filepath.ToSlash(dir)
	if abs, err := filepath.Abs(dir); err == nil {
		slash = filepath.ToSlash(abs)
	}
	for _, seam := range concurrencySeams {
		if slash == seam || strings.HasSuffix(slash, "/"+seam) {
			return nil, nil // an audited seam itself
		}
	}
	pkg, err := parsePkg(dir)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	flag := func(pos token.Pos, what string) {
		findings = append(findings, Finding{
			Pos: pkg.fset.Position(pos),
			Message: fmt.Sprintf("%s: concurrency may only enter through the "+
				"audited internal/pool seam, where an ordered reduction keeps "+
				"discovery bit-identical at any worker count", what),
		})
	}
	for _, f := range pkg.files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.GoStmt:
				flag(x.Pos(), "naked go statement")
			case *ast.SendStmt:
				flag(x.Pos(), "channel send")
			case *ast.UnaryExpr:
				if x.Op == token.ARROW {
					flag(x.Pos(), "channel receive")
				}
			case *ast.SelectStmt:
				flag(x.Pos(), "select statement")
			case *ast.ChanType:
				flag(x.Pos(), "channel type")
			}
			return true
		})
	}
	return findings, nil
}
