package analyzers

import (
	"path/filepath"
	"strings"
	"testing"
)

// A want is one expected finding: the line it must sit on and a
// substring its message must contain.
type want struct {
	line   int
	substr string
}

// TestDeterminismAnalyzersFire runs each analyzer over its seeded
// fixture in testdata/src/<name>/ and asserts two things: every planted
// violation is reported (by line and message substring), and nothing
// else is — the fixtures mix violations with the blessed safe idioms,
// so a finding on an unlisted line means a safe idiom was flagged.
func TestDeterminismAnalyzersFire(t *testing.T) {
	cases := []struct {
		analyzer *Analyzer
		wants    []want
	}{
		{Wallclock, []want{
			{9, "time.Now"},
			{10, "time.Sleep"},
			{11, "time.Since"},
			{12, "time.Until"},
			{13, "time.After"},
			{14, "time.NewTicker"},
		}},
		{SeededRand, []want{
			{10, "rand.Seed"},
			{11, "rand.Intn"},
			{12, "rand.Float64"},
			{13, "rand.Shuffle"},
		}},
		{GoHygiene, []want{
			{9, "channel type"},
			{10, "naked go statement"},
			{10, "channel send"},
			{11, "channel receive"},
			{14, "channel type"},
			{15, "select statement"},
			{16, "channel receive"},
		}},
		{GlobalState, []want{
			{9, "has no initializer"},
			{11, "is written at"},
		}},
		{MapIter, []want{
			{19, "call fmt.Println ordered by map iteration"},
			{20, "never sorted afterwards"},
			{27, "write to mdl.bases[base] depends on map iteration order"},
			{33, "return selects an arbitrary map element"},
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.analyzer.Name, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", tc.analyzer.Name)
			findings, err := tc.analyzer.Run(dir)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range tc.wants {
				if !hasFinding(findings, w) {
					t.Errorf("no finding at line %d containing %q; got:\n%s",
						w.line, w.substr, findingList(findings))
				}
			}
			wantLines := map[int]bool{}
			for _, w := range tc.wants {
				wantLines[w.line] = true
			}
			for _, f := range findings {
				if !wantLines[f.Pos.Line] {
					t.Errorf("safe idiom flagged: %s", f)
				}
			}
		})
	}
}

// TestWallclockBlessedSeam pins the obs.WallClock exemption from both
// directions: inside package obs the WallClock methods and constructor
// may read real time, any other function in obs is still flagged, and
// the same declarations outside package obs earn no blessing.
func TestWallclockBlessedSeam(t *testing.T) {
	cases := []struct {
		dir   string
		wants []want
	}{
		{"obsclock", []want{
			{14, "time.Now"},
			{16, "time.Sleep"},
		}},
		{"obsclocknotobs", []want{
			{9, "time.Now"},
			{11, "time.Since"},
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.dir, func(t *testing.T) {
			findings, err := Wallclock.Run(filepath.Join("testdata", "src", tc.dir))
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range tc.wants {
				if !hasFinding(findings, w) {
					t.Errorf("no finding at line %d containing %q; got:\n%s",
						w.line, w.substr, findingList(findings))
				}
			}
			wantLines := map[int]bool{}
			for _, w := range tc.wants {
				wantLines[w.line] = true
			}
			for _, f := range findings {
				if !wantLines[f.Pos.Line] {
					t.Errorf("blessed seam flagged: %s", f)
				}
			}
		})
	}
}

func hasFinding(findings []Finding, w want) bool {
	for _, f := range findings {
		if f.Pos.Line == w.line && strings.Contains(f.Message, w.substr) {
			return true
		}
	}
	return false
}

func findingList(findings []Finding) string {
	if len(findings) == 0 {
		return "  (none)"
	}
	var b strings.Builder
	for _, f := range findings {
		b.WriteString("  " + f.String() + "\n")
	}
	return b.String()
}

// TestDeterminismSuiteClean runs every determinism analyzer over the
// real tree: the pipeline must satisfy its own parallel-readiness
// contract, with zero suppressions.
func TestDeterminismSuiteClean(t *testing.T) {
	root := filepath.Join("..", "..")
	for _, a := range Determinism {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			findings, err := RunScope(a, root, DeterminismScope)
			if err != nil {
				t.Fatal(err)
			}
			for _, f := range findings {
				t.Errorf("%s", f)
			}
		})
	}
}
