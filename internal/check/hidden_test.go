package check

import (
	"strings"
	"testing"

	"srcg/internal/discovery"
	"srcg/internal/ir"
	"srcg/internal/mutate"
	"srcg/internal/synth"
)

// hiddenAnalysis builds a minimal analysis whose samples observed `cmp`
// writing a hidden value that `beq` reads, with `beq` never seen standalone.
func hiddenAnalysis() map[string]*mutate.Analysis {
	return map[string]*mutate.Analysis{
		"if.eq": {
			Region: []discovery.Instr{
				{Op: "cmp"},
				{Op: "beq"},
				{Op: "mov"},
			},
			Groups: [][2]int{{0, 1}, {1, 2}, {2, 3}},
			Filler: map[int]bool{},
			Hidden: []discovery.HiddenChannel{{From: 0, To: 1, Tag: "hidden1"}},
		},
	}
}

// TestLintHiddenPairsFires: a branch template emitting the consumer with
// no producer on an earlier line is exactly the miscompilation SA014
// exists to catch — the generated code would branch on garbage flags.
func TestLintHiddenPairsFires(t *testing.T) {
	spec := &synth.Spec{
		Branches: map[ir.Rel]*synth.Template{
			ir.EQ: {Lines: []string{"beq {label}"}}, // no cmp before it
		},
	}
	diags := LintHiddenPairs(hiddenAnalysis(), spec)
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Code != CodeUnpairedHiddenConsumer || d.Severity != Error {
		t.Errorf("diagnostic = %+v; want SA014 error", d)
	}
	if !strings.Contains(d.Message, "beq") || !strings.Contains(d.Message, "cmp") {
		t.Errorf("message %q must name consumer and producer", d.Message)
	}
}

// TestLintHiddenPairsAcceptsPairedTemplate: the producer on an earlier
// line satisfies the pair, wherever directives and labels sit in between.
func TestLintHiddenPairsAcceptsPairedTemplate(t *testing.T) {
	spec := &synth.Spec{
		Branches: map[ir.Rel]*synth.Template{
			ir.EQ: {Lines: []string{
				"\tcmp {src1}, {src2}",
				".align 4",
				"skip:",
				"\tbeq {label}",
			}},
		},
	}
	if diags := LintHiddenPairs(hiddenAnalysis(), spec); len(diags) != 0 {
		t.Errorf("paired template flagged: %v", diags)
	}
}

// TestLintHiddenPairsExemptsStandaloneWitnesses: an opcode some sample
// observed running without a hidden input needs no producer — the
// zero-argument-call case.
func TestLintHiddenPairsExemptsStandaloneWitnesses(t *testing.T) {
	analyses := hiddenAnalysis()
	analyses["call.0"] = &mutate.Analysis{
		Region: []discovery.Instr{{Op: "call"}},
		Groups: [][2]int{{0, 1}},
		Filler: map[int]bool{},
	}
	analyses["call.1"] = &mutate.Analysis{
		Region: []discovery.Instr{{Op: "pushl"}, {Op: "call"}},
		Groups: [][2]int{{0, 1}, {1, 2}},
		Filler: map[int]bool{},
		Hidden: []discovery.HiddenChannel{{From: 0, To: 1, Tag: "hidden1"}},
	}
	spec := &synth.Spec{
		Calls: map[int]*synth.Template{
			0: {Lines: []string{"call {fn}"}}, // fine: call.0 witnessed this
		},
		Branches: map[ir.Rel]*synth.Template{
			ir.EQ: {Lines: []string{"beq {label}"}}, // still broken
		},
	}
	diags := LintHiddenPairs(analyses, spec)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "beq") {
		t.Errorf("want exactly the beq finding, got: %v", diags)
	}
}

// TestLintHiddenPairsIgnoresNonTransferTemplates: the pairing obligation
// is scoped to Branches/Calls — an Op template reusing a flag-setting
// opcode for arithmetic is not a consumer.
func TestLintHiddenPairsIgnoresNonTransferTemplates(t *testing.T) {
	spec := &synth.Spec{
		Ops: map[ir.Op]*synth.Template{
			ir.Op(0): {Lines: []string{"beq {label}"}},
		},
	}
	if diags := LintHiddenPairs(hiddenAnalysis(), spec); len(diags) != 0 {
		t.Errorf("non-transfer template flagged: %v", diags)
	}
}

// TestLintHiddenPairsSkipsFiller: preprocessor filler witnesses nothing —
// neither producers nor standalone exemptions.
func TestLintHiddenPairsSkipsFiller(t *testing.T) {
	analyses := map[string]*mutate.Analysis{
		"if.eq": {
			Region: []discovery.Instr{
				{Op: "cmp"},
				{Op: "nop"}, // filler in the producing group
				{Op: "beq"},
			},
			Groups: [][2]int{{0, 2}, {2, 3}},
			Filler: map[int]bool{1: true},
			Hidden: []discovery.HiddenChannel{{From: 0, To: 1, Tag: "hidden1"}},
		},
	}
	spec := &synth.Spec{
		Branches: map[ir.Rel]*synth.Template{
			ir.EQ: {Lines: []string{"nop", "beq {label}"}}, // nop is not a producer
		},
	}
	diags := LintHiddenPairs(analyses, spec)
	if len(diags) != 1 {
		t.Errorf("filler must not count as a producer: %v", diags)
	}
}
