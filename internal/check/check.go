// Package check is the static verification layer: it re-derives dataflow
// facts for every preprocessed sample with classic forward
// reaching-definitions and backward liveness passes, cross-validates the
// mutation-derived data-flow graphs of internal/dfg against that fixpoint,
// and lints the synthesized machine description of internal/synth against
// the lexer's probed syntax model. The whole pipeline otherwise rests on
// dynamic evidence (§4 mutation analysis, §5 reverse interpretation); this
// package is the independent second opinion that catches silently
// corrupted graphs and contradictory specifications.
//
// The checker honors the black-box discipline of internal/discovery: it
// sees only the discovered syntax model, the preprocessed instruction
// text, and the mutation attributions — never a simulator's ground truth.
package check

import (
	"fmt"
	"sort"
	"strings"
)

// Severity ranks a diagnostic.
type Severity int

// Severities.
const (
	Warning Severity = iota
	Error
)

func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// Diagnostic codes. The codes are stable: tools and tests match on them.
const (
	// CodeDanglingProducer: an input port's Producer names a step that is
	// not earlier, does not define the register, or whose definition
	// cannot reach the use along any path (guards §4.6 DFG wiring).
	CodeDanglingProducer = "SA001"
	// CodeDeadRegisterUse: a register input port with no reaching
	// definition and no live-in evidence — the value read is statically
	// undefined (guards §4.4/§4.5 def-use attribution).
	CodeDeadRegisterUse = "SA002"
	// CodeHiddenChannel: a hidden-channel endpoint (condition codes,
	// hi/lo) without its partner: a writer never read, or a reader whose
	// producer is missing or later (guards §7.1 hidden communication).
	CodeHiddenChannel = "SA003"
	// CodeLabelResolution: a Graph.Labels entry does not resolve to a
	// step index inside the region (guards §4.6 control-flow wiring).
	CodeLabelResolution = "SA004"
	// CodeAttributionMismatch: static and mutation-derived dataflow
	// disagree — a port claims an external source although a definition
	// statically reaches it, or the analysis steps cannot be aligned
	// with the graph steps.
	CodeAttributionMismatch = "SA005"
	// CodeDeadDefinition: a step defines a register that no reachable
	// later step reads — the value is computed and dropped.
	CodeDeadDefinition = "SA006"
	// CodeDuplicateTemplate: two different intermediate-code operations
	// synthesized byte-identical instruction sequences — the machine
	// description is contradictory (guards §6 synthesis).
	CodeDuplicateTemplate = "SA010"
	// CodeImmediateRange: a template emits an immediate outside the
	// range the lexer probed for that operand (guards §3.1 syntax
	// discovery against §6 synthesis).
	CodeImmediateRange = "SA011"
	// CodeRegisterClassOverlap: the scratch registers of the operation
	// templates overlap the frame-base register class — the spec's
	// register classes are incoherent.
	CodeRegisterClassOverlap = "SA012"
	// CodeUnwitnessedMode: a template operand uses an addressing-mode
	// shape never observed in any sample.
	CodeUnwitnessedMode = "SA013"
	// CodeUnpairedHiddenConsumer: a Branches/Calls template emits an
	// instruction the samples observed consuming a hidden value (§7.1)
	// without a preceding line emitting one of its observed producers —
	// the generated code would branch or call on garbage.
	CodeUnpairedHiddenConsumer = "SA014"
	// CodeSampleDropped: graceful degradation — a sample whose data-flow
	// graph stayed faulty through its checker-gated retry budget was
	// dropped from the run instead of aborting it.
	CodeSampleDropped = "SA015"
	// CodeUncoveredDemand: the coverage-closure fixpoint found an IR
	// operator × operand-valuation combination the front end can emit
	// that no finite rule chain of the machine description covers.
	// Declared gaps (Spec.Gaps, the paper's "almost correct" specs)
	// demote the finding to a warning; an undeclared hole is an error.
	CodeUncoveredDemand = "SA020"
	// CodeDeadRule: a rule no front-end demand can ever reach — an
	// operation template keyed outside the emitter's operator set, a
	// call template with no matching callee convention (or vice versa),
	// or a chain rule over an unwitnessed addressing mode.
	CodeDeadRule = "SA021"
	// CodeShadowedRule: pairwise pattern intersection shows a rule can
	// never fire because an earlier rule matches the same pattern under
	// the same condition (duplicate chain specialization).
	CodeShadowedRule = "SA022"
	// CodeRewriteCycle: the cost model cannot prove rewriting
	// terminates — the chain-rule mode graph has a cycle (chains cost
	// 0, so a cycle never decreases cost), or a template's declared
	// cost disagrees with the instructions it emits.
	CodeRewriteCycle = "SA023"
	// CodeFootprintMismatch: symbolic interpretation of a rule's
	// rendered template through the data-flow port machinery produced a
	// read/write footprint contradicting the semantics mutation
	// analysis attributed to its instructions — a destination cell
	// never written, a write outside the destination, a source never
	// read, or a register read whose value nothing accounts for.
	CodeFootprintMismatch = "SA024"
	// CodeStructuralInvariant: a cross-target structural invariant
	// failed — the register-class partition is not total, an immediate
	// range is not a well-formed interval, the addressing-mode grammar
	// is ambiguous, or a frame/callee model is internally inconsistent.
	CodeStructuralInvariant = "SA025"
)

// CodeInfo describes one stable diagnostic code for tools that render or
// gate on findings without hard-coding the code list.
type CodeInfo struct {
	Code    string
	Summary string
}

// registry is the single authoritative list of diagnostic codes. Tests
// assert every Code* constant appears here, so adding a code without
// registering it fails fast.
var registry = []CodeInfo{
	{CodeDanglingProducer, "input port's producer does not dominate the use"},
	{CodeDeadRegisterUse, "register read with no reaching definition or live-in evidence"},
	{CodeHiddenChannel, "hidden-channel endpoint without its partner"},
	{CodeLabelResolution, "label does not resolve to a step in the region"},
	{CodeAttributionMismatch, "static and mutation-derived dataflow disagree"},
	{CodeDeadDefinition, "definition no reachable step reads"},
	{CodeDuplicateTemplate, "two operations share one instruction sequence"},
	{CodeImmediateRange, "template immediate outside the probed operand range"},
	{CodeRegisterClassOverlap, "template scratch registers overlap the frame-base class"},
	{CodeUnwitnessedMode, "template operand uses an addressing mode no sample witnessed"},
	{CodeUnpairedHiddenConsumer, "hidden-value consumer emitted without its producer"},
	{CodeSampleDropped, "sample dropped after exhausting checker-gated retries"},
	{CodeUncoveredDemand, "front-end demand unreachable through any finite rule chain"},
	{CodeDeadRule, "rule no front-end demand can reach"},
	{CodeShadowedRule, "rule always subsumed by an earlier rule"},
	{CodeRewriteCycle, "rewrite chain can loop without decreasing cost"},
	{CodeFootprintMismatch, "template footprint contradicts mutation-analysis attribution"},
	{CodeStructuralInvariant, "machine description breaks a structural invariant"},
}

// Registry returns every registered diagnostic code with its summary,
// sorted by code.
func Registry() []CodeInfo {
	out := make([]CodeInfo, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return out[i].Code < out[j].Code })
	return out
}

// Describe looks up the registry entry for a diagnostic code.
func Describe(code string) (CodeInfo, bool) {
	for _, ci := range registry {
		if ci.Code == code {
			return ci, true
		}
	}
	return CodeInfo{}, false
}

// Diagnostic is one finding with a stable code and a location.
type Diagnostic struct {
	Code     string
	Severity Severity
	// Sample is the sample name the finding belongs to; "spec" for
	// machine-description findings.
	Sample string
	// Step is the graph step index the finding anchors to; -1 when the
	// finding has no step granularity.
	Step    int
	Message string
}

func (d Diagnostic) String() string {
	loc := d.Sample
	if d.Step >= 0 {
		loc = fmt.Sprintf("%s#%d", d.Sample, d.Step)
	}
	return fmt.Sprintf("%s %s %s: %s", d.Code, d.Severity, loc, d.Message)
}

// Report collects the diagnostics of one checked discovery.
type Report struct {
	Diags []Diagnostic
}

// Add appends diagnostics.
func (r *Report) Add(ds ...Diagnostic) { r.Diags = append(r.Diags, ds...) }

// Errors counts Error-severity diagnostics.
func (r *Report) Errors() int {
	n := 0
	for _, d := range r.Diags {
		if d.Severity == Error {
			n++
		}
	}
	return n
}

// Codes returns the distinct diagnostic codes present, sorted.
func (r *Report) Codes() []string {
	seen := map[string]bool{}
	var out []string
	for _, d := range r.Diags {
		if !seen[d.Code] {
			seen[d.Code] = true
			out = append(out, d.Code)
		}
	}
	sort.Strings(out)
	return out
}

func (r *Report) String() string {
	if len(r.Diags) == 0 {
		return "check: no diagnostics\n"
	}
	var sb strings.Builder
	for _, d := range r.Diags {
		sb.WriteString(d.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

func errf(code string, sample string, step int, format string, args ...interface{}) Diagnostic {
	return Diagnostic{Code: code, Severity: Error, Sample: sample, Step: step,
		Message: fmt.Sprintf(format, args...)}
}

func warnf(code string, sample string, step int, format string, args ...interface{}) Diagnostic {
	return Diagnostic{Code: code, Severity: Warning, Sample: sample, Step: step,
		Message: fmt.Sprintf(format, args...)}
}
