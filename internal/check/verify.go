package check

import (
	"sort"

	"srcg/internal/dfg"
	"srcg/internal/discovery"
	"srcg/internal/mutate"
)

// VerifyGraph cross-validates one sample's data-flow graph against an
// independently computed static fixpoint: reaching definitions vouch for
// every register wire, liveness exposes values that are computed and
// dropped, hidden-channel endpoints must pair up, and labels must resolve
// within the region. Only the discovered model and the mutation
// attributions are consulted — no simulator ground truth.
func VerifyGraph(m *discovery.Model, a *mutate.Analysis, g *dfg.Graph) []Diagnostic {
	name := g.Sample.Name
	var diags []Diagnostic

	labels := make([]string, 0, len(g.Labels))
	for label := range g.Labels {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	for _, label := range labels {
		if idx := g.Labels[label]; idx < 0 || idx > len(g.Steps) {
			diags = append(diags, errf(CodeLabelResolution, name, -1,
				"label %q resolves to step %d, outside the region's %d steps",
				label, idx, len(g.Steps)))
		}
	}
	if len(diags) > 0 {
		// A graph with labels pointing outside the region has no sound
		// control-flow graph to analyze further.
		return diags
	}

	f, ok := buildFacts(a, g)
	if !ok {
		return append(diags, errf(CodeAttributionMismatch, name, -1,
			"analysis has a different execution-group sequence than the graph (%d steps)",
			len(g.Steps)))
	}
	reach := f.reaching()
	_, liveOut := f.liveness()

	external := map[string]bool{}
	for _, r := range a.ExternalIn {
		external[r] = true
	}

	for i := range g.Steps {
		st := &g.Steps[i]
		for _, p := range st.Ins {
			switch p.Kind {
			case dfg.PReg:
				diags = append(diags, verifyRegWire(name, i, p, f, reach, external)...)
			case dfg.PHidden:
				if p.Producer < 0 || p.Producer >= i {
					diags = append(diags, errf(CodeHiddenChannel, name, i,
						"hidden value %q read without an earlier writer (producer %d)",
						p.Tag, p.Producer))
				} else if !hasHiddenOut(&g.Steps[p.Producer], p.Tag) {
					diags = append(diags, errf(CodeHiddenChannel, name, i,
						"hidden value %q claims producer step %d, which writes no such value",
						p.Tag, p.Producer))
				}
			}
		}
		// A step transferring control out of the region (a call, or a
		// branch to the End label) hands its register definitions to code
		// the analysis window cannot see — the Alpha's jsr link register
		// is read by the callee's return, not by any region step.
		escapes := st.Target != "" && !targetInRegion(g, st.Target)
		for _, p := range st.Outs {
			switch p.Kind {
			case dfg.PHidden:
				if !hiddenRead(g, i, p.Tag) {
					diags = append(diags, errf(CodeHiddenChannel, name, i,
						"hidden value %q written but never read by a later step", p.Tag))
				}
			case dfg.PReg:
				if escapes {
					continue
				}
				if liveOut[i][p.Reg] || f.uses[i][p.Reg] {
					continue
				}
				// The definition is dead within the region. dfg.Build
				// annotates the elimination residue that legitimately
				// strands a definition: a consumer the redundancy
				// eliminator removed (recorded in the Removed ledger), or
				// a surviving twin that carries the same value onward. A
				// dead definition without such evidence indicates a
				// broken graph — it never had a consumer — whether or not
				// something overwrites the register later.
				if p.Residue != dfg.ResidueNone {
					continue
				}
				if definedLater(f, i, p.Reg) {
					diags = append(diags, warnf(CodeDeadDefinition, name, i,
						"register %s is defined here and only overwritten, and the "+
							"elimination ledger records no removed consumer — the "+
							"definition never had one", p.Reg))
				} else {
					diags = append(diags, warnf(CodeDeadDefinition, name, i,
						"register %s is defined here but never read or overwritten", p.Reg))
				}
			}
		}
	}
	return diags
}

// verifyRegWire checks one register input port against the reaching set.
func verifyRegWire(name string, step int, p dfg.Port, f *facts,
	reach []map[string]map[int]bool, external map[string]bool) []Diagnostic {
	if p.Producer >= 0 {
		switch {
		case p.Producer >= step:
			return []Diagnostic{errf(CodeDanglingProducer, name, step,
				"input %s names step %d as producer, which is not earlier", p.Reg, p.Producer)}
		case !f.defs[p.Producer][p.Reg]:
			return []Diagnostic{errf(CodeDanglingProducer, name, step,
				"input %s names step %d as producer, but that step defines no %s",
				p.Reg, p.Producer, p.Reg)}
		case !reach[step][p.Reg][p.Producer]:
			return []Diagnostic{errf(CodeDanglingProducer, name, step,
				"the definition of %s at step %d is killed on every path to this use",
				p.Reg, p.Producer)}
		}
		return nil
	}
	if len(reach[step][p.Reg]) > 0 {
		return []Diagnostic{warnf(CodeAttributionMismatch, name, step,
			"input %s is wired to an external source although a definition reaches it", p.Reg)}
	}
	if !external[p.Reg] {
		return []Diagnostic{errf(CodeDeadRegisterUse, name, step,
			"input %s has no reaching definition and is not live into the region", p.Reg)}
	}
	return nil
}

func targetInRegion(g *dfg.Graph, target string) bool {
	_, ok := g.Labels[target]
	return ok
}

func definedLater(f *facts, step int, reg string) bool {
	for j := step + 1; j < f.n; j++ {
		if f.defs[j][reg] {
			return true
		}
	}
	return false
}

func hasHiddenOut(st *dfg.Step, tag string) bool {
	for _, p := range st.Outs {
		if p.Kind == dfg.PHidden && p.Tag == tag {
			return true
		}
	}
	return false
}

func hiddenRead(g *dfg.Graph, writer int, tag string) bool {
	for j := writer + 1; j < len(g.Steps); j++ {
		for _, p := range g.Steps[j].Ins {
			if p.Kind == dfg.PHidden && p.Tag == tag && p.Producer == writer {
				return true
			}
		}
	}
	return false
}
