// Package experiments regenerates every evaluation artifact of the paper
// (Figures 1–15 and the §7.2 status claims), as indexed in DESIGN.md
// (E01–E18). Each experiment produces the table/figure text the paper
// reports plus machine-readable metrics for the benchmark harness.
package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"srcg/internal/core"
	"srcg/internal/discovery"
	"srcg/internal/extract"
	"srcg/internal/gen"
	"srcg/internal/lexer"
	"srcg/internal/mutate"
	"srcg/internal/obs"
	"srcg/internal/target"
	"srcg/internal/target/alpha"
	"srcg/internal/target/mips"
	"srcg/internal/target/sparc"
	"srcg/internal/target/tera"
	"srcg/internal/target/vax"
	"srcg/internal/target/x86"
)

// Seed is the deterministic seed shared by all experiments.
const Seed = 1

// Result is one experiment's regenerated artifact.
type Result struct {
	ID      string
	Title   string
	Report  string
	Metrics map[string]float64
}

// Archs lists the evaluated architectures in the paper's order.
var Archs = []string{"sparc", "alpha", "mips", "vax", "x86"}

func newTarget(name string) target.Toolchain {
	switch name {
	case "sparc":
		return sparc.New()
	case "alpha":
		return alpha.New()
	case "mips":
		return mips.New()
	case "vax":
		return vax.New()
	case "x86":
		return x86.New()
	case "tera":
		return tera.New()
	}
	panic("unknown arch " + name)
}

// Suite owns the cached full-discovery runs (one per architecture) that
// the experiments share. The cache is instance state, not package state:
// concurrent suites — or a future service running many evaluations — must
// not couple through a package-level map.
type Suite struct {
	mu    sync.Mutex
	cache map[string]*core.Discovery
}

// NewSuite returns an empty experiment suite.
func NewSuite() *Suite {
	return &Suite{cache: map[string]*core.Discovery{}}
}

// Discovered returns (running once and caching) the full discovery result
// for an architecture.
func (s *Suite) Discovered(arch string) (*core.Discovery, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if d, ok := s.cache[arch]; ok {
		return d, nil
	}
	d, err := core.Discover(newTarget(arch), core.Options{Seed: Seed})
	if err != nil {
		return nil, fmt.Errorf("%s: %w", arch, err)
	}
	s.cache[arch] = d
	return d, nil
}

type experiment struct {
	id    string
	title string
	run   func(*Suite) (*Result, error)
}

var registry = []experiment{
	{"E01", "Fig. 3: harness and region extraction", e01},
	{"E02", "§3.1: assembler syntax discovery", e02},
	{"E03", "Fig. 4: compiler/architecture irregularities repaired", e03},
	{"E04", "Figs. 5-6: redundant-instruction elimination", e04},
	{"E05", "Fig. 7: live-range splitting", e05},
	{"E06", "Fig. 8: implicit-argument detection", e06},
	{"E07", "Fig. 9: definition/use classification", e07},
	{"E08", "Fig. 10: data-flow graphs", e08},
	{"E09", "Fig. 11: graph matching", e09},
	{"E10", "Figs. 12-13: reverse interpretation", e10},
	{"E11", "Fig. 14: primitive coverage of discovered semantics", e11},
	{"E12", "Fig. 15: synthesized BEG specification (SPARC)", e12},
	{"E13", "§6: the Combiner — instructions per intermediate operation", e13},
	{"E14", "§7.2: full discovery and end-to-end validation", e14},
	{"E15", "§1/§2: discovery cost accounting", e15},
	{"E16", "§5.2.2: likelihood-function ablation", e16},
	{"E17", "§7.1: generality limits (Tera syntax, VAX ashl)", e17},
	{"E18", "§7.2: hardwired-register detection (the paper's missing piece)", e18},
	{"E19", "§5.2.3/§8: SignedShifts extension resolves the VAX ashl limitation", e19},
	{"E20", "ablation: multi-valuation samples (what single-valuation discovery miscompiles)", e20},
}

// IDs lists experiment identifiers in order.
func IDs() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.id
	}
	return out
}

// Run executes one experiment by ID against this suite's cache.
func (s *Suite) Run(id string) (*Result, error) {
	for _, e := range registry {
		if e.id == id {
			r, err := e.run(s)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", id, err)
			}
			r.ID, r.Title = e.id, e.title
			return r, nil
		}
	}
	return nil, fmt.Errorf("unknown experiment %q", id)
}

// helpers ---------------------------------------------------------------

func res(report string, metrics map[string]float64) (*Result, error) {
	return &Result{Report: report, Metrics: metrics}, nil
}

type table struct {
	sb strings.Builder
}

func (t *table) rowf(format string, args ...any) {
	fmt.Fprintf(&t.sb, format+"\n", args...)
}

func (t *table) String() string { return t.sb.String() }

// experiments -------------------------------------------------------------

func e01(s *Suite) (*Result, error) {
	var t table
	metrics := map[string]float64{}
	t.rowf("%-6s %-28s %s", "arch", "a=b+c region", "")
	for _, arch := range Archs {
		d, err := s.Discovered(arch)
		if err != nil {
			return nil, err
		}
		smp := sampleByName(d, "int.add.b_c")
		var ops []string
		for _, ins := range smp.Region {
			if ins.Op != "" {
				ops = append(ops, ins.Op)
			}
		}
		t.rowf("%-6s %-28s (%d instrs extracted between the Begin/End labels)",
			arch, strings.Join(ops, " "), len(ops))
		metrics[arch+".region_instrs"] = float64(len(ops))
		// Every analyzable sample must have extracted a region.
		extracted := 0
		for _, smp := range d.Samples {
			if len(smp.Region) > 0 {
				extracted++
			}
		}
		metrics[arch+".extracted"] = float64(extracted)
	}
	d, _ := s.Discovered("vax")
	smp := sampleByName(d, "int.add.b_c")
	t.rowf("\nThe VAX region is the paper's Fig. 3 single instruction: %s", smp.Region[0].String())
	return res(t.String(), metrics)
}

func sampleByName(d *core.Discovery, name string) *discovery.Sample {
	for _, s := range d.Samples {
		if s.Name == name {
			return s
		}
	}
	return nil
}

func e02(s *Suite) (*Result, error) {
	var t table
	metrics := map[string]float64{}
	t.rowf("%-6s %-8s %-7s %-5s %-22s %s", "arch", "comment", "litpfx", "regs", "clobber", "notable immediate range")
	for _, arch := range Archs {
		d, err := s.Discovered(arch)
		if err != nil {
			return nil, err
		}
		m := d.Model
		notable := ""
		keys := make([]string, 0, len(m.ImmRange))
		for k := range m.ImmRange {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			r := m.ImmRange[k]
			if r[0] > -1<<31 || r[1] < 1<<31-1 {
				notable = fmt.Sprintf("%s [%d,%d]", k, r[0], r[1])
				break
			}
		}
		t.rowf("%-6s %-8q %-7q %-5d %-22s %s", arch, m.CommentChar, m.LitPrefix,
			len(m.Registers), m.ClobberText, notable)
		metrics[arch+".registers"] = float64(len(m.Registers))
	}
	d, _ := s.Discovered("sparc")
	r := d.Model.ImmRange["add:1"]
	t.rowf("\nThe paper's §3.1 example: SPARC add immediates are restricted to [%d,%d].", r[0], r[1])
	metrics["sparc.add_lo"], metrics["sparc.add_hi"] = float64(r[0]), float64(r[1])
	return res(t.String(), metrics)
}

func e03(s *Suite) (*Result, error) {
	var t table
	metrics := map[string]float64{}
	// 4(a,c): SPARC implicit call arguments and the delay-slot move.
	d, err := s.Discovered("sparc")
	if err != nil {
		return nil, err
	}
	a := d.Analyses["int.mul.b_c"]
	slots := 0
	for i := range a.Region {
		if a.Slotted[i] {
			slots++
		}
	}
	t.rowf("Fig. 4(a,c) sparc a=b*c: %d delay slot(s) normalized; call reads %v", slots, groupsOf(a.Reads, callGroup(a)))
	metrics["sparc.call_reads"] = float64(len(groupsOf(a.Reads, callGroup(a))))
	metrics["sparc.delay_slots"] = float64(slots)
	// 4(b): x86 register reuse.
	dx, err := s.Discovered("x86")
	if err != nil {
		return nil, err
	}
	ax := dx.Analyses["int.call.b_c"]
	ranges := dx.Engine.SplitLiveRanges(ax, "%eax")
	t.rowf("Fig. 4(b)   x86 a=P2(b,c): %%eax splits into %d live ranges", len(ranges))
	metrics["x86.eax_ranges"] = float64(len(ranges))
	// 4(d): Alpha redundant instruction.
	da, err := s.Discovered("alpha")
	if err != nil {
		return nil, err
	}
	removed := 0
	for _, name := range []string{"int.shl.b_c", "int.add.b_c", "int.xor.b_c"} {
		removed += len(da.Analyses[name].Removed)
	}
	t.rowf("Fig. 4(d)   alpha: %d redundant canonicalizing instructions removed across three samples", removed)
	metrics["alpha.redundant"] = float64(removed)
	return res(t.String(), metrics)
}

// callGroup locates the group index of the call instruction.
func callGroup(a *mutate.Analysis) int {
	for g := range a.Groups {
		if a.GroupInstr(g).Op == "call" {
			return g
		}
	}
	return -1
}

func groupsOf(m map[string][]int, g int) []string {
	var out []string
	for reg, gs := range m {
		for _, x := range gs {
			if x == g {
				out = append(out, reg)
			}
		}
	}
	sort.Strings(out)
	return out
}

func e04(s *Suite) (*Result, error) {
	var t table
	metrics := map[string]float64{}
	t.rowf("%-6s %-28s %s", "arch", "redundant instrs removed", "samples with removals")
	for _, arch := range Archs {
		d, err := s.Discovered(arch)
		if err != nil {
			return nil, err
		}
		total, hit := 0, 0
		for _, a := range d.Analyses {
			total += len(a.Removed)
			if len(a.Removed) > 0 {
				hit++
			}
		}
		t.rowf("%-6s %-28d %d", arch, total, hit)
		metrics[arch+".removed"] = float64(total)
	}
	t.rowf("\nThe Alpha dominates, as in Fig. 6: its compiler emits a canonicalizing")
	t.rowf("addl $n,0,$n after every operation, observationally redundant on in-range values.")
	return res(t.String(), metrics)
}

func e05(s *Suite) (*Result, error) {
	d, err := s.Discovered("x86")
	if err != nil {
		return nil, err
	}
	a := d.Analyses["int.call.b_c"]
	ranges := d.Engine.SplitLiveRanges(a, "%eax")
	var t table
	t.rowf("x86 a = P2(b, c): the compiler stages both arguments and the result through %%eax (Fig. 4b).")
	for _, r := range ranges {
		t.rowf("  range at instructions %v  contains-its-definition=%v", r.Refs, r.Valid)
	}
	t.rowf("The invalid range is the call result: its definition is implicit (found by E06).")
	return res(t.String(), map[string]float64{"ranges": float64(len(ranges))})
}

func e06(s *Suite) (*Result, error) {
	var t table
	metrics := map[string]float64{}
	d, err := s.Discovered("x86")
	if err != nil {
		return nil, err
	}
	a := d.Analyses["int.div.b_c"]
	for g := range a.Groups {
		op := a.GroupInstr(g).Op
		if op == "cltd" || op == "idivl" {
			t.rowf("x86 %-6s reads %v defines %v", op, groupsOf(a.Reads, g), groupsOf(a.Defs, g))
		}
	}
	ds, err := s.Discovered("sparc")
	if err != nil {
		return nil, err
	}
	as := ds.Analyses["int.mul.b_c"]
	for g := range as.Groups {
		if as.GroupInstr(g).Op == "call" {
			t.rowf("sparc call .mul reads %v defines %v (Fig. 15e)", groupsOf(as.Reads, g), groupsOf(as.Defs, g))
			metrics["sparc.call_reads"] = float64(len(groupsOf(as.Reads, g)))
		}
	}
	return res(t.String(), metrics)
}

func e07(s *Suite) (*Result, error) {
	d, err := s.Discovered("x86")
	if err != nil {
		return nil, err
	}
	a := d.Analyses["int.mul.b_c"]
	ranges := d.Engine.SplitLiveRanges(a, "%edx")
	var t table
	t.rowf("x86 a = b * c (the paper's §4.5 example):")
	metrics := map[string]float64{}
	for _, r := range ranges {
		uses := d.Engine.ClassifyRefs(a, r)
		for i, ref := range r.Refs {
			t.rowf("  %%edx at %-30s -> %s", a.Region[ref].String(), uses[i])
			metrics[fmt.Sprintf("use%d", i)] = float64(int(uses[i]))
		}
	}
	return res(t.String(), metrics)
}

func e08(s *Suite) (*Result, error) {
	var t table
	dm, err := s.Discovered("mips")
	if err != nil {
		return nil, err
	}
	t.rowf("MIPS multiplication graph (Fig. 10 a-b):")
	t.rowf("%s", dm.Graphs["int.mul.b_c"].Dump())
	dx, err := s.Discovered("x86")
	if err != nil {
		return nil, err
	}
	t.rowf("x86 division graph (Fig. 10 c-d; implicit %%eax/%%edx arguments explicit):")
	t.rowf("%s", dx.Graphs["int.div.b_c"].Dump())
	return res(t.String(), map[string]float64{
		"mips.steps": float64(len(dm.Graphs["int.mul.b_c"].Steps)),
		"x86.steps":  float64(len(dx.Graphs["int.div.b_c"].Steps)),
	})
}

func e09(s *Suite) (*Result, error) {
	var t table
	metrics := map[string]float64{}
	t.rowf("%-6s %-9s %s", "arch", "matched", "example: P node of a=b*c")
	for _, arch := range Archs {
		d, err := s.Discovered(arch)
		if err != nil {
			return nil, err
		}
		example := ""
		for _, m := range d.Matches {
			if m.Sample == "int.mul.b_c" && m.PSig != "" {
				example = m.PSig
			}
		}
		t.rowf("%-6s %-9d %s", arch, len(d.Matches), example)
		metrics[arch+".matched"] = float64(len(d.Matches))
	}
	return res(t.String(), metrics)
}

func e10(s *Suite) (*Result, error) {
	var t table
	metrics := map[string]float64{}
	t.rowf("%-6s %-7s %-7s %-9s %-10s %s", "arch", "solved", "failed", "by-match", "by-search", "candidates tried")
	for _, arch := range Archs {
		d, err := s.Discovered(arch)
		if err != nil {
			return nil, err
		}
		st := d.Rig.Stats()
		t.rowf("%-6s %-7d %-7d %-9d %-10d %d", arch,
			len(d.Outcome.Solved), len(d.Outcome.Failed), st.SolvedByMatch, st.SolvedBySearch, st.CandidatesTried)
		metrics[arch+".solved"] = float64(len(d.Outcome.Solved))
		metrics[arch+".failed"] = float64(len(d.Outcome.Failed))
		metrics[arch+".candidates"] = float64(st.CandidatesTried)
	}
	t.rowf("\nThe paper (§5.2.2): \"Often the reverse interpreter will come up with the")
	t.rowf("correct semantic interpretation of an instruction after just one or two tries.\"")
	return res(t.String(), metrics)
}

func e11(s *Suite) (*Result, error) {
	var t table
	metrics := map[string]float64{}
	for _, arch := range Archs {
		d, err := s.Discovered(arch)
		if err != nil {
			return nil, err
		}
		sigs := make([]string, 0, len(d.Ext.Sems))
		for sig := range d.Ext.Sems {
			sigs = append(sigs, sig)
		}
		sort.Strings(sigs)
		t.rowf("%s (%d signatures):", arch, len(sigs))
		for _, sig := range sigs {
			t.rowf("  %-30s %s", sig, d.Ext.Sems[sig])
		}
		metrics[arch+".sems"] = float64(len(sigs))
	}
	return res(t.String(), metrics)
}

func e12(s *Suite) (*Result, error) {
	d, err := s.Discovered("sparc")
	if err != nil {
		return nil, err
	}
	if d.Spec == nil {
		return nil, fmt.Errorf("no spec: %v", d.SpecErr)
	}
	text := d.Spec.RenderBEG(d.Model)
	return res(text, map[string]float64{
		"rules":  float64(len(d.Spec.Ops) + len(d.Spec.Branches) + len(d.Spec.Calls)),
		"chains": float64(len(d.Spec.Chains)),
	})
}

func e13(s *Suite) (*Result, error) {
	var t table
	metrics := map[string]float64{}
	ops := []string{"Add", "Mul", "Div", "BranchEQ", "Const", "Move", "Call2"}
	t.rowf("%-9s %s", "op", strings.Join(Archs, "  "))
	for _, op := range ops {
		row := fmt.Sprintf("%-9s", op)
		for _, arch := range Archs {
			d, err := s.Discovered(arch)
			if err != nil {
				return nil, err
			}
			n, ok := 0, false
			if d.Spec != nil {
				n, ok = d.Spec.Coverage()[op], true
			}
			if !ok {
				row += "     -"
			} else {
				row += fmt.Sprintf(" %5d", n)
			}
			metrics[arch+"."+op] = float64(n)
		}
		t.rowf("%s", row)
	}
	t.rowf("\nShape checks: the VAX Add is 1 instruction (memory-to-memory addl3, Fig. 3);")
	t.rowf("SPARC Mul is the longest (software .mul call with argument staging, Fig. 15e);")
	t.rowf("branches everywhere need compare+branch combinations (the Combiner, Fig. 15d).")
	return res(t.String(), metrics)
}

func e14(s *Suite) (*Result, error) {
	var t table
	metrics := map[string]float64{}
	t.rowf("%-6s %5s %5s %8s %7s %7s", "arch", "regs", "sems", "samples", "valid", "gaps")
	for _, arch := range Archs {
		d, err := s.Discovered(arch)
		if err != nil {
			return nil, err
		}
		valid := 0
		if d.Spec != nil {
			for _, r := range d.Validate(newTarget(arch), core.ValidationSuite) {
				if r.OK {
					valid++
				}
			}
		}
		gaps := 0
		if d.Spec != nil {
			gaps = len(d.Spec.Gaps)
		}
		t.rowf("%-6s %5d %5d %5d/%-2d %4d/%-2d %7d", arch, len(d.Model.Registers),
			len(d.Ext.Sems), len(d.Outcome.Solved),
			len(d.Outcome.Solved)+len(d.Outcome.Failed),
			valid, len(core.ValidationSuite), gaps)
		metrics[arch+".valid"] = float64(valid)
		metrics[arch+".gaps"] = float64(gaps)
	}
	t.rowf("\n§7.2: \"generate (almost) correct machine specifications\" — the one gap is")
	t.rowf("the VAX's variable shift (ashl), whose sign-directed count is beyond the")
	t.rowf("Fig. 14 primitives, exactly as the paper predicts (§5.2.3).")
	return res(t.String(), metrics)
}

func e15(s *Suite) (*Result, error) {
	var t table
	metrics := map[string]float64{}
	t.rowf("%-6s %9s %9s %11s %11s %10s", "arch", "compiles", "assembles", "links", "executions", "mutations")
	for _, arch := range Archs {
		d, err := s.Discovered(arch)
		if err != nil {
			return nil, err
		}
		st := d.Rig.Stats()
		t.rowf("%-6s %9d %9d %11d %11d %10d", arch, st.Compiles, st.Assemblies, st.Links, st.Executions, st.Mutations)
		metrics[arch+".executions"] = float64(st.Executions)
		metrics[arch+".assemblies"] = float64(st.Assemblies)
	}
	t.rowf("\nThe paper reports \"several hours\" per architecture on 1997 hardware and")
	t.rowf("calls it 1-2 orders of magnitude faster than manual retargeting; the shape")
	t.rowf("here is the same (thousands of toolchain interactions), compressed to seconds.")
	return res(t.String(), metrics)
}

func e16(s *Suite) (*Result, error) {
	// Ablate likelihood components on x86: rebuild extraction over the
	// same graphs with modified weights.
	d, err := s.Discovered("x86")
	if err != nil {
		return nil, err
	}
	configs := []struct {
		name   string // display label
		metric string // whitespace-free key (benchmarks report it as a unit)
		w      extract.Weights
	}{
		{"full (c1..c4)", "full", extract.DefaultWeights},
		{"no M", "noM", modWeights(func(w *extract.Weights) { w.M = 0 })},
		{"no P", "noP", modWeights(func(w *extract.Weights) { w.P = 0 })},
		{"no G", "noG", modWeights(func(w *extract.Weights) { w.G = 0 })},
		{"no N", "noN", modWeights(func(w *extract.Weights) { w.N = 0 })},
		{"blind", "blind", extract.BlindWeights},
	}
	var t table
	metrics := map[string]float64{}
	t.rowf("%-14s %-10s %-8s %s", "configuration", "candidates", "solved", "failed")
	for _, cfg := range configs {
		// A private tracer scopes the candidates-tried counter to this
		// configuration without disturbing the discovery run's telemetry.
		tr := obs.New(obs.NewVirtualClock(), nil)
		x := extract.New(d.Model.WordBits, cfg.w, extract.MBoosts(d.Matches))
		x.Tr = tr
		out := x.SolveAll(d.ExtractionGraphs())
		tried := tr.Counter(extract.CtrCandidatesTried)
		t.rowf("%-14s %-10d %-8d %d", cfg.name, tried, len(out.Solved), len(out.Failed))
		metrics[cfg.metric] = float64(tried)
	}
	t.rowf("\nThe paper's claim (§5.2.2): static likelihoods beat blind enumeration;")
	t.rowf("graph-match evidence (M) carries the most weight, the mnemonic (N) the least.")
	return res(t.String(), metrics)
}

func modWeights(f func(*extract.Weights)) extract.Weights {
	w := extract.DefaultWeights
	f(&w)
	return w
}

func e17(s *Suite) (*Result, error) {
	var t table
	// Tera: the Lexer fails gracefully on a Scheme-syntax assembler.
	rig := discovery.NewRig(newTarget("tera"))
	samples, err := gen.Samples(gen.Config{Rand: rand.New(rand.NewSource(Seed))})
	if err != nil {
		return nil, err
	}
	_, lexErr := lexer.Bootstrap(rig, samples)
	if lexErr == nil {
		return nil, fmt.Errorf("the Tera assembler should defeat the Lexer")
	}
	t.rowf("Tera-style assembler: Bootstrap fails gracefully with:\n  %v", lexErr)
	// VAX ashl: the extractor times out on conditional semantics.
	d, err := s.Discovered("vax")
	if err != nil {
		return nil, err
	}
	t.rowf("\nVAX: extraction failures: %v", d.Outcome.Failed)
	gaps := []string{}
	if d.Spec != nil {
		gaps = d.Spec.Gaps
	}
	t.rowf("VAX: specification gaps:  %v", gaps)
	t.rowf("\n§5.2.3: \"we currently cannot analyze instructions like the VAX's")
	t.rowf("arithmetic shift (ash), which shifts to the left if the count is positive,")
	t.rowf("and to the right otherwise\" — reproduced: the variable-count a=b>>c sample")
	t.rowf("needs shr(x, neg(y)), which the Fig. 14 primitive enumeration cannot express.")
	return res(t.String(), map[string]float64{"vax.failed": float64(len(d.Outcome.Failed))})
}

func e18(s *Suite) (*Result, error) {
	var t table
	metrics := map[string]float64{}
	t.rowf("%-6s %s", "arch", "hardwired registers discovered")
	for _, arch := range Archs {
		d, err := s.Discovered(arch)
		if err != nil {
			return nil, err
		}
		var regs []string
		for r, v := range d.Model.Hardwired {
			regs = append(regs, fmt.Sprintf("%s=%d", r, v))
		}
		sort.Strings(regs)
		t.rowf("%-6s %s", arch, strings.Join(regs, " "))
		metrics[arch+".hardwired"] = float64(len(regs))
	}
	t.rowf("\nThe paper (§7.2): \"we currently do not test for registers with hardwired")
	t.rowf("values (register %%g0 is always 0 on the Sparc)\" — implemented here by")
	t.rowf("renaming the move sample's data path onto each candidate register.")
	return res(t.String(), metrics)
}

func e19(s *Suite) (*Result, error) {
	var t table
	base, err := s.Discovered("vax")
	if err != nil {
		return nil, err
	}
	ext, err := core.Discover(newTarget("vax"), core.Options{Seed: Seed, SignedShifts: true})
	if err != nil {
		return nil, err
	}
	row := func(label string, d *core.Discovery) {
		gaps := []string{}
		if d.Spec != nil {
			gaps = d.Spec.Gaps
		}
		t.rowf("%-28s solved=%-3d failed=%-2d gaps=%v",
			label, len(d.Outcome.Solved), len(d.Outcome.Failed), gaps)
	}
	t.rowf("VAX, primary shape set (Seed %d):", Seed)
	row("Fig. 14 primitives (paper)", base)
	row("with signed-count shift", ext)
	t.rowf("\nThe paper (§5.2.3) cannot express the VAX ashl — one instruction that")
	t.rowf("shifts left for positive counts and right for negative ones — in the")
	t.rowf("Fig. 14 vocabulary; a = b >> c compiles to mnegl/ashl and stays unsolved.")
	t.rowf("Adding one primitive (ash, a signed-count shift) to the enumeration makes")
	t.rowf("the sequence expressible as shiftSigned(load(b), neg-count) and the sample")
	t.rowf("extracts; everything else is unchanged. This is the \"richer primitive")
	t.rowf("set\" direction the paper sketches as future work (§8).")
	return res(t.String(), map[string]float64{
		"vax.base.failed": float64(len(base.Outcome.Failed)),
		"vax.ash.failed":  float64(len(ext.Outcome.Failed)),
	})
}

func e20(s *Suite) (*Result, error) {
	var t table
	base, err := s.Discovered("x86")
	if err != nil {
		return nil, err
	}
	abl, err := core.Discover(newTarget("x86"), core.Options{Seed: Seed, NoVariants: true})
	if err != nil {
		return nil, err
	}
	countOK := func(d *core.Discovery) (ok, silent int) {
		for _, r := range d.Validate(newTarget("x86"), core.ValidationSuite) {
			switch {
			case r.OK:
				ok++
			case r.Err == nil:
				silent++ // ran but printed the wrong answer: a miscompile
			}
		}
		return
	}
	okB, silB := countOK(base)
	okA, silA := countOK(abl)
	t.rowf("x86, primary shape set (Seed %d):", Seed)
	t.rowf("%-26s solved=%-3d validated=%d/%d silent-miscompiles=%d",
		"with variants", len(base.Outcome.Solved), okB, len(core.ValidationSuite), silB)
	t.rowf("%-26s solved=%-3d validated=%d/%d silent-miscompiles=%d",
		"single valuation", len(abl.Outcome.Solved), okA, len(core.ValidationSuite), silA)
	t.rowf("\nEach sample here carries two extra hidden-value valuations beyond the")
	t.rowf("paper's single Init: without them a conditional sample's untaken branch")
	t.rowf("is indistinguishable from dead code (the eliminator removes it) and")
	t.rowf("value-symmetric misreadings (negated load + negated store) satisfy the")
	t.rowf("one observation. The ablation shows what that costs end to end.")
	return res(t.String(), map[string]float64{
		"base.validated": float64(okB),
		"abl.validated":  float64(okA),
		"abl.silent":     float64(silA),
	})
}
