package cc

import (
	"strings"
	"testing"

	"srcg/internal/ir"
)

func TestLexBasics(t *testing.T) {
	toks, err := Lex(`main(){int b=5,c=6,a=b+c;}`)
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tok := range toks {
		texts = append(texts, tok.String())
	}
	got := strings.Join(texts, " ")
	want := "main ( ) { int b = 5 , c = 6 , a = b + c ; } EOF"
	if got != want {
		t.Errorf("Lex tokens = %q, want %q", got, want)
	}
}

func TestLexHexAndComments(t *testing.T) {
	toks, err := Lex("/* c1 */ int a = 0x1F; // tail\n")
	if err != nil {
		t.Fatal(err)
	}
	if toks[3].Kind != Int || toks[3].Val != 31 {
		t.Errorf("hex literal = %v, want 31", toks[3])
	}
}

func TestLexString(t *testing.T) {
	toks, err := Lex(`printf("%i\n", a);`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[2].Kind != Str || toks[2].Text != "%i\n" {
		t.Errorf("string literal = %v", toks[2])
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"int a = @;", `"unterminated`, "/* unterminated", `"bad \q"`, "int a = 0x;"} {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q): expected error", src)
		}
	}
}

func TestParseSimpleBinary(t *testing.T) {
	u, err := CompileUnit(`main(){int b=5,c=6,a=b+c;}`)
	if err != nil {
		t.Fatal(err)
	}
	fn, ok := u.Func("main")
	if !ok {
		t.Fatal("missing main")
	}
	if len(fn.Locals) != 3 {
		t.Fatalf("locals = %d, want 3", len(fn.Locals))
	}
	if len(fn.Body) != 3 {
		t.Fatalf("stmts = %d, want 3", len(fn.Body))
	}
	got := fn.Body[2].String()
	want := "Store(Addr(a), Add(Load(Addr(b)), Load(Addr(c))))"
	if got != want {
		t.Errorf("third stmt = %s, want %s", got, want)
	}
}

func TestParseConditional(t *testing.T) {
	u, err := CompileUnit(`main(){int b=5,c=6,a=7; if (b<c) a=8;}`)
	if err != nil {
		t.Fatal(err)
	}
	fn, _ := u.Func("main")
	var hasBranch bool
	for _, s := range fn.Body {
		if s.String() == "BranchGE(Load(Addr(b)), Load(Addr(c)), .L1)" {
			hasBranch = true
		}
	}
	if !hasBranch {
		t.Errorf("missing negated branch; body:\n%s", dumpBody(fn.Body))
	}
}

func TestParseKRFunction(t *testing.T) {
	src := `
int z1,z2,z3;
void Init(n,o,p)
int *n,*o,*p;
{
	z1=z2=z3=1;
	*n=313;
	*o=109;
}`
	u, err := CompileUnit(src)
	if err != nil {
		t.Fatal(err)
	}
	fn, ok := u.Func("Init")
	if !ok {
		t.Fatal("missing Init")
	}
	if len(fn.Params) != 3 || fn.Params[0] != "n" {
		t.Fatalf("params = %v", fn.Params)
	}
	if len(u.Globals) != 3 {
		t.Fatalf("globals = %v", u.Globals)
	}
	var storeThroughPtr bool
	for _, s := range fn.Body {
		if s.String() == "Store(Load(Addr(n)), Const(313))" {
			storeThroughPtr = true
		}
	}
	if !storeThroughPtr {
		t.Errorf("missing store through pointer; body:\n%s", dumpBody(fn.Body))
	}
}

func TestParsePaperHarness(t *testing.T) {
	src := `
extern int z1,z2,z3,z4,z5,z6;
extern void Init();
main() {
	int a, b, c;
	Init(&a, &b, &c);
	if (z1) goto Begin;
	if (z2) goto End;
	if (z3) goto Begin;
	if (z4) goto End;
	if (z5) goto Begin;
	if (z6) goto End;
Begin:
	a = b + c;
End:
	printf("%i\n", a);
	exit(0);
}`
	u, err := CompileUnit(src)
	if err != nil {
		t.Fatal(err)
	}
	fn, ok := u.Func("main")
	if !ok {
		t.Fatal("missing main")
	}
	labels := map[string]int{}
	var branchesToBegin int
	for _, s := range fn.Body {
		if s.Kind == ir.SLabel {
			labels[s.Target]++
		}
		// `if (zN) goto Begin;` lowers to a conditional branch around an
		// unconditional goto — the same shape as the paper's VAX output
		// (jeql L1 / jbr Begin).
		if s.Kind == ir.SGoto && s.Target == "Begin" {
			branchesToBegin++
		}
	}
	if labels["Begin"] != 1 || labels["End"] != 1 {
		t.Errorf("labels = %v", labels)
	}
	if branchesToBegin != 3 {
		t.Errorf("branches to Begin = %d, want 3", branchesToBegin)
	}
	if len(u.Strings) != 1 || u.Strings[0].Value != "%i\n" {
		t.Errorf("strings = %v", u.Strings)
	}
	if len(u.Externs) != 7 {
		t.Errorf("externs = %v", u.Externs)
	}
}

func TestParseCallAssignment(t *testing.T) {
	u, err := CompileUnit(`main(){int b=5,a; a=P(b);}`)
	if err != nil {
		t.Fatal(err)
	}
	fn, _ := u.Func("main")
	got := fn.Body[len(fn.Body)-1].String()
	want := "Store(Addr(a), Call(P, Load(Addr(b))))"
	if got != want {
		t.Errorf("stmt = %s, want %s", got, want)
	}
}

func TestParseWhile(t *testing.T) {
	u, err := CompileUnit(`main(){int i=0,s=0; while (i<10) { s = s + i; i = i + 1; } printf("%i\n", s);}`)
	if err != nil {
		t.Fatal(err)
	}
	fn, _ := u.Func("main")
	if len(fn.Body) < 6 {
		t.Fatalf("body too short:\n%s", dumpBody(fn.Body))
	}
}

func TestParseChainedAssign(t *testing.T) {
	u, err := CompileUnit(`main(){int a,b,c; a=b=c=1; printf("%i\n",a);}`)
	if err != nil {
		t.Fatal(err)
	}
	fn, _ := u.Func("main")
	var stores int
	for _, s := range fn.Body {
		if s.Kind == ir.SStore {
			stores++
		}
	}
	if stores != 3 {
		t.Errorf("stores = %d, want 3\n%s", stores, dumpBody(fn.Body))
	}
}

func TestParseShortCircuit(t *testing.T) {
	u, err := CompileUnit(`main(){int a=1,b=2,c=0; if (a<b && b<3) c=1; if (a>b || b>1) c=c+2; printf("%i\n",c);}`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := u.Func("main"); !ok {
		t.Fatal("missing main")
	}
}

func TestParseNegativeLiteralFold(t *testing.T) {
	u, err := CompileUnit(`main(){int a; a = -1;}`)
	if err != nil {
		t.Fatal(err)
	}
	fn, _ := u.Func("main")
	got := fn.Body[0].String()
	if got != "Store(Addr(a), Const(-1))" {
		t.Errorf("stmt = %s", got)
	}
}

func TestParseAllBinaryOps(t *testing.T) {
	ops := []string{"+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>"}
	for _, op := range ops {
		src := "main(){int b=34117,c=109,a=b" + op + "c; printf(\"%i\\n\",a);}"
		if _, err := CompileUnit(src); err != nil {
			t.Errorf("op %q: %v", op, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"main(){",
		"main(){int;}",
		"42;",
		"main(){a = ;}",
		"main(){if (a) }",
		"extern void f() {}",
		"void a;",
		"main(){goto;}",
		"main(){1 = 2;}",
		"main(){int a = &5;}",
	}
	for _, src := range bad {
		if _, err := CompileUnit(src); err == nil {
			t.Errorf("CompileUnit(%q): expected error", src)
		}
	}
}

func TestLowerUnsupportedValueContext(t *testing.T) {
	// ! and && have no value-producing lowering in mini-C.
	for _, src := range []string{"main(){int a,b; a = !b;}", "main(){int a,b; a = (a<b) && (b<a);}"} {
		if _, err := CompileUnit(src); err == nil {
			t.Errorf("CompileUnit(%q): expected error", src)
		}
	}
}

func dumpBody(body []*ir.Stmt) string {
	var sb strings.Builder
	for _, s := range body {
		sb.WriteString("  " + s.String() + "\n")
	}
	return sb.String()
}

func TestLowerIfElse(t *testing.T) {
	u, err := CompileUnit(`main(){int a,b=1; if (b==1) a=10; else a=20; printf("%i\n",a);}`)
	if err != nil {
		t.Fatal(err)
	}
	fn, _ := u.Func("main")
	var gotos, labels int
	for _, s := range fn.Body {
		switch s.Kind {
		case ir.SGoto:
			gotos++
		case ir.SLabel:
			labels++
		}
	}
	if gotos != 1 || labels != 2 {
		t.Errorf("if/else lowering: gotos=%d labels=%d\n%s", gotos, labels, dumpBody(fn.Body))
	}
}

func TestLowerPointerDeref(t *testing.T) {
	u, err := CompileUnit(`main(){int a,*p; p = &a; a = *p + 1;}`)
	if err != nil {
		t.Fatal(err)
	}
	fn, _ := u.Func("main")
	var derefLoad bool
	for _, s := range fn.Body {
		if s.Kind == ir.SStore && s.Val != nil &&
			strings.Contains(s.Val.String(), "Load(Load(Addr(p)))") {
			derefLoad = true
		}
	}
	if !derefLoad {
		t.Errorf("deref load missing:\n%s", dumpBody(fn.Body))
	}
}

func TestContainsCall(t *testing.T) {
	u, err := CompileUnit(`main(){int a,b; a = b + P(1);}`)
	if err != nil {
		t.Fatal(err)
	}
	fn, _ := u.Func("main")
	last := fn.Body[len(fn.Body)-1]
	if !last.Val.ContainsCall() {
		t.Error("ContainsCall should see the nested call")
	}
	if last.Val.Kids[0].ContainsCall() {
		t.Error("the left operand has no call")
	}
}
