package cc

import (
	"strings"
)

// Lex tokenizes mini-C source. It returns the token stream (terminated by an
// EOF token) or the first lexical error.
func Lex(src string) ([]Token, error) {
	l := &clexer{src: src, line: 1, col: 1}
	var toks []Token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks, nil
		}
	}
}

type clexer struct {
	src  string
	pos  int
	line int
	col  int
}

func (l *clexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *clexer) peek2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *clexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *clexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.advance()
		case c == '/' && l.peek2() == '*':
			startLine, startCol := l.line, l.col
			l.advance()
			l.advance()
			for {
				if l.pos >= len(l.src) {
					return errf(startLine, startCol, "unterminated comment")
				}
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					break
				}
				l.advance()
			}
		case c == '/' && l.peek2() == '/':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '#':
			// Preprocessor lines (#include "init.h") are ignored: the
			// toolchain driver splices headers before lexing.
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

// multi-character operators, longest first.
var punct2 = []string{"<<", ">>", "<=", ">=", "==", "!=", "&&", "||"}

func (l *clexer) next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	line, col := l.line, l.col
	if l.pos >= len(l.src) {
		return Token{Kind: EOF, Line: line, Col: col}, nil
	}
	c := l.peek()
	switch {
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && isIdentPart(l.peek()) {
			l.advance()
		}
		word := l.src[start:l.pos]
		if k, ok := keywords[word]; ok {
			return Token{Kind: k, Text: word, Line: line, Col: col}, nil
		}
		return Token{Kind: Ident, Text: word, Line: line, Col: col}, nil
	case c >= '0' && c <= '9':
		return l.lexInt(line, col)
	case c == '"':
		return l.lexStr(line, col)
	}
	for _, op := range punct2 {
		if strings.HasPrefix(l.src[l.pos:], op) {
			l.advance()
			l.advance()
			return Token{Kind: Punct, Text: op, Line: line, Col: col}, nil
		}
	}
	if strings.ContainsRune("+-*/%&|^~!<>=(){},;:", rune(c)) {
		l.advance()
		return Token{Kind: Punct, Text: string(c), Line: line, Col: col}, nil
	}
	return Token{}, errf(line, col, "unexpected character %q", c)
}

func (l *clexer) lexInt(line, col int) (Token, error) {
	var v int64
	if l.peek() == '0' && (l.peek2() == 'x' || l.peek2() == 'X') {
		l.advance()
		l.advance()
		digits := 0
		for l.pos < len(l.src) {
			d, ok := hexVal(l.peek())
			if !ok {
				break
			}
			v = v*16 + int64(d)
			digits++
			l.advance()
		}
		if digits == 0 {
			return Token{}, errf(line, col, "malformed hex literal")
		}
	} else {
		for l.pos < len(l.src) && l.peek() >= '0' && l.peek() <= '9' {
			v = v*10 + int64(l.peek()-'0')
			l.advance()
		}
	}
	return Token{Kind: Int, Val: v, Line: line, Col: col}, nil
}

func (l *clexer) lexStr(line, col int) (Token, error) {
	l.advance() // opening quote
	var sb strings.Builder
	for {
		if l.pos >= len(l.src) {
			return Token{}, errf(line, col, "unterminated string literal")
		}
		c := l.advance()
		switch c {
		case '"':
			return Token{Kind: Str, Text: sb.String(), Line: line, Col: col}, nil
		case '\\':
			if l.pos >= len(l.src) {
				return Token{}, errf(line, col, "unterminated string literal")
			}
			e := l.advance()
			switch e {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case '\\':
				sb.WriteByte('\\')
			case '"':
				sb.WriteByte('"')
			case '0':
				sb.WriteByte(0)
			default:
				return Token{}, errf(l.line, l.col, "unsupported escape \\%c", e)
			}
		default:
			sb.WriteByte(c)
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func hexVal(c byte) (int, bool) {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0'), true
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10, true
	case c >= 'A' && c <= 'F':
		return int(c-'A') + 10, true
	}
	return 0, false
}
