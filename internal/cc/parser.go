package cc

// Parse lexes and parses one translation unit.
func Parse(src string) (*File, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.file()
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) isPunct(s string) bool {
	t := p.cur()
	return t.Kind == Punct && t.Text == s
}

func (p *parser) accept(s string) bool {
	if p.isPunct(s) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(s string) error {
	if !p.accept(s) {
		t := p.cur()
		return errf(t.Line, t.Col, "expected %q, found %s", s, t)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.cur()
	if t.Kind != Ident {
		return "", errf(t.Line, t.Col, "expected identifier, found %s", t)
	}
	p.pos++
	return t.Text, nil
}

func (p *parser) file() (*File, error) {
	f := &File{}
	for p.cur().Kind != EOF {
		d, err := p.topDecl()
		if err != nil {
			return nil, err
		}
		f.Decls = append(f.Decls, d)
	}
	return f, nil
}

// topDecl parses one top-level declaration. Accepted forms:
//
//	extern int a, b;          extern void Init();
//	int a, b = 3;             int P(int x) { ... }
//	main() { ... }            void Init(n,o,p) int *n,*o,*p; { ... }
func (p *parser) topDecl() (Decl, error) {
	extern := false
	if p.cur().Kind == KwExtern {
		p.pos++
		extern = true
	}
	void := false
	switch p.cur().Kind {
	case KwInt:
		p.pos++
	case KwVoid:
		p.pos++
		void = true
	case Ident:
		// implicit-int function definition: main() {...}
	default:
		t := p.cur()
		return nil, errf(t.Line, t.Col, "expected declaration, found %s", t)
	}

	// A pointer declarator here means a variable declaration.
	if p.isPunct("*") {
		return p.finishVarDecl(extern)
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if p.isPunct("(") {
		return p.funcDecl(name, void, extern)
	}
	if void {
		t := p.cur()
		return nil, errf(t.Line, t.Col, "void variable %q", name)
	}
	return p.finishVarDeclNamed(extern, name)
}

func (p *parser) finishVarDecl(extern bool) (Decl, error) {
	ptr := p.accept("*")
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	d := &VarDecl{Extern: extern}
	if err := p.varSpecs(d, name, ptr); err != nil {
		return nil, err
	}
	return d, nil
}

func (p *parser) finishVarDeclNamed(extern bool, name string) (Decl, error) {
	d := &VarDecl{Extern: extern}
	if err := p.varSpecs(d, name, false); err != nil {
		return nil, err
	}
	return d, nil
}

// varSpecs parses the rest of a declarator list beginning with the already
// consumed first declarator (name, ptr), through the terminating semicolon.
func (p *parser) varSpecs(d *VarDecl, firstName string, firstPtr bool) error {
	name, ptr := firstName, firstPtr
	for {
		spec := VarSpec{Name: name, Pointer: ptr}
		if p.accept("=") {
			e, err := p.assignExpr()
			if err != nil {
				return err
			}
			spec.Init = e
		}
		d.Vars = append(d.Vars, spec)
		if p.accept(",") {
			ptr = p.accept("*")
			var err error
			name, err = p.expectIdent()
			if err != nil {
				return err
			}
			continue
		}
		return p.expect(";")
	}
}

func (p *parser) funcDecl(name string, void, extern bool) (Decl, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	fd := &FuncDecl{Name: name, Void: void}
	// Parameter list: empty, ANSI (`int a, int *b`), `void`, or K&R names.
	krNames := []string{}
	if !p.isPunct(")") {
		if p.cur().Kind == KwVoid && p.toks[p.pos+1].Kind == Punct && p.toks[p.pos+1].Text == ")" {
			p.pos++ // f(void)
		} else if p.cur().Kind == KwInt {
			for {
				if p.cur().Kind != KwInt {
					t := p.cur()
					return nil, errf(t.Line, t.Col, "expected 'int' in parameter list, found %s", t)
				}
				p.pos++
				ptr := p.accept("*")
				pn, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				fd.Params = append(fd.Params, Param{Name: pn, Pointer: ptr})
				if !p.accept(",") {
					break
				}
			}
		} else {
			for {
				pn, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				krNames = append(krNames, pn)
				if !p.accept(",") {
					break
				}
			}
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	if extern {
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		for _, n := range krNames {
			fd.Params = append(fd.Params, Param{Name: n})
		}
		return fd, nil
	}
	if p.accept(";") { // non-extern prototype
		for _, n := range krNames {
			fd.Params = append(fd.Params, Param{Name: n})
		}
		return fd, nil
	}
	// K&R parameter declarations between ')' and '{'.
	krTypes := map[string]Param{}
	for p.cur().Kind == KwInt {
		p.pos++
		for {
			ptr := p.accept("*")
			pn, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			krTypes[pn] = Param{Name: pn, Pointer: ptr}
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
	}
	for _, n := range krNames {
		if t, ok := krTypes[n]; ok {
			fd.Params = append(fd.Params, t)
		} else {
			fd.Params = append(fd.Params, Param{Name: n}) // default int
		}
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	fd.Body = body
	return fd, nil
}

func (p *parser) block() (*Block, error) {
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	b := &Block{}
	for !p.isPunct("}") {
		if p.cur().Kind == EOF {
			t := p.cur()
			return nil, errf(t.Line, t.Col, "unterminated block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Items = append(b.Items, s)
	}
	p.pos++ // consume '}'
	return b, nil
}

func (p *parser) stmt() (Stmt, error) {
	t := p.cur()
	switch {
	case t.Kind == KwInt:
		p.pos++
		d, err := p.finishVarDecl(false)
		if err != nil {
			return nil, err
		}
		return &DeclStmt{Decl: d.(*VarDecl)}, nil
	case t.Kind == KwIf:
		p.pos++
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		then, err := p.stmt()
		if err != nil {
			return nil, err
		}
		var els Stmt
		if p.cur().Kind == KwElse {
			p.pos++
			els, err = p.stmt()
			if err != nil {
				return nil, err
			}
		}
		return &IfStmt{Cond: cond, Then: then, Else: els}, nil
	case t.Kind == KwWhile:
		p.pos++
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.stmt()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body}, nil
	case t.Kind == KwGoto:
		p.pos++
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &GotoStmt{Label: name}, nil
	case t.Kind == KwReturn:
		p.pos++
		if p.accept(";") {
			return &ReturnStmt{}, nil
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &ReturnStmt{X: e}, nil
	case p.isPunct("{"):
		return p.block()
	case p.isPunct(";"):
		p.pos++
		return &EmptyStmt{}, nil
	case t.Kind == Ident && p.toks[p.pos+1].Kind == Punct && p.toks[p.pos+1].Text == ":":
		p.pos += 2
		inner, err := p.stmt()
		if err != nil {
			return nil, err
		}
		return &LabeledStmt{Label: t.Text, Stmt: inner}, nil
	default:
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &ExprStmt{X: e}, nil
	}
}

func (p *parser) expr() (Expr, error) { return p.assignExpr() }

func (p *parser) assignExpr() (Expr, error) {
	lhs, err := p.binExpr(0)
	if err != nil {
		return nil, err
	}
	if p.isPunct("=") {
		switch lhs.(type) {
		case *IdentExpr, *UnaryExpr:
		default:
			t := p.cur()
			return nil, errf(t.Line, t.Col, "invalid assignment target")
		}
		p.pos++
		rhs, err := p.assignExpr()
		if err != nil {
			return nil, err
		}
		return &AssignExpr{LHS: lhs, RHS: rhs}, nil
	}
	return lhs, nil
}

// binary operator precedence levels, low to high.
var precLevels = [][]string{
	{"||"},
	{"&&"},
	{"|"},
	{"^"},
	{"&"},
	{"==", "!="},
	{"<", ">", "<=", ">="},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *parser) binExpr(level int) (Expr, error) {
	if level >= len(precLevels) {
		return p.unary()
	}
	lhs, err := p.binExpr(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		matched := ""
		for _, op := range precLevels[level] {
			if p.isPunct(op) {
				matched = op
				break
			}
		}
		if matched == "" {
			return lhs, nil
		}
		p.pos++
		rhs, err := p.binExpr(level + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinaryExpr{Op: matched, X: lhs, Y: rhs}
	}
}

func (p *parser) unary() (Expr, error) {
	for _, op := range []string{"-", "~", "!", "*", "&"} {
		if p.isPunct(op) {
			p.pos++
			x, err := p.unary()
			if err != nil {
				return nil, err
			}
			return &UnaryExpr{Op: op, X: x}, nil
		}
	}
	return p.postfix()
}

func (p *parser) postfix() (Expr, error) {
	t := p.cur()
	switch {
	case t.Kind == Int:
		p.pos++
		return &IntLit{Val: t.Val}, nil
	case t.Kind == Str:
		p.pos++
		return &StrLit{Val: t.Text}, nil
	case t.Kind == Ident:
		p.pos++
		if p.accept("(") {
			call := &CallExpr{Name: t.Text}
			if !p.isPunct(")") {
				for {
					a, err := p.assignExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if !p.accept(",") {
						break
					}
				}
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return call, nil
		}
		return &IdentExpr{Name: t.Text}, nil
	case p.isPunct("("):
		p.pos++
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, errf(t.Line, t.Col, "expected expression, found %s", t)
}
