package cc

import (
	"fmt"

	"srcg/internal/ir"
)

// Lower translates a parsed translation unit into intermediate code. It is
// deliberately non-optimizing: like the early-90s `cc` compilers the paper
// interrogates, it performs no constant folding, no propagation, and no dead
// code elimination, so the Generator's anti-optimization harness (paper
// Fig. 3) behaves exactly as described.
func Lower(f *File) (*ir.Unit, error) {
	lo := &lowerer{
		unit:    &ir.Unit{},
		globals: map[string]bool{},
	}
	// First pass: collect file-scope names so identifier lowering can
	// distinguish locals from globals.
	for _, d := range f.Decls {
		switch d := d.(type) {
		case *VarDecl:
			for _, v := range d.Vars {
				lo.globals[v.Name] = true
				if d.Extern {
					lo.unit.Externs = append(lo.unit.Externs, v.Name)
				} else {
					lo.unit.Globals = append(lo.unit.Globals, ir.Global{Name: v.Name})
					if v.Init != nil {
						return nil, fmt.Errorf("cc: initialized file-scope variable %q unsupported", v.Name)
					}
				}
			}
		case *FuncDecl:
			if d.Body == nil {
				lo.unit.Externs = append(lo.unit.Externs, d.Name)
			}
		}
	}
	for _, d := range f.Decls {
		fd, ok := d.(*FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		fn, err := lo.lowerFunc(fd)
		if err != nil {
			return nil, err
		}
		lo.unit.Funcs = append(lo.unit.Funcs, fn)
	}
	return lo.unit, nil
}

// CompileUnit parses and lowers source in one step.
func CompileUnit(src string) (*ir.Unit, error) {
	f, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Lower(f)
}

type lowerer struct {
	unit      *ir.Unit
	globals   map[string]bool
	fn        *ir.Func
	locals    map[string]bool
	nextLabel int
	nextStr   int
}

func (lo *lowerer) newLabel() string {
	lo.nextLabel++
	return fmt.Sprintf(".L%d", lo.nextLabel)
}

func (lo *lowerer) internString(s string) string {
	for _, sl := range lo.unit.Strings {
		if sl.Value == s {
			return sl.Label
		}
	}
	lo.nextStr++
	label := fmt.Sprintf(".str%d", lo.nextStr)
	lo.unit.Strings = append(lo.unit.Strings, ir.StringLit{Label: label, Value: s})
	return label
}

func (lo *lowerer) lowerFunc(fd *FuncDecl) (*ir.Func, error) {
	fn := &ir.Func{Name: fd.Name}
	lo.fn = fn
	lo.locals = map[string]bool{}
	for i, p := range fd.Params {
		fn.Params = append(fn.Params, p.Name)
		fn.Locals = append(fn.Locals, ir.Local{Name: p.Name, IsParam: true, Index: i})
		lo.locals[p.Name] = true
	}
	if err := lo.lowerStmt(fd.Body); err != nil {
		return nil, err
	}
	return fn, nil
}

func (lo *lowerer) emit(s *ir.Stmt) { lo.fn.Body = append(lo.fn.Body, s) }

func (lo *lowerer) declareLocal(name string) error {
	if lo.locals[name] {
		return fmt.Errorf("cc: %s: redeclared local %q", lo.fn.Name, name)
	}
	lo.locals[name] = true
	lo.fn.Locals = append(lo.fn.Locals, ir.Local{Name: name, Index: len(lo.fn.Locals)})
	return nil
}

func (lo *lowerer) lowerStmt(s Stmt) error {
	switch s := s.(type) {
	case *Block:
		for _, item := range s.Items {
			if err := lo.lowerStmt(item); err != nil {
				return err
			}
		}
	case *DeclStmt:
		for _, v := range s.Decl.Vars {
			if err := lo.declareLocal(v.Name); err != nil {
				return err
			}
			if v.Init != nil {
				val, err := lo.lowerExpr(v.Init)
				if err != nil {
					return err
				}
				lo.emit(&ir.Stmt{Kind: ir.SStore, Addr: ir.NewAddr(v.Name), Val: val})
			}
		}
	case *ExprStmt:
		return lo.lowerExprStmt(s.X)
	case *IfStmt:
		elseL := lo.newLabel()
		if err := lo.branchIf(s.Cond, elseL, false); err != nil {
			return err
		}
		if err := lo.lowerStmt(s.Then); err != nil {
			return err
		}
		if s.Else != nil {
			endL := lo.newLabel()
			lo.emit(&ir.Stmt{Kind: ir.SGoto, Target: endL})
			lo.emit(&ir.Stmt{Kind: ir.SLabel, Target: elseL})
			if err := lo.lowerStmt(s.Else); err != nil {
				return err
			}
			lo.emit(&ir.Stmt{Kind: ir.SLabel, Target: endL})
		} else {
			lo.emit(&ir.Stmt{Kind: ir.SLabel, Target: elseL})
		}
	case *WhileStmt:
		headL := lo.newLabel()
		exitL := lo.newLabel()
		lo.emit(&ir.Stmt{Kind: ir.SLabel, Target: headL})
		if err := lo.branchIf(s.Cond, exitL, false); err != nil {
			return err
		}
		if err := lo.lowerStmt(s.Body); err != nil {
			return err
		}
		lo.emit(&ir.Stmt{Kind: ir.SGoto, Target: headL})
		lo.emit(&ir.Stmt{Kind: ir.SLabel, Target: exitL})
	case *GotoStmt:
		lo.emit(&ir.Stmt{Kind: ir.SGoto, Target: s.Label})
	case *LabeledStmt:
		lo.emit(&ir.Stmt{Kind: ir.SLabel, Target: s.Label})
		return lo.lowerStmt(s.Stmt)
	case *ReturnStmt:
		ret := &ir.Stmt{Kind: ir.SRet}
		if s.X != nil {
			v, err := lo.lowerExpr(s.X)
			if err != nil {
				return err
			}
			ret.Val = v
		}
		lo.emit(ret)
	case *EmptyStmt:
	default:
		return fmt.Errorf("cc: unsupported statement %T", s)
	}
	return nil
}

// lowerExprStmt lowers a top-level expression statement: an assignment or a
// call evaluated for side effects.
func (lo *lowerer) lowerExprStmt(e Expr) error {
	switch e := e.(type) {
	case *AssignExpr:
		_, err := lo.lowerAssign(e)
		return err
	case *CallExpr:
		call, err := lo.lowerExpr(e)
		if err != nil {
			return err
		}
		lo.emit(&ir.Stmt{Kind: ir.SExpr, Val: call})
		return nil
	default:
		v, err := lo.lowerExpr(e)
		if err != nil {
			return err
		}
		lo.emit(&ir.Stmt{Kind: ir.SExpr, Val: v})
		return nil
	}
}

// lowerAssign emits the store for an assignment and returns an expression
// that re-reads the stored value (so chains like z1=z2=z3=1 work).
func (lo *lowerer) lowerAssign(e *AssignExpr) (*ir.Node, error) {
	rhs, err := lo.lowerExpr(e.RHS)
	if err != nil {
		return nil, err
	}
	addr, err := lo.lvalue(e.LHS)
	if err != nil {
		return nil, err
	}
	lo.emit(&ir.Stmt{Kind: ir.SStore, Addr: addr, Val: rhs})
	return ir.NewLoad(addr.Clone()), nil
}

// lvalue lowers an assignment target to an address expression.
func (lo *lowerer) lvalue(e Expr) (*ir.Node, error) {
	switch e := e.(type) {
	case *IdentExpr:
		return ir.NewAddr(e.Name), nil
	case *UnaryExpr:
		if e.Op == "*" {
			return lo.lowerExpr(e.X) // the pointer's value is the address
		}
	}
	return nil, fmt.Errorf("cc: invalid assignment target %T", e)
}

var binOps = map[string]ir.Op{
	"+": ir.Add, "-": ir.Sub, "*": ir.Mul, "/": ir.Div, "%": ir.Mod,
	"&": ir.And, "|": ir.Or, "^": ir.Xor, "<<": ir.Shl, ">>": ir.Shr,
}

var relOps = map[string]ir.Rel{
	"==": ir.EQ, "!=": ir.NE, "<": ir.LT, "<=": ir.LE, ">": ir.GT, ">=": ir.GE,
}

func (lo *lowerer) lowerExpr(e Expr) (*ir.Node, error) {
	switch e := e.(type) {
	case *IntLit:
		return ir.NewConst(e.Val), nil
	case *StrLit:
		return ir.NewAddr(lo.internString(e.Val)), nil
	case *IdentExpr:
		return ir.NewLoad(ir.NewAddr(e.Name)), nil
	case *UnaryExpr:
		switch e.Op {
		case "-":
			// Fold a negated literal so `a=7-b` style templates with
			// negative constants assemble to one immediate.
			if lit, ok := e.X.(*IntLit); ok {
				return ir.NewConst(-lit.Val), nil
			}
			x, err := lo.lowerExpr(e.X)
			if err != nil {
				return nil, err
			}
			return ir.NewUn(ir.Neg, x), nil
		case "~":
			x, err := lo.lowerExpr(e.X)
			if err != nil {
				return nil, err
			}
			return ir.NewUn(ir.Not, x), nil
		case "*":
			x, err := lo.lowerExpr(e.X)
			if err != nil {
				return nil, err
			}
			return ir.NewLoad(x), nil
		case "&":
			id, ok := e.X.(*IdentExpr)
			if !ok {
				return nil, fmt.Errorf("cc: & requires a variable operand")
			}
			return ir.NewAddr(id.Name), nil
		}
		return nil, fmt.Errorf("cc: unary %q only supported in conditions", e.Op)
	case *BinaryExpr:
		if op, ok := binOps[e.Op]; ok {
			x, err := lo.lowerExpr(e.X)
			if err != nil {
				return nil, err
			}
			y, err := lo.lowerExpr(e.Y)
			if err != nil {
				return nil, err
			}
			return ir.NewBin(op, x, y), nil
		}
		return nil, fmt.Errorf("cc: operator %q only supported in conditions", e.Op)
	case *AssignExpr:
		return lo.lowerAssign(e)
	case *CallExpr:
		call := ir.NewCall(e.Name)
		for _, a := range e.Args {
			v, err := lo.lowerExpr(a)
			if err != nil {
				return nil, err
			}
			call.Kids = append(call.Kids, v)
		}
		return call, nil
	}
	return nil, fmt.Errorf("cc: unsupported expression %T", e)
}

// branchIf lowers a condition: it branches to target when the condition's
// truth equals whenTrue, falling through otherwise. Short-circuit operators
// and negation are handled by recursion; plain expressions compare != 0.
func (lo *lowerer) branchIf(cond Expr, target string, whenTrue bool) error {
	switch e := cond.(type) {
	case *BinaryExpr:
		if rel, ok := relOps[e.Op]; ok {
			x, err := lo.lowerExpr(e.X)
			if err != nil {
				return err
			}
			y, err := lo.lowerExpr(e.Y)
			if err != nil {
				return err
			}
			if !whenTrue {
				rel = rel.Negate()
			}
			lo.emit(&ir.Stmt{Kind: ir.SBranch, Rel: rel, A: x, B: y, Target: target})
			return nil
		}
		switch e.Op {
		case "&&":
			if whenTrue {
				// both must hold: fail past, then test second
				failL := lo.newLabel()
				if err := lo.branchIf(e.X, failL, false); err != nil {
					return err
				}
				if err := lo.branchIf(e.Y, target, true); err != nil {
					return err
				}
				lo.emit(&ir.Stmt{Kind: ir.SLabel, Target: failL})
				return nil
			}
			if err := lo.branchIf(e.X, target, false); err != nil {
				return err
			}
			return lo.branchIf(e.Y, target, false)
		case "||":
			if whenTrue {
				if err := lo.branchIf(e.X, target, true); err != nil {
					return err
				}
				return lo.branchIf(e.Y, target, true)
			}
			okL := lo.newLabel()
			if err := lo.branchIf(e.X, okL, true); err != nil {
				return err
			}
			if err := lo.branchIf(e.Y, target, false); err != nil {
				return err
			}
			lo.emit(&ir.Stmt{Kind: ir.SLabel, Target: okL})
			return nil
		}
	case *UnaryExpr:
		if e.Op == "!" {
			return lo.branchIf(e.X, target, !whenTrue)
		}
	}
	// Plain expression: compare against zero.
	v, err := lo.lowerExpr(cond)
	if err != nil {
		return err
	}
	rel := ir.NE
	if !whenTrue {
		rel = ir.EQ
	}
	lo.emit(&ir.Stmt{Kind: ir.SBranch, Rel: rel, A: v, B: ir.NewConst(0), Target: target})
	return nil
}
