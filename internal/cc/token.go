// Package cc implements the mini-C front end used by the simulated native
// compilers of every target machine. The accepted subset covers exactly the
// programs the paper's Generator emits (§3): int variables and pointers,
// separate translation units with extern declarations, K&R and ANSI
// function definitions, if/goto/while, integer arithmetic, calls, and
// printf/exit.
package cc

import "fmt"

// Kind classifies tokens.
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	Ident
	Int
	Str
	Punct // operators and punctuation; the Text field holds the lexeme
	KwInt
	KwVoid
	KwExtern
	KwIf
	KwElse
	KwGoto
	KwWhile
	KwReturn
)

var kindNames = map[Kind]string{
	EOF: "EOF", Ident: "identifier", Int: "integer", Str: "string", Punct: "punctuation",
	KwInt: "'int'", KwVoid: "'void'", KwExtern: "'extern'", KwIf: "'if'",
	KwElse: "'else'", KwGoto: "'goto'", KwWhile: "'while'", KwReturn: "'return'",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

var keywords = map[string]Kind{
	"int": KwInt, "void": KwVoid, "extern": KwExtern, "if": KwIf,
	"else": KwElse, "goto": KwGoto, "while": KwWhile, "return": KwReturn,
}

// Token is one lexical token.
type Token struct {
	Kind Kind
	Text string // lexeme for Ident/Punct; decoded contents for Str
	Val  int64  // Int only
	Line int
	Col  int
}

func (t Token) String() string {
	switch t.Kind {
	case Int:
		return fmt.Sprintf("%d", t.Val)
	case Str:
		return fmt.Sprintf("%q", t.Text)
	case EOF:
		return "EOF"
	default:
		return t.Text
	}
}

// Error is a front-end diagnostic with source position.
type Error struct {
	Line int
	Col  int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg) }

func errf(line, col int, format string, args ...any) *Error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}
