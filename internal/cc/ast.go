package cc

// File is one parsed translation unit.
type File struct {
	Decls []Decl
}

// Decl is a top-level declaration: a variable declaration (possibly extern)
// or a function definition/prototype.
type Decl interface{ decl() }

// VarDecl declares one or more variables: `int a, *p = ..., b = 5;`.
// At file scope initializers must be constant; inside functions they are
// lowered to assignments.
type VarDecl struct {
	Extern bool
	Vars   []VarSpec
}

// VarSpec is one declarator within a VarDecl.
type VarSpec struct {
	Name    string
	Pointer bool
	Init    Expr // may be nil
}

// FuncDecl is a function definition or an extern prototype (Body == nil).
type FuncDecl struct {
	Name   string
	Void   bool // declared `void f(...)`; otherwise returns int
	Params []Param
	Body   *Block // nil for prototypes
}

// Param is a function parameter (from ANSI or K&R style parameter lists).
type Param struct {
	Name    string
	Pointer bool
}

func (*VarDecl) decl()  {}
func (*FuncDecl) decl() {}

// Stmt is a statement node.
type Stmt interface{ stmt() }

// Block is `{ ... }`; it may contain declarations followed by statements
// (mini-C allows them interleaved, like C89 compilers in practice did for
// the paper's samples: `int b=5,c=6,a=b+c;`).
type Block struct {
	Items []Stmt
}

// DeclStmt is a local variable declaration statement.
type DeclStmt struct {
	Decl *VarDecl
}

// ExprStmt evaluates an expression for its side effects.
type ExprStmt struct {
	X Expr
}

// IfStmt is `if (Cond) Then [else Else]`.
type IfStmt struct {
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// WhileStmt is `while (Cond) Body`.
type WhileStmt struct {
	Cond Expr
	Body Stmt
}

// GotoStmt is `goto Label;`.
type GotoStmt struct {
	Label string
}

// LabeledStmt is `Label: Stmt`.
type LabeledStmt struct {
	Label string
	Stmt  Stmt
}

// ReturnStmt is `return [expr];`.
type ReturnStmt struct {
	X Expr // may be nil
}

// EmptyStmt is `;`.
type EmptyStmt struct{}

func (*Block) stmt()       {}
func (*DeclStmt) stmt()    {}
func (*ExprStmt) stmt()    {}
func (*IfStmt) stmt()      {}
func (*WhileStmt) stmt()   {}
func (*GotoStmt) stmt()    {}
func (*LabeledStmt) stmt() {}
func (*ReturnStmt) stmt()  {}
func (*EmptyStmt) stmt()   {}

// Expr is an expression node.
type Expr interface{ expr() }

// IntLit is an integer literal.
type IntLit struct {
	Val int64
}

// StrLit is a string literal (only valid as a call argument, e.g. printf).
type StrLit struct {
	Val string
}

// IdentExpr references a variable.
type IdentExpr struct {
	Name string
}

// UnaryExpr is `-x`, `~x`, `!x`, `*p`, or `&x` (Op is the operator lexeme).
type UnaryExpr struct {
	Op string
	X  Expr
}

// BinaryExpr is a binary operation (Op is the operator lexeme).
type BinaryExpr struct {
	Op   string
	X, Y Expr
}

// AssignExpr is `lhs = rhs` (lhs must be an identifier or a dereference).
type AssignExpr struct {
	LHS Expr
	RHS Expr
}

// CallExpr is `name(args...)`.
type CallExpr struct {
	Name string
	Args []Expr
}

func (*IntLit) expr()     {}
func (*StrLit) expr()     {}
func (*IdentExpr) expr()  {}
func (*UnaryExpr) expr()  {}
func (*BinaryExpr) expr() {}
func (*AssignExpr) expr() {}
func (*CallExpr) expr()   {}
