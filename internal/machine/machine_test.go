package machine

import (
	"testing"
	"testing/quick"
)

func TestMemoryRoundTrip(t *testing.T) {
	f := func(addr uint32, v uint32) bool {
		m := NewMemory()
		m.Store(uint64(addr), 4, uint64(v))
		return m.Load(uint64(addr), 4) == uint64(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMemoryLittleEndian(t *testing.T) {
	m := NewMemory()
	m.Store(100, 4, 0x11223344)
	if m.Load(100, 1) != 0x44 || m.Load(103, 1) != 0x11 {
		t.Errorf("byte order wrong: %x %x", m.Load(100, 1), m.Load(103, 1))
	}
}

func TestMemoryBounds(t *testing.T) {
	m := NewMemory()
	m.AddBound(100, 200)
	m.Store(150, 4, 1)
	if m.Fault() != nil {
		t.Fatalf("in-bounds store faulted: %v", m.Fault())
	}
	m.Load(198, 4) // crosses the upper bound
	if m.Fault() == nil {
		t.Fatal("boundary-crossing load must fault")
	}
	// The fault latches: later valid accesses do not clear it.
	first := m.Fault()
	m.Load(150, 4)
	if m.Fault() != first {
		t.Error("fault must latch")
	}
}

func TestMemoryUnboundedByDefault(t *testing.T) {
	m := NewMemory()
	m.Store(1<<40, 8, 7)
	if m.Fault() != nil {
		t.Errorf("unbounded memory faulted: %v", m.Fault())
	}
}

func TestSignExtendTruncate(t *testing.T) {
	f := func(v int32) bool {
		return SignExtend(Truncate(int64(v), 32), 32) == int64(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if SignExtend(0xFFFF, 16) != -1 {
		t.Errorf("SignExtend(0xFFFF,16) = %d", SignExtend(0xFFFF, 16))
	}
	if SignExtend(0x7FFF, 16) != 32767 {
		t.Errorf("SignExtend(0x7FFF,16) = %d", SignExtend(0x7FFF, 16))
	}
}

func TestPrintf(t *testing.T) {
	cpu := NewCPU()
	if err := cpu.Printf("%i\n", []int64{42}); err != nil {
		t.Fatal(err)
	}
	if err := cpu.Printf("x=%d%%\n", []int64{-7}); err != nil {
		t.Fatal(err)
	}
	if got := cpu.Out.String(); got != "42\nx=-7%\n" {
		t.Errorf("out = %q", got)
	}
	if err := cpu.Printf("%q", nil); err == nil {
		t.Error("unsupported directive must error")
	}
	if err := cpu.Printf("%i", nil); err == nil {
		t.Error("missing argument must error")
	}
}

func TestLoadCString(t *testing.T) {
	m := NewMemory()
	for i, b := range []byte("hi\x00") {
		m.Store(uint64(500+i), 1, uint64(b))
	}
	s, err := m.LoadCString(500)
	if err != nil || s != "hi" {
		t.Errorf("LoadCString = %q, %v", s, err)
	}
}

func TestStepBudget(t *testing.T) {
	cpu := NewCPU()
	cpu.MaxSteps = 3
	for i := 0; i < 3; i++ {
		if err := cpu.Tick(); err != nil {
			t.Fatalf("tick %d: %v", i, err)
		}
	}
	if err := cpu.Tick(); err == nil {
		t.Error("budget exhaustion must error")
	}
}
