// Package machine provides the execution substrate shared by every
// simulated target: byte-addressed memory, a register file, and the CPU
// state that the per-architecture executors step. It plays the role of the
// physical hardware that the paper's discovery unit reaches over rsh.
package machine

import (
	"fmt"
	"strings"
)

// Memory is a sparse byte-addressed memory with optional access bounds.
// Out-of-bounds accesses latch a fault that the executor surfaces after the
// offending step — like a real machine's segmentation violation, this is
// what makes clobbered frame pointers *observable* to mutation analysis.
type Memory struct {
	bytes  map[uint64]byte
	bounds [][2]uint64 // inclusive start, exclusive end; empty = unbounded
	fault  error
}

// NewMemory returns an empty memory.
func NewMemory() *Memory { return &Memory{bytes: map[uint64]byte{}} }

// AddBound allows accesses in [start, end).
func (m *Memory) AddBound(start, end uint64) {
	m.bounds = append(m.bounds, [2]uint64{start, end})
}

// Fault returns the first out-of-bounds access error, if any.
func (m *Memory) Fault() error { return m.fault }

func (m *Memory) check(addr uint64, size int) {
	if m.fault != nil || len(m.bounds) == 0 {
		return
	}
	for _, b := range m.bounds {
		if addr >= b[0] && addr+uint64(size) <= b[1] {
			return
		}
	}
	m.fault = fmt.Errorf("machine: memory access fault at %#x", addr)
}

// Load reads a little-endian value of size bytes at addr.
func (m *Memory) Load(addr uint64, size int) uint64 {
	m.check(addr, size)
	var v uint64
	for i := 0; i < size; i++ {
		v |= uint64(m.bytes[addr+uint64(i)]) << (8 * i)
	}
	return v
}

// Store writes a little-endian value of size bytes at addr.
func (m *Memory) Store(addr uint64, size int, v uint64) {
	m.check(addr, size)
	for i := 0; i < size; i++ {
		m.bytes[addr+uint64(i)] = byte(v >> (8 * i))
	}
}

// LoadCString reads a NUL-terminated string at addr (bounded at 64KiB to
// catch runaway pointers in buggy generated code).
func (m *Memory) LoadCString(addr uint64) (string, error) {
	var sb strings.Builder
	for i := 0; i < 1<<16; i++ {
		b := m.bytes[addr+uint64(i)]
		if b == 0 {
			return sb.String(), nil
		}
		sb.WriteByte(b)
	}
	return "", fmt.Errorf("machine: unterminated string at %#x", addr)
}

// SignExtend interprets the low `bits` bits of v as a signed integer.
func SignExtend(v uint64, bits int) int64 {
	shift := 64 - bits
	return int64(v<<shift) >> shift
}

// Truncate keeps the low `bits` bits of v.
func Truncate(v int64, bits int) uint64 {
	if bits >= 64 {
		return uint64(v)
	}
	return uint64(v) & (1<<bits - 1)
}

// Layout constants shared by all simulated targets.
const (
	DataBase  = 0x10000  // static data segment start
	StackTop  = 0x800000 // initial stack pointer
	StackSize = 0x10000  // reserved stack region (for bounds checks)
)

// CPU is the mutable machine state stepped by an architecture executor.
type CPU struct {
	Regs   map[string]int64
	Mem    *Memory
	PC     int // index into the linked instruction stream
	Halted bool
	Exit   int

	// Condition state for architectures with a compare/branch split
	// (SPARC cmp+be, VAX tstl+jeql, x86 cmpl+je).
	CCValid bool
	CCa     int64
	CCb     int64

	// Hidden registers (e.g. MIPS hi/lo) live here, invisible to the
	// assembly-level register namespace.
	Hidden map[string]int64

	// Call stack of return PCs for architectures that keep return
	// addresses outside the general register file (VAX-style calls).
	RetStack []int

	Out      strings.Builder
	Steps    int64
	MaxSteps int64
}

// NewCPU returns a CPU with an empty register file and default step budget.
func NewCPU() *CPU {
	return &CPU{
		Regs:     map[string]int64{},
		Mem:      NewMemory(),
		Hidden:   map[string]int64{},
		MaxSteps: 2_000_000,
	}
}

// Tick consumes one step of the budget; it returns an error when the budget
// is exhausted (runaway mutated samples must terminate).
func (c *CPU) Tick() error {
	c.Steps++
	if c.Steps > c.MaxSteps {
		return fmt.Errorf("machine: step budget exceeded (%d)", c.MaxSteps)
	}
	return nil
}

// Printf implements the runtime printf used by samples: only the directives
// the Generator emits (%i, %d, %%) are supported.
func (c *CPU) Printf(format string, args []int64) error {
	argi := 0
	for i := 0; i < len(format); i++ {
		ch := format[i]
		if ch != '%' {
			c.Out.WriteByte(ch)
			continue
		}
		i++
		if i >= len(format) {
			return fmt.Errorf("machine: trailing %% in printf format")
		}
		switch format[i] {
		case 'i', 'd':
			if argi >= len(args) {
				return fmt.Errorf("machine: printf missing argument %d", argi)
			}
			fmt.Fprintf(&c.Out, "%d", args[argi])
			argi++
		case '%':
			c.Out.WriteByte('%')
		default:
			return fmt.Errorf("machine: unsupported printf directive %%%c", format[i])
		}
	}
	return nil
}
