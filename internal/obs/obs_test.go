package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestVirtualClockTicksAndAdvances pins the virtual-time contract: every
// Now() read advances one tick, and Advance absorbs accounted durations.
func TestVirtualClockTicksAndAdvances(t *testing.T) {
	c := NewVirtualClock()
	t1, t2 := c.Now(), c.Now()
	if t2-t1 != time.Microsecond {
		t.Errorf("tick = %v, want 1µs", t2-t1)
	}
	c.Advance(3 * time.Millisecond)
	if t3 := c.Now(); t3-t2 != 3*time.Millisecond+time.Microsecond {
		t.Errorf("after Advance(3ms), delta = %v", t3-t2)
	}
}

// TestNilTracerIsValid exercises every method on a nil *Tracer: the
// pipeline must be able to run untraced with zero ceremony.
func TestNilTracerIsValid(t *testing.T) {
	var tr *Tracer
	if err := tr.Phase("p", func() error { return nil }); err != nil {
		t.Errorf("nil Phase: %v", err)
	}
	tr.ProbeEvent("compile", OutcomeOK, 0)
	tr.RetryEvent("compile", 1, 0)
	tr.QuorumEscalation(2)
	tr.DropEvent("s", "r")
	tr.Count("c", 1)
	tr.Observe("h", 1)
	tr.Advance(time.Second)
	if tr.Now() != 0 || tr.Counter("c") != 0 || tr.Events() != 0 {
		t.Error("nil tracer returned non-zero state")
	}
	if tr.Counters() != nil || tr.Hists() != nil || tr.PhaseSummary() != nil {
		t.Error("nil tracer returned non-nil snapshots")
	}
	if err := tr.Flush(); err != nil {
		t.Errorf("nil Flush: %v", err)
	}
}

// TestPhaseAttribution pins the span algebra: nested spans, exclusive
// (self) vs inclusive (total) time, and probe attribution to the
// innermost open phase.
func TestPhaseAttribution(t *testing.T) {
	tr := New(nil)
	_ = tr.Phase("outer", func() error {
		tr.ProbeEvent("compile", OutcomeOK, time.Microsecond)
		return tr.Phase("inner", func() error {
			tr.ProbeEvent("execute", OutcomeOK, time.Microsecond)
			tr.ProbeEvent("execute", OutcomeOK, time.Microsecond)
			return nil
		})
	})
	phases := tr.PhaseSummary()
	if len(phases) != 2 {
		t.Fatalf("got %d phases, want 2: %+v", len(phases), phases)
	}
	outer, inner := phases[0], phases[1]
	if outer.Name != "outer" || inner.Name != "inner" {
		t.Fatalf("phase order: %q, %q — want first-open order", outer.Name, inner.Name)
	}
	if outer.Probes != 1 || inner.Probes != 2 {
		t.Errorf("probe attribution: outer=%d inner=%d, want 1 and 2", outer.Probes, inner.Probes)
	}
	if outer.Total <= inner.Total {
		t.Errorf("outer total %v not greater than inner total %v", outer.Total, inner.Total)
	}
	if outer.Self != outer.Total-inner.Total {
		t.Errorf("outer self %v != total %v - child %v", outer.Self, outer.Total, inner.Total)
	}
	if inner.Self != inner.Total {
		t.Errorf("leaf self %v != total %v", inner.Self, inner.Total)
	}
}

// TestPhaseErrorPropagates ensures the span closes and the error passes
// through.
func TestPhaseErrorPropagates(t *testing.T) {
	tr := New(nil)
	err := tr.Phase("p", func() error { return errSentinel })
	if err != errSentinel {
		t.Errorf("Phase error = %v, want sentinel", err)
	}
	if ps := tr.PhaseSummary(); len(ps) != 1 || ps[0].Spans != 1 {
		t.Errorf("span did not close on error: %+v", ps)
	}
}

var errSentinel = errType{}

type errType struct{}

func (errType) Error() string { return "sentinel" }

// allKindEvents is one representative event per kind, carrying every
// field its kind encodes — including strings needing JSON escaping.
var allKindEvents = []Event{
	{T: 1, Kind: KSpanBegin, Name: "lexer_bootstrap"},
	{T: 2, Kind: KSpanBegin, Name: "assembler_bisection", Phase: "lexer_bootstrap"},
	{T: 3, Kind: KSpanEnd, Name: "assembler_bisection", Dur: 1},
	{T: 4, Kind: KProbe, Name: "compile", Phase: "lexer_bootstrap", Dur: 5, Detail: OutcomeOK},
	{T: 5, Kind: KRetry, Name: "execute", Phase: "mutation_analysis", N: 2, Dur: 2000000},
	{T: 6, Kind: KQuorum, Name: "escalation", Phase: "mutation_analysis", N: 3},
	{T: 7, Kind: KDrop, Name: "int.div.b_c", Phase: "mutation_analysis", Detail: `SA015: "quoted"\backslash` + "\n\ttabbed\rcr\x01ctl"},
	{T: 8, Kind: KCounter, Name: "probe.attempts", N: 42},
	{T: 9, Kind: KHist, Name: "probe.attempt_ns", N: 10, Dur: 100, Detail: "0:3 1024:7"},
}

// TestJSONLSchemaAllKinds pushes one event of every kind through the
// JSONL encoding and validates each line against the exported Schema:
// valid JSON, required fields present, nothing outside required+optional,
// and values surviving the escaping round trip.
func TestJSONLSchemaAllKinds(t *testing.T) {
	covered := map[string]bool{}
	for _, e := range allKindEvents {
		line := e.AppendJSONL(nil)
		var fields map[string]any
		if err := json.Unmarshal(line, &fields); err != nil {
			t.Fatalf("%s: invalid JSON %q: %v", e.Kind, line, err)
		}
		kind, _ := fields["kind"].(string)
		schema, ok := Schema[kind]
		if !ok {
			t.Fatalf("kind %q missing from Schema", kind)
		}
		covered[kind] = true
		allowed := map[string]bool{}
		for _, f := range schema.Required {
			if _, present := fields[f]; !present {
				t.Errorf("%s: missing required %q in %s", kind, f, line)
			}
			allowed[f] = true
		}
		for _, f := range schema.Optional {
			allowed[f] = true
		}
		for f := range fields {
			if !allowed[f] {
				t.Errorf("%s: field %q outside schema in %s", kind, f, line)
			}
		}
		if name, _ := fields["name"].(string); name != e.Name {
			t.Errorf("%s: name round trip %q != %q", kind, name, e.Name)
		}
		if e.Kind.hasDetail() {
			if detail, _ := fields["detail"].(string); detail != e.Detail {
				t.Errorf("%s: detail round trip %q != %q", kind, detail, e.Detail)
			}
		}
	}
	for kind := range Schema {
		if !covered[kind] {
			t.Errorf("no fixture event for kind %q", kind)
		}
	}
}

// TestJSONLSinkStreamBytes pins the exact serialized form of a simple
// stream — field order included, which is what byte-stability rests on.
func TestJSONLSinkStreamBytes(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	tr := New(nil, sink)
	_ = tr.Phase("p", func() error { return nil })
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	want := `{"t":1000,"kind":"span_begin","name":"p"}
{"t":2000,"kind":"span_end","name":"p","dur":1000}
`
	if buf.String() != want {
		t.Errorf("stream bytes:\n%q\nwant:\n%q", buf.String(), want)
	}
}

// TestChromeSinkValidJSON emits every kind through the Chrome sink and
// checks the result parses as a trace-event JSON array.
func TestChromeSinkValidJSON(t *testing.T) {
	var buf bytes.Buffer
	sink := NewChromeSink(&buf)
	for _, e := range allKindEvents {
		sink.Emit(e)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("chrome output is not a JSON array: %v\n%s", err, buf.String())
	}
	if len(events) != len(allKindEvents) {
		t.Fatalf("got %d trace events, want %d", len(events), len(allKindEvents))
	}
	if ph, _ := events[0]["ph"].(string); ph != "B" {
		t.Errorf("span_begin rendered ph=%q, want B", ph)
	}
	// Timestamps are ns rendered as µs with three decimals.
	if ts, _ := events[0]["ts"].(float64); ts != 0.001 {
		t.Errorf("ts = %v, want 0.001 (1ns)", ts)
	}
}

// TestChromeSinkEmptyStream must still close a valid (empty) array.
func TestChromeSinkEmptyStream(t *testing.T) {
	var buf bytes.Buffer
	sink := NewChromeSink(&buf)
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	var events []any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil || len(events) != 0 {
		t.Errorf("empty stream: %q (err %v)", buf.String(), err)
	}
}

// TestHistBuckets pins the power-of-two bucketing and rendering.
func TestHistBuckets(t *testing.T) {
	tr := New(nil)
	for _, v := range []int64{0, 1, 2, 3, 1024, 1500, -5} {
		tr.Observe("h", v)
	}
	hists := tr.Hists()
	if len(hists) != 1 {
		t.Fatalf("got %d hists", len(hists))
	}
	h := hists[0]
	if h.Count != 7 {
		t.Errorf("count = %d, want 7", h.Count)
	}
	if h.Sum != 0+1+2+3+1024+1500-5 {
		t.Errorf("sum = %d", h.Sum)
	}
	// 0, -5 → bucket 0 (low 0); 1 → low 1; 2,3 → low 2; 1024,1500 → low 1024.
	s := h.bucketString()
	for _, wantPart := range []string{"0:2", "1:1", "2:2", "1024:2"} {
		if !strings.Contains(s, wantPart) {
			t.Errorf("bucketString %q missing %q", s, wantPart)
		}
	}
}

// TestCountersSortedSnapshot pins deterministic counter ordering.
func TestCountersSortedSnapshot(t *testing.T) {
	tr := New(nil)
	tr.Count("z", 1)
	tr.Count("a", 2)
	tr.Count("m", 3)
	tr.Count("a", 2)
	cs := tr.Counters()
	if len(cs) != 3 || cs[0].Name != "a" || cs[1].Name != "m" || cs[2].Name != "z" {
		t.Fatalf("counters not sorted: %+v", cs)
	}
	if cs[0].Value != 4 {
		t.Errorf("a = %d, want 4", cs[0].Value)
	}
}

// TestFlushEmitsCountersAndHists pins the stream tail: Flush appends one
// counter event per counter and one hist event per histogram, sorted.
func TestFlushEmitsCountersAndHists(t *testing.T) {
	var buf bytes.Buffer
	tr := New(nil, NewJSONLSink(&buf))
	tr.Count("b", 2)
	tr.Count("a", 1)
	tr.Observe("h", 5)
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3: %v", len(lines), lines)
	}
	if !strings.Contains(lines[0], `"name":"a"`) || !strings.Contains(lines[1], `"name":"b"`) {
		t.Errorf("counters not sorted in stream: %v", lines)
	}
	if !strings.Contains(lines[2], `"kind":"hist"`) {
		t.Errorf("hist event missing: %v", lines)
	}
}

// TestGaugeAbsoluteAndUnsealed pins gauge semantics: Gauge sets an
// absolute level (no accumulation), the level is visible through
// Counter()/Counters(), and unsealed names — the probe.cache_* occupancy
// gauges among them — never reach the Flush tail, so a warm-cache run
// flushes the same stream as the cold run that filled the cache.
func TestGaugeAbsoluteAndUnsealed(t *testing.T) {
	var buf bytes.Buffer
	tr := New(nil, NewJSONLSink(&buf))
	tr.Gauge("probe.cache_entries", 4)
	tr.Gauge("probe.cache_entries", 7) // re-set, not += — occupancy is a level
	tr.Gauge("probe.cache_bytes", 1024)
	tr.Count("sealed.work", 1)
	if v := tr.Counter("probe.cache_entries"); v != 7 {
		t.Errorf("gauge = %d, want the latest level 7", v)
	}
	names := map[string]bool{}
	for _, cs := range tr.Counters() {
		names[cs.Name] = true
	}
	if !names["probe.cache_entries"] || !names["probe.cache_bytes"] {
		t.Errorf("gauges missing from Counters(): %v", names)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "probe.cache_") {
		t.Errorf("unsealed gauge leaked into the Flush tail:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "sealed.work") {
		t.Errorf("sealed counter missing from the Flush tail:\n%s", buf.String())
	}
}

// TestFormatPhaseTable pins the summary rendering contract: empty input
// renders "", and shares sum to 100%.
func TestFormatPhaseTable(t *testing.T) {
	if s := FormatPhaseTable(nil); s != "" {
		t.Errorf("empty summary rendered %q", s)
	}
	s := FormatPhaseTable([]PhaseStat{
		{Name: "a", Spans: 1, Total: 3 * time.Millisecond, Self: 3 * time.Millisecond, Probes: 10},
		{Name: "b", Spans: 2, Total: time.Millisecond, Self: time.Millisecond, Probes: 5},
	})
	if !strings.HasPrefix(s, "phase attribution:\n") {
		t.Errorf("missing header: %q", s)
	}
	if !strings.Contains(s, "75.0%") || !strings.Contains(s, "25.0%") {
		t.Errorf("shares wrong: %q", s)
	}
}
