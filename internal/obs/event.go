package obs

import (
	"strconv"
	"time"
)

// Kind enumerates the event taxonomy. Every event in a trace is one of
// these; the Schema table states which fields each kind carries, and the
// schema-validation test holds every emitted line to it.
type Kind uint8

const (
	// KSpanBegin opens a phase span. Name is the phase; Phase is the
	// enclosing span ("" at top level).
	KSpanBegin Kind = iota
	// KSpanEnd closes the innermost span. Name is the phase; Dur is the
	// span's inclusive duration.
	KSpanEnd
	// KProbe records one physical toolchain call at the probe.Prober
	// choke point. Name is the op (compile, assemble, link, execute),
	// Detail its outcome (ok, transient, permanent), Dur its duration.
	KProbe
	// KRetry records a re-attempt after a transient fault. Name is the
	// op, N the 1-based retry index, Dur the scheduled backoff.
	KRetry
	// KQuorum records an output-quorum escalation: two runs of one
	// program disagreed, raising the agreement bar. N is the run count
	// at escalation.
	KQuorum
	// KDrop records a sample abandoned by the checker gate (SA015).
	// Name is the sample, Detail the condemning diagnostic.
	KDrop
	// KCounter is a final counter value, emitted once per counter on
	// Flush in sorted name order. N is the value.
	KCounter
	// KHist is a final histogram snapshot, emitted on Flush. N is the
	// observation count, Dur the sum, Detail the non-empty power-of-two
	// buckets.
	KHist
	kindCount // sentinel
)

var kindNames = [kindCount]string{
	KSpanBegin: "span_begin",
	KSpanEnd:   "span_end",
	KProbe:     "probe",
	KRetry:     "retry",
	KQuorum:    "quorum",
	KDrop:      "drop",
	KCounter:   "counter",
	KHist:      "hist",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one telemetry record. Field usage varies by Kind (see the
// Kind constants and Schema); unused fields are omitted from the JSONL
// encoding so every line is minimal and deterministic.
type Event struct {
	T      time.Duration // virtual timestamp (ns since trace epoch)
	Kind   Kind
	Name   string        // phase, op, sample, counter, or histogram name
	Phase  string        // innermost enclosing phase at emit time
	N      int64         // retry index, quorum runs, counter value, hist count
	Dur    time.Duration // span/probe duration, backoff, hist sum
	Detail string        // probe outcome, drop reason, hist buckets
}

// FieldSchema states which JSONL fields one event kind carries.
type FieldSchema struct {
	Required []string
	Optional []string
}

// Schema is the event taxonomy's field contract, keyed by Kind string.
// The trace tests validate every emitted line against it: required
// fields must be present, and no field outside required+optional may
// appear.
var Schema = map[string]FieldSchema{
	"span_begin": {Required: []string{"t", "kind", "name"}, Optional: []string{"phase"}},
	"span_end":   {Required: []string{"t", "kind", "name", "dur"}},
	"probe":      {Required: []string{"t", "kind", "name", "dur", "detail"}, Optional: []string{"phase"}},
	"retry":      {Required: []string{"t", "kind", "name", "n", "dur"}, Optional: []string{"phase"}},
	"quorum":     {Required: []string{"t", "kind", "name", "n"}, Optional: []string{"phase"}},
	"drop":       {Required: []string{"t", "kind", "name", "detail"}, Optional: []string{"phase"}},
	"counter":    {Required: []string{"t", "kind", "name", "n"}},
	"hist":       {Required: []string{"t", "kind", "name", "n", "dur", "detail"}},
}

// hasN / hasDur / hasDetail: which kinds encode which optional-looking
// fields. Values of 0 / "" are still emitted for these kinds — presence
// is a function of the kind alone, so the schema stays checkable.
func (k Kind) hasN() bool      { return k == KRetry || k == KQuorum || k == KCounter || k == KHist }
func (k Kind) hasDur() bool    { return k == KSpanEnd || k == KProbe || k == KRetry || k == KHist }
func (k Kind) hasDetail() bool { return k == KProbe || k == KDrop || k == KHist }
func (k Kind) hasPhase() bool {
	return k == KSpanBegin || k == KProbe || k == KRetry || k == KQuorum || k == KDrop
}

// AppendJSONL appends the event's one-line JSON encoding (no trailing
// newline) to buf and returns the extended slice. The field order is
// fixed (t, kind, name, phase, n, dur, detail) and the encoding is
// hand-rolled so the byte stream is identical across Go versions and
// allocation stays in the caller's reused buffer.
func (e Event) AppendJSONL(buf []byte) []byte {
	buf = append(buf, `{"t":`...)
	buf = strconv.AppendInt(buf, int64(e.T), 10)
	buf = append(buf, `,"kind":"`...)
	buf = append(buf, e.Kind.String()...)
	buf = append(buf, `","name":`...)
	buf = appendQuoted(buf, e.Name)
	if e.Kind.hasPhase() && e.Phase != "" {
		buf = append(buf, `,"phase":`...)
		buf = appendQuoted(buf, e.Phase)
	}
	if e.Kind.hasN() {
		buf = append(buf, `,"n":`...)
		buf = strconv.AppendInt(buf, e.N, 10)
	}
	if e.Kind.hasDur() {
		buf = append(buf, `,"dur":`...)
		buf = strconv.AppendInt(buf, int64(e.Dur), 10)
	}
	if e.Kind.hasDetail() {
		buf = append(buf, `,"detail":`...)
		buf = appendQuoted(buf, e.Detail)
	}
	return append(buf, '}')
}

// appendQuoted appends s as a JSON string literal. Only the escapes JSON
// requires are applied (quote, backslash, control characters); the rest
// of the byte stream passes through untouched so the encoding is a pure
// function of the input.
func appendQuoted(buf []byte, s string) []byte {
	buf = append(buf, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"':
			buf = append(buf, '\\', '"')
		case c == '\\':
			buf = append(buf, '\\', '\\')
		case c == '\n':
			buf = append(buf, '\\', 'n')
		case c == '\t':
			buf = append(buf, '\\', 't')
		case c == '\r':
			buf = append(buf, '\\', 'r')
		case c < 0x20:
			const hex = "0123456789abcdef"
			buf = append(buf, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
		default:
			buf = append(buf, c)
		}
	}
	return append(buf, '"')
}
