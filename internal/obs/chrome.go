package obs

import (
	"bufio"
	"io"
	"strconv"
)

// ChromeSink streams the trace in Chrome trace-event format (the JSON
// array flavor), loadable in Perfetto / chrome://tracing for flame-style
// inspection: phase spans become B/E duration events, probe-level events
// become instants with args, and Flush appends final counter values as C
// events. Timestamps are the tracer clock's nanoseconds rendered as
// microseconds, so a VirtualClock yields a deterministic file here too.
type ChromeSink struct {
	w     *bufio.Writer
	buf   []byte
	first bool
	err   error
}

// NewChromeSink writes trace-event JSON to w.
func NewChromeSink(w io.Writer) *ChromeSink {
	return &ChromeSink{w: bufio.NewWriter(w), first: true}
}

// Emit converts and writes one event. Errors latch; Flush reports them.
func (s *ChromeSink) Emit(e Event) {
	if s.err != nil {
		return
	}
	b := s.buf[:0]
	if s.first {
		b = append(b, "[\n"...)
		s.first = false
	} else {
		b = append(b, ",\n"...)
	}
	b = append(b, `{"pid":1,"tid":1,"ts":`...)
	b = appendMicros(b, int64(e.T))
	switch e.Kind {
	case KSpanBegin:
		b = append(b, `,"ph":"B","cat":"phase","name":`...)
		b = appendQuoted(b, e.Name)
	case KSpanEnd:
		b = append(b, `,"ph":"E","cat":"phase","name":`...)
		b = appendQuoted(b, e.Name)
	case KCounter:
		b = append(b, `,"ph":"C","name":`...)
		b = appendQuoted(b, e.Name)
		b = append(b, `,"args":{"value":`...)
		b = strconv.AppendInt(b, e.N, 10)
		b = append(b, `}`...)
	default: // probe, retry, quorum, drop, hist → instant events with args
		b = append(b, `,"ph":"i","s":"t","cat":`...)
		b = appendQuoted(b, e.Kind.String())
		b = append(b, `,"name":`...)
		b = appendQuoted(b, e.Name)
		b = append(b, `,"args":{`...)
		sep := false
		if e.Kind.hasN() {
			b = append(b, `"n":`...)
			b = strconv.AppendInt(b, e.N, 10)
			sep = true
		}
		if e.Kind.hasDur() {
			if sep {
				b = append(b, ',')
			}
			b = append(b, `"dur_ns":`...)
			b = strconv.AppendInt(b, int64(e.Dur), 10)
			sep = true
		}
		if e.Kind.hasDetail() {
			if sep {
				b = append(b, ',')
			}
			b = append(b, `"detail":`...)
			b = appendQuoted(b, e.Detail)
		}
		b = append(b, '}')
	}
	b = append(b, '}')
	s.buf = b
	if _, err := s.w.Write(b); err != nil {
		s.err = err
	}
}

// Flush closes the JSON array and drains the writer.
func (s *ChromeSink) Flush() error {
	if s.err != nil {
		return s.err
	}
	if s.first {
		s.first = false
		if _, err := s.w.WriteString("["); err != nil {
			return err
		}
	}
	if _, err := s.w.WriteString("\n]\n"); err != nil {
		return err
	}
	return s.w.Flush()
}

// appendMicros renders a nanosecond count as decimal microseconds with
// three fractional digits — the trace-event ts unit — without going
// through floating point, keeping the bytes exact.
func appendMicros(b []byte, v int64) []byte {
	b = strconv.AppendInt(b, v/1000, 10)
	frac := v % 1000
	if frac < 0 {
		frac = -frac
	}
	b = append(b, '.')
	b = append(b, byte('0'+frac/100), byte('0'+(frac/10)%10), byte('0'+frac%10))
	return b
}
