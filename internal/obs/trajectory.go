package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Trajectory mirrors BENCH_discover.json: an append-only series of
// benchmark runs, one entry per recording, each mapping target/variant
// keys ("vax/clean") to measured results. cmd/benchdiff compares two of
// these — the cross-PR comparison step the bench trajectory was started
// for.
type Trajectory struct {
	Benchmark   string          `json:"benchmark"`
	Description string          `json:"description,omitempty"`
	Runs        []TrajectoryRun `json:"runs"`
}

// TrajectoryRun is one recorded benchmark run.
type TrajectoryRun struct {
	Date    string                      `json:"date,omitempty"`
	Go      string                      `json:"go,omitempty"`
	CPU     string                      `json:"cpu,omitempty"`
	Results map[string]TrajectoryResult `json:"results"`
}

// TrajectoryResult is one target/variant's measurements. Phases maps
// phase name → exclusive nanoseconds (the obs phase attribution).
type TrajectoryResult struct {
	NsPerOp    float64            `json:"ns_per_op"`
	Executions float64            `json:"executions,omitempty"`
	Attempts   float64            `json:"attempts,omitempty"`
	Retries    float64            `json:"retries,omitempty"`
	Solved     float64            `json:"solved,omitempty"`
	Phases     map[string]float64 `json:"phases,omitempty"`
}

// ParseTrajectory decodes a trajectory file.
func ParseTrajectory(data []byte) (*Trajectory, error) {
	var t Trajectory
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("trajectory: %w", err)
	}
	if len(t.Runs) == 0 {
		return nil, fmt.Errorf("trajectory: no runs recorded")
	}
	return &t, nil
}

// Last returns the most recent run.
func (t *Trajectory) Last() TrajectoryRun { return t.Runs[len(t.Runs)-1] }

// Delta statuses: a row compared against a baseline carries the empty
// status; a target or phase present in only one run is reported as
// added (new run only) or removed (baseline only) instead of being
// silently dropped — a renamed phase or a new target in a trajectory
// is itself a finding.
const (
	DeltaAdded   = "added"
	DeltaRemoved = "removed"
)

// Delta is one compared measurement. Phase is "" for the whole-run
// ns_per_op row. Ratio is new/old; Regressed marks ratios beyond the
// diff threshold. Status is "" for compared rows, DeltaAdded/DeltaRemoved
// for baseline-free rows (which are never Regressed — there is nothing
// to regress against).
type Delta struct {
	Target    string
	Phase     string
	Old, New  float64
	Ratio     float64
	Regressed bool
	Status    string
}

// DiffRuns compares two runs target by target and phase by phase.
// threshold is the regression ratio margin: a measurement counts as
// regressed when new > old*(1+threshold). Targets or phases present in
// only one run become added/removed rows; the deltas come back sorted
// by target then phase, whole-run rows first.
func DiffRuns(old, new TrajectoryRun, threshold float64) []Delta {
	var out []Delta
	targetSet := map[string]bool{}
	for name := range old.Results {
		targetSet[name] = true
	}
	for name := range new.Results {
		targetSet[name] = true
	}
	targets := make([]string, 0, len(targetSet))
	for name := range targetSet {
		targets = append(targets, name)
	}
	sort.Strings(targets)
	for _, name := range targets {
		o, inOld := old.Results[name]
		n, inNew := new.Results[name]
		switch {
		case !inOld:
			out = append(out, Delta{Target: name, New: n.NsPerOp, Ratio: 1, Status: DeltaAdded})
			continue
		case !inNew:
			out = append(out, Delta{Target: name, Old: o.NsPerOp, Ratio: 1, Status: DeltaRemoved})
			continue
		}
		out = append(out, makeDelta(name, "", o.NsPerOp, n.NsPerOp, threshold))
		phaseSet := map[string]bool{}
		for ph := range o.Phases {
			phaseSet[ph] = true
		}
		for ph := range n.Phases {
			phaseSet[ph] = true
		}
		phases := make([]string, 0, len(phaseSet))
		for ph := range phaseSet {
			phases = append(phases, ph)
		}
		sort.Strings(phases)
		for _, ph := range phases {
			ov, inO := o.Phases[ph]
			nv, inN := n.Phases[ph]
			switch {
			case !inO:
				out = append(out, Delta{Target: name, Phase: ph, New: nv, Ratio: 1, Status: DeltaAdded})
			case !inN:
				out = append(out, Delta{Target: name, Phase: ph, Old: ov, Ratio: 1, Status: DeltaRemoved})
			default:
				out = append(out, makeDelta(name, ph, ov, nv, threshold))
			}
		}
	}
	return out
}

func makeDelta(target, phase string, old, new, threshold float64) Delta {
	d := Delta{Target: target, Phase: phase, Old: old, New: new}
	if old > 0 {
		d.Ratio = new / old
	} else if new > 0 {
		d.Ratio = math.Inf(1)
	} else {
		d.Ratio = 1
	}
	d.Regressed = d.Ratio > 1+threshold
	return d
}

// Regressions filters a diff down to the regressed rows.
func Regressions(deltas []Delta) []Delta {
	var out []Delta
	for _, d := range deltas {
		if d.Regressed {
			out = append(out, d)
		}
	}
	return out
}

// FormatDiff renders a diff as a human-readable table: one block per
// target, whole-run row first, indented per-phase rows after, regressed
// rows tagged. Durations render in milliseconds for readability.
func FormatDiff(deltas []Delta) string {
	if len(deltas) == 0 {
		return "benchdiff: no comparable targets\n"
	}
	var sb strings.Builder
	for _, d := range deltas {
		label := d.Target
		if d.Phase != "" {
			label = "  " + d.Phase
		}
		switch d.Status {
		case DeltaAdded:
			fmt.Fprintf(&sb, "%-28s %12s -> %12.1fms  (no baseline: added)\n",
				label, "-", d.New/1e6)
			continue
		case DeltaRemoved:
			fmt.Fprintf(&sb, "%-28s %12.1fms -> %12s  (gone in new run: removed)\n",
				label, d.Old/1e6, "-")
			continue
		}
		tag := ""
		if d.Regressed {
			tag = "  REGRESSION"
		}
		fmt.Fprintf(&sb, "%-28s %12.1fms -> %12.1fms  %+6.1f%%%s\n",
			label, d.Old/1e6, d.New/1e6, 100*(d.Ratio-1), tag)
	}
	return sb.String()
}
