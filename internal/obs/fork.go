package obs

import (
	"strings"
	"time"
)

// Fork/Drain/Join are the telemetry half of the parallel probe engine:
// a unit of probe work (one pooled task, one logical probe) runs against
// a forked tracer — a fresh virtual clock plus a recording sink — and its
// finished bundle is joined back into the parent in a deterministic
// order. Because every unit's internal timeline is a pure function of its
// own call sequence, and the parent replays bundles in task order, the
// parent's event stream is byte-identical at any worker count. The same
// bundle, memoized by the probe cache, replays on a cache hit, so a warm
// run's stream matches the cold run byte for byte.

// Recorder is the sink behind a forked tracer: it buffers events until
// Drain packages them into a Replay.
type Recorder struct {
	events []Event
}

// Emit appends the event to the buffer (driven under the tracer's lock).
func (r *Recorder) Emit(e Event) { r.events = append(r.events, e) }

// Flush is a no-op; a fork's state leaves through Drain, never Flush.
func (r *Recorder) Flush() error { return nil }

// Replay is one drained fork bundle: the events with fork-relative
// timestamps, the virtual time the fork consumed, and its counter and
// histogram state. A Replay is immutable once drained — the probe cache
// shares one across goroutines.
type Replay struct {
	Events   []Event
	Elapsed  time.Duration
	Counters []CounterStat
	Hists    []HistStat
}

// Elapsed reads the clock's current position without ticking it.
func (c *VirtualClock) Elapsed() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Fork returns a child tracer on a fresh VirtualClock with a recording
// sink. The child is independent — its own clock, counters, histograms —
// so concurrent forks never contend; Drain+Join fold it back. Forks of a
// wall-clock tracer still run on virtual time: real time stays attached
// only at the parent's edges.
func (t *Tracer) Fork() *Tracer {
	if t == nil {
		return nil
	}
	rec := &Recorder{}
	f := New(NewVirtualClock(), rec)
	f.rec = rec
	return f
}

// Drain packages a forked tracer's accumulated state into a Replay and
// resets the recording buffer. Only tracers made by Fork can drain;
// Drain on anything else returns nil.
func (t *Tracer) Drain() *Replay {
	if t == nil || t.rec == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var elapsed time.Duration
	if c, ok := t.clock.(*VirtualClock); ok {
		elapsed = c.Elapsed()
	}
	r := &Replay{
		Events:   t.rec.events,
		Elapsed:  elapsed,
		Counters: t.countersLocked(),
		Hists:    t.histsLocked(),
	}
	t.rec.events = nil
	return r
}

// Join folds a drained bundle into t: events are re-stamped onto t's
// timeline (base + fork-relative time) and re-attributed to t's innermost
// open phase, counters and histograms merge, and the clock absorbs the
// fork's elapsed virtual time. Callers join bundles in task order —
// that ordering is what makes the stream worker-count-invariant. A nil
// Replay (skipped task, nothing drained) is a no-op.
func (t *Tracer) Join(r *Replay) {
	if t == nil || r == nil {
		return
	}
	t.mu.Lock()
	base := t.clock.Now()
	ph := t.current()
	for _, e := range r.Events {
		e.T += base
		if e.Phase == "" && e.Kind.hasPhase() {
			e.Phase = ph
			if e.Kind == KProbe && ph != "" {
				t.phaseLocked(ph).Probes++
			}
		}
		t.emit(e)
	}
	for _, c := range r.Counters {
		t.counters[c.Name] += c.Value
	}
	for _, h := range r.Hists {
		hh, ok := t.hists[h.Name]
		if !ok {
			hh = &Hist{}
			t.hists[h.Name] = hh
		}
		hh.merge(h)
	}
	if a, ok := t.clock.(advancer); ok {
		a.Advance(r.Elapsed)
	}
	t.mu.Unlock()
}

// Unsealed reports whether a counter or histogram describes the execution
// strategy (cache state, pool shape) rather than the discovery itself.
// Unsealed names are visible through Counters()/Report but are never
// emitted into the Flush tail of the event stream: a warm-cache run and a
// cold run must produce byte-identical traces even though their hit
// counts differ.
func Unsealed(name string) bool {
	return strings.HasPrefix(name, "probe.cache_") ||
		strings.HasPrefix(name, "probe.pool_")
}
