package obs

import (
	"context"
	"runtime/pprof"
	"sort"
	"sync"
	"time"
)

// Canonical phase names. The pipeline's spans use these so traces,
// summary tables, and bench trajectories agree on spelling.
const (
	PhaseLexerBootstrap     = "lexer_bootstrap"
	PhaseAssemblerBisection = "assembler_bisection"
	PhaseMutationAnalysis   = "mutation_analysis"
	PhaseReverseInterp      = "reverse_interpretation"
	PhaseSynthesis          = "md_synthesis"
	PhaseValidation         = "validation"
)

// Probe outcome strings for KProbe events.
const (
	OutcomeOK        = "ok"
	OutcomeTransient = "transient"
	OutcomePermanent = "permanent"
)

// Sink consumes the event stream. Sinks are driven under the Tracer's
// lock, in emit order, from whatever goroutine the pipeline runs on —
// they need no locking of their own and must not call back into the
// Tracer.
type Sink interface {
	Emit(Event)
	Flush() error
}

// Tracer is the telemetry hub: it stamps events from the injected Clock,
// tracks the phase-span stack, attributes probe work to the innermost
// open phase, and owns the named counters and histograms. A nil *Tracer
// is a valid no-op on every method, and the zero cost of an unused
// tracer is one branch. Safe for concurrent use.
type Tracer struct {
	mu     sync.Mutex
	clock  Clock
	sinks  []Sink
	events int64
	// rec is set on tracers made by Fork: the recording sink Drain
	// packages into a Replay.
	rec *Recorder

	stack    []spanFrame
	counters map[string]int64
	hists    map[string]*Hist
	phases   map[string]*PhaseStat
	order    []string // phases in first-open order
}

// spanFrame is one open phase span.
type spanFrame struct {
	name  string
	start time.Duration
	child time.Duration // inclusive time of completed child spans
}

// PhaseStat aggregates one phase across all its spans.
type PhaseStat struct {
	Name   string
	Spans  int
	Total  time.Duration // inclusive (contains nested spans)
	Self   time.Duration // exclusive
	Probes int64         // physical toolchain attempts attributed here
}

// New builds a tracer on the given clock (nil means a fresh
// VirtualClock) emitting to the given sinks (none is fine: counters,
// histograms, and phase attribution still accumulate).
func New(clock Clock, sinks ...Sink) *Tracer {
	if clock == nil {
		clock = NewVirtualClock()
	}
	return &Tracer{
		clock:    clock,
		sinks:    sinks,
		counters: map[string]int64{},
		hists:    map[string]*Hist{},
		phases:   map[string]*PhaseStat{},
	}
}

// Now reads the tracer's clock (virtual or wall, per injection).
func (t *Tracer) Now() time.Duration {
	if t == nil {
		return 0
	}
	return t.clock.Now()
}

// Advance absorbs a scheduled duration into a virtual clock; on a wall
// clock (where the caller actually slept) it is a no-op.
func (t *Tracer) Advance(d time.Duration) {
	if t == nil {
		return
	}
	if a, ok := t.clock.(advancer); ok {
		a.Advance(d)
	}
}

// Events returns how many events have been emitted so far.
func (t *Tracer) Events() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.events
}

// emit fans an event out to the sinks. Caller holds t.mu.
func (t *Tracer) emit(e Event) {
	t.events++
	for _, s := range t.sinks {
		s.Emit(e)
	}
}

// Phase runs fn inside a named span: a span_begin/span_end event pair,
// phase attribution for every probe event emitted inside, and pprof
// labels ("srcg_phase") so CPU profiles break down by phase too. Spans
// nest; a child's inclusive time is excluded from the parent's Self.
func (t *Tracer) Phase(name string, fn func() error) error {
	if t == nil {
		return fn()
	}
	t.begin(name)
	var err error
	pprof.Do(context.Background(), pprof.Labels("srcg_phase", name), func(context.Context) {
		err = fn()
	})
	t.end()
	return err
}

func (t *Tracer) begin(name string) {
	t.mu.Lock()
	now := t.clock.Now()
	parent := ""
	if n := len(t.stack); n > 0 {
		parent = t.stack[n-1].name
	}
	t.stack = append(t.stack, spanFrame{name: name, start: now})
	t.emit(Event{T: now, Kind: KSpanBegin, Name: name, Phase: parent})
	t.mu.Unlock()
}

func (t *Tracer) end() {
	t.mu.Lock()
	now := t.clock.Now()
	n := len(t.stack)
	if n == 0 {
		t.mu.Unlock()
		return
	}
	f := t.stack[n-1]
	t.stack = t.stack[:n-1]
	total := now - f.start
	if n > 1 {
		t.stack[n-2].child += total
	}
	ps := t.phaseLocked(f.name)
	ps.Spans++
	ps.Total += total
	ps.Self += total - f.child
	t.emit(Event{T: now, Kind: KSpanEnd, Name: f.name, Dur: total})
	t.mu.Unlock()
}

// phaseLocked returns (creating if needed) the aggregate for a phase.
// Caller holds t.mu.
func (t *Tracer) phaseLocked(name string) *PhaseStat {
	ps, ok := t.phases[name]
	if !ok {
		ps = &PhaseStat{Name: name}
		t.phases[name] = ps
		t.order = append(t.order, name)
	}
	return ps
}

// current returns the innermost open phase name. Caller holds t.mu.
func (t *Tracer) current() string {
	if n := len(t.stack); n > 0 {
		return t.stack[n-1].name
	}
	return ""
}

// ProbeEvent records one physical toolchain call: op is compile,
// assemble, link, or execute; outcome is ok, transient, or permanent.
// The call is attributed to the innermost open phase.
func (t *Tracer) ProbeEvent(op, outcome string, dur time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	now := t.clock.Now()
	ph := t.current()
	if ph != "" {
		t.phaseLocked(ph).Probes++
	}
	t.emit(Event{T: now, Kind: KProbe, Name: op, Phase: ph, Dur: dur, Detail: outcome})
	t.mu.Unlock()
}

// RetryEvent records a re-attempt after a transient fault: attempt is
// the 1-based retry index, backoff the scheduled (virtual) wait.
func (t *Tracer) RetryEvent(op string, attempt int, backoff time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.emit(Event{T: t.clock.Now(), Kind: KRetry, Name: op, Phase: t.current(),
		N: int64(attempt), Dur: backoff})
	t.mu.Unlock()
}

// QuorumEscalation records two runs of one program disagreeing, raising
// the output-quorum bar; runs is the execution count at escalation.
func (t *Tracer) QuorumEscalation(runs int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.emit(Event{T: t.clock.Now(), Kind: KQuorum, Name: "escalation",
		Phase: t.current(), N: int64(runs)})
	t.mu.Unlock()
}

// DropEvent records a sample abandoned by the checker gate (SA015).
func (t *Tracer) DropEvent(sample, reason string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.emit(Event{T: t.clock.Now(), Kind: KDrop, Name: sample,
		Phase: t.current(), Detail: reason})
	t.mu.Unlock()
}

// Count adds delta to a named counter.
func (t *Tracer) Count(name string, delta int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.counters[name] += delta
	t.mu.Unlock()
}

// Gauge sets a named counter to an absolute value — occupancy-style
// telemetry (cache entries, resident bytes) where the latest level, not
// an accumulated delta, is the fact. Gauges live in the counter table,
// so Unsealed naming rules decide their trace visibility like any
// counter's.
func (t *Tracer) Gauge(name string, v int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.counters[name] = v
	t.mu.Unlock()
}

// Counter reads a named counter (0 if never written).
func (t *Tracer) Counter(name string) int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.counters[name]
}

// Observe adds one value to a named histogram.
func (t *Tracer) Observe(name string, v int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	h, ok := t.hists[name]
	if !ok {
		h = &Hist{}
		t.hists[name] = h
	}
	h.observe(v)
	t.mu.Unlock()
}

// Counters snapshots every counter, sorted by name.
func (t *Tracer) Counters() []CounterStat {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.countersLocked()
}

// CounterStat is one counter snapshot.
type CounterStat struct {
	Name  string
	Value int64
}

func (t *Tracer) countersLocked() []CounterStat {
	names := make([]string, 0, len(t.counters))
	for name := range t.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]CounterStat, 0, len(names))
	for _, name := range names {
		out = append(out, CounterStat{Name: name, Value: t.counters[name]})
	}
	return out
}

// Hists snapshots every histogram, sorted by name.
func (t *Tracer) Hists() []HistStat {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.histsLocked()
}

func (t *Tracer) histsLocked() []HistStat {
	names := make([]string, 0, len(t.hists))
	for name := range t.hists {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]HistStat, 0, len(names))
	for _, name := range names {
		h := t.hists[name]
		out = append(out, HistStat{Name: name, Count: h.count, Sum: h.sum, Buckets: h.buckets})
	}
	return out
}

// PhaseSummary returns per-phase aggregates in first-open order.
func (t *Tracer) PhaseSummary() []PhaseStat {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]PhaseStat, 0, len(t.order))
	for _, name := range t.order {
		out = append(out, *t.phases[name])
	}
	return out
}

// Flush seals the stream: final counter values and histogram snapshots
// are emitted (sorted by name, so the tail of the stream is as
// deterministic as the body), then every sink is flushed. Call once,
// after the traced work is done. Unsealed names — strategy counters like
// the probe cache's hit/miss split, which legitimately differ between a
// cold and a warm run — are reported through Counters()/Hists() only and
// never enter the sealed stream.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	for _, c := range t.countersLocked() {
		if Unsealed(c.Name) {
			continue
		}
		t.emit(Event{T: t.clock.Now(), Kind: KCounter, Name: c.Name, N: c.Value})
	}
	for _, h := range t.histsLocked() {
		if Unsealed(h.Name) {
			continue
		}
		t.emit(Event{T: t.clock.Now(), Kind: KHist, Name: h.Name,
			N: h.Count, Dur: time.Duration(h.Sum), Detail: h.bucketString()})
	}
	var err error
	for _, s := range t.sinks {
		if ferr := s.Flush(); err == nil {
			err = ferr
		}
	}
	t.mu.Unlock()
	return err
}
