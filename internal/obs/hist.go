package obs

import (
	"strconv"
)

// histBuckets is the bucket count: value v lands in bucket bits.Len(v),
// i.e. power-of-two buckets, with bucket 0 holding zero/negative values.
const histBuckets = 64

// Hist is an allocation-free power-of-two histogram over int64 values —
// durations in nanoseconds, candidate counts, whatever a call site
// observes. It is owned and locked by the Tracer.
type Hist struct {
	count   int64
	sum     int64
	buckets [histBuckets]int64
}

func (h *Hist) observe(v int64) {
	h.count++
	h.sum += v
	h.buckets[bucketOf(v)]++
}

// merge folds a drained snapshot (a fork's histogram, via Tracer.Join)
// into h.
func (h *Hist) merge(s HistStat) {
	h.count += s.Count
	h.sum += s.Sum
	for i, v := range s.Buckets {
		h.buckets[i] += v
	}
}

func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := 0
	for u := uint64(v); u != 0; u >>= 1 {
		b++
	}
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// BucketLow returns the inclusive lower bound of bucket b (0 for b==0).
func BucketLow(b int) int64 {
	if b <= 0 {
		return 0
	}
	return int64(1) << uint(b-1)
}

// HistStat is a histogram snapshot for summaries and Flush events.
type HistStat struct {
	Name    string
	Count   int64
	Sum     int64
	Buckets [histBuckets]int64
}

// bucketString renders the non-empty buckets compactly, lowest first:
// "0:3 1024:17 2048:4" — each key is the bucket's inclusive lower bound.
func (h HistStat) bucketString() string {
	var buf []byte
	for b := 0; b < histBuckets; b++ {
		if h.Buckets[b] == 0 {
			continue
		}
		if len(buf) > 0 {
			buf = append(buf, ' ')
		}
		buf = strconv.AppendInt(buf, BucketLow(b), 10)
		buf = append(buf, ':')
		buf = strconv.AppendInt(buf, h.Buckets[b], 10)
	}
	return string(buf)
}
