package obs

import (
	"bufio"
	"io"
)

// JSONLSink streams the trace as one JSON object per line — the `-trace
// out.jsonl` format. The encoding is hand-rolled with a fixed field
// order (see Event.AppendJSONL), so under a VirtualClock the whole file
// is byte-identical across double runs. The sink reuses one buffer per
// event; the Tracer serializes Emit calls.
type JSONLSink struct {
	w   *bufio.Writer
	buf []byte
	err error
}

// NewJSONLSink writes JSONL events to w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{w: bufio.NewWriter(w)}
}

// Emit writes one event line. Write errors are latched and surfaced by
// Flush — telemetry must never make the pipeline fail mid-run.
func (s *JSONLSink) Emit(e Event) {
	if s.err != nil {
		return
	}
	s.buf = e.AppendJSONL(s.buf[:0])
	s.buf = append(s.buf, '\n')
	if _, err := s.w.Write(s.buf); err != nil {
		s.err = err
	}
}

// Flush drains the buffered writer and reports any latched error.
func (s *JSONLSink) Flush() error {
	if s.err != nil {
		return s.err
	}
	return s.w.Flush()
}
