package obs

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestDiffRunsFlagsSyntheticRegression drives the benchdiff core over the
// committed synthetic fixture: run 2 triples vax's mutation_analysis
// phase, and exactly the regressed rows must be flagged.
func TestDiffRunsFlagsSyntheticRegression(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "regression_fixture.json"))
	if err != nil {
		t.Fatal(err)
	}
	traj, err := ParseTrajectory(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(traj.Runs) != 2 {
		t.Fatalf("fixture has %d runs, want 2", len(traj.Runs))
	}
	deltas := DiffRuns(traj.Runs[0], traj.Runs[1], 0.10)
	regressed := Regressions(deltas)

	wantRegressed := map[string]bool{
		"vax/clean|":                  true, // whole-run ns_per_op 0.5s -> 1.2s
		"vax/clean|mutation_analysis": true, // 0.3s -> 1.0s
	}
	got := map[string]bool{}
	for _, d := range regressed {
		got[d.Target+"|"+d.Phase] = true
	}
	for key := range wantRegressed {
		if !got[key] {
			t.Errorf("regression %q not flagged; flagged: %v", key, got)
		}
	}
	for key := range got {
		if !wantRegressed[key] {
			t.Errorf("spurious regression flagged: %q", key)
		}
	}
	// x86 improved slightly — its ratio must sit below 1.
	for _, d := range deltas {
		if d.Target == "x86/clean" && d.Phase == "" && d.Ratio >= 1 {
			t.Errorf("x86 whole-run ratio = %v, want < 1", d.Ratio)
		}
	}
	// The human rendering must carry the REGRESSION tag.
	rendered := FormatDiff(deltas)
	if !strings.Contains(rendered, "REGRESSION") {
		t.Errorf("FormatDiff output has no REGRESSION tag:\n%s", rendered)
	}
}

// TestDiffRunsEdgeCases pins baseline-free and zero-old behavior.
func TestDiffRunsEdgeCases(t *testing.T) {
	old := TrajectoryRun{Results: map[string]TrajectoryResult{
		"a": {NsPerOp: 100, Phases: map[string]float64{"p": 0, "r": 7}},
		"z": {NsPerOp: 5},
	}}
	new := TrajectoryRun{Results: map[string]TrajectoryResult{
		"a": {NsPerOp: 100, Phases: map[string]float64{"p": 50, "q": 10}},
		"b": {NsPerOp: 999},
	}}
	deltas := DiffRuns(old, new, 0.10)
	// Target b and phase q have no baseline: reported as added rows, not
	// silently dropped, and never flagged as regressions.
	status := map[string]string{}
	for _, d := range deltas {
		status[d.Target+"|"+d.Phase] = d.Status
		if d.Status != "" && d.Regressed {
			t.Errorf("baseline-free row flagged regressed: %+v", d)
		}
	}
	if status["b|"] != DeltaAdded {
		t.Errorf("new target b: status = %q, want %q", status["b|"], DeltaAdded)
	}
	if status["a|q"] != DeltaAdded {
		t.Errorf("new phase q: status = %q, want %q", status["a|q"], DeltaAdded)
	}
	if status["z|"] != DeltaRemoved {
		t.Errorf("gone target z: status = %q, want %q", status["z|"], DeltaRemoved)
	}
	if status["a|r"] != DeltaRemoved {
		t.Errorf("gone phase r: status = %q, want %q", status["a|r"], DeltaRemoved)
	}
	// The rendering marks baseline-free rows instead of inventing ratios.
	rendered := FormatDiff(deltas)
	if !strings.Contains(rendered, "added") || !strings.Contains(rendered, "removed") {
		t.Errorf("FormatDiff does not mark added/removed rows:\n%s", rendered)
	}
	// Phase p went 0 -> 50: infinite ratio, regressed.
	found := false
	for _, d := range deltas {
		if d.Phase == "p" {
			found = true
			if !math.IsInf(d.Ratio, 1) || !d.Regressed {
				t.Errorf("zero-baseline growth: %+v", d)
			}
		}
	}
	if !found {
		t.Error("phase p missing from diff")
	}
}

// TestParseTrajectoryRejectsEmpty pins the error contract.
func TestParseTrajectoryRejectsEmpty(t *testing.T) {
	if _, err := ParseTrajectory([]byte(`{"benchmark":"x","runs":[]}`)); err == nil {
		t.Error("no error for empty runs")
	}
	if _, err := ParseTrajectory([]byte(`not json`)); err == nil {
		t.Error("no error for invalid JSON")
	}
}
