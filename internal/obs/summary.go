package obs

import (
	"fmt"
	"strings"
	"time"
)

// FormatPhaseTable renders the phase-attribution summary merged into
// core.Report(): one line per phase with span count, exclusive (self)
// and inclusive (total) durations, the share of the run's self time,
// and the physical toolchain attempts attributed to the phase. Under a
// VirtualClock the durations are virtual (ticks + accounted backoff),
// so the table is byte-identical across double runs; under a WallClock
// (bench harness) they are real nanoseconds. Empty input renders "".
func FormatPhaseTable(phases []PhaseStat) string {
	if len(phases) == 0 {
		return ""
	}
	var selfSum time.Duration
	for _, p := range phases {
		selfSum += p.Self
	}
	var sb strings.Builder
	sb.WriteString("phase attribution:\n")
	for _, p := range phases {
		pct := 0.0
		if selfSum > 0 {
			pct = 100 * float64(p.Self) / float64(selfSum)
		}
		fmt.Fprintf(&sb, "  %-24s spans=%d self=%-12s total=%-12s share=%5.1f%% probes=%d\n",
			p.Name, p.Spans, p.Self, p.Total, pct, p.Probes)
	}
	return sb.String()
}

// PhaseSelfNanos flattens a summary into name → exclusive nanoseconds,
// the shape the bench trajectory records per target.
func PhaseSelfNanos(phases []PhaseStat) map[string]float64 {
	if len(phases) == 0 {
		return nil
	}
	out := make(map[string]float64, len(phases))
	for _, p := range phases {
		out[p.Name] = float64(p.Self)
	}
	return out
}
