// Package obs is the discovery unit's telemetry layer: a deterministic,
// allocation-light tracer threaded through the whole pipeline.
//
// A discovery run makes thousands of toolchain calls (2.3k–17.9k per
// target, EXPERIMENTS E15) yet used to be observable only as one opaque
// ns/op number. The Tracer records where that work goes: phase spans
// (lexer bootstrap, assembler bisection, mutation analysis, reverse
// interpretation, MD synthesis, validation), per-probe events at the
// probe.Prober choke point (compile/assemble/link/execute attempts,
// transient-fault retries, quorum escalations, SA015 sample drops),
// plus named counters and value histograms.
//
// Determinism contract (DESIGN §8/§9): all timing flows through an
// injected Clock. The core pipeline always runs against a VirtualClock —
// a pure counter that ticks on every read and absorbs accounted
// durations (probe backoff) — so the event stream is a pure function of
// (target, Options) and byte-identical across double runs. Real time is
// attached only at the edges: the benchmark harness injects a WallClock
// to attribute real nanoseconds to phases, and the CLIs print wall-clock
// totals to stderr without ever letting them into the stream. WallClock
// is the one blessed wall-clock reader in the analysis tree; the
// wallclock analyzer enforces that nothing else — including the emitters
// in this package — touches the machine clock.
package obs

import (
	"sync"
	"time"
)

// Clock is the telemetry time source: a virtual timestamp measured from
// the clock's epoch. Implementations may advance on every read (the
// deterministic VirtualClock) or read the machine clock (WallClock, edge
// use only).
type Clock interface {
	Now() time.Duration
}

// advancer is the optional Clock extension that absorbs accounted
// durations: virtual time the pipeline scheduled (probe backoff) without
// actually sleeping.
type advancer interface {
	Advance(time.Duration)
}

// VirtualClock is the deterministic default clock: every Now call
// advances time by one tick, and Advance absorbs scheduled durations.
// The resulting timeline is a pure function of the call sequence, so two
// identical discovery runs produce byte-identical event streams.
type VirtualClock struct {
	mu   sync.Mutex
	now  time.Duration
	tick time.Duration
}

// NewVirtualClock returns a virtual clock ticking one microsecond per
// read — coarse enough to keep timestamps readable, fine enough that
// every event gets a distinct time.
func NewVirtualClock() *VirtualClock {
	return &VirtualClock{tick: time.Microsecond}
}

// Now advances the clock by one tick and returns the new timestamp.
func (c *VirtualClock) Now() time.Duration {
	c.mu.Lock()
	c.now += c.tick
	n := c.now
	c.mu.Unlock()
	return n
}

// Advance absorbs a scheduled (virtual) duration, e.g. probe backoff.
func (c *VirtualClock) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

// WallClock reads the machine clock, as a duration since construction.
// It exists for the edges only — the benchmark harness injects it to
// attribute real nanoseconds to phases — and it is the single blessed
// wall-clock reader in the analysis tree: the wallclock analyzer permits
// time.Now here and nowhere else.
type WallClock struct {
	epoch time.Time
}

// NewWallClock returns a wall clock whose epoch is now.
func NewWallClock() *WallClock {
	return &WallClock{epoch: time.Now()}
}

// Now returns the real time elapsed since the clock's epoch.
func (c *WallClock) Now() time.Duration {
	return time.Since(c.epoch)
}
