// Package gen implements the Generator of the discovery unit (paper §3):
// it produces small C code samples from templates parameterized on
// operation and operand shape, wraps them in the Fig. 3 anti-optimization
// harness (a separately compiled Init hides all values; Begin/End labels
// delimit the payload; printf defeats dead-code elimination), and chooses
// initialization values with a Monte-Carlo procedure so that no two
// plausible semantic interpretations of the payload produce the same
// output (§5.2.1).
package gen

import (
	"fmt"
	"math/rand"
	"strings"

	"srcg/internal/discovery"
)

// BinaryOps are the C integer operators the Generator samples.
var BinaryOps = []string{"+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>"}

// Shapes are the operand-shape templates of §3 (shown there for
// subtraction): every combination of the hidden variables a, b and an
// inline literal K.
var Shapes = []string{"b,c", "a,K", "b,a", "a,a", "b,b", "K,b", "b,K", "K,a"}

// Relations are the C comparison operators for conditional samples.
var Relations = []string{"==", "!=", "<", "<=", ">", ">="}

// Config controls sample generation.
type Config struct {
	Rand *rand.Rand
	// Full selects the complete §3 shape set; otherwise only the primary
	// "b,c" shape is generated (enough for semantic extraction, much
	// cheaper for tests).
	Full bool
}

// Harness renders the Fig. 3 main translation unit around a payload.
func Harness(payload string) string {
	return `extern int z1,z2,z3,z4,z5,z6;
extern void Init();
main() {
	int a, b, c;
	Init(&a, &b, &c);
	if (z1) goto Begin;
	if (z2) goto End;
	if (z3) goto Begin;
	if (z4) goto End;
	if (z5) goto Begin;
	if (z6) goto End;
Begin:
	` + payload + `
End:
	printf("%i\n", a);
	exit(0);
}`
}

// InitUnit renders the separately compiled initializer that hides the
// values a0, b, c from the compiler (plus the helper procedures used by
// call samples).
func InitUnit(a0, b, c int64) string {
	return fmt.Sprintf(`int z1,z2,z3,z4,z5,z6;
void Init(n,o,p)
int *n,*o,*p;
{
	z1=z2=z3=1;
	z4=z5=z6=1;
	*n = %d;
	*o = %d;
	*p = %d;
}
int P(int x)
{
	return x - 42;
}
int P2(int x, int y)
{
	return x - y - 17;
}
int P0()
{
	return 19;
}`, a0, b, c)
}

// Samples generates the full sample set.
func Samples(cfg Config) ([]*discovery.Sample, error) {
	g := &generator{cfg: cfg}
	var out []*discovery.Sample
	shapes := []string{"b,c"}
	if cfg.Full {
		shapes = Shapes
	}
	for _, op := range BinaryOps {
		for _, shape := range shapes {
			s, err := g.binary(op, shape)
			if err != nil {
				return nil, err
			}
			out = append(out, s)
		}
	}
	// Unary operators.
	for _, op := range []string{"-", "~"} {
		out = append(out, g.unary(op))
	}
	// Plain move and constants of several magnitudes (the literal-syntax
	// and load-literal probes).
	out = append(out, g.move())
	for _, k := range []int64{7, 1235, 34117, -4097} {
		out = append(out, g.constant(k))
	}
	// Conditionals: each relation in taken, not-taken, and equal flavors.
	for _, rel := range Relations {
		for _, flavor := range []string{"lt", "gt", "eq"} {
			out = append(out, g.cond(rel, flavor))
		}
	}
	// Calls: zero, one, and two arguments.
	out = append(out, g.call0(), g.call1(), g.call2())
	// Register pressure: a deeply nested expression forces the compiler to
	// reveal temporaries it never needs for flat samples.
	out = append(out, g.stress())
	return out, nil
}

type generator struct {
	cfg Config
}

// eval32 computes a C binary operation in int32 arithmetic.
func eval32(op string, x, y int64) (int64, bool) {
	a, b := int32(x), int32(y)
	switch op {
	case "+":
		return int64(a + b), true
	case "-":
		return int64(a - b), true
	case "*":
		return int64(a * b), true
	case "/":
		if b == 0 {
			return 0, false
		}
		return int64(a / b), true
	case "%":
		if b == 0 {
			return 0, false
		}
		return int64(a % b), true
	case "&":
		return int64(a & b), true
	case "|":
		return int64(a | b), true
	case "^":
		return int64(a ^ b), true
	case "<<":
		if b < 0 || b > 31 {
			return 0, false
		}
		return int64(a << b), true
	case ">>":
		if b < 0 || b > 31 {
			return 0, false
		}
		return int64(a >> b), true
	}
	return 0, false
}

// distinctFor reports whether values (x, y) make the result of `x op y`
// unambiguous: the result must differ from every *other* candidate
// operation applied to (x, y) in either order, and from x, y, 0, and ±1
// (§5.2.1: avoid b=2,c=1 where a=b*c is also explained by a=b/c or
// a=b+c-1). Results of the same operation with swapped operands are not
// compared — commutative operations are inherently order-symmetric.
func distinctFor(op string, x, y int64) bool {
	r, ok := eval32(op, x, y)
	if !ok {
		return false
	}
	if r == x || r == y || r == 0 || r == 1 || r == -1 {
		return false
	}
	for _, op2 := range BinaryOps {
		if op2 == op {
			continue
		}
		for _, pair := range [][2]int64{{x, y}, {y, x}} {
			if v, ok := eval32(op2, pair[0], pair[1]); ok && v == r {
				return false
			}
		}
	}
	return true
}

// choose picks Monte-Carlo initialization values for a binary operation.
func (g *generator) choose(op string) (b, c int64) {
	r := g.cfg.Rand
	for i := 0; i < 10000; i++ {
		switch op {
		case "<<", ">>":
			b = int64(r.Intn(40000) + 100)
			c = int64(r.Intn(14) + 3)
		case "/", "%":
			// Make the quotient and remainder both interesting.
			c = int64(r.Intn(400) + 7)
			q := int64(r.Intn(300) + 5)
			rem := int64(r.Intn(int(c)-1) + 1)
			b = c*q + rem
		default:
			b = int64(r.Intn(60000) + 50)
			c = int64(r.Intn(900) + 7)
			if r.Intn(4) == 0 {
				c = -c
			}
		}
		if distinctFor(op, b, c) {
			return b, c
		}
	}
	// The constraint loop essentially never exhausts; fall back to the
	// paper's own example values.
	return 313, 109
}

// a0 picks an initial value for `a` distinct from the expected result.
func (g *generator) a0(avoid ...int64) int64 {
	r := g.cfg.Rand
	for {
		v := int64(r.Intn(90000) + 100)
		ok := true
		for _, x := range avoid {
			if v == x {
				ok = false
			}
		}
		if ok {
			return v
		}
	}
}

// binary builds `a = x OP y` for the given shape. Values are assigned by
// operand *position* (the second position is a shift count or divisor when
// the operation requires it), then mapped back onto the variables the
// shape mentions.
func (g *generator) binary(op, shape string) (*discovery.Sample, error) {
	parts := strings.Split(shape, ",")
	same := parts[0] == parts[1]
	var v1, v2 int64
	if same {
		// One value plays both roles; keep it valid as a shift count.
		switch op {
		case "<<", ">>":
			v1 = int64(g.cfg.Rand.Intn(7) + 3)
		default:
			v1 = int64(g.cfg.Rand.Intn(900) + 55)
		}
		v2 = v1
	} else {
		v1, v2 = g.choose(op)
	}
	vals := map[string]int64{parts[0]: v1, parts[1]: v2}
	expect, ok := eval32(op, v1, v2)
	if !ok {
		return nil, fmt.Errorf("gen: cannot evaluate %d %s %d", v1, op, v2)
	}
	// Variables not mentioned by the shape still get (distinct) hidden
	// values — the harness always initializes all three.
	a0, hasA := vals["a"]
	if !hasA {
		a0 = g.a0(v1, v2, expect)
	}
	b, hasB := vals["b"]
	if !hasB {
		b = g.a0(v1, v2, expect, a0)
	}
	c, hasC := vals["c"]
	if !hasC {
		c = g.a0(v1, v2, expect, a0, b)
	}
	k := vals["K"] // zero if the shape has no literal

	text := func(part string) string {
		if part == "K" {
			return fmt.Sprintf("%d", k)
		}
		return part
	}
	payload := fmt.Sprintf("a = %s %s %s;", text(parts[0]), op, text(parts[1]))
	s := &discovery.Sample{
		Name:    fmt.Sprintf("int.%s.%s", opName(op), strings.ReplaceAll(shape, ",", "_")),
		Kind:    discovery.PBinary,
		COp:     op,
		Payload: payload,
		Shape:   shape,
		A0:      a0, B: b, C: c, K: k,
		Expect: expect,
	}
	g.finish(s)
	return s, nil
}

func (g *generator) unary(op string) *discovery.Sample {
	b, c := g.choose("+")
	a0 := g.a0(b, c)
	var expect int64
	if op == "-" {
		expect = int64(-int32(b))
	} else {
		expect = int64(^int32(b))
	}
	s := &discovery.Sample{
		Name:    "int." + opName(op+"u") + ".b",
		Kind:    discovery.PUnary,
		COp:     op,
		Payload: fmt.Sprintf("a = %sb;", op),
		Shape:   "b",
		A0:      a0, B: b, C: c,
		Expect: expect,
	}
	g.finish(s)
	return s
}

func (g *generator) move() *discovery.Sample {
	b, c := g.choose("+")
	a0 := g.a0(b, c)
	s := &discovery.Sample{
		Name:    "int.move.b",
		Kind:    discovery.PUnary,
		COp:     "",
		Payload: "a = b;",
		Shape:   "b",
		A0:      a0, B: b, C: c,
		Expect: b,
	}
	g.finish(s)
	return s
}

func (g *generator) constant(k int64) *discovery.Sample {
	b, c := g.choose("+")
	a0 := g.a0(b, c, k)
	s := &discovery.Sample{
		Name:    fmt.Sprintf("int.const.%d", k),
		Kind:    discovery.PConst,
		Payload: fmt.Sprintf("a = %d;", k),
		Shape:   "K",
		A0:      a0, B: b, C: c, K: k,
		Expect: k,
	}
	g.finish(s)
	return s
}

// cond builds `if (b REL c) a = K;` with the operand relationship selected
// by flavor ("lt": b<c, "gt": b>c, "eq": b==c).
func (g *generator) cond(rel, flavor string) *discovery.Sample {
	r := g.cfg.Rand
	var b, c int64
	for {
		b = int64(r.Intn(50000) + 100)
		switch flavor {
		case "lt":
			c = b + int64(r.Intn(5000)+3)
		case "gt":
			c = b - int64(r.Intn(5000)+3)
		default:
			c = b
		}
		if flavor == "eq" || distinctFor("-", b, c) {
			break
		}
	}
	k := int64(r.Intn(40000) + 77)
	a0 := g.a0(b, c, k)
	taken := false
	switch rel {
	case "==":
		taken = b == c
	case "!=":
		taken = b != c
	case "<":
		taken = b < c
	case "<=":
		taken = b <= c
	case ">":
		taken = b > c
	case ">=":
		taken = b >= c
	}
	expect := a0
	if taken {
		expect = k
	}
	s := &discovery.Sample{
		Name:    fmt.Sprintf("int.cond.%s.%s", relName(rel), flavor),
		Kind:    discovery.PCond,
		COp:     rel,
		Payload: fmt.Sprintf("if (b %s c) a = %d;", rel, k),
		Shape:   "b,c",
		A0:      a0, B: b, C: c, K: k,
		Expect: expect,
	}
	g.finish(s)
	return s
}

func (g *generator) call0() *discovery.Sample {
	b, c := g.choose("+")
	a0 := g.a0(b, c, 19)
	s := &discovery.Sample{
		Name:    "int.call.none",
		Kind:    discovery.PCall,
		Payload: "a = P0();",
		Shape:   "",
		A0:      a0, B: b, C: c,
		Expect: 19,
	}
	g.finish(s)
	return s
}

func (g *generator) call1() *discovery.Sample {
	b, c := g.choose("+")
	a0 := g.a0(b, c)
	s := &discovery.Sample{
		Name:    "int.call.b",
		Kind:    discovery.PCall,
		Payload: "a = P(b);",
		Shape:   "b",
		A0:      a0, B: b, C: c,
		Expect: int64(int32(b) - 42),
	}
	g.finish(s)
	return s
}

func (g *generator) call2() *discovery.Sample {
	b, c := g.choose("-")
	a0 := g.a0(b, c)
	s := &discovery.Sample{
		Name:    "int.call.b_c",
		Kind:    discovery.PCall,
		Payload: "a = P2(b, c);",
		Shape:   "b,c",
		A0:      a0, B: b, C: c,
		Expect: int64(int32(b) - int32(c) - 17),
	}
	g.finish(s)
	return s
}

// stress builds a nested expression that exercises many registers. The
// Extractor is expected to discard it (too complex); it exists so the
// Lexer sees the full temporary register set.
func (g *generator) stress() *discovery.Sample {
	b, c := g.choose("+")
	a0 := g.a0(b, c)
	x, y := int32(b), int32(c)
	expect := int64((x + y) + ((x - y) + ((x & y) + ((x | y) + (x ^ y)))))
	s := &discovery.Sample{
		Name:    "int.stress",
		Kind:    discovery.PStress,
		Payload: "a = (b + c) + ((b - c) + ((b & c) + ((b | c) + (b ^ c))));",
		Shape:   "b,c",
		A0:      a0, B: b, C: c,
		Expect: expect,
	}
	g.finish(s)
	return s
}

// finish fills the C sources and expected stdout, then attaches two extra
// valuations (variants) of the hidden values. Mutation analysis requires
// every verdict to hold under all valuations, which keeps instructions
// that are dead under one valuation (an untaken branch's store) from being
// eliminated, and starves value-symmetric misinterpretations in the
// Extractor.
func (g *generator) finish(s *discovery.Sample) {
	s.CSource = Harness(s.Payload)
	s.InitSource = InitUnit(s.A0, s.B, s.C)
	s.ExpectedOut = fmt.Sprintf("%d\n", int32(s.Expect))
	g.addVariants(s)
}

// addVariants synthesizes two further valuations appropriate to the
// sample's kind.
func (g *generator) addVariants(s *discovery.Sample) {
	add := func(a0, b, c, expect int64) {
		s.Variants = append(s.Variants, discovery.Valuation{
			A0: a0, B: b, C: c, Expect: expect,
			InitSource:  InitUnit(a0, b, c),
			ExpectedOut: fmt.Sprintf("%d\n", int32(expect)),
		})
	}
	switch s.Kind {
	case discovery.PBinary:
		parts := strings.Split(s.Shape, ",")
		for n := 0; n < 2; n++ {
			v1, v2, ok := g.variantValues(s.COp, parts, s.K, n == 1)
			if !ok {
				continue
			}
			vals := map[string]int64{parts[0]: v1, parts[1]: v2}
			expect, ok := eval32(s.COp, v1, v2)
			if !ok {
				continue
			}
			a0, hasA := vals["a"]
			if !hasA {
				a0 = g.a0(v1, v2, expect)
			}
			b, hasB := vals["b"]
			if !hasB {
				b = g.a0(v1, v2, expect, a0)
			}
			c, hasC := vals["c"]
			if !hasC {
				c = g.a0(v1, v2, expect, a0, b)
			}
			add(a0, b, c, expect)
		}
	case discovery.PUnary:
		for n := 0; n < 2; n++ {
			b, c := g.choose("+")
			var expect int64
			switch s.COp {
			case "-":
				expect = int64(-int32(b))
			case "~":
				expect = int64(^int32(b))
			default:
				expect = b
			}
			add(g.a0(b, c, expect), b, c, expect)
		}
	case discovery.PConst:
		for n := 0; n < 2; n++ {
			b, c := g.choose("+")
			add(g.a0(b, c, s.K), b, c, s.K)
		}
	case discovery.PCond:
		// Cover the other branch directions: the store that is dead under
		// the base valuation is alive here.
		for _, flavor := range []string{"lt", "gt", "eq"} {
			b, c := g.condValues(flavor)
			a0 := g.a0(b, c, s.K)
			expect := a0
			if relHolds(s.COp, b, c) {
				expect = s.K
			}
			add(a0, b, c, expect)
		}
	case discovery.PCall:
		for n := 0; n < 2; n++ {
			b, c := g.choose("-")
			var expect int64
			switch {
			case strings.Contains(s.Payload, "P2"):
				expect = int64(int32(b) - int32(c) - 17)
			case strings.Contains(s.Payload, "P0"):
				expect = 19
			default:
				expect = int64(int32(b) - 42)
			}
			add(g.a0(b, c, expect), b, c, expect)
		}
	}
}

// variantValues picks fresh values for a binary payload, respecting a
// literal burned into the code (the K part keeps its value) and, when
// negDividend is set for division, exercising a negative dividend (the
// sign-extension idiom of cltd is invisible on positive values).
func (g *generator) variantValues(op string, parts []string, k int64, negDividend bool) (int64, int64, bool) {
	same := parts[0] == parts[1]
	for i := 0; i < 2000; i++ {
		var v1, v2 int64
		if same {
			switch op {
			case "<<", ">>":
				v1 = int64(g.cfg.Rand.Intn(7) + 3)
			default:
				v1 = int64(g.cfg.Rand.Intn(900) + 55)
			}
			v2 = v1
		} else {
			v1, v2 = g.choose(op)
		}
		if parts[0] == "K" {
			v1 = k
		}
		if parts[1] == "K" {
			v2 = k
		}
		if negDividend && (op == "/" || op == "%") && parts[0] != "K" {
			// The negative-dividend variant pins sign-dependent semantics
			// (x86 cltd). The fixed literal or the negation itself may
			// make full distinctness unattainable, so only the weak
			// degeneracy check applies: the result must not collapse to a
			// trivial value that other interpretations produce too.
			v1 = -v1
			if same {
				v2 = v1 // one variable holds one value
			}
			r, ok := eval32(op, v1, v2)
			if ok && r != 0 && r != 1 && r != -1 && r != v1 && r != v2 {
				return v1, v2, true
			}
			continue
		}
		if _, ok := eval32(op, v1, v2); !ok {
			continue
		}
		// Same-variable shapes (a = b - b) can never be distinctive — the
		// variants exist precisely so the pipeline can *observe* that the
		// expected output never varies and discard the sample.
		if same {
			return v1, v2, true
		}
		// The K overrides are applied before this check, so a variant
		// pairing the fixed literal with a degenerate partner (a divisor
		// of K makes K%b zero) rerolls until the result is distinctive.
		if distinctFor(op, v1, v2) {
			return v1, v2, true
		}
	}
	return 0, 0, false
}

// condValues picks (b, c) for a given branch flavor.
func (g *generator) condValues(flavor string) (int64, int64) {
	r := g.cfg.Rand
	b := int64(r.Intn(50000) + 100)
	switch flavor {
	case "lt":
		return b, b + int64(r.Intn(5000)+3)
	case "gt":
		return b, b - int64(r.Intn(5000)+3)
	default:
		return b, b
	}
}

func relHolds(rel string, b, c int64) bool {
	switch rel {
	case "==":
		return b == c
	case "!=":
		return b != c
	case "<":
		return b < c
	case "<=":
		return b <= c
	case ">":
		return b > c
	default:
		return b >= c
	}
}

func opName(op string) string {
	names := map[string]string{
		"+": "add", "-": "sub", "*": "mul", "/": "div", "%": "mod",
		"&": "and", "|": "or", "^": "xor", "<<": "shl", ">>": "shr",
		"-u": "neg", "~u": "not",
	}
	return names[op]
}

func relName(rel string) string {
	names := map[string]string{
		"==": "eq", "!=": "ne", "<": "lt", "<=": "le", ">": "gt", ">=": "ge",
	}
	return names[rel]
}
