package gen

import (
	"math/rand"
	"strings"
	"testing"

	"srcg/internal/discovery"
	"srcg/internal/target"
	"srcg/internal/target/alpha"
	"srcg/internal/target/mips"
	"srcg/internal/target/sparc"
	"srcg/internal/target/vax"
	"srcg/internal/target/x86"
)

func fullSamples(t *testing.T) []*discovery.Sample {
	t.Helper()
	ss, err := Samples(Config{Rand: rand.New(rand.NewSource(42)), Full: true})
	if err != nil {
		t.Fatalf("Samples: %v", err)
	}
	return ss
}

func TestSampleCount(t *testing.T) {
	ss := fullSamples(t)
	// 10 ops × 8 shapes + 2 unary + 1 move + 4 const + 18 cond + 3 call
	// + 1 register-pressure.
	want := 10*8 + 2 + 1 + 4 + 18 + 3 + 1
	if len(ss) != want {
		t.Errorf("sample count = %d, want %d", len(ss), want)
	}
	names := map[string]bool{}
	for _, s := range ss {
		if names[s.Name] {
			t.Errorf("duplicate sample name %q", s.Name)
		}
		names[s.Name] = true
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := Samples(Config{Rand: rand.New(rand.NewSource(7)), Full: true})
	b, _ := Samples(Config{Rand: rand.New(rand.NewSource(7)), Full: true})
	for i := range a {
		if a[i].CSource != b[i].CSource || a[i].InitSource != b[i].InitSource {
			t.Fatalf("sample %d differs between identical seeds", i)
		}
	}
}

func TestDistinctValues(t *testing.T) {
	if distinctFor("*", 2, 1) {
		t.Error("(2,1) should be rejected for *: 2*1 == 2/1 == 2")
	}
	if !distinctFor("*", 313, 109) {
		t.Error("(313,109) should be accepted for * (the paper's example)")
	}
}

// TestSamplesRunOnAllTargets is the keystone integration test: every
// generated sample must compile, assemble, link, and execute on every
// simulated machine, producing exactly the output the Generator predicted.
func TestSamplesRunOnAllTargets(t *testing.T) {
	targets := []target.Toolchain{x86.New(), sparc.New(), mips.New(), alpha.New(), vax.New()}
	ss := fullSamples(t)
	for _, tc := range targets {
		t.Run(tc.Name(), func(t *testing.T) {
			for _, s := range ss {
				out, err := target.BuildAndRun(tc, []string{s.CSource, s.InitSource})
				if err != nil {
					t.Errorf("%s: %v", s.Name, err)
					continue
				}
				if out != s.ExpectedOut {
					t.Errorf("%s: out = %q, want %q (payload %q, a0=%d b=%d c=%d)",
						s.Name, out, s.ExpectedOut, s.Payload, s.A0, s.B, s.C)
				}
			}
		})
	}
}

// TestVariantValuesStayDistinctive pins the rule that variant valuations
// of literal-operand shapes re-check distinctness on the *final* values:
// a variant pairing the fixed literal K with a divisor of K would make
// K % b zero — a coincidence that once masked the x86 idivl's %edx
// definition (the remainder equalled cltd's sign extension).
func TestVariantValuesStayDistinctive(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		ss, err := Samples(Config{Rand: rand.New(rand.NewSource(seed)), Full: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range ss {
			if s.Kind != discovery.PBinary || !strings.Contains(s.Shape, "K") {
				continue
			}
			for i, v := range s.Valuations() {
				e := v.Expect
				if e == 0 || e == 1 || e == -1 {
					t.Errorf("seed %d %s valuation %d: degenerate expect %d (b=%d c=%d k=%d)",
						seed, s.Name, i, e, v.B, v.C, s.K)
				}
			}
		}
	}
}
