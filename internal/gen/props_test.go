package gen

import (
	"math/rand"
	"strings"
	"testing"

	"srcg/internal/discovery"
)

// TestValuationsSatisfyPayload: for every binary sample, the expectation
// of every valuation must equal the payload's semantics applied to that
// valuation's values — across several seeds.
func TestValuationsSatisfyPayload(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		ss, err := Samples(Config{Rand: rand.New(rand.NewSource(seed)), Full: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range ss {
			if s.Kind != discovery.PBinary {
				continue
			}
			parts := strings.Split(s.Shape, ",")
			for vi, v := range s.Valuations() {
				val := func(p string) int64 {
					switch p {
					case "a":
						return v.A0
					case "b":
						return v.B
					case "c":
						return v.C
					default:
						return s.K
					}
				}
				want, ok := eval32(s.COp, val(parts[0]), val(parts[1]))
				if !ok {
					t.Errorf("seed %d %s val %d: payload not evaluable", seed, s.Name, vi)
					continue
				}
				if int32(want) != int32(v.Expect) {
					t.Errorf("seed %d %s val %d: expect %d, payload gives %d",
						seed, s.Name, vi, v.Expect, want)
				}
			}
		}
	}
}

// TestConditionalValuationsCoverBothDirections: every conditional sample's
// valuations must include at least one taken and one not-taken direction,
// or mutation analysis would eliminate the dead side.
func TestConditionalValuationsCoverBothDirections(t *testing.T) {
	ss, err := Samples(Config{Rand: rand.New(rand.NewSource(2))})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range ss {
		if s.Kind != discovery.PCond {
			continue
		}
		taken, notTaken := false, false
		for _, v := range s.Valuations() {
			if relHolds(s.COp, v.B, v.C) {
				taken = true
			} else {
				notTaken = true
			}
		}
		if !taken || !notTaken {
			t.Errorf("%s: taken=%v notTaken=%v across valuations", s.Name, taken, notTaken)
		}
	}
}

// TestDivisionSamplesIncludeNegativeDividend: the cltd sign-extension can
// only be pinned by a negative dividend (see EXPERIMENTS.md notes).
func TestDivisionSamplesIncludeNegativeDividend(t *testing.T) {
	ss, err := Samples(Config{Rand: rand.New(rand.NewSource(3))})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range ss {
		if s.Kind != discovery.PBinary || (s.COp != "/" && s.COp != "%") || s.Shape != "b,c" {
			continue
		}
		neg := false
		for _, v := range s.Valuations() {
			if v.B < 0 {
				neg = true
			}
		}
		if !neg {
			t.Errorf("%s: no negative-dividend valuation", s.Name)
		}
	}
}

func TestHarnessShape(t *testing.T) {
	h := Harness("a = b + c;")
	for _, want := range []string{"Init(&a, &b, &c)", "Begin:", "End:", "goto Begin", "goto End", `printf("%i\n", a)`} {
		if !strings.Contains(h, want) {
			t.Errorf("harness missing %q", want)
		}
	}
	// Six conditional gotos: three to each label, so each assembly label
	// is referenced at least three times (the Lexer's criterion).
	if strings.Count(h, "goto Begin") != 3 || strings.Count(h, "goto End") != 3 {
		t.Errorf("goto counts wrong:\n%s", h)
	}
}
