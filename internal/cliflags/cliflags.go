// Package cliflags hoists the flag wiring shared by the srcg command-line
// tools (cmd/discover, cmd/srcgvet): the discovery options every tool
// takes (-seed, -full, -signedshifts), the probe engine (-workers,
// -cache), fault injection (-faults), and the
// telemetry tap (-trace, -traceformat). Each tool registers the shared
// set once and keeps its own extras (-beg, -dot, …) beside it, so a new
// knob lands in every tool by construction instead of by copy-paste.
package cliflags

import (
	"flag"
	"fmt"
	"os"

	"srcg"
	"srcg/internal/faulty"
	"srcg/internal/obs"
	"srcg/internal/probe"
)

// Common holds the flag values shared by every srcg tool.
type Common struct {
	Seed         int64
	Full         bool
	SignedShifts bool
	MD           bool
	Workers      int
	Cache        bool
	Faults       string
	TracePath    string
	TraceFormat  string
}

// Register installs the shared flags on fs (pass flag.CommandLine from a
// main) and returns the value struct they bind to.
func Register(fs *flag.FlagSet) *Common {
	c := &Common{}
	fs.Int64Var(&c.Seed, "seed", 1, "random seed for sample generation and mutations")
	fs.BoolVar(&c.Full, "full", false, "use the complete operand-shape sample set")
	fs.BoolVar(&c.SignedShifts, "signedshifts", false,
		"enable the signed-count shift primitive (extension beyond the paper; resolves the VAX ashl limitation)")
	fs.BoolVar(&c.MD, "md", false,
		"run the semantic machine-description analyzer (SA020-SA025): coverage closure, rule shadowing, symbolic template verification (implies the checker)")
	fs.IntVar(&c.Workers, "workers", 1,
		"probe-pool width: independent probes fan out over this many goroutines (results are byte-identical at any width)")
	fs.BoolVar(&c.Cache, "cache", false,
		"memoize probe results content-addressed, skipping repeated toolchain round-trips")
	fs.StringVar(&c.Faults, "faults", "",
		"inject transient toolchain faults and output noise: <seed>:<rate> (e.g. 7:0.1)")
	fs.StringVar(&c.TracePath, "trace", "",
		"write a telemetry trace of the run to this file")
	fs.StringVar(&c.TraceFormat, "traceformat", "jsonl",
		"trace format: jsonl (one event per line) or chrome (Perfetto/chrome://tracing)")
	return c
}

// WrapTarget resolves a simulated machine by name and, when -faults is
// set, wraps it in the fault injector.
func (c *Common) WrapTarget(name string) (srcg.Target, error) {
	t, err := srcg.LookupTarget(name)
	if err != nil {
		return nil, err
	}
	if c.Faults != "" {
		cfg, err := faulty.ParseSpec(c.Faults)
		if err != nil {
			return nil, err
		}
		t = faulty.New(t, cfg)
	}
	return t, nil
}

// Options assembles the discovery options the shared flags describe,
// installing tr as the run's tracer.
func (c *Common) Options(tr *obs.Tracer) srcg.Options {
	opts := srcg.Options{
		Seed:         c.Seed,
		Full:         c.Full,
		SignedShifts: c.SignedShifts,
		Check:        c.MD, // -md implies the checker layer
		CheckMD:      c.MD,
		Workers:      c.Workers,
		Trace:        tr,
	}
	if c.Cache {
		opts.Cache = probe.NewCache()
	}
	return opts
}

// OpenTrace opens the -trace sink. With -trace unset it returns a nil
// tracer (valid: discovery creates a private one) and a no-op closer.
// Otherwise the tracer runs on a virtual clock — the trace bytes are a
// pure function of the run — and the closer flushes the final counter
// and histogram events and closes the file.
func (c *Common) OpenTrace() (*obs.Tracer, func() error, error) {
	if c.TracePath == "" {
		return nil, func() error { return nil }, nil
	}
	f, err := os.Create(c.TracePath)
	if err != nil {
		return nil, nil, err
	}
	var sink obs.Sink
	switch c.TraceFormat {
	case "", "jsonl":
		sink = obs.NewJSONLSink(f)
	case "chrome":
		sink = obs.NewChromeSink(f)
	default:
		f.Close()
		return nil, nil, fmt.Errorf("cliflags: unknown -traceformat %q (want jsonl or chrome)", c.TraceFormat)
	}
	tr := obs.New(nil, sink)
	closer := func() error {
		if err := tr.Flush(); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return tr, closer, nil
}
