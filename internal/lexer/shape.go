package lexer

import "srcg/internal/discovery"

// SplitLine tokenizes one instruction line (label and comment already
// removed) into its opcode and operand texts — the same splitting sample
// extraction uses, exported for the static verification layer.
func SplitLine(rest string) (op string, args []string) {
	return tokenizeLine(rest)
}

// ClassifyText classifies one operand text under the model alone, with no
// label context: kind, embedded registers, literal value, and
// addressing-mode shape, exactly as sample classification computes them.
func ClassifyText(m *discovery.Model, text string) discovery.Operand {
	a := discovery.Operand{Text: text}
	classifyOperand(m, nil, &a)
	return a
}

// ClassifyTextIn classifies one operand text with a label context, so a
// rendered template's branch target classifies as a label reference (as
// it would inside a sample) instead of an external symbol.
func ClassifyTextIn(m *discovery.Model, labels map[string]bool, text string) discovery.Operand {
	a := discovery.Operand{Text: text}
	classifyOperand(m, labels, &a)
	return a
}
