package lexer

import (
	"math/rand"
	"strings"
	"testing"

	"srcg/internal/discovery"
	"srcg/internal/gen"
	"srcg/internal/target"
	"srcg/internal/target/alpha"
	"srcg/internal/target/mips"
	"srcg/internal/target/sparc"
	"srcg/internal/target/vax"
	"srcg/internal/target/x86"
)

func allTargets() []target.Toolchain {
	return []target.Toolchain{x86.New(), sparc.New(), mips.New(), alpha.New(), vax.New()}
}

func bootstrapFor(t *testing.T, tc target.Toolchain) (*discovery.Rig, *discovery.Model, []*discovery.Sample) {
	t.Helper()
	rig := discovery.NewRig(tc)
	samples, err := gen.Samples(gen.Config{Rand: rand.New(rand.NewSource(1))})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Bootstrap(rig, samples)
	if err != nil {
		t.Fatalf("Bootstrap(%s): %v", tc.Name(), err)
	}
	return rig, m, samples
}

// wantSyntax pins the facts the Lexer must discover per architecture.
var wantSyntax = map[string]struct {
	comment   string
	litPrefix string
	someRegs  []string
	notRegs   []string
	clobberOp string // mnemonic of the discovered register-set template
}{
	"x86":   {"#", "$", []string{"%eax", "%edx", "%ebp", "%edi"}, []string{"%eax8"}, "movl"},
	"sparc": {"!", "", []string{"%o0", "%l0", "%fp", "%g7"}, []string{"%o9"}, "set"},
	"mips":  {"#", "", []string{"$9", "$sp", "$31"}, []string{"$32"}, "li"},
	"alpha": {"#", "", []string{"$1", "$sp", "$31"}, []string{"$32"}, "ldil"},
	"vax":   {"#", "$", []string{"r0", "fp", "r11", "ap"}, []string{"r12"}, "movl"},
}

func TestBootstrapDiscoversSyntax(t *testing.T) {
	for _, tc := range allTargets() {
		tc := tc
		t.Run(tc.Name(), func(t *testing.T) {
			_, m, samples := bootstrapFor(t, tc)
			want := wantSyntax[tc.Name()]
			if m.CommentChar != want.comment {
				t.Errorf("comment char = %q, want %q", m.CommentChar, want.comment)
			}
			if m.LitPrefix != want.litPrefix {
				t.Errorf("literal prefix = %q, want %q", m.LitPrefix, want.litPrefix)
			}
			if _, ok := m.LitBases[10]; !ok {
				t.Errorf("decimal literals not discovered: %v", m.LitBases)
			}
			for _, r := range want.someRegs {
				if !m.RegSet[r] {
					t.Errorf("register %s not discovered; got %v", r, m.Registers)
				}
			}
			for _, r := range want.notRegs {
				if m.RegSet[r] {
					t.Errorf("non-register %s wrongly discovered", r)
				}
			}
			if m.Clobber == nil {
				t.Error("no clobber template discovered")
			} else if !strings.HasPrefix(m.ClobberText, want.clobberOp+" ") {
				// The template must be a register *set* — validateClobber's
				// idempotence probe rejects accumulating instructions like
				// the VAX's addl2 $k,r0 at a spot where r0 happens to be 0.
				t.Errorf("clobber template %q, want a %s-based set", m.ClobberText, want.clobberOp)
			}
			if m.WordBits != 32 {
				t.Errorf("word bits = %d, want 32", m.WordBits)
			}
			// Every sample must have extracted a nonempty region with all
			// operands classified.
			for _, s := range samples {
				if len(s.Region) == 0 {
					t.Errorf("%s: empty region", s.Name)
				}
				for _, ins := range s.Region {
					for _, a := range ins.Args {
						if a.Kind == discovery.KUnknown {
							t.Errorf("%s: unclassified operand %q in %s", s.Name, a.Text, ins)
						}
					}
				}
			}
		})
	}
}

func TestSPARCImmediateRange(t *testing.T) {
	_, m, _ := bootstrapFor(t, sparc.New())
	// The paper's headline example: add's immediate is [-4096,4095].
	var found bool
	for key, r := range m.ImmRange {
		if strings.HasPrefix(key, "add:") && r[0] == -4096 && r[1] == 4095 {
			found = true
		}
	}
	if !found {
		t.Errorf("SPARC add range not discovered; got %v", m.ImmRange)
	}
}

func TestAlphaLiteralRange(t *testing.T) {
	_, m, _ := bootstrapFor(t, alpha.New())
	var found bool
	for key, r := range m.ImmRange {
		if strings.HasPrefix(key, "addl:") && r[0] == 0 && r[1] == 255 {
			found = true
		}
	}
	if !found {
		t.Errorf("Alpha operate literal range not discovered; got %v", m.ImmRange)
	}
}

func TestVAXRegionIsMemoryToMemory(t *testing.T) {
	_, m, samples := bootstrapFor(t, vax.New())
	_ = m
	for _, s := range samples {
		if s.Name != "int.add.b_c" {
			continue
		}
		// The Fig. 3 region: a single addl3 between frame slots.
		if len(s.Region) != 1 || s.Region[0].Op != "addl3" {
			t.Errorf("VAX add region = %v", s.Region)
		}
		for _, a := range s.Region[0].Args {
			if a.Kind != discovery.KMem {
				t.Errorf("operand %q kind = %v, want mem", a.Text, a.Kind)
			}
		}
	}
}

func TestExtractionRebuildRoundTrips(t *testing.T) {
	for _, tc := range allTargets() {
		tc := tc
		t.Run(tc.Name(), func(t *testing.T) {
			rig, _, samples := bootstrapFor(t, tc)
			for _, s := range samples {
				rebuilt := s.Rebuild(s.Region)
				u1, err := rig.Assemble(rebuilt)
				if err != nil {
					t.Errorf("%s: rebuilt text does not assemble: %v", s.Name, err)
					continue
				}
				initU, err := rig.Assemble(mustCompileTest(t, rig, s.InitSource))
				if err != nil {
					t.Fatal(err)
				}
				out, err := rig.LinkRun(u1, initU)
				if err != nil {
					t.Errorf("%s: rebuilt program failed: %v", s.Name, err)
					continue
				}
				if out != s.ExpectedOut {
					t.Errorf("%s: rebuilt output %q, want %q", s.Name, out, s.ExpectedOut)
				}
			}
		})
	}
}

func mustCompileTest(t *testing.T, rig *discovery.Rig, src string) string {
	t.Helper()
	text, err := rig.CompileAsm(src)
	if err != nil {
		t.Fatal(err)
	}
	return text
}

func TestModesDiscovered(t *testing.T) {
	_, m, _ := bootstrapFor(t, x86.New())
	var frameMode bool
	for _, mode := range m.Modes {
		if strings.Contains(mode, "⟨n⟩(⟨r⟩)") || mode == "⟨n⟩(⟨r⟩)" {
			frameMode = true
		}
	}
	if !frameMode {
		t.Errorf("x86 displacement mode not discovered; modes = %v", m.Modes)
	}
}
