package lexer

import (
	"fmt"
	"sort"
	"strings"

	"srcg/internal/discovery"
	"srcg/internal/pool"
)

// DiscoverImmRanges probes, for every instruction signature that carries a
// literal operand anywhere in the sample texts, the range of immediates the
// assembler accepts (paper §3.1: "On the SPARC, for example, we would
// detect that the add instruction's immediate operand is restricted to
// [-4096,4095]"). The probe substitutes values into a real occurrence and
// bisects on accept/reject.
func DiscoverImmRanges(rig *discovery.Rig, m *discovery.Model, texts []string) {
	if m.ImmRange == nil {
		m.ImmRange = map[string][2]int64{}
	}
	// Collect one bisection job per distinct signature in deterministic scan
	// order, then fan the independent bisections out over the probe pool.
	// Each job gets its own copy of the line slice: probeRange substitutes
	// into lines[li] in place, so sharing one slice across workers would
	// race.
	type job struct {
		key   string
		lines []string
		li    int
		tok   string
	}
	var jobs []job
	probed := map[string]bool{}
	for _, text := range texts {
		lines := strings.Split(text, "\n")
		for li, raw := range lines {
			clean := stripComment(m, raw)
			_, rest := lineLabel(clean)
			if rest == "" || strings.HasPrefix(rest, ".") {
				continue
			}
			op, args := tokenizeLine(rest)
			for ai, argText := range args {
				if _, isLit := ParseLit(m, argText); !isLit {
					continue
				}
				key := fmt.Sprintf("%s:%d", op, ai)
				if probed[key] {
					continue
				}
				probed[key] = true
				jobs = append(jobs, job{key, append([]string(nil), lines...), li, argText})
			}
		}
	}
	type found struct {
		lo, hi int64
		ok     bool
	}
	results := pool.RunRig(rig, len(jobs), func(i int, sub *discovery.Rig) found {
		j := jobs[i]
		lo, hi, ok := probeRange(sub, m, j.lines, j.li, j.tok)
		return found{lo, hi, ok}
	})
	for i, j := range jobs {
		if results[i].ok {
			m.ImmRange[j.key] = [2]int64{results[i].lo, results[i].hi}
		}
	}
}

// probeRange bisects the acceptable immediate range for the literal token
// tok on line li of the text.
func probeRange(rig *discovery.Rig, m *discovery.Model, lines []string, li int, tok string) (lo, hi int64, ok bool) {
	accepts := func(v int64) bool {
		newLine, ok := replaceToken(lines[li], tok, fmt.Sprintf("%s%d", m.LitPrefix, v))
		if !ok {
			return false
		}
		old := lines[li]
		lines[li] = newLine
		text := strings.Join(lines, "\n")
		lines[li] = old
		return rig.Accepts(text)
	}
	const max32 = 1<<31 - 1
	const min32 = -1 << 31
	if !accepts(0) && !accepts(1) {
		return 0, 0, false
	}
	// Bounds: exponential climb then bisect, in each direction.
	hi = climb(accepts, max32)
	lo = -climb(func(v int64) bool { return accepts(-v) }, -min32)
	return lo, hi, true
}

// replaceToken replaces the first word-boundary occurrence of tok in line.
func replaceToken(line, tok, repl string) (string, bool) {
	idx := 0
	for {
		i := strings.Index(line[idx:], tok)
		if i < 0 {
			return "", false
		}
		i += idx
		var before, after byte = ' ', ' '
		if i > 0 {
			before = line[i-1]
		}
		if i+len(tok) < len(line) {
			after = line[i+len(tok)]
		}
		if !isWordByte(before) && !isWordByte(after) && before != '$' && before != '%' && before != '-' {
			return line[:i] + repl + line[i+len(tok):], true
		}
		idx = i + len(tok)
	}
}

// climb finds the largest accepted value in [0, limit] assuming acceptance
// is downward closed from some threshold.
func climb(accepts func(int64) bool, limit int64) int64 {
	if !accepts(0) {
		return 0
	}
	good := int64(0)
	step := int64(1)
	for good+step <= limit {
		if accepts(good + step) {
			good += step
			step *= 2
		} else {
			break
		}
	}
	if good+step > limit {
		if accepts(limit) {
			return limit
		}
	}
	// Bisect between good and good+step.
	bad := good + step
	if bad > limit {
		bad = limit + 1
	}
	for good+1 < bad {
		mid := good + (bad-good)/2
		if accepts(mid) {
			good = mid
		} else {
			bad = mid
		}
	}
	return good
}

// DiscoverModes collects the distinct addressing-mode shapes observed
// across all classified samples.
func DiscoverModes(m *discovery.Model, samples []*discovery.Sample) {
	seen := map[string]bool{}
	for _, s := range samples {
		for _, ins := range s.Region {
			for _, a := range ins.Args {
				if a.Kind == discovery.KMem || a.Kind == discovery.KReg {
					if !seen[a.ModeShape] {
						seen[a.ModeShape] = true
						m.Modes = append(m.Modes, a.ModeShape)
					}
				}
			}
		}
	}
	sort.Strings(m.Modes)
}

// DescribeModel renders the discovered syntax facts for reports.
func DescribeModel(m *discovery.Model) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "architecture:   %s\n", m.Arch)
	fmt.Fprintf(&sb, "comment char:   %q\n", m.CommentChar)
	fmt.Fprintf(&sb, "literal prefix: %q\n", m.LitPrefix)
	bases := make([]int, 0, len(m.LitBases))
	for b := range m.LitBases {
		bases = append(bases, b)
	}
	sort.Ints(bases)
	for _, b := range bases {
		fmt.Fprintf(&sb, "literal base:   %d (prefix %q)\n", b, m.LitBases[b])
	}
	fmt.Fprintf(&sb, "registers:      %s\n", strings.Join(m.Registers, " "))
	fmt.Fprintf(&sb, "clobber:        %s\n", m.ClobberText)
	fmt.Fprintf(&sb, "word bits:      %d\n", m.WordBits)
	keys := make([]string, 0, len(m.ImmRange))
	for k := range m.ImmRange {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		r := m.ImmRange[k]
		fmt.Fprintf(&sb, "imm range:      %-12s [%d,%d]\n", k, r[0], r[1])
	}
	for _, mode := range m.Modes {
		fmt.Fprintf(&sb, "mode:           %s\n", mode)
	}
	return sb.String()
}
