// Package lexer implements the Lexer of the discovery unit (paper §3.1):
// it discovers the assembler's surface syntax by textual scanning and
// accept/reject probing, extracts the instructions relevant to a sample
// (delimited by the Begin/End labels of the Fig. 3 harness), and tokenizes
// them. It also discovers the register set, a clobber template, immediate
// ranges, and addressing-mode shapes — all through the toolchain black box.
package lexer

import (
	"fmt"
	"sort"
	"strings"

	"srcg/internal/discovery"
)

// commentCandidates are the comment-to-end-of-line markers tried by the
// probe (the paper: "add an obviously erroneous line preceded by a
// suspected comment character").
var commentCandidates = []string{"#", "!", ";", "|", "//", "/*", "*"}

// garbage is a line no assembler should accept un-commented.
const garbage = "zzz!!! certainly not an instruction $$$"

// ProbeSyntax discovers the assembler's comment character and integer
// literal syntax. base is the assembly produced from `main(){}` and
// litAsm the assembly from `main(){int a=1235;}` (both already compiled
// by the caller through the rig).
func ProbeSyntax(rig *discovery.Rig, m *discovery.Model, base, litAsm string) error {
	// Comment character: append a garbage line prefixed by each candidate
	// and see whether the assembler still accepts the file.
	if !rig.Accepts(base) {
		return fmt.Errorf("lexer: baseline main(){} assembly rejected by the assembler")
	}
	if rig.Accepts(base + "\n" + garbage + "\n") {
		return fmt.Errorf("lexer: assembler accepts garbage; cannot probe syntax")
	}
	for _, c := range commentCandidates {
		if rig.Accepts(base + "\n" + c + " " + garbage + "\n") {
			m.CommentChar = c
			break
		}
	}
	if m.CommentChar == "" {
		return fmt.Errorf("lexer: no comment character discovered")
	}

	// Literal syntax: scan for 1235 in common bases with common prefixes
	// (paper: compile main(){int a=1235;} and scan the assembly).
	m.LitBases = map[int]string{}
	// Ordered, not a map: these drive LitBases/LitPrefix writes and
	// assembler probes, so the scan and probe order must be fixed — with
	// several accepted spellings of one base (0x4d3 vs 0X4D3) the first
	// spelling tried is the prefix the MD records.
	litReps := []struct {
		rep    string
		base   int
		prefix string
	}{
		{"1235", 10, ""},
		{"0x4d3", 16, "0x"},
		{"0x4D3", 16, "0x"},
		{"0X4D3", 16, "0X"},
		{"02323", 8, "0"},
		{"0b10011010011", 2, "0b"},
	}
	for _, info := range litReps {
		if containsToken(litAsm, info.rep) {
			m.LitBases[info.base] = info.prefix
		}
	}
	if len(m.LitBases) == 0 {
		return fmt.Errorf("lexer: constant 1235 not found in any known base")
	}
	// Literal marker: if the token carrying 1235 is prefixed (x86/VAX $),
	// record the marker.
	for _, tok := range strings.FieldsFunc(litAsm, func(r rune) bool {
		return r == ' ' || r == '\t' || r == ',' || r == '\n' || r == '(' || r == '[' || r == ']' || r == ')'
	}) {
		for _, info := range litReps {
			if strings.HasSuffix(tok, info.rep) && len(tok) > len(info.rep) {
				m.LitPrefix = tok[:len(tok)-len(info.rep)]
			}
			if tok == info.rep {
				m.LitPrefix = ""
			}
		}
	}
	// Probe which bases the assembler accepts by substituting alternative
	// spellings of 1235 into the literal-bearing line.
	line, ok := findLineWithToken(litAsm, "1235", m.LitPrefix)
	if ok {
		for _, info := range litReps {
			alt := strings.Replace(litAsm, line.orig, strings.Replace(line.orig, line.tok, m.LitPrefix+info.rep, 1), 1)
			if rig.Accepts(alt) {
				if _, exists := m.LitBases[info.base]; !exists {
					m.LitBases[info.base] = info.prefix
				}
			}
		}
	}
	return nil
}

type litLine struct {
	orig string // full original line
	tok  string // the literal token within it
}

func containsToken(text, tok string) bool {
	idx := 0
	for {
		i := strings.Index(text[idx:], tok)
		if i < 0 {
			return false
		}
		i += idx
		before := byte(' ')
		if i > 0 {
			before = text[i-1]
		}
		after := byte(' ')
		if i+len(tok) < len(text) {
			after = text[i+len(tok)]
		}
		if !isWordByte(before) && !isWordByte(after) {
			return true
		}
		idx = i + len(tok)
	}
}

func isWordByte(c byte) bool {
	return c == '_' || (c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func findLineWithToken(text, tok, prefix string) (litLine, bool) {
	for _, l := range strings.Split(text, "\n") {
		if containsToken(l, tok) {
			return litLine{orig: l, tok: prefix + tok}, true
		}
	}
	return litLine{}, false
}

// stripComment removes a trailing comment using the discovered marker.
func stripComment(m *discovery.Model, line string) string {
	if m.CommentChar == "" {
		return line
	}
	if i := strings.Index(line, m.CommentChar); i >= 0 {
		return line[:i]
	}
	return line
}

// lineLabel splits an optional leading "label:" off a source line.
func lineLabel(line string) (label, rest string) {
	t := strings.TrimSpace(line)
	if i := strings.Index(t, ":"); i > 0 {
		cand := t[:i]
		if !strings.ContainsAny(cand, " \t,()[]$%") || strings.HasPrefix(cand, ".") {
			return cand, strings.TrimSpace(t[i+1:])
		}
	}
	return "", t
}

// Tokenize splits one instruction line into op + raw comma-separated args.
func tokenizeLine(rest string) (op string, args []string) {
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return "", nil
	}
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		op, rest = rest[:i], strings.TrimSpace(rest[i+1:])
	} else {
		return rest, nil
	}
	if rest == "" {
		return op, nil
	}
	for _, a := range strings.Split(rest, ",") {
		args = append(args, strings.TrimSpace(a))
	}
	return op, args
}

// Extract locates the Begin/End-delimited region in a sample's assembly
// and tokenizes it. The delimiting labels are identified as the two labels
// referenced at least three times (the harness's six conditional gotos,
// Fig. 3).
func Extract(m *discovery.Model, s *discovery.Sample) error {
	lines := strings.Split(s.FullAsm, "\n")
	type def struct {
		line int
		rest string // instruction text on the same line, if any
	}
	defs := map[string]def{}
	refs := map[string]int{}
	for i, raw := range lines {
		text := stripComment(m, raw)
		label, rest := lineLabel(text)
		if label != "" {
			defs[label] = def{line: i, rest: rest}
		}
		_, args := tokenizeLine(rest)
		for _, a := range args {
			refs[a]++
		}
	}
	var marks []string
	for l, n := range refs {
		if n >= 3 {
			if _, isLabel := defs[l]; isLabel {
				marks = append(marks, l)
			}
		}
	}
	sort.Strings(marks)
	if len(marks) != 2 {
		return fmt.Errorf("lexer: %s: found %d delimiting labels, want 2", s.Name, len(marks))
	}
	begin, end := marks[0], marks[1]
	if defs[begin].line > defs[end].line {
		begin, end = end, begin
	}
	startLine, endLine := defs[begin].line, defs[end].line

	s.PreLines = append([]string(nil), lines[:startLine+1]...)
	s.PostLines = append([]string(nil), lines[endLine:]...)
	s.Region = nil
	// An instruction may share the Begin label's line.
	if rest := defs[begin].rest; rest != "" {
		// Keep it in the region; the label stays in PreLines.
		s.PreLines[len(s.PreLines)-1] = begin + ":"
		if ins, ok := tokenizeInstr(m, rest, startLine); ok {
			s.Region = append(s.Region, ins)
		}
	}
	for i := startLine + 1; i < endLine; i++ {
		text := stripComment(m, lines[i])
		label, rest := lineLabel(text)
		if rest == "" {
			if label != "" {
				// An intra-region label (conditional payloads): attach to
				// the next instruction.
				s.Region = append(s.Region, discovery.Instr{Labels: []string{label}, Line: i})
			}
			continue
		}
		ins, ok := tokenizeInstr(m, rest, i)
		if !ok {
			continue
		}
		if label != "" {
			ins.Labels = append(ins.Labels, label)
		}
		s.Region = append(s.Region, ins)
	}
	// Merge label-only placeholders into the following instruction.
	s.Region = mergeLabelPlaceholders(s.Region)
	if len(s.Region) == 0 {
		return fmt.Errorf("lexer: %s: empty region", s.Name)
	}
	return nil
}

func tokenizeInstr(m *discovery.Model, rest string, line int) (discovery.Instr, bool) {
	op, rawArgs := tokenizeLine(rest)
	if op == "" {
		return discovery.Instr{}, false
	}
	ins := discovery.Instr{Op: op, Raw: rest, Line: line}
	for _, a := range rawArgs {
		ins.Args = append(ins.Args, discovery.Operand{Text: a})
	}
	return ins, true
}

func mergeLabelPlaceholders(region []discovery.Instr) []discovery.Instr {
	var out []discovery.Instr
	var pending []string
	for _, ins := range region {
		if ins.Op == "" {
			pending = append(pending, ins.Labels...)
			continue
		}
		if len(pending) > 0 {
			ins.Labels = append(pending, ins.Labels...)
			pending = nil
		}
		out = append(out, ins)
	}
	if len(pending) > 0 && len(out) > 0 {
		// Trailing label: keep as a label on a synthetic empty op so the
		// region round-trips; rebuilding emits just the label line.
		out = append(out, discovery.Instr{Labels: pending, Op: ""})
	}
	return out
}

// Classify fills operand kinds using the discovered model (registers,
// literal syntax) and the label set of the sample's region.
func Classify(m *discovery.Model, s *discovery.Sample) {
	labels := map[string]bool{}
	for _, ins := range s.Region {
		for _, l := range ins.Labels {
			labels[l] = true
		}
	}
	// Labels defined outside the region (e.g. the End label) are also
	// branch targets.
	for _, l := range s.PostLines {
		if lab, _ := lineLabel(stripComment(m, l)); lab != "" {
			labels[lab] = true
		}
	}
	for _, l := range s.PreLines {
		if lab, _ := lineLabel(stripComment(m, l)); lab != "" {
			labels[lab] = true
		}
	}
	for i := range s.Region {
		for j := range s.Region[i].Args {
			classifyOperand(m, labels, &s.Region[i].Args[j])
		}
	}
}

func classifyOperand(m *discovery.Model, labels map[string]bool, a *discovery.Operand) {
	text := a.Text
	a.Regs = nil
	switch {
	case m.IsReg(text):
		a.Kind = discovery.KReg
		a.Regs = []string{text}
		a.ModeShape = "⟨r⟩"
		return
	}
	if v, ok := ParseLit(m, text); ok {
		a.Kind = discovery.KLit
		a.Lit = v
		a.ModeShape = "⟨n⟩"
		return
	}
	if labels[text] {
		a.Kind = discovery.KLabelRef
		a.Sym = text
		a.ModeShape = "⟨l⟩"
		return
	}
	// Composite operand: scan for embedded registers and literals.
	toks := subTokens(text)
	shape := text
	var foundReg bool
	var lit int64
	var hasLit bool
	for _, t := range toks {
		if m.IsReg(t.text) {
			foundReg = true
			a.Regs = append(a.Regs, t.text)
			shape = strings.Replace(shape, t.text, "⟨r⟩", 1)
		} else if v, ok := ParseLit(m, t.text); ok {
			hasLit = true
			lit = v
			shape = strings.Replace(shape, t.text, "⟨n⟩", 1)
		}
	}
	a.ModeShape = shape
	if foundReg {
		a.Kind = discovery.KMem
		if hasLit {
			a.Lit = lit
		}
		return
	}
	// No register: either a symbol reference or an unparsed token.
	a.Kind = discovery.KSym
	a.Sym = text
}

type subTok struct {
	text string
	pos  int
}

// subTokens finds register/literal-like runs inside a composite operand
// such as "-8(%ebp)", "[%fp-8]", "120($sp)", or "$z1".
func subTokens(text string) []subTok {
	var out []subTok
	i := 0
	for i < len(text) {
		c := text[i]
		if c == '%' || c == '$' || isWordByte(c) || c == '-' || c == '+' {
			j := i
			if c == '-' || c == '+' {
				j++
			}
			if j < len(text) && (text[j] == '%' || text[j] == '$') {
				j++
			}
			for j < len(text) && isWordByte(text[j]) {
				j++
			}
			if j > i {
				tok := strings.TrimPrefix(text[i:j], "+")
				// A bare sigil ('$', '%', '-') is not a token.
				if strings.ContainsAny(tok, "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_") {
					out = append(out, subTok{text: tok, pos: i})
				}
				i = j
				continue
			}
		}
		i++
	}
	return out
}

// ParseLit parses an integer literal according to the discovered syntax.
func ParseLit(m *discovery.Model, text string) (int64, bool) {
	s := text
	if m.LitPrefix != "" && strings.HasPrefix(s, m.LitPrefix) {
		s = s[len(m.LitPrefix):]
	}
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	if s == "" {
		return 0, false
	}
	// Try hex first if discovered.
	if p, ok := m.LitBases[16]; ok && p != "" && strings.HasPrefix(s, p) {
		v, ok := parseBase(s[len(p):], 16)
		if !ok {
			return 0, false
		}
		if neg {
			v = -v
		}
		return v, true
	}
	v, ok := parseBase(s, 10)
	if !ok {
		return 0, false
	}
	if neg {
		v = -v
	}
	return v, true
}

func parseBase(s string, base int64) (int64, bool) {
	if s == "" {
		return 0, false
	}
	var v int64
	for i := 0; i < len(s); i++ {
		var d int64
		switch {
		case s[i] >= '0' && s[i] <= '9':
			d = int64(s[i] - '0')
		case s[i] >= 'a' && s[i] <= 'f':
			d = int64(s[i]-'a') + 10
		case s[i] >= 'A' && s[i] <= 'F':
			d = int64(s[i]-'A') + 10
		default:
			return 0, false
		}
		if d >= base {
			return 0, false
		}
		v = v*base + d
	}
	return v, true
}
