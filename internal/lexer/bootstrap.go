package lexer

import (
	"fmt"

	"srcg/internal/discovery"
	"srcg/internal/enquire"
	"srcg/internal/obs"
)

// Bootstrap runs the complete syntax-discovery phase: it probes the
// assembler's surface syntax, compiles all samples, extracts and
// classifies their regions, discovers the register set and a clobber
// template, probes immediate ranges, collects addressing-mode shapes, and
// measures the integer width. On return the model is ready for mutation
// analysis.
func Bootstrap(rig *discovery.Rig, samples []*discovery.Sample) (*discovery.Model, error) {
	m := &discovery.Model{Arch: rig.TC.Name()}

	base, err := rig.CompileAsm("main(){}")
	if err != nil {
		return nil, fmt.Errorf("lexer: compiling main(){}: %w", err)
	}
	litAsm, err := rig.CompileAsm("main(){int a=1235;}")
	if err != nil {
		return nil, fmt.Errorf("lexer: compiling literal probe: %w", err)
	}
	if err := ProbeSyntax(rig, m, base, litAsm); err != nil {
		return nil, err
	}

	rig.Trace().Count(discovery.CtrSamples, int64(len(samples)))
	texts := make([]string, 0, len(samples)+1)
	for _, s := range samples {
		text, err := rig.CompileAsm(s.CSource)
		if err != nil {
			return nil, fmt.Errorf("lexer: compiling %s: %w", s.Name, err)
		}
		s.FullAsm = text
		texts = append(texts, text)
		if err := Extract(m, s); err != nil {
			return nil, err
		}
	}
	// The initializer unit is compiler output too — scan it as well (it is
	// where callee-side conventions like the VAX argument pointer show up).
	if initText, err := rig.CompileAsm(samples[0].InitSource); err == nil {
		texts = append(texts, initText)
	}

	if err := DiscoverRegisters(rig, m, texts); err != nil {
		return nil, err
	}
	for _, s := range samples {
		Classify(m, s)
	}
	if err := DiscoverClobber(rig, m, samples); err != nil {
		return nil, err
	}
	// Immediate-range discovery is the assembler-bisection workload —
	// pure accept/reject probing against the assembler — so it gets its
	// own span nested inside the bootstrap phase.
	_ = rig.Trace().Phase(obs.PhaseAssemblerBisection, func() error {
		DiscoverImmRanges(rig, m, texts)
		return nil
	})
	DiscoverModes(m, samples)

	bits, err := enquire.WordBits(rig)
	if err != nil {
		return nil, err
	}
	m.WordBits = bits
	return m, nil
}
