package lexer

import (
	"testing"

	"srcg/internal/discovery"
)

func modelWith(prefix string) *discovery.Model {
	return &discovery.Model{
		LitPrefix: prefix,
		LitBases:  map[int]string{10: "", 16: "0x"},
		RegSet:    map[string]bool{"%eax": true, "%ebp": true, "%fp": true, "r0": true, "$sp": true},
	}
}

func TestParseLit(t *testing.T) {
	m := modelWith("$")
	cases := map[string]int64{"$5": 5, "$-42": -42, "$0x10": 16, "7": 7, "-7": -7}
	for s, want := range cases {
		got, ok := ParseLit(m, s)
		if !ok || got != want {
			t.Errorf("ParseLit(%q) = %d,%v want %d", s, got, ok, want)
		}
	}
	for _, s := range []string{"%eax", "L1", "", "$", "1x"} {
		if _, ok := ParseLit(m, s); ok {
			t.Errorf("ParseLit(%q) should fail", s)
		}
	}
}

func TestSubTokens(t *testing.T) {
	cases := map[string][]string{
		"-8(%ebp)": {"-8", "%ebp"},
		"[%fp-8]":  {"%fp", "-8"},
		"120($sp)": {"120", "$sp"},
		"$z1":      {"$z1"},
		"%eax":     {"%eax"},
		"(r0)":     {"r0"},
		"$-4097":   {"-4097"}, // the sigil alone is not a token
	}
	for in, want := range cases {
		toks := subTokens(in)
		var got []string
		for _, t := range toks {
			got = append(got, t.text)
		}
		if len(got) != len(want) {
			t.Errorf("subTokens(%q) = %v, want %v", in, got, want)
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("subTokens(%q) = %v, want %v", in, got, want)
			}
		}
	}
}

func TestClassifyOperandKinds(t *testing.T) {
	m := modelWith("$")
	labels := map[string]bool{"L1": true}
	cases := []struct {
		text string
		kind discovery.OperandKind
	}{
		{"%eax", discovery.KReg},
		{"$5", discovery.KLit},
		{"L1", discovery.KLabelRef},
		{"-8(%ebp)", discovery.KMem},
		{"[%fp-8]", discovery.KMem},
		{"z1", discovery.KSym},
	}
	for _, c := range cases {
		op := discovery.Operand{Text: c.text}
		classifyOperand(m, labels, &op)
		if op.Kind != c.kind {
			t.Errorf("classify(%q) = %v, want %v", c.text, op.Kind, c.kind)
		}
	}
}

func TestModeShapes(t *testing.T) {
	m := modelWith("")
	op := discovery.Operand{Text: "-8(%ebp)"}
	classifyOperand(m, nil, &op)
	if op.ModeShape != "⟨n⟩(⟨r⟩)" {
		t.Errorf("shape = %q", op.ModeShape)
	}
	op2 := discovery.Operand{Text: "[%fp-8]"}
	classifyOperand(m, nil, &op2)
	if op2.ModeShape != "[⟨r⟩⟨n⟩]" {
		t.Errorf("shape = %q", op2.ModeShape)
	}
}

func TestClimb(t *testing.T) {
	// Threshold acceptance: accepted iff v <= 4095.
	accepts := func(v int64) bool { return v <= 4095 }
	if got := climb(accepts, 1<<31-1); got != 4095 {
		t.Errorf("climb = %d, want 4095", got)
	}
	// Everything accepted: returns the limit.
	if got := climb(func(int64) bool { return true }, 1000); got != 1000 {
		t.Errorf("climb(all) = %d", got)
	}
	// Nothing accepted beyond 0.
	if got := climb(func(v int64) bool { return v == 0 }, 1000); got != 0 {
		t.Errorf("climb(none) = %d", got)
	}
}

func TestReplaceTokenBoundary(t *testing.T) {
	// The immediate-range probe replaces whole operand tokens ($-prefixed
	// on the x86/VAX).
	got, ok := replaceToken("\taddl $12, %esp", "$12", "$99")
	if !ok || got != "\taddl $99, %esp" {
		t.Errorf("replaceToken = %q, %v", got, ok)
	}
	// A bare "12" is part of the "$12" token and must not match.
	if _, ok := replaceToken("\taddl $12, %esp", "12", "99"); ok {
		t.Error("partial token replacement must fail")
	}
	// "12" inside "120" must not match either.
	if _, ok := replaceToken("\taddi r0, 120", "12", "99"); ok {
		t.Error("substring replacement must fail")
	}
}

func TestContainsToken(t *testing.T) {
	if !containsToken("mov 1235, r0", "1235") {
		t.Error("should find 1235")
	}
	if containsToken("mov 12350, r0", "1235") {
		t.Error("must not find 1235 inside 12350")
	}
}
