package lexer

import (
	"fmt"
	"sort"
	"strings"

	"srcg/internal/asm"
	"srcg/internal/discovery"
)

// gibberishToken is substituted into operand positions to find positions
// that only accept registers (a rejected substitution proves the position
// is register-discriminating; symbol-accepting positions accept anything
// identifier-like).
const gibberishToken = "zzqk9"

// DiscoverRegisters finds the target's register set by scanning sample
// operands for candidate tokens and verifying each candidate with
// assembler accept/reject probing (paper §3.1: "we can textually scan the
// assembly code ... or we can draw conclusions based on whether a
// particular assembly program is accepted or rejected by the assembler").
// It then enumerates numeric-suffix families (from %o0, try %o1..%o31) to
// find registers the compiler never used.
func DiscoverRegisters(rig *discovery.Rig, m *discovery.Model, texts []string) error {
	candidates := collectCandidates(m, texts)
	if len(candidates) == 0 {
		return fmt.Errorf("lexer: no register candidates found")
	}
	// Find a register-discriminating probe: a text plus a candidate
	// occurrence whose replacement by gibberish is rejected.
	probe, ok := findProbe(rig, m, texts, candidates)
	if !ok {
		return fmt.Errorf("lexer: no register-discriminating operand position found")
	}
	m.RegSet = map[string]bool{}
	verified := func(tok string) bool {
		return rig.Accepts(probe.substitute(tok))
	}
	for _, c := range candidates {
		if verified(c) {
			m.RegSet[c] = true
		}
	}
	if len(m.RegSet) == 0 {
		return fmt.Errorf("lexer: no candidates verified as registers")
	}
	// Enumerate families: for every verified register ending in digits,
	// try all numeric suffixes 0..31.
	family := map[string]bool{}
	for r := range m.RegSet {
		stem := strings.TrimRight(r, "0123456789")
		if stem != r && stem != "" {
			family[stem] = true
		}
	}
	// Probe stems in sorted order: verified() hits the assembler, and the
	// probe sequence must be identical run to run.
	stems := make([]string, 0, len(family))
	for stem := range family {
		stems = append(stems, stem)
	}
	sort.Strings(stems)
	for _, stem := range stems {
		for n := 0; n <= 31; n++ {
			cand := fmt.Sprintf("%s%d", stem, n)
			if m.RegSet[cand] {
				continue
			}
			if verified(cand) {
				m.RegSet[cand] = true
			}
		}
	}
	m.Registers = make([]string, 0, len(m.RegSet))
	for r := range m.RegSet {
		m.Registers = append(m.Registers, r)
	}
	sort.Strings(m.Registers)
	return nil
}

// scanText tokenizes every instruction line of an assembly text (label
// definitions recorded, directives skipped).
func scanText(m *discovery.Model, text string) (instrs []discovery.Instr, labels map[string]bool) {
	labels = map[string]bool{}
	for i, raw := range strings.Split(text, "\n") {
		clean := stripComment(m, raw)
		label, rest := lineLabel(clean)
		if label != "" {
			labels[label] = true
		}
		if rest == "" || strings.HasPrefix(rest, ".") {
			continue
		}
		if ins, ok := tokenizeInstr(m, rest, i); ok {
			instrs = append(instrs, ins)
		}
	}
	return instrs, labels
}

// collectCandidates gathers operand sub-tokens from entire sample texts
// (prologues, call sequences, and payloads alike) that are not literals
// and not defined labels.
func collectCandidates(m *discovery.Model, texts []string) []string {
	seen := map[string]bool{}
	labels := map[string]bool{}
	var all []discovery.Instr
	for _, text := range texts {
		instrs, defs := scanText(m, text)
		for l := range defs {
			labels[l] = true
		}
		all = append(all, instrs...)
	}
	var out []string
	for _, ins := range all {
		for _, a := range ins.Args {
			for _, t := range subTokens(a.Text) {
				tok := t.text
				if seen[tok] || labels[tok] {
					continue
				}
				if _, isLit := ParseLit(m, tok); isLit {
					continue
				}
				if strings.HasPrefix(tok, "-") {
					continue
				}
				seen[tok] = true
				out = append(out, tok)
			}
		}
	}
	sort.Strings(out)
	return out
}

// regProbe is a sample text with one marked token occurrence that only
// assembles when the substituted token is a register.
type regProbe struct {
	pre, post string
}

func (p regProbe) substitute(tok string) string { return p.pre + tok + p.post }

// findProbe searches texts for a register-discriminating position.
func findProbe(rig *discovery.Rig, m *discovery.Model, texts []string, candidates []string) (regProbe, bool) {
	for _, text := range texts {
		instrs, _ := scanText(m, text)
		for _, ins := range instrs {
			for _, a := range ins.Args {
				for _, t := range subTokens(a.Text) {
					tok := t.text
					if !containsStr(candidates, tok) {
						continue
					}
					idx := strings.Index(text, ins.Raw)
					if idx < 0 {
						continue
					}
					tokIdx := strings.Index(text[idx:], tok)
					if tokIdx < 0 {
						continue
					}
					p := regProbe{
						pre:  text[:idx+tokIdx],
						post: text[idx+tokIdx+len(tok):],
					}
					// The position qualifies if gibberish is rejected, the
					// original token is accepted, and at least one OTHER
					// candidate is accepted too (a register position must
					// admit more than one register).
					if !rig.Accepts(p.substitute(gibberishToken)) && rig.Accepts(p.substitute(tok)) {
						others := 0
						for _, c := range candidates {
							if c != tok && rig.Accepts(p.substitute(c)) {
								others++
								break
							}
						}
						if others > 0 {
							return p, true
						}
					}
				}
			}
		}
	}
	return regProbe{}, false
}

func containsStr(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// DiscoverClobber finds an instruction template that sets a register to an
// immediate — the clobber mutation's workhorse (paper Fig. 6 uses the
// Alpha's ldiq). Candidates are two-operand instructions from the corpus
// probed with (literal, register) and (register, literal) operand orders;
// a candidate is validated *semantically* by inserting it into a sample
// region ahead of a register's final use and checking that the program
// then prints the clobber constant.
func DiscoverClobber(rig *discovery.Rig, m *discovery.Model, samples []*discovery.Sample) error {
	type cand struct {
		op       string
		litFirst bool
	}
	seen := map[cand]bool{}
	var cands []cand
	for _, s := range samples {
		for _, ins := range s.Region {
			if len(ins.Args) != 2 {
				continue
			}
			for _, c := range []cand{{ins.Op, true}, {ins.Op, false}} {
				if !seen[c] {
					seen[c] = true
					cands = append(cands, c)
				}
			}
		}
	}
	lit := func(k int64) string { return fmt.Sprintf("%s%d", m.LitPrefix, k) }
	render := func(c cand, reg string, k int64) string {
		if c.litFirst {
			return fmt.Sprintf("\t%s %s, %s", c.op, lit(k), reg)
		}
		return fmt.Sprintf("\t%s %s, %s", c.op, reg, lit(k))
	}
	// Assembler-level filter: a candidate passes if it assembles with at
	// least one discovered register (register classes differ: %cl on the
	// x86 is shift-count only).
	var accepted []cand
	base := samples[0]
	for _, c := range cands {
		for _, reg := range m.Registers {
			if rig.Accepts(insertLine(base, 0, render(c, reg, 1235))) {
				accepted = append(accepted, c)
				break
			}
		}
	}
	if len(accepted) == 0 {
		return fmt.Errorf("lexer: no clobber candidate accepted by the assembler")
	}
	// Semantic validation: inserting CLOB(K, R) before an instruction and
	// seeing K in the output proves the template sets R to K.
	initText, err := rig.CompileAsm(base.InitSource)
	if err != nil {
		return fmt.Errorf("lexer: init unit: %v", err)
	}
	initUnit, err := rig.Assemble(initText)
	if err != nil {
		return fmt.Errorf("lexer: init unit: %v", err)
	}
	for _, c := range accepted {
		c := c
		if validateClobber(rig, m, samples, initUnit, func(reg string, k int64) string { return render(c, reg, k) }) {
			m.Clobber = func(reg string, k int64) string { return render(c, reg, k) }
			m.ClobberText = strings.TrimSpace(strings.Replace(render(c, "<r>", 0), lit(0), "<k>", 1))
			return nil
		}
	}
	return fmt.Errorf("lexer: no clobber candidate validated semantically")
}

// insertLine rebuilds a sample's text with an extra line inserted before
// region instruction i.
func insertLine(s *discovery.Sample, i int, line string) string {
	var sb strings.Builder
	for _, l := range s.PreLines {
		sb.WriteString(l + "\n")
	}
	for j, ins := range s.Region {
		if j == i {
			sb.WriteString(line + "\n")
		}
		sb.WriteString(ins.Text() + "\n")
	}
	if i >= len(s.Region) {
		sb.WriteString(line + "\n")
	}
	for _, l := range s.PostLines {
		sb.WriteString(l + "\n")
	}
	return sb.String()
}

func validateClobber(rig *discovery.Rig, m *discovery.Model, samples []*discovery.Sample, initUnit *asm.Unit, render func(string, int64) string) bool {
	const k1, k2 = 29173, -12345
	for _, s := range samples {
		if s.Kind != discovery.PUnary && s.Kind != discovery.PBinary {
			continue
		}
		// Try clobbering each register occurring in the region, before
		// each instruction position following its first appearance.
		regs := regionRegisters(m, s)
		for _, reg := range regs {
			for i := 1; i <= len(s.Region); i++ {
				out1, err1 := assembleRun(rig, insertLine(s, i, render(reg, k1)), initUnit)
				if err1 != nil || out1 != fmt.Sprintf("%d\n", int32(k1)) {
					continue
				}
				out2, err2 := assembleRun(rig, insertLine(s, i, render(reg, k2)), initUnit)
				if err2 != nil || out2 != fmt.Sprintf("%d\n", int32(k2)) {
					continue
				}
				// Idempotence: a template that *sets* R prints k2 no
				// matter how often it runs; an accumulating template
				// (addl2 $k,R at a spot where R happens to be 0) prints
				// 2·k2 and is useless as a repair instruction later.
				line := render(reg, k2)
				out3, err3 := assembleRun(rig, insertLine(s, i, line+"\n"+line), initUnit)
				if err3 == nil && out3 == fmt.Sprintf("%d\n", int32(k2)) {
					return true
				}
			}
		}
	}
	return false
}

func assembleRun(rig *discovery.Rig, text string, initUnit *asm.Unit) (string, error) {
	u, err := rig.Assemble(text)
	if err != nil {
		return "", err
	}
	return rig.LinkRun(u, initUnit)
}

// regionRegisters lists registers mentioned in a sample's region.
func regionRegisters(m *discovery.Model, s *discovery.Sample) []string {
	seen := map[string]bool{}
	var out []string
	for _, ins := range s.Region {
		for _, a := range ins.Args {
			for _, t := range subTokens(a.Text) {
				if m.IsReg(t.text) && !seen[t.text] {
					seen[t.text] = true
					out = append(out, t.text)
				}
			}
		}
	}
	return out
}
