package extract

import (
	"srcg/internal/dfg"
	"srcg/internal/discovery"
	"srcg/internal/sem"
)

// opPrim maps a sample's C operator to its primitive.
var opPrim = map[string]string{
	"+": sem.PAdd, "-": sem.PSub, "*": sem.PMul, "/": sem.PDiv, "%": sem.PMod,
	"&": sem.PAnd, "|": sem.POr, "^": sem.PXor, "<<": sem.PShl, ">>": sem.PShr,
}

// MatchResult is the outcome of the §5.1 graph matching on one sample: the
// node P where the operand paths converge (the instruction performing the
// operation), the load-path instructions, and the store node Q.
type MatchResult struct {
	Sample string
	OpPrim string   // primitive suggested for the P node
	PSig   string   // signature at P
	Loads  []string // signatures on the Pb/Pc paths
	Moves  []string // signatures strictly between P and Q
	QSig   string   // signature at Q (the store); may equal PSig
}

// Match performs graph matching for binary (and unary/move) samples. It
// returns nil when the sample's structure does not fit the a = b ⊗ c
// pattern the matcher understands — the reverse interpreter then works
// unguided, exactly as in the paper.
func Match(g *dfg.Graph) *MatchResult {
	s := g.Sample
	var wantPrim string
	switch s.Kind {
	case discovery.PBinary:
		wantPrim = opPrim[s.COp]
	default:
		return nil
	}
	deps := g.Deps()
	// Q: the step that stores into a's slot.
	q := -1
	for i, st := range g.Steps {
		for _, o := range st.Outs {
			if o.Kind == dfg.PMem && o.Addr == g.SlotA {
				q = i
			}
		}
	}
	if q < 0 {
		return nil
	}
	// P: the first step whose inputs depend on every sample variable the
	// payload mentions.
	needed := map[string]bool{}
	for _, part := range splitShape(s.Shape) {
		if part == "a" || part == "b" || part == "c" {
			needed[part] = true
		}
	}
	if len(needed) < 2 {
		// Fewer than two operand paths: the paths-intersection analysis of
		// §5.1 is undefined (the first load would masquerade as P). Only
		// the store node is reported.
		return &MatchResult{Sample: s.Name, QSig: g.Steps[q].Sig}
	}
	p := -1
	for i := range g.Steps {
		all := true
		for v := range needed {
			if !deps[i][v] {
				all = false
			}
		}
		if all {
			p = i
			break
		}
	}
	if p < 0 || p > q {
		return nil
	}
	res := &MatchResult{
		Sample: s.Name,
		OpPrim: wantPrim,
		PSig:   g.Steps[p].Sig,
		QSig:   g.Steps[q].Sig,
	}
	for i := 0; i < p; i++ {
		res.Loads = append(res.Loads, g.Steps[i].Sig)
	}
	for i := p + 1; i < q; i++ {
		res.Moves = append(res.Moves, g.Steps[i].Sig)
	}
	return res
}

func splitShape(shape string) []string {
	var out []string
	cur := ""
	for _, r := range shape {
		if r == ',' {
			out = append(out, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}

// MBoosts accumulates the M(S,I,R) evidence from all matched samples:
// signature → primitive → weight.
func MBoosts(results []*MatchResult) map[string]map[string]float64 {
	boosts := map[string]map[string]float64{}
	add := func(sig, prim string, w float64) {
		if sig == "" || prim == "" {
			return
		}
		if boosts[sig] == nil {
			boosts[sig] = map[string]float64{}
		}
		if w > boosts[sig][prim] {
			boosts[sig][prim] = w
		}
	}
	for _, r := range results {
		if r == nil {
			continue
		}
		if r.PSig != "" && r.PSig != r.QSig {
			add(r.PSig, r.OpPrim, 1.0)
		}
		if r.PSig == r.QSig && r.PSig != "" {
			// CISC one-instruction form: the op and the store coincide.
			add(r.PSig, r.OpPrim, 1.0)
		}
		for _, l := range r.Loads {
			add(l, sem.PMove, 0.6)
			add(l, sem.PLoad, 0.6)
		}
		for _, m := range r.Moves {
			add(m, sem.PMove, 0.6)
		}
		if r.QSig != "" && r.QSig != r.PSig {
			add(r.QSig, sem.PMove, 0.5)
		}
	}
	return boosts
}
