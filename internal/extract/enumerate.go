package extract

import (
	"sort"
	"strings"

	"srcg/internal/dfg"
	"srcg/internal/sem"
)

// Weights are the coefficients of the likelihood function
// L(S,I,R) = c1·M + c2·P + c3·G + c4·N of §5.2.2. DefaultWeights reflects
// the paper's ordering: graph-match evidence weighs most, the mnemonic
// heuristic least.
type Weights struct {
	M, P, G, N float64
	// Size penalizes longer interpretations (the search favors the
	// shortest workable semantics, §5.2.1).
	Size float64
}

// DefaultWeights is the standard configuration.
var DefaultWeights = Weights{M: 8, P: 3, G: 2, N: 1, Size: 0.5}

// BlindWeights disables every heuristic (the E16 ablation baseline).
var BlindWeights = Weights{Size: 0.5}

// mnemonicHints maps substrings of instruction mnemonics to primitives
// (the N function; "highly inaccurate, so given a low weighting").
var mnemonicHints = []struct {
	sub  string
	prim string
}{
	{"add", sem.PAdd}, {"plus", sem.PAdd},
	{"sub", sem.PSub}, {"min", sem.PSub},
	{"mul", sem.PMul}, {"mlt", sem.PMul},
	{"div", sem.PDiv},
	{"rem", sem.PMod}, {"mod", sem.PMod},
	{"and", sem.PAnd}, {"bic", sem.PAnd},
	{"or", sem.POr}, {"bis", sem.POr},
	{"xor", sem.PXor}, {"eor", sem.PXor},
	{"sll", sem.PShl}, {"sal", sem.PShl}, {"shl", sem.PShl}, {"ashl", sem.PShl}, {"lsh", sem.PShl},
	{"sra", sem.PShr}, {"sar", sem.PShr}, {"shr", sem.PShr},
	{"ash", sem.PAsh},
	{"neg", sem.PNeg},
	{"not", sem.PNot}, {"com", sem.PNot},
	{"mov", sem.PMove}, {"mv", sem.PMove},
	{"ld", sem.PMove}, {"lw", sem.PMove}, {"li", sem.PMove},
	{"st", sem.PMove}, {"sw", sem.PMove},
	{"cmp", sem.PCmp}, {"tst", sem.PCmp},
}

// scored is a candidate semantics with its likelihood.
type scored struct {
	s     *sem.Sem
	score float64
}

// enumCtx carries the likelihood context for one search.
type enumCtx struct {
	w       Weights
	mboosts map[string]map[string]float64
	// samplePrims are the primitives the current sample's payload makes
	// likely (the P function: a=b*c boosts load/store/mul/add/shl).
	samplePrims map[string]bool
	bits        int
	// ash enables the signed-count shift primitive (the SignedShifts
	// extension beyond the paper; resolves the VAX ashl limitation).
	ash bool
}

// binPrims is the binary-primitive vocabulary for this search.
func (c *enumCtx) binPrims() []string {
	if c.ash {
		return append(append([]string(nil), binaryPrims...), sem.PAsh)
	}
	return binaryPrims
}

// primsFor returns the P-function primitive set for a sample operator.
func primsFor(op string) map[string]bool {
	out := map[string]bool{sem.PMove: true}
	if p, ok := opPrim[op]; ok {
		out[p] = true
		// The paper's example: multiplication by constants often expands
		// to shifts and adds.
		if p == sem.PMul {
			out[sem.PAdd] = true
			out[sem.PShl] = true
		}
	}
	switch op {
	case "-u":
		out[sem.PNeg] = true
	case "~u":
		out[sem.PNot] = true
	}
	return out
}

// sigTraits carries the G-function evidence from an instruction's shape
// (§5.2.2: "if I takes an address argument it is quite likely to perform a
// load or a store, and if it takes a label argument it probably does a
// branch ... an instruction that returns no result is likely to perform
// (some sort of) store operation").
type sigTraits struct {
	hasMemIn  bool
	hasMemOut bool
	isBranch  bool
	noOuts    bool
}

func traitsOf(st *dfg.Step) sigTraits {
	tr := sigTraits{isBranch: st.Target != "" && len(st.Outs) == 0, noOuts: len(st.Outs) == 0}
	for _, p := range st.Ins {
		if p.Kind == dfg.PMem {
			tr.hasMemIn = true
		}
	}
	for _, p := range st.Outs {
		if p.Kind == dfg.PMem {
			tr.hasMemOut = true
		}
	}
	return tr
}

// treeScore computes the heuristic components for one tree. A bare leaf
// (arg or load(arg)) is a move/load semantics and collects the move boost.
func (c *enumCtx) treeScore(sig, mnemonic string, tr sigTraits, t *sem.Tree) float64 {
	score := -c.w.Size * float64(t.Size())
	if t.Prim == sem.PArg || (t.Prim == sem.PLoad && t.Kids[0].Prim == sem.PArg) {
		if b, ok := c.mboosts[sig][sem.PMove]; ok {
			score += c.w.M * b
		}
		if c.samplePrims[sem.PMove] {
			score += c.w.P
		}
		// G: an instruction with a memory output is likely a store — the
		// plain value-passing semantics.
		if tr.hasMemOut && t.Prim == sem.PArg {
			score += c.w.G
		}
		for _, h := range mnemonicHints {
			if h.prim == sem.PMove && strings.Contains(mnemonic, h.sub) {
				score += c.w.N
				break
			}
		}
	}
	seen := map[string]bool{}
	var walk func(*sem.Tree)
	walk = func(n *sem.Tree) {
		if !seen[n.Prim] {
			seen[n.Prim] = true
			if b, ok := c.mboosts[sig][n.Prim]; ok {
				score += c.w.M * b
			}
			if c.samplePrims[n.Prim] {
				score += c.w.P
			}
			// G: shape evidence.
			if tr.hasMemIn && n.Prim == sem.PLoad {
				score += c.w.G
			}
			if tr.isBranch && isRelPrim(n.Prim) {
				score += c.w.G
			}
			if tr.noOuts && !tr.isBranch && n.Prim == sem.PCmp {
				score += c.w.G
			}
			for _, h := range mnemonicHints {
				if h.prim == n.Prim && strings.Contains(mnemonic, h.sub) {
					score += c.w.N
					break
				}
			}
		}
		for _, k := range n.Kids {
			walk(k)
		}
	}
	walk(t)
	return score
}

func isRelPrim(p string) bool {
	for _, r := range relPrims {
		if p == r {
			return true
		}
	}
	return false
}

// leaves builds the wrapped input leaves for a step: memory ports load,
// literal and register ports pass through, plus small-constant leaves.
func leaves(st *dfg.Step, bits int) []*sem.Tree {
	var out []*sem.Tree
	for _, p := range st.Ins {
		a := sem.Arg(p.Key())
		if p.Kind == dfg.PMem {
			out = append(out, sem.Load(a))
		} else {
			out = append(out, a)
		}
	}
	out = append(out, sem.Lit(0), sem.Lit(1), sem.Lit(int64(bits-1)))
	return out
}

var binaryPrims = []string{
	sem.PAdd, sem.PSub, sem.PMul, sem.PDiv, sem.PMod,
	sem.PAnd, sem.POr, sem.PXor, sem.PShl, sem.PShr,
}

var relPrims = []string{sem.PIsEQ, sem.PIsNE, sem.PIsLT, sem.PIsLE, sem.PIsGT, sem.PIsGE}

// outCandidates enumerates value trees for one output port.
func (c *enumCtx) outCandidates(st *dfg.Step, limit int) []*sem.Tree {
	ls := leaves(st, c.bits)
	nIn := len(st.Ins) // leaves beyond nIn are synthetic constants
	var out []*sem.Tree
	// Moves/loads (a bare leaf): input leaves only — constants as full
	// semantics are covered by literal ports.
	for i := 0; i < nIn; i++ {
		out = append(out, ls[i])
	}
	// Unary.
	for i := 0; i < nIn; i++ {
		out = append(out, sem.Un(sem.PNeg, ls[i]), sem.Un(sem.PNot, ls[i]))
	}
	// Value comparisons (the Alpha's cmplt family).
	for i := 0; i < nIn; i++ {
		for j := 0; j < nIn; j++ {
			if i == j {
				continue
			}
			for _, r := range relPrims {
				out = append(out, sem.Un(r, sem.Bin(sem.PCmp, ls[i], ls[j])))
			}
		}
	}
	// Binary over all ordered leaf pairs (synthetic constants allowed as
	// second operands: shiftRight(x, 31) is the sign-extension idiom).
	for _, p := range c.binPrims() {
		for i := 0; i < nIn; i++ {
			for j := range ls {
				if i == j {
					continue
				}
				out = append(out, sem.Bin(p, ls[i], ls[j]))
			}
			// Constant-first forms (7-b).
			for j := nIn; j < len(ls); j++ {
				out = append(out, sem.Bin(p, ls[j], ls[i]))
			}
		}
	}
	// Raw comparisons (condition-code producers: cmp, tstl).
	for i := 0; i < nIn; i++ {
		for j := 0; j < len(ls); j++ {
			if i == j {
				continue
			}
			out = append(out, sem.Bin(sem.PCmp, ls[i], ls[j]))
		}
	}
	// Bit-clear/or-not idioms (VAX bicl3, Alpha ornot).
	for _, p := range []string{sem.PAnd, sem.POr} {
		for i := 0; i < nIn; i++ {
			for j := 0; j < nIn; j++ {
				if i == j {
					continue
				}
				out = append(out, sem.Bin(p, ls[i], sem.Un(sem.PNot, ls[j])))
			}
		}
	}
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// condCandidates enumerates branch conditions for a step with a target.
func (c *enumCtx) condCandidates(st *dfg.Step) []*sem.Tree {
	ls := leaves(st, c.bits)
	nIn := len(st.Ins)
	var out []*sem.Tree
	// Condition-code-driven branches: isREL of a hidden input.
	for i, p := range st.Ins {
		if p.Kind == dfg.PHidden {
			for _, r := range relPrims {
				out = append(out, sem.Un(r, sem.Arg(st.Ins[i].Key())))
			}
		}
	}
	// Direct compare-and-branch (MIPS beq/bne/blt...).
	for i := 0; i < nIn; i++ {
		for j := 0; j < len(ls); j++ {
			if i == j || (j < nIn && st.Ins[j].Kind == dfg.PHidden) || st.Ins[i].Kind == dfg.PHidden {
				continue
			}
			for _, r := range relPrims {
				out = append(out, sem.Un(r, sem.Bin(sem.PCmp, ls[i], ls[j])))
			}
		}
	}
	// Unconditional.
	out = append(out, sem.Lit(1))
	return out
}

// candidates enumerates complete Sem candidates for a step, sorted by
// descending likelihood. Known (already fixed) trees for some output keys
// may be supplied in partial; only the missing parts are enumerated.
func (c *enumCtx) candidates(st *dfg.Step, partial *sem.Sem, perOut, total int) []scored {
	mnemonic := strings.ToLower(st.Instr.Op)
	tr := traitsOf(st)
	type outList struct {
		key   string
		trees []scored
	}
	var lists []outList
	seenKey := map[string]bool{}
	for _, p := range st.Outs {
		key := p.Key()
		if seenKey[key] {
			continue
		}
		seenKey[key] = true
		if partial != nil && partial.Outs[key] != nil {
			lists = append(lists, outList{key: key, trees: []scored{{s: &sem.Sem{Outs: map[string]*sem.Tree{key: partial.Outs[key]}}, score: 0}}})
			continue
		}
		raw := c.outCandidates(st, 0)
		trees := make([]scored, 0, len(raw))
		for _, t := range raw {
			trees = append(trees, scored{s: &sem.Sem{Outs: map[string]*sem.Tree{key: t}}, score: c.treeScore(st.Sig, mnemonic, tr, t)})
		}
		sort.SliceStable(trees, func(i, j int) bool { return trees[i].score > trees[j].score })
		if perOut > 0 && len(trees) > perOut {
			trees = trees[:perOut]
		}
		lists = append(lists, outList{key: key, trees: trees})
	}
	// Branch condition list (only for branch-like steps: a target and no
	// value outputs).
	isBranch := st.Target != "" && len(st.Outs) == 0
	var conds []scored
	if isBranch {
		if partial != nil && partial.Cond != nil {
			conds = []scored{{s: &sem.Sem{Cond: partial.Cond}, score: 0}}
		} else {
			for _, t := range c.condCandidates(st) {
				conds = append(conds, scored{s: &sem.Sem{Cond: t}, score: c.treeScore(st.Sig, mnemonic, tr, t)})
			}
			sort.SliceStable(conds, func(i, j int) bool { return conds[i].score > conds[j].score })
		}
	}

	// Cartesian combination, approximately score-ordered: lists are
	// individually sorted; enumerate by rank-sum rounds.
	combos := []scored{{s: &sem.Sem{Outs: map[string]*sem.Tree{}}, score: 0}}
	grow := func(next []scored, isCond bool) {
		var out []scored
		for _, base := range combos {
			for _, n := range next {
				ns := &sem.Sem{Outs: map[string]*sem.Tree{}, Cond: base.s.Cond}
				for k, v := range base.s.Outs {
					ns.Outs[k] = v
				}
				if isCond {
					ns.Cond = n.s.Cond
				} else {
					for k, v := range n.s.Outs {
						ns.Outs[k] = v
					}
				}
				out = append(out, scored{s: ns, score: base.score + n.score})
				if total > 0 && len(out) >= total*4 {
					break
				}
			}
			if total > 0 && len(out) >= total*4 {
				break
			}
		}
		combos = out
	}
	for _, l := range lists {
		grow(l.trees, false)
	}
	if isBranch {
		grow(conds, true)
	}
	sort.SliceStable(combos, func(i, j int) bool { return combos[i].score > combos[j].score })
	if total > 0 && len(combos) > total {
		combos = combos[:total]
	}
	return combos
}
