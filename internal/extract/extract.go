package extract

import (
	"container/heap"
	"sort"
	"strconv"
	"strings"

	"srcg/internal/dfg"
	"srcg/internal/discovery"
	"srcg/internal/obs"
	"srcg/internal/sem"
)

// Telemetry names the extractor maintains on its tracer. The search-cost
// counters are the discovery.* names Rig.Stats() views, so the extractor
// and Report() share one race-free tally.
const (
	// CtrCandidatesTried counts reverse-interpretation candidates run.
	CtrCandidatesTried = discovery.CtrCandidatesTried
	// HistCandidatesPerSolve is the histogram of candidates one solve
	// attempt consumed — the shape of the paper's search-cost story.
	HistCandidatesPerSolve = "extract.candidates_per_solve"
)

// Extractor runs the reverse interpretation search (§5.2.1–5.2.2): a
// probabilistic best-first enumeration of semantic interpretations, sample
// by sample, with already-fixed semantics carried forward (Fig. 13 solves
// mul given lw/sw/d-mode already known).
type Extractor struct {
	Bits    int
	W       Weights
	MBoosts map[string]map[string]float64
	// Budget bounds candidates tried per sample — the paper's timeout
	// ("a time-out function interrupts the interpreter and the sample is
	// discarded").
	Budget int
	// SignedShifts admits the signed-count shift primitive (ash) to the
	// candidate vocabulary. This is an extension beyond the paper: with it
	// the VAX's bidirectional ashl — which the paper reports as unhandled
	// (§5.2.3) — becomes expressible as one tree.
	SignedShifts bool

	Sems   map[string]*sem.Sem
	solved []*dfg.Graph
	all    []*dfg.Graph

	// retractions counts conflict-driven un-commits (bounded to keep the
	// search from oscillating).
	retractions int

	// Trace, when non-nil, receives search diagnostics.
	Trace func(format string, args ...interface{})

	// Tr, when non-nil, receives telemetry: the candidates-tried counter
	// and the per-solve candidate-cost histogram. A nil tracer is a no-op.
	Tr *obs.Tracer
}

// New creates an extractor with default settings. A debugging harness
// that wants search diagnostics sets Trace on the returned value — there
// is deliberately no package-level hook: discoveries running concurrently
// must not share mutable state. Search-effort counters land on Tr (set it
// after construction; a nil tracer still accepts them as no-ops).
func New(bits int, w Weights, mboosts map[string]map[string]float64) *Extractor {
	return &Extractor{
		Bits:    bits,
		W:       w,
		MBoosts: mboosts,
		Budget:  30000,
		Sems:    map[string]*sem.Sem{},
	}
}

// Outcome reports what happened to each sample.
type Outcome struct {
	Solved []string
	Failed []string
}

// SolveAll processes all graphs, iterating until no further sample can be
// solved. Samples whose search exhausts its budget are discarded, as in
// the paper (§5.2.2). A sample that becomes fully decidable but evaluates
// wrongly exposes a conflicting earlier interpretation (§5.2.1: samples
// "will allow several conflicting interpretations"); its signatures are
// retracted — bounded — and everything depending on them re-solves
// jointly.
func (x *Extractor) SolveAll(graphs []*dfg.Graph) Outcome {
	remaining := append([]*dfg.Graph(nil), graphs...)
	x.all = graphs
	var out Outcome
	for {
		sort.SliceStable(remaining, func(i, j int) bool {
			return len(x.missing(remaining[i])) < len(x.missing(remaining[j]))
		})
		progress := false
		var next []*dfg.Graph
		for _, g := range remaining {
			before := x.Tr.Counter(CtrCandidatesTried)
			verdict := x.solve(g)
			if x.Tr != nil {
				x.Tr.Observe(HistCandidatesPerSolve, x.Tr.Counter(CtrCandidatesTried)-before)
			}
			switch verdict {
			case solveOK:
				out.Solved = append(out.Solved, g.Sample.Name)
				x.solved = append(x.solved, g)
				progress = true
			case solveConflict:
				if x.retract(g) {
					progress = true
					// Re-queue everything that was un-solved.
					next = append(next, g)
					var stillSolved []*dfg.Graph
					kept := out.Solved[:0]
					for _, sg := range x.solved {
						if len(x.missing(sg)) > 0 {
							next = append(next, sg)
							continue
						}
						stillSolved = append(stillSolved, sg)
						kept = append(kept, sg.Sample.Name)
					}
					x.solved = stillSolved
					out.Solved = kept
				} else {
					next = append(next, g)
				}
			case solveRetry:
				next = append(next, g)
			case solveFail:
				next = append(next, g) // keep for later passes; may untangle
			}
		}
		remaining = next
		if !progress {
			break
		}
	}
	for _, g := range remaining {
		out.Failed = append(out.Failed, g.Sample.Name)
		x.Tr.Count(discovery.CtrTimeouts, 1)
	}
	return out
}

// retract un-commits the semantics of every signature a conflicting sample
// uses, so the conflict joins the next joint search. Bounded to avoid
// oscillation.
func (x *Extractor) retract(g *dfg.Graph) bool {
	if x.retractions >= 24 {
		return false
	}
	removed := false
	for i := range g.Steps {
		if _, ok := x.Sems[g.Steps[i].Sig]; ok {
			delete(x.Sems, g.Steps[i].Sig)
			removed = true
		}
	}
	if removed {
		x.retractions++
		if x.Trace != nil {
			x.Trace("retract: %s conflicts; its signatures re-open", g.Sample.Name)
		}
	}
	return removed
}

type solveResult int

const (
	solveOK solveResult = iota
	solveFail
	solveRetry
	solveConflict // fully decidable but evaluates wrongly
)

// need is one signature requiring (more) semantics for a graph.
type need struct {
	sig  string
	step *dfg.Step
}

// missing lists the signatures of g that lack complete semantics.
func (x *Extractor) missing(g *dfg.Graph) []need {
	var out []need
	seen := map[string]bool{}
	for i := range g.Steps {
		st := &g.Steps[i]
		if seen[st.Sig] {
			continue
		}
		s := x.Sems[st.Sig]
		incomplete := s == nil
		if s != nil {
			for _, p := range st.Outs {
				if s.Outs[p.Key()] == nil {
					incomplete = true
				}
			}
			if st.Target != "" && len(st.Outs) == 0 && s.Cond == nil {
				incomplete = true
			}
		}
		if incomplete {
			seen[st.Sig] = true
			out = append(out, need{sig: st.Sig, step: st})
		}
	}
	return out
}

// solve attempts one sample.
func (x *Extractor) solve(g *dfg.Graph) solveResult {
	needs := x.missing(g)
	if len(needs) == 0 {
		ok, err := Run(g, x.Sems, x.Bits)
		if ok && err == nil {
			x.Tr.Count(discovery.CtrSolvedByMatch, 1) // solved without new search
			return solveOK
		}
		if err != nil {
			// The committed semantics cannot even be evaluated on this
			// graph. Before discarding, attempt a recovery search: the
			// committed interpretation may be a special case of a more
			// general one that covers both (the VAX ashl committed as a
			// plain left shift by the positive-literal samples, where the
			// signed-count shift explains the negative-literal ones too).
			// Replacements must still satisfy every solved graph.
			if len(needs) == 0 {
				needs = x.allSigs(g)
			}
			if len(needs) <= 3 && x.search(g, needs, true) == solveOK {
				return solveOK
			}
			return solveFail
		}
		return solveConflict
	}
	if len(needs) > 3 {
		return solveRetry // too underconstrained this pass
	}
	return x.search(g, needs, false)
}

// allSigs lists every distinct signature of g as a need, complete or not —
// the recovery search's working set.
func (x *Extractor) allSigs(g *dfg.Graph) []need {
	var out []need
	seen := map[string]bool{}
	for i := range g.Steps {
		st := &g.Steps[i]
		if seen[st.Sig] {
			continue
		}
		seen[st.Sig] = true
		out = append(out, need{sig: st.Sig, step: st})
	}
	return out
}

// search runs the best-first product enumeration over candidate
// interpretations for the given needs and commits the first combination
// that explains g and stays consistent with every decidable sample. With
// fresh=true the enumeration ignores already-committed semantics for the
// needs (recovery: a committed special case may need replacing by a more
// general interpretation) — committed trees still participate via overlay
// merging, where the fresh candidate wins per output key.
func (x *Extractor) search(g *dfg.Graph, needs []need, fresh bool) solveResult {
	ctx := &enumCtx{
		w:           x.W,
		mboosts:     x.MBoosts,
		samplePrims: x.samplePrims(g.Sample),
		bits:        x.Bits,
		ash:         x.SignedShifts,
	}
	lists := make([][]scored, len(needs))
	perNeed := 400
	if len(needs) == 1 {
		perNeed = 4000
	}
	for i, n := range needs {
		partial := x.Sems[n.sig]
		if fresh {
			partial = nil
		}
		lists[i] = ctx.candidates(n.step, partial, 0, perNeed)
		if len(lists[i]) == 0 {
			return solveFail
		}
	}
	// Best-first product search over the candidate lists.
	h := &comboHeap{}
	heap.Init(h)
	start := make([]int, len(needs))
	heap.Push(h, combo{idx: start, score: totalScore(lists, start)})
	visited := map[string]bool{key(start): true}
	budget := x.Budget
	for h.Len() > 0 && budget > 0 {
		c := heap.Pop(h).(combo)
		budget--
		x.Tr.Count(CtrCandidatesTried, 1)
		trial := x.overlay(needs, lists, c.idx)
		if x.Trace != nil && x.Budget-budget <= 8 {
			ok, err := run(g, trial, x.Bits)
			x.Trace("%s try %v score=%.2f -> ok=%v err=%v", g.Sample.Name, c.idx, c.score, ok, err)
			for i, n := range needs {
				x.Trace("   %s = %s", n.sig, lists[i][c.idx[i]].s)
			}
		}
		if ok, err := run(g, trial, x.Bits); ok && err == nil && x.consistent(trial, needs) {
			// Commit.
			for i, n := range needs {
				x.Sems[n.sig] = mergeSem(x.Sems[n.sig], lists[i][c.idx[i]].s)
				if x.Trace != nil {
					x.Trace("commit %s: %s = %s", g.Sample.Name, n.sig, x.Sems[n.sig])
				}
			}
			x.Tr.Count(discovery.CtrSolvedBySearch, 1)
			return solveOK
		}
		for d := range c.idx {
			ni := append([]int(nil), c.idx...)
			ni[d]++
			if ni[d] >= len(lists[d]) || visited[key(ni)] {
				continue
			}
			visited[key(ni)] = true
			heap.Push(h, combo{idx: ni, score: totalScore(lists, ni)})
		}
	}
	return solveFail
}

// samplePrims implements the P function for a sample. Loads and stores are
// likely in every sample (§5.2.2's example boosts load/store/mul/add/shl
// for a=b*c).
func (x *Extractor) samplePrims(s *discovery.Sample) map[string]bool {
	var out map[string]bool
	switch s.Kind {
	case discovery.PBinary:
		out = primsFor(s.COp)
	case discovery.PUnary:
		out = primsFor(s.COp + "u")
	case discovery.PCond:
		out = map[string]bool{sem.PCmp: true, sem.PMove: true}
	default:
		out = map[string]bool{sem.PMove: true}
	}
	out[sem.PLoad] = true
	if x.SignedShifts && (s.COp == "<<" || s.COp == ">>") {
		out[sem.PAsh] = true
	}
	return out
}

// trialSems is a trial semantics lookup: the combo's assignments shadow
// the committed base. Layering instead of copying matters because the
// best-first search interprets one trial per candidate combo, and the
// committed map grows with every solved signature.
type trialSems struct {
	base map[string]*sem.Sem
	over map[string]*sem.Sem
}

func (t trialSems) lookup(sig string) (*sem.Sem, bool) {
	if s, ok := t.over[sig]; ok {
		return s, true
	}
	s, ok := t.base[sig]
	return s, ok
}

// overlay builds a trial semantics: fixed semantics plus this combo.
func (x *Extractor) overlay(needs []need, lists [][]scored, idx []int) trialSems {
	over := make(map[string]*sem.Sem, len(needs))
	for i, n := range needs {
		prev := over[n.sig]
		if prev == nil {
			prev = x.Sems[n.sig]
		}
		over[n.sig] = mergeSem(prev, lists[i][idx[i]].s)
	}
	return trialSems{base: x.Sems, over: over}
}

// mergeSem combines a partial existing semantics with newly found trees.
// Sems are immutable once built, so a one-sided merge aliases its input
// instead of copying — the search merges one per candidate combo.
func mergeSem(base, add *sem.Sem) *sem.Sem {
	if base == nil && add != nil {
		return add
	}
	if add == nil && base != nil {
		return base
	}
	out := &sem.Sem{Outs: map[string]*sem.Tree{}}
	if base != nil {
		for k, v := range base.Outs {
			out.Outs[k] = v
		}
		out.Cond = base.Cond
	}
	if add != nil {
		for k, v := range add.Outs {
			out.Outs[k] = v
		}
		if add.Cond != nil {
			out.Cond = add.Cond
		}
	}
	return out
}

// consistent re-verifies every sample that uses any of the newly assigned
// signatures AND is fully decidable under the trial semantics — solved or
// not ("choosing new interpretations ... until every sample produces the
// required result", §5.2; conflicts like mul(2,1) vs div(2,1) are §5.2.1).
func (x *Extractor) consistent(trial trialSems, needs []need) bool {
	usesNeed := func(g *dfg.Graph) bool {
		for i := range g.Steps {
			for _, n := range needs {
				if g.Steps[i].Sig == n.sig {
					return true
				}
			}
		}
		return false
	}
	decidable := func(g *dfg.Graph) bool {
		for i := range g.Steps {
			st := &g.Steps[i]
			s, _ := trial.lookup(st.Sig)
			if s == nil {
				return false
			}
			for _, p := range st.Outs {
				if s.Outs[p.Key()] == nil {
					return false
				}
			}
			if st.Target != "" && len(st.Outs) == 0 && s.Cond == nil {
				return false
			}
		}
		return true
	}
	for _, g := range x.all {
		if !usesNeed(g) || !decidable(g) {
			continue
		}
		// Only a decidable-but-wrong *value* is counter-evidence. An
		// evaluation error means the trial cannot even be interpreted on
		// that graph — typically a structurally deficient degenerate
		// sample (mod.a_a's a%a=0 masks the hi-register channel because 0
		// is also the reset value) — and such samples are left to fail
		// alone, as the paper discards unexplainable samples (§5.2.2).
		if ok, err := run(g, trial, x.Bits); !ok && err == nil {
			if x.Trace != nil {
				x.Trace("   inconsistent with %s", g.Sample.Name)
			}
			return false
		}
	}
	return true
}

func totalScore(lists [][]scored, idx []int) float64 {
	t := 0.0
	for i, j := range idx {
		t += lists[i][j].score
	}
	return t
}

// key encodes a combo index vector as a map key. The search visits (and
// re-checks) thousands of combos, so this avoids fmt's reflection.
func key(idx []int) string {
	var sb strings.Builder
	sb.Grow(4 * len(idx))
	for i, v := range idx {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(v))
	}
	return sb.String()
}

type combo struct {
	idx   []int
	score float64
}

type comboHeap []combo

func (h comboHeap) Len() int            { return len(h) }
func (h comboHeap) Less(i, j int) bool  { return h[i].score > h[j].score }
func (h comboHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *comboHeap) Push(x interface{}) { *h = append(*h, x.(combo)) }
func (h *comboHeap) Pop() interface{} {
	old := *h
	n := len(old)
	c := old[n-1]
	*h = old[:n-1]
	return c
}
