package extract

import (
	"testing"

	"srcg/internal/dfg"
	"srcg/internal/discovery"
	"srcg/internal/obs"
	"srcg/internal/sem"
)

// synthetic graph builders --------------------------------------------------

func sample(name string, kind discovery.PayloadKind, op, shape string, a0, b, c, expect int64) *discovery.Sample {
	s := &discovery.Sample{Name: name, Kind: kind, COp: op, Shape: shape,
		A0: a0, B: b, C: c, Expect: expect}
	// One extra valuation keeps value-symmetric misreadings out.
	s.Variants = []discovery.Valuation{{A0: a0 + 11, B: b + 7, C: c + 3,
		Expect: reeval(op, kind, b+7, c+3)}}
	return s
}

func reeval(op string, kind discovery.PayloadKind, b, c int64) int64 {
	switch kind {
	case discovery.PUnary:
		if op == "-" {
			return int64(-int32(b))
		}
		return b
	}
	switch op {
	case "+":
		return int64(int32(b) + int32(c))
	case "*":
		return int64(int32(b) * int32(c))
	}
	return b
}

func regPort(reg string, arg, producer int) dfg.Port {
	return dfg.Port{Kind: dfg.PReg, Reg: reg, ArgIdx: arg, Producer: producer}
}

func memPort(addr string, arg int) dfg.Port {
	return dfg.Port{Kind: dfg.PMem, Addr: addr, ArgIdx: arg, Producer: -1}
}

// moveGraph models x86 `a = b`: load b into a register, store it.
func moveGraph() *dfg.Graph {
	return &dfg.Graph{
		Sample: sample("move", discovery.PUnary, "", "b", 5, 77, 3, 77),
		Labels: map[string]int{}, SlotA: "A", SlotB: "B", SlotC: "C",
		Steps: []dfg.Step{
			{Sig: "movl:mem,reg",
				Ins:  []dfg.Port{memPort("B", 0)},
				Outs: []dfg.Port{regPort("%edx", 1, -1)}},
			{Sig: "movl:reg,mem",
				Ins:  []dfg.Port{regPort("%edx", 0, 0), memPort("A", 1)},
				Outs: []dfg.Port{memPort("A", 1)}},
		},
	}
}

// addGraph models x86 `a = b + c` with a two-address add.
func addGraph() *dfg.Graph {
	return &dfg.Graph{
		Sample: sample("add", discovery.PBinary, "+", "b,c", 9, 313, 109, 422),
		Labels: map[string]int{}, SlotA: "A", SlotB: "B", SlotC: "C",
		Steps: []dfg.Step{
			{Sig: "movl:mem,reg",
				Ins:  []dfg.Port{memPort("B", 0)},
				Outs: []dfg.Port{regPort("%edx", 1, -1)}},
			{Sig: "addl:mem,reg",
				Ins:  []dfg.Port{memPort("C", 0), regPort("%edx", 1, 0)},
				Outs: []dfg.Port{regPort("%edx", 1, -1)}},
			{Sig: "movl:reg,mem",
				Ins:  []dfg.Port{regPort("%edx", 0, 1), memPort("A", 1)},
				Outs: []dfg.Port{memPort("A", 1)}},
		},
	}
}

// condGraph models a compare/branch pair guarding a store (taken: b<c).
func condGraph(b, c, a0, k int64) *dfg.Graph {
	expect := k
	if b < c { // branch skips the store when b<c (negated relation)
		expect = a0
	}
	s := &discovery.Sample{Name: "cond", Kind: discovery.PCond, COp: ">=",
		A0: a0, B: b, C: c, K: k, Expect: expect}
	return &dfg.Graph{
		Sample: s,
		Labels: map[string]int{"L": 4},
		SlotA:  "A", SlotB: "B", SlotC: "C",
		Steps: []dfg.Step{
			{Sig: "movl:mem,reg",
				Ins:  []dfg.Port{memPort("B", 0)},
				Outs: []dfg.Port{regPort("%edx", 1, -1)}},
			{Sig: "cmpl:mem,reg",
				Ins:  []dfg.Port{memPort("C", 0), regPort("%edx", 1, 0)},
				Outs: []dfg.Port{{Kind: dfg.PHidden, Tag: "cc", ArgIdx: -1, Producer: -1, KeyName: "h.jl"}}},
			{Sig: "jl:label", Target: "L",
				Ins: []dfg.Port{{Kind: dfg.PHidden, Tag: "cc", ArgIdx: -1, Producer: 1, KeyName: "h"}}},
			{Sig: "movl:lit,mem",
				Ins:  []dfg.Port{{Kind: dfg.PLit, Lit: k, ArgIdx: 0, Producer: -1}, memPort("A", 1)},
				Outs: []dfg.Port{memPort("A", 1)}},
		},
	}
}

// ----------------------------------------------------------------------------

func TestRunWithKnownSemantics(t *testing.T) {
	sems := map[string]*sem.Sem{
		"movl:mem,reg": {Outs: map[string]*sem.Tree{"a1": sem.Load(sem.Arg("a0"))}},
		"movl:reg,mem": {Outs: map[string]*sem.Tree{"a1": sem.Arg("a0")}},
	}
	ok, err := Run(moveGraph(), sems, 32)
	if !ok || err != nil {
		t.Fatalf("Run = %v, %v", ok, err)
	}
	// A wrong interpretation must be rejected.
	sems["movl:reg,mem"] = &sem.Sem{Outs: map[string]*sem.Tree{"a1": sem.Un(sem.PNeg, sem.Arg("a0"))}}
	ok, err = Run(moveGraph(), sems, 32)
	if ok || err != nil {
		t.Fatalf("negated store accepted: %v %v", ok, err)
	}
}

func TestRunUnknownSig(t *testing.T) {
	_, err := Run(moveGraph(), map[string]*sem.Sem{}, 32)
	if _, isUnknown := err.(*ErrUnknown); !isUnknown {
		t.Fatalf("err = %v, want ErrUnknown", err)
	}
}

func TestSolveMoveAndAdd(t *testing.T) {
	x := New(32, DefaultWeights, nil)
	out := x.SolveAll([]*dfg.Graph{moveGraph(), addGraph()})
	if len(out.Failed) != 0 {
		t.Fatalf("failed: %v", out.Failed)
	}
	if got := x.Sems["movl:mem,reg"].Outs["a1"].String(); got != "load(a0)" {
		t.Errorf("load semantics = %q", got)
	}
	if got := x.Sems["addl:mem,reg"].Outs["a1"].String(); got != "add(load(a0), a1)" &&
		got != "add(a1, load(a0))" {
		t.Errorf("add semantics = %q", got)
	}
}

func TestSolveBranches(t *testing.T) {
	// Three flavors pin the branch relation.
	graphs := []*dfg.Graph{
		moveGraph(),
		condGraph(100, 200, 7, 99), // taken (b<c): a stays 7
		condGraph(200, 100, 7, 99), // not taken: a = 99
		condGraph(150, 150, 7, 99), // equal: not taken
	}
	x := New(32, DefaultWeights, nil)
	out := x.SolveAll(graphs)
	if len(out.Failed) != 0 {
		t.Fatalf("failed: %v", out.Failed)
	}
	jl := x.Sems["jl:label"]
	if jl == nil || jl.Cond == nil {
		t.Fatalf("no branch semantics: %v", jl)
	}
	cm := x.Sems["cmpl:mem,reg"]
	if cm == nil || cm.Outs["h.jl"] == nil {
		t.Fatalf("no compare semantics: %v", cm)
	}
}

func TestMatchBinary(t *testing.T) {
	g := addGraph()
	m := Match(g)
	if m == nil {
		t.Fatal("no match")
	}
	if m.PSig != "addl:mem,reg" || m.OpPrim != sem.PAdd {
		t.Errorf("P = %q prim %q", m.PSig, m.OpPrim)
	}
	if m.QSig != "movl:reg,mem" {
		t.Errorf("Q = %q", m.QSig)
	}
	if len(m.Loads) != 1 || m.Loads[0] != "movl:mem,reg" {
		t.Errorf("loads = %v", m.Loads)
	}
	boosts := MBoosts([]*MatchResult{m})
	if boosts["addl:mem,reg"][sem.PAdd] == 0 {
		t.Errorf("no M boost for the P node: %v", boosts)
	}
}

func TestMatchSkipsUnaryAndConst(t *testing.T) {
	if m := Match(moveGraph()); m != nil {
		t.Errorf("unary/move samples must not produce a P node: %+v", m)
	}
}

// TestLikelihoodOrdering verifies the E16 premise: default weights try far
// fewer candidates than a blind search on the same problem.
func TestLikelihoodOrdering(t *testing.T) {
	run := func(w Weights, boosts map[string]map[string]float64) int64 {
		tr := obs.New(obs.NewVirtualClock(), nil)
		x := New(32, w, boosts)
		x.Tr = tr
		out := x.SolveAll([]*dfg.Graph{moveGraph(), addGraph()})
		if len(out.Failed) != 0 {
			t.Fatalf("failed: %v", out.Failed)
		}
		return tr.Counter(CtrCandidatesTried)
	}
	m := Match(addGraph())
	guided := run(DefaultWeights, MBoosts([]*MatchResult{m}))
	blind := run(BlindWeights, nil)
	if guided > blind {
		t.Errorf("guided search (%d tries) worse than blind (%d)", guided, blind)
	}
}

func TestRunBranchToUnknownLabelExits(t *testing.T) {
	// A branch whose target is outside the region exits it.
	g := condGraph(200, 100, 7, 99) // not taken: a = 99
	g.Labels = map[string]int{}     // target resolves nowhere: exit
	sems := map[string]*sem.Sem{
		"movl:mem,reg": {Outs: map[string]*sem.Tree{"a1": sem.Load(sem.Arg("a0"))}},
		"movl:lit,mem": {Outs: map[string]*sem.Tree{"a1": sem.Arg("a0")}},
		"cmpl:mem,reg": {Outs: map[string]*sem.Tree{"h.jl": sem.Bin(sem.PCmp, sem.Arg("a1"), sem.Load(sem.Arg("a0")))}},
		"jl:label":     {Cond: sem.Un(sem.PIsLT, sem.Arg("h"))},
	}
	ok, err := Run(g, sems, 32)
	if !ok || err != nil {
		t.Fatalf("not-taken run: %v %v", ok, err)
	}
	// Taken: exits before the store, so a keeps a0.
	g2 := condGraph(100, 200, 7, 99)
	g2.Labels = map[string]int{}
	ok, err = Run(g2, sems, 32)
	if !ok || err != nil {
		t.Fatalf("taken run: %v %v", ok, err)
	}
}

func TestRunUndefinedRegisterRead(t *testing.T) {
	g := moveGraph()
	g.Steps[1].Ins[0].Producer = -1 // pretend nothing defined %edx
	sems := map[string]*sem.Sem{
		// The first step's semantics writes nothing (missing out tree).
		"movl:mem,reg": {Outs: map[string]*sem.Tree{}},
		"movl:reg,mem": {Outs: map[string]*sem.Tree{"a1": sem.Arg("a0")}},
	}
	if ok, err := Run(g, sems, 32); ok || err == nil {
		t.Fatalf("reading an unmodelled value must error, got ok=%v err=%v", ok, err)
	}
}

func TestMissingReportsPartialSems(t *testing.T) {
	x := New(32, DefaultWeights, nil)
	g := moveGraph()
	if n := len(x.missing(g)); n != 2 {
		t.Errorf("missing = %d, want 2", n)
	}
	x.Sems["movl:mem,reg"] = &sem.Sem{Outs: map[string]*sem.Tree{"a1": sem.Load(sem.Arg("a0"))}}
	if n := len(x.missing(g)); n != 1 {
		t.Errorf("missing after partial fix = %d, want 1", n)
	}
}

// shiftGraph models a VAX-style ashl: one instruction taking a literal
// count (positive = left, negative = right) plus a register-to-memory
// store. Both shift directions share the signature "ashx:lit,mem,reg".
func shiftGraph(name string, k, b, a0 int64) *dfg.Graph {
	expect := int64(int32(b) << uint(k))
	if k < 0 {
		expect = int64(int32(b) >> uint(-k))
	}
	op := "<<"
	if k < 0 {
		op = ">>"
	}
	s := &discovery.Sample{Name: name, Kind: discovery.PBinary, COp: op,
		Shape: "b,K", A0: a0, B: b, C: 3, K: k, Expect: expect}
	v2b := b + 64
	v2e := int64(int32(v2b) << uint(k))
	if k < 0 {
		v2e = int64(int32(v2b) >> uint(-k))
	}
	s.Variants = []discovery.Valuation{{A0: a0 + 5, B: v2b, C: 3, Expect: v2e}}
	return &dfg.Graph{
		Sample: s,
		Labels: map[string]int{}, SlotA: "A", SlotB: "B", SlotC: "C",
		Steps: []dfg.Step{
			{Sig: "ashx:lit,mem,reg",
				Ins: []dfg.Port{
					{Kind: dfg.PLit, Lit: k, ArgIdx: 0, Producer: -1},
					memPort("B", 1),
				},
				Outs: []dfg.Port{regPort("r0", 2, -1)}},
			{Sig: "movl:reg,mem",
				Ins:  []dfg.Port{regPort("r0", 0, 0), memPort("A", 1)},
				Outs: []dfg.Port{memPort("A", 1)}},
		},
	}
}

// TestRecoverySearchGeneralizes reproduces the VAX ashl situation in
// miniature: the positive-count sample commits a plain left shift for the
// shared signature; the negative-count sample then cannot be evaluated
// under it. With the SignedShifts extension the recovery search must
// replace the committed special case by the signed-count shift, solving
// both samples.
func TestRecoverySearchGeneralizes(t *testing.T) {
	left := shiftGraph("shl.b_K", 4, 2100, 99)
	right := shiftGraph("shr.b_K", -3, 4096, 98)
	x := New(32, DefaultWeights, nil)
	x.SignedShifts = true
	out := x.SolveAll([]*dfg.Graph{left, right})
	if len(out.Failed) != 0 {
		t.Fatalf("failed: %v (solved %v)", out.Failed, out.Solved)
	}
	got := x.Sems["ashx:lit,mem,reg"].Outs["a2"]
	if got == nil || got.Prim != sem.PAsh {
		t.Errorf("shared signature should generalize to the signed shift, got %v", x.Sems["ashx:lit,mem,reg"])
	}
}

// TestRecoverySearchPaperFaithful checks the same scenario without the
// extension: the left shift stays solved with the plain primitive and the
// right shift is discarded — the paper's §5.2.3 outcome.
func TestRecoverySearchPaperFaithful(t *testing.T) {
	left := shiftGraph("shl.b_K", 4, 2100, 99)
	right := shiftGraph("shr.b_K", -3, 4096, 98)
	x := New(32, DefaultWeights, nil)
	out := x.SolveAll([]*dfg.Graph{left, right})
	if len(out.Solved) != 1 || out.Solved[0] != "shl.b_K" {
		t.Errorf("solved = %v, want only shl.b_K", out.Solved)
	}
	if len(out.Failed) != 1 || out.Failed[0] != "shr.b_K" {
		t.Errorf("failed = %v, want only shr.b_K", out.Failed)
	}
	got := x.Sems["ashx:lit,mem,reg"].Outs["a2"]
	if got == nil || got.Prim != sem.PShl {
		t.Errorf("committed semantics = %v, want plain shiftLeft", x.Sems["ashx:lit,mem,reg"])
	}
}
