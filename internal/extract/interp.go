// Package extract implements the Extractor (paper §5): graph matching
// (§5.1) assigns likely roles to instructions, and reverse interpretation
// (§5.2) searches for semantic interpretations — ordered by the likelihood
// L(S,I,R) = c1·M + c2·P + c3·G + c4·N — until every sample evaluates to
// its expected result.
package extract

import (
	"fmt"

	"srcg/internal/dfg"
	"srcg/internal/sem"
)

// ErrUnknown reports an instruction signature without a semantic
// interpretation during evaluation.
type ErrUnknown struct{ Sig string }

func (e *ErrUnknown) Error() string { return "extract: no semantics for " + e.Sig }

// undef marks a value written by an output port whose tree is unknown.
var undef = sem.Value{Addr: "\x00undef"}

// Run interprets a sample's graph under the given semantics for EVERY
// valuation of the hidden values, reporting whether the sample's variable
// `a` always ends with its expected value. Checking all valuations starves
// value-symmetric misinterpretations (a "negated-load / negated-store"
// pair explains one valuation of a=b, but not three).
func Run(g *dfg.Graph, sems map[string]*sem.Sem, bits int) (bool, error) {
	return run(g, trialSems{base: sems}, bits)
}

// run is Run over a layered trial: the search interprets thousands of
// candidate combos per sample, and the overlay spares it a full map copy
// for each one.
func run(g *dfg.Graph, sems trialSems, bits int) (bool, error) {
	for i := 0; i < g.Sample.NumValuations(); i++ {
		v := g.Sample.Valuation(i)
		ok, err := runOne(g, sems, bits, v.A0, v.B, v.C, v.Expect)
		if !ok || err != nil {
			return ok, err
		}
	}
	return true, nil
}

func runOne(g *dfg.Graph, sems trialSems, bits int, a0, b, c, expect int64) (ok bool, err error) {
	st := sem.NewState(bits)
	st.Mem[g.SlotA] = truncTo(a0, bits)
	st.Mem[g.SlotB] = truncTo(b, bits)
	st.Mem[g.SlotC] = truncTo(c, bits)
	regs := map[string]sem.Value{}
	hidden := map[string]sem.Value{}

	pc := 0
	for steps := 0; pc < len(g.Steps); steps++ {
		if steps > 4*len(g.Steps)+16 {
			return false, fmt.Errorf("extract: interpretation did not terminate")
		}
		stp := &g.Steps[pc]
		s, okSem := sems.lookup(stp.Sig)
		if !okSem {
			return false, &ErrUnknown{Sig: stp.Sig}
		}
		in := map[string]sem.Value{}
		for _, p := range stp.Ins {
			switch p.Kind {
			case dfg.PReg:
				v, okv := regs[p.Reg]
				if !okv {
					return false, fmt.Errorf("extract: read of undefined register %s", p.Reg)
				}
				if v == undef {
					return false, fmt.Errorf("extract: read of unmodelled value in %s", p.Reg)
				}
				in[p.Key()] = v
			case dfg.PMem:
				in[p.Key()] = sem.Value{Addr: p.Addr}
			case dfg.PLit:
				in[p.Key()] = sem.Value{N: p.Lit}
			case dfg.PHidden:
				v, okv := hidden[p.Tag]
				if !okv {
					return false, fmt.Errorf("extract: read of undefined hidden channel %s", p.Tag)
				}
				in[p.Key()] = v
			}
		}
		// Outputs.
		for _, p := range stp.Outs {
			t := s.Outs[p.Key()]
			var v sem.Value
			if t == nil {
				v = undef
			} else {
				var errv error
				v, errv = t.Eval(in, st)
				if errv != nil {
					return false, errv
				}
			}
			switch p.Kind {
			case dfg.PReg:
				regs[p.Reg] = v
			case dfg.PHidden:
				hidden[p.Tag] = v
			case dfg.PMem:
				if v == undef {
					return false, fmt.Errorf("extract: unmodelled store")
				}
				if v.IsAddr() {
					return false, fmt.Errorf("extract: storing address %s", v)
				}
				st.Mem[p.Addr] = v.N
			}
		}
		// Control.
		next := pc + 1
		if s.Cond != nil {
			cv, errc := s.Cond.Eval(in, st)
			if errc != nil {
				return false, errc
			}
			if cv.IsAddr() {
				return false, fmt.Errorf("extract: address as branch condition")
			}
			if cv.N != 0 {
				if idx, okl := g.Labels[stp.Target]; okl {
					next = idx
				} else {
					next = len(g.Steps) // exit the region
				}
			}
		}
		pc = next
	}
	return st.Mem[g.SlotA] == truncTo(expect, bits), nil
}

func truncTo(v int64, bits int) int64 {
	if bits >= 64 {
		return v
	}
	shift := 64 - uint(bits)
	return (v << shift) >> shift
}
