// Package asm models assembly programs at the level the simulated
// toolchains share: text lines split into label/opcode/arguments, decoded
// operands, assembled units, and linked executable images. Each simulated
// architecture supplies its own surface syntax and validation on top.
package asm

import (
	"fmt"
	"strings"
)

// Line is one raw assembly source line split into its parts.
type Line struct {
	Num     int    // 1-based source line number
	Label   string // label defined on this line ("" if none)
	Op      string // opcode or directive ("" for label-only/blank lines)
	Args    []string
	IsDir   bool   // opcode starts with '.' (directive)
	Raw     string // original text
	Comment string
}

// Syntax holds the surface conventions a splitter needs. All five simulated
// assemblers are variants of the "standard notation" the paper describes
// (§3.1): one instruction per line, optional label, comma-separated args,
// line comments.
type Syntax struct {
	CommentChars []string // comment-to-end-of-line introducers, e.g. "#", "!"
	LabelSuffix  string   // usually ":"
}

// SplitLine splits one raw line according to the syntax. A nil error with a
// zero-valued Line (Op=="" and Label=="") means the line was blank.
func (s Syntax) SplitLine(num int, raw string) (Line, error) {
	ln := Line{Num: num, Raw: raw}
	text := raw
	for _, cc := range s.CommentChars {
		if i := strings.Index(text, cc); i >= 0 {
			ln.Comment = strings.TrimSpace(text[i+len(cc):])
			text = text[:i]
		}
	}
	text = strings.TrimSpace(text)
	if text == "" {
		return ln, nil
	}
	// Optional label.
	if i := strings.Index(text, s.LabelSuffix); i >= 0 {
		candidate := strings.TrimSpace(text[:i])
		if candidate != "" && isLabelToken(candidate) {
			ln.Label = candidate
			text = strings.TrimSpace(text[i+len(s.LabelSuffix):])
		}
	}
	if text == "" {
		return ln, nil
	}
	// Opcode is the first whitespace-delimited word; the rest are
	// comma-separated arguments.
	op := text
	rest := ""
	if i := strings.IndexAny(text, " \t"); i >= 0 {
		op, rest = text[:i], strings.TrimSpace(text[i+1:])
	}
	ln.Op = op
	ln.IsDir = strings.HasPrefix(op, ".")
	if rest != "" {
		for _, a := range strings.Split(rest, ",") {
			ln.Args = append(ln.Args, strings.TrimSpace(a))
		}
	}
	return ln, nil
}

// isLabelToken reports whether text can be a label: a single token with no
// spaces (so we don't mistake "mov a, b" for a weird label).
func isLabelToken(text string) bool {
	return !strings.ContainsAny(text, " \t,")
}

// ArgKind classifies decoded operands.
type ArgKind int

// Operand kinds.
const (
	Reg ArgKind = iota // register
	Imm                // integer immediate
	Mem                // base register + displacement
	Sym                // symbolic reference: label or data symbol
)

func (k ArgKind) String() string {
	switch k {
	case Reg:
		return "reg"
	case Imm:
		return "imm"
	case Mem:
		return "mem"
	case Sym:
		return "sym"
	}
	return fmt.Sprintf("ArgKind(%d)", int(k))
}

// Arg is one decoded operand.
type Arg struct {
	Kind ArgKind
	Reg  string // Reg: register name; Mem: base register
	Imm  int64  // Imm value or Mem displacement
	Sym  string // Sym name; also Mem absolute symbol when Reg==""
	Raw  string // original text
}

func (a Arg) String() string {
	if a.Raw != "" {
		return a.Raw
	}
	switch a.Kind {
	case Reg:
		return a.Reg
	case Imm:
		return fmt.Sprintf("%d", a.Imm)
	case Mem:
		return fmt.Sprintf("%d(%s)", a.Imm, a.Reg)
	default:
		return a.Sym
	}
}

// Instr is one decoded machine instruction.
type Instr struct {
	Label string // label defined at this instruction ("" if none)
	Op    string
	Args  []Arg
	Line  int // source line, for error reporting
}

func (i Instr) String() string {
	var sb strings.Builder
	if i.Label != "" {
		sb.WriteString(i.Label + ": ")
	}
	sb.WriteString(i.Op)
	for j, a := range i.Args {
		if j == 0 {
			sb.WriteString(" ")
		} else {
			sb.WriteString(", ")
		}
		sb.WriteString(a.String())
	}
	return sb.String()
}

// Unit is one assembled translation unit (the output of `as`).
type Unit struct {
	Arch    string
	Instrs  []Instr
	Globals []string          // exported label/data names (.globl)
	Comm    []string          // zero-initialized data symbols (.comm), word-sized
	Strings map[string]string // label -> bytes (.asciz)
	Aliases map[string]string // extra labels sharing an instruction ("" target = end)
}

// AsmError is an assembly diagnostic (the paper only needs accept/reject,
// but good diagnostics make the simulated toolchains debuggable).
type AsmError struct {
	Arch string
	Line int
	Msg  string
}

func (e *AsmError) Error() string { return fmt.Sprintf("%s-as:%d: %s", e.Arch, e.Line, e.Msg) }

// Errf builds an AsmError.
func Errf(arch string, line int, format string, args ...any) error {
	return &AsmError{Arch: arch, Line: line, Msg: fmt.Sprintf(format, args...)}
}
