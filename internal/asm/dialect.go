package asm

import "strings"

// Dialect bundles what a simulated assembler needs beyond operand decoding:
// the surface syntax and an instruction decoder. Directive handling
// (.text/.globl/.comm/.asciz/...) is shared, since all five simulated
// toolchains use the same Unix-style directives.
type Dialect struct {
	Arch   string
	Syntax Syntax
	// Decode validates and decodes one instruction line (Op != "", not a
	// directive). It must reject unknown opcodes and illegal operands —
	// the discovery unit probes syntax by feeding the assembler garbage.
	Decode func(line Line) (Instr, error)
	// ValidLabel reports whether a token may be a label. Defaults to
	// DefaultValidLabel when nil.
	ValidLabel func(string) bool
}

// DefaultValidLabel accepts C-identifier-like labels plus '.' and '$'.
func DefaultValidLabel(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == '.' || c == '$' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// ParseUnit assembles source text into a Unit using the dialect. Multiple
// labels may land on the same instruction (mutations that delete an
// instruction between two labels produce this); extras are recorded as
// aliases.
func (d Dialect) ParseUnit(text string) (*Unit, error) {
	u := &Unit{Arch: d.Arch, Strings: map[string]string{}, Aliases: map[string]string{}}
	valid := d.ValidLabel
	if valid == nil {
		valid = DefaultValidLabel
	}
	var pending []string
	attach := func(ins Instr) Instr {
		if len(pending) > 0 {
			ins.Label = pending[0]
			for _, extra := range pending[1:] {
				u.Aliases[extra] = pending[0]
			}
			pending = nil
		}
		return ins
	}
	for num, raw := range strings.Split(text, "\n") {
		line, err := d.Syntax.SplitLine(num+1, raw)
		if err != nil {
			return nil, err
		}
		if line.Label != "" {
			if !valid(line.Label) {
				return nil, Errf(d.Arch, line.Num, "bad label %q", line.Label)
			}
		}
		if line.Op == "" {
			if line.Label != "" {
				pending = append(pending, line.Label)
			}
			continue
		}
		if line.IsDir {
			if err := d.directive(u, line); err != nil {
				return nil, err
			}
			continue
		}
		if line.Label != "" {
			pending = append(pending, line.Label)
		}
		ins, err := d.Decode(line)
		if err != nil {
			return nil, err
		}
		u.Instrs = append(u.Instrs, attach(ins))
	}
	for _, l := range pending {
		// Trailing labels reference the end of the stream; record them as
		// aliases of a synthetic terminator so links still resolve.
		u.Aliases[l] = endLabel
	}
	return u, nil
}

// endLabel marks "one past the last instruction" for trailing labels.
const endLabel = "$end"

func (d Dialect) directive(u *Unit, line Line) error {
	switch line.Op {
	case ".text", ".data", ".align", ".word", ".ent", ".end", ".frame", ".set":
		return nil
	case ".globl", ".global":
		if len(line.Args) != 1 {
			return Errf(d.Arch, line.Num, "%s needs one symbol", line.Op)
		}
		u.Globals = append(u.Globals, line.Args[0])
		return nil
	case ".comm":
		if len(line.Args) < 1 {
			return Errf(d.Arch, line.Num, ".comm needs a symbol")
		}
		u.Comm = append(u.Comm, line.Args[0])
		u.Globals = append(u.Globals, line.Args[0])
		return nil
	case ".asciz", ".string", ".ascii":
		return DirString(u, d.Arch, line)
	default:
		return Errf(d.Arch, line.Num, "unknown directive %s", line.Op)
	}
}
