package asm

import (
	"fmt"
	"sort"

	"srcg/internal/machine"
)

// Image is a linked executable: a flat instruction stream plus an initial
// data segment. It is what the simulated `ld` produces and the simulated
// machine executes.
type Image struct {
	Arch     string
	WordSize int // bytes per integer word in static data
	Instrs   []Instr
	Labels   map[string]int    // code label -> instruction index
	Symbols  map[string]uint64 // data symbol -> address
	Data     map[uint64]byte   // initial data segment contents
	DataEnd  uint64            // first address past the static data segment
	Entry    int               // instruction index of the entry point
}

// Link combines assembled units into an executable image. Non-exported
// labels are renamed per unit (real linkers keep them unit-local); exported
// labels and data symbols share one namespace. The entry point is `main`.
func Link(arch string, wordSize int, units []*Unit) (*Image, error) {
	img := &Image{
		Arch:     arch,
		WordSize: wordSize,
		Labels:   map[string]int{},
		Symbols:  map[string]uint64{},
		Data:     map[uint64]byte{},
	}
	addr := uint64(machine.DataBase)

	for ui, u := range units {
		exported := map[string]bool{}
		for _, g := range u.Globals {
			exported[g] = true
		}
		rename := func(name string) string {
			if exported[name] {
				return name
			}
			return fmt.Sprintf("u%d$%s", ui, name)
		}

		// Code labels defined in this unit (needed to tell label refs
		// from data refs when renaming).
		defined := map[string]bool{}
		for _, ins := range u.Instrs {
			if ins.Label != "" {
				defined[ins.Label] = true
			}
		}
		for alias := range u.Aliases {
			defined[alias] = true
		}
		// Unit-local data names (strings, .comm) must be renamed in
		// references exactly like code labels.
		for l := range u.Strings {
			defined[l] = true
		}
		for _, c := range u.Comm {
			defined[c] = true
		}

		for _, ins := range u.Instrs {
			ni := ins
			if ni.Label != "" {
				ni.Label = rename(ni.Label)
				if _, dup := img.Labels[ni.Label]; dup {
					return nil, fmt.Errorf("%s-ld: duplicate label %q", arch, ni.Label)
				}
				img.Labels[ni.Label] = len(img.Instrs)
			}
			ni.Args = append([]Arg(nil), ins.Args...)
			for ai, a := range ni.Args {
				if a.Sym != "" && defined[a.Sym] {
					ni.Args[ai].Sym = rename(a.Sym)
					ni.Args[ai].Raw = "" // raw text no longer matches
				}
			}
			img.Instrs = append(img.Instrs, ni)
		}
		// Alias labels share the canonical label's instruction index; a
		// trailing label (canonical target endLabel) points one past the
		// unit's last instruction.
		aliases := make([]string, 0, len(u.Aliases))
		for a := range u.Aliases {
			aliases = append(aliases, a)
		}
		sort.Strings(aliases)
		for _, a := range aliases {
			canon := u.Aliases[a]
			name := rename(a)
			if _, dup := img.Labels[name]; dup {
				return nil, fmt.Errorf("%s-ld: duplicate label %q", arch, name)
			}
			if canon == endLabel {
				img.Labels[name] = len(img.Instrs)
				continue
			}
			idx, ok := img.Labels[rename(canon)]
			if !ok {
				return nil, fmt.Errorf("%s-ld: dangling label alias %q -> %q", arch, a, canon)
			}
			img.Labels[name] = idx
		}

		// Data: .comm symbols then strings, in deterministic order.
		for _, c := range u.Comm {
			name := rename(c)
			if _, dup := img.Symbols[name]; dup {
				// Multiple .comm for the same exported symbol merge, as
				// with real common symbols.
				if exported[c] {
					continue
				}
				return nil, fmt.Errorf("%s-ld: duplicate data symbol %q", arch, name)
			}
			img.Symbols[name] = addr
			addr += uint64(wordSize)
		}
		strLabels := make([]string, 0, len(u.Strings))
		for l := range u.Strings {
			strLabels = append(strLabels, l)
		}
		sort.Strings(strLabels)
		for _, l := range strLabels {
			name := rename(l)
			if _, dup := img.Symbols[name]; dup {
				return nil, fmt.Errorf("%s-ld: duplicate data symbol %q", arch, name)
			}
			img.Symbols[name] = addr
			for _, b := range []byte(u.Strings[l]) {
				img.Data[addr] = b
				addr++
			}
			img.Data[addr] = 0
			addr++
			// Keep words aligned.
			for addr%uint64(wordSize) != 0 {
				addr++
			}
		}
	}

	img.DataEnd = addr
	entry, ok := img.Labels["main"]
	if !ok {
		return nil, fmt.Errorf("%s-ld: undefined entry point main", arch)
	}
	img.Entry = entry
	return img, nil
}

// Builtins are runtime services every simulated OS provides; calls to these
// names resolve even though no unit defines them.
var Builtins = map[string]bool{
	"printf": true,
	"exit":   true,
	".mul":   true, // SPARC software multiply
	".div":   true, // SPARC software divide
	".rem":   true, // SPARC software remainder
}

// CheckUndefined verifies that every symbolic reference resolves to a code
// label, data symbol, or runtime builtin.
func (img *Image) CheckUndefined() error {
	for _, ins := range img.Instrs {
		for _, a := range ins.Args {
			if a.Sym == "" {
				continue
			}
			if _, ok := img.Labels[a.Sym]; ok {
				continue
			}
			if _, ok := img.Symbols[a.Sym]; ok {
				continue
			}
			if Builtins[a.Sym] {
				continue
			}
			return fmt.Errorf("%s-ld: undefined symbol %q (line %d)", img.Arch, a.Sym, ins.Line)
		}
	}
	return nil
}

// Resolve returns the data address for a symbol, consulting data symbols
// first (labels are code addresses, meaningless as data).
func (img *Image) Resolve(sym string) (uint64, bool) {
	a, ok := img.Symbols[sym]
	return a, ok
}
