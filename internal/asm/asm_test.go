package asm

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestSplitLine(t *testing.T) {
	syn := Syntax{CommentChars: []string{"#"}, LabelSuffix: ":"}
	cases := []struct {
		raw   string
		label string
		op    string
		args  []string
	}{
		{"\tmovl $5, %eax", "", "movl", []string{"$5", "%eax"}},
		{"L1: addl %ebx, %eax # comment", "L1", "addl", []string{"%ebx", "%eax"}},
		{"main:", "main", "", nil},
		{"   ", "", "", nil},
		{"# only a comment", "", "", nil},
		{"\tret", "", "ret", nil},
		{".globl main", "", ".globl", []string{"main"}},
	}
	for _, c := range cases {
		l, err := syn.SplitLine(1, c.raw)
		if err != nil {
			t.Errorf("SplitLine(%q): %v", c.raw, err)
			continue
		}
		if l.Label != c.label || l.Op != c.op {
			t.Errorf("SplitLine(%q) = label %q op %q, want %q %q", c.raw, l.Label, l.Op, c.label, c.op)
		}
		if strings.Join(l.Args, "|") != strings.Join(c.args, "|") {
			t.Errorf("SplitLine(%q) args = %v, want %v", c.raw, l.Args, c.args)
		}
	}
}

func TestSplitLineSPARCBrackets(t *testing.T) {
	syn := Syntax{CommentChars: []string{"!"}, LabelSuffix: ":"}
	l, err := syn.SplitLine(1, "\tst %o0, [%fp-8] ! spill")
	if err != nil {
		t.Fatal(err)
	}
	if l.Op != "st" || len(l.Args) != 2 || l.Args[1] != "[%fp-8]" {
		t.Errorf("split = %+v", l)
	}
	if l.Comment != "spill" {
		t.Errorf("comment = %q", l.Comment)
	}
}

func TestParseInt(t *testing.T) {
	cases := map[string]int64{
		"0": 0, "1235": 1235, "-42": -42, "+7": 7,
		"0x4d3": 1235, "0X4D3": 1235, "02323": 1235, "-0x10": -16,
	}
	for s, want := range cases {
		got, ok := ParseInt(s)
		if !ok || got != want {
			t.Errorf("ParseInt(%q) = %d,%v want %d", s, got, ok, want)
		}
	}
	for _, s := range []string{"", "-", "0x", "12a", "08", "x", "1_0"} {
		if _, ok := ParseInt(s); ok {
			t.Errorf("ParseInt(%q) should fail", s)
		}
	}
}

func TestParseIntQuick(t *testing.T) {
	// Decimal rendering of any int64 parses back to itself.
	f := func(v int64) bool {
		got, ok := ParseInt(itoa(v))
		return ok && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func itoa(v int64) string {
	if v < 0 {
		// Avoid overflow on MinInt64 by building digit-wise.
		if v == -9223372036854775808 {
			return "-9223372036854775808"
		}
		return "-" + itoa(-v)
	}
	if v < 10 {
		return string(rune('0' + v))
	}
	return itoa(v/10) + string(rune('0'+v%10))
}

func TestStringEscapeRoundTrip(t *testing.T) {
	f := func(s string) bool {
		// Restrict to byte strings (our assembler strings are bytes).
		b := []byte(s)
		got, err := unescape(EscapeString(string(b)))
		return err == nil && got == string(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func mkUnit(instrs []Instr, globals []string) *Unit {
	return &Unit{Arch: "t", Instrs: instrs, Globals: globals,
		Strings: map[string]string{}, Aliases: map[string]string{}}
}

func TestLinkRenamesLocalLabels(t *testing.T) {
	u1 := mkUnit([]Instr{
		{Label: "main", Op: "jmp", Args: []Arg{{Kind: Sym, Sym: "L1"}}},
		{Label: "L1", Op: "ret"},
	}, []string{"main"})
	u2 := mkUnit([]Instr{
		{Label: "P", Op: "jmp", Args: []Arg{{Kind: Sym, Sym: "L1"}}},
		{Label: "L1", Op: "ret"},
	}, []string{"P"})
	img, err := Link("t", 4, []*Unit{u1, u2})
	if err != nil {
		t.Fatal(err)
	}
	if img.Instrs[0].Args[0].Sym == img.Instrs[2].Args[0].Sym {
		t.Error("local labels from different units must not collide")
	}
	if _, ok := img.Labels["main"]; !ok {
		t.Error("exported label lost")
	}
}

func TestLinkDuplicateGlobals(t *testing.T) {
	u1 := mkUnit([]Instr{{Label: "main", Op: "ret"}}, []string{"main"})
	u2 := mkUnit([]Instr{{Label: "main", Op: "ret"}}, []string{"main"})
	if _, err := Link("t", 4, []*Unit{u1, u2}); err == nil {
		t.Error("duplicate exported label must fail")
	}
}

func TestLinkDataLayout(t *testing.T) {
	u := mkUnit([]Instr{{Label: "main", Op: "ret"}}, []string{"main"})
	u.Comm = []string{"z1", "z2"}
	u.Globals = append(u.Globals, "z1", "z2")
	u.Strings[".str1"] = "%i\n"
	img, err := Link("t", 4, []*Unit{u})
	if err != nil {
		t.Fatal(err)
	}
	if img.Symbols["z2"]-img.Symbols["z1"] != 4 {
		t.Errorf("comm layout: %v", img.Symbols)
	}
	strAddr, ok := img.Resolve("u0$.str1")
	if !ok {
		t.Fatalf("string symbol missing: %v", img.Symbols)
	}
	if img.Data[strAddr] != '%' || img.Data[strAddr+3] != 0 {
		t.Errorf("string bytes wrong at %#x", strAddr)
	}
	if img.DataEnd <= strAddr {
		t.Errorf("DataEnd %#x not past string %#x", img.DataEnd, strAddr)
	}
}

func TestLinkAliases(t *testing.T) {
	u := mkUnit([]Instr{
		{Label: "main", Op: "jmp", Args: []Arg{{Kind: Sym, Sym: "L2"}}},
		{Label: "L1", Op: "ret"},
	}, []string{"main"})
	u.Aliases["L2"] = "L1"
	img, err := Link("t", 4, []*Unit{u})
	if err != nil {
		t.Fatal(err)
	}
	if img.Labels["u0$L2"] != img.Labels["u0$L1"] {
		t.Errorf("alias index mismatch: %v", img.Labels)
	}
}

func TestCheckUndefined(t *testing.T) {
	u := mkUnit([]Instr{
		{Label: "main", Op: "call", Args: []Arg{{Kind: Sym, Sym: "missing"}}},
	}, []string{"main"})
	img, err := Link("t", 4, []*Unit{u})
	if err != nil {
		t.Fatal(err)
	}
	if err := img.CheckUndefined(); err == nil {
		t.Error("undefined symbol must be reported")
	}
	u2 := mkUnit([]Instr{
		{Label: "main", Op: "call", Args: []Arg{{Kind: Sym, Sym: "printf"}}},
	}, []string{"main"})
	img2, _ := Link("t", 4, []*Unit{u2})
	if err := img2.CheckUndefined(); err != nil {
		t.Errorf("builtins must resolve: %v", err)
	}
}

func TestDialectConsecutiveLabels(t *testing.T) {
	d := Dialect{Arch: "t", Syntax: Syntax{CommentChars: []string{"#"}, LabelSuffix: ":"},
		Decode: func(l Line) (Instr, error) {
			return Instr{Op: l.Op, Line: l.Num}, nil
		}}
	u, err := d.ParseUnit("L1:\nL2:\n\tnop\nL3:\n")
	if err != nil {
		t.Fatal(err)
	}
	if u.Instrs[0].Label != "L1" || u.Aliases["L2"] != "L1" {
		t.Errorf("labels: %+v aliases: %v", u.Instrs, u.Aliases)
	}
	if u.Aliases["L3"] != "$end" {
		t.Errorf("trailing label: %v", u.Aliases)
	}
}
