package asm

import (
	"fmt"
	"strings"
)

// ParseInt parses an assembler integer literal: optional sign, then
// decimal, 0x hexadecimal, or 0 octal. It returns ok=false for anything
// else (the caller decides whether that makes the operand symbolic).
func ParseInt(text string) (int64, bool) {
	s := text
	neg := false
	switch {
	case strings.HasPrefix(s, "-"):
		neg = true
		s = s[1:]
	case strings.HasPrefix(s, "+"):
		s = s[1:]
	}
	if s == "" {
		return 0, false
	}
	var v int64
	switch {
	case strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X"):
		s = s[2:]
		if s == "" {
			return 0, false
		}
		for i := 0; i < len(s); i++ {
			d, ok := hexDigit(s[i])
			if !ok {
				return 0, false
			}
			v = v*16 + int64(d)
		}
	case len(s) > 1 && s[0] == '0':
		for i := 1; i < len(s); i++ {
			if s[i] < '0' || s[i] > '7' {
				return 0, false
			}
			v = v*8 + int64(s[i]-'0')
		}
	default:
		for i := 0; i < len(s); i++ {
			if s[i] < '0' || s[i] > '9' {
				return 0, false
			}
			v = v*10 + int64(s[i]-'0')
		}
	}
	if neg {
		v = -v
	}
	return v, true
}

func hexDigit(c byte) (int, bool) {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0'), true
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10, true
	case c >= 'A' && c <= 'F':
		return int(c-'A') + 10, true
	}
	return 0, false
}

// DirString handles an `.asciz`/`.string` directive of the form
// `label: .asciz "text"`. The string is re-extracted from the raw line so
// comma splitting cannot corrupt it.
func DirString(u *Unit, arch string, line Line) error {
	if line.Label == "" {
		return Errf(arch, line.Num, "%s needs a label", line.Op)
	}
	raw := line.Raw
	first := strings.Index(raw, `"`)
	last := strings.LastIndex(raw, `"`)
	if first < 0 || last <= first {
		return Errf(arch, line.Num, "%s needs a quoted string", line.Op)
	}
	s, err := unescape(raw[first+1 : last])
	if err != nil {
		return Errf(arch, line.Num, "%v", err)
	}
	if u.Strings == nil {
		u.Strings = map[string]string{}
	}
	u.Strings[line.Label] = s
	return nil
}

func unescape(s string) (string, error) {
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c != '\\' {
			sb.WriteByte(c)
			continue
		}
		i++
		if i >= len(s) {
			return "", fmt.Errorf("trailing backslash in string")
		}
		switch s[i] {
		case 'n':
			sb.WriteByte('\n')
		case 't':
			sb.WriteByte('\t')
		case '0':
			sb.WriteByte(0)
		case '\\':
			sb.WriteByte('\\')
		case '"':
			sb.WriteByte('"')
		default:
			return "", fmt.Errorf("unknown escape \\%c", s[i])
		}
	}
	return sb.String(), nil
}

// EscapeString renders s as an assembler string literal body.
func EscapeString(s string) string {
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\n':
			sb.WriteString(`\n`)
		case '\t':
			sb.WriteString(`\t`)
		case 0:
			sb.WriteString(`\0`)
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		default:
			sb.WriteByte(c)
		}
	}
	return sb.String()
}
