package enquire

import (
	"testing"

	"srcg/internal/discovery"
	"srcg/internal/target"
	"srcg/internal/target/alpha"
	"srcg/internal/target/mips"
	"srcg/internal/target/sparc"
	"srcg/internal/target/vax"
	"srcg/internal/target/x86"
)

func TestWordBitsAllTargets(t *testing.T) {
	// All five machines implement 32-bit C ints (the Alpha's registers are
	// 64-bit, but its longword arithmetic wraps at 32).
	for _, tc := range []target.Toolchain{x86.New(), sparc.New(), mips.New(), alpha.New(), vax.New()} {
		bits, err := WordBits(discovery.NewRig(tc))
		if err != nil {
			t.Errorf("%s: %v", tc.Name(), err)
			continue
		}
		if bits != 32 {
			t.Errorf("%s: bits = %d, want 32", tc.Name(), bits)
		}
	}
}

func TestTruncDiv(t *testing.T) {
	for _, tc := range []target.Toolchain{x86.New(), vax.New()} {
		ok, err := TruncDiv(discovery.NewRig(tc))
		if err != nil || !ok {
			t.Errorf("%s: trunc = %v, %v", tc.Name(), ok, err)
		}
	}
}
