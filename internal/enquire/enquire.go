// Package enquire discovers arithmetic properties of the target machine by
// running probe programs and observing their output — our stand-in for
// Pemberton's `enquire` (paper §5.2.1: "We use enquire to gather
// information about word-sizes on the target machine, and simulate
// arithmetic in the correct precision").
package enquire

import (
	"fmt"

	"srcg/internal/discovery"
)

// WordBits discovers the width of `int` by forcing overflow: starting from
// a hidden 1, repeated doubling must eventually wrap negative, and the
// number of doublings reveals the width. Values are hidden behind the
// harness's Init so no constant folding can cheat.
func WordBits(rig *discovery.Rig) (int, error) {
	// Count doublings until the value goes negative: int has count+1 bits.
	src := `extern int z1,z2,z3,z4,z5,z6;
extern void Init();
main() {
	int a, b, c;
	Init(&a, &b, &c);
	a = 0;
	while (b > 0) {
		b = b + b;
		a = a + 1;
	}
	printf("%i\n", a);
	exit(0);
}`
	initSrc := `int z1,z2,z3,z4,z5,z6;
void Init(n,o,p)
int *n,*o,*p;
{
	z1=z2=z3=1;
	z4=z5=z6=1;
	*n = 0;
	*o = 1;
	*p = 0;
}`
	out, err := rig.BuildRun(src, initSrc)
	if err != nil {
		return 0, fmt.Errorf("enquire: word-size probe failed: %w", err)
	}
	var doublings int
	if _, err := fmt.Sscanf(out, "%d", &doublings); err != nil {
		return 0, fmt.Errorf("enquire: unexpected probe output %q", out)
	}
	bits := doublings + 1
	switch bits {
	case 16, 32, 64:
		return bits, nil
	}
	return 0, fmt.Errorf("enquire: implausible int width %d", bits)
}

// TruncDiv verifies that integer division truncates toward zero (every C
// compiler the paper probed did); the reverse interpreter's div primitive
// relies on it.
func TruncDiv(rig *discovery.Rig) (bool, error) {
	src := `extern int z1,z2,z3,z4,z5,z6;
extern void Init();
main() {
	int a, b, c;
	Init(&a, &b, &c);
	a = b / c;
	printf("%i\n", a);
	exit(0);
}`
	initSrc := `int z1,z2,z3,z4,z5,z6;
void Init(n,o,p)
int *n,*o,*p;
{
	z1=z2=z3=1;
	z4=z5=z6=1;
	*n = 0;
	*o = -7;
	*p = 2;
}`
	out, err := rig.BuildRun(src, initSrc)
	if err != nil {
		return false, fmt.Errorf("enquire: division probe failed: %w", err)
	}
	return out == "-3\n", nil
}
