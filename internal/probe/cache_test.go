package probe

import (
	"errors"
	"testing"

	"srcg/internal/asm"
)

// TestQuorumAllTransientRetriesAndSettles is the regression test for the
// all-faulted quorum: when every run of a quorum faults transiently, the
// QuorumError (Votes==0) must classify as transient so the retry loop
// re-runs the whole quorum, and each physical fault must be counted as
// survived exactly once when the probe finally settles.
func TestQuorumAllTransientRetriesAndSettles(t *testing.T) {
	tc := &scripted{execute: []step{
		{err: &flake{"rsh: dropped"}}, {err: &flake{"rsh: dropped"}}, {err: &flake{"rsh: dropped"}},
		{out: "A\n"}, {out: "A\n"},
	}}
	p := New(tc, cfg(8, 3))
	out, err := p.Execute(&asm.Image{})
	if err != nil || out != "A\n" {
		t.Fatalf("Execute = %q, %v; the retried quorum must settle", out, err)
	}
	st := p.Stats()
	if st.Retries != 1 {
		t.Errorf("retries = %d; an all-faulted quorum is transient and retried once here", st.Retries)
	}
	if st.FaultsSurvived != 3 {
		t.Errorf("survived = %d; want 3 — each dropped run counted exactly once", st.FaultsSurvived)
	}
	if st.QuorumConflicts != 0 || p.Noisy() {
		t.Error("transient faults are not disagreements; the machine is not noisy")
	}
}

// TestAllTransientQuorumErrorShape pins the error value itself: Votes==0
// gets its own message, the last fault is reachable via Unwrap, and the
// error stays transient.
func TestAllTransientQuorumErrorShape(t *testing.T) {
	last := &flake{"rsh: dropped"}
	qe := &QuorumError{Runs: 3, Votes: 0, Faults: 3, Last: last}
	if !IsTransient(qe) {
		t.Error("an all-faulted quorum must be transient")
	}
	if !errors.Is(qe, last) {
		t.Error("Unwrap must expose the last transient fault")
	}
	if qe.Error() == (&QuorumError{Runs: 3, Votes: 3}).Error() {
		t.Error("Votes==0 needs a distinct message: nothing voted, nothing disagreed")
	}
}

// TestFaultAttributionCountsPhysicalFaultsOnce pins the accounting split
// between the retry loop and the quorum: a physical transient fault inside
// a failed quorum attempt must be counted as survived exactly once — at
// final settle, by the retry loop — never also as a quorum "loser". The
// script forces a conflict (raising the bar to 3), then a faulted quorum,
// then a clean settle; exactly one physical fault exists.
func TestFaultAttributionCountsPhysicalFaultsOnce(t *testing.T) {
	tc := &scripted{execute: []step{
		{out: "a"}, {out: "b"}, {out: "c"}, // conflict: three distinct votes, no quorum
		{err: &flake{"rsh: dropped"}}, {out: "d"}, {out: "d"}, // fault eats a run; 2 < bar of 3
		{out: "d"}, {out: "d"}, {out: "d"}, // clean settle at the raised bar
	}}
	p := New(tc, cfg(8, 3))
	out, err := p.Execute(&asm.Image{})
	if err != nil || out != "d" {
		t.Fatalf("Execute = %q, %v", out, err)
	}
	st := p.Stats()
	if st.FaultsSurvived != 1 {
		t.Errorf("survived = %d; want 1 — one physical fault, one tally", st.FaultsSurvived)
	}
	if st.Retries != 2 || st.QuorumConflicts != 1 || !p.Noisy() {
		t.Errorf("stats = %+v noisy=%v; want retries=2 conflicts=1 noisy", st, p.Noisy())
	}
}

// TestCacheColdWarmReplays drives the full probe chain twice against a
// shared cache with scripts sized for exactly one physical pass: the warm
// prober must replay every probe (a second physical call would exhaust a
// script and panic) and still report identical outputs and identical
// logical stats.
func TestCacheColdWarmReplays(t *testing.T) {
	cache := NewCache()
	run := func(tc *scripted) (string, Stats, *Prober) {
		c := cfg(8, 7)
		c.Cache = cache
		p := New(tc, c)
		text, err := p.CompileC("main(){}")
		if err != nil {
			t.Fatalf("CompileC: %v", err)
		}
		u, err := p.Assemble(text)
		if err != nil {
			t.Fatalf("Assemble: %v", err)
		}
		img, err := p.Link([]*asm.Unit{u})
		if err != nil {
			t.Fatalf("Link: %v", err)
		}
		out, err := p.Execute(img)
		if err != nil {
			t.Fatalf("Execute: %v", err)
		}
		return out, p.Stats(), p
	}

	cold := &scripted{
		compile:  []step{{out: "mov a, b"}},
		assemble: []step{{}},
		link:     []step{{}},
		execute:  []step{{out: "42\n"}, {out: "42\n"}},
	}
	outCold, stCold, _ := run(cold)

	// The warm toolchain has empty scripts: any physical call panics.
	outWarm, stWarm, pw := run(&scripted{})
	if outWarm != outCold {
		t.Errorf("warm output %q != cold output %q", outWarm, outCold)
	}
	if stWarm != stCold {
		t.Errorf("replayed stats drifted:\ncold %+v\nwarm %+v", stCold, stWarm)
	}
	if hits := pw.Tracer().Counter(CtrCacheHits); hits != 4 {
		t.Errorf("warm cache hits = %d; want 4 (compile, assemble, link, execute)", hits)
	}
	if misses := pw.Tracer().Counter(CtrCacheMisses); misses != 0 {
		t.Errorf("warm cache misses = %d; want 0", misses)
	}
}

// TestCacheRefusesUnquietOutcomes: outcomes that consumed retries or were
// observed on a noisy machine depend on context the cache key cannot see,
// so they must not be memoized.
func TestCacheRefusesUnquietOutcomes(t *testing.T) {
	cache := NewCache()
	c := cfg(8, 7)
	c.Cache = cache
	tc := &scripted{
		compile: []step{
			{err: &flake{"compiler crashed"}}, {out: "mov a, b"}, // retried → uncacheable
			{out: "mov a, b"}, // quiet → cached
		},
	}
	p := New(tc, c)
	if _, err := p.CompileC("main(){}"); err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 0 {
		t.Fatalf("a retried probe was cached (len=%d)", cache.Len())
	}
	if _, err := p.CompileC("main(){}"); err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 1 {
		t.Fatalf("a quiet probe was not cached (len=%d)", cache.Len())
	}

	// A noisy machine invalidates caching wholesale: once the latch is set,
	// no further outcome is stored.
	noisyTC := &scripted{execute: []step{
		{out: "4X\n"}, {out: "42\n"}, {out: "42\n"}, {out: "42\n"}, // conflict → noisy
		{out: "7\n"}, {out: "7\n"}, {out: "7\n"}, // quiet runs, but on a caught liar
	}}
	pn := New(noisyTC, c)
	if _, err := pn.Execute(&asm.Image{}); err != nil {
		t.Fatal(err)
	}
	if _, err := pn.Execute(&asm.Image{}); err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 1 {
		t.Fatalf("a noisy prober stored outcomes (len=%d)", cache.Len())
	}
}

// TestCacheOccupancyAccounting pins the Len/Bytes gauges the core report
// surfaces as probe.cache_entries / probe.cache_bytes: the cold chain
// leaves four memoized probes and a byte figure sized from the
// content-address keys plus memoized string outputs, a warm replay adds
// nothing, and first-write-wins never double-counts a key.
func TestCacheOccupancyAccounting(t *testing.T) {
	cache := NewCache()
	c := cfg(8, 7)
	c.Cache = cache
	chain := func(tc *scripted) {
		p := New(tc, c)
		text, err := p.CompileC("main(){}")
		if err != nil {
			t.Fatalf("CompileC: %v", err)
		}
		u, err := p.Assemble(text)
		if err != nil {
			t.Fatalf("Assemble: %v", err)
		}
		img, err := p.Link([]*asm.Unit{u})
		if err != nil {
			t.Fatalf("Link: %v", err)
		}
		if _, err := p.Execute(img); err != nil {
			t.Fatalf("Execute: %v", err)
		}
	}
	chain(&scripted{
		compile:  []step{{out: "mov a, b"}},
		assemble: []step{{}},
		link:     []step{{}},
		execute:  []step{{out: "42\n"}, {out: "42\n"}},
	})
	if cache.Len() != 4 {
		t.Fatalf("cold chain memoized %d probes, want 4", cache.Len())
	}
	occupied := cache.Bytes()
	// The keys carry the whole C source and assembly text; the figure must
	// at least cover those plus the memoized outputs.
	if floor := int64(len("main(){}") + 2*len("mov a, b") + 2*len("42\n")); occupied < floor {
		t.Errorf("Bytes() = %d, want at least %d (keys + string values)", occupied, floor)
	}

	// A warm replay (empty scripts: any physical call panics) is pure hits
	// and must leave the occupancy untouched.
	chain(&scripted{})
	if cache.Len() != 4 || cache.Bytes() != occupied {
		t.Errorf("warm replay changed occupancy: len=%d bytes=%d, want 4/%d",
			cache.Len(), cache.Bytes(), occupied)
	}

	// First write wins, and so does its size: re-storing an occupied key —
	// two workers racing on the same probe — must not grow the figure.
	k := entryKey{op: "op", policy: "pol", payload: "xyz"}
	cache.store(k, &cacheEntry{val: "v"})
	grown := cache.Bytes() - occupied
	if want := int64(len("op") + len("pol") + len("xyz") + len("v")); grown != want {
		t.Errorf("storing one entry grew Bytes by %d, want %d", grown, want)
	}
	cache.store(k, &cacheEntry{val: "a much longer losing value"})
	if cache.Len() != 5 || cache.Bytes() != occupied+grown {
		t.Errorf("second store of an occupied key changed occupancy: len=%d bytes=%d",
			cache.Len(), cache.Bytes())
	}
}

// TestCacheKeyIncludesPolicy: the same probe under a different resilience
// policy is a different key — a 2-of-7 quorum's accepted output must not
// answer a 1-of-1 prober.
func TestCacheKeyIncludesPolicy(t *testing.T) {
	cache := NewCache()
	c1 := cfg(8, 7)
	c1.Cache = cache
	p1 := New(&scripted{compile: []step{{out: "mov a, b"}}}, c1)
	if _, err := p1.CompileC("main(){}"); err != nil {
		t.Fatal(err)
	}
	c2 := cfg(3, 1)
	c2.Cache = cache
	p2 := New(&scripted{compile: []step{{out: "mov a, b"}}}, c2)
	if _, err := p2.CompileC("main(){}"); err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 2 {
		t.Errorf("cache entries = %d; want 2 — policy is part of the key", cache.Len())
	}
}
