// Content-addressed probe cache: the memo the parallel probe engine and
// repeat discoveries hit instead of the toolchain. The unit of caching is
// the logical probe — one fully resolved retry+quorum interaction — keyed
// by the operation, the resilience policy, and the content flowing into
// it: C source for compiles, assembly text for assembles, the ordered
// assembly texts of the units for links, and the link key for executes
// (sample text → assembly → quorum-accepted run output). A hit returns
// the recorded value, error, and telemetry bundle; replaying the bundle
// keeps a warm run's trace byte-identical to the cold run that filled it.
//
// Keys are the content itself, not a digest of it: a struct-keyed Go map
// hashes the strings in place, so a lookup costs no allocation and no
// cryptographic work — this sits on the per-mutation hot path. The
// operation and policy are separate key fields, so no separator scheme is
// needed and no payload can collide across operations.
package probe

import (
	"strconv"
	"strings"
	"sync"

	"srcg/internal/asm"
	"srcg/internal/obs"
)

// Counter names for the cache's hit/miss split. They are unsealed
// (obs.Unsealed): visible in Counters() and reports, excluded from the
// Flush tail, because a warm and a cold run must trace identically.
const (
	CtrCacheHits   = "probe.cache_hits"
	CtrCacheMisses = "probe.cache_misses"
)

// Occupancy gauges (also unsealed): how full the cache is at the end of
// a run — the numbers an LRU bound will be set against.
const (
	CtrCacheEntries = "probe.cache_entries"
	CtrCacheBytes   = "probe.cache_bytes"
)

// entryKey addresses one memoized logical probe by operation, resilience
// policy, and the full content flowing into the probe.
type entryKey struct {
	op      string
	policy  string
	payload string
}

// cacheEntry is one memoized logical probe: its outcome and the drained
// telemetry bundle to replay on a hit. Immutable once stored.
type cacheEntry struct {
	val    any
	err    error
	replay *obs.Replay
}

// Cache memoizes logical probe outcomes content-addressed, across probers
// and across runs in one process. It also tracks content identity for the
// opaque handles the toolchain returns (units, images), so a link or
// execute probe can be keyed by what went into it without ever inspecting
// the handle — the black-box discipline holds. Safe for concurrent use.
//
// Only quiet, settled outcomes are stored: no retries consumed, no noisy
// latch, and any error permanent (assembler rejects are cached signal;
// transient faults and exhaustion are not). Probers sharing a Cache must
// share a resilience policy — the policy is part of the key, so a
// mismatch degrades to a miss, never to a wrong answer.
type Cache struct {
	mu      sync.Mutex
	entries map[entryKey]*cacheEntry
	units   map[*asm.Unit]string
	images  map[*asm.Image]string
	// bytes approximates the resident size of the memo: key strings plus
	// memoized string values, maintained on first-write in store.
	bytes int64
}

// NewCache returns an empty probe cache.
func NewCache() *Cache {
	return &Cache{
		entries: map[entryKey]*cacheEntry{},
		units:   map[*asm.Unit]string{},
		images:  map[*asm.Image]string{},
	}
}

// Len reports how many logical probes are memoized.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Bytes reports the approximate resident size of the memo in bytes: the
// content-address keys plus memoized string outputs. Handles and replay
// bundles are not sized — the keys carry the whole sample and assembly
// texts and dominate; the number is a capacity-planning gauge, not an
// accounting of the allocator.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

func (c *Cache) lookup(k entryKey) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[k]
	return e, ok
}

// store memoizes an entry, first write wins: two workers resolving the
// same probe concurrently computed the same pure function, so either
// bundle is the canonical one — keeping the first makes the choice
// deterministic for every later reader.
func (c *Cache) store(k entryKey, e *cacheEntry) {
	c.mu.Lock()
	if _, ok := c.entries[k]; !ok {
		c.entries[k] = e
		c.bytes += int64(len(k.op) + len(k.policy) + len(k.payload))
		if s, ok := e.val.(string); ok {
			c.bytes += int64(len(s))
		}
	}
	c.mu.Unlock()
}

// bindUnit records a unit handle's content identity: the assembly text it
// came from. The string header is shared with the probe payload, so the
// binding costs no copy.
func (c *Cache) bindUnit(u *asm.Unit, text string) {
	c.mu.Lock()
	c.units[u] = text
	c.mu.Unlock()
}

// bindImage records an image handle's content identity (its link key).
func (c *Cache) bindImage(img *asm.Image, id string) {
	c.mu.Lock()
	c.images[img] = id
	c.mu.Unlock()
}

// unitsKey builds the link-probe payload: the ordered content identities
// of the units, each prefixed by its length so unit boundaries cannot
// alias. ok is false (uncacheable) if any unit's origin is unknown.
func (c *Cache) unitsKey(units []*asm.Unit) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	ids := make([]string, len(units))
	for i, u := range units {
		id, ok := c.units[u]
		if !ok {
			return "", false
		}
		ids[i] = id
		n += len(id) + 12
	}
	var sb strings.Builder
	sb.Grow(n)
	for _, id := range ids {
		sb.WriteString(strconv.Itoa(len(id)))
		sb.WriteByte(':')
		sb.WriteString(id)
	}
	return sb.String(), true
}

// imageKey builds the execute-probe payload from the image's content
// identity; ok is false (uncacheable) if the image's origin is unknown.
func (c *Cache) imageKey(img *asm.Image) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	id, ok := c.images[img]
	return id, ok
}
