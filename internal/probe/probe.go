// Package probe is the resilient seam between the discovery unit and a
// target toolchain. The paper interrogates real machines over rsh (§2) —
// compilers crash, links flake, executions hang, and adversarial targets
// answer with noise — so every toolchain interaction of the discovery unit
// is routed through one Prober that
//
//   - classifies errors as permanent (an assembler reject is meaningful
//     signal, §3.1) or transient (marked via a Transient() bool method),
//   - retries transient faults with a capped, fully deterministic backoff
//     schedule (virtual time: durations are computed and accounted, never
//     read from a wall clock), and
//   - re-executes programs under a K-of-N quorum so that a machine lying
//     on one run (nondeterministic scratch registers, garbled stdout)
//     cannot make mutation analysis mis-attribute noise as a semantic
//     difference (§4).
//
// The Prober is also the telemetry choke point: every physical toolchain
// call, retry, and quorum escalation is reported to an obs.Tracer, and
// the resilience counters live there — Stats is a read-only view over the
// tracer's counters, so the probe layer and core.Report() can never
// drift apart on attempts/retries/quorum tallies. The same single seam
// is where the planned parallel probe engine and content-addressed probe
// cache will attach.
package probe

import (
	"fmt"
	"sync"
	"time"

	"srcg/internal/asm"
	"srcg/internal/obs"
	"srcg/internal/target"
)

// Config tunes the resilience policy.
type Config struct {
	// Retries is the transient-fault retry budget per probe (after the
	// first attempt). 0 means DefaultRetries.
	Retries int
	// BackoffBase and BackoffCap bound the deterministic backoff schedule:
	// attempt i waits min(BackoffBase<<(i-1), BackoffCap) of virtual time.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// Sleep, when non-nil, receives each backoff duration (a remote target
	// would pass time.Sleep). Nil keeps retries instantaneous and
	// deterministic — the schedule is still computed and accounted.
	Sleep func(time.Duration)
	// QuorumN caps the executions spent seeking an output quorum. Two
	// agreeing runs accept an output; once runs disagree, the bar rises to
	// three. QuorumN=1 trusts a single run (no re-execution); 0 means
	// DefaultQuorumN.
	QuorumN int
	// Trace receives probe-level telemetry: one event per physical
	// toolchain call, retry, and quorum escalation, and the resilience
	// counters Stats reads. Nil gets a private sink-less tracer, so the
	// counters always exist.
	Trace *obs.Tracer
}

// Policy defaults.
const (
	DefaultRetries = 8
	DefaultQuorumN = 7
)

// DefaultConfig is the policy used when the caller does not care.
func DefaultConfig() Config {
	return Config{
		Retries:     DefaultRetries,
		BackoffBase: time.Millisecond,
		BackoffCap:  100 * time.Millisecond,
		QuorumN:     DefaultQuorumN,
	}
}

func (c Config) withDefaults() Config {
	if c.Retries <= 0 {
		c.Retries = DefaultRetries
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = time.Millisecond
	}
	if c.BackoffCap <= 0 {
		c.BackoffCap = 100 * time.Millisecond
	}
	if c.QuorumN <= 0 {
		c.QuorumN = DefaultQuorumN
	}
	return c
}

// Counter names the probe layer maintains on its tracer. Stats is a view
// over exactly these; core.Report() renders the same numbers.
const (
	CtrProbes          = "probe.probes"
	CtrAttempts        = "probe.attempts"
	CtrRetries         = "probe.retries"
	CtrFaultsSurvived  = "probe.faults_survived"
	CtrExhausted       = "probe.exhausted"
	CtrQuorumRuns      = "probe.quorum_runs"
	CtrQuorumConflicts = "probe.quorum_conflicts"
	CtrBackoffNs       = "probe.backoff_ns"

	// HistAttemptNs is the duration histogram over physical toolchain
	// calls (virtual ticks under a VirtualClock, real ns under wall).
	HistAttemptNs = "probe.attempt_ns"
)

// Stats is a snapshot of the resilience work a Prober performed — the
// Diagnostics half of the paper's cost story under a hostile machine
// room. It is a read-only view over the tracer's probe.* counters, not
// an independent tally; Probers sharing one tracer share the counts.
type Stats struct {
	Probes          int           // logical probe requests issued by the discovery unit
	Attempts        int           // physical toolchain calls (includes retries and quorum runs)
	Retries         int           // re-attempts after a transient fault
	FaultsSurvived  int           // transient faults absorbed (retried or outvoted)
	Exhausted       int           // probes that spent their whole retry budget
	QuorumRuns      int           // executions spent on output quorums
	QuorumConflicts int           // quorums where runs disagreed
	Backoff         time.Duration // total virtual backoff time scheduled
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Probes += other.Probes
	s.Attempts += other.Attempts
	s.Retries += other.Retries
	s.FaultsSurvived += other.FaultsSurvived
	s.Exhausted += other.Exhausted
	s.QuorumRuns += other.QuorumRuns
	s.QuorumConflicts += other.QuorumConflicts
	s.Backoff += other.Backoff
}

func (s Stats) String() string {
	return fmt.Sprintf("probes=%d attempts=%d retries=%d faults_survived=%d quorum_runs=%d quorum_conflicts=%d exhausted=%d backoff=%s",
		s.Probes, s.Attempts, s.Retries, s.FaultsSurvived, s.QuorumRuns, s.QuorumConflicts, s.Exhausted, s.Backoff)
}

// Prober drives one toolchain resiliently. It is safe for concurrent use.
type Prober struct {
	cfg Config
	tc  target.Toolchain
	tr  *obs.Tracer

	mu sync.Mutex
	// noisy is set the first time two runs of one program disagree, and
	// never cleared: a machine caught lying once pays the higher quorum
	// bar (3 agreeing runs instead of 2) for the rest of the session.
	// It is a per-Prober latch, deliberately not a shared counter: a
	// noisy discovery target must not raise the bar for a different
	// toolchain that happens to share the tracer.
	noisy bool
}

// Noisy reports whether the prober has ever caught two runs of one
// program disagreeing.
func (p *Prober) Noisy() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.noisy
}

// New wraps a toolchain in the resilience policy.
func New(tc target.Toolchain, cfg Config) *Prober {
	cfg = cfg.withDefaults()
	if cfg.Trace == nil {
		cfg.Trace = obs.New(nil)
	}
	return &Prober{tc: tc, cfg: cfg, tr: cfg.Trace}
}

// Toolchain returns the wrapped toolchain.
func (p *Prober) Toolchain() target.Toolchain { return p.tc }

// Tracer returns the telemetry tracer all probe events flow to.
func (p *Prober) Tracer() *obs.Tracer { return p.tr }

// Stats snapshots the resilience counters from the tracer.
func (p *Prober) Stats() Stats {
	return Stats{
		Probes:          int(p.tr.Counter(CtrProbes)),
		Attempts:        int(p.tr.Counter(CtrAttempts)),
		Retries:         int(p.tr.Counter(CtrRetries)),
		FaultsSurvived:  int(p.tr.Counter(CtrFaultsSurvived)),
		Exhausted:       int(p.tr.Counter(CtrExhausted)),
		QuorumRuns:      int(p.tr.Counter(CtrQuorumRuns)),
		QuorumConflicts: int(p.tr.Counter(CtrQuorumConflicts)),
		Backoff:         time.Duration(p.tr.Counter(CtrBackoffNs)),
	}
}

// outcomeOf classifies a physical call's error for the probe event.
func outcomeOf(err error) string {
	switch {
	case err == nil:
		return obs.OutcomeOK
	case IsTransient(err):
		return obs.OutcomeTransient
	default:
		return obs.OutcomePermanent
	}
}

// call performs one physical toolchain interaction: it runs fn, counts
// the attempt, observes its duration, and emits the probe event. This is
// the telemetry choke point — every compile, assemble, link, and
// execute in the system lands here exactly once.
func (p *Prober) call(op string, fn func() error) error {
	start := p.tr.Now()
	err := fn()
	dur := p.tr.Now() - start
	p.tr.Count(CtrAttempts, 1)
	p.tr.Observe(HistAttemptNs, int64(dur))
	p.tr.ProbeEvent(op, outcomeOf(err), dur)
	return err
}

// backoff accounts (and optionally sleeps) the wait before retry attempt
// `retry` (1-based). The schedule is a pure function of the attempt
// index; a virtual tracer clock absorbs the scheduled duration so the
// trace timeline reflects it without any real sleeping.
func (p *Prober) backoff(retry int) time.Duration {
	d := p.cfg.BackoffBase << uint(retry-1)
	if d > p.cfg.BackoffCap || d <= 0 {
		d = p.cfg.BackoffCap
	}
	p.tr.Count(CtrBackoffNs, int64(d))
	p.tr.Advance(d)
	if p.cfg.Sleep != nil {
		p.cfg.Sleep(d)
	}
	return d
}

// retry runs op, retrying transient faults up to the budget. Permanent
// errors pass through untouched — they are the discovery unit's signal.
func (p *Prober) retry(opName string, op func() error) error {
	p.tr.Count(CtrProbes, 1)
	var last error
	for attempt := 0; attempt <= p.cfg.Retries; attempt++ {
		if attempt > 0 {
			d := p.backoff(attempt)
			p.tr.Count(CtrRetries, 1)
			p.tr.RetryEvent(opName, attempt, d)
		}
		err := op()
		if err == nil || !IsTransient(err) {
			if attempt > 0 {
				p.tr.Count(CtrFaultsSurvived, int64(attempt))
			}
			return err
		}
		last = err
	}
	p.tr.Count(CtrExhausted, 1)
	return &ExhaustedError{Op: opName, Attempts: p.cfg.Retries + 1, Last: last}
}

// CompileC compiles one translation unit, surviving transient faults.
func (p *Prober) CompileC(src string) (string, error) {
	var text string
	err := p.retry("compile", func() error {
		return p.call("compile", func() error {
			var err error
			text, err = p.tc.CompileC(src)
			return err
		})
	})
	return text, err
}

// Assemble assembles text. A reject from the assembler is permanent — it
// is the accept/reject oracle syntax discovery bisects against (§3.1).
func (p *Prober) Assemble(text string) (*asm.Unit, error) {
	var u *asm.Unit
	err := p.retry("assemble", func() error {
		return p.call("assemble", func() error {
			var err error
			u, err = p.tc.Assemble(text)
			return err
		})
	})
	return u, err
}

// Link links assembled units.
func (p *Prober) Link(units []*asm.Unit) (*asm.Image, error) {
	var img *asm.Image
	err := p.retry("link", func() error {
		return p.call("link", func() error {
			var err error
			img, err = p.tc.Link(units)
			return err
		})
	})
	return img, err
}

// Execute runs a linked image under the output quorum: a (stdout, error)
// observation is only believed once enough independent runs agree, so a
// single noisy run can never be attributed as semantics. Permanent
// execution errors (a program faulting) are themselves observations and
// vote like outputs.
func (p *Prober) Execute(img *asm.Image) (string, error) {
	var out string
	err := p.retry("execute", func() error {
		var err error
		out, err = p.quorumExecute(img)
		return err
	})
	return out, err
}

type observation struct {
	out string
	err error
}

// quorumExecute runs the image until one observation gathers a quorum: two
// agreeing runs normally, three once any disagreement has been seen. With
// QuorumN=1 the first run is trusted. Transient execution faults do not
// vote; they consume run budget and are retried by the caller if the
// budget empties.
func (p *Prober) quorumExecute(img *asm.Image) (string, error) {
	execute := func() (string, error) {
		var out string
		err := p.call("execute", func() error {
			var err error
			out, err = p.tc.Execute(img)
			return err
		})
		return out, err
	}
	if p.cfg.QuorumN == 1 {
		return execute()
	}
	votes := map[string]int{}
	obsv := map[string]observation{}
	conflict := false
	for run := 0; run < p.cfg.QuorumN; run++ {
		p.tr.Count(CtrQuorumRuns, 1)
		out, err := execute()
		if err != nil && IsTransient(err) {
			continue // consumes a run slot; counted as survived if a quorum forms
		}
		key := "out:" + out
		if err != nil {
			key = "err:" + err.Error() + "\x00" + out
		}
		votes[key]++
		obsv[key] = observation{out, err}
		if len(votes) > 1 && !conflict {
			conflict = true
			p.tr.Count(CtrQuorumConflicts, 1)
			p.tr.QuorumEscalation(run + 1)
			p.mu.Lock()
			p.noisy = true
			p.mu.Unlock()
		}
		need := 2
		if conflict || p.Noisy() {
			need = 3
		}
		if votes[key] >= need {
			// Every run that did not vote for the winner — losing
			// outputs and transient faults alike — was noise this
			// quorum absorbed.
			p.tr.Count(CtrFaultsSurvived, int64(run+1-votes[key]))
			return obsv[key].out, obsv[key].err
		}
	}
	return "", &QuorumError{Runs: p.cfg.QuorumN, Votes: len(votes)}
}
