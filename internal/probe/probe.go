// Package probe is the resilient seam between the discovery unit and a
// target toolchain. The paper interrogates real machines over rsh (§2) —
// compilers crash, links flake, executions hang, and adversarial targets
// answer with noise — so every toolchain interaction of the discovery unit
// is routed through one Prober that
//
//   - classifies errors as permanent (an assembler reject is meaningful
//     signal, §3.1) or transient (marked via a Transient() bool method),
//   - retries transient faults with a capped, fully deterministic backoff
//     schedule (virtual time: durations are computed and accounted, never
//     read from a wall clock), and
//   - re-executes programs under a K-of-N quorum so that a machine lying
//     on one run (nondeterministic scratch registers, garbled stdout)
//     cannot make mutation analysis mis-attribute noise as a semantic
//     difference (§4).
//
// The Prober is also the telemetry choke point: every physical toolchain
// call, retry, and quorum escalation is reported to an obs.Tracer, and
// the resilience counters live there — Stats is a read-only view over the
// tracer's counters, so the probe layer and core.Report() can never
// drift apart on attempts/retries/quorum tallies.
//
// The same seam carries the parallel probe engine and the probe cache:
// every logical probe (one fully resolved retry+quorum interaction) runs
// on a forked prober — forked tracer, snapshotted noisy latch — and its
// telemetry bundle joins back in order, whether the probe executed or
// replayed from the content-addressed Cache. Because the serial path and
// the pooled path (internal/pool) go through the identical fork/join
// machinery, traces are byte-identical at any worker count and in any
// cache state.
package probe

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"srcg/internal/asm"
	"srcg/internal/obs"
	"srcg/internal/target"
)

// Config tunes the resilience policy.
type Config struct {
	// Retries is the transient-fault retry budget per probe (after the
	// first attempt). 0 means DefaultRetries.
	Retries int
	// BackoffBase and BackoffCap bound the deterministic backoff schedule:
	// attempt i waits min(BackoffBase<<(i-1), BackoffCap) of virtual time.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// Sleep, when non-nil, receives each backoff duration (a remote target
	// would pass time.Sleep). Nil keeps retries instantaneous and
	// deterministic — the schedule is still computed and accounted.
	Sleep func(time.Duration)
	// QuorumN caps the executions spent seeking an output quorum. Two
	// agreeing runs accept an output; once runs disagree, the bar rises to
	// three. QuorumN=1 trusts a single run (no re-execution); 0 means
	// DefaultQuorumN.
	QuorumN int
	// Trace receives probe-level telemetry: one event per physical
	// toolchain call, retry, and quorum escalation, and the resilience
	// counters Stats reads. Nil gets a private sink-less tracer, so the
	// counters always exist.
	Trace *obs.Tracer
	// Cache, when non-nil, memoizes logical probe outcomes content-
	// addressed (sample text → assembly → quorum-accepted run output), so
	// repeated probes across re-analysis, validation, and whole repeat
	// runs replay instead of hitting the toolchain. Probers sharing a
	// Cache must share the same Retries/QuorumN policy.
	Cache *Cache
}

// Policy defaults.
const (
	DefaultRetries = 8
	DefaultQuorumN = 7
)

// DefaultConfig is the policy used when the caller does not care.
func DefaultConfig() Config {
	return Config{
		Retries:     DefaultRetries,
		BackoffBase: time.Millisecond,
		BackoffCap:  100 * time.Millisecond,
		QuorumN:     DefaultQuorumN,
	}
}

func (c Config) withDefaults() Config {
	if c.Retries <= 0 {
		c.Retries = DefaultRetries
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = time.Millisecond
	}
	if c.BackoffCap <= 0 {
		c.BackoffCap = 100 * time.Millisecond
	}
	if c.QuorumN <= 0 {
		c.QuorumN = DefaultQuorumN
	}
	return c
}

// Counter names the probe layer maintains on its tracer. Stats is a view
// over exactly these; core.Report() renders the same numbers.
const (
	CtrProbes          = "probe.probes"
	CtrAttempts        = "probe.attempts"
	CtrRetries         = "probe.retries"
	CtrFaultsSurvived  = "probe.faults_survived"
	CtrExhausted       = "probe.exhausted"
	CtrQuorumRuns      = "probe.quorum_runs"
	CtrQuorumConflicts = "probe.quorum_conflicts"
	CtrBackoffNs       = "probe.backoff_ns"

	// HistAttemptNs is the duration histogram over physical toolchain
	// calls (virtual ticks under a VirtualClock, real ns under wall).
	HistAttemptNs = "probe.attempt_ns"
)

// Stats is a snapshot of the resilience work a Prober performed — the
// Diagnostics half of the paper's cost story under a hostile machine
// room. It is a read-only view over the tracer's probe.* counters, not
// an independent tally; Probers sharing one tracer share the counts.
// Cache hits replay the original probe's counters, so these numbers are
// cache-state-invariant (they describe the discovery, not the process);
// the unsealed probe.cache_hits counter exposes the physical savings.
type Stats struct {
	Probes          int           // logical probe requests issued by the discovery unit
	Attempts        int           // toolchain calls (includes retries and quorum runs)
	Retries         int           // re-attempts after a transient fault
	FaultsSurvived  int           // transient faults absorbed (retried or outvoted)
	Exhausted       int           // probes that spent their whole retry budget
	QuorumRuns      int           // executions spent on output quorums
	QuorumConflicts int           // quorums where runs disagreed
	Backoff         time.Duration // total virtual backoff time scheduled
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Probes += other.Probes
	s.Attempts += other.Attempts
	s.Retries += other.Retries
	s.FaultsSurvived += other.FaultsSurvived
	s.Exhausted += other.Exhausted
	s.QuorumRuns += other.QuorumRuns
	s.QuorumConflicts += other.QuorumConflicts
	s.Backoff += other.Backoff
}

func (s Stats) String() string {
	return fmt.Sprintf("probes=%d attempts=%d retries=%d faults_survived=%d quorum_runs=%d quorum_conflicts=%d exhausted=%d backoff=%s",
		s.Probes, s.Attempts, s.Retries, s.FaultsSurvived, s.QuorumRuns, s.QuorumConflicts, s.Exhausted, s.Backoff)
}

// Prober drives one toolchain resiliently. It is safe for concurrent use.
type Prober struct {
	cfg    Config
	tc     target.Toolchain
	tr     *obs.Tracer
	cache  *Cache
	policy string // resilience policy fingerprint, part of every cache key

	mu sync.Mutex
	// noisy is set the first time two runs of one program disagree, and
	// never cleared: a machine caught lying once pays the higher quorum
	// bar (3 agreeing runs instead of 2) for the rest of the session.
	// It is a per-Prober latch, deliberately not a shared counter: a
	// noisy discovery target must not raise the bar for a different
	// toolchain that happens to share the tracer.
	noisy bool
}

// Noisy reports whether the prober has ever caught two runs of one
// program disagreeing.
func (p *Prober) Noisy() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.noisy
}

// New wraps a toolchain in the resilience policy.
func New(tc target.Toolchain, cfg Config) *Prober {
	cfg = cfg.withDefaults()
	if cfg.Trace == nil {
		cfg.Trace = obs.New(nil)
	}
	return &Prober{
		tc:     tc,
		cfg:    cfg,
		tr:     cfg.Trace,
		cache:  cfg.Cache,
		policy: fmt.Sprintf("retries=%d;quorum=%d", cfg.Retries, cfg.QuorumN),
	}
}

// Fork returns a child prober for one unit of parallel or memoized work:
// same toolchain, policy, and cache, reporting to a fork of the tracer,
// with the parent's noisy latch snapshotted. Join folds the child's
// telemetry and latch back in; internal/pool drives forks in task order
// so results and traces are byte-identical at any worker count.
func (p *Prober) Fork() *Prober {
	return &Prober{
		cfg:    p.cfg,
		tc:     p.tc,
		tr:     p.tr.Fork(),
		cache:  p.cache,
		policy: p.policy,
		noisy:  p.Noisy(),
	}
}

// Join drains a forked prober's telemetry bundle into p and merges its
// noisy latch: a machine caught lying inside a fork stays caught.
func (p *Prober) Join(sub *Prober) {
	p.tr.Join(sub.tr.Drain())
	if sub.Noisy() {
		p.latch()
	}
}

func (p *Prober) latch() {
	p.mu.Lock()
	p.noisy = true
	p.mu.Unlock()
}

// Toolchain returns the wrapped toolchain.
func (p *Prober) Toolchain() target.Toolchain { return p.tc }

// Tracer returns the telemetry tracer all probe events flow to.
func (p *Prober) Tracer() *obs.Tracer { return p.tr }

// Stats snapshots the resilience counters from the tracer.
func (p *Prober) Stats() Stats {
	return Stats{
		Probes:          int(p.tr.Counter(CtrProbes)),
		Attempts:        int(p.tr.Counter(CtrAttempts)),
		Retries:         int(p.tr.Counter(CtrRetries)),
		FaultsSurvived:  int(p.tr.Counter(CtrFaultsSurvived)),
		Exhausted:       int(p.tr.Counter(CtrExhausted)),
		QuorumRuns:      int(p.tr.Counter(CtrQuorumRuns)),
		QuorumConflicts: int(p.tr.Counter(CtrQuorumConflicts)),
		Backoff:         time.Duration(p.tr.Counter(CtrBackoffNs)),
	}
}

// outcomeOf classifies a physical call's error for the probe event.
func outcomeOf(err error) string {
	switch {
	case err == nil:
		return obs.OutcomeOK
	case IsTransient(err):
		return obs.OutcomeTransient
	default:
		return obs.OutcomePermanent
	}
}

// call performs one physical toolchain interaction: it runs fn, counts
// the attempt, observes its duration, and emits the probe event. This is
// the telemetry choke point — every compile, assemble, link, and
// execute in the system lands here exactly once.
func (p *Prober) call(op string, fn func() error) error {
	start := p.tr.Now()
	err := fn()
	dur := p.tr.Now() - start
	p.tr.Count(CtrAttempts, 1)
	p.tr.Observe(HistAttemptNs, int64(dur))
	p.tr.ProbeEvent(op, outcomeOf(err), dur)
	return err
}

// backoff accounts (and optionally sleeps) the wait before retry attempt
// `retry` (1-based). The schedule is a pure function of the attempt
// index; a virtual tracer clock absorbs the scheduled duration so the
// trace timeline reflects it without any real sleeping.
func (p *Prober) backoff(retry int) time.Duration {
	d := p.cfg.BackoffBase << uint(retry-1)
	if d > p.cfg.BackoffCap || d <= 0 {
		d = p.cfg.BackoffCap
	}
	p.tr.Count(CtrBackoffNs, int64(d))
	p.tr.Advance(d)
	if p.cfg.Sleep != nil {
		p.cfg.Sleep(d)
	}
	return d
}

// retry runs op, retrying transient faults up to the budget. Permanent
// errors pass through untouched — they are the discovery unit's signal.
//
// op reports how many physical transient faults its attempt consumed: a
// simple op returns 1 when the call itself faulted transiently, and the
// execute quorum returns its transient-run count. Faults accumulate
// across attempts and are counted into CtrFaultsSurvived exactly once,
// when a non-transient observation finally lands — the quorum site never
// tallies them too, so each physical fault is survived at most once.
// Exhaustion counts nothing as survived: those faults won.
func (p *Prober) retry(opName string, op func() (faults int, err error)) error {
	p.tr.Count(CtrProbes, 1)
	pending := 0
	var last error
	for attempt := 0; attempt <= p.cfg.Retries; attempt++ {
		if attempt > 0 {
			d := p.backoff(attempt)
			p.tr.Count(CtrRetries, 1)
			p.tr.RetryEvent(opName, attempt, d)
		}
		faults, err := op()
		pending += faults
		if err == nil || !IsTransient(err) {
			if pending > 0 {
				p.tr.Count(CtrFaultsSurvived, int64(pending))
			}
			return err
		}
		last = err
	}
	p.tr.Count(CtrExhausted, 1)
	return &ExhaustedError{Op: opName, Attempts: p.cfg.Retries + 1, Last: last}
}

// transientCount is the physical fault cost of a simple (non-quorum)
// attempt: 1 if the call faulted transiently, else 0.
func transientCount(err error) int {
	if err != nil && IsTransient(err) {
		return 1
	}
	return 0
}

// logical resolves one logical probe — a full retry+quorum interaction —
// on a forked prober, joining the fork's telemetry bundle back in order.
// With a cache attached and a content key known (memo), a quiet settled
// outcome is memoized, and a later identical probe replays it: same
// value, same error, same telemetry bundle, no toolchain work. Both
// paths join one bundle at one point, which is why traces are
// byte-identical across cache states.
func (p *Prober) logical(op, payload string, memo bool, fn func(sub *Prober) (any, error)) (any, error) {
	var id entryKey
	memo = memo && p.cache != nil
	if memo {
		id = entryKey{op: op, policy: p.policy, payload: payload}
		if e, ok := p.cache.lookup(id); ok {
			p.tr.Count(CtrCacheHits, 1)
			p.tr.Join(e.replay)
			return e.val, e.err
		}
		p.tr.Count(CtrCacheMisses, 1)
	}
	sub := p.Fork()
	val, err := fn(sub)
	r := sub.tr.Drain()
	p.tr.Join(r)
	noisy := sub.Noisy()
	if noisy {
		p.latch()
	}
	if memo && !noisy && sub.tr.Counter(CtrRetries) == 0 && cacheableErr(err) {
		p.cache.store(id, &cacheEntry{val: val, err: err, replay: r})
	}
	return val, err
}

// cacheableErr admits outcomes into the cache: success and permanent
// errors are signal worth memoizing; transient faults and retry-budget
// exhaustion are weather, and must be re-probed next time.
func cacheableErr(err error) bool {
	if err == nil {
		return true
	}
	if IsTransient(err) {
		return false
	}
	var ex *ExhaustedError
	return !errors.As(err, &ex)
}

// CompileC compiles one translation unit, surviving transient faults.
func (p *Prober) CompileC(src string) (string, error) {
	v, err := p.logical("compile", src, true, func(sub *Prober) (any, error) {
		var text string
		rerr := sub.retry("compile", func() (int, error) {
			cerr := sub.call("compile", func() error {
				var err error
				text, err = sub.tc.CompileC(src)
				return err
			})
			return transientCount(cerr), cerr
		})
		return text, rerr
	})
	text, _ := v.(string)
	return text, err
}

// Assemble assembles text. A reject from the assembler is permanent — it
// is the accept/reject oracle syntax discovery bisects against (§3.1).
func (p *Prober) Assemble(text string) (*asm.Unit, error) {
	v, err := p.logical("assemble", text, true, func(sub *Prober) (any, error) {
		var u *asm.Unit
		rerr := sub.retry("assemble", func() (int, error) {
			aerr := sub.call("assemble", func() error {
				var err error
				u, err = sub.tc.Assemble(text)
				return err
			})
			return transientCount(aerr), aerr
		})
		return u, rerr
	})
	u, _ := v.(*asm.Unit)
	if u != nil && p.cache != nil {
		// Track the handle's content identity so link probes downstream
		// can be keyed by what went into them without inspecting it.
		p.cache.bindUnit(u, text)
	}
	return u, err
}

// Link links assembled units.
func (p *Prober) Link(units []*asm.Unit) (*asm.Image, error) {
	var payload string
	keyed := false
	if p.cache != nil {
		payload, keyed = p.cache.unitsKey(units)
	}
	v, err := p.logical("link", payload, keyed, func(sub *Prober) (any, error) {
		var img *asm.Image
		rerr := sub.retry("link", func() (int, error) {
			lerr := sub.call("link", func() error {
				var err error
				img, err = sub.tc.Link(units)
				return err
			})
			return transientCount(lerr), lerr
		})
		return img, rerr
	})
	img, _ := v.(*asm.Image)
	if img != nil && keyed {
		p.cache.bindImage(img, payload)
	}
	return img, err
}

// Execute runs a linked image under the output quorum: a (stdout, error)
// observation is only believed once enough independent runs agree, so a
// single noisy run can never be attributed as semantics. Permanent
// execution errors (a program faulting) are themselves observations and
// vote like outputs.
func (p *Prober) Execute(img *asm.Image) (string, error) {
	var payload string
	keyed := false
	if p.cache != nil {
		payload, keyed = p.cache.imageKey(img)
	}
	v, err := p.logical("execute", payload, keyed, func(sub *Prober) (any, error) {
		var out string
		rerr := sub.retry("execute", func() (int, error) {
			o, faults, qerr := sub.quorumExecute(img)
			out = o
			return faults, qerr
		})
		return out, rerr
	})
	out, _ := v.(string)
	return out, err
}

type observation struct {
	out string
	err error
}

// quorumExecute runs the image until one observation gathers a quorum: two
// agreeing runs normally, three once any disagreement has been seen. With
// QuorumN=1 the first run is trusted. Transient execution faults do not
// vote; they consume run budget (reported back as the attempt's fault
// count) and the caller retries the whole quorum if the budget empties —
// including when every run faulted, a QuorumError with Votes==0 that is
// transient like any other quorum failure.
func (p *Prober) quorumExecute(img *asm.Image) (out string, faults int, err error) {
	execute := func() (string, error) {
		var out string
		err := p.call("execute", func() error {
			var err error
			out, err = p.tc.Execute(img)
			return err
		})
		return out, err
	}
	if p.cfg.QuorumN == 1 {
		out, err := execute()
		return out, transientCount(err), err
	}
	votes := map[string]int{}
	obsv := map[string]observation{}
	conflict := false
	var lastFault error
	for run := 0; run < p.cfg.QuorumN; run++ {
		p.tr.Count(CtrQuorumRuns, 1)
		out, err := execute()
		if err != nil && IsTransient(err) {
			faults++
			lastFault = err
			continue // consumes a run slot without voting
		}
		key := "out:" + out
		if err != nil {
			key = "err:" + err.Error() + "\x00" + out
		}
		votes[key]++
		obsv[key] = observation{out, err}
		if len(votes) > 1 && !conflict {
			conflict = true
			p.tr.Count(CtrQuorumConflicts, 1)
			p.tr.QuorumEscalation(run + 1)
			p.mu.Lock()
			p.noisy = true
			p.mu.Unlock()
		}
		need := 2
		if conflict || p.Noisy() {
			need = 3
		}
		if votes[key] >= need {
			// Runs that voted for a losing observation were noise this
			// quorum outvoted. Transient faults are NOT tallied here:
			// the retry loop owns them (counting both places used to
			// attribute one physical fault twice).
			if losers := run + 1 - votes[key] - faults; losers > 0 {
				p.tr.Count(CtrFaultsSurvived, int64(losers))
			}
			return obsv[key].out, faults, obsv[key].err
		}
	}
	return "", faults, &QuorumError{Runs: p.cfg.QuorumN, Votes: len(votes), Faults: faults, Last: lastFault}
}
