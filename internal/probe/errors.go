package probe

import (
	"errors"
	"fmt"
)

// transient is the marker interface a toolchain error implements to signal
// that the fault is environmental — a crashed compiler process, a dropped
// rsh connection, an exhausted execution budget — rather than a verdict
// about the probed program. The probe layer retries transient faults; a
// permanent error (an assembler rejecting an opcode, a program faulting at
// run time) is meaningful signal the discovery unit must see (§3.1, §4).
type transient interface {
	Transient() bool
}

// IsTransient reports whether err (or anything it wraps) marks itself as a
// transient toolchain fault.
func IsTransient(err error) bool {
	for err != nil {
		if t, ok := err.(transient); ok {
			return t.Transient()
		}
		err = errors.Unwrap(err)
	}
	return false
}

// ExhaustedError reports a probe whose transient faults outlived its retry
// budget. It is permanent: the caller has to treat the probe as failed.
type ExhaustedError struct {
	Op       string // "compile", "assemble", "link", "execute"
	Attempts int
	Last     error // the final transient fault observed
}

func (e *ExhaustedError) Error() string {
	return fmt.Sprintf("probe: %s still failing after %d attempts: %v", e.Op, e.Attempts, e.Last)
}

func (e *ExhaustedError) Unwrap() error { return e.Last }

// Transient marks exhaustion as permanent even though the wrapped cause is
// transient: without this, IsTransient would walk the Unwrap chain into
// Last and send the caller back into the very loop that just gave up.
func (e *ExhaustedError) Transient() bool { return false }

// QuorumError reports an execution whose outputs never reached a quorum
// within the re-probe budget — either the machine is too noisy to trust a
// single observation (Votes > 1), or every run faulted transiently before
// producing one (Votes == 0). Both are transient: the outer retry loop
// re-runs the whole quorum, and only an ExhaustedError makes the failure
// permanent. IsTransient stops at the first Transient() in the chain, so
// the wrapped Last can never shadow this classification.
type QuorumError struct {
	Runs   int
	Votes  int   // distinct observations that voted
	Faults int   // runs consumed by transient faults without voting
	Last   error // final transient fault, when any run faulted
}

func (e *QuorumError) Error() string {
	if e.Votes == 0 {
		return fmt.Sprintf("probe: no output quorum after %d runs (every run faulted transiently: %v)", e.Runs, e.Last)
	}
	return fmt.Sprintf("probe: no output quorum after %d runs (%d distinct outputs)", e.Runs, e.Votes)
}

func (e *QuorumError) Unwrap() error { return e.Last }

// Transient marks quorum failures — disagreement and all-transient alike —
// for the retry loop.
func (e *QuorumError) Transient() bool { return true }
