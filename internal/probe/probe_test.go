package probe

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"srcg/internal/asm"
	"srcg/internal/target"
)

// flake is the transient fault the scripts inject.
type flake struct{ msg string }

func (f *flake) Error() string   { return f.msg }
func (f *flake) Transient() bool { return true }

// step scripts one toolchain call: either an error to return or an output.
type step struct {
	out string
	err error
}

// scripted is a toolchain whose every method plays back a per-op script.
// Running off the end of a script is a test bug and panics.
type scripted struct {
	compile  []step
	assemble []step
	link     []step
	execute  []step
}

func (s *scripted) pop(name string, script *[]step) step {
	if len(*script) == 0 {
		panic("scripted toolchain: " + name + " script exhausted")
	}
	st := (*script)[0]
	*script = (*script)[1:]
	return st
}

func (s *scripted) Name() string { return "scripted" }

func (s *scripted) CompileC(src string) (string, error) {
	st := s.pop("compile", &s.compile)
	return st.out, st.err
}

func (s *scripted) Assemble(text string) (*asm.Unit, error) {
	st := s.pop("assemble", &s.assemble)
	if st.err != nil {
		return nil, st.err
	}
	return &asm.Unit{}, nil
}

func (s *scripted) Link(units []*asm.Unit) (*asm.Image, error) {
	st := s.pop("link", &s.link)
	if st.err != nil {
		return nil, st.err
	}
	return &asm.Image{}, nil
}

func (s *scripted) Execute(img *asm.Image) (string, error) {
	st := s.pop("execute", &s.execute)
	return st.out, st.err
}

var _ target.Toolchain = (*scripted)(nil)

// cfg is a small deterministic policy for the tests: tight budgets so the
// scripts stay short, no Sleep hook (retries must not touch a wall clock).
func cfg(retries, quorum int) Config {
	return Config{Retries: retries, BackoffBase: time.Millisecond,
		BackoffCap: 4 * time.Millisecond, QuorumN: quorum}
}

func TestRetryAbsorbsTransientFaults(t *testing.T) {
	tc := &scripted{compile: []step{
		{err: &flake{"compiler crashed"}},
		{err: &flake{"compiler crashed again"}},
		{out: "mov a, b"},
	}}
	p := New(tc, cfg(8, 1))
	out, err := p.CompileC("main(){}")
	if err != nil || out != "mov a, b" {
		t.Fatalf("CompileC = %q, %v; want the third attempt's output", out, err)
	}
	st := p.Stats()
	if st.Probes != 1 || st.Attempts != 3 || st.Retries != 2 || st.FaultsSurvived != 2 {
		t.Errorf("stats = %+v; want probes=1 attempts=3 retries=2 survived=2", st)
	}
	// Backoff schedule is virtual and pure: 1ms + 2ms.
	if st.Backoff != 3*time.Millisecond {
		t.Errorf("backoff = %v; want 3ms", st.Backoff)
	}
}

func TestPermanentErrorsPassThroughUntouched(t *testing.T) {
	reject := errors.New("as: unknown opcode `frob'")
	tc := &scripted{assemble: []step{{err: reject}}}
	p := New(tc, cfg(8, 1))
	if _, err := p.Assemble("frob r1"); err != reject {
		t.Fatalf("Assemble err = %v; want the assembler's reject verbatim", err)
	}
	st := p.Stats()
	if st.Retries != 0 || st.Attempts != 1 {
		t.Errorf("a permanent error must not be retried: %+v", st)
	}
}

func TestRetryBudgetExhaustion(t *testing.T) {
	tc := &scripted{link: []step{
		{err: &flake{"ld: dropped"}}, {err: &flake{"ld: dropped"}},
		{err: &flake{"ld: dropped"}}, {err: &flake{"ld: dropped"}},
	}}
	p := New(tc, cfg(3, 1))
	_, err := p.Link(nil)
	var ex *ExhaustedError
	if !errors.As(err, &ex) {
		t.Fatalf("err = %v; want *ExhaustedError", err)
	}
	if ex.Op != "link" || ex.Attempts != 4 {
		t.Errorf("ExhaustedError = %+v; want op=link attempts=4", ex)
	}
	if IsTransient(err) {
		t.Error("exhaustion must be permanent even though its cause was transient")
	}
	st := p.Stats()
	if st.Exhausted != 1 || st.Attempts != 4 {
		t.Errorf("stats = %+v; want exhausted=1 attempts=4", st)
	}
}

func TestBackoffScheduleIsCappedAndDeterministic(t *testing.T) {
	script := make([]step, 6)
	for i := range script {
		script[i] = step{err: &flake{"busy"}}
	}
	var slept []time.Duration
	c := cfg(5, 1)
	c.Sleep = func(d time.Duration) { slept = append(slept, d) }
	p := New(&scripted{compile: script}, c)
	p.CompileC("x")
	// 1ms, 2ms, 4ms, then capped at 4ms.
	want := []time.Duration{1e6, 2e6, 4e6, 4e6, 4e6}
	if len(slept) != len(want) {
		t.Fatalf("slept %v; want %v", slept, want)
	}
	var total time.Duration
	for i, d := range slept {
		if d != want[i] {
			t.Errorf("backoff[%d] = %v; want %v", i, d, want[i])
		}
		total += d
	}
	if st := p.Stats(); st.Backoff != total {
		t.Errorf("accounted backoff %v != scheduled %v", st.Backoff, total)
	}
}

func TestQuorumAcceptsTwoAgreeingRuns(t *testing.T) {
	tc := &scripted{execute: []step{{out: "42\n"}, {out: "42\n"}}}
	p := New(tc, cfg(8, 7))
	out, err := p.Execute(&asm.Image{})
	if err != nil || out != "42\n" {
		t.Fatalf("Execute = %q, %v; want 42", out, err)
	}
	st := p.Stats()
	if st.QuorumRuns != 2 || st.QuorumConflicts != 0 {
		t.Errorf("stats = %+v; a clean machine pays exactly 2 runs", st)
	}
	if p.Noisy() {
		t.Error("two agreeing runs must not mark the machine noisy")
	}
}

func TestQuorumOutvotesNoiseAndEscalates(t *testing.T) {
	tc := &scripted{execute: []step{
		{out: "4X\n"}, {out: "42\n"}, {out: "42\n"}, {out: "42\n"}, // noisy quorum
		{out: "7\n"}, {out: "7\n"}, {out: "7\n"}, // later clean probe pays the raised bar
	}}
	p := New(tc, cfg(8, 7))
	out, err := p.Execute(&asm.Image{})
	if err != nil || out != "42\n" {
		t.Fatalf("Execute = %q, %v; the majority output must win", out, err)
	}
	st := p.Stats()
	if st.QuorumConflicts != 1 || !p.Noisy() {
		t.Errorf("a disagreeing run must flag the machine noisy: %+v", st)
	}
	if st.FaultsSurvived != 1 {
		t.Errorf("survived = %d; the one garbled run was absorbed", st.FaultsSurvived)
	}
	// Sticky escalation: the next execution needs 3 agreeing runs.
	if out, err = p.Execute(&asm.Image{}); err != nil || out != "7\n" {
		t.Fatalf("second Execute = %q, %v", out, err)
	}
	if got := p.Stats().QuorumRuns; got != 4+3 {
		t.Errorf("quorum runs = %d; want 7 (4 noisy + 3 escalated)", got)
	}
}

func TestQuorumTransientFaultsConsumeRunsWithoutVoting(t *testing.T) {
	tc := &scripted{execute: []step{
		{err: &flake{"rsh: connection dropped"}}, {out: "9\n"}, {out: "9\n"},
	}}
	p := New(tc, cfg(8, 7))
	out, err := p.Execute(&asm.Image{})
	if err != nil || out != "9\n" {
		t.Fatalf("Execute = %q, %v", out, err)
	}
	st := p.Stats()
	if st.QuorumConflicts != 0 {
		t.Error("a transient fault is not a disagreement")
	}
	if st.FaultsSurvived != 1 {
		t.Errorf("survived = %d; the dropped connection was absorbed", st.FaultsSurvived)
	}
}

func TestQuorumExhaustionRetriesWholeQuorum(t *testing.T) {
	tc := &scripted{execute: []step{
		{out: "a"}, {out: "b"}, {out: "c"}, // no quorum in 3 runs
		{out: "d"}, {out: "d"}, {out: "d"}, // retried quorum at the raised bar
	}}
	p := New(tc, cfg(8, 3))
	out, err := p.Execute(&asm.Image{})
	if err != nil || out != "d" {
		t.Fatalf("Execute = %q, %v; the retried quorum must settle", out, err)
	}
	st := p.Stats()
	if st.Retries != 1 {
		t.Errorf("retries = %d; a failed quorum is transient and retried once here", st.Retries)
	}
}

func TestQuorumN1TrustsSingleRuns(t *testing.T) {
	tc := &scripted{execute: []step{{out: "whatever"}}}
	p := New(tc, cfg(8, 1))
	out, err := p.Execute(&asm.Image{})
	if err != nil || out != "whatever" {
		t.Fatalf("Execute = %q, %v", out, err)
	}
	if st := p.Stats(); st.QuorumRuns != 0 || st.Attempts != 1 {
		t.Errorf("QuorumN=1 must not re-execute: %+v", st)
	}
}

func TestPermanentExecutionErrorsVoteLikeOutputs(t *testing.T) {
	fault := errors.New("machine: divide by zero at 0x40")
	tc := &scripted{execute: []step{{out: "", err: fault}, {out: "", err: fault}}}
	p := New(tc, cfg(8, 7))
	_, err := p.Execute(&asm.Image{})
	if err == nil || err.Error() != fault.Error() {
		t.Fatalf("err = %v; a reproducible fault is an observation, not noise", err)
	}
	if st := p.Stats(); st.QuorumRuns != 2 {
		t.Errorf("stats = %+v; two agreeing faults form a quorum", st)
	}
}

func TestIsTransientWalksWrappedErrors(t *testing.T) {
	base := &flake{"boom"}
	wrapped := fmt.Errorf("compile front half: %w", fmt.Errorf("inner: %w", base))
	if !IsTransient(wrapped) {
		t.Error("IsTransient must walk the Unwrap chain")
	}
	if IsTransient(errors.New("as: syntax error")) {
		t.Error("unmarked errors are permanent")
	}
	if !IsTransient(&QuorumError{Runs: 7, Votes: 7}) {
		t.Error("a failed quorum is transient: the retry loop re-runs it")
	}
}
