package discovery

import "strings"

// isWordByte reports whether c can be part of an identifier-like token.
func isWordByte(c byte) bool {
	return c == '_' || (c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

// ReplaceToken replaces every word-boundary occurrence of tok in text.
// Register names carry their sigil ('%o0', '$9', 'r0'), so boundary checks
// exclude preceding sigils to avoid replacing '$10' inside '$100'.
func ReplaceToken(text, tok, repl string) string {
	var sb strings.Builder
	idx := 0
	for {
		i := strings.Index(text[idx:], tok)
		if i < 0 {
			sb.WriteString(text[idx:])
			return sb.String()
		}
		i += idx
		var before, after byte = ' ', ' '
		if i > 0 {
			before = text[i-1]
		}
		if i+len(tok) < len(text) {
			after = text[i+len(tok)]
		}
		boundary := !isWordByte(before) && !isWordByte(after) && before != '$' && before != '%'
		if boundary {
			sb.WriteString(text[idx:i])
			sb.WriteString(repl)
			idx = i + len(tok)
		} else {
			sb.WriteString(text[idx : i+len(tok)])
			idx = i + len(tok)
		}
	}
}

// HasToken reports whether tok occurs in text at a word boundary.
func HasToken(text, tok string) bool {
	return ReplaceToken(text, tok, "\x00") != text
}

// RenameReg renames register occurrences of `from` to `to` inside one
// operand, updating both the text and the register list.
func (a *Operand) RenameReg(from, to string) bool {
	if !HasToken(a.Text, from) {
		return false
	}
	a.Text = ReplaceToken(a.Text, from, to)
	for i, r := range a.Regs {
		if r == from {
			a.Regs[i] = to
		}
	}
	return true
}

// RenameReg renames register occurrences in every operand of the
// instruction, reporting whether anything changed.
func (i *Instr) RenameReg(from, to string) bool {
	changed := false
	for j := range i.Args {
		if i.Args[j].RenameReg(from, to) {
			changed = true
		}
	}
	return changed
}

// UsesReg reports whether the register occurs in any operand.
func (i *Instr) UsesReg(reg string) bool {
	for _, a := range i.Args {
		for _, r := range a.Regs {
			if r == reg {
				return true
			}
		}
	}
	return false
}

// Registers returns the distinct registers occurring in a region's
// explicit operands, in first-occurrence order.
func Registers(region []Instr) []string {
	seen := map[string]bool{}
	var out []string
	for _, ins := range region {
		for _, a := range ins.Args {
			for _, r := range a.Regs {
				if !seen[r] {
					seen[r] = true
					out = append(out, r)
				}
			}
		}
	}
	return out
}
