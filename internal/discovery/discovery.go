// Package discovery defines the data model shared by the phases of the
// architecture discovery unit: the Generator, Lexer, Preprocessor,
// Extractor, and Synthesizer (paper Fig. 2). Everything here is built from
// *observations of text and program output only* — no package on the
// discovery side may peek below the target.Toolchain interface.
package discovery

import (
	"fmt"
	"strings"
)

// OperandKind classifies a tokenized operand based on discovered syntax.
type OperandKind int

// Operand kinds, in discovery terms.
const (
	KUnknown  OperandKind = iota
	KReg                  // a verified register token
	KLit                  // an integer literal in a discovered base syntax
	KLabelRef             // reference to a code label defined in the sample
	KMem                  // an addressing-mode expression (may embed regs + literals)
	KSym                  // reference to an external/data symbol
)

func (k OperandKind) String() string {
	switch k {
	case KReg:
		return "reg"
	case KLit:
		return "lit"
	case KLabelRef:
		return "label"
	case KMem:
		return "mem"
	case KSym:
		return "sym"
	}
	return "?"
}

// Operand is one tokenized instruction operand.
type Operand struct {
	Text string
	Kind OperandKind
	Regs []string // register tokens occurring in the operand (base regs for KMem)
	Lit  int64    // literal value for KLit; displacement for KMem (if any)
	Sym  string   // referenced symbol for KLabelRef/KSym
	// ModeShape is the operand text with registers replaced by ⟨r⟩ and
	// literals by ⟨n⟩ — the discovered addressing-mode template.
	ModeShape string
}

// Instr is one tokenized instruction of an extracted sample region.
type Instr struct {
	Labels []string // labels defined at this instruction
	Op     string
	Args   []Operand
	Raw    string
	Line   int // line index into the sample's full assembly text
}

func (i Instr) String() string {
	var sb strings.Builder
	for _, l := range i.Labels {
		sb.WriteString(l + ": ")
	}
	sb.WriteString(i.Op)
	for j, a := range i.Args {
		if j == 0 {
			sb.WriteString(" ")
		} else {
			sb.WriteString(", ")
		}
		sb.WriteString(a.Text)
	}
	return sb.String()
}

// Text renders the instruction as an assembly source line.
func (i Instr) Text() string {
	var sb strings.Builder
	i.writeText(&sb)
	return sb.String()
}

// writeText renders the instruction into sb without intermediate strings —
// Rebuild runs once per mutation, so this is allocation-hot.
func (i Instr) writeText(sb *strings.Builder) {
	for _, l := range i.Labels {
		sb.WriteString(l)
		sb.WriteString(":\n")
	}
	sb.WriteByte('\t')
	sb.WriteString(i.Op)
	for j, a := range i.Args {
		if j == 0 {
			sb.WriteString(" ")
		} else {
			sb.WriteString(", ")
		}
		sb.WriteString(a.Text)
	}
}

// Signature identifies an instruction variant by its operand kinds, e.g.
// "lw:m,r". The paper indexes instructions by signature because the same
// mnemonic may have different semantics for different operand shapes
// (addl $1,%ecx vs addl -8(%ebp),%ecx).
func (i Instr) Signature() string {
	parts := make([]string, len(i.Args))
	for j, a := range i.Args {
		if a.Kind == KSym {
			// External symbols identify the instruction: `call .mul` and
			// `call P` have different semantics (Fig. 15e).
			parts[j] = "sym=" + a.Sym
			continue
		}
		parts[j] = a.Kind.String()
	}
	return i.Op + ":" + strings.Join(parts, ",")
}

// PayloadKind classifies what a sample's payload computes.
type PayloadKind int

// Payload kinds.
const (
	PBinary PayloadKind = iota // a = x OP y
	PUnary                     // a = OP x
	PConst                     // a = K
	PCond                      // if (x REL y) a = K2  (else a keeps K1)
	PCall                      // a = P(args...)
	PStress                    // deeply nested expression for register-set discovery
)

// Sample is one generated C program together with everything the pipeline
// learns about it. CSource/InitSource are the two translation units of the
// Fig. 3 harness; ExpectedOut is the stdout of the unmutated program.
type Sample struct {
	Name       string
	Kind       PayloadKind
	COp        string // C operator for PBinary/PUnary ("+", "-", ...); relation for PCond
	Payload    string // the C statement(s) between Begin and End
	CSource    string
	InitSource string

	// Operand shape metadata ("b,c", "a,K", "K,b", ...) and the concrete
	// initialization values chosen by the Monte-Carlo chooser.
	Shape  string
	A0     int64 // initial value of a
	B, C   int64
	K      int64 // literal embedded in the payload, if any
	Expect int64 // expected final value of a

	ExpectedOut string

	// Variants are additional hidden-value assignments for the same
	// payload. Mutation verdicts must hold under every valuation — a dead
	// branch under one set of values is alive under another, so variants
	// keep semantically meaningful instructions from being "redundant",
	// and they break value-symmetric misinterpretations in the Extractor.
	Variants []Valuation

	// Filled by the Lexer.
	FullAsm             string
	Region              []Instr
	PreLines, PostLines []string // assembly text around the region

}

// Valuation is one assignment of the hidden initialization values.
type Valuation struct {
	A0, B, C, Expect int64
	InitSource       string
	ExpectedOut      string
}

// Valuations returns the base valuation followed by the variants.
func (s *Sample) Valuations() []Valuation {
	out := make([]Valuation, 0, len(s.Variants)+1)
	out = append(out, s.Valuation(0))
	return append(out, s.Variants...)
}

// NumValuations reports how many valuations the sample carries: the base
// plus the variants.
func (s *Sample) NumValuations() int { return len(s.Variants) + 1 }

// Valuation returns valuation i without building the full slice — index 0
// is the base, the rest are the variants. Mutation analysis looks one up
// per probe, so this path must not allocate.
func (s *Sample) Valuation(i int) Valuation {
	if i == 0 {
		return Valuation{A0: s.A0, B: s.B, C: s.C, Expect: s.Expect,
			InitSource: s.InitSource, ExpectedOut: s.ExpectedOut}
	}
	return s.Variants[i-1]
}

// Rebuild reassembles the sample's full text with a replacement region.
func (s *Sample) Rebuild(region []Instr) string {
	n := 0
	for _, l := range s.PreLines {
		n += len(l) + 1
	}
	for _, l := range s.PostLines {
		n += len(l) + 1
	}
	var sb strings.Builder
	sb.Grow(n + 48*len(region))
	for _, l := range s.PreLines {
		sb.WriteString(l)
		sb.WriteByte('\n')
	}
	for _, ins := range region {
		ins.writeText(&sb)
		sb.WriteByte('\n')
	}
	for _, l := range s.PostLines {
		sb.WriteString(l)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// CloneRegion deep-copies the extracted region for mutation.
func (s *Sample) CloneRegion() []Instr {
	return CloneInstrs(s.Region)
}

// CloneInstrs deep-copies a slice of instructions.
func CloneInstrs(in []Instr) []Instr {
	out := make([]Instr, len(in))
	for i, ins := range in {
		out[i] = ins
		out[i].Labels = append([]string(nil), ins.Labels...)
		out[i].Args = make([]Operand, len(ins.Args))
		for j, a := range ins.Args {
			out[i].Args[j] = a
			out[i].Args[j].Regs = append([]string(nil), a.Regs...)
		}
	}
	return out
}

// RegUse describes how one instruction touches one register.
type RegUse int

// Register reference classes (paper §4.5).
const (
	UsePure RegUse = iota // pure use
	DefPure               // pure definition
	UseDef                // use-definition
)

func (u RegUse) String() string {
	switch u {
	case UsePure:
		return "use"
	case DefPure:
		return "def"
	case UseDef:
		return "use-def"
	}
	return "?"
}

// HiddenChannel records that instruction To reads a hidden value that
// instruction From wrote (the paper's §7.1 third communication class).
type HiddenChannel struct {
	From, To int
	Tag      string // synthesized name, e.g. "hidden1"
}

// Model is everything the discovery unit has learned about a target's
// assembly language and machine before semantic extraction begins.
type Model struct {
	Arch        string
	CommentChar string
	// LitBases maps a numeric base to the literal prefix the assembler
	// accepts for it ("" for decimal).
	LitBases map[int]string
	// LitPrefix is the marker immediates carry in operand position ("$"
	// on x86/VAX, "" on SPARC/MIPS/Alpha).
	LitPrefix string
	// Registers are verified register tokens.
	Registers []string
	// RegSet is the same as a set.
	RegSet map[string]bool
	// Clobber renders "set register r to literal k" using a discovered
	// instruction template.
	Clobber func(reg string, k int64) string
	// ClobberText describes the template for reports, e.g. "movl $<k>, <r>".
	ClobberText string
	// WordBits is the integer width discovered by enquire-style probing.
	WordBits int
	// ImmRange maps "op:argIndex" to the discovered immediate range.
	ImmRange map[string][2]int64
	// Hardwired maps registers with immutable values to those values
	// (SPARC %g0, MIPS $0, Alpha $31 are always zero).
	Hardwired map[string]int64
	// Modes are the discovered addressing-mode shapes (ModeShape strings).
	Modes []string
}

// IsReg reports whether tok is a verified register.
func (m *Model) IsReg(tok string) bool { return m.RegSet[tok] }

// Stats counts the toolchain interactions a discovery run performed — the
// paper's cost story (§1: "several hours ... 1-2 orders of magnitude
// faster than manual retargeting").
type Stats struct {
	Samples    int
	Compiles   int
	Assemblies int
	Links      int
	Executions int
	Mutations  int
	// Reverse-interpreter search effort.
	CandidatesTried int
	SolvedByMatch   int
	SolvedBySearch  int
	Timeouts        int
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Samples += other.Samples
	s.Compiles += other.Compiles
	s.Assemblies += other.Assemblies
	s.Links += other.Links
	s.Executions += other.Executions
	s.Mutations += other.Mutations
	s.CandidatesTried += other.CandidatesTried
	s.SolvedByMatch += other.SolvedByMatch
	s.SolvedBySearch += other.SolvedBySearch
	s.Timeouts += other.Timeouts
}

func (s Stats) String() string {
	return fmt.Sprintf("samples=%d compiles=%d assemblies=%d links=%d executions=%d mutations=%d candidates=%d",
		s.Samples, s.Compiles, s.Assemblies, s.Links, s.Executions, s.Mutations, s.CandidatesTried)
}
