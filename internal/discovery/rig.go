package discovery

import (
	"srcg/internal/asm"
	"srcg/internal/target"
)

// Rig wraps a target toolchain with interaction counting. The objects
// returned by Assemble are treated as opaque handles — discovery-side code
// never inspects them, preserving the black-box discipline.
type Rig struct {
	TC    target.Toolchain
	Stats Stats
}

// NewRig wraps a toolchain.
func NewRig(tc target.Toolchain) *Rig { return &Rig{TC: tc} }

// CompileAsm runs the target C compiler on one translation unit.
func (r *Rig) CompileAsm(src string) (string, error) {
	r.Stats.Compiles++
	return r.TC.CompileC(src)
}

// Assemble runs the target assembler.
func (r *Rig) Assemble(text string) (*asm.Unit, error) {
	r.Stats.Assemblies++
	return r.TC.Assemble(text)
}

// Accepts probes the assembler for acceptance of a code fragment.
func (r *Rig) Accepts(text string) bool {
	_, err := r.Assemble(text)
	return err == nil
}

// LinkRun links pre-assembled units and executes the result, returning the
// program's stdout. An execution fault is an error (mutation analyses treat
// faults as "behaved differently").
func (r *Rig) LinkRun(units ...*asm.Unit) (string, error) {
	r.Stats.Links++
	img, err := r.TC.Link(units)
	if err != nil {
		return "", err
	}
	r.Stats.Executions++
	return r.TC.Execute(img)
}

// BuildRun compiles, assembles, links, and runs C translation units.
func (r *Rig) BuildRun(sources ...string) (string, error) {
	units := make([]*asm.Unit, 0, len(sources))
	for _, src := range sources {
		text, err := r.CompileAsm(src)
		if err != nil {
			return "", err
		}
		u, err := r.Assemble(text)
		if err != nil {
			return "", err
		}
		units = append(units, u)
	}
	return r.LinkRun(units...)
}
