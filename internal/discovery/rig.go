package discovery

import (
	"srcg/internal/asm"
	"srcg/internal/obs"
	"srcg/internal/probe"
	"srcg/internal/target"
)

// Rig wraps a target toolchain with interaction counting and the resilient
// probe layer: every toolchain call the discovery unit makes flows through
// one probe.Prober that retries transient faults and re-executes noisy
// runs under an output quorum (see internal/probe). The objects returned
// by Assemble are treated as opaque handles — discovery-side code never
// inspects them, preserving the black-box discipline.
type Rig struct {
	TC    target.Toolchain
	P     *probe.Prober
	Stats Stats
}

// NewRig wraps a toolchain under the default resilience policy.
func NewRig(tc target.Toolchain) *Rig { return NewRigConfig(tc, probe.DefaultConfig()) }

// NewRigConfig wraps a toolchain under an explicit resilience policy.
func NewRigConfig(tc target.Toolchain, cfg probe.Config) *Rig {
	return &Rig{TC: tc, P: probe.New(tc, cfg)}
}

// ProbeStats snapshots the probe layer's resilience counters.
func (r *Rig) ProbeStats() probe.Stats { return r.P.Stats() }

// Trace returns the telemetry tracer the probe layer reports to; every
// pipeline stage above the Rig hangs its spans and counters off the same
// tracer, so one trace covers the whole run.
func (r *Rig) Trace() *obs.Tracer { return r.P.Tracer() }

// CompileAsm runs the target C compiler on one translation unit.
func (r *Rig) CompileAsm(src string) (string, error) {
	r.Stats.Compiles++
	return r.P.CompileC(src)
}

// Assemble runs the target assembler.
func (r *Rig) Assemble(text string) (*asm.Unit, error) {
	r.Stats.Assemblies++
	return r.P.Assemble(text)
}

// Accepts probes the assembler for acceptance of a code fragment.
func (r *Rig) Accepts(text string) bool {
	_, err := r.Assemble(text)
	return err == nil
}

// LinkRun links pre-assembled units and executes the result, returning the
// program's stdout. An execution fault is an error (mutation analyses treat
// faults as "behaved differently").
func (r *Rig) LinkRun(units ...*asm.Unit) (string, error) {
	r.Stats.Links++
	img, err := r.P.Link(units)
	if err != nil {
		return "", err
	}
	r.Stats.Executions++
	return r.P.Execute(img)
}

// BuildRun compiles, assembles, links, and runs C translation units.
func (r *Rig) BuildRun(sources ...string) (string, error) {
	units := make([]*asm.Unit, 0, len(sources))
	for _, src := range sources {
		text, err := r.CompileAsm(src)
		if err != nil {
			return "", err
		}
		u, err := r.Assemble(text)
		if err != nil {
			return "", err
		}
		units = append(units, u)
	}
	return r.LinkRun(units...)
}
