package discovery

import (
	"srcg/internal/asm"
	"srcg/internal/obs"
	"srcg/internal/probe"
	"srcg/internal/target"
)

// Counter names for the toolchain-interaction cost story (the paper's
// §7.2 accounting). Rig.Stats() is a view over exactly these; they live
// on the tracer — one atomic, race-free home shared with the trace
// stream — instead of plain struct fields, so two workers sharing a Rig
// can never lose an increment and Report() can never drift.
const (
	CtrSamples    = "discovery.samples"
	CtrCompiles   = "discovery.compiles"
	CtrAssemblies = "discovery.assemblies"
	CtrLinks      = "discovery.links"
	CtrExecutions = "discovery.executions"
	CtrMutations  = "discovery.mutations"
	// Reverse-interpreter search effort (counted by internal/extract).
	CtrCandidatesTried = "discovery.candidates_tried"
	CtrSolvedByMatch   = "discovery.solved_by_match"
	CtrSolvedBySearch  = "discovery.solved_by_search"
	CtrTimeouts        = "discovery.timeouts"
)

// Rig wraps a target toolchain with interaction counting and the resilient
// probe layer: every toolchain call the discovery unit makes flows through
// one probe.Prober that retries transient faults and re-executes noisy
// runs under an output quorum (see internal/probe). The objects returned
// by Assemble are treated as opaque handles — discovery-side code never
// inspects them, preserving the black-box discipline.
type Rig struct {
	TC target.Toolchain
	P  *probe.Prober
	// Workers is the fan-out width pooled probe work (pool.RunRig) uses
	// with this rig; 0 or 1 keeps every loop serial. Results and traces
	// are byte-identical at any width.
	Workers int
}

// NewRig wraps a toolchain under the default resilience policy.
func NewRig(tc target.Toolchain) *Rig { return NewRigConfig(tc, probe.DefaultConfig()) }

// NewRigConfig wraps a toolchain under an explicit resilience policy.
func NewRigConfig(tc target.Toolchain, cfg probe.Config) *Rig {
	return &Rig{TC: tc, P: probe.New(tc, cfg)}
}

// Stats snapshots the toolchain-interaction counters from the tracer.
// Like probe.Stats it is a read-only view, not an independent tally:
// Rigs sharing one tracer share the counts.
func (r *Rig) Stats() Stats {
	tr := r.Trace()
	return Stats{
		Samples:         int(tr.Counter(CtrSamples)),
		Compiles:        int(tr.Counter(CtrCompiles)),
		Assemblies:      int(tr.Counter(CtrAssemblies)),
		Links:           int(tr.Counter(CtrLinks)),
		Executions:      int(tr.Counter(CtrExecutions)),
		Mutations:       int(tr.Counter(CtrMutations)),
		CandidatesTried: int(tr.Counter(CtrCandidatesTried)),
		SolvedByMatch:   int(tr.Counter(CtrSolvedByMatch)),
		SolvedBySearch:  int(tr.Counter(CtrSolvedBySearch)),
		Timeouts:        int(tr.Counter(CtrTimeouts)),
	}
}

// ProbeStats snapshots the probe layer's resilience counters.
func (r *Rig) ProbeStats() probe.Stats { return r.P.Stats() }

// Trace returns the telemetry tracer the probe layer reports to; every
// pipeline stage above the Rig hangs its spans and counters off the same
// tracer, so one trace covers the whole run.
func (r *Rig) Trace() *obs.Tracer { return r.P.Tracer() }

// CompileAsm runs the target C compiler on one translation unit.
func (r *Rig) CompileAsm(src string) (string, error) {
	r.Trace().Count(CtrCompiles, 1)
	return r.P.CompileC(src)
}

// Assemble runs the target assembler.
func (r *Rig) Assemble(text string) (*asm.Unit, error) {
	r.Trace().Count(CtrAssemblies, 1)
	return r.P.Assemble(text)
}

// Accepts probes the assembler for acceptance of a code fragment.
func (r *Rig) Accepts(text string) bool {
	_, err := r.Assemble(text)
	return err == nil
}

// LinkRun links pre-assembled units and executes the result, returning the
// program's stdout. An execution fault is an error (mutation analyses treat
// faults as "behaved differently").
func (r *Rig) LinkRun(units ...*asm.Unit) (string, error) {
	r.Trace().Count(CtrLinks, 1)
	img, err := r.P.Link(units)
	if err != nil {
		return "", err
	}
	r.Trace().Count(CtrExecutions, 1)
	return r.P.Execute(img)
}

// BuildRun compiles, assembles, links, and runs C translation units.
func (r *Rig) BuildRun(sources ...string) (string, error) {
	units := make([]*asm.Unit, 0, len(sources))
	for _, src := range sources {
		text, err := r.CompileAsm(src)
		if err != nil {
			return "", err
		}
		u, err := r.Assemble(text)
		if err != nil {
			return "", err
		}
		units = append(units, u)
	}
	return r.LinkRun(units...)
}
