package discovery

import (
	"testing"
	"testing/quick"
)

func TestReplaceToken(t *testing.T) {
	cases := []struct{ text, tok, repl, want string }{
		{"movl %eax, %eax", "%eax", "%ebx", "movl %ebx, %ebx"},
		{"add $10, $100", "$10", "$9", "add $9, $100"}, // $100 must not match
		{"ld [%fp-8], %l0", "%l0", "%l1", "ld [%fp-8], %l1"},
		{"mov %l0, %l01", "%l0", "%g1", "mov %g1, %l01"},
		{"sub r1, r11, r1", "r1", "r2", "sub r2, r11, r2"},
	}
	for _, c := range cases {
		if got := ReplaceToken(c.text, c.tok, c.repl); got != c.want {
			t.Errorf("ReplaceToken(%q,%q,%q) = %q, want %q", c.text, c.tok, c.repl, got, c.want)
		}
	}
}

func TestHasToken(t *testing.T) {
	if !HasToken("addl $5, %eax", "%eax") {
		t.Error("token eax should be found")
	}
	if HasToken("addl $5, %eaxx", "%eax") {
		t.Error("token eaxx must not match eax")
	}
	if HasToken("movl $100, m", "$10") {
		t.Error("$10 inside $100")
	}
}

func TestOperandRename(t *testing.T) {
	op := Operand{Text: "-8(%ebp)", Kind: KMem, Regs: []string{"%ebp"}}
	if !op.RenameReg("%ebp", "%esi") {
		t.Fatal("rename failed")
	}
	if op.Text != "-8(%esi)" || op.Regs[0] != "%esi" {
		t.Errorf("renamed = %+v", op)
	}
	if op.RenameReg("%ebp", "%eax") {
		t.Error("stale rename should report false")
	}
}

func TestCloneInstrsIsDeep(t *testing.T) {
	in := []Instr{{
		Op:     "add",
		Labels: []string{"L1"},
		Args:   []Operand{{Text: "%o0", Kind: KReg, Regs: []string{"%o0"}}},
	}}
	c := CloneInstrs(in)
	c[0].Args[0].RenameReg("%o0", "%o1")
	c[0].Labels[0] = "X"
	if in[0].Args[0].Text != "%o0" || in[0].Args[0].Regs[0] != "%o0" || in[0].Labels[0] != "L1" {
		t.Errorf("clone aliases original: %+v", in[0])
	}
}

func TestSignature(t *testing.T) {
	ins := Instr{Op: "call", Args: []Operand{{Kind: KSym, Sym: ".mul"}}}
	if got := ins.Signature(); got != "call:sym=.mul" {
		t.Errorf("Signature = %q", got)
	}
	ins2 := Instr{Op: "lw", Args: []Operand{
		{Kind: KReg}, {Kind: KMem},
	}}
	if got := ins2.Signature(); got != "lw:reg,mem" {
		t.Errorf("Signature = %q", got)
	}
}

func TestRegisters(t *testing.T) {
	region := []Instr{
		{Op: "ld", Args: []Operand{{Kind: KMem, Regs: []string{"%fp"}}, {Kind: KReg, Regs: []string{"%l0"}}}},
		{Op: "st", Args: []Operand{{Kind: KReg, Regs: []string{"%l0"}}, {Kind: KMem, Regs: []string{"%fp"}}}},
	}
	got := Registers(region)
	if len(got) != 2 || got[0] != "%fp" || got[1] != "%l0" {
		t.Errorf("Registers = %v", got)
	}
}

func TestValuations(t *testing.T) {
	s := &Sample{A0: 1, B: 2, C: 3, Expect: 5, InitSource: "i", ExpectedOut: "5\n",
		Variants: []Valuation{{A0: 9, B: 8, C: 7, Expect: 15, InitSource: "j", ExpectedOut: "15\n"}}}
	vs := s.Valuations()
	if len(vs) != 2 || vs[0].B != 2 || vs[1].B != 8 {
		t.Errorf("Valuations = %+v", vs)
	}
}

func TestRebuild(t *testing.T) {
	s := &Sample{
		PreLines:  []string{"head:", "\tnop"},
		PostLines: []string{"End:", "\tret"},
	}
	region := []Instr{{Op: "add", Args: []Operand{{Text: "%o0"}, {Text: "%o1"}}, Labels: []string{"L"}}}
	got := s.Rebuild(region)
	want := "head:\n\tnop\nL:\n\tadd %o0, %o1\nEnd:\n\tret\n"
	if got != want {
		t.Errorf("Rebuild = %q, want %q", got, want)
	}
}

func TestReplaceTokenNeverChangesLength(t *testing.T) {
	// Replacement with an equally long token preserves text length.
	f := func(text string) bool {
		got := ReplaceToken(text, "ab", "xy")
		return len(got) == len(text)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStatsAddString(t *testing.T) {
	a := Stats{Samples: 1, Compiles: 2, Executions: 3, CandidatesTried: 4}
	b := Stats{Samples: 10, Mutations: 5}
	a.Add(b)
	if a.Samples != 11 || a.Mutations != 5 || a.CandidatesTried != 4 {
		t.Errorf("Add = %+v", a)
	}
	if a.String() == "" {
		t.Error("empty String")
	}
}
