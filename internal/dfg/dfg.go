// Package dfg builds the data-flow graph of §4.6: for every instruction of
// a preprocessed sample it makes explicit where values come from and where
// they go — explicit operands, implicit register arguments recovered by
// mutation analysis, hidden channels (condition codes, MIPS hi/lo), and
// memory cells bound to the source variables (the paper's @L1.a data
// descriptors). The graph doubles as the interpretation program the
// Extractor evaluates (Fig. 13).
package dfg

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"srcg/internal/discovery"
	"srcg/internal/mutate"
)

// PortKind classifies ports.
type PortKind int

// Port kinds.
const (
	PReg    PortKind = iota // explicit or implicit register
	PMem                    // memory operand: the port carries an address
	PLit                    // literal operand
	PHidden                 // hidden channel endpoint (condition codes, hi/lo)
)

// ResidueKind classifies why a register definition may legitimately go
// unread within the region: single-pass redundancy elimination (mutation
// analysis, Figs. 5-6) removes instructions one at a time, so a surviving
// definition can be stranded by the removal of its reader. Build records
// the evidence explicitly so the verifier exempts exactly the dead
// definitions elimination can account for — and flags the ones that
// never had a consumer at all.
type ResidueKind int

const (
	// ResidueNone: no elimination evidence touches this definition. A
	// dead definition with no residue annotation indicates a broken
	// graph, whether or not something overwrites it later.
	ResidueNone ResidueKind = iota
	// ResidueEliminatedConsumer: the elimination ledger (Analysis.Removed
	// against RegionPreElim) records a removed instruction after this
	// step that mentioned this register — the definition had a consumer,
	// and redundancy elimination took it.
	ResidueEliminatedConsumer
	// ResidueTwinCarrier: another surviving step computes the same value
	// (same opcode, identical input ports), so the value still reaches
	// its consumers through the twin (b|b loads b twice; eliminating the
	// `or` strands one load).
	ResidueTwinCarrier
)

func (r ResidueKind) String() string {
	switch r {
	case ResidueEliminatedConsumer:
		return "eliminated-consumer"
	case ResidueTwinCarrier:
		return "twin-carrier"
	}
	return "none"
}

// Port is one value endpoint of a step.
type Port struct {
	Kind   PortKind
	Reg    string // PReg
	Addr   string // PMem: address token (normalized operand text)
	Lit    int64  // PLit
	Tag    string // PHidden
	ArgIdx int    // explicit operand index, -1 for implicit/hidden

	// Producer is the index of the step whose output feeds this input
	// port; -1 for external sources (memory, literals, live-in).
	Producer int

	// KeyName overrides the default port key (hidden ports: a producer
	// writing several hidden values gets one key per consumer).
	KeyName string

	// Residue, on PReg output ports, records why this definition may go
	// unread (see ResidueKind). Build sets it from the elimination
	// ledger; hand-built graphs leave it ResidueNone.
	Residue ResidueKind
}

func (p Port) String() string {
	switch p.Kind {
	case PReg:
		if p.ArgIdx < 0 {
			return p.Reg + "(implicit)"
		}
		return p.Reg
	case PMem:
		return "[" + p.Addr + "]"
	case PLit:
		return fmt.Sprintf("#%d", p.Lit)
	default:
		return "<" + p.Tag + ">"
	}
}

// Step is one instruction occurrence with its wired ports.
type Step struct {
	Instr  discovery.Instr
	Sig    string
	Ins    []Port
	Outs   []Port
	Target string   // branch/call target label ("" if none)
	Labels []string // labels defined at this step
}

// Graph is the data-flow graph / interpretation program of one sample.
type Graph struct {
	Sample *discovery.Sample
	Steps  []Step
	Labels map[string]int // label -> step index; absent labels exit the region

	// Variable slot bindings (data descriptors): address tokens for the
	// sample variables a, b, c.
	SlotA, SlotB, SlotC string
}

// Slots carries the variable-to-address bindings discovered from the
// single-variable samples (§5.2.1's "symbolic value" trick, grounded by
// samples like main(){int a=1462;}).
type Slots struct {
	A, B, C string
}

// Build constructs the graph for an analyzed sample.
func Build(m *discovery.Model, a *mutate.Analysis, slots Slots) (*Graph, error) {
	g := &Graph{
		Sample: a.Sample,
		Labels: map[string]int{},
		SlotA:  slots.A, SlotB: slots.B, SlotC: slots.C,
	}
	lastDef := map[string]int{}    // register -> step index of latest definer
	hiddenFrom := map[string]int{} // hidden tag -> producing step

	groupReads := func(reg string, grp int) bool { return containsInt(a.Reads[reg], grp) }
	groupDefs := func(reg string, grp int) bool { return containsInt(a.Defs[reg], grp) }
	groupWritesA := func(grp int) bool {
		span := a.Groups[grp]
		return a.AWriter >= span[0] && a.AWriter < span[1]
	}

	for grp := range a.Groups {
		ins := a.GroupInstr(grp)
		if ins.Op == "" {
			for _, l := range ins.Labels {
				g.Labels[l] = len(g.Steps)
			}
			continue
		}
		if a.Filler[a.Groups[grp][0]] && a.Groups[grp][1]-a.Groups[grp][0] == 1 {
			continue // pure filler group
		}
		st := Step{Instr: *ins, Sig: ins.Signature()}
		span := a.Groups[grp]
		for i := span[0]; i < span[1]; i++ {
			st.Labels = append(st.Labels, a.Region[i].Labels...)
		}
		explicit := map[string]bool{}
		for argIdx, arg := range ins.Args {
			switch arg.Kind {
			case discovery.KLit:
				st.Ins = append(st.Ins, Port{Kind: PLit, Lit: arg.Lit, ArgIdx: argIdx, Producer: -1})
			case discovery.KLabelRef:
				st.Target = arg.Sym
			case discovery.KSym:
				// An external symbol: a call target or a global cell. Call
				// targets become Target; data cells become memory ports.
				if looksLikeCallTarget(ins.Op, argIdx, len(ins.Args)) {
					st.Target = arg.Sym
				} else {
					addMemPort(&st, g, arg.Text, argIdx, groupWritesA(grp))
				}
			case discovery.KMem:
				addMemPort(&st, g, arg.Text, argIdx, groupWritesA(grp))
			case discovery.KReg:
				reg := arg.Regs[0]
				if v, hard := m.Hardwired[reg]; hard {
					// A hardwired register is a constant operand (the
					// paper's missing %g0 feature, implemented here).
					st.Ins = append(st.Ins, Port{Kind: PLit, Lit: v, ArgIdx: argIdx, Producer: -1})
					continue
				}
				explicit[reg] = true
				in := groupReads(reg, grp)
				out := groupDefs(reg, grp)
				if !in && !out {
					// Attribution silent (a value defined and consumed in
					// ways the scan could not separate): default by flow —
					// input if something already defined it, else output.
					if _, defined := lastDef[reg]; defined {
						in = true
					} else {
						out = true
					}
				}
				if in {
					p := Port{Kind: PReg, Reg: reg, ArgIdx: argIdx, Producer: -1}
					if d, ok := lastDef[reg]; ok {
						p.Producer = d
					}
					st.Ins = append(st.Ins, p)
				}
				if out {
					st.Outs = append(st.Outs, Port{Kind: PReg, Reg: reg, ArgIdx: argIdx, Producer: -1})
				}
			}
		}
		// Implicit register arguments recovered by §4.4.
		for _, reg := range sortedRegs(a.Reads) {
			if groupReads(reg, grp) && !explicit[reg] {
				p := Port{Kind: PReg, Reg: reg, ArgIdx: -1, Producer: -1}
				if d, ok := lastDef[reg]; ok {
					p.Producer = d
				}
				st.Ins = append(st.Ins, p)
			}
		}
		for _, reg := range sortedRegs(a.Defs) {
			if groupDefs(reg, grp) && !explicit[reg] {
				st.Outs = append(st.Outs, Port{Kind: PReg, Reg: reg, ArgIdx: -1, Producer: -1})
			}
		}
		// Hidden channels. A producer may feed several distinct hidden
		// values (MIPS div writes both lo and hi); its output keys are
		// therefore split by consumer opcode, while the consumer reads
		// its single value under the uniform key "h".
		for _, h := range a.Hidden {
			if h.From == grp {
				consumer := a.GroupInstr(h.To).Op
				st.Outs = append(st.Outs, Port{Kind: PHidden, Tag: h.Tag, ArgIdx: -1,
					Producer: -1, KeyName: "h." + consumer})
				hiddenFrom[h.Tag] = len(g.Steps)
			}
			if h.To == grp {
				p := Port{Kind: PHidden, Tag: h.Tag, ArgIdx: -1, Producer: -1, KeyName: "h"}
				if d, ok := hiddenFrom[h.Tag]; ok {
					p.Producer = d
				}
				st.Ins = append(st.Ins, p)
			}
		}
		for _, l := range st.Labels {
			g.Labels[l] = len(g.Steps)
		}
		for _, o := range st.Outs {
			if o.Kind == PReg {
				lastDef[o.Reg] = len(g.Steps)
			}
		}
		g.Steps = append(g.Steps, st)
	}
	if len(g.Steps) == 0 {
		return nil, fmt.Errorf("dfg: %s: no steps", a.Sample.Name)
	}
	g.wireConditionCodes()
	annotateResidue(g, a)
	// The reverse-interpretation search calls Key() for every port of
	// every step on every candidate trial; resolve each key once here so
	// the inner loop reads a field instead of formatting a string.
	for i := range g.Steps {
		st := &g.Steps[i]
		for j := range st.Ins {
			st.Ins[j].KeyName = st.Ins[j].Key()
		}
		for j := range st.Outs {
			st.Outs[j].KeyName = st.Outs[j].Key()
		}
	}
	return g, nil
}

// annotateResidue marks register output ports with the elimination
// evidence that can account for them going unread: a removed consumer in
// the elimination ledger, or a surviving twin computing the same value.
func annotateResidue(g *Graph, a *mutate.Analysis) {
	removed := map[int]bool{} // original source lines eliminated as redundant
	for _, line := range a.Removed {
		removed[line] = true
	}
	for i := range g.Steps {
		st := &g.Steps[i]
		for pi := range st.Outs {
			p := &st.Outs[pi]
			if p.Kind != PReg {
				continue
			}
			switch {
			case eliminatedConsumer(a, removed, st.Instr.Line, p.Reg):
				p.Residue = ResidueEliminatedConsumer
			case twinOf(g, i) >= 0:
				p.Residue = ResidueTwinCarrier
			}
		}
	}
}

// eliminatedConsumer reports whether the elimination ledger records a
// removed instruction after defLine that mentioned reg — evidence the
// definition had a consumer before redundancy elimination.
func eliminatedConsumer(a *mutate.Analysis, removed map[int]bool, defLine int, reg string) bool {
	for idx := range a.RegionPreElim {
		ins := &a.RegionPreElim[idx]
		if ins.Line > defLine && removed[ins.Line] && ins.UsesReg(reg) {
			return true
		}
	}
	return false
}

// twinOf returns the index of another step computing the same value as
// step i — same opcode, identical input ports — or -1.
func twinOf(g *Graph, i int) int {
	for j := range g.Steps {
		if j == i {
			continue
		}
		if g.Steps[j].Instr.Op == g.Steps[i].Instr.Op &&
			samePorts(g.Steps[j].Ins, g.Steps[i].Ins) {
			return j
		}
	}
	return -1
}

func samePorts(a, b []Port) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Kind != b[i].Kind || a[i].Reg != b[i].Reg ||
			a[i].Addr != b[i].Addr || a[i].Lit != b[i].Lit ||
			a[i].Tag != b[i].Tag {
			return false
		}
	}
	return true
}

// wireConditionCodes handles the paper's condition-code special case
// (§7.1): a branch with no input ports must take its direction from
// somewhere; the nearest preceding instruction with no outputs at all
// (it survived redundant-instruction elimination, so it *does* something —
// just nothing visible) is its hidden producer. This wires x86 cmpl→jcc,
// SPARC cmp→bcc, and VAX tstl/cmpl→jcc pairs.
func (g *Graph) wireConditionCodes() {
	for i := range g.Steps {
		br := &g.Steps[i]
		if br.Target == "" || len(br.Ins) != 0 || len(br.Outs) != 0 {
			continue
		}
		for j := i - 1; j >= 0; j-- {
			src := &g.Steps[j]
			if src.Target != "" || len(src.Outs) != 0 {
				continue
			}
			tag := fmt.Sprintf("cc%d", j)
			src.Outs = append(src.Outs, Port{Kind: PHidden, Tag: tag, ArgIdx: -1,
				Producer: -1, KeyName: "h." + br.Instr.Op})
			br.Ins = append(br.Ins, Port{Kind: PHidden, Tag: tag, ArgIdx: -1,
				Producer: j, KeyName: "h"})
			break
		}
	}
}

// addMemPort wires a memory operand: the a-slot is written only by the
// instruction the §4 memory-writer probe identified (and stays readable —
// CISC use-definition forms read it too); all cells are read.
func addMemPort(st *Step, g *Graph, text string, argIdx int, writesA bool) {
	addr := normalizeAddr(text)
	st.Ins = append(st.Ins, Port{Kind: PMem, Addr: addr, ArgIdx: argIdx, Producer: -1})
	if addr == g.SlotA && writesA {
		st.Outs = append(st.Outs, Port{Kind: PMem, Addr: addr, ArgIdx: argIdx, Producer: -1})
	}
}

// normalizeAddr canonicalizes an address operand's text.
func normalizeAddr(text string) string {
	t := strings.ReplaceAll(text, " ", "")
	t = strings.TrimPrefix(t, "[")
	t = strings.TrimSuffix(t, "]")
	t = strings.ReplaceAll(t, "+-", "-")
	return t
}

// NormalizeAddr is the exported canonicalization used when binding slots.
func NormalizeAddr(text string) string { return normalizeAddr(text) }

// looksLikeCallTarget decides whether a symbol operand is a control target:
// it is the only operand, or the opcode's other operands are registers
// carrying the link (jsr $26, P).
func looksLikeCallTarget(op string, argIdx, nargs int) bool {
	// A symbol in the last position of a 1- or 2-operand instruction whose
	// other operand (if any) is not data-addressed: treat as target. Data
	// references to globals never appear in our samples' regions, so this
	// conservative rule is exact there.
	return argIdx == nargs-1
}

// Deps computes, per step, which of the sample variables (b, c) its inputs
// transitively depend on — the path analysis of §5.1.
func (g *Graph) Deps() []map[string]bool {
	deps := make([]map[string]bool, len(g.Steps))
	for i, st := range g.Steps {
		d := map[string]bool{}
		for _, in := range st.Ins {
			switch {
			case in.Kind == PMem && in.Addr == g.SlotB:
				d["b"] = true
			case in.Kind == PMem && in.Addr == g.SlotC:
				d["c"] = true
			case in.Kind == PMem && in.Addr == g.SlotA:
				d["a"] = true
			case in.Producer >= 0:
				for k := range deps[in.Producer] {
					d[k] = true
				}
			}
		}
		deps[i] = d
	}
	return deps
}

// Dump renders the graph for documentation (the paper's automatically
// generated graph drawings).
func (g *Graph) Dump() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "sample %s (a=%s b=%s c=%s)\n", g.Sample.Name, g.SlotA, g.SlotB, g.SlotC)
	for i, st := range g.Steps {
		fmt.Fprintf(&sb, "%2d: %-30s", i, st.Instr.String())
		var ins, outs []string
		for _, p := range st.Ins {
			src := "ext"
			if p.Producer >= 0 {
				src = fmt.Sprintf("#%d", p.Producer)
			}
			ins = append(ins, p.String()+"<-"+src)
		}
		for _, p := range st.Outs {
			outs = append(outs, p.String())
		}
		fmt.Fprintf(&sb, " in:[%s] out:[%s]", strings.Join(ins, " "), strings.Join(outs, " "))
		if st.Target != "" {
			fmt.Fprintf(&sb, " ->%s", st.Target)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

func sortedRegs(m map[string][]int) []string {
	out := make([]string, 0, len(m))
	for r := range m {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// Key is the stable identity of a port across samples: explicit operands
// by position, implicit registers by name, hidden channels collectively.
func (p Port) Key() string {
	switch {
	case p.KeyName != "":
		return p.KeyName
	case p.Kind == PHidden:
		return "h"
	case p.ArgIdx >= 0:
		return "a" + strconv.Itoa(p.ArgIdx)
	default:
		return "r" + p.Reg
	}
}

// Dot renders the graph in Graphviz format — the paper notes that "all the
// graph drawings shown in this paper were generated automatically as part
// of the documentation produced by the architecture discovery system."
func (g *Graph) Dot() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n  rankdir=TB;\n", g.Sample.Name)
	fmt.Fprintf(&sb, "  node [shape=box];\n")
	varName := func(addr string) string {
		switch addr {
		case g.SlotA:
			return "@L1.a"
		case g.SlotB:
			return "@L1.b"
		case g.SlotC:
			return "@L1.c"
		}
		return addr
	}
	for i, st := range g.Steps {
		fmt.Fprintf(&sb, "  n%d [label=%q];\n", i, fmt.Sprintf("%s (%d)", st.Instr.Op, i))
		for _, p := range st.Ins {
			switch {
			case p.Kind == PMem:
				fmt.Fprintf(&sb, "  %q -> n%d [label=%q];\n", varName(p.Addr), i, p.Key())
			case p.Producer >= 0:
				fmt.Fprintf(&sb, "  n%d -> n%d [label=%q];\n", p.Producer, i, p.String())
			case p.Kind == PLit:
				fmt.Fprintf(&sb, "  %q -> n%d;\n", fmt.Sprintf("#%d", p.Lit), i)
			default:
				fmt.Fprintf(&sb, "  %q -> n%d [style=dashed];\n", p.String(), i)
			}
		}
		for _, p := range st.Outs {
			if p.Kind == PMem {
				fmt.Fprintf(&sb, "  n%d -> %q;\n", i, varName(p.Addr))
			}
		}
		if st.Target != "" {
			fmt.Fprintf(&sb, "  n%d -> %q [style=dotted];\n", i, st.Target)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
