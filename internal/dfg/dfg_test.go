package dfg

import (
	"math/rand"
	"strings"
	"testing"

	"srcg/internal/discovery"
	"srcg/internal/gen"
	"srcg/internal/lexer"
	"srcg/internal/mutate"
	"srcg/internal/target"
	"srcg/internal/target/mips"
	"srcg/internal/target/x86"
)

// pipeline builds the graph of one sample on a real simulated target.
func pipeline(t *testing.T, tc target.Toolchain, name string) (*discovery.Model, *Graph) {
	t.Helper()
	rig := discovery.NewRig(tc)
	samples, err := gen.Samples(gen.Config{Rand: rand.New(rand.NewSource(5))})
	if err != nil {
		t.Fatal(err)
	}
	model, err := lexer.Bootstrap(rig, samples)
	if err != nil {
		t.Fatal(err)
	}
	engine := mutate.New(rig, model, rand.New(rand.NewSource(6)))
	var slots Slots
	var chosen *discovery.Sample
	analyses := map[string]*mutate.Analysis{}
	for _, s := range samples {
		switch s.Name {
		case "int.const.34117", "int.move.b", "int.add.b_c", name:
			a, err := engine.Analyze(s)
			if err != nil {
				t.Fatalf("%s: %v", s.Name, err)
			}
			analyses[s.Name] = a
			if s.Name == name {
				chosen = s
			}
		}
	}
	// Slot binding as core does it.
	memops := func(n string) []string {
		var out []string
		seen := map[string]bool{}
		for _, ins := range analyses[n].Region {
			for _, arg := range ins.Args {
				if arg.Kind == discovery.KMem || arg.Kind == discovery.KSym {
					t := NormalizeAddr(arg.Text)
					if !seen[t] {
						seen[t] = true
						out = append(out, t)
					}
				}
			}
		}
		return out
	}
	slots.A = memops("int.const.34117")[0]
	for _, m := range memops("int.move.b") {
		if m != slots.A {
			slots.B = m
		}
	}
	for _, m := range memops("int.add.b_c") {
		if m != slots.A && m != slots.B {
			slots.C = m
		}
	}
	g, err := Build(model, analyses[chosen.Name], slots)
	if err != nil {
		t.Fatal(err)
	}
	return model, g
}

// TestX86DivisionGraph reproduces Fig. 10(d): the implicit arguments to
// cltd and idivl are explicit in the graph.
func TestX86DivisionGraph(t *testing.T) {
	_, g := pipeline(t, x86.New(), "int.div.b_c")
	var idiv *Step
	for i := range g.Steps {
		if strings.HasPrefix(g.Steps[i].Sig, "idivl") {
			idiv = &g.Steps[i]
		}
	}
	if idiv == nil {
		t.Fatalf("no idivl step:\n%s", g.Dump())
	}
	keys := map[string]bool{}
	for _, p := range idiv.Ins {
		keys[p.Key()] = true
	}
	if !keys["r%eax"] || !keys["r%edx"] {
		t.Errorf("idivl implicit inputs missing: %v\n%s", keys, g.Dump())
	}
	outKeys := map[string]bool{}
	for _, p := range idiv.Outs {
		outKeys[p.Key()] = true
	}
	if !outKeys["r%eax"] {
		t.Errorf("idivl implicit quotient output missing: %v", outKeys)
	}
}

// TestMIPSHiddenGraph reproduces Fig. 10(a)'s hidden flow for division:
// div feeds mflo through a hidden port keyed by consumer.
func TestMIPSHiddenGraph(t *testing.T) {
	_, g := pipeline(t, mips.New(), "int.div.b_c")
	var div, mflo *Step
	for i := range g.Steps {
		switch g.Steps[i].Instr.Op {
		case "div":
			div = &g.Steps[i]
		case "mflo":
			mflo = &g.Steps[i]
		}
	}
	if div == nil || mflo == nil {
		t.Fatalf("missing div/mflo:\n%s", g.Dump())
	}
	var hiddenOut bool
	for _, p := range div.Outs {
		if p.Kind == PHidden && p.Key() == "h.mflo" {
			hiddenOut = true
		}
	}
	if !hiddenOut {
		t.Errorf("div lacks hidden output for mflo:\n%s", g.Dump())
	}
	var wired bool
	for _, p := range mflo.Ins {
		if p.Kind == PHidden && p.Producer >= 0 && g.Steps[p.Producer].Instr.Op == "div" {
			wired = true
		}
	}
	if !wired {
		t.Errorf("mflo not wired to div:\n%s", g.Dump())
	}
}

func TestDeps(t *testing.T) {
	_, g := pipeline(t, x86.New(), "int.add.b_c")
	deps := g.Deps()
	last := deps[len(g.Steps)-1]
	if !last["b"] || !last["c"] {
		t.Errorf("store step must depend on b and c: %v\n%s", last, g.Dump())
	}
	first := deps[0]
	if first["c"] {
		t.Errorf("first load must not depend on c: %v", first)
	}
}

func TestNormalizeAddr(t *testing.T) {
	cases := map[string]string{
		"[%fp-8]":  "%fp-8",
		"[%fp+-8]": "%fp-8",
		"-8(%ebp)": "-8(%ebp)",
		" 8($sp) ": "8($sp)",
	}
	for in, want := range cases {
		if got := NormalizeAddr(in); got != want {
			t.Errorf("NormalizeAddr(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPortKeys(t *testing.T) {
	if (Port{ArgIdx: 2}).Key() != "a2" {
		t.Error("explicit key")
	}
	if (Port{Kind: PReg, Reg: "%eax", ArgIdx: -1}).Key() != "r%eax" {
		t.Error("implicit key")
	}
	if (Port{Kind: PHidden, ArgIdx: -1}).Key() != "h" {
		t.Error("hidden key")
	}
	if (Port{Kind: PHidden, ArgIdx: -1, KeyName: "h.mflo"}).Key() != "h.mflo" {
		t.Error("named hidden key")
	}
}

func TestDot(t *testing.T) {
	_, g := pipeline(t, x86.New(), "int.div.b_c")
	dot := g.Dot()
	for _, want := range []string{"digraph", "@L1.b", "@L1.a", "idivl"} {
		if !strings.Contains(dot, want) {
			t.Errorf("dot output missing %q:\n%s", want, dot)
		}
	}
}
