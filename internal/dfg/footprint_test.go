package dfg

import (
	"reflect"
	"testing"

	"srcg/internal/discovery"
	"srcg/internal/mutate"
)

func reg(r string) discovery.Operand {
	return discovery.Operand{Text: r, Kind: discovery.KReg, Regs: []string{r}}
}

func mem(text string) discovery.Operand {
	return discovery.Operand{Text: text, Kind: discovery.KMem, Regs: []string{"fp"}}
}

func instr(op string, args ...discovery.Operand) discovery.Instr {
	return discovery.Instr{Op: op, Args: args}
}

func fpModel() *discovery.Model {
	return &discovery.Model{
		Registers: []string{"fp", "r1", "r2"},
		RegSet:    map[string]bool{"fp": true, "r1": true, "r2": true},
		Hardwired: map[string]int64{},
	}
}

// oneGroup builds a single-instruction analysis with the given
// per-group register attributions.
func oneGroup(ins discovery.Instr, reads, defs map[string][]int, awriter int) *mutate.Analysis {
	return &mutate.Analysis{
		Region:  []discovery.Instr{ins},
		Filler:  map[int]bool{},
		Groups:  [][2]int{{0, 1}},
		Reads:   reads,
		Defs:    defs,
		AWriter: awriter,
	}
}

// Implicit reads must intersect across witnesses: a call witnessed at
// two arities claims only the argument registers every witness read.
func TestBuildAttribImplicitReadIntersection(t *testing.T) {
	m := fpModel()
	call := instr("xcall", discovery.Operand{Text: "P", Kind: discovery.KSym, Sym: "P"})
	analyses := map[string]*mutate.Analysis{
		"s1": oneGroup(call, map[string][]int{"r1": {0}, "r2": {0}}, map[string][]int{"r1": {0}}, -1),
		"s2": oneGroup(call, map[string][]int{"r1": {0}}, map[string][]int{"r2": {0}}, -1),
	}
	at := BuildAttrib(m, analyses, Slots{A: "8(fp)"})
	sa := at.Sigs[call.Signature()]
	if sa == nil {
		t.Fatalf("no attribution for %q", call.Signature())
	}
	if !reflect.DeepEqual(sa.ImplicitReads, []string{"r1"}) {
		t.Errorf("implicit reads = %v, want intersection [r1]", sa.ImplicitReads)
	}
	if !reflect.DeepEqual(sa.ImplicitDefs, []string{"r1", "r2"}) {
		t.Errorf("implicit defs = %v, want union [r1 r2]", sa.ImplicitDefs)
	}
	if sa.Witnesses != 2 {
		t.Errorf("witnesses = %d, want 2", sa.Witnesses)
	}
}

// A witness whose output cell aliases several operand positions cannot
// tell which position wrote: it must contribute no memory-writer
// attribution. An unaliased witness of the same signature pins it.
func TestBuildAttribAliasedWriterSkipped(t *testing.T) {
	m := fpModel()
	slots := Slots{A: "8(fp)", B: "12(fp)", C: "16(fp)"}
	aliased := oneGroup(instr("xadd3", mem("8(fp)"), mem("12(fp)"), mem("8(fp)")),
		map[string][]int{}, map[string][]int{}, 0)
	at := BuildAttrib(m, map[string]*mutate.Analysis{"alias": aliased}, slots)
	sa := at.Sigs["xadd3:mem,mem,mem"]
	for i, w := range sa.MemWriteAt {
		if w {
			t.Errorf("aliased witness attributed a memory writer at position %d", i)
		}
	}

	exact := oneGroup(instr("xadd3", mem("12(fp)"), mem("16(fp)"), mem("8(fp)")),
		map[string][]int{}, map[string][]int{}, 0)
	at = BuildAttrib(m, map[string]*mutate.Analysis{"alias": aliased, "exact": exact}, slots)
	sa = at.Sigs["xadd3:mem,mem,mem"]
	if !reflect.DeepEqual(sa.MemWriteAt, []bool{false, false, true}) {
		t.Errorf("MemWriteAt = %v, want writer only at position 2", sa.MemWriteAt)
	}
}

// Footprint mirrors Build's port wiring: attributed positions read and
// write, silent positions fall back to the flow default (read if
// defined earlier, else write), and unknown signatures land in Unknown
// without contributing effects.
func TestFootprintFlowDefaultAndUnknown(t *testing.T) {
	m := fpModel()
	at := &AttribTable{Sigs: map[string]*SigAttrib{
		"xld:reg,mem": {Sig: "xld:reg,mem", NArgs: 2,
			PosRead: []bool{false, false}, PosWrite: []bool{true, false},
			MemWriteAt: []bool{false, false}},
		"xmv:reg,reg": {Sig: "xmv:reg,reg", NArgs: 2,
			PosRead: []bool{false, false}, PosWrite: []bool{false, false},
			MemWriteAt: []bool{false, false}},
	}, ExternalIn: map[string]bool{}}
	fp := at.Footprint(m, []discovery.Instr{
		instr("xld", reg("r1"), mem("8(fp)")),
		// Both positions silent: r1 was defined (read default), r2 was
		// not (write default).
		instr("xmv", reg("r2"), reg("r1")),
		instr("xmystery", reg("r2")),
	})
	if fp.Known != 2 || !reflect.DeepEqual(fp.Unknown, []string{"xmystery:reg"}) {
		t.Errorf("known=%d unknown=%v, want 2 known and [xmystery:reg]", fp.Known, fp.Unknown)
	}
	if !fp.MemReads["8(fp)"] || len(fp.MemReads) != 1 {
		t.Errorf("mem reads = %v, want {8(fp)}", fp.MemReads)
	}
	if len(fp.MemWrites) != 0 {
		t.Errorf("mem writes = %v, want none", fp.MemWrites)
	}
	if len(fp.ExtReads) != 0 {
		t.Errorf("external reads = %v, want none (r1 defined in-sequence)", fp.ExtReads)
	}
	if !fp.RegWrites["r1"] || !fp.RegWrites["r2"] {
		t.Errorf("reg writes = %v, want {r1, r2}", fp.RegWrites)
	}
}

// A register consumed before any in-sequence definition is an external
// read; hardwired registers are constants and never ports.
func TestFootprintExternalAndHardwired(t *testing.T) {
	m := fpModel()
	m.Hardwired["r2"] = 0
	at := &AttribTable{Sigs: map[string]*SigAttrib{
		"xst:reg,mem": {Sig: "xst:reg,mem", NArgs: 2,
			PosRead: []bool{true, false}, PosWrite: []bool{false, false},
			MemWriteAt: []bool{false, true}},
		"xadd:reg,reg": {Sig: "xadd:reg,reg", NArgs: 2,
			PosRead: []bool{true, true}, PosWrite: []bool{true, false},
			MemWriteAt: []bool{false, false}},
	}, ExternalIn: map[string]bool{}}
	fp := at.Footprint(m, []discovery.Instr{
		instr("xadd", reg("r1"), reg("r2")),
		instr("xst", reg("r1"), mem("8(fp)")),
	})
	if !fp.ExtReads["r1"] {
		t.Errorf("r1 read before definition not surfaced: %v", fp.ExtReads)
	}
	if fp.ExtReads["r2"] || fp.RegWrites["r2"] {
		t.Errorf("hardwired r2 treated as a port: reads=%v writes=%v", fp.ExtReads, fp.RegWrites)
	}
	if !fp.MemWrites["8(fp)"] {
		t.Errorf("store not attributed: %v", fp.MemWrites)
	}
}
