// Footprint extraction: the machine-description analyzer
// (internal/check/mdverify) needs to interpret a synthesized rule's
// rendered template abstractly — through the same port machinery Build
// uses on sample regions — and compare the resulting read/write/clobber
// surface against the semantics mutation analysis attributed to the
// instructions involved. This file aggregates the per-signature
// attributions of a run into an AttribTable and evaluates instruction
// sequences against it.
package dfg

import (
	"sort"

	"srcg/internal/discovery"
	"srcg/internal/mutate"
)

// SigAttrib is the aggregated mutation-analysis attribution of one
// instruction signature across every witnessing sample group.
type SigAttrib struct {
	Sig   string
	NArgs int
	// PosRead/PosWrite mark explicit register operand positions some
	// witness read or defined (union: a position read by any witness is
	// a read).
	PosRead, PosWrite []bool
	// MemWriteAt marks memory operand positions witnessed writing the
	// sample's output cell (the §4 memory-writer probe) — the only
	// positions a template may store through.
	MemWriteAt []bool
	// ImplicitReads holds registers every witness read implicitly
	// (intersection: a call instruction witnessed at several arities
	// must not claim the union of all argument registers).
	ImplicitReads []string
	// ImplicitDefs holds registers any witness defined implicitly
	// (union: clobbers accumulate).
	ImplicitDefs []string
	// Witnesses counts the groups that contributed.
	Witnesses int
}

// AttribTable indexes the aggregated attributions by signature, plus the
// registers any sample saw flowing into its region from outside
// (frame/stack pointers, environment registers).
type AttribTable struct {
	Sigs       map[string]*SigAttrib
	ExternalIn map[string]bool
}

// BuildAttrib aggregates the mutation-analysis attributions of a run
// into a per-signature table. Iteration is in sorted sample-name order,
// so the table — including the implicit-read intersections — is a pure
// function of the analyses.
func BuildAttrib(m *discovery.Model, analyses map[string]*mutate.Analysis, slots Slots) *AttribTable {
	at := &AttribTable{Sigs: map[string]*SigAttrib{}, ExternalIn: map[string]bool{}}
	names := make([]string, 0, len(analyses))
	for name := range analyses {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		a := analyses[name]
		for _, reg := range a.ExternalIn {
			at.ExternalIn[reg] = true
		}
		for grp := range a.Groups {
			ins := a.GroupInstr(grp)
			if ins == nil || ins.Op == "" {
				continue
			}
			if a.Filler[a.Groups[grp][0]] && a.Groups[grp][1]-a.Groups[grp][0] == 1 {
				continue // pure filler group: no attributed semantics
			}
			at.witness(m, a, slots, grp, ins)
		}
	}
	return at
}

// witness folds one sample group into the signature's attribution.
func (at *AttribTable) witness(m *discovery.Model, a *mutate.Analysis, slots Slots, grp int, ins *discovery.Instr) {
	sig := ins.Signature()
	sa := at.Sigs[sig]
	if sa == nil {
		sa = &SigAttrib{Sig: sig, NArgs: len(ins.Args),
			PosRead:    make([]bool, len(ins.Args)),
			PosWrite:   make([]bool, len(ins.Args)),
			MemWriteAt: make([]bool, len(ins.Args))}
		at.Sigs[sig] = sa
	}
	span := a.Groups[grp]
	writesA := a.AWriter >= span[0] && a.AWriter < span[1]
	// Memory-writer attribution needs an unambiguous witness: when the
	// output cell aliases more than one operand position (a = a op b
	// renders slot A as both a source and the destination), which position
	// wrote cannot be told apart, and attributing all of them would brand
	// read positions as writers. Such witnesses contribute register
	// attributions only.
	aliased := 0
	if writesA {
		for _, arg := range ins.Args {
			if (arg.Kind == discovery.KMem || arg.Kind == discovery.KSym) &&
				normalizeAddr(arg.Text) == slots.A {
				aliased++
			}
		}
	}
	writesA = writesA && aliased == 1
	explicit := map[string]bool{}
	for i, arg := range ins.Args {
		if i >= sa.NArgs {
			break // defensive: signatures fix the arity
		}
		switch arg.Kind {
		case discovery.KReg:
			reg := arg.Regs[0]
			if _, hard := m.Hardwired[reg]; hard {
				continue // a hardwired register is a constant operand
			}
			explicit[reg] = true
			if containsInt(a.Reads[reg], grp) {
				sa.PosRead[i] = true
			}
			if containsInt(a.Defs[reg], grp) {
				sa.PosWrite[i] = true
			}
		case discovery.KMem:
			if writesA && normalizeAddr(arg.Text) == slots.A {
				sa.MemWriteAt[i] = true
			}
		case discovery.KSym:
			// Call targets carry no data footprint; data symbols are
			// memory cells like KMem.
			if !looksLikeCallTarget(ins.Op, i, len(ins.Args)) &&
				writesA && normalizeAddr(arg.Text) == slots.A {
				sa.MemWriteAt[i] = true
			}
		}
	}
	var implicitReads []string
	for _, reg := range sortedRegs(a.Reads) {
		if containsInt(a.Reads[reg], grp) && !explicit[reg] {
			implicitReads = append(implicitReads, reg)
		}
	}
	if sa.Witnesses == 0 {
		sa.ImplicitReads = implicitReads
	} else {
		sa.ImplicitReads = intersectStrings(sa.ImplicitReads, implicitReads)
	}
	for _, reg := range sortedRegs(a.Defs) {
		if containsInt(a.Defs[reg], grp) && !explicit[reg] {
			sa.ImplicitDefs = unionString(sa.ImplicitDefs, reg)
		}
	}
	sa.Witnesses++
}

// Footprint is the abstract effect surface of one instruction sequence:
// which memory cells it reads and writes, which registers it consumes
// from outside the sequence, and which it clobbers. Instruction
// signatures the table has no witnesses for contribute nothing and are
// listed in Unknown — probe-derived tails and delay-slot fillers fall
// out there by construction.
type Footprint struct {
	MemReads  map[string]bool
	MemWrites map[string]bool
	// ExtReads are registers read before any in-sequence definition —
	// values the sequence assumes exist.
	ExtReads map[string]bool
	// RegWrites are registers the sequence defines (the clobber set).
	RegWrites map[string]bool
	Unknown   []string // signatures without attribution, in line order
	Known     int      // instructions interpreted through the table
}

// Footprint abstractly interprets a classified instruction sequence
// through the attribution table, mirroring the port wiring of Build:
// explicit register operands read/write per attribution (with Build's
// flow default when a witness was silent), memory operands always read
// and write only at attributed writer positions, implicit registers per
// the aggregated attribution, hardwired registers as constants.
func (at *AttribTable) Footprint(m *discovery.Model, instrs []discovery.Instr) Footprint {
	fp := Footprint{
		MemReads:  map[string]bool{},
		MemWrites: map[string]bool{},
		ExtReads:  map[string]bool{},
		RegWrites: map[string]bool{},
	}
	defined := map[string]bool{}
	for _, ins := range instrs {
		sig := ins.Signature()
		sa, ok := at.Sigs[sig]
		if !ok {
			fp.Unknown = append(fp.Unknown, sig)
			continue
		}
		fp.Known++
		explicit := map[string]bool{}
		var writes []string
		for i, arg := range ins.Args {
			switch arg.Kind {
			case discovery.KMem:
				addr := normalizeAddr(arg.Text)
				fp.MemReads[addr] = true
				if i < len(sa.MemWriteAt) && sa.MemWriteAt[i] {
					fp.MemWrites[addr] = true
				}
			case discovery.KSym:
				if looksLikeCallTarget(ins.Op, i, len(ins.Args)) {
					continue
				}
				addr := normalizeAddr(arg.Text)
				fp.MemReads[addr] = true
				if i < len(sa.MemWriteAt) && sa.MemWriteAt[i] {
					fp.MemWrites[addr] = true
				}
			case discovery.KReg:
				reg := arg.Regs[0]
				if _, hard := m.Hardwired[reg]; hard {
					continue
				}
				explicit[reg] = true
				rd := i < len(sa.PosRead) && sa.PosRead[i]
				wr := i < len(sa.PosWrite) && sa.PosWrite[i]
				if !rd && !wr {
					// Attribution silent: Build's flow default — input
					// if something already defined it, else output.
					if defined[reg] {
						rd = true
					} else {
						wr = true
					}
				}
				if rd && !defined[reg] {
					fp.ExtReads[reg] = true
				}
				if wr {
					writes = append(writes, reg)
				}
			}
		}
		for _, reg := range sa.ImplicitReads {
			if !explicit[reg] && !defined[reg] {
				fp.ExtReads[reg] = true
			}
		}
		for _, reg := range sa.ImplicitDefs {
			if !explicit[reg] {
				writes = append(writes, reg)
			}
		}
		// Definitions land after the instruction's reads: a use-def
		// operand consumes the incoming value.
		for _, reg := range writes {
			defined[reg] = true
			fp.RegWrites[reg] = true
		}
	}
	return fp
}

// intersectStrings keeps the elements of a also present in b (order of a).
func intersectStrings(a, b []string) []string {
	inB := map[string]bool{}
	for _, x := range b {
		inB[x] = true
	}
	var out []string
	for _, x := range a {
		if inB[x] {
			out = append(out, x)
		}
	}
	return out
}

// unionString appends x to xs if absent, keeping insertion order.
func unionString(xs []string, x string) []string {
	for _, v := range xs {
		if v == x {
			return xs
		}
	}
	return append(xs, x)
}
