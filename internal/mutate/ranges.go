package mutate

import "srcg/internal/discovery"

// LiveRange is one live range of a register's explicit references.
type LiveRange struct {
	Reg   string
	Refs  []int // instruction indexes (into the normalized region)
	Valid bool  // rename+clobber succeeded: the range contains its definition
}

// SplitLiveRanges performs the paper's §4.3 live-range splitting (Fig. 7)
// for one register: regions of references are grown backwards from each
// last use until renaming the region's references to a fresh, clobbered
// register preserves the program's behavior. A range that never validates
// reaches the region start with Valid=false — the signature of a value
// defined implicitly (e.g. a call result), handed to §4.4.
func (e *Engine) SplitLiveRanges(a *Analysis, reg string) []LiveRange {
	var refs []int
	for i, ins := range a.Region {
		if a.Filler[i] {
			continue
		}
		if ins.UsesReg(reg) {
			refs = append(refs, i)
		}
	}
	var ranges []LiveRange
	hi := len(refs) - 1
	for hi >= 0 {
		found := false
		for lo := hi; lo >= 0; lo-- {
			if e.renameWorks(a, reg, refs[lo:hi+1]) {
				ranges = append(ranges, LiveRange{Reg: reg, Refs: refs[lo : hi+1], Valid: true})
				hi = lo - 1
				found = true
				break
			}
		}
		if !found {
			// No backward growth validates: the value consumed here was
			// defined implicitly (a call result, a hidden register). The
			// reference gets a singleton range and §4.4 finds its definer.
			ranges = append(ranges, LiveRange{Reg: reg, Refs: refs[hi : hi+1], Valid: false})
			hi--
		}
	}
	// Reverse into program order.
	for i, j := 0, len(ranges)-1; i < j; i, j = i+1, j-1 {
		ranges[i], ranges[j] = ranges[j], ranges[i]
	}
	return ranges
}

// renameWorks tests whether renaming reg to a fresh register in exactly the
// given instructions — with the fresh register clobbered just prior to the
// proposed region, run with two different clobber values (§4.3: "To make
// the test completely reliable...") — preserves the output. Replacement
// registers that the assembler rejects do not count as evidence.
func (e *Engine) renameWorks(a *Analysis, reg string, idxs []int) bool {
	s := a.Sample
	for _, r2 := range e.freshRegisters(a.Region, 3) {
		ok := true
		applicable := true
		for _, k := range e.clobberValues(2) {
			mut := RenameAt(a.Region, idxs, reg, r2)
			mut = Insert(mut, idxs[0], e.ClobberInstr(r2, k))
			text := s.Rebuild(mut)
			if u, err := e.Rig.Assemble(text); err != nil || u == nil {
				applicable = false // register class mismatch, not semantics
				break
			}
			if !e.SameOutput(s, mut) {
				ok = false
				break
			}
		}
		if applicable && ok {
			return true
		}
	}
	return false
}

// ClassifyRefs implements the paper's §4.5 (Fig. 9) definition/use
// computation for one validated live range: the first reference is a
// definition and the last a use; each intermediate reference is probed by
// duplicating the defining chain into a fresh register and redirecting the
// reference to it — behavior is preserved iff the reference is a pure use.
func (e *Engine) ClassifyRefs(a *Analysis, rng LiveRange) []discovery.RegUse {
	out := make([]discovery.RegUse, len(rng.Refs))
	if len(rng.Refs) == 0 {
		return out
	}
	out[0] = discovery.DefPure
	if len(rng.Refs) == 1 {
		return out
	}
	out[len(rng.Refs)-1] = discovery.UsePure

	chain := []int{rng.Refs[0]} // instructions duplicated into the R2 chain
	for i := 1; i < len(rng.Refs)-1; i++ {
		if e.pureUse(a, rng.Reg, chain, rng.Refs[i]) {
			out[i] = discovery.UsePure
		} else {
			out[i] = discovery.UseDef
			chain = append(chain, rng.Refs[i])
		}
	}
	return out
}

// pureUse builds the Fig. 9 mutant: duplicates of every chain instruction
// (renamed to a fresh register R2) follow their originals, and the probe
// instruction's reference is redirected to R2. If the probe is a pure use
// it reads the same value from R2 and the output is unchanged; a
// use-definition strands its result in R2 and breaks the original chain.
func (e *Engine) pureUse(a *Analysis, reg string, chain []int, probe int) bool {
	for _, r2 := range e.freshRegisters(a.Region, 3) {
		mut := discovery.CloneInstrs(a.Region)
		// Insert duplicates after each chain instruction, back to front so
		// indexes stay valid.
		for c := len(chain) - 1; c >= 0; c-- {
			dup := discovery.CloneInstrs(mut[chain[c] : chain[c]+1])[0]
			dup.Labels = nil
			dup.RenameReg(reg, r2)
			mut = Insert(mut, chain[c]+1, dup)
		}
		// The probe index shifted by the number of insertions before it.
		shift := 0
		for _, c := range chain {
			if c < probe {
				shift++
			}
		}
		mut[probe+shift].RenameReg(reg, r2)
		text := a.Sample.Rebuild(mut)
		if u, err := e.Rig.Assemble(text); err != nil || u == nil {
			continue // class mismatch: try another register
		}
		return e.SameOutput(a.Sample, mut)
	}
	// No applicable replacement register: conservatively call it a use-def.
	return false
}
