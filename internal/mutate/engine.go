// Package mutate implements the Preprocessor of the discovery unit (paper
// §4): mutation analysis. Samples are mutated — instructions deleted,
// moved, or copied; registers renamed or clobbered (Fig. 5) — reassembled,
// re-run on the target, and their output compared with the original. The
// analyses built on this primitive are redundant-instruction elimination
// (§4.2), live-range splitting (§4.3), implicit-argument detection (§4.4),
// definition/use classification (§4.5), and hidden-channel detection
// (§7.1). Every verdict requires all mutation variants (different clobber
// values, different replacement registers) to agree.
package mutate

import (
	"fmt"
	"math/rand"
	"strings"

	"srcg/internal/asm"
	"srcg/internal/discovery"
)

// FNV-64a, inlined over strings: the mutation cache keys a full rebuilt
// sample text per probe, and hash/fnv would force a []byte copy of it.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvAdd(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// Telemetry names the mutation engine maintains on the rig's tracer: the
// mutation cache's hit/miss split, the denominator of the probe-savings
// story (a hit is a toolchain round-trip never made).
const (
	CtrCacheHits   = "mutate.cache_hits"
	CtrCacheMisses = "mutate.cache_misses"
)

// Engine runs mutated samples against the target and caches results.
type Engine struct {
	Rig   *discovery.Rig
	Model *discovery.Model
	Rand  *rand.Rand

	initUnits map[string]*asm.Unit
	cache     map[uint64]bool
}

// New creates a mutation engine.
func New(rig *discovery.Rig, m *discovery.Model, rnd *rand.Rand) *Engine {
	return &Engine{
		Rig:       rig,
		Model:     m,
		Rand:      rnd,
		initUnits: map[string]*asm.Unit{},
		cache:     map[uint64]bool{},
	}
}

// initUnit assembles (and caches) an initializer unit.
func (e *Engine) initUnit(src string) (*asm.Unit, error) {
	if u, ok := e.initUnits[src]; ok {
		return u, nil
	}
	text, err := e.Rig.CompileAsm(src)
	if err != nil {
		return nil, err
	}
	u, err := e.Rig.Assemble(text)
	if err != nil {
		return nil, err
	}
	e.initUnits[src] = u
	return u, nil
}

// SameOutput assembles, links, and runs the sample with a replacement
// region under EVERY valuation, reporting whether all still produce the
// expected outputs. Any failure (assembly rejection, link error, runtime
// fault, wrong output) counts as "behaved differently".
func (e *Engine) SameOutput(s *discovery.Sample, region []discovery.Instr) bool {
	for i := 0; i < s.NumValuations(); i++ {
		if !e.SameOutputVal(s, region, i) {
			return false
		}
	}
	return true
}

// SameOutputVal checks a single valuation (index 0 is the base). The
// value-specific attribution probes (§4.4's repair insertions) use the
// base valuation only, since their repair constants are drawn from it.
func (e *Engine) SameOutputVal(s *discovery.Sample, region []discovery.Instr, val int) bool {
	v := s.Valuation(val)
	text := s.Rebuild(region)
	key := fnvAdd(fnvOffset64, s.Name)
	key = (key ^ uint64(byte(val))) * fnvPrime64
	key = fnvAdd(key, text)
	if cached, ok := e.cache[key]; ok {
		e.Rig.Trace().Count(CtrCacheHits, 1)
		return cached
	}
	e.Rig.Trace().Count(CtrCacheMisses, 1)
	e.Rig.Trace().Count(discovery.CtrMutations, 1)
	same := func() bool {
		u, err := e.Rig.Assemble(text)
		if err != nil {
			return false
		}
		initU, err := e.initUnit(v.InitSource)
		if err != nil {
			return false
		}
		out, err := e.Rig.LinkRun(u, initU)
		return err == nil && out == v.ExpectedOut
	}()
	e.cache[key] = same
	return same
}

// OutputOf runs the sample with a replacement region under valuation val
// and returns the raw stdout (for analyses that compare against something
// other than the original output, e.g. the Synthesizer's jump probe).
func (e *Engine) OutputOf(s *discovery.Sample, region []discovery.Instr, val int) (string, error) {
	v := s.Valuation(val)
	u, err := e.Rig.Assemble(s.Rebuild(region))
	if err != nil {
		return "", err
	}
	initU, err := e.initUnit(v.InitSource)
	if err != nil {
		return "", err
	}
	e.Rig.Trace().Count(discovery.CtrMutations, 1)
	return e.Rig.LinkRun(u, initU)
}

// clobberValues returns n distinct pseudo-random clobber constants. The
// paper's correctness argument (Fig. 6) needs at least two variants with
// different values.
func (e *Engine) clobberValues(n int) []int64 {
	out := make([]int64, n)
	seen := map[int64]bool{}
	for i := range out {
		for {
			v := int64(e.Rand.Intn(1<<20) - 1<<19)
			if v != 0 && !seen[v] {
				seen[v] = true
				out[i] = v
				break
			}
		}
	}
	return out
}

// ClobberInstr renders the model's clobber template as an instruction.
func (e *Engine) ClobberInstr(reg string, k int64) discovery.Instr {
	line := strings.TrimSpace(e.Model.Clobber(reg, k))
	op := line
	rest := ""
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		op, rest = line[:i], strings.TrimSpace(line[i+1:])
	}
	ins := discovery.Instr{Op: op}
	if rest != "" {
		for _, a := range strings.Split(rest, ",") {
			a = strings.TrimSpace(a)
			arg := discovery.Operand{Text: a}
			if e.Model.IsReg(a) {
				arg.Kind = discovery.KReg
				arg.Regs = []string{a}
			} else {
				arg.Kind = discovery.KLit
			}
			ins.Args = append(ins.Args, arg)
		}
	}
	return ins
}

// --- Region editing primitives (the Fig. 5 mutation vocabulary) ---

// Delete removes instruction i (its labels move to the next instruction).
func Delete(region []discovery.Instr, i int) []discovery.Instr {
	out := discovery.CloneInstrs(region)
	labels := out[i].Labels
	out = append(out[:i], out[i+1:]...)
	if len(labels) > 0 && i < len(out) {
		out[i].Labels = append(labels, out[i].Labels...)
	}
	return out
}

// Insert places instruction ins before position i.
func Insert(region []discovery.Instr, i int, ins discovery.Instr) []discovery.Instr {
	out := discovery.CloneInstrs(region)
	out = append(out, discovery.Instr{})
	copy(out[i+1:], out[i:])
	out[i] = ins
	return out
}

// Move relocates instruction from to sit just before position to
// (positions are pre-removal indexes).
func Move(region []discovery.Instr, from, to int) []discovery.Instr {
	out := discovery.CloneInstrs(region)
	ins := out[from]
	ins.Labels = nil // labels stay at the original location
	rest := append(out[:from:from], out[from+1:]...)
	if to > from {
		to--
	}
	rest = append(rest, discovery.Instr{})
	copy(rest[to+1:], rest[to:])
	rest[to] = ins
	if len(region[from].Labels) > 0 && from < len(rest) {
		rest[from].Labels = append(append([]string(nil), region[from].Labels...), rest[from].Labels...)
	}
	return rest
}

// Copy duplicates instruction from to sit just before position to.
func Copy(region []discovery.Instr, from, to int) []discovery.Instr {
	out := discovery.CloneInstrs(region)
	dup := discovery.CloneInstrs(region[from : from+1])[0]
	dup.Labels = nil
	return Insert(out, to, dup)
}

// RenameAt renames reg→to in the instructions whose indexes are listed.
func RenameAt(region []discovery.Instr, idxs []int, reg, to string) []discovery.Instr {
	out := discovery.CloneInstrs(region)
	for _, i := range idxs {
		out[i].RenameReg(reg, to)
	}
	return out
}

// freshRegisters returns candidate replacement registers that do not occur
// anywhere in the region, preferring ones observed as plain operands
// elsewhere in the corpus (general-purpose behavior).
func (e *Engine) freshRegisters(region []discovery.Instr, max int) []string {
	used := map[string]bool{}
	for _, r := range discovery.Registers(region) {
		used[r] = true
	}
	var out []string
	for _, r := range e.Model.Registers {
		if !used[r] {
			out = append(out, r)
			if len(out) >= max {
				break
			}
		}
	}
	return out
}

func describe(region []discovery.Instr) string {
	var sb strings.Builder
	for i, ins := range region {
		fmt.Fprintf(&sb, "%2d: %s\n", i, ins)
	}
	return sb.String()
}
