package mutate

import (
	"math/rand"
	"testing"

	"srcg/internal/discovery"
	"srcg/internal/gen"
	"srcg/internal/lexer"
	"srcg/internal/target"
	"srcg/internal/target/alpha"
	"srcg/internal/target/mips"
	"srcg/internal/target/sparc"
	"srcg/internal/target/vax"
	"srcg/internal/target/x86"
)

// setup bootstraps a target and returns an engine plus the sample map.
func setup(t *testing.T, tc target.Toolchain) (*Engine, map[string]*discovery.Sample) {
	t.Helper()
	rig := discovery.NewRig(tc)
	samples, err := gen.Samples(gen.Config{Rand: rand.New(rand.NewSource(3))})
	if err != nil {
		t.Fatal(err)
	}
	m, err := lexer.Bootstrap(rig, samples)
	if err != nil {
		t.Fatalf("Bootstrap(%s): %v", tc.Name(), err)
	}
	byName := map[string]*discovery.Sample{}
	for _, s := range samples {
		byName[s.Name] = s
	}
	return New(rig, m, rand.New(rand.NewSource(9))), byName
}

func analyze(t *testing.T, e *Engine, s *discovery.Sample) *Analysis {
	t.Helper()
	a, err := e.Analyze(s)
	if err != nil {
		t.Fatalf("Analyze(%s): %v", s.Name, err)
	}
	return a
}

func TestAlphaRedundantElimination(t *testing.T) {
	// Fig. 6: the canonicalizing addl $n,0,$n after the operation is
	// observationally redundant and must be eliminated; the copy
	// addl $a,0,$b (a move) must survive.
	e, samples := setup(t, alpha.New())
	a := analyze(t, e, samples["int.shl.b_c"])
	if len(a.Removed) == 0 {
		t.Fatalf("no redundant instructions found:\n%s", describe(a.Region))
	}
	for _, ins := range a.Region {
		if ins.Op == "addl" && len(ins.Args) == 3 &&
			ins.Args[1].Kind == discovery.KLit && ins.Args[1].Lit == 0 &&
			ins.Args[0].Text == ins.Args[2].Text {
			t.Errorf("redundant addl %s,0,%s survived:\n%s", ins.Args[0].Text, ins.Args[2].Text, describe(a.Region))
		}
	}
}

func TestX86ImplicitArgsOfDivision(t *testing.T) {
	// Fig. 8 / Fig. 10(d): cltd reads %eax and defines %edx; idivl reads
	// and defines %eax (use-def) and reads %edx.
	e, samples := setup(t, x86.New())
	a := analyze(t, e, samples["int.div.b_c"])

	var cltdG, idivG = -1, -1
	for g := range a.Groups {
		switch a.GroupInstr(g).Op {
		case "cltd":
			cltdG = g
		case "idivl":
			idivG = g
		}
	}
	if cltdG < 0 || idivG < 0 {
		t.Fatalf("region missing cltd/idivl:\n%s", describe(a.Region))
	}
	if !containsInt(a.Reads["%eax"], cltdG) {
		t.Errorf("cltd not detected as implicit reader of %%eax: reads=%v", a.Reads["%eax"])
	}
	if !containsInt(a.Defs["%edx"], cltdG) {
		t.Errorf("cltd not detected as implicit definer of %%edx: defs=%v", a.Defs["%edx"])
	}
	if !containsInt(a.Reads["%eax"], idivG) {
		t.Errorf("idivl not detected as reader of %%eax: reads=%v", a.Reads["%eax"])
	}
	if !containsInt(a.Defs["%eax"], idivG) {
		t.Errorf("idivl not detected as definer of %%eax: defs=%v", a.Defs["%eax"])
	}
	if !containsInt(a.Reads["%edx"], idivG) {
		t.Errorf("idivl not detected as reader of %%edx: reads=%v", a.Reads["%edx"])
	}
	if !containsInt(a.UseDefs["%eax"], idivG) {
		t.Errorf("idivl %%eax not classified use-def: %v", a.UseDefs["%eax"])
	}
}

func TestX86ModRevealsEdxDef(t *testing.T) {
	// In the remainder sample the %edx consumer after idivl exposes that
	// idivl defines %edx.
	e, samples := setup(t, x86.New())
	a := analyze(t, e, samples["int.mod.b_c"])
	var idivG = -1
	for g := range a.Groups {
		if a.GroupInstr(g).Op == "idivl" {
			idivG = g
		}
	}
	if idivG < 0 {
		t.Fatalf("missing idivl:\n%s", describe(a.Region))
	}
	if !containsInt(a.Defs["%edx"], idivG) {
		t.Errorf("idivl not detected as definer of %%edx: defs=%v", a.Defs["%edx"])
	}
}

func TestSPARCDelaySlotNormalization(t *testing.T) {
	// Fig. 4(c): the argument move rides in the call's delay slot; the
	// Preprocessor must normalize it to slot-free order.
	e, samples := setup(t, sparc.New())
	a := analyze(t, e, samples["int.mul.b_c"])
	var callIdx = -1
	for i, ins := range a.Region {
		if ins.Op == "call" {
			callIdx = i
		}
	}
	if callIdx < 0 {
		t.Fatalf("no call in region:\n%s", describe(a.Region))
	}
	if !a.Slotted[callIdx] {
		t.Errorf("call not marked delay-slotted:\n%s", describe(a.Region))
	}
	if !a.Filler[callIdx+1] {
		t.Errorf("slot not filled with inert instruction:\n%s", describe(a.Region))
	}
	// After normalization both argument moves precede the call.
	for i := 0; i < callIdx; i++ {
		if a.Region[i].Op == "call" {
			t.Errorf("unexpected earlier call")
		}
	}
}

func TestSPARCCallImplicitArgs(t *testing.T) {
	// Fig. 4(a)/Fig. 15(e): the call to .mul implicitly reads %o0, %o1 and
	// implicitly defines %o0.
	e, samples := setup(t, sparc.New())
	a := analyze(t, e, samples["int.mul.b_c"])
	var callG = -1
	for g := range a.Groups {
		if a.GroupInstr(g).Op == "call" {
			callG = g
		}
	}
	if callG < 0 {
		t.Fatalf("no call group:\n%s", describe(a.Region))
	}
	if !containsInt(a.Reads["%o0"], callG) {
		t.Errorf("call not reading %%o0: %v", a.Reads["%o0"])
	}
	if !containsInt(a.Reads["%o1"], callG) {
		t.Errorf("call not reading %%o1: %v", a.Reads["%o1"])
	}
	if !containsInt(a.Defs["%o0"], callG) {
		t.Errorf("call not defining %%o0: %v", a.Defs["%o0"])
	}
}

func TestMIPSHiddenChannel(t *testing.T) {
	// §7.1: div and mflo communicate through the hidden lo register.
	e, samples := setup(t, mips.New())
	a := analyze(t, e, samples["int.div.b_c"])
	var divG, mfloG = -1, -1
	for g := range a.Groups {
		switch a.GroupInstr(g).Op {
		case "div":
			divG = g
		case "mflo":
			mfloG = g
		}
	}
	if divG < 0 || mfloG < 0 {
		t.Fatalf("missing div/mflo:\n%s", describe(a.Region))
	}
	var found bool
	for _, h := range a.Hidden {
		if h.From == divG && h.To == mfloG {
			found = true
		}
	}
	if !found {
		t.Errorf("hidden div→mflo channel not detected: %v", a.Hidden)
	}
}

func TestX86LiveRangeSplitting(t *testing.T) {
	// Fig. 4(b)/Fig. 7: the two-argument call stages both arguments
	// through %eax; splitting must find the two staging ranges plus the
	// result-extraction range (invalid: its definition is implicit).
	e, samples := setup(t, x86.New())
	a := analyze(t, e, samples["int.call.b_c"])
	ranges := e.SplitLiveRanges(a, "%eax")
	if len(ranges) != 3 {
		t.Fatalf("ranges = %d, want 3:\n%s%v", len(ranges), describe(a.Region), ranges)
	}
	if !ranges[0].Valid || !ranges[1].Valid {
		t.Errorf("staging ranges should validate: %+v", ranges)
	}
	if ranges[2].Valid {
		t.Errorf("result range has an implicit definition and must not validate: %+v", ranges[2])
	}
}

func TestX86UseDefClassification(t *testing.T) {
	// Fig. 9: movl -8(%ebp),%edx (def); imull -12(%ebp),%edx (use-def);
	// movl %edx,-4(%ebp) (use).
	e, samples := setup(t, x86.New())
	a := analyze(t, e, samples["int.mul.b_c"])
	ranges := e.SplitLiveRanges(a, "%edx")
	if len(ranges) != 1 {
		t.Fatalf("ranges = %v, want one", ranges)
	}
	uses := e.ClassifyRefs(a, ranges[0])
	want := []discovery.RegUse{discovery.DefPure, discovery.UseDef, discovery.UsePure}
	if len(uses) != len(want) {
		t.Fatalf("classification = %v, want %v\n%s", uses, want, describe(a.Region))
	}
	for i := range want {
		if uses[i] != want[i] {
			t.Errorf("ref %d = %v, want %v", i, uses[i], want[i])
		}
	}
}

func TestVAXMemoryToMemoryAnalyzes(t *testing.T) {
	// A region with no registers at all must still analyze cleanly.
	e, samples := setup(t, vax.New())
	a := analyze(t, e, samples["int.add.b_c"])
	if len(a.Region) != 1 {
		t.Errorf("region = %v", a.Region)
	}
	if len(a.Hidden) != 0 {
		t.Errorf("unexpected hidden channels: %v", a.Hidden)
	}
}

func TestConditionalSampleAnalyzes(t *testing.T) {
	for _, tc := range []target.Toolchain{x86.New(), sparc.New(), mips.New(), alpha.New(), vax.New()} {
		e, samples := setup(t, tc)
		if _, err := e.Analyze(samples["int.cond.lt.lt"]); err != nil {
			t.Errorf("%s: %v", tc.Name(), err)
		}
	}
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// TestVariantsPreventDeadCodeElimination documents why samples carry
// several hidden-value valuations: under a single valuation the guarded
// store of a conditional sample is dead on one side and the branch on the
// other, so redundant-instruction elimination would eat them; a valuation
// that flips the branch keeps both alive.
func TestVariantsPreventDeadCodeElimination(t *testing.T) {
	e, samples := setup(t, x86.New())
	s := samples["int.cond.lt.lt"]

	stripped := *s
	stripped.Variants = nil
	stripped.Name = s.Name + ".novariants"
	aStripped, err := e.Analyze(&stripped)
	if err != nil {
		t.Fatal(err)
	}
	aFull, err := e.Analyze(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(aStripped.Removed) <= len(aFull.Removed) {
		t.Errorf("without variants the dead side should be eliminated: removed %d (stripped) vs %d (full)",
			len(aStripped.Removed), len(aFull.Removed))
	}
	// With variants, the branch must survive.
	var hasBranch bool
	for _, ins := range aFull.Region {
		for _, arg := range ins.Args {
			if arg.Kind == discovery.KLabelRef {
				hasBranch = true
			}
		}
	}
	if !hasBranch {
		t.Errorf("branch eliminated despite variants:\n%s", describe(aFull.Region))
	}
}
