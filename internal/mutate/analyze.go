package mutate

import (
	"fmt"
	"sort"

	"srcg/internal/discovery"
)

// Analysis is the working state of the Preprocessor for one sample.
type Analysis struct {
	Sample *discovery.Sample
	Region []discovery.Instr // normalized, simplified region

	// Filler marks inert instructions the Preprocessor itself inserted
	// while normalizing delay slots; they carry no sample semantics.
	Filler map[int]bool
	// Slotted marks instructions followed by a delay slot (the next
	// instruction executes before the transfer).
	Slotted map[int]bool

	// Groups are execution units: [start,end) index ranges; a delay-slotted
	// transfer and its slot form one group.
	Groups [][2]int

	// Per register: liveness at group boundaries, def/read attributions.
	Live    map[string][]bool
	Reads   map[string][]int // register -> group indexes that read it
	Defs    map[string][]int // register -> group indexes that define it
	UseDefs map[string][]int // register -> group indexes that both read and define
	// ExternalIn lists registers whose value flows into the region from
	// outside (live at entry).
	ExternalIn []string

	// RegionPreElim is the region after delay-slot normalization but
	// before redundant-instruction elimination: call-convention templates
	// must keep instructions whose effect the sample cannot observe
	// (argument pushes that alias a variable's slot, stack cleanup).
	RegionPreElim []discovery.Instr

	// Hidden channels between groups (no shared register explains the
	// ordering constraint).
	Hidden []discovery.HiddenChannel

	Removed []int // original region indexes eliminated as redundant

	// AWriter is the region instruction index that writes the sample's
	// output cell (variable a), or -1 when nothing in the region does
	// (degenerate identity payloads). Filled by FindMemWriter.
	AWriter int
}

// Analyze runs the complete §4 preprocessing pipeline on a sample.
func (e *Engine) Analyze(s *discovery.Sample) (*Analysis, error) {
	a := &Analysis{
		Sample:  s,
		Region:  s.CloneRegion(),
		Filler:  map[int]bool{},
		Slotted: map[int]bool{},
		Live:    map[string][]bool{},
		Reads:   map[string][]int{},
		Defs:    map[string][]int{},
		UseDefs: map[string][]int{},
		AWriter: -1,
	}
	if !e.SameOutput(s, a.Region) {
		return nil, fmt.Errorf("mutate: %s: baseline region does not reproduce expected output", s.Name)
	}
	if err := e.normalizeDelaySlots(a); err != nil {
		return nil, err
	}
	a.RegionPreElim = discovery.CloneInstrs(a.Region)
	e.eliminateRedundant(a)
	a.rebuildGroups()
	e.scanRegisters(a)
	e.findHiddenChannels(a)
	return a, nil
}

// inertReg picks a register whose clobbering is inert for this sample: it
// does not occur in the region and clobbering it at region start preserves
// the output.
func (e *Engine) inertReg(s *discovery.Sample, region []discovery.Instr) (string, bool) {
	for _, r := range e.freshRegisters(region, 8) {
		ok := true
		for _, k := range e.clobberValues(2) {
			if !e.SameOutput(s, Insert(region, 0, e.ClobberInstr(r, k))) {
				ok = false
				break
			}
		}
		if ok {
			return r, true
		}
	}
	return "", false
}

// normalizeDelaySlots detects delay-slot discipline behaviorally: inserting
// an inert instruction right after a transfer breaks the program only when
// the displaced instruction was executing in the transfer's delay slot
// (paper Fig. 4c). Detected pairs are rewritten into a slot-free shape:
// the slot instruction moves before the transfer and an inert filler takes
// the slot.
func (e *Engine) normalizeDelaySlots(a *Analysis) error {
	inert, ok := e.inertReg(a.Sample, a.Region)
	if !ok {
		return nil // no safe register: skip normalization (nothing detected)
	}
	for i := 0; i < len(a.Region)-1; i++ {
		if a.Filler[i] {
			continue
		}
		k := e.clobberValues(1)[0]
		fill := e.ClobberInstr(inert, k)
		if e.SameOutput(a.Sample, Insert(a.Region, i+1, fill)) {
			continue // insertion after i is harmless: no meaningful slot
		}
		// The instruction at i+1 rides in i's delay slot. Move it before
		// i and park the inert filler in the slot.
		norm := discovery.CloneInstrs(a.Region)
		slot := norm[i+1]
		norm[i+1] = norm[i]
		norm[i] = slot
		norm = Insert(norm, i+2, fill)
		if !e.SameOutput(a.Sample, norm) {
			// Normalization hypothesis failed; leave as-is (the sample
			// will likely be discarded downstream, as in the paper).
			continue
		}
		a.Region = norm
		a.Slotted[i+1] = true
		a.Filler[i+2] = true
		i += 2
	}
	return nil
}

// eliminateRedundant removes instructions whose deletion — under register
// clobbering with two different value sets — preserves the output (paper
// §4.2, Fig. 6).
func (e *Engine) eliminateRedundant(a *Analysis) {
	s := a.Sample
	for i := 0; i < len(a.Region); i++ {
		if a.Filler[i] || a.Slotted[i] || a.Region[i].Op == "" {
			continue
		}
		// Clobber every clobber-safe register with random values so the
		// deletion cannot succeed by accident (Fig. 6 c/d).
		safe := e.safeClobberRegs(s, a.Region)
		allAgree := true
		for variant := 0; variant < 2; variant++ {
			mut := Delete(a.Region, i)
			ks := e.clobberValues(len(safe))
			for j := len(safe) - 1; j >= 0; j-- {
				mut = Insert(mut, 0, e.ClobberInstr(safe[j], ks[j]))
			}
			if !e.SameOutput(s, mut) {
				allAgree = false
				break
			}
		}
		if allAgree {
			a.Removed = append(a.Removed, a.Region[i].Line)
			a.Region = Delete(a.Region, i)
			// Re-index bookkeeping past i.
			a.Filler = shiftSet(a.Filler, i)
			a.Slotted = shiftSet(a.Slotted, i)
			i--
		}
	}
}

func shiftSet(set map[int]bool, removed int) map[int]bool {
	out := map[int]bool{}
	for k, v := range set {
		if !v {
			continue
		}
		switch {
		case k < removed:
			out[k] = true
		case k > removed:
			out[k-1] = true
		}
	}
	return out
}

// safeClobberRegs returns the region's registers whose clobbering at region
// start (two variants) preserves the output — i.e. registers that are dead
// on entry and safe to randomize. Stack and frame pointers exclude
// themselves naturally.
func (e *Engine) safeClobberRegs(s *discovery.Sample, region []discovery.Instr) []string {
	var out []string
	for _, r := range discovery.Registers(region) {
		ok := true
		for _, k := range e.clobberValues(2) {
			if !e.SameOutput(s, Insert(region, 0, e.ClobberInstr(r, k))) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, r)
		}
	}
	return out
}

// rebuildGroups forms execution units: a delay-slotted transfer plus its
// (filler) slot instruction is one unit.
func (a *Analysis) rebuildGroups() {
	a.Groups = nil
	for i := 0; i < len(a.Region); {
		if a.Slotted[i] && i+1 < len(a.Region) {
			a.Groups = append(a.Groups, [2]int{i, i + 2})
			i += 2
			continue
		}
		a.Groups = append(a.Groups, [2]int{i, i + 1})
		i++
	}
}

// GroupInstr returns the representative instruction of group g (the
// transfer for slotted groups, skipping known filler).
func (a *Analysis) GroupInstr(g int) *discovery.Instr {
	span := a.Groups[g]
	for i := span[0]; i < span[1]; i++ {
		if !a.Filler[i] {
			return &a.Region[i]
		}
	}
	return &a.Region[span[0]]
}

// insertAtGroup inserts an instruction at the boundary before group g
// (g == len(Groups) appends at the end).
func (a *Analysis) insertAtGroup(g int, ins discovery.Instr) []discovery.Instr {
	pos := len(a.Region)
	if g < len(a.Groups) {
		pos = a.Groups[g][0]
	}
	return Insert(a.Region, pos, ins)
}

// scanRegisters performs the clobber-scan liveness analysis and the
// implicit-argument attributions of §4.4/§4.5 for every register of
// interest.
func (e *Engine) scanRegisters(a *Analysis) {
	s := a.Sample
	regs := discovery.Registers(a.Region)
	for _, reg := range regs {
		live := make([]bool, len(a.Groups)+1)
		scannable := true
		for g := 0; g <= len(a.Groups); g++ {
			broken := false
			// Sign-diverse garbage: a register consumed only by a
			// comparison may keep the branch direction for same-sign
			// garbage, so positive and negative values are both tried.
			ks := append([]int64{523441, -523441}, e.clobberValues(1)...)
			for _, k := range ks {
				if !e.SameOutput(s, a.insertAtGroup(g, e.ClobberInstr(reg, k))) {
					broken = true
					break
				}
			}
			live[g] = broken
		}
		// A register that breaks everywhere (stack/frame pointer: even the
		// entry clobber fails) cannot be analyzed this way.
		if live[0] && allTrue(live) {
			scannable = false
		}
		a.Live[reg] = live
		if !scannable {
			continue
		}
		if live[0] {
			a.ExternalIn = append(a.ExternalIn, reg)
		}
		e.attribute(a, reg, live)
	}
}

func allTrue(bs []bool) bool {
	for _, b := range bs {
		if !b {
			return false
		}
	}
	return true
}

// attribute turns a liveness profile into def/read/use-def facts:
//
//	live[g]=false, live[g+1]=true  ⇒ group g defines reg
//	live[g]=true,  live[g+1]=false ⇒ group g reads reg (last reader)
//
// Middle groups of a live interval are resolved with the clobber+repair
// mutation (clobber before the group, re-establish the definition right
// after it: output changes iff the group itself consumed the value), and
// redefinitions inside an interval with the copy-of-definition probe
// (re-running the definition after a group breaks iff someone replaced the
// value since).
func (e *Engine) attribute(a *Analysis, reg string, live []bool) {
	s := a.Sample
	n := len(a.Groups)
	markRead := func(g int) { a.Reads[reg] = appendUnique(a.Reads[reg], g) }
	markDef := func(g int) { a.Defs[reg] = appendUnique(a.Defs[reg], g) }

	for start := 0; start <= n; start++ {
		if !live[start] || (start > 0 && live[start-1]) {
			continue // not the beginning of a live interval
		}
		end := start
		for end < n && live[end+1] {
			end++
		}
		// Interval: live at boundaries [start..end]; def by group start-1
		// (or external), last reader group end.
		var defGroup = -1
		if start > 0 {
			defGroup = start - 1
			markDef(defGroup)
		}
		if end < n {
			markRead(end)
		}
		// Resolve middle groups start..end-1 (readers) and redefinitions.
		// Both probes need a *repair*: an instruction that re-establishes
		// the defined value at a later point. Two strategies:
		//   1. a clobber with the value itself — the Generator knows its
		//      hidden initialization values, so it tries them;
		//   2. a copy of the defining instruction, valid only when its
		//      sources cannot have changed (no register operands besides
		//      reg itself).
		if defGroup < 0 {
			continue
		}
		repair, allVals, ok := e.findRepair(a, reg, defGroup, start)
		if !ok {
			continue
		}
		// A def-copy repair is valuation-independent, so its probes may
		// check every valuation — this catches redefinitions whose effect
		// coincides with the expected output under the base valuation
		// alone (x86 idivl's %edx when the remainder happens to equal
		// cltd's sign extension). Constant-clobber repairs carry a
		// base-valuation constant and stay on the base valuation.
		same := func(mut []discovery.Instr) bool {
			if allVals {
				return e.SameOutput(s, mut)
			}
			return e.SameOutputVal(s, mut, 0)
		}
		redefAt := -1
		for g := start; g <= end && end < n; g++ {
			// Repair probe: re-establish reg's defined value after group
			// g; breakage means someone replaced the value in between.
			if !same(a.insertAtGroup(g+1, repair)) {
				redefAt = g
				break
			}
		}
		if redefAt >= 0 {
			markDef(redefAt)
			if live[redefAt] {
				// The redefining group also consumed the old value.
				a.UseDefs[reg] = appendUnique(a.UseDefs[reg], redefAt)
				markRead(redefAt)
			}
		}
		// Middle readers before the redefinition point: clobber before the
		// group, repair right after it — only the group itself ever sees
		// the garbage.
		limit := end
		if redefAt >= 0 {
			limit = redefAt
		}
		for g := start; g < limit; g++ {
			// Sign-diverse garbage: consumers like the x86's cltd only
			// observe the sign, so a single clobber value can miss them.
			r := e.clobberValues(1)[0]
			for _, k := range []int64{523441, -523441, r} {
				withClobber := a.insertAtGroup(g, e.ClobberInstr(reg, k))
				// Repair after group g: indexes shift by one after insertion.
				pos := len(withClobber)
				if g+1 < len(a.Groups) {
					pos = a.Groups[g+1][0] + 1
				}
				if !same(Insert(withClobber, pos, repair)) {
					markRead(g)
					break
				}
			}
		}
	}
}

// findRepair builds an instruction that re-establishes reg's value as
// defined by defGroup, verified by inserting it immediately after the
// definition (position start) and observing unchanged behavior.
// The second result reports whether the repair is valuation-independent
// (a copy of the defining instruction) as opposed to a constant drawn from
// the base valuation.
func (e *Engine) findRepair(a *Analysis, reg string, defGroup, start int) (discovery.Instr, bool, bool) {
	s := a.Sample
	// Strategy 1: the value is one of the sample's hidden constants. The
	// candidate must survive with reg pre-trashed — that proves the
	// template establishes the value regardless of the register's prior
	// contents (an accumulating clobber template would only pass when the
	// insertion happens to be a no-op, e.g. add $0).
	pos := len(a.Region)
	if start < len(a.Groups) {
		pos = a.Groups[start][0]
	}
	trash := e.ClobberInstr(reg, 714253)
	tried := map[int64]bool{}
	tryConst := func(v int64) (discovery.Instr, bool) {
		if tried[v] {
			return discovery.Instr{}, false
		}
		tried[v] = true
		clob := e.ClobberInstr(reg, v)
		mut := Insert(a.insertAtGroup(start, clob), pos, trash)
		return clob, e.SameOutputVal(s, mut, 0)
	}
	for _, v := range []int64{s.B, s.C, s.A0, s.K} {
		if clob, ok := tryConst(v); ok {
			return clob, false, true
		}
	}
	// Strategy 2: re-run the defining instruction, if its sources are
	// stable (no register operands other than reg; memory bases like the
	// frame pointer do not change inside a region). Preferred over an
	// Expect-valued constant because a copy is valid under every
	// valuation.
	span := a.Groups[defGroup]
	if span[1]-span[0] == 1 && !a.Slotted[span[0]] {
		def := discovery.CloneInstrs(a.Region[span[0]:span[1]])[0]
		def.Labels = nil
		stable := true
		for _, arg := range def.Args {
			if arg.Kind == discovery.KReg && arg.Regs[0] != reg {
				stable = false
			}
		}
		if stable && e.SameOutput(s, a.insertAtGroup(start, def)) {
			return def, true, true
		}
	}
	// Last resort: the expected output itself. Such a repair is
	// self-masking for redefinition scans (re-creating the final answer
	// anywhere before the output store looks like a no-op), so it only
	// comes into play when nothing else verifies.
	if clob, ok := tryConst(s.Expect); ok {
		return clob, false, true
	}
	return discovery.Instr{}, false, false
}

func appendUnique(xs []int, x int) []int {
	for _, v := range xs {
		if v == x {
			return xs
		}
	}
	return append(xs, x)
}

// findHiddenChannels looks for ordering constraints between adjacent group
// pairs that no visible value flow explains: after renaming away
// write-after-read and write-after-write hazards, swapping the pair still
// breaks the program — the paper's hidden-register communication class
// (MIPS hi/lo, §7.1).
func (e *Engine) findHiddenChannels(a *Analysis) {
	s := a.Sample
	reads := func(reg string, g int) bool {
		for _, x := range a.Reads[reg] {
			if x == g {
				return true
			}
		}
		return false
	}
	defines := func(reg string, g int) bool {
		for _, x := range a.Defs[reg] {
			if x == g {
				return true
			}
		}
		return false
	}
pairs:
	for g1 := 0; g1 < len(a.Groups)-1; g1++ {
		g2 := g1 + 1
		i1, i2 := a.Groups[g1], a.Groups[g2]
		if i1[1]-i1[0] != 1 || i2[1]-i2[0] != 1 {
			continue
		}
		// Control transfers order their neighbors by *control*, not by a
		// hidden value: swapping across a branch changes which
		// instructions execute at all. Only data-only pairs qualify.
		if hasControlFlow(&a.Region[i1[0]]) || hasControlFlow(&a.Region[i2[0]]) {
			continue
		}
		base := discovery.CloneInstrs(a.Region)
		renamed := false
		// Sorted: which register first triggers a rename (and the probe
		// sequence SameOutput issues) must not follow map order.
		liveRegs := make([]string, 0, len(a.Live))
		for reg := range a.Live {
			liveRegs = append(liveRegs, reg)
		}
		sort.Strings(liveRegs)
		for _, reg := range liveRegs {
			switch {
			case defines(reg, g1) && (reads(reg, g2) || a.Region[i2[0]].UsesReg(reg)):
				// Read-after-write: a visible value flows g1→g2; ordering
				// is explained.
				continue pairs
			case defines(reg, g2) && (reads(reg, g1) || defines(reg, g1) || a.Region[i1[0]].UsesReg(reg)):
				// Anti/output dependency: rename g2's target register (and
				// every later reference) to a fresh one so the hazard
				// disappears. Several candidates are tried — hardwired
				// registers ($0, %g0) fail the sanity check below.
				var idxs []int
				for i := i2[0]; i < len(base); i++ {
					idxs = append(idxs, i)
				}
				ok := false
				for _, fresh := range e.freshRegisters(base, 6) {
					cand := RenameAt(base, idxs, reg, fresh)
					if e.SameOutput(s, cand) {
						base = cand
						ok = true
						break
					}
				}
				if !ok {
					continue pairs
				}
				renamed = true
			}
		}
		_ = renamed
		swapped := discovery.CloneInstrs(base)
		swapped[i1[0]], swapped[i2[0]] = swapped[i2[0]], swapped[i1[0]]
		if !e.SameOutput(s, swapped) {
			a.Hidden = append(a.Hidden, discovery.HiddenChannel{
				From: g1, To: g2, Tag: fmt.Sprintf("hidden%d", len(a.Hidden)+1),
			})
		}
	}
}

// hasControlFlow reports whether the instruction transfers control (label
// reference or external-symbol target) or is an empty label placeholder.
func hasControlFlow(ins *discovery.Instr) bool {
	if ins.Op == "" {
		return true
	}
	for _, a := range ins.Args {
		if a.Kind == discovery.KLabelRef {
			return true
		}
	}
	return false
}

// touches reports whether group g reads, defines, or explicitly mentions
// the register.
func (a *Analysis) touches(reg string, g int) bool {
	for _, x := range a.Reads[reg] {
		if x == g {
			return true
		}
	}
	for _, x := range a.Defs[reg] {
		if x == g {
			return true
		}
	}
	span := a.Groups[g]
	for i := span[0]; i < span[1]; i++ {
		if a.Region[i].UsesReg(reg) {
			return true
		}
	}
	return false
}

// DetectHardwired finds registers with immutable values (SPARC %g0, MIPS
// $0, Alpha $31) — the feature the paper lists as unimplemented (§7.2).
// The probe renames the move sample's data path onto each candidate: if
// the program then prints the same constant under every valuation, writes
// to the register are discarded and reads yield that constant.
func (e *Engine) DetectHardwired(a *Analysis) map[string]int64 {
	out := map[string]int64{}
	// The data-path register of the move sample: the first plain register
	// operand (memory-operand base registers do not qualify).
	path := ""
	for _, ins := range a.Region {
		for _, arg := range ins.Args {
			if arg.Kind == discovery.KReg && path == "" {
				path = arg.Regs[0]
			}
		}
	}
	if path == "" {
		return out // a memory-to-memory machine (VAX): nothing to probe
	}
	for _, cand := range e.Model.Registers {
		if cand == path {
			continue
		}
		mut := discovery.CloneInstrs(a.Region)
		for i := range mut {
			mut[i].RenameReg(path, cand)
		}
		var value int64
		hard := true
		for vi := 0; vi < a.Sample.NumValuations(); vi++ {
			outStr, err := e.OutputOf(a.Sample, mut, vi)
			if err != nil {
				hard = false
				break
			}
			var v int64
			if _, err := fmt.Sscanf(outStr, "%d", &v); err != nil {
				hard = false
				break
			}
			if vi == 0 {
				value = v
			} else if v != value {
				hard = false
				break
			}
			// A normal register prints the moved value b.
			if v == a.Sample.Valuation(vi).B {
				hard = false
				break
			}
		}
		if hard {
			out[cand] = value
		}
	}
	return out
}
