package mutate

import (
	"testing"

	"srcg/internal/discovery"
)

func instr(op string, args ...string) discovery.Instr {
	ins := discovery.Instr{Op: op}
	for _, a := range args {
		ins.Args = append(ins.Args, discovery.Operand{Text: a})
	}
	return ins
}

func ops(region []discovery.Instr) []string {
	var out []string
	for _, i := range region {
		out = append(out, i.Op)
	}
	return out
}

func eq(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func region3() []discovery.Instr {
	r := []discovery.Instr{instr("a"), instr("b"), instr("c")}
	r[1].Labels = []string{"L"}
	return r
}

func TestDelete(t *testing.T) {
	r := region3()
	out := Delete(r, 1)
	if !eq(ops(out), []string{"a", "c"}) {
		t.Errorf("ops = %v", ops(out))
	}
	// The deleted instruction's label moves to its successor.
	if len(out[1].Labels) != 1 || out[1].Labels[0] != "L" {
		t.Errorf("labels = %v", out[1].Labels)
	}
	// The original is untouched.
	if !eq(ops(r), []string{"a", "b", "c"}) {
		t.Error("Delete mutated its input")
	}
}

func TestInsert(t *testing.T) {
	r := region3()
	out := Insert(r, 0, instr("x"))
	if !eq(ops(out), []string{"x", "a", "b", "c"}) {
		t.Errorf("ops = %v", ops(out))
	}
	out = Insert(r, 3, instr("x"))
	if !eq(ops(out), []string{"a", "b", "c", "x"}) {
		t.Errorf("append: ops = %v", ops(out))
	}
}

func TestMove(t *testing.T) {
	r := region3()
	out := Move(r, 0, 2)
	if !eq(ops(out), []string{"b", "a", "c"}) {
		t.Errorf("forward: ops = %v", ops(out))
	}
	out = Move(r, 2, 0)
	if !eq(ops(out), []string{"c", "a", "b"}) {
		t.Errorf("backward: ops = %v", ops(out))
	}
}

func TestCopy(t *testing.T) {
	r := region3()
	out := Copy(r, 0, 2)
	if !eq(ops(out), []string{"a", "b", "a", "c"}) {
		t.Errorf("ops = %v", ops(out))
	}
	if len(out[2].Labels) != 0 {
		t.Error("copied instruction must not carry labels")
	}
}

func TestRenameAt(t *testing.T) {
	r := []discovery.Instr{
		{Op: "mov", Args: []discovery.Operand{
			{Text: "%eax", Kind: discovery.KReg, Regs: []string{"%eax"}},
			{Text: "-4(%eax)", Kind: discovery.KMem, Regs: []string{"%eax"}},
		}},
		{Op: "mov", Args: []discovery.Operand{
			{Text: "%eax", Kind: discovery.KReg, Regs: []string{"%eax"}},
		}},
	}
	out := RenameAt(r, []int{0}, "%eax", "%ebx")
	if out[0].Args[0].Text != "%ebx" || out[0].Args[1].Text != "-4(%ebx)" {
		t.Errorf("instr 0 = %v", out[0])
	}
	if out[1].Args[0].Text != "%eax" {
		t.Errorf("instr 1 should be untouched: %v", out[1])
	}
}
