package mutate

import (
	"fmt"
	"strings"

	"srcg/internal/discovery"
)

// FindMemWriter locates the instruction that writes the sample's output
// cell: a constant-store sequence (the const sample's region with a fresh
// distinctive constant) is inserted at each boundary; the smallest
// position where the program then prints the constant lies just past the
// last writer. Run under the base valuation with two constants so the
// verdict cannot hold by accident. storeSeq is the const sample's region;
// lit is its planted literal.
//
// The probe's staging registers are renamed to registers the region never
// mentions, for two reasons: a shared staging register would let a trailing
// original store re-store the probe constant (the Alpha's stq $1 after the
// probe also used $1 — the writer would appear one position early), and a
// leftover probe value in a region register would perturb later consumers
// (a MIPS bge reading the probe's $9 flips the branch and fakes a hit).
// Renamings that break the probe itself (hardwired or class-restricted
// registers) are rejected by requiring the probe to work at region end,
// where it must always print the constant.
func (e *Engine) FindMemWriter(a *Analysis, storeSeq []discovery.Instr, lit int64) {
	a.AWriter = -1
	staging := discovery.Registers(storeSeq)
	fresh := e.freshRegisters(a.Region, len(staging)+4)
	render := func(k int64, offset int) ([]discovery.Instr, bool) {
		out := discovery.CloneInstrs(storeSeq)
		rename := map[string]string{}
		for i, r := range staging {
			if i+offset >= len(fresh) {
				return nil, false
			}
			rename[r] = fresh[i+offset]
		}
		for i := range out {
			out[i].Labels = nil
			for j := range out[i].Args {
				arg := &out[i].Args[j]
				if arg.Kind == discovery.KLit && arg.Lit == lit {
					arg.Text = strings.Replace(arg.Text, fmt.Sprintf("%d", lit), fmt.Sprintf("%d", k), 1)
				}
				if to, ok := rename[arg.Text]; ok && arg.Kind == discovery.KReg {
					arg.Text = to
					arg.Regs = []string{to}
				}
			}
		}
		return out, true
	}
	printsK := func(pos int, k int64, val, offset int) bool {
		probe, ok := render(k, offset)
		if !ok {
			return false
		}
		region := discovery.CloneInstrs(a.Region)
		for i, ins := range probe {
			region = Insert(region, pos+i, ins)
		}
		out, err := e.OutputOf(a.Sample, region, val)
		return err == nil && out == fmt.Sprintf("%d\n", int32(k))
	}
	// Pick a register renaming the probe survives: at region end the probe
	// runs unconditionally after every writer, so it must print k there.
	offset := -1
	for o := 0; o+len(staging) <= len(fresh); o++ {
		if printsK(len(a.Region), 24683, 0, o) && printsK(len(a.Region), -19751, 0, o) {
			offset = o
			break
		}
	}
	if offset < 0 {
		return
	}
	// The store may sit on a conditionally executed path (a guarded
	// assignment's taken direction skips it), so each valuation is probed
	// and the latest writer wins.
	for val := 0; val < a.Sample.NumValuations(); val++ {
		for pos := 0; pos <= len(a.Region); pos++ {
			// Never split a delay-slotted pair.
			if pos > 0 && a.Slotted[pos-1] {
				continue
			}
			if printsK(pos, 24683, val, offset) && printsK(pos, -19751, val, offset) {
				// The last writer is the nearest non-filler instruction
				// before pos; pos == 0 means this valuation's path writes
				// nothing.
				for i := pos - 1; i >= 0; i-- {
					if !a.Filler[i] {
						if i > a.AWriter {
							a.AWriter = i
						}
						break
					}
				}
				break
			}
		}
	}
}
