// Package faulty wraps any target.Toolchain in seed-deterministic fault
// injection, turning every simulated machine into an adversarial gauntlet
// for the probe layer. The fault model is the paper's §2 setting taken
// seriously: the discovery unit reaches its target over rsh, so compilers
// crash (transient compile errors), connections drop (assemble/link
// errors), executions hang until a budget kills them, stdout arrives
// truncated or garbled, and an adversarial machine may leak
// nondeterministic scratch-register contents into its output with
// probability p.
//
// Injected faults are environmental, never semantic: an injected error
// marks itself Transient() so the probe layer retries it, and injected
// output corruption is re-drawn on every run so an output quorum can
// outvote it. The schedule is a pure function of (seed, call sequence) —
// two identical discovery runs see identical faults.
package faulty

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"

	"srcg/internal/asm"
	"srcg/internal/target"
)

// Kind names one injectable fault.
type Kind int

// Fault kinds.
const (
	CompileErr  Kind = iota // transient C-compiler crash
	AssembleErr             // transient assembler failure
	LinkErr                 // transient linker failure
	ExecErr                 // transient execution failure (dropped connection)
	Hang                    // execution budget exhaustion (a hung remote run)
	Truncate                // stdout arrives cut short
	Garble                  // stdout arrives with a flipped digit
	numKinds
)

func (k Kind) String() string {
	switch k {
	case CompileErr:
		return "compile-err"
	case AssembleErr:
		return "assemble-err"
	case LinkErr:
		return "link-err"
	case ExecErr:
		return "exec-err"
	case Hang:
		return "hang"
	case Truncate:
		return "truncate"
	case Garble:
		return "garble"
	}
	return "?"
}

// Config tunes the injector.
type Config struct {
	Seed int64
	// Rate is the per-call probability of injecting a fault from Kinds.
	Rate float64
	// Noise is the per-execution probability of scratch-register noise: an
	// independent perturbation of the run's output, modeling a machine
	// whose observable state leaks uninitialized scratch registers.
	Noise float64
	// Kinds restricts which faults are injected (nil/empty = all).
	Kinds []Kind
}

// ParseSpec parses a command-line fault specification "<seed>:<rate>"
// (e.g. "7:0.1") into a Config injecting every fault kind at the given
// rate, with scratch-register noise at the same probability.
func ParseSpec(s string) (Config, error) {
	seedStr, rateStr, ok := strings.Cut(s, ":")
	if !ok {
		return Config{}, fmt.Errorf("faulty: spec %q is not <seed>:<rate>", s)
	}
	seed, err := strconv.ParseInt(seedStr, 10, 64)
	if err != nil {
		return Config{}, fmt.Errorf("faulty: bad seed in %q: %v", s, err)
	}
	rate, err := strconv.ParseFloat(rateStr, 64)
	if err != nil || rate < 0 || rate > 1 {
		return Config{}, fmt.Errorf("faulty: bad rate in %q (want 0..1)", s)
	}
	return Config{Seed: seed, Rate: rate, Noise: rate}, nil
}

// InjectedError is a transient environmental fault.
type InjectedError struct {
	Kind Kind
	Call int // injector call sequence number
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("faulty: injected %s (call %d)", e.Kind, e.Call)
}

// Transient marks injected faults for the probe layer's classifier.
func (e *InjectedError) Transient() bool { return true }

// Toolchain is the fault-injecting middleware.
type Toolchain struct {
	inner target.Toolchain
	cfg   Config

	mu        sync.Mutex
	rnd       *rand.Rand
	calls     int
	enabled   [numKinds]bool
	injected  map[Kind]int
	noised    int
	corrupts  int    // corruption events so far (salts each corruption)
	lastTrunc string // previous truncation result (never repeated twice running)
}

var _ target.Toolchain = (*Toolchain)(nil)

// New wraps a toolchain in the injector.
func New(inner target.Toolchain, cfg Config) *Toolchain {
	t := &Toolchain{
		inner:    inner,
		cfg:      cfg,
		rnd:      rand.New(rand.NewSource(cfg.Seed)),
		injected: map[Kind]int{},
	}
	if len(cfg.Kinds) == 0 {
		for k := Kind(0); k < numKinds; k++ {
			t.enabled[k] = true
		}
	} else {
		for _, k := range cfg.Kinds {
			t.enabled[k] = true
		}
	}
	return t
}

// Name passes through: the injector must not change the discovered
// architecture identity.
func (t *Toolchain) Name() string { return t.inner.Name() }

// Injected reports how many faults of kind k were injected so far.
func (t *Toolchain) Injected(k Kind) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.injected[k]
}

// InjectedTotal reports all injected faults, scratch noise included.
func (t *Toolchain) InjectedTotal() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.noised
	for _, c := range t.injected {
		n += c
	}
	return n
}

// draw decides whether to inject one of the given kinds at this call. It
// advances the schedule exactly once per call, so the fault sequence is a
// pure function of (seed, call index).
func (t *Toolchain) draw(kinds ...Kind) (Kind, *InjectedError) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.calls++
	u := t.rnd.Float64()
	pick := t.rnd.Intn(len(kinds))
	if u >= t.cfg.Rate {
		return 0, nil
	}
	avail := make([]Kind, 0, len(kinds))
	for _, k := range kinds {
		if t.enabled[k] {
			avail = append(avail, k)
		}
	}
	if len(avail) == 0 {
		return 0, nil
	}
	k := avail[pick%len(avail)]
	t.injected[k]++
	return k, &InjectedError{Kind: k, Call: t.calls}
}

// CompileC injects transient compiler crashes.
func (t *Toolchain) CompileC(src string) (string, error) {
	if _, err := t.draw(CompileErr); err != nil {
		return "", err
	}
	return t.inner.CompileC(src)
}

// Assemble injects transient assembler failures. Genuine rejects from the
// inner assembler pass through untouched: the injector must never turn the
// accept/reject oracle's answer into its opposite.
func (t *Toolchain) Assemble(text string) (*asm.Unit, error) {
	if _, err := t.draw(AssembleErr); err != nil {
		return nil, err
	}
	return t.inner.Assemble(text)
}

// Link injects transient linker failures.
func (t *Toolchain) Link(units []*asm.Unit) (*asm.Image, error) {
	if _, err := t.draw(LinkErr); err != nil {
		return nil, err
	}
	return t.inner.Link(units)
}

// Execute injects dropped connections, hangs, and stdout corruption, plus
// independent scratch-register noise.
func (t *Toolchain) Execute(img *asm.Image) (string, error) {
	kind, injErr := t.draw(ExecErr, Hang, Truncate, Garble)
	if injErr != nil && (kind == ExecErr || kind == Hang) {
		if kind == Hang {
			injErr = &InjectedError{Kind: Hang, Call: injErr.Call}
		}
		return "", injErr
	}
	out, err := t.inner.Execute(img)
	if err != nil {
		return out, err // genuine execution faults are signal, not noise
	}
	if injErr != nil {
		out = t.corrupt(out, kind)
	}
	t.mu.Lock()
	noise := t.rnd.Float64() < t.cfg.Noise
	t.mu.Unlock()
	if noise {
		t.mu.Lock()
		t.noised++
		t.mu.Unlock()
		out = t.corrupt(out, Garble)
	}
	return out, err
}

// corrupt damages an output string. Each corruption is salted by a
// monotonic event counter, so two runs of the same program inside one
// quorum window cannot lie the same way twice — the fault-model property
// the probe layer's quorum relies on (DESIGN §7): noise never repeats
// fast enough to outvote the truth.
func (t *Toolchain) corrupt(out string, kind Kind) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.corrupts++
	if len(out) == 0 {
		return fmt.Sprintf("\x00garbled%d", t.corrupts)
	}
	switch kind {
	case Truncate:
		res := out[:t.rnd.Intn(len(out))]
		if res == t.lastTrunc { // never serve the same short read twice running
			if len(res) > 0 {
				res = res[:len(res)-1]
			} else {
				res = out[:1]
			}
		}
		t.lastTrunc = res
		return res
	default: // Garble
		pos := t.rnd.Intn(len(out))
		b := []byte(out)
		repl := byte('0' + (t.rnd.Intn(10)+t.corrupts)%10)
		if repl == b[pos] {
			repl = '0' + (repl-'0'+1)%10
		}
		b[pos] = repl
		return string(b)
	}
}
