package faulty

import (
	"errors"
	"testing"

	"srcg/internal/asm"
	"srcg/internal/target"
)

// echo is a well-behaved inner toolchain: every call succeeds and every
// execution prints the same output, so any deviation is the injector's.
type echo struct {
	out       string
	rejects   bool
	execFault error
	calls     int
}

func (e *echo) Name() string { return "echo" }

func (e *echo) CompileC(src string) (string, error) {
	e.calls++
	return "mov a, b", nil
}

func (e *echo) Assemble(text string) (*asm.Unit, error) {
	e.calls++
	if e.rejects {
		return nil, errors.New("as: unknown opcode")
	}
	return &asm.Unit{}, nil
}

func (e *echo) Link(units []*asm.Unit) (*asm.Image, error) {
	e.calls++
	return &asm.Image{}, nil
}

func (e *echo) Execute(img *asm.Image) (string, error) {
	e.calls++
	if e.execFault != nil {
		return "", e.execFault
	}
	return e.out, nil
}

var _ target.Toolchain = (*echo)(nil)

// drive issues one call of the phase the kind belongs to and returns its
// observable result.
func drive(t *Toolchain, k Kind) (string, error) {
	switch k {
	case CompileErr:
		return t.CompileC("main(){}")
	case AssembleErr:
		_, err := t.Assemble("mov a, b")
		return "", err
	case LinkErr:
		_, err := t.Link(nil)
		return "", err
	default:
		return t.Execute(&asm.Image{})
	}
}

// TestEveryKindInjects drives each fault kind in isolation at Rate=1 and
// checks the observable failure mode the probe layer must survive.
func TestEveryKindInjects(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			inner := &echo{out: "12345\n"}
			tc := New(inner, Config{Seed: 3, Rate: 1, Kinds: []Kind{k}})
			out, err := drive(tc, k)
			switch k {
			case CompileErr, AssembleErr, LinkErr, ExecErr, Hang:
				var inj *InjectedError
				if !errors.As(err, &inj) {
					t.Fatalf("err = %v; want an InjectedError", err)
				}
				if inj.Kind != k {
					t.Errorf("injected kind = %v; want %v", inj.Kind, k)
				}
				if !inj.Transient() {
					t.Error("injected faults must be transient")
				}
				if k != ExecErr && k != Hang && inner.calls != 0 {
					t.Error("an injected toolchain error must preempt the inner call")
				}
			case Truncate:
				if err != nil {
					t.Fatalf("truncation is not an error: %v", err)
				}
				if len(out) >= len(inner.out) {
					t.Errorf("truncated output %q is not shorter than %q", out, inner.out)
				}
			case Garble:
				if err != nil {
					t.Fatalf("garbling is not an error: %v", err)
				}
				if out == inner.out || len(out) != len(inner.out) {
					t.Errorf("garbled output %q; want same length, different bytes than %q",
						out, inner.out)
				}
			}
			if tc.Injected(k) == 0 {
				t.Errorf("Injected(%v) = 0 after a Rate=1 call", k)
			}
		})
	}
}

// TestScheduleIsDeterministic: the fault sequence is a pure function of
// (seed, call index) — two injectors with one seed agree call for call.
func TestScheduleIsDeterministic(t *testing.T) {
	run := func() ([]string, []string) {
		tc := New(&echo{out: "777\n"}, Config{Seed: 41, Rate: 0.5, Noise: 0.3})
		var outs, errs []string
		for i := 0; i < 200; i++ {
			out, err := tc.Execute(&asm.Image{})
			outs = append(outs, out)
			if err != nil {
				errs = append(errs, err.Error())
			}
		}
		return outs, errs
	}
	o1, e1 := run()
	o2, e2 := run()
	if len(o1) != len(o2) || len(e1) != len(e2) {
		t.Fatal("replayed schedule diverged in shape")
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("call %d: %q vs %q", i, o1[i], o2[i])
		}
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("error %d: %q vs %q", i, e1[i], e2[i])
		}
	}
}

// TestCorruptionNeverRepeatsBackToBack: the quorum's safety rests on noise
// not lying the same way twice running — consecutive corrupted runs of one
// program must disagree with each other.
func TestCorruptionNeverRepeatsBackToBack(t *testing.T) {
	for _, kind := range []Kind{Truncate, Garble} {
		tc := New(&echo{out: "31415926\n"}, Config{Seed: 9, Rate: 1, Kinds: []Kind{kind}})
		prev := ""
		for i := 0; i < 500; i++ {
			out, err := tc.Execute(&asm.Image{})
			if err != nil {
				t.Fatal(err)
			}
			if i > 0 && out == prev && kind == Truncate {
				t.Fatalf("%v: run %d repeated %q back to back", kind, i, out)
			}
			prev = out
		}
	}
	// Empty outputs corrupt to distinct markers every time.
	tc := New(&echo{out: ""}, Config{Seed: 9, Rate: 1, Kinds: []Kind{Garble}})
	seen := map[string]bool{}
	for i := 0; i < 50; i++ {
		out, _ := tc.Execute(&asm.Image{})
		if seen[out] {
			t.Fatalf("empty-output corruption repeated %q", out)
		}
		seen[out] = true
	}
}

// TestGenuineSignalPassesThrough: the injector must never mask the target's
// own answers — an assembler reject or a reproducible execution fault is
// the discovery unit's signal.
func TestGenuineSignalPassesThrough(t *testing.T) {
	reject := &echo{rejects: true}
	tc := New(reject, Config{Seed: 1, Rate: 0})
	if _, err := tc.Assemble("frob"); err == nil || err.Error() != "as: unknown opcode" {
		t.Errorf("assembler reject arrived as %v", err)
	}
	fault := &echo{execFault: errors.New("machine: unmapped address")}
	tc = New(fault, Config{Seed: 1, Rate: 0, Noise: 1})
	if _, err := tc.Execute(&asm.Image{}); err == nil || err.Error() != "machine: unmapped address" {
		t.Errorf("execution fault arrived as %v", err)
	}
	if tc.InjectedTotal() != 0 {
		t.Error("noise must not apply to faulted runs")
	}
}

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("7:0.1")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 7 || cfg.Rate != 0.1 || cfg.Noise != 0.1 {
		t.Errorf("ParseSpec(7:0.1) = %+v", cfg)
	}
	for _, bad := range []string{"", "7", "x:0.1", "7:x", "7:1.5", "7:-0.1"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

// TestNoiseIsIndependentOfFaultRate: scratch-register noise perturbs
// outputs even with fault injection off.
func TestNoiseIsIndependentOfFaultRate(t *testing.T) {
	tc := New(&echo{out: "2718\n"}, Config{Seed: 5, Rate: 0, Noise: 1})
	for i := 0; i < 20; i++ {
		out, err := tc.Execute(&asm.Image{})
		if err != nil {
			t.Fatal(err)
		}
		if out == "2718\n" {
			t.Fatalf("run %d: Noise=1 left the output clean", i)
		}
	}
	if tc.InjectedTotal() != 20 {
		t.Errorf("InjectedTotal = %d; want 20 noised runs", tc.InjectedTotal())
	}
}
