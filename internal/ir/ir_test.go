package ir

import (
	"testing"
	"testing/quick"
)

func TestCloneEqual(t *testing.T) {
	n := NewBin(Add, NewLoad(NewAddr("b")), NewBin(Mul, NewConst(3), NewLoad(NewAddr("c"))))
	c := n.Clone()
	if !n.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Kids[1].Kids[0].Value = 4
	if n.Equal(c) {
		t.Fatal("clone aliases the original")
	}
}

func TestRelProperties(t *testing.T) {
	rels := []Rel{EQ, NE, LT, LE, GT, GE}
	f := func(a, b int32) bool {
		for _, r := range rels {
			if r.Holds(int64(a), int64(b)) == r.Negate().Holds(int64(a), int64(b)) {
				return false // negation must flip the verdict
			}
			if r.Holds(int64(a), int64(b)) != r.Swap().Holds(int64(b), int64(a)) {
				return false // swapping relation and operands is identity
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	for _, r := range rels {
		if r.Negate().Negate() != r {
			t.Errorf("%s: double negation", r)
		}
		if r.Swap().Swap() != r {
			t.Errorf("%s: double swap", r)
		}
	}
}

func TestOpClassifiers(t *testing.T) {
	if !Add.IsBinary() || !Shr.IsBinary() || Neg.IsBinary() || Load.IsBinary() {
		t.Error("IsBinary wrong")
	}
	if !Neg.IsUnary() || !Not.IsUnary() || Add.IsUnary() {
		t.Error("IsUnary wrong")
	}
}

func TestNodeString(t *testing.T) {
	n := NewCall("P", NewLoad(NewAddr("b")), NewConst(7))
	if n.String() != "Call(P, Load(Addr(b)), Const(7))" {
		t.Errorf("String = %q", n)
	}
}

func TestStmtString(t *testing.T) {
	s := &Stmt{Kind: SBranch, Rel: LT, A: NewConst(1), B: NewConst(2), Target: "L"}
	if s.String() != "BranchLT(Const(1), Const(2), L)" {
		t.Errorf("String = %q", s)
	}
}

func evalUnit(t *testing.T, fns []*Func) string {
	t.Helper()
	out, err := Eval(&Unit{Funcs: fns})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestEvalArithmetic(t *testing.T) {
	main := &Func{Name: "main", Body: []*Stmt{
		{Kind: SStore, Addr: NewAddr("a"), Val: NewBin(Mul, NewConst(6), NewConst(7))},
		{Kind: SExpr, Val: NewCall("printf", NewAddr(".str1"), NewLoad(NewAddr("a")))},
		{Kind: SExpr, Val: NewCall("exit", NewConst(0))},
	}}
	if got := evalUnit(t, []*Func{main}); got != "42\n" {
		t.Errorf("out = %q", got)
	}
}

func TestEvalControlAndCalls(t *testing.T) {
	double := &Func{Name: "double", Params: []string{"x"}, Body: []*Stmt{
		{Kind: SRet, Val: NewBin(Add, NewLoad(NewAddr("x")), NewLoad(NewAddr("x")))},
	}}
	main := &Func{Name: "main", Body: []*Stmt{
		{Kind: SStore, Addr: NewAddr("i"), Val: NewConst(0)},
		{Kind: SLabel, Target: "loop"},
		{Kind: SBranch, Rel: GE, A: NewLoad(NewAddr("i")), B: NewConst(3), Target: "done"},
		{Kind: SExpr, Val: NewCall("printf", NewAddr(".s"), NewCall("double", NewLoad(NewAddr("i"))))},
		{Kind: SStore, Addr: NewAddr("i"), Val: NewBin(Add, NewLoad(NewAddr("i")), NewConst(1))},
		{Kind: SGoto, Target: "loop"},
		{Kind: SLabel, Target: "done"},
	}}
	if got := evalUnit(t, []*Func{double, main}); got != "0\n2\n4\n" {
		t.Errorf("out = %q", got)
	}
}

func TestEvalWraps32(t *testing.T) {
	main := &Func{Name: "main", Body: []*Stmt{
		{Kind: SStore, Addr: NewAddr("a"), Val: NewBin(Add, NewConst(1<<31-1), NewConst(1))},
		{Kind: SExpr, Val: NewCall("printf", NewAddr(".s"), NewLoad(NewAddr("a")))},
	}}
	if got := evalUnit(t, []*Func{main}); got != "-2147483648\n" {
		t.Errorf("out = %q", got)
	}
}

func TestEvalErrors(t *testing.T) {
	div0 := &Func{Name: "main", Body: []*Stmt{
		{Kind: SStore, Addr: NewAddr("a"), Val: NewBin(Div, NewConst(1), NewConst(0))},
	}}
	if _, err := Eval(&Unit{Funcs: []*Func{div0}}); err == nil {
		t.Error("division by zero must error")
	}
	loop := &Func{Name: "main", Body: []*Stmt{
		{Kind: SLabel, Target: "l"},
		{Kind: SGoto, Target: "l"},
	}}
	if _, err := Eval(&Unit{Funcs: []*Func{loop}}); err == nil {
		t.Error("infinite loop must hit the step budget")
	}
}
