package ir

import (
	"fmt"
	"strings"
)

// Eval interprets a unit directly (32-bit integer semantics), returning the
// program's stdout. It is the reference oracle against which generated
// back ends are validated.
func Eval(u *Unit) (string, error) {
	ev := &evaluator{unit: u, out: &strings.Builder{}}
	main, ok := u.Func("main")
	if !ok {
		return "", fmt.Errorf("ir: no main")
	}
	_, err := ev.call(main, nil)
	if err != nil && err != errExit {
		return "", err
	}
	return ev.out.String(), nil
}

var errExit = fmt.Errorf("ir: exit")

type evaluator struct {
	unit  *Unit
	out   *strings.Builder
	depth int
	steps int
}

type frame struct {
	vars map[string]int32
}

func (ev *evaluator) call(f *Func, args []int32) (int32, error) {
	ev.depth++
	if ev.depth > 10000 {
		return 0, fmt.Errorf("ir: call depth exceeded")
	}
	defer func() { ev.depth-- }()
	fr := &frame{vars: map[string]int32{}}
	for i, p := range f.Params {
		if i < len(args) {
			fr.vars[p] = args[i]
		}
	}
	labels := map[string]int{}
	for i, s := range f.Body {
		if s.Kind == SLabel {
			labels[s.Target] = i
		}
	}
	pc := 0
	for pc < len(f.Body) {
		ev.steps++
		if ev.steps > 10_000_000 {
			return 0, fmt.Errorf("ir: step budget exceeded")
		}
		s := f.Body[pc]
		switch s.Kind {
		case SStore:
			if s.Addr.Op != Addr {
				return 0, fmt.Errorf("ir: eval supports only direct variable stores")
			}
			v, err := ev.expr(fr, s.Val)
			if err != nil {
				return 0, err
			}
			fr.vars[s.Addr.Name] = v
		case SBranch:
			a, err := ev.expr(fr, s.A)
			if err != nil {
				return 0, err
			}
			b, err := ev.expr(fr, s.B)
			if err != nil {
				return 0, err
			}
			if s.Rel.Holds(int64(a), int64(b)) {
				idx, ok := labels[s.Target]
				if !ok {
					return 0, fmt.Errorf("ir: undefined label %q", s.Target)
				}
				pc = idx
				continue
			}
		case SGoto:
			idx, ok := labels[s.Target]
			if !ok {
				return 0, fmt.Errorf("ir: undefined label %q", s.Target)
			}
			pc = idx
			continue
		case SLabel:
			// no effect
		case SExpr:
			if _, err := ev.expr(fr, s.Val); err != nil {
				return 0, err
			}
		case SRet:
			if s.Val == nil {
				return 0, nil
			}
			return ev.expr(fr, s.Val)
		}
		pc++
	}
	return 0, nil
}

func (ev *evaluator) expr(fr *frame, n *Node) (int32, error) {
	switch n.Op {
	case Const:
		return int32(n.Value), nil
	case Load:
		if n.Kids[0].Op != Addr {
			return 0, fmt.Errorf("ir: eval supports only direct variable loads")
		}
		return fr.vars[n.Kids[0].Name], nil
	case Addr:
		return 0, fmt.Errorf("ir: address of %q has no value in the evaluator", n.Name)
	case Neg:
		v, err := ev.expr(fr, n.Kids[0])
		return -v, err
	case Not:
		v, err := ev.expr(fr, n.Kids[0])
		return ^v, err
	case Call:
		return ev.callExpr(fr, n)
	}
	if n.Op.IsBinary() {
		a, err := ev.expr(fr, n.Kids[0])
		if err != nil {
			return 0, err
		}
		b, err := ev.expr(fr, n.Kids[1])
		if err != nil {
			return 0, err
		}
		switch n.Op {
		case Add:
			return a + b, nil
		case Sub:
			return a - b, nil
		case Mul:
			return a * b, nil
		case Div:
			if b == 0 {
				return 0, fmt.Errorf("ir: division by zero")
			}
			return a / b, nil
		case Mod:
			if b == 0 {
				return 0, fmt.Errorf("ir: division by zero")
			}
			return a % b, nil
		case And:
			return a & b, nil
		case Or:
			return a | b, nil
		case Xor:
			return a ^ b, nil
		case Shl:
			if b < 0 || b > 31 {
				return 0, fmt.Errorf("ir: shift count %d", b)
			}
			return a << uint(b), nil
		case Shr:
			if b < 0 || b > 31 {
				return 0, fmt.Errorf("ir: shift count %d", b)
			}
			return a >> uint(b), nil
		}
	}
	return 0, fmt.Errorf("ir: unsupported expression %s", n)
}

func (ev *evaluator) callExpr(fr *frame, n *Node) (int32, error) {
	switch n.Name {
	case "printf":
		if len(n.Kids) != 2 || n.Kids[0].Op != Addr {
			return 0, fmt.Errorf("ir: eval printf needs (format, value)")
		}
		v, err := ev.expr(fr, n.Kids[1])
		if err != nil {
			return 0, err
		}
		fmt.Fprintf(ev.out, "%d\n", v)
		return 0, nil
	case "exit":
		return 0, errExit
	}
	callee, ok := ev.unit.Func(n.Name)
	if !ok {
		return 0, fmt.Errorf("ir: undefined function %q", n.Name)
	}
	args := make([]int32, len(n.Kids))
	for i, k := range n.Kids {
		v, err := ev.expr(fr, k)
		if err != nil {
			return 0, err
		}
		args[i] = v
	}
	return ev.call(callee, args)
}
