// Package ir defines the tree-shaped intermediate code shared by the mini-C
// code generators and the BEG-style back-end generator.
//
// The instruction set deliberately mirrors the intermediate code of the
// compiler "ac" in the paper (Collberg, PLDI'97, §6): simple arithmetic and
// logical operators, explicit Load/Store, and high-level conditional
// branches such as BranchEQ that a target may need to cover with a
// *combination* of machine instructions (the Combiner's job).
package ir

import (
	"fmt"
	"strings"
)

// Op enumerates expression operators.
type Op int

// Expression operators. Const carries Value; Addr and Call carry Name.
const (
	Const Op = iota // integer literal
	Addr            // address of a named symbol (local, param, or global)
	Load            // Kids[0] = address
	Add
	Sub
	Mul
	Div
	Mod
	And
	Or
	Xor
	Shl
	Shr
	Neg
	Not // bitwise complement
	Call
)

var opNames = [...]string{
	Const: "Const", Addr: "Addr", Load: "Load",
	Add: "Add", Sub: "Sub", Mul: "Mul", Div: "Div", Mod: "Mod",
	And: "And", Or: "Or", Xor: "Xor", Shl: "Shl", Shr: "Shr",
	Neg: "Neg", Not: "Not", Call: "Call",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// IsBinary reports whether o is a two-operand arithmetic/logical operator.
func (o Op) IsBinary() bool { return o >= Add && o <= Shr }

// IsUnary reports whether o is a one-operand operator.
func (o Op) IsUnary() bool { return o == Neg || o == Not }

// Node is an expression tree node.
type Node struct {
	Op    Op
	Value int64   // Const only
	Name  string  // Addr and Call
	Kids  []*Node // operands; Call arguments
}

// NewConst returns a Const node.
func NewConst(v int64) *Node { return &Node{Op: Const, Value: v} }

// NewAddr returns an Addr node for symbol name.
func NewAddr(name string) *Node { return &Node{Op: Addr, Name: name} }

// NewLoad returns a Load of the given address.
func NewLoad(addr *Node) *Node { return &Node{Op: Load, Kids: []*Node{addr}} }

// NewBin returns a binary operator node.
func NewBin(op Op, a, b *Node) *Node { return &Node{Op: op, Kids: []*Node{a, b}} }

// NewUn returns a unary operator node.
func NewUn(op Op, a *Node) *Node { return &Node{Op: op, Kids: []*Node{a}} }

// NewCall returns a Call node.
func NewCall(name string, args ...*Node) *Node { return &Node{Op: Call, Name: name, Kids: args} }

// String renders the tree in a compact prefix form, e.g.
// "Store(Addr(a), Add(Load(Addr(b)), Const(5)))".
func (n *Node) String() string {
	if n == nil {
		return "nil"
	}
	switch n.Op {
	case Const:
		return fmt.Sprintf("Const(%d)", n.Value)
	case Addr:
		return fmt.Sprintf("Addr(%s)", n.Name)
	case Call:
		parts := make([]string, len(n.Kids))
		for i, k := range n.Kids {
			parts[i] = k.String()
		}
		return fmt.Sprintf("Call(%s%s)", n.Name, prefixComma(parts))
	default:
		parts := make([]string, len(n.Kids))
		for i, k := range n.Kids {
			parts[i] = k.String()
		}
		return fmt.Sprintf("%s(%s)", n.Op, strings.Join(parts, ", "))
	}
}

func prefixComma(parts []string) string {
	if len(parts) == 0 {
		return ""
	}
	return ", " + strings.Join(parts, ", ")
}

// Clone returns a deep copy of the tree.
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	c := &Node{Op: n.Op, Value: n.Value, Name: n.Name}
	if len(n.Kids) > 0 {
		c.Kids = make([]*Node, len(n.Kids))
		for i, k := range n.Kids {
			c.Kids[i] = k.Clone()
		}
	}
	return c
}

// Equal reports structural equality of two trees.
func (n *Node) Equal(m *Node) bool {
	if n == nil || m == nil {
		return n == m
	}
	if n.Op != m.Op || n.Value != m.Value || n.Name != m.Name || len(n.Kids) != len(m.Kids) {
		return false
	}
	for i := range n.Kids {
		if !n.Kids[i].Equal(m.Kids[i]) {
			return false
		}
	}
	return true
}

// Rel enumerates comparison relations used by conditional branches.
type Rel int

// Comparison relations.
const (
	EQ Rel = iota
	NE
	LT
	LE
	GT
	GE
)

var relNames = [...]string{EQ: "EQ", NE: "NE", LT: "LT", LE: "LE", GT: "GT", GE: "GE"}

func (r Rel) String() string {
	if int(r) < len(relNames) {
		return relNames[r]
	}
	return fmt.Sprintf("Rel(%d)", int(r))
}

// Negate returns the complementary relation (EQ↔NE, LT↔GE, LE↔GT).
func (r Rel) Negate() Rel {
	switch r {
	case EQ:
		return NE
	case NE:
		return EQ
	case LT:
		return GE
	case LE:
		return GT
	case GT:
		return LE
	default:
		return LT
	}
}

// Swap returns the relation with operands exchanged (LT↔GT, LE↔GE).
func (r Rel) Swap() Rel {
	switch r {
	case LT:
		return GT
	case GT:
		return LT
	case LE:
		return GE
	case GE:
		return LE
	default:
		return r
	}
}

// Holds evaluates the relation on two integers.
func (r Rel) Holds(a, b int64) bool {
	switch r {
	case EQ:
		return a == b
	case NE:
		return a != b
	case LT:
		return a < b
	case LE:
		return a <= b
	case GT:
		return a > b
	default:
		return a >= b
	}
}

// StmtKind enumerates statement forms.
type StmtKind int

// Statement kinds.
const (
	SStore  StmtKind = iota // *Addr = Val
	SBranch                 // if A Rel B goto Target
	SGoto
	SLabel
	SExpr // expression evaluated for side effects (a call)
	SRet  // return E (E may be nil)
)

var stmtNames = [...]string{SStore: "Store", SBranch: "Branch", SGoto: "Goto", SLabel: "Label", SExpr: "Expr", SRet: "Ret"}

func (k StmtKind) String() string {
	if int(k) < len(stmtNames) {
		return stmtNames[k]
	}
	return fmt.Sprintf("StmtKind(%d)", int(k))
}

// Stmt is one intermediate-code statement.
type Stmt struct {
	Kind   StmtKind
	Addr   *Node // SStore: destination address
	Val    *Node // SStore: value; SExpr/SRet: expression
	Rel    Rel   // SBranch
	A, B   *Node // SBranch operands
	Target string
}

// String renders the statement for debugging and golden tests.
func (s *Stmt) String() string {
	switch s.Kind {
	case SStore:
		return fmt.Sprintf("Store(%s, %s)", s.Addr, s.Val)
	case SBranch:
		return fmt.Sprintf("Branch%s(%s, %s, %s)", s.Rel, s.A, s.B, s.Target)
	case SGoto:
		return fmt.Sprintf("Goto(%s)", s.Target)
	case SLabel:
		return fmt.Sprintf("Label(%s)", s.Target)
	case SExpr:
		return fmt.Sprintf("Expr(%s)", s.Val)
	case SRet:
		if s.Val == nil {
			return "Ret()"
		}
		return fmt.Sprintf("Ret(%s)", s.Val)
	}
	return "Stmt(?)"
}

// Local describes a stack-allocated variable or parameter.
type Local struct {
	Name    string
	IsParam bool
	Index   int // parameter position for params; declaration order for locals
}

// Func is one function in intermediate form.
type Func struct {
	Name   string
	Params []string
	Locals []Local // includes params
	Body   []*Stmt
}

// LookupLocal returns the local named name, if any.
func (f *Func) LookupLocal(name string) (Local, bool) {
	for _, l := range f.Locals {
		if l.Name == name {
			return l, true
		}
	}
	return Local{}, false
}

// Global describes a file-scope integer variable.
type Global struct {
	Name string
}

// StringLit is a string literal placed in read-only data.
type StringLit struct {
	Label string
	Value string
}

// Unit is one translation unit in intermediate form.
type Unit struct {
	Funcs   []*Func
	Globals []Global
	Strings []StringLit
	Externs []string // names declared extern (variables and functions)
}

// Func returns the function named name, if present.
func (u *Unit) Func(name string) (*Func, bool) {
	for _, f := range u.Funcs {
		if f.Name == name {
			return f, true
		}
	}
	return nil, false
}

// ContainsCall reports whether the tree contains a Call node — code
// generators must not hold register temporaries across calls.
func (n *Node) ContainsCall() bool {
	if n == nil {
		return false
	}
	if n.Op == Call {
		return true
	}
	for _, k := range n.Kids {
		if k.ContainsCall() {
			return true
		}
	}
	return false
}
