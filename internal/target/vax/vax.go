// Package vax simulates a VAX-class toolchain: "#" comments, $-prefixed
// literals, memory-to-memory three-operand instructions (addl3 can take
// all its operands from the frame), condition codes set by cmpl/tstl, and
// a calls/ret convention that maintains the argument pointer.
package vax

import (
	"strconv"
	"strings"

	"srcg/internal/asm"
)

// Toolchain is the simulated VAX cc/as/ld/run bundle.
type Toolchain struct {
	dialect asm.Dialect
}

// New returns the simulated VAX toolchain.
func New() *Toolchain {
	t := &Toolchain{}
	t.dialect = asm.Dialect{
		Arch: "vax",
		Syntax: asm.Syntax{
			CommentChars: []string{"#"},
			LabelSuffix:  ":",
		},
		Decode: decode,
	}
	return t
}

// Name implements target.Toolchain.
func (t *Toolchain) Name() string { return "vax" }

// CompileC implements target.Toolchain.
func (t *Toolchain) CompileC(src string) (string, error) { return compileC(src) }

// Assemble implements target.Toolchain.
func (t *Toolchain) Assemble(text string) (*asm.Unit, error) { return t.dialect.ParseUnit(text) }

// Link implements target.Toolchain.
func (t *Toolchain) Link(units []*asm.Unit) (*asm.Image, error) {
	img, err := asm.Link("vax", 4, units)
	if err != nil {
		return nil, err
	}
	if err := img.CheckUndefined(); err != nil {
		return nil, err
	}
	return img, nil
}

// registers is the VAX register file: r0..r11 plus ap, fp, sp.
var registers = map[string]bool{"ap": true, "fp": true, "sp": true}

func init() {
	for i := 0; i < 12; i++ {
		registers["r"+strconv.Itoa(i)] = true
	}
}

func errf(line int, format string, args ...interface{}) error {
	return asm.Errf("vax", line, format, args...)
}

// looksLikeReg reports whether s is register-shaped (r followed by
// digits): such tokens are never symbols, so r12 and up are rejected
// rather than read as absolute memory references.
func looksLikeReg(s string) bool {
	if len(s) < 2 || s[0] != 'r' {
		return false
	}
	for _, ch := range s[1:] {
		if ch < '0' || ch > '9' {
			return false
		}
	}
	return true
}

// dataOperand decodes $imm, $sym, a register, disp(reg), (reg), or a bare
// symbol (absolute memory reference). Bare integers are rejected.
func dataOperand(line int, s string) (asm.Arg, error) {
	if s == "" {
		return asm.Arg{}, errf(line, "empty operand")
	}
	if s[0] == '$' {
		rest := s[1:]
		if v, ok := asm.ParseInt(rest); ok {
			return asm.Arg{Kind: asm.Imm, Imm: v, Raw: s}, nil
		}
		if asm.DefaultValidLabel(rest) && !looksLikeReg(rest) {
			return asm.Arg{Kind: asm.Sym, Sym: rest, Raw: s}, nil
		}
		return asm.Arg{}, errf(line, "bad immediate %q", s)
	}
	if registers[s] {
		return asm.Arg{Kind: asm.Reg, Reg: s, Raw: s}, nil
	}
	if i := strings.IndexByte(s, '('); i >= 0 {
		if s[len(s)-1] != ')' {
			return asm.Arg{}, errf(line, "bad memory operand %q", s)
		}
		disp := int64(0)
		if i > 0 {
			v, ok := asm.ParseInt(s[:i])
			if !ok {
				return asm.Arg{}, errf(line, "bad displacement in %q", s)
			}
			disp = v
		}
		base := s[i+1 : len(s)-1]
		if !registers[base] {
			return asm.Arg{}, errf(line, "bad base register in %q", s)
		}
		return asm.Arg{Kind: asm.Mem, Reg: base, Imm: disp, Raw: s}, nil
	}
	if _, ok := asm.ParseInt(s); ok {
		return asm.Arg{}, errf(line, "bare integer operand %q (immediates need $)", s)
	}
	if looksLikeReg(s) {
		return asm.Arg{}, errf(line, "unknown register %q", s)
	}
	if asm.DefaultValidLabel(s) {
		return asm.Arg{Kind: asm.Mem, Sym: s, Raw: s}, nil
	}
	return asm.Arg{}, errf(line, "bad operand %q", s)
}

func labelOperand(line int, s string) (asm.Arg, error) {
	if _, ok := asm.ParseInt(s); ok {
		return asm.Arg{}, errf(line, "numeric branch target %q", s)
	}
	if s == "" || !asm.DefaultValidLabel(s) || s[0] == '$' || looksLikeReg(s) {
		return asm.Arg{}, errf(line, "bad branch target %q", s)
	}
	return asm.Arg{Kind: asm.Sym, Sym: s, Raw: s}, nil
}

func writable(a asm.Arg) bool { return a.Kind == asm.Reg || a.Kind == asm.Mem }

var threeOps = map[string]bool{
	"addl3": true, "subl3": true, "mull3": true, "divl3": true,
	"bisl3": true, "xorl3": true, "bicl3": true, "ashl": true,
}

var twoOps = map[string]bool{
	"movl": true, "moval": true, "addl2": true, "subl2": true,
	"mcoml": true, "mnegl": true, "cmpl": true,
}

var condBranches = map[string]bool{
	"jeql": true, "jneq": true, "jlss": true, "jleq": true, "jgtr": true, "jgeq": true,
}

// decode validates one VAX instruction line.
func decode(ln asm.Line) (asm.Instr, error) {
	ins := asm.Instr{Op: ln.Op, Line: ln.Num}
	want := func(n int) error {
		if len(ln.Args) != n {
			return errf(ln.Num, "%s takes %d operands, got %d", ln.Op, n, len(ln.Args))
		}
		return nil
	}
	data := func(i int) (asm.Arg, error) { return dataOperand(ln.Num, ln.Args[i]) }
	switch {
	case threeOps[ln.Op]:
		if err := want(3); err != nil {
			return ins, err
		}
		s1, err := data(0)
		if err != nil {
			return ins, err
		}
		s2, err := data(1)
		if err != nil {
			return ins, err
		}
		dst, err := data(2)
		if err != nil {
			return ins, err
		}
		if !writable(dst) {
			return ins, errf(ln.Num, "%s destination must be a register or memory", ln.Op)
		}
		ins.Args = []asm.Arg{s1, s2, dst}
	case twoOps[ln.Op]:
		if err := want(2); err != nil {
			return ins, err
		}
		src, err := data(0)
		if err != nil {
			return ins, err
		}
		dst, err := data(1)
		if err != nil {
			return ins, err
		}
		if ln.Op != "cmpl" && !writable(dst) {
			return ins, errf(ln.Num, "%s destination must be a register or memory", ln.Op)
		}
		if ln.Op == "moval" && src.Kind != asm.Mem {
			return ins, errf(ln.Num, "moval source must be a memory operand")
		}
		ins.Args = []asm.Arg{src, dst}
	case ln.Op == "pushl" || ln.Op == "tstl":
		if err := want(1); err != nil {
			return ins, err
		}
		a, err := data(0)
		if err != nil {
			return ins, err
		}
		if ln.Op == "pushl" && a.Kind == asm.Mem && a.Reg == "" {
			return ins, errf(ln.Num, "pushl cannot take a bare symbol")
		}
		ins.Args = []asm.Arg{a}
	case ln.Op == "jbr" || condBranches[ln.Op]:
		if err := want(1); err != nil {
			return ins, err
		}
		lab, err := labelOperand(ln.Num, ln.Args[0])
		if err != nil {
			return ins, err
		}
		ins.Args = []asm.Arg{lab}
	case ln.Op == "calls":
		if err := want(2); err != nil {
			return ins, err
		}
		n, err := data(0)
		if err != nil {
			return ins, err
		}
		if n.Kind != asm.Imm {
			return ins, errf(ln.Num, "calls argument count must be an immediate")
		}
		lab, err := labelOperand(ln.Num, ln.Args[1])
		if err != nil {
			return ins, err
		}
		ins.Args = []asm.Arg{n, lab}
	case ln.Op == "ret":
		if err := want(0); err != nil {
			return ins, err
		}
	default:
		return ins, errf(ln.Num, "unknown opcode %q", ln.Op)
	}
	return ins, nil
}
