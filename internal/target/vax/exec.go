package vax

import (
	"fmt"

	"srcg/internal/asm"
	"srcg/internal/machine"
)

// Execute implements target.Toolchain. cmpl/tstl latch their operands into
// the condition codes for a later conditional jump; calls saves the old
// argument pointer on the stack and points ap at the incoming arguments.
func (t *Toolchain) Execute(img *asm.Image) (string, error) {
	c := machine.NewCPU()
	c.Mem.AddBound(machine.DataBase, img.DataEnd)
	c.Mem.AddBound(machine.StackTop-machine.StackSize, machine.StackTop)
	for a, b := range img.Data {
		c.Mem.Store(a, 1, uint64(b))
	}
	for r := range registers {
		c.Regs[r] = 0
	}
	c.Regs["sp"] = machine.StackTop
	c.PC = img.Entry
	for !c.Halted {
		if err := c.Tick(); err != nil {
			return c.Out.String(), err
		}
		if c.PC < 0 || c.PC >= len(img.Instrs) {
			return c.Out.String(), fmt.Errorf("vax: PC %d outside code [0,%d)", c.PC, len(img.Instrs))
		}
		next, err := step(c, img, img.Instrs[c.PC])
		if err != nil {
			return c.Out.String(), err
		}
		if err := c.Mem.Fault(); err != nil {
			return c.Out.String(), err
		}
		c.PC = next
	}
	return c.Out.String(), nil
}

func wrap32(v int64) int64 { return int64(int32(v)) }

// ea computes the address of a memory operand: base+disp or absolute sym.
func ea(c *machine.CPU, img *asm.Image, a asm.Arg) (uint64, error) {
	if a.Reg != "" {
		return uint64(c.Regs[a.Reg] + a.Imm), nil
	}
	addr, ok := img.Resolve(a.Sym)
	if !ok {
		return 0, fmt.Errorf("vax: undefined data symbol %q", a.Sym)
	}
	return addr, nil
}

// value reads any data operand: immediate, symbol address, register, or
// memory.
func value(c *machine.CPU, img *asm.Image, a asm.Arg) (int64, error) {
	switch a.Kind {
	case asm.Imm:
		return a.Imm, nil
	case asm.Sym:
		addr, ok := img.Resolve(a.Sym)
		if !ok {
			return 0, fmt.Errorf("vax: undefined symbol %q", a.Sym)
		}
		return int64(addr), nil
	case asm.Reg:
		return c.Regs[a.Reg], nil
	case asm.Mem:
		addr, err := ea(c, img, a)
		if err != nil {
			return 0, err
		}
		return machine.SignExtend(c.Mem.Load(addr, 4), 32), nil
	}
	return 0, fmt.Errorf("vax: unreadable operand")
}

func write(c *machine.CPU, img *asm.Image, a asm.Arg, v int64) error {
	switch a.Kind {
	case asm.Reg:
		c.Regs[a.Reg] = wrap32(v)
		return nil
	case asm.Mem:
		addr, err := ea(c, img, a)
		if err != nil {
			return err
		}
		c.Mem.Store(addr, 4, machine.Truncate(v, 32))
		return nil
	}
	return fmt.Errorf("vax: operand not writable")
}

func codeLabel(img *asm.Image, sym string) (int, error) {
	idx, ok := img.Labels[sym]
	if !ok {
		return 0, fmt.Errorf("vax: undefined code label %q", sym)
	}
	return idx, nil
}

// ashl shifts left by a signed count; a negative count shifts
// arithmetically right.
func ashl(src, count int64) int64 {
	if count >= 0 {
		if count > 63 {
			count = 63
		}
		return wrap32(src << uint(count))
	}
	count = -count
	if count > 31 {
		count = 31
	}
	return int64(int32(src) >> uint(count))
}

func step(c *machine.CPU, img *asm.Image, ins asm.Instr) (int, error) {
	next := c.PC + 1
	v := func(i int) (int64, error) { return value(c, img, ins.Args[i]) }
	switch ins.Op {
	case "movl", "mnegl", "mcoml":
		s, err := v(0)
		if err != nil {
			return 0, err
		}
		switch ins.Op {
		case "mnegl":
			s = -s
		case "mcoml":
			s = ^s
		}
		return next, write(c, img, ins.Args[1], s)
	case "moval":
		addr, err := ea(c, img, ins.Args[0])
		if err != nil {
			return 0, err
		}
		return next, write(c, img, ins.Args[1], int64(addr))
	case "pushl":
		s, err := v(0)
		if err != nil {
			return 0, err
		}
		c.Regs["sp"] -= 4
		c.Mem.Store(uint64(c.Regs["sp"]), 4, machine.Truncate(s, 32))
	case "addl2", "subl2":
		s, err := v(0)
		if err != nil {
			return 0, err
		}
		d, err := v(1)
		if err != nil {
			return 0, err
		}
		if ins.Op == "addl2" {
			d += s
		} else {
			d -= s
		}
		return next, write(c, img, ins.Args[1], d)
	case "addl3", "subl3", "mull3", "divl3", "bisl3", "xorl3", "bicl3", "ashl":
		s1, err := v(0)
		if err != nil {
			return 0, err
		}
		s2, err := v(1)
		if err != nil {
			return 0, err
		}
		var r int64
		switch ins.Op {
		case "addl3":
			r = s1 + s2
		case "subl3":
			r = s2 - s1
		case "mull3":
			r = s1 * s2
		case "divl3":
			if int32(s1) == 0 {
				return 0, fmt.Errorf("vax: division by zero")
			}
			r = int64(int32(s2) / int32(s1))
		case "bisl3":
			r = s1 | s2
		case "xorl3":
			r = s1 ^ s2
		case "bicl3":
			r = s2 &^ s1
		case "ashl":
			r = ashl(s2, s1)
		}
		return next, write(c, img, ins.Args[2], r)
	case "cmpl":
		a, err := v(0)
		if err != nil {
			return 0, err
		}
		b, err := v(1)
		if err != nil {
			return 0, err
		}
		c.CCValid, c.CCa, c.CCb = true, a, b
	case "tstl":
		a, err := v(0)
		if err != nil {
			return 0, err
		}
		c.CCValid, c.CCa, c.CCb = true, a, 0
	case "jeql", "jneq", "jlss", "jleq", "jgtr", "jgeq":
		if !c.CCValid {
			return 0, fmt.Errorf("vax: conditional jump with no condition codes set")
		}
		taken := false
		switch ins.Op {
		case "jeql":
			taken = c.CCa == c.CCb
		case "jneq":
			taken = c.CCa != c.CCb
		case "jlss":
			taken = c.CCa < c.CCb
		case "jleq":
			taken = c.CCa <= c.CCb
		case "jgtr":
			taken = c.CCa > c.CCb
		case "jgeq":
			taken = c.CCa >= c.CCb
		}
		if taken {
			return codeLabel(img, ins.Args[0].Sym)
		}
	case "jbr":
		return codeLabel(img, ins.Args[0].Sym)
	case "calls":
		sym := ins.Args[1].Sym
		if _, ok := img.Labels[sym]; !ok && asm.Builtins[sym] {
			return next, builtin(c, sym)
		}
		idx, err := codeLabel(img, sym)
		if err != nil {
			return 0, err
		}
		c.Regs["sp"] -= 4
		c.Mem.Store(uint64(c.Regs["sp"]), 4, machine.Truncate(c.Regs["ap"], 32))
		c.Regs["ap"] = c.Regs["sp"]
		c.RetStack = append(c.RetStack, c.PC+1)
		return idx, nil
	case "ret":
		if len(c.RetStack) == 0 {
			return 0, fmt.Errorf("vax: ret with no call in progress")
		}
		c.Regs["ap"] = machine.SignExtend(c.Mem.Load(uint64(c.Regs["sp"]), 4), 32)
		c.Regs["sp"] += 4
		next = c.RetStack[len(c.RetStack)-1]
		c.RetStack = c.RetStack[:len(c.RetStack)-1]
		return next, nil
	default:
		return 0, fmt.Errorf("vax: unimplemented opcode %q", ins.Op)
	}
	return next, nil
}

// builtin services printf and exit with arguments on the stack at sp.
func builtin(c *machine.CPU, sym string) error {
	arg := func(i int) int64 {
		return machine.SignExtend(c.Mem.Load(uint64(c.Regs["sp"])+uint64(4*i), 4), 32)
	}
	switch sym {
	case "printf":
		format, err := c.Mem.LoadCString(uint64(arg(0)))
		if err != nil {
			return err
		}
		var args []int64
		for i := 0; i < directives(format); i++ {
			args = append(args, arg(1+i))
		}
		return c.Printf(format, args)
	case "exit":
		c.Exit = int(int32(arg(0)))
		c.Halted = true
		return nil
	}
	return fmt.Errorf("vax: unsupported builtin %q", sym)
}

// directives counts the argument-consuming conversions in a printf format.
func directives(format string) int {
	n := 0
	for i := 0; i+1 < len(format); i++ {
		if format[i] == '%' {
			if format[i+1] == 'i' || format[i+1] == 'd' {
				n++
			}
			i++
		}
	}
	return n
}
