package vax

import (
	"fmt"
	"strings"

	"srcg/internal/asm"
	"srcg/internal/cc"
	"srcg/internal/ir"
)

// compileC lowers mini-C to VAX assembly. The three-operand data ops take
// their operands straight from memory, so most statements compile to a
// single instruction reading and writing frame slots. Locals live below
// fp, parameters above ap; r0 carries return values and canned division
// sequences; r1..r6 hold intermediate values for nested expressions.
func compileC(src string) (string, error) {
	u, err := cc.CompileUnit(src)
	if err != nil {
		return "", err
	}
	g := &gen{unit: u}
	for _, f := range u.Funcs {
		if err := g.genFunc(f); err != nil {
			return "", err
		}
	}
	for _, gl := range u.Globals {
		g.raw("\t.comm " + gl.Name + ", 4")
	}
	for _, s := range u.Strings {
		g.raw(s.Label + ":\t.asciz \"" + asm.EscapeString(s.Value) + "\"")
	}
	return g.buf.String(), nil
}

// pool is the expression-temporary allocation order; r0 stays out of it
// because division, modulus, and call results route through it.
var pool = []string{"r1", "r2", "r3", "r4", "r5", "r6"}

// maxScratch frame slots hold values that must survive a nested call.
const maxScratch = 4

type gen struct {
	buf     strings.Builder
	unit    *ir.Unit
	fn      *ir.Func
	busy    map[string]bool
	nlocals int
	frame   int
	scratch int
}

func (g *gen) raw(s string)                          { g.buf.WriteString(s + "\n") }
func (g *gen) ins(f string, a ...interface{})        { g.raw("\t" + fmt.Sprintf(f, a...)) }
func (g *gen) label(name string)                     { g.raw(name + ":") }
func (g *gen) errf(f string, a ...interface{}) error { return fmt.Errorf("vax-cc: "+f, a...) }

func (g *gen) alloc() (string, bool) {
	for _, r := range pool {
		if !g.busy[r] {
			g.busy[r] = true
			return r, true
		}
	}
	return "", false
}

func (g *gen) release(r string) { delete(g.busy, r) }

func (g *gen) freeCount() int {
	n := 0
	for _, r := range pool {
		if !g.busy[r] {
			n++
		}
	}
	return n
}

// slot renders the home of a named value: parameters sit above the
// argument pointer, locals below the frame pointer.
func (g *gen) slot(l ir.Local) string {
	if l.IsParam {
		return fmt.Sprintf("%d(ap)", 4*(l.Index+1))
	}
	return fmt.Sprintf("%d(fp)", -4*(l.Index+1))
}

// scratchPush reserves a spill slot beyond the named locals.
func (g *gen) scratchPush() (string, error) {
	if g.scratch >= maxScratch {
		return "", g.errf("expression too deep: out of spill slots")
	}
	g.scratch++
	return fmt.Sprintf("%d(fp)", -4*(g.nlocals+g.scratch)), nil
}

func (g *gen) scratchPop() { g.scratch-- }

// opnd is a rendered instruction operand; reg names the pool temporary
// backing it, if any, so it can be released or spilled.
type opnd struct {
	text string
	reg  string
}

func (g *gen) releaseOp(o opnd) {
	if o.reg != "" {
		g.release(o.reg)
	}
}

// isLeaf reports whether n renders as a bare operand without temporaries.
func (g *gen) isLeaf(n *ir.Node) bool {
	switch n.Op {
	case ir.Const:
		return true
	case ir.Addr:
		if _, isLocal := g.fn.LookupLocal(n.Name); isLocal {
			return false // needs a moval into a register
		}
		return true
	case ir.Load:
		return n.Kids[0].Op == ir.Addr
	}
	return false
}

// leafOperand renders a leaf as an instruction operand.
func (g *gen) leafOperand(n *ir.Node) (string, error) {
	switch n.Op {
	case ir.Const:
		return fmt.Sprintf("$%d", n.Value), nil
	case ir.Addr:
		return "$" + n.Name, nil
	case ir.Load:
		name := n.Kids[0].Name
		if l, isLocal := g.fn.LookupLocal(name); isLocal {
			return g.slot(l), nil
		}
		return name, nil
	}
	return "", g.errf("not a leaf: %s", n)
}

// operand renders n as an instruction operand, evaluating it into a pool
// temporary when it is not a leaf.
func (g *gen) operand(n *ir.Node) (opnd, error) {
	if g.isLeaf(n) {
		text, err := g.leafOperand(n)
		return opnd{text: text}, err
	}
	t, ok := g.alloc()
	if !ok {
		return opnd{}, g.errf("register pool exhausted")
	}
	if err := g.genInto(n, t); err != nil {
		return opnd{}, err
	}
	return opnd{text: t, reg: t}, nil
}

func (g *gen) genFunc(f *ir.Func) error {
	g.fn = f
	g.busy = map[string]bool{}
	g.scratch = 0
	g.nlocals = 0
	nparams := 0
	for _, l := range f.Locals {
		if l.IsParam {
			nparams++
		} else {
			g.nlocals++
		}
	}
	if nparams > 3 {
		return g.errf("%s: more than 3 parameters", f.Name)
	}
	g.frame = 4*g.nlocals + 4*maxScratch
	g.raw("\t.globl " + f.Name)
	g.label(f.Name)
	g.ins("pushl fp")
	g.ins("movl sp, fp")
	g.ins("subl2 $%d, sp", g.frame)
	for _, st := range f.Body {
		if err := g.genStmt(st); err != nil {
			return err
		}
	}
	if !endsFlow(f.Body) {
		g.epilogue()
	}
	return nil
}

// endsFlow reports whether the function body already ends in a return or a
// call to exit, making a trailing epilogue dead code.
func endsFlow(body []*ir.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	last := body[len(body)-1]
	if last.Kind == ir.SRet {
		return true
	}
	return last.Kind == ir.SExpr && last.Val != nil && last.Val.Op == ir.Call && last.Val.Name == "exit"
}

func (g *gen) epilogue() {
	g.ins("movl fp, sp")
	g.ins("movl (sp), fp")
	g.ins("addl2 $4, sp")
	g.ins("ret")
}

func (g *gen) genStmt(st *ir.Stmt) error {
	switch st.Kind {
	case ir.SLabel:
		g.label(st.Target)
	case ir.SGoto:
		g.ins("jbr %s", st.Target)
	case ir.SBranch:
		return g.genBranch(st)
	case ir.SStore:
		return g.genStore(st.Addr, st.Val)
	case ir.SExpr:
		if st.Val != nil && st.Val.Op == ir.Call {
			return g.genCall(st.Val)
		}
	case ir.SRet:
		if st.Val != nil {
			if err := g.genInto(st.Val, "r0"); err != nil {
				return err
			}
		}
		g.epilogue()
	}
	return nil
}

var branchOps = map[ir.Rel]string{
	ir.EQ: "jeql", ir.NE: "jneq", ir.LT: "jlss", ir.LE: "jleq", ir.GT: "jgtr", ir.GE: "jgeq",
}

// genBranch compares with cmpl (or tstl against zero) and jumps on the
// resulting condition codes.
func (g *gen) genBranch(st *ir.Stmt) error {
	a, err := g.operand(st.A)
	if err != nil {
		return err
	}
	if st.B.Op == ir.Const && st.B.Value == 0 {
		g.ins("tstl %s", a.text)
	} else {
		if st.B.ContainsCall() && a.reg != "" {
			sl, err := g.scratchPush()
			if err != nil {
				return err
			}
			g.ins("movl %s, %s", a.text, sl)
			g.release(a.reg)
			a = opnd{text: sl}
			defer g.scratchPop()
		}
		b, err := g.operand(st.B)
		if err != nil {
			return err
		}
		g.ins("cmpl %s, %s", a.text, b.text)
		g.releaseOp(b)
	}
	g.releaseOp(a)
	g.ins("%s %s", branchOps[st.Rel], st.Target)
	return nil
}

// genStore evaluates val directly into the destination operand, so simple
// assignments become a single memory-to-memory instruction.
func (g *gen) genStore(addr, val *ir.Node) error {
	if addr.Op == ir.Addr {
		if l, isLocal := g.fn.LookupLocal(addr.Name); isLocal {
			return g.genInto(val, g.slot(l))
		}
		return g.genInto(val, addr.Name)
	}
	t, ok := g.alloc()
	if !ok {
		return g.errf("register pool exhausted")
	}
	// A callee clobbers every pool register, so when the value contains a
	// call it must be computed into the frame before the address register
	// is live.
	if val.ContainsCall() {
		sl, err := g.scratchPush()
		if err != nil {
			return err
		}
		if err := g.genInto(val, sl); err != nil {
			return err
		}
		if err := g.genInto(addr, t); err != nil {
			return err
		}
		g.ins("movl %s, (%s)", sl, t)
		g.scratchPop()
		g.release(t)
		return nil
	}
	if err := g.genInto(addr, t); err != nil {
		return err
	}
	err := g.genInto(val, "("+t+")")
	g.release(t)
	return err
}

// operands renders both children of a binary node, spilling a left-hand
// temporary into the frame when the right side contains a call (the callee
// clobbers every pool register; frame slots are safe operands).
func (g *gen) operands(n *ir.Node) (opnd, opnd, bool, error) {
	l, err := g.operand(n.Kids[0])
	if err != nil {
		return opnd{}, opnd{}, false, err
	}
	spilled := false
	if l.reg != "" && (n.Kids[1].ContainsCall() || g.freeCount() < 2) {
		sl, err := g.scratchPush()
		if err != nil {
			return opnd{}, opnd{}, false, err
		}
		g.ins("movl %s, %s", l.text, sl)
		g.release(l.reg)
		l = opnd{text: sl}
		spilled = true
	}
	r, err := g.operand(n.Kids[1])
	if err != nil {
		return opnd{}, opnd{}, false, err
	}
	return l, r, spilled, nil
}

// threeOp maps directly-encodable binary operators to their 3-operand
// opcode. Sub/Div/Mod subtract the FIRST operand from the second, so the
// emitters below swap operand order where needed.
var threeOp = map[ir.Op]string{
	ir.Add: "addl3", ir.Mul: "mull3", ir.Or: "bisl3", ir.Xor: "xorl3",
}

// genInto evaluates n into the writable operand dst.
func (g *gen) genInto(n *ir.Node, dst string) error {
	switch {
	case g.isLeaf(n):
		src, err := g.leafOperand(n)
		if err != nil {
			return err
		}
		g.ins("movl %s, %s", src, dst)
		return nil
	case n.Op == ir.Addr: // &local
		l, _ := g.fn.LookupLocal(n.Name)
		g.ins("moval %s, %s", g.slot(l), dst)
		return nil
	case n.Op == ir.Load: // *p as an rvalue
		t, ok := g.alloc()
		if !ok {
			return g.errf("register pool exhausted")
		}
		if err := g.genInto(n.Kids[0], t); err != nil {
			return err
		}
		g.ins("movl (%s), %s", t, dst)
		g.release(t)
		return nil
	case n.Op == ir.Neg || n.Op == ir.Not:
		src, err := g.operand(n.Kids[0])
		if err != nil {
			return err
		}
		op := "mnegl"
		if n.Op == ir.Not {
			op = "mcoml"
		}
		// Unary results form in r0 and move to a memory destination in a
		// second step (the canned and/shr sequences share this shape).
		if registers[dst] {
			g.ins("%s %s, %s", op, src.text, dst)
		} else {
			g.ins("%s %s, r0", op, src.text)
			g.ins("movl r0, %s", dst)
		}
		g.releaseOp(src)
		return nil
	case n.Op == ir.Call:
		if err := g.genCall(n); err != nil {
			return err
		}
		if dst != "r0" {
			g.ins("movl r0, %s", dst)
		}
		return nil
	case n.Op.IsBinary():
		return g.binary(n, dst)
	}
	return g.errf("cannot evaluate %s", n)
}

// binary emits a three-operand instruction (or a canned r0 sequence for
// the operators the instruction set lacks) writing straight to dst.
func (g *gen) binary(n *ir.Node, dst string) error {
	l, r, spilled, err := g.operands(n)
	if err != nil {
		return err
	}
	switch n.Op {
	case ir.Add, ir.Mul, ir.Or, ir.Xor:
		g.ins("%s %s, %s, %s", threeOp[n.Op], l.text, r.text, dst)
	case ir.Sub:
		g.ins("subl3 %s, %s, %s", r.text, l.text, dst)
	case ir.Div:
		g.ins("divl3 %s, %s, r0", r.text, l.text)
		if dst != "r0" {
			g.ins("movl r0, %s", dst)
		}
	case ir.Mod:
		g.ins("divl3 %s, %s, r0", r.text, l.text)
		g.ins("mull3 r0, %s, r0", r.text)
		g.ins("subl3 r0, %s, %s", l.text, dst)
	case ir.And:
		g.ins("mcoml %s, r0", r.text)
		g.ins("bicl3 r0, %s, %s", l.text, dst)
	case ir.Shl:
		g.ins("ashl %s, %s, %s", r.text, l.text, dst)
	case ir.Shr:
		if n.Kids[1].Op == ir.Const {
			g.ins("ashl $%d, %s, %s", -n.Kids[1].Value, l.text, dst)
		} else {
			// Variable right shift: the value rides in a pool register
			// while r0 carries the negated count.
			src := l.text
			temp := ""
			if !registers[src] {
				reg, ok := g.alloc()
				if !ok {
					return g.errf("register pool exhausted")
				}
				temp = reg
				g.ins("movl %s, %s", src, temp)
				src = temp
			}
			g.ins("mnegl %s, r0", r.text)
			g.ins("ashl r0, %s, %s", src, dst)
			if temp != "" {
				g.release(temp)
			}
		}
	default:
		return g.errf("no opcode for %s", n.Op)
	}
	g.releaseOp(l)
	g.releaseOp(r)
	if spilled {
		g.scratchPop()
	}
	return nil
}

// genCall pushes arguments right to left, issues calls, and pops the
// arguments afterwards. Nested calls in argument expressions are safe:
// the callee works strictly below sp, so already-pushed arguments keep.
func (g *gen) genCall(n *ir.Node) error {
	if len(n.Kids) > 3 {
		return g.errf("call %s: more than 3 arguments", n.Name)
	}
	for i := len(n.Kids) - 1; i >= 0; i-- {
		k := n.Kids[i]
		if g.isLeaf(k) {
			text, err := g.leafOperand(k)
			if err != nil {
				return err
			}
			// A global read renders as a bare symbol, which pushl
			// cannot encode; stage it through a register.
			if k.Op == ir.Load && text == k.Kids[0].Name {
				t, ok := g.alloc()
				if !ok {
					return g.errf("register pool exhausted")
				}
				g.ins("movl %s, %s", text, t)
				g.ins("pushl %s", t)
				g.release(t)
			} else {
				g.ins("pushl %s", text)
			}
			continue
		}
		t, ok := g.alloc()
		if !ok {
			return g.errf("register pool exhausted")
		}
		if err := g.genInto(k, t); err != nil {
			return err
		}
		g.ins("pushl %s", t)
		g.release(t)
	}
	g.ins("calls $%d, %s", len(n.Kids), n.Name)
	if n.Name != "exit" && len(n.Kids) > 0 {
		g.ins("addl2 $%d, sp", 4*len(n.Kids))
	}
	return nil
}
