// Package x86 simulates an i386-class toolchain: AT&T syntax (src, dst
// operand order, % register prefix, $ literal prefix, # comments), a
// two-address instruction set with implicit-operand division (cltd/idivl),
// and a stack-based calling convention.
package x86

import (
	"srcg/internal/asm"
)

// Toolchain is the simulated x86 cc/as/ld/run bundle.
type Toolchain struct {
	dialect asm.Dialect
}

// New returns the simulated x86 toolchain.
func New() *Toolchain {
	t := &Toolchain{}
	t.dialect = asm.Dialect{
		Arch: "x86",
		Syntax: asm.Syntax{
			CommentChars: []string{"#"},
			LabelSuffix:  ":",
		},
		Decode: decode,
	}
	return t
}

// Name implements target.Toolchain.
func (t *Toolchain) Name() string { return "x86" }

// CompileC implements target.Toolchain.
func (t *Toolchain) CompileC(src string) (string, error) { return compileC(src) }

// Assemble implements target.Toolchain.
func (t *Toolchain) Assemble(text string) (*asm.Unit, error) { return t.dialect.ParseUnit(text) }

// Link implements target.Toolchain.
func (t *Toolchain) Link(units []*asm.Unit) (*asm.Image, error) {
	img, err := asm.Link("x86", 4, units)
	if err != nil {
		return nil, err
	}
	if err := img.CheckUndefined(); err != nil {
		return nil, err
	}
	return img, nil
}

// registers is the flat i386 register file the assembler accepts.
var registers = map[string]bool{
	"%eax": true, "%ebx": true, "%ecx": true, "%edx": true,
	"%esi": true, "%edi": true, "%ebp": true, "%esp": true,
}

func errf(line int, format string, args ...interface{}) error {
	return asm.Errf("x86", line, format, args...)
}

// dataOperand decodes an operand of a data-moving instruction: $imm, $sym,
// %reg, disp(%reg), (%reg), or a bare symbol (absolute memory reference).
// Bare integers are rejected — AT&T immediates always carry '$'.
func dataOperand(line int, s string) (asm.Arg, error) {
	if s == "" {
		return asm.Arg{}, errf(line, "empty operand")
	}
	if s[0] == '$' {
		rest := s[1:]
		if v, ok := asm.ParseInt(rest); ok {
			return asm.Arg{Kind: asm.Imm, Imm: v, Raw: s}, nil
		}
		if asm.DefaultValidLabel(rest) {
			return asm.Arg{Kind: asm.Sym, Sym: rest, Raw: s}, nil
		}
		return asm.Arg{}, errf(line, "bad immediate %q", s)
	}
	if s[0] == '%' {
		if !registers[s] {
			return asm.Arg{}, errf(line, "unknown register %q", s)
		}
		return asm.Arg{Kind: asm.Reg, Reg: s, Raw: s}, nil
	}
	if i := indexByte(s, '('); i >= 0 {
		if s[len(s)-1] != ')' {
			return asm.Arg{}, errf(line, "bad memory operand %q", s)
		}
		disp := int64(0)
		if i > 0 {
			v, ok := asm.ParseInt(s[:i])
			if !ok {
				return asm.Arg{}, errf(line, "bad displacement in %q", s)
			}
			disp = v
		}
		base := s[i+1 : len(s)-1]
		if !registers[base] {
			return asm.Arg{}, errf(line, "bad base register in %q", s)
		}
		return asm.Arg{Kind: asm.Mem, Reg: base, Imm: disp, Raw: s}, nil
	}
	if _, ok := asm.ParseInt(s); ok {
		return asm.Arg{}, errf(line, "bare integer operand %q (immediates need $)", s)
	}
	if asm.DefaultValidLabel(s) {
		return asm.Arg{Kind: asm.Mem, Sym: s, Raw: s}, nil
	}
	return asm.Arg{}, errf(line, "bad operand %q", s)
}

// labelOperand decodes a branch/call target: a non-numeric symbol.
func labelOperand(line int, s string) (asm.Arg, error) {
	if _, ok := asm.ParseInt(s); ok {
		return asm.Arg{}, errf(line, "numeric branch target %q", s)
	}
	if !asm.DefaultValidLabel(s) || s == "" || s[0] == '%' || s[0] == '$' {
		return asm.Arg{}, errf(line, "bad branch target %q", s)
	}
	return asm.Arg{Kind: asm.Sym, Sym: s, Raw: s}, nil
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

var condBranches = map[string]bool{
	"je": true, "jne": true, "jl": true, "jle": true, "jg": true, "jge": true,
}

// decode validates one x86 instruction line.
func decode(ln asm.Line) (asm.Instr, error) {
	ins := asm.Instr{Op: ln.Op, Line: ln.Num}
	data := func(i int) (asm.Arg, error) { return dataOperand(ln.Num, ln.Args[i]) }
	want := func(n int) error {
		if len(ln.Args) != n {
			return errf(ln.Num, "%s takes %d operands, got %d", ln.Op, n, len(ln.Args))
		}
		return nil
	}
	switch ln.Op {
	case "movl", "addl", "subl", "imull", "andl", "orl", "xorl", "cmpl":
		if err := want(2); err != nil {
			return ins, err
		}
		src, err := data(0)
		if err != nil {
			return ins, err
		}
		dst, err := data(1)
		if err != nil {
			return ins, err
		}
		if ln.Op != "cmpl" && (dst.Kind == asm.Imm || dst.Kind == asm.Sym) {
			return ins, errf(ln.Num, "%s destination must be a register or memory", ln.Op)
		}
		if ln.Op == "cmpl" && (dst.Kind == asm.Imm || dst.Kind == asm.Sym) {
			return ins, errf(ln.Num, "cmpl second operand must be a register or memory")
		}
		ins.Args = []asm.Arg{src, dst}
	case "sall", "sarl":
		if err := want(2); err != nil {
			return ins, err
		}
		cnt, err := data(0)
		if err != nil {
			return ins, err
		}
		if cnt.Kind != asm.Imm && cnt.Kind != asm.Reg {
			return ins, errf(ln.Num, "%s count must be a register or immediate", ln.Op)
		}
		dst, err := data(1)
		if err != nil {
			return ins, err
		}
		if dst.Kind != asm.Reg {
			return ins, errf(ln.Num, "%s destination must be a register", ln.Op)
		}
		ins.Args = []asm.Arg{cnt, dst}
	case "negl", "notl", "idivl":
		if err := want(1); err != nil {
			return ins, err
		}
		a, err := data(0)
		if err != nil {
			return ins, err
		}
		if a.Kind == asm.Imm || a.Kind == asm.Sym {
			return ins, errf(ln.Num, "%s operand must be a register or memory", ln.Op)
		}
		ins.Args = []asm.Arg{a}
	case "pushl":
		if err := want(1); err != nil {
			return ins, err
		}
		a, err := data(0)
		if err != nil {
			return ins, err
		}
		// $imm, $sym, %reg, and mem with an explicit base are legal; a
		// bare symbol (absolute memory push) is not.
		if a.Kind == asm.Mem && a.Reg == "" {
			return ins, errf(ln.Num, "pushl cannot take a bare symbol")
		}
		ins.Args = []asm.Arg{a}
	case "popl":
		if err := want(1); err != nil {
			return ins, err
		}
		a, err := data(0)
		if err != nil {
			return ins, err
		}
		if a.Kind != asm.Reg {
			return ins, errf(ln.Num, "popl needs a register")
		}
		ins.Args = []asm.Arg{a}
	case "leal":
		if err := want(2); err != nil {
			return ins, err
		}
		src, err := data(0)
		if err != nil {
			return ins, err
		}
		if src.Kind != asm.Mem {
			return ins, errf(ln.Num, "leal source must be a memory operand")
		}
		dst, err := data(1)
		if err != nil {
			return ins, err
		}
		if dst.Kind != asm.Reg {
			return ins, errf(ln.Num, "leal destination must be a register")
		}
		ins.Args = []asm.Arg{src, dst}
	case "cltd", "ret":
		if err := want(0); err != nil {
			return ins, err
		}
	case "jmp", "call":
		if err := want(1); err != nil {
			return ins, err
		}
		a, err := labelOperand(ln.Num, ln.Args[0])
		if err != nil {
			return ins, err
		}
		ins.Args = []asm.Arg{a}
	default:
		if condBranches[ln.Op] {
			if err := want(1); err != nil {
				return ins, err
			}
			a, err := labelOperand(ln.Num, ln.Args[0])
			if err != nil {
				return ins, err
			}
			ins.Args = []asm.Arg{a}
			return ins, nil
		}
		return ins, errf(ln.Num, "unknown opcode %q", ln.Op)
	}
	return ins, nil
}
