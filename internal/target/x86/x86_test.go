package x86_test

import (
	"testing"

	"srcg/internal/target"
	"srcg/internal/target/x86"
)

func run(t *testing.T, sources ...string) string {
	t.Helper()
	out, err := target.BuildAndRun(x86.New(), sources)
	if err != nil {
		t.Fatalf("BuildAndRun: %v", err)
	}
	return out
}

func TestArith(t *testing.T) {
	out := run(t, `main(){int a=313,b=109,c; c = a*b + a/b - a%b; printf("%i\n", c); exit(0);}`)
	if out != "34024\n" {
		t.Errorf("out = %q, want 34024", out)
	}
}

func TestNegativeDivision(t *testing.T) {
	out := run(t, `main(){int a=-37,b=5,c; c = a/b*1000 + a%b; printf("%i\n", c); exit(0);}`)
	if out != "-7002\n" {
		t.Errorf("out = %q, want -7002 (truncating division)", out)
	}
}

func TestShifts(t *testing.T) {
	out := run(t, `main(){int a=503,b=3,c; c = (a<<b) + (a>>1) + ((0-a)>>2); printf("%i\n", c); exit(0);}`)
	// 4024 + 251 + (-126) = 4149 with arithmetic right shifts.
	if out != "4149\n" {
		t.Errorf("out = %q, want 4149", out)
	}
}

func TestControlFlowAndGoto(t *testing.T) {
	out := run(t, `main(){int i=0,s=0; while (i<10) { if (i>4) s = s + i; i = i + 1; } printf("%i\n", s); exit(0);}`)
	if out != "35\n" {
		t.Errorf("out = %q, want 35", out)
	}
}

func TestRecursionAcrossUnits(t *testing.T) {
	main := `extern int fib(); main(){int r; r = fib(10); printf("%i\n", r); exit(0);}`
	lib := `int fib(int n){ if (n < 2) return n; return fib(n-1) + fib(n-2); }`
	out := run(t, main, lib)
	if out != "55\n" {
		t.Errorf("out = %q, want 55", out)
	}
}

func TestGlobalsAndPointers(t *testing.T) {
	main := `extern int z1; extern void Init();
		main(){int a; Init(&a); printf("%i\n", a + z1); exit(0);}`
	lib := `int z1; void Init(n) int *n; { z1 = 7; *n = 1200; }`
	out := run(t, main, lib)
	if out != "1207\n" {
		t.Errorf("out = %q, want 1207", out)
	}
}

func TestAssemblerRejectsGarbage(t *testing.T) {
	tc := x86.New()
	for _, bad := range []string{
		"\tzzqk9 %eax, %ebx",
		"\tmovl 1235, %eax",
		"\tpushl zzqk9",
		"\tmovl %eax8, %ebx",
		"\tjmp 1235",
	} {
		if _, err := tc.Assemble(bad); err == nil {
			t.Errorf("Assemble(%q) accepted", bad)
		}
	}
}
