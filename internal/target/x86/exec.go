package x86

import (
	"fmt"

	"srcg/internal/asm"
	"srcg/internal/machine"
)

// Execute implements target.Toolchain: a flat interpretation of the linked
// instruction stream with AT&T operand order, 32-bit wrapping arithmetic,
// and return addresses kept on the machine stack.
func (t *Toolchain) Execute(img *asm.Image) (string, error) {
	c := machine.NewCPU()
	c.Mem.AddBound(machine.DataBase, img.DataEnd)
	c.Mem.AddBound(machine.StackTop-machine.StackSize, machine.StackTop)
	for a, b := range img.Data {
		c.Mem.Store(a, 1, uint64(b))
	}
	for r := range registers {
		c.Regs[r] = 0
	}
	c.Regs["%esp"] = machine.StackTop
	c.PC = img.Entry
	for !c.Halted {
		if err := c.Tick(); err != nil {
			return c.Out.String(), err
		}
		if c.PC < 0 || c.PC >= len(img.Instrs) {
			return c.Out.String(), fmt.Errorf("x86: PC %d outside code [0,%d)", c.PC, len(img.Instrs))
		}
		if err := step(c, img, img.Instrs[c.PC]); err != nil {
			return c.Out.String(), err
		}
		if err := c.Mem.Fault(); err != nil {
			return c.Out.String(), err
		}
	}
	return c.Out.String(), nil
}

func wrap32(v int64) int64 { return int64(int32(v)) }

// ea computes the effective address of a memory operand.
func ea(c *machine.CPU, img *asm.Image, a asm.Arg) (uint64, error) {
	if a.Reg != "" {
		return uint64(c.Regs[a.Reg] + a.Imm), nil
	}
	addr, ok := img.Resolve(a.Sym)
	if !ok {
		return 0, fmt.Errorf("x86: undefined data symbol %q", a.Sym)
	}
	return addr, nil
}

// value reads an operand: immediate, symbol address, register, or memory.
func value(c *machine.CPU, img *asm.Image, a asm.Arg) (int64, error) {
	switch a.Kind {
	case asm.Imm:
		return a.Imm, nil
	case asm.Sym:
		addr, ok := img.Resolve(a.Sym)
		if !ok {
			return 0, fmt.Errorf("x86: undefined symbol %q", a.Sym)
		}
		return int64(addr), nil
	case asm.Reg:
		return c.Regs[a.Reg], nil
	case asm.Mem:
		addr, err := ea(c, img, a)
		if err != nil {
			return 0, err
		}
		return machine.SignExtend(c.Mem.Load(addr, 4), 32), nil
	}
	return 0, fmt.Errorf("x86: unreadable operand %v", a)
}

// write stores v into a register or memory operand.
func write(c *machine.CPU, img *asm.Image, a asm.Arg, v int64) error {
	switch a.Kind {
	case asm.Reg:
		c.Regs[a.Reg] = wrap32(v)
		return nil
	case asm.Mem:
		addr, err := ea(c, img, a)
		if err != nil {
			return err
		}
		c.Mem.Store(addr, 4, machine.Truncate(v, 32))
		return nil
	}
	return fmt.Errorf("x86: unwritable operand %v", a)
}

func push(c *machine.CPU, v int64) {
	c.Regs["%esp"] -= 4
	c.Mem.Store(uint64(c.Regs["%esp"]), 4, machine.Truncate(v, 32))
}

func pop(c *machine.CPU) int64 {
	v := machine.SignExtend(c.Mem.Load(uint64(c.Regs["%esp"]), 4), 32)
	c.Regs["%esp"] += 4
	return v
}

func codeLabel(img *asm.Image, sym string) (int, error) {
	idx, ok := img.Labels[sym]
	if !ok {
		return 0, fmt.Errorf("x86: undefined code label %q", sym)
	}
	return idx, nil
}

func step(c *machine.CPU, img *asm.Image, ins asm.Instr) error {
	next := c.PC + 1
	switch ins.Op {
	case "movl":
		v, err := value(c, img, ins.Args[0])
		if err != nil {
			return err
		}
		if err := write(c, img, ins.Args[1], v); err != nil {
			return err
		}
	case "addl", "subl", "imull", "andl", "orl", "xorl":
		s, err := value(c, img, ins.Args[0])
		if err != nil {
			return err
		}
		d, err := value(c, img, ins.Args[1])
		if err != nil {
			return err
		}
		var r int64
		switch ins.Op {
		case "addl":
			r = d + s
		case "subl":
			r = d - s
		case "imull":
			r = d * s
		case "andl":
			r = d & s
		case "orl":
			r = d | s
		case "xorl":
			r = d ^ s
		}
		if err := write(c, img, ins.Args[1], wrap32(r)); err != nil {
			return err
		}
	case "sall", "sarl":
		cnt, err := value(c, img, ins.Args[0])
		if err != nil {
			return err
		}
		d := c.Regs[ins.Args[1].Reg]
		sh := uint(cnt) & 31
		if ins.Op == "sall" {
			c.Regs[ins.Args[1].Reg] = wrap32(d << sh)
		} else {
			c.Regs[ins.Args[1].Reg] = int64(int32(d) >> sh)
		}
	case "negl", "notl":
		v, err := value(c, img, ins.Args[0])
		if err != nil {
			return err
		}
		if ins.Op == "negl" {
			v = -v
		} else {
			v = ^v
		}
		if err := write(c, img, ins.Args[0], wrap32(v)); err != nil {
			return err
		}
	case "cltd":
		if c.Regs["%eax"] < 0 {
			c.Regs["%edx"] = -1
		} else {
			c.Regs["%edx"] = 0
		}
	case "idivl":
		divisor, err := value(c, img, ins.Args[0])
		if err != nil {
			return err
		}
		if int32(divisor) == 0 {
			return fmt.Errorf("x86: division by zero")
		}
		dividend := c.Regs["%edx"]<<32 | int64(uint32(c.Regs["%eax"]))
		c.Regs["%eax"] = wrap32(dividend / int64(int32(divisor)))
		c.Regs["%edx"] = wrap32(dividend % int64(int32(divisor)))
	case "cmpl":
		s, err := value(c, img, ins.Args[0])
		if err != nil {
			return err
		}
		d, err := value(c, img, ins.Args[1])
		if err != nil {
			return err
		}
		c.CCValid, c.CCa, c.CCb = true, d, s
	case "je", "jne", "jl", "jle", "jg", "jge":
		if !c.CCValid {
			return fmt.Errorf("x86: conditional jump with no condition codes set")
		}
		taken := false
		switch ins.Op {
		case "je":
			taken = c.CCa == c.CCb
		case "jne":
			taken = c.CCa != c.CCb
		case "jl":
			taken = c.CCa < c.CCb
		case "jle":
			taken = c.CCa <= c.CCb
		case "jg":
			taken = c.CCa > c.CCb
		case "jge":
			taken = c.CCa >= c.CCb
		}
		if taken {
			idx, err := codeLabel(img, ins.Args[0].Sym)
			if err != nil {
				return err
			}
			next = idx
		}
	case "jmp":
		idx, err := codeLabel(img, ins.Args[0].Sym)
		if err != nil {
			return err
		}
		next = idx
	case "pushl":
		v, err := value(c, img, ins.Args[0])
		if err != nil {
			return err
		}
		push(c, v)
	case "popl":
		c.Regs[ins.Args[0].Reg] = pop(c)
	case "leal":
		addr, err := ea(c, img, ins.Args[0])
		if err != nil {
			return err
		}
		c.Regs[ins.Args[1].Reg] = wrap32(int64(addr))
	case "call":
		sym := ins.Args[0].Sym
		if _, ok := img.Labels[sym]; !ok && asm.Builtins[sym] {
			if err := builtin(c, img, sym); err != nil {
				return err
			}
			break
		}
		idx, err := codeLabel(img, sym)
		if err != nil {
			return err
		}
		push(c, int64(c.PC+1))
		next = idx
	case "ret":
		next = int(pop(c))
	default:
		return fmt.Errorf("x86: unimplemented opcode %q", ins.Op)
	}
	c.PC = next
	return nil
}

// builtin services printf and exit; arguments are on the stack, no return
// address is pushed for builtin calls.
func builtin(c *machine.CPU, img *asm.Image, sym string) error {
	sp := uint64(c.Regs["%esp"])
	switch sym {
	case "printf":
		fmtAddr := c.Mem.Load(sp, 4)
		format, err := c.Mem.LoadCString(fmtAddr)
		if err != nil {
			return err
		}
		var args []int64
		for i := 0; i < directives(format); i++ {
			args = append(args, machine.SignExtend(c.Mem.Load(sp+4+uint64(4*i), 4), 32))
		}
		return c.Printf(format, args)
	case "exit":
		c.Exit = int(int32(c.Mem.Load(sp, 4)))
		c.Halted = true
		return nil
	}
	return fmt.Errorf("x86: unsupported builtin %q", sym)
}

// directives counts the argument-consuming conversions in a printf format.
func directives(format string) int {
	n := 0
	for i := 0; i+1 < len(format); i++ {
		if format[i] == '%' {
			if format[i+1] == 'i' || format[i+1] == 'd' {
				n++
			}
			i++
		}
	}
	return n
}
