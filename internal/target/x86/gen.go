package x86

import (
	"fmt"
	"strings"

	"srcg/internal/asm"
	"srcg/internal/cc"
	"srcg/internal/ir"
)

// compileC lowers mini-C to AT&T-style i386 assembly. Locals live at
// -4(%ebp), -8(%ebp), ... below the frame pointer; parameters at 8(%ebp),
// 12(%ebp), ... above it. Expressions are evaluated into a small register
// pool, with %eax reserved for division, call staging, and return values.
func compileC(src string) (string, error) {
	u, err := cc.CompileUnit(src)
	if err != nil {
		return "", err
	}
	g := &gen{unit: u}
	for _, f := range u.Funcs {
		if err := g.genFunc(f); err != nil {
			return "", err
		}
	}
	for _, gl := range u.Globals {
		g.raw("\t.comm " + gl.Name + ", 4")
	}
	for _, s := range u.Strings {
		g.raw(s.Label + ":\t.asciz \"" + asm.EscapeString(s.Value) + "\"")
	}
	return g.buf.String(), nil
}

// pool is the expression-temporary allocation order. %eax stays out: it is
// the implicit division/return register.
var pool = []string{"%edx", "%ecx", "%ebx", "%esi", "%edi"}

type gen struct {
	buf  strings.Builder
	unit *ir.Unit
	fn   *ir.Func
	busy map[string]bool
}

func (g *gen) raw(s string)                          { g.buf.WriteString(s + "\n") }
func (g *gen) ins(f string, a ...interface{})        { g.raw("\t" + fmt.Sprintf(f, a...)) }
func (g *gen) label(name string)                     { g.raw(name + ":") }
func (g *gen) errf(f string, a ...interface{}) error { return fmt.Errorf("x86-cc: "+f, a...) }

func (g *gen) alloc(avoid ...string) (string, bool) {
	skip := map[string]bool{}
	for _, r := range avoid {
		skip[r] = true
	}
	for _, r := range pool {
		if !g.busy[r] && !skip[r] {
			g.busy[r] = true
			return r, true
		}
	}
	return "", false
}

func (g *gen) release(r string) { delete(g.busy, r) }

func (g *gen) freeCount() int {
	n := 0
	for _, r := range pool {
		if !g.busy[r] {
			n++
		}
	}
	return n
}

// slot returns the memory operand for a named local or parameter.
func (g *gen) slot(l ir.Local) string {
	if l.IsParam {
		return fmt.Sprintf("%d(%%ebp)", 8+4*l.Index)
	}
	return fmt.Sprintf("-%d(%%ebp)", 4*(l.Index+1))
}

// memOperand renders the operand for a named location: a frame slot for
// locals, the bare symbol for globals.
func (g *gen) memOperand(name string) string {
	if l, ok := g.fn.LookupLocal(name); ok {
		return g.slot(l)
	}
	return name
}

// leaf returns the direct operand for nodes that need no code: integer
// constants, symbol addresses, and simple named loads.
func (g *gen) leaf(n *ir.Node) (string, bool) {
	switch n.Op {
	case ir.Const:
		return fmt.Sprintf("$%d", n.Value), true
	case ir.Load:
		if n.Kids[0].Op == ir.Addr {
			if _, isLocal := g.fn.LookupLocal(n.Kids[0].Name); isLocal || g.isData(n.Kids[0].Name) {
				return g.memOperand(n.Kids[0].Name), true
			}
		}
	case ir.Addr:
		if _, isLocal := g.fn.LookupLocal(n.Name); !isLocal {
			return "$" + n.Name, true
		}
	}
	return "", false
}

// isData reports whether name is a data symbol (global or extern variable)
// rather than a function.
func (g *gen) isData(name string) bool {
	for _, f := range g.unit.Funcs {
		if f.Name == name {
			return false
		}
	}
	return true
}

func (g *gen) genFunc(f *ir.Func) error {
	g.fn = f
	g.busy = map[string]bool{}
	frame := 0
	for _, l := range f.Locals {
		if !l.IsParam {
			frame += 4
		}
	}
	g.raw("\t.globl " + f.Name)
	g.label(f.Name)
	g.ins("pushl %%ebp")
	g.ins("movl %%esp, %%ebp")
	g.ins("subl $%d, %%esp", frame)
	for _, st := range f.Body {
		if err := g.genStmt(st); err != nil {
			return err
		}
	}
	if !endsFlow(f.Body) {
		g.epilogue()
	}
	return nil
}

// endsFlow reports whether the function body already ends in a return or a
// call to exit, making a trailing epilogue dead code.
func endsFlow(body []*ir.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	last := body[len(body)-1]
	if last.Kind == ir.SRet {
		return true
	}
	return last.Kind == ir.SExpr && last.Val != nil && last.Val.Op == ir.Call && last.Val.Name == "exit"
}

func (g *gen) epilogue() {
	g.ins("movl %%ebp, %%esp")
	g.ins("popl %%ebp")
	g.ins("ret")
}

func (g *gen) genStmt(st *ir.Stmt) error {
	switch st.Kind {
	case ir.SLabel:
		g.label(st.Target)
	case ir.SGoto:
		g.ins("jmp %s", st.Target)
	case ir.SBranch:
		return g.genBranch(st)
	case ir.SStore:
		return g.genStore(st.Addr, st.Val)
	case ir.SExpr:
		if st.Val != nil && st.Val.Op == ir.Call {
			return g.genCall(st.Val)
		}
	case ir.SRet:
		if st.Val != nil {
			if op, ok := g.leaf(st.Val); ok {
				g.ins("movl %s, %%eax", op)
			} else {
				r, err := g.evalReg(st.Val)
				if err != nil {
					return err
				}
				g.ins("movl %s, %%eax", r)
				g.release(r)
			}
		}
		g.epilogue()
	}
	return nil
}

var branchOps = map[ir.Rel]string{
	ir.EQ: "je", ir.NE: "jne", ir.LT: "jl", ir.LE: "jle", ir.GT: "jg", ir.GE: "jge",
}

func (g *gen) genBranch(st *ir.Stmt) error {
	rA, err := g.evalReg(st.A)
	if err != nil {
		return err
	}
	if op, ok := g.leaf(st.B); ok {
		g.ins("cmpl %s, %s", op, rA)
	} else {
		rB, err := g.evalReg(st.B)
		if err != nil {
			return err
		}
		g.ins("cmpl %s, %s", rB, rA)
		g.release(rB)
	}
	g.release(rA)
	g.ins("%s %s", branchOps[st.Rel], st.Target)
	return nil
}

func (g *gen) genStore(addr, val *ir.Node) error {
	// Destination: a named slot/global, or a computed address (*p = ...).
	dst := ""
	dstReg := ""
	if addr.Op == ir.Addr {
		dst = g.memOperand(addr.Name)
	} else {
		r, err := g.evalReg(addr)
		if err != nil {
			return err
		}
		dstReg = r
		dst = "(" + r + ")"
	}
	defer func() {
		if dstReg != "" {
			g.release(dstReg)
		}
	}()
	switch {
	case val.Op == ir.Const:
		g.ins("movl $%d, %s", val.Value, dst)
	case (val.Op == ir.Div || val.Op == ir.Mod) && dstReg == "":
		return g.genDiv(val, dst)
	case val.Op == ir.Call:
		if err := g.genCall(val); err != nil {
			return err
		}
		g.ins("movl %%eax, %s", dst)
	default:
		if op, ok := g.leaf(val); ok {
			r, okr := g.alloc()
			if !okr {
				return g.errf("register pool exhausted")
			}
			g.ins("movl %s, %s", op, r)
			g.ins("movl %s, %s", r, dst)
			g.release(r)
			return nil
		}
		r, err := g.evalReg(val)
		if err != nil {
			return err
		}
		g.ins("movl %s, %s", r, dst)
		g.release(r)
	}
	return nil
}

// genDiv emits the cltd/idivl sequence for a statement-level quotient or
// remainder, storing %eax (Div) or %edx (Mod) to dst.
func (g *gen) genDiv(n *ir.Node, dst string) error {
	res, err := g.divide(n)
	if err != nil {
		return err
	}
	// The quotient leaves the accumulator through a pool register (the
	// remainder is already in one); %eax stays free for the next
	// statement's division protocol.
	if n.Op == ir.Div {
		r, ok := g.alloc()
		if !ok {
			return g.errf("register pool exhausted")
		}
		g.ins("movl %s, %s", res, r)
		res = r
		defer g.release(r)
	}
	g.ins("movl %s, %s", res, dst)
	return nil
}

// divide runs the division protocol and returns "%eax" (Div) or "%edx"
// (Mod) holding the result; the caller must consume it immediately.
func (g *gen) divide(n *ir.Node) (string, error) {
	spill := g.busy["%edx"]
	if spill {
		g.ins("pushl %%edx")
	}
	divisor := ""
	divReg := ""
	if op, ok := g.leaf(n.Kids[1]); ok && !strings.HasPrefix(op, "$") {
		divisor = op
	} else {
		r, err := g.evalRegAvoid(n.Kids[1], "%edx")
		if err != nil {
			return "", err
		}
		divReg = r
		divisor = r
	}
	if op, ok := g.leaf(n.Kids[0]); ok {
		g.ins("movl %s, %%eax", op)
	} else {
		r, err := g.evalRegAvoid(n.Kids[0], "%edx")
		if err != nil {
			return "", err
		}
		g.ins("movl %s, %%eax", r)
		g.release(r)
	}
	g.ins("cltd")
	g.ins("idivl %s", divisor)
	if divReg != "" {
		g.release(divReg)
	}
	res := "%eax"
	if n.Op == ir.Mod {
		res = "%edx"
	}
	if spill {
		// Park the result out of %edx before restoring it.
		return res, g.errf("internal: division with live %%edx must go through evalReg")
	}
	return res, nil
}

var binOps = map[ir.Op]string{
	ir.Add: "addl", ir.Sub: "subl", ir.Mul: "imull",
	ir.And: "andl", ir.Or: "orl", ir.Xor: "xorl",
}

// evalReg evaluates n into a freshly allocated pool register.
func (g *gen) evalReg(n *ir.Node) (string, error) { return g.evalRegAvoid(n) }

func (g *gen) evalRegAvoid(n *ir.Node, avoid ...string) (string, error) {
	switch {
	case n.Op == ir.Const, n.Op == ir.Load && n.Kids[0].Op == ir.Addr, n.Op == ir.Addr:
		if op, ok := g.leaf(n); ok {
			r, okr := g.alloc(avoid...)
			if !okr {
				return "", g.errf("register pool exhausted")
			}
			g.ins("movl %s, %s", op, r)
			return r, nil
		}
		if n.Op == ir.Addr { // address of a local
			l, _ := g.fn.LookupLocal(n.Name)
			r, okr := g.alloc(avoid...)
			if !okr {
				return "", g.errf("register pool exhausted")
			}
			g.ins("leal %s, %s", g.slot(l), r)
			return r, nil
		}
		return "", g.errf("unsupported leaf %s", n)
	case n.Op == ir.Load: // *p as an rvalue
		r, err := g.evalRegAvoid(n.Kids[0], avoid...)
		if err != nil {
			return "", err
		}
		g.ins("movl (%s), %s", r, r)
		return r, nil
	case n.Op == ir.Neg || n.Op == ir.Not:
		r, err := g.evalRegAvoid(n.Kids[0], avoid...)
		if err != nil {
			return "", err
		}
		if n.Op == ir.Neg {
			g.ins("negl %s", r)
		} else {
			g.ins("notl %s", r)
		}
		return r, nil
	case n.Op == ir.Div || n.Op == ir.Mod:
		return g.divToReg(n, avoid...)
	case n.Op == ir.Shl || n.Op == ir.Shr:
		return g.shift(n, avoid...)
	case n.Op == ir.Call:
		if err := g.genCall(n); err != nil {
			return "", err
		}
		r, okr := g.alloc(avoid...)
		if !okr {
			return "", g.errf("register pool exhausted")
		}
		g.ins("movl %%eax, %s", r)
		return r, nil
	case n.Op.IsBinary():
		return g.binary(n, avoid...)
	}
	return "", g.errf("cannot evaluate %s", n)
}

func (g *gen) binary(n *ir.Node, avoid ...string) (string, error) {
	op := binOps[n.Op]
	l, err := g.evalRegAvoid(n.Kids[0], avoid...)
	if err != nil {
		return "", err
	}
	if rop, ok := g.leaf(n.Kids[1]); ok {
		g.ins("%s %s, %s", op, rop, l)
		return l, nil
	}
	if n.Kids[1].ContainsCall() || g.freeCount() == 0 {
		// Spill the left value across the right-hand evaluation: a call
		// (or an exhausted pool) would clobber it.
		g.ins("pushl %s", l)
		g.release(l)
		r, err := g.evalRegAvoid(n.Kids[1], avoid...)
		if err != nil {
			return "", err
		}
		l2, okr := g.alloc(avoid...)
		if !okr {
			return "", g.errf("register pool exhausted")
		}
		g.ins("popl %s", l2)
		g.ins("%s %s, %s", op, r, l2)
		g.release(r)
		return l2, nil
	}
	r, err := g.evalRegAvoid(n.Kids[1], avoid...)
	if err != nil {
		return "", err
	}
	g.ins("%s %s, %s", op, r, l)
	g.release(r)
	return l, nil
}

// divToReg wraps the division protocol for expression contexts, moving the
// result into a pool register and restoring any spilled %edx.
func (g *gen) divToReg(n *ir.Node, avoid ...string) (string, error) {
	spill := g.busy["%edx"]
	if spill {
		g.ins("pushl %%edx")
		g.release("%edx")
	}
	res, err := g.divide(n)
	if err != nil {
		return "", err
	}
	av := append([]string{"%edx"}, avoid...)
	r, okr := g.alloc(av...)
	if !okr {
		return "", g.errf("register pool exhausted")
	}
	g.ins("movl %s, %s", res, r)
	if spill {
		g.ins("popl %%edx")
		g.busy["%edx"] = true
	}
	return r, nil
}

// shift emits sall/sarl with the count in %ecx (or as an immediate).
func (g *gen) shift(n *ir.Node, avoid ...string) (string, error) {
	op := "sall"
	if n.Op == ir.Shr {
		op = "sarl"
	}
	if n.Kids[1].Op == ir.Const {
		r, err := g.evalRegAvoid(n.Kids[0], avoid...)
		if err != nil {
			return "", err
		}
		g.ins("%s $%d, %s", op, n.Kids[1].Value, r)
		return r, nil
	}
	av := append([]string{"%ecx"}, avoid...)
	l, err := g.evalRegAvoid(n.Kids[0], av...)
	if err != nil {
		return "", err
	}
	spill := g.busy["%ecx"]
	if spill {
		g.ins("pushl %%ecx")
		g.release("%ecx")
	}
	g.busy["%ecx"] = true
	if cop, ok := g.leaf(n.Kids[1]); ok {
		g.ins("movl %s, %%ecx", cop)
	} else {
		r, err := g.evalRegAvoid(n.Kids[1], av...)
		if err != nil {
			return "", err
		}
		g.ins("movl %s, %%ecx", r)
		g.release(r)
	}
	g.ins("%s %%ecx, %s", op, l)
	g.release("%ecx")
	if spill {
		g.ins("popl %%ecx")
		g.busy["%ecx"] = true
	}
	return l, nil
}

// genCall pushes arguments right to left (memory leaves staged through
// %eax), calls, and pops the arguments — except for the no-return exit.
func (g *gen) genCall(n *ir.Node) error {
	for i := len(n.Kids) - 1; i >= 0; i-- {
		arg := n.Kids[i]
		switch {
		case arg.Op == ir.Const:
			g.ins("pushl $%d", arg.Value)
		case arg.Op == ir.Addr:
			if l, isLocal := g.fn.LookupLocal(arg.Name); isLocal {
				g.ins("leal %s, %%eax", g.slot(l))
				g.ins("pushl %%eax")
			} else {
				g.ins("pushl $%s", arg.Name)
			}
		case arg.Op == ir.Load && arg.Kids[0].Op == ir.Addr:
			op, ok := g.leaf(arg)
			if !ok {
				return g.errf("bad argument %s", arg)
			}
			g.ins("movl %s, %%eax", op)
			g.ins("pushl %%eax")
		default:
			r, err := g.evalReg(arg)
			if err != nil {
				return err
			}
			g.ins("pushl %s", r)
			g.release(r)
		}
	}
	g.ins("call %s", n.Name)
	if n.Name != "exit" && len(n.Kids) > 0 {
		g.ins("addl $%d, %%esp", 4*len(n.Kids))
	}
	return nil
}
