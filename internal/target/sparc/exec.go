package sparc

import (
	"fmt"

	"srcg/internal/asm"
	"srcg/internal/machine"
)

// Execute implements target.Toolchain. SPARC calls are delayed: the
// instruction after a call runs before control transfers, and %o7 receives
// the address past the delay slot. %g0 is hardwired to zero.
func (t *Toolchain) Execute(img *asm.Image) (string, error) {
	c := machine.NewCPU()
	c.Mem.AddBound(machine.DataBase, img.DataEnd)
	c.Mem.AddBound(machine.StackTop-machine.StackSize, machine.StackTop)
	for a, b := range img.Data {
		c.Mem.Store(a, 1, uint64(b))
	}
	for r := range registers {
		c.Regs[r] = 0
	}
	c.Regs["%sp"] = machine.StackTop
	c.PC = img.Entry
	for !c.Halted {
		if err := c.Tick(); err != nil {
			return c.Out.String(), err
		}
		if c.PC < 0 || c.PC >= len(img.Instrs) {
			return c.Out.String(), fmt.Errorf("sparc: PC %d outside code [0,%d)", c.PC, len(img.Instrs))
		}
		next, err := step(c, img, c.PC)
		if err != nil {
			return c.Out.String(), err
		}
		if err := c.Mem.Fault(); err != nil {
			return c.Out.String(), err
		}
		c.PC = next
	}
	return c.Out.String(), nil
}

func wrap32(v int64) int64 { return int64(int32(v)) }

func getReg(c *machine.CPU, r string) int64 {
	if r == "%g0" {
		return 0
	}
	return c.Regs[r]
}

func setReg(c *machine.CPU, r string, v int64) {
	if r == "%g0" {
		return
	}
	c.Regs[r] = wrap32(v)
}

// operand reads a register-or-immediate source.
func operand(c *machine.CPU, a asm.Arg) int64 {
	if a.Kind == asm.Imm {
		return a.Imm
	}
	return getReg(c, a.Reg)
}

func codeLabel(img *asm.Image, sym string) (int, error) {
	idx, ok := img.Labels[sym]
	if !ok {
		return 0, fmt.Errorf("sparc: undefined code label %q", sym)
	}
	return idx, nil
}

// step executes the instruction at pc and returns the next pc.
func step(c *machine.CPU, img *asm.Image, pc int) (int, error) {
	ins := img.Instrs[pc]
	next := pc + 1
	switch ins.Op {
	case "add", "sub", "and", "or", "xor", "xnor", "sll", "sra":
		a := getReg(c, ins.Args[0].Reg)
		b := operand(c, ins.Args[1])
		var r int64
		switch ins.Op {
		case "add":
			r = a + b
		case "sub":
			r = a - b
		case "and":
			r = a & b
		case "or":
			r = a | b
		case "xor":
			r = a ^ b
		case "xnor":
			r = ^(a ^ b)
		case "sll":
			r = a << (uint(b) & 31)
		case "sra":
			r = int64(int32(a) >> (uint(b) & 31))
		}
		setReg(c, ins.Args[2].Reg, r)
	case "ld":
		addr := uint64(getReg(c, ins.Args[0].Reg) + ins.Args[0].Imm)
		setReg(c, ins.Args[1].Reg, machine.SignExtend(c.Mem.Load(addr, 4), 32))
	case "st":
		addr := uint64(getReg(c, ins.Args[1].Reg) + ins.Args[1].Imm)
		c.Mem.Store(addr, 4, machine.Truncate(getReg(c, ins.Args[0].Reg), 32))
	case "set":
		v := ins.Args[0].Imm
		if ins.Args[0].Kind == asm.Sym {
			addr, ok := img.Resolve(ins.Args[0].Sym)
			if !ok {
				return 0, fmt.Errorf("sparc: undefined symbol %q", ins.Args[0].Sym)
			}
			v = int64(addr)
		}
		setReg(c, ins.Args[1].Reg, v)
	case "cmp":
		c.CCValid = true
		c.CCa = getReg(c, ins.Args[0].Reg)
		c.CCb = operand(c, ins.Args[1])
	case "be", "bne", "bl", "ble", "bg", "bge":
		if !c.CCValid {
			return 0, fmt.Errorf("sparc: conditional branch with no condition codes set")
		}
		taken := false
		switch ins.Op {
		case "be":
			taken = c.CCa == c.CCb
		case "bne":
			taken = c.CCa != c.CCb
		case "bl":
			taken = c.CCa < c.CCb
		case "ble":
			taken = c.CCa <= c.CCb
		case "bg":
			taken = c.CCa > c.CCb
		case "bge":
			taken = c.CCa >= c.CCb
		}
		if taken {
			return codeLabel(img, ins.Args[0].Sym)
		}
	case "b":
		return codeLabel(img, ins.Args[0].Sym)
	case "nop":
	case "retl":
		next = int(c.Regs["%o7"])
	case "call":
		if pc+1 >= len(img.Instrs) {
			return 0, fmt.Errorf("sparc: call at %d has no delay slot", pc)
		}
		dnext, err := step(c, img, pc+1) // delay instruction runs first
		if err != nil {
			return 0, err
		}
		ret := pc + 2
		if dnext != pc+2 {
			ret = dnext // the delay instruction branched
		}
		sym := ins.Args[0].Sym
		if _, ok := img.Labels[sym]; !ok && asm.Builtins[sym] {
			if err := builtin(c, sym); err != nil {
				return 0, err
			}
			return ret, nil
		}
		idx, err := codeLabel(img, sym)
		if err != nil {
			return 0, err
		}
		c.Regs["%o7"] = int64(ret)
		return idx, nil
	default:
		return 0, fmt.Errorf("sparc: unimplemented opcode %q", ins.Op)
	}
	return next, nil
}

// builtin services printf, exit, and the .mul/.div/.rem millicode: all take
// arguments in %o0/%o1..., results in %o0.
func builtin(c *machine.CPU, sym string) error {
	switch sym {
	case "printf":
		format, err := c.Mem.LoadCString(uint64(c.Regs["%o0"]))
		if err != nil {
			return err
		}
		var args []int64
		for i := 0; i < directives(format); i++ {
			args = append(args, getReg(c, fmt.Sprintf("%%o%d", i+1)))
		}
		return c.Printf(format, args)
	case "exit":
		c.Exit = int(int32(c.Regs["%o0"]))
		c.Halted = true
		return nil
	case ".mul", ".div", ".rem":
		a, b := int32(c.Regs["%o0"]), int32(c.Regs["%o1"])
		if sym != ".mul" && b == 0 {
			return fmt.Errorf("sparc: division by zero in %s", sym)
		}
		var r int64
		switch sym {
		case ".mul":
			r = int64(a) * int64(b)
		case ".div":
			r = int64(a / b)
		case ".rem":
			r = int64(a % b)
		}
		c.Regs["%o0"] = wrap32(r)
		return nil
	}
	return fmt.Errorf("sparc: unsupported builtin %q", sym)
}

// directives counts the argument-consuming conversions in a printf format.
func directives(format string) int {
	n := 0
	for i := 0; i+1 < len(format); i++ {
		if format[i] == '%' {
			if format[i+1] == 'i' || format[i+1] == 'd' {
				n++
			}
			i++
		}
	}
	return n
}
