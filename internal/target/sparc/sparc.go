// Package sparc simulates a SPARC V8-class toolchain: "!" comments,
// bracketed memory operands ([%fp-8]), three-address register operations
// with 13-bit signed immediates, a synthetic `set` instruction for wide
// constants, delayed calls, and millicode .mul/.div/.rem routines.
package sparc

import (
	"strings"

	"srcg/internal/asm"
)

// Toolchain is the simulated SPARC cc/as/ld/run bundle.
type Toolchain struct {
	dialect asm.Dialect
}

// New returns the simulated SPARC toolchain.
func New() *Toolchain {
	t := &Toolchain{}
	t.dialect = asm.Dialect{
		Arch: "sparc",
		Syntax: asm.Syntax{
			CommentChars: []string{"!"},
			LabelSuffix:  ":",
		},
		Decode: decode,
	}
	return t
}

// Name implements target.Toolchain.
func (t *Toolchain) Name() string { return "sparc" }

// CompileC implements target.Toolchain.
func (t *Toolchain) CompileC(src string) (string, error) { return compileC(src) }

// Assemble implements target.Toolchain.
func (t *Toolchain) Assemble(text string) (*asm.Unit, error) { return t.dialect.ParseUnit(text) }

// Link implements target.Toolchain.
func (t *Toolchain) Link(units []*asm.Unit) (*asm.Image, error) {
	img, err := asm.Link("sparc", 4, units)
	if err != nil {
		return nil, err
	}
	if err := img.CheckUndefined(); err != nil {
		return nil, err
	}
	return img, nil
}

// registers is the SPARC register file: globals, outs, locals, and the two
// frame registers. %g0 reads as zero.
var registers = map[string]bool{}

func init() {
	for _, fam := range []string{"%g", "%o", "%l"} {
		for i := 0; i < 8; i++ {
			registers[fam+string(rune('0'+i))] = true
		}
	}
	registers["%fp"] = true
	registers["%sp"] = true
}

func errf(line int, format string, args ...interface{}) error {
	return asm.Errf("sparc", line, format, args...)
}

func regOperand(line int, s string) (asm.Arg, error) {
	if !registers[s] {
		return asm.Arg{}, errf(line, "unknown register %q", s)
	}
	return asm.Arg{Kind: asm.Reg, Reg: s, Raw: s}, nil
}

// memOperand decodes a bracketed memory operand: [%reg], [%reg+disp], or
// [%reg-disp].
func memOperand(line int, s string) (asm.Arg, error) {
	if len(s) < 2 || s[0] != '[' || s[len(s)-1] != ']' {
		return asm.Arg{}, errf(line, "memory operand %q needs brackets", s)
	}
	inner := s[1 : len(s)-1]
	base := inner
	disp := int64(0)
	if i := strings.IndexAny(inner[1:], "+-"); i >= 0 {
		base = inner[:i+1]
		v, ok := asm.ParseInt(inner[i+1:])
		if !ok {
			return asm.Arg{}, errf(line, "bad displacement in %q", s)
		}
		disp = v
	}
	if !registers[base] {
		return asm.Arg{}, errf(line, "bad base register in %q", s)
	}
	return asm.Arg{Kind: asm.Mem, Reg: base, Imm: disp, Raw: s}, nil
}

// regOrImm13 decodes the second source of a register operation: a register
// or a 13-bit signed immediate.
func regOrImm13(line int, s string) (asm.Arg, error) {
	if registers[s] {
		return asm.Arg{Kind: asm.Reg, Reg: s, Raw: s}, nil
	}
	if v, ok := asm.ParseInt(s); ok {
		if v < -4096 || v > 4095 {
			return asm.Arg{}, errf(line, "immediate %d out of 13-bit range", v)
		}
		return asm.Arg{Kind: asm.Imm, Imm: v, Raw: s}, nil
	}
	return asm.Arg{}, errf(line, "bad operand %q", s)
}

func labelOperand(line int, s string) (asm.Arg, error) {
	if _, ok := asm.ParseInt(s); ok {
		return asm.Arg{}, errf(line, "numeric branch target %q", s)
	}
	if s == "" || !asm.DefaultValidLabel(s) {
		return asm.Arg{}, errf(line, "bad branch target %q", s)
	}
	return asm.Arg{Kind: asm.Sym, Sym: s, Raw: s}, nil
}

var condBranches = map[string]bool{
	"be": true, "bne": true, "bl": true, "ble": true, "bg": true, "bge": true,
}

var regOps = map[string]bool{
	"add": true, "sub": true, "and": true, "or": true, "xor": true,
	"xnor": true, "sll": true, "sra": true,
}

// decode validates one SPARC instruction line.
func decode(ln asm.Line) (asm.Instr, error) {
	ins := asm.Instr{Op: ln.Op, Line: ln.Num}
	want := func(n int) error {
		if len(ln.Args) != n {
			return errf(ln.Num, "%s takes %d operands, got %d", ln.Op, n, len(ln.Args))
		}
		return nil
	}
	switch {
	case regOps[ln.Op]:
		if err := want(3); err != nil {
			return ins, err
		}
		rs1, err := regOperand(ln.Num, ln.Args[0])
		if err != nil {
			return ins, err
		}
		rs2, err := regOrImm13(ln.Num, ln.Args[1])
		if err != nil {
			return ins, err
		}
		rd, err := regOperand(ln.Num, ln.Args[2])
		if err != nil {
			return ins, err
		}
		ins.Args = []asm.Arg{rs1, rs2, rd}
	case ln.Op == "ld":
		if err := want(2); err != nil {
			return ins, err
		}
		m, err := memOperand(ln.Num, ln.Args[0])
		if err != nil {
			return ins, err
		}
		rd, err := regOperand(ln.Num, ln.Args[1])
		if err != nil {
			return ins, err
		}
		ins.Args = []asm.Arg{m, rd}
	case ln.Op == "st":
		if err := want(2); err != nil {
			return ins, err
		}
		rs, err := regOperand(ln.Num, ln.Args[0])
		if err != nil {
			return ins, err
		}
		m, err := memOperand(ln.Num, ln.Args[1])
		if err != nil {
			return ins, err
		}
		ins.Args = []asm.Arg{rs, m}
	case ln.Op == "set":
		if err := want(2); err != nil {
			return ins, err
		}
		var a asm.Arg
		if v, ok := asm.ParseInt(ln.Args[0]); ok {
			a = asm.Arg{Kind: asm.Imm, Imm: v, Raw: ln.Args[0]}
		} else if asm.DefaultValidLabel(ln.Args[0]) {
			a = asm.Arg{Kind: asm.Sym, Sym: ln.Args[0], Raw: ln.Args[0]}
		} else {
			return ins, errf(ln.Num, "bad set source %q", ln.Args[0])
		}
		rd, err := regOperand(ln.Num, ln.Args[1])
		if err != nil {
			return ins, err
		}
		ins.Args = []asm.Arg{a, rd}
	case ln.Op == "cmp":
		if err := want(2); err != nil {
			return ins, err
		}
		rs1, err := regOperand(ln.Num, ln.Args[0])
		if err != nil {
			return ins, err
		}
		rs2, err := regOrImm13(ln.Num, ln.Args[1])
		if err != nil {
			return ins, err
		}
		ins.Args = []asm.Arg{rs1, rs2}
	case ln.Op == "b" || ln.Op == "call" || condBranches[ln.Op]:
		if err := want(1); err != nil {
			return ins, err
		}
		a, err := labelOperand(ln.Num, ln.Args[0])
		if err != nil {
			return ins, err
		}
		ins.Args = []asm.Arg{a}
	case ln.Op == "retl" || ln.Op == "nop":
		if err := want(0); err != nil {
			return ins, err
		}
	default:
		return ins, errf(ln.Num, "unknown opcode %q", ln.Op)
	}
	return ins, nil
}
