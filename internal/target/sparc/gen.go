package sparc

import (
	"fmt"
	"strings"

	"srcg/internal/asm"
	"srcg/internal/cc"
	"srcg/internal/ir"
)

// compileC lowers mini-C to SPARC assembly. All named values live in frame
// slots below %fp; expressions are evaluated in the %l registers; %o0/%o1
// carry arguments to the millicode multiply/divide routines and to
// functions; %g1 stages global-variable addresses.
func compileC(src string) (string, error) {
	u, err := cc.CompileUnit(src)
	if err != nil {
		return "", err
	}
	g := &gen{unit: u}
	for _, f := range u.Funcs {
		if err := g.genFunc(f); err != nil {
			return "", err
		}
	}
	for _, gl := range u.Globals {
		g.raw("\t.comm " + gl.Name + ", 4")
	}
	for _, s := range u.Strings {
		g.raw(s.Label + ":\t.asciz \"" + asm.EscapeString(s.Value) + "\"")
	}
	return g.buf.String(), nil
}

// pool is the expression-temporary allocation order.
var pool = []string{"%l0", "%l1", "%l2", "%l3", "%l4", "%l5", "%l6", "%l7"}

// maxScratch frame slots hold values that must survive a nested call.
const maxScratch = 4

type gen struct {
	buf     strings.Builder
	unit    *ir.Unit
	fn      *ir.Func
	busy    map[string]bool
	nparams int
	nslots  int
	frame   int
	scratch int
}

func (g *gen) raw(s string)                          { g.buf.WriteString(s + "\n") }
func (g *gen) ins(f string, a ...interface{})        { g.raw("\t" + fmt.Sprintf(f, a...)) }
func (g *gen) label(name string)                     { g.raw(name + ":") }
func (g *gen) errf(f string, a ...interface{}) error { return fmt.Errorf("sparc-cc: "+f, a...) }

func (g *gen) alloc() (string, bool) {
	for _, r := range pool {
		if !g.busy[r] {
			g.busy[r] = true
			return r, true
		}
	}
	return "", false
}

func (g *gen) release(r string) { delete(g.busy, r) }

func (g *gen) freeCount() int {
	n := 0
	for _, r := range pool {
		if !g.busy[r] {
			n++
		}
	}
	return n
}

// mem renders a register-relative memory operand.
func mem(base string, disp int) string {
	switch {
	case disp == 0:
		return "[" + base + "]"
	case disp > 0:
		return fmt.Sprintf("[%s+%d]", base, disp)
	}
	return fmt.Sprintf("[%s%d]", base, disp)
}

// slot returns the frame-slot operand for a named local or parameter.
// Parameters occupy the first slots below %fp, locals the next.
func (g *gen) slot(l ir.Local) string {
	if l.IsParam {
		return mem("%fp", -4*(l.Index+1))
	}
	return mem("%fp", -4*(g.nparams+l.Index+1))
}

// scratchPush reserves a spill slot beyond the named slots.
func (g *gen) scratchPush() (string, error) {
	if g.scratch >= maxScratch {
		return "", g.errf("expression too deep: out of spill slots")
	}
	g.scratch++
	return mem("%fp", -4*(g.nslots+g.scratch)), nil
}

func (g *gen) scratchPop() { g.scratch-- }

// isData reports whether name is a data symbol rather than a function.
func (g *gen) isData(name string) bool {
	for _, f := range g.unit.Funcs {
		if f.Name == name {
			return false
		}
	}
	return true
}

// isLeaf reports whether n can be loaded into a register without any
// temporaries: a constant, a named load, or an address.
func (g *gen) isLeaf(n *ir.Node) bool {
	switch n.Op {
	case ir.Const, ir.Addr:
		return true
	case ir.Load:
		return n.Kids[0].Op == ir.Addr
	}
	return false
}

// delayable reports whether n loads into a register with one instruction,
// making it legal cargo for a call's delay slot.
func (g *gen) delayable(n *ir.Node) bool {
	if n.Op == ir.Const {
		return true
	}
	if n.Op == ir.Load && n.Kids[0].Op == ir.Addr {
		_, isLocal := g.fn.LookupLocal(n.Kids[0].Name)
		return isLocal
	}
	return false
}

// loadLeaf emits code placing leaf n into register r.
func (g *gen) loadLeaf(n *ir.Node, r string) error {
	switch n.Op {
	case ir.Const:
		g.ins("set %d, %s", n.Value, r)
	case ir.Load:
		name := n.Kids[0].Name
		if l, isLocal := g.fn.LookupLocal(name); isLocal {
			g.ins("ld %s, %s", g.slot(l), r)
		} else {
			g.ins("set %s, %s", name, r)
			g.ins("ld %s, %s", mem(r, 0), r)
		}
	case ir.Addr:
		if l, isLocal := g.fn.LookupLocal(n.Name); isLocal {
			off := -4 * (l.Index + 1)
			if !l.IsParam {
				off = -4 * (g.nparams + l.Index + 1)
			}
			g.ins("add %%fp, %d, %s", off, r)
		} else {
			g.ins("set %s, %s", n.Name, r)
		}
	default:
		return g.errf("not a leaf: %s", n)
	}
	return nil
}

// dangerous reports whether evaluating n routes through the %o registers —
// a function call or a millicode multiply/divide anywhere inside.
func dangerous(n *ir.Node) bool {
	if n == nil {
		return false
	}
	if n.Op == ir.Call || n.Op == ir.Mul || n.Op == ir.Div || n.Op == ir.Mod {
		return true
	}
	for _, k := range n.Kids {
		if dangerous(k) {
			return true
		}
	}
	return false
}

func (g *gen) genFunc(f *ir.Func) error {
	g.fn = f
	g.busy = map[string]bool{}
	g.scratch = 0
	g.nparams = 0
	nlocals := 0
	for _, l := range f.Locals {
		if l.IsParam {
			g.nparams++
		} else {
			nlocals++
		}
	}
	if g.nparams > 3 {
		return g.errf("%s: more than 3 parameters", f.Name)
	}
	g.nslots = g.nparams + nlocals
	g.frame = 8 + 4*g.nslots + 4*maxScratch
	g.raw("\t.globl " + f.Name)
	g.label(f.Name)
	g.ins("add %%sp, %d, %%sp", -g.frame)
	g.ins("st %%o7, [%%sp]")
	g.ins("st %%fp, [%%sp+4]")
	g.ins("add %%sp, %d, %%fp", g.frame)
	for _, l := range f.Locals {
		if l.IsParam {
			g.ins("st %%o%d, %s", l.Index, g.slot(l))
		}
	}
	for _, st := range f.Body {
		if err := g.genStmt(st); err != nil {
			return err
		}
	}
	if !endsFlow(f.Body) {
		g.epilogue()
	}
	return nil
}

// endsFlow reports whether the function body already ends in a return or a
// call to exit, making a trailing epilogue dead code.
func endsFlow(body []*ir.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	last := body[len(body)-1]
	if last.Kind == ir.SRet {
		return true
	}
	return last.Kind == ir.SExpr && last.Val != nil && last.Val.Op == ir.Call && last.Val.Name == "exit"
}

func (g *gen) epilogue() {
	g.ins("ld [%%sp], %%o7")
	g.ins("ld [%%sp+4], %%fp")
	g.ins("add %%sp, %d, %%sp", g.frame)
	g.ins("retl")
}

func (g *gen) genStmt(st *ir.Stmt) error {
	switch st.Kind {
	case ir.SLabel:
		g.label(st.Target)
	case ir.SGoto:
		g.ins("b %s", st.Target)
	case ir.SBranch:
		return g.genBranch(st)
	case ir.SStore:
		return g.genStore(st.Addr, st.Val)
	case ir.SExpr:
		if st.Val != nil && st.Val.Op == ir.Call {
			return g.genCall(st.Val)
		}
	case ir.SRet:
		if st.Val != nil {
			if g.isLeaf(st.Val) {
				if err := g.loadLeaf(st.Val, "%o0"); err != nil {
					return err
				}
			} else {
				r, err := g.evalReg(st.Val)
				if err != nil {
					return err
				}
				g.ins("or %s, %%g0, %%o0", r)
				g.release(r)
			}
		}
		g.epilogue()
	}
	return nil
}

var branchOps = map[ir.Rel]string{
	ir.EQ: "be", ir.NE: "bne", ir.LT: "bl", ir.LE: "ble", ir.GT: "bg", ir.GE: "bge",
}

func (g *gen) genBranch(st *ir.Stmt) error {
	rA, err := g.evalReg(st.A)
	if err != nil {
		return err
	}
	switch {
	case st.B.Op == ir.Const && st.B.Value == 0:
		g.ins("cmp %s, %%g0", rA)
	case st.B.Op == ir.Const && st.B.Value >= -4096 && st.B.Value <= 4095:
		g.ins("cmp %s, %d", rA, st.B.Value)
	default:
		rB, err := g.evalReg(st.B)
		if err != nil {
			return err
		}
		g.ins("cmp %s, %s", rA, rB)
		g.release(rB)
	}
	g.release(rA)
	g.ins("%s %s", branchOps[st.Rel], st.Target)
	return nil
}

func (g *gen) genStore(addr, val *ir.Node) error {
	switch {
	case val.Op == ir.Call:
		if err := g.genCall(val); err != nil {
			return err
		}
		return g.storeReg("%o0", addr)
	case val.Op == ir.Mul || val.Op == ir.Div || val.Op == ir.Mod:
		if err := g.mulCall(val); err != nil {
			return err
		}
		return g.storeReg("%o0", addr)
	case g.isLeaf(val):
		r, ok := g.alloc()
		if !ok {
			return g.errf("register pool exhausted")
		}
		if err := g.loadLeaf(val, r); err != nil {
			return err
		}
		err := g.storeReg(r, addr)
		g.release(r)
		return err
	default:
		r, err := g.evalReg(val)
		if err != nil {
			return err
		}
		err = g.storeReg(r, addr)
		g.release(r)
		return err
	}
}

// storeReg stores register r to the location named by addr: a frame slot,
// a global (staged through %g1), or a computed pointer.
func (g *gen) storeReg(r string, addr *ir.Node) error {
	if addr.Op == ir.Addr {
		if l, isLocal := g.fn.LookupLocal(addr.Name); isLocal {
			g.ins("st %s, %s", r, g.slot(l))
			return nil
		}
		g.ins("set %s, %%g1", addr.Name)
		g.ins("st %s, [%%g1]", r)
		return nil
	}
	ra, err := g.evalReg(addr)
	if err != nil {
		return err
	}
	g.ins("st %s, %s", r, mem(ra, 0))
	g.release(ra)
	return nil
}

var binOps = map[ir.Op]string{
	ir.Add: "add", ir.Sub: "sub", ir.And: "and", ir.Or: "or", ir.Xor: "xor",
	ir.Shl: "sll", ir.Shr: "sra",
}

// evalReg evaluates n into a freshly allocated %l register.
func (g *gen) evalReg(n *ir.Node) (string, error) {
	switch {
	case g.isLeaf(n):
		r, ok := g.alloc()
		if !ok {
			return "", g.errf("register pool exhausted")
		}
		return r, g.loadLeaf(n, r)
	case n.Op == ir.Load: // *p as an rvalue
		r, err := g.evalReg(n.Kids[0])
		if err != nil {
			return "", err
		}
		g.ins("ld %s, %s", mem(r, 0), r)
		return r, nil
	case n.Op == ir.Neg:
		r, err := g.evalReg(n.Kids[0])
		if err != nil {
			return "", err
		}
		g.ins("sub %%g0, %s, %s", r, r)
		return r, nil
	case n.Op == ir.Not:
		r, err := g.evalReg(n.Kids[0])
		if err != nil {
			return "", err
		}
		g.ins("xnor %s, %%g0, %s", r, r)
		return r, nil
	case n.Op == ir.Mul || n.Op == ir.Div || n.Op == ir.Mod:
		if err := g.mulCall(n); err != nil {
			return "", err
		}
		r, ok := g.alloc()
		if !ok {
			return "", g.errf("register pool exhausted")
		}
		g.ins("or %%o0, %%g0, %s", r)
		return r, nil
	case n.Op == ir.Call:
		if err := g.genCall(n); err != nil {
			return "", err
		}
		r, ok := g.alloc()
		if !ok {
			return "", g.errf("register pool exhausted")
		}
		g.ins("or %%o0, %%g0, %s", r)
		return r, nil
	case n.Op.IsBinary():
		return g.binary(n)
	}
	return "", g.errf("cannot evaluate %s", n)
}

func (g *gen) binary(n *ir.Node) (string, error) {
	op, ok := binOps[n.Op]
	if !ok {
		return "", g.errf("no opcode for %s", n.Op)
	}
	l, err := g.evalReg(n.Kids[0])
	if err != nil {
		return "", err
	}
	if n.Kids[1].ContainsCall() || g.freeCount() == 0 {
		// Spill the left value into the frame across the right-hand
		// evaluation: a function call would clobber every %l register.
		sl, err := g.scratchPush()
		if err != nil {
			return "", err
		}
		g.ins("st %s, %s", l, sl)
		g.release(l)
		r, err := g.evalReg(n.Kids[1])
		if err != nil {
			return "", err
		}
		l2, ok := g.alloc()
		if !ok {
			return "", g.errf("register pool exhausted")
		}
		g.ins("ld %s, %s", sl, l2)
		g.scratchPop()
		g.ins("%s %s, %s, %s", op, l2, r, l2)
		g.release(r)
		return l2, nil
	}
	r, err := g.evalReg(n.Kids[1])
	if err != nil {
		return "", err
	}
	g.ins("%s %s, %s, %s", op, l, r, l)
	g.release(r)
	return l, nil
}

var milliOps = map[ir.Op]string{ir.Mul: ".mul", ir.Div: ".div", ir.Mod: ".rem"}

// mulCall evaluates a multiply/divide/remainder through the millicode
// routines: operands in %o0/%o1, result in %o0. When the second operand is
// a one-instruction leaf it rides in the call's delay slot.
func (g *gen) mulCall(n *ir.Node) error {
	op := milliOps[n.Op]
	if dangerous(n.Kids[1]) {
		// The right-hand side passes through %o0/%o1 itself: evaluate both
		// sides into %l registers first.
		l, err := g.evalReg(n.Kids[0])
		if err != nil {
			return err
		}
		if n.Kids[1].ContainsCall() {
			sl, err := g.scratchPush()
			if err != nil {
				return err
			}
			g.ins("st %s, %s", l, sl)
			g.release(l)
			r, err := g.evalReg(n.Kids[1])
			if err != nil {
				return err
			}
			l2, ok := g.alloc()
			if !ok {
				return g.errf("register pool exhausted")
			}
			g.ins("ld %s, %s", sl, l2)
			g.scratchPop()
			g.ins("or %s, %%g0, %%o0", l2)
			g.ins("or %s, %%g0, %%o1", r)
			g.release(l2)
			g.release(r)
		} else {
			r, err := g.evalReg(n.Kids[1])
			if err != nil {
				return err
			}
			g.ins("or %s, %%g0, %%o0", l)
			g.ins("or %s, %%g0, %%o1", r)
			g.release(l)
			g.release(r)
		}
		g.ins("call %s", op)
		g.ins("nop")
		return nil
	}
	if g.isLeaf(n.Kids[0]) {
		if err := g.loadLeaf(n.Kids[0], "%o0"); err != nil {
			return err
		}
	} else {
		r, err := g.evalReg(n.Kids[0])
		if err != nil {
			return err
		}
		g.ins("or %s, %%g0, %%o0", r)
		g.release(r)
	}
	if g.delayable(n.Kids[1]) {
		g.ins("call %s", op)
		return g.loadLeaf(n.Kids[1], "%o1")
	}
	if g.isLeaf(n.Kids[1]) {
		if err := g.loadLeaf(n.Kids[1], "%o1"); err != nil {
			return err
		}
	} else {
		r, err := g.evalReg(n.Kids[1])
		if err != nil {
			return err
		}
		g.ins("or %s, %%g0, %%o1", r)
		g.release(r)
	}
	g.ins("call %s", op)
	g.ins("nop")
	return nil
}

// genCall loads arguments into %o0.., with the last one in the delay slot
// when it is a one-instruction leaf. Builtins (printf, exit) always take
// their arguments before the call, leaving a nop in the slot.
func (g *gen) genCall(n *ir.Node) error {
	if len(n.Kids) > 3 {
		return g.errf("call %s: more than 3 arguments", n.Name)
	}
	builtin := n.Name == "printf" || n.Name == "exit"
	anyDanger := false
	for _, k := range n.Kids {
		if dangerous(k) {
			anyDanger = true
		}
	}
	if anyDanger && len(n.Kids) > 1 {
		// Stage every argument through the frame: a nested call would
		// clobber already-loaded %o registers.
		slots := make([]string, len(n.Kids))
		for i, k := range n.Kids {
			r, err := g.evalReg(k)
			if err != nil {
				return err
			}
			sl, err := g.scratchPush()
			if err != nil {
				return err
			}
			g.ins("st %s, %s", r, sl)
			g.release(r)
			slots[i] = sl
		}
		for i, sl := range slots {
			g.ins("ld %s, %%o%d", sl, i)
		}
		for range slots {
			g.scratchPop()
		}
		g.ins("call %s", n.Name)
		g.ins("nop")
		return nil
	}
	loadArg := func(i int) error {
		k := n.Kids[i]
		dst := fmt.Sprintf("%%o%d", i)
		if g.isLeaf(k) {
			return g.loadLeaf(k, dst)
		}
		r, err := g.evalReg(k)
		if err != nil {
			return err
		}
		g.ins("or %s, %%g0, %s", r, dst)
		g.release(r)
		return nil
	}
	nargs := len(n.Kids)
	for i := 0; i < nargs-1; i++ {
		if err := loadArg(i); err != nil {
			return err
		}
	}
	if nargs > 0 && !builtin && g.delayable(n.Kids[nargs-1]) {
		g.ins("call %s", n.Name)
		return g.loadLeaf(n.Kids[nargs-1], fmt.Sprintf("%%o%d", nargs-1))
	}
	if nargs > 0 {
		if err := loadArg(nargs - 1); err != nil {
			return err
		}
	}
	g.ins("call %s", n.Name)
	g.ins("nop")
	return nil
}
