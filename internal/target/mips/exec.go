package mips

import (
	"fmt"

	"srcg/internal/asm"
	"srcg/internal/machine"
)

// Execute implements target.Toolchain. $0 is hardwired to zero; mult/div
// deposit their results in the hidden hi/lo registers, which only
// mflo/mfhi can observe.
func (t *Toolchain) Execute(img *asm.Image) (string, error) {
	c := machine.NewCPU()
	c.Mem.AddBound(machine.DataBase, img.DataEnd)
	c.Mem.AddBound(machine.StackTop-machine.StackSize, machine.StackTop)
	for a, b := range img.Data {
		c.Mem.Store(a, 1, uint64(b))
	}
	for r := range registers {
		c.Regs[r] = 0
	}
	c.Regs["$sp"] = machine.StackTop
	c.PC = img.Entry
	for !c.Halted {
		if err := c.Tick(); err != nil {
			return c.Out.String(), err
		}
		if c.PC < 0 || c.PC >= len(img.Instrs) {
			return c.Out.String(), fmt.Errorf("mips: PC %d outside code [0,%d)", c.PC, len(img.Instrs))
		}
		next, err := step(c, img, img.Instrs[c.PC])
		if err != nil {
			return c.Out.String(), err
		}
		if err := c.Mem.Fault(); err != nil {
			return c.Out.String(), err
		}
		c.PC = next
	}
	return c.Out.String(), nil
}

func wrap32(v int64) int64 { return int64(int32(v)) }

func getReg(c *machine.CPU, r string) int64 {
	if r == "$0" {
		return 0
	}
	return c.Regs[r]
}

func setReg(c *machine.CPU, r string, v int64) {
	if r == "$0" {
		return
	}
	c.Regs[r] = wrap32(v)
}

func operand(c *machine.CPU, a asm.Arg) int64 {
	if a.Kind == asm.Imm {
		return a.Imm
	}
	return getReg(c, a.Reg)
}

// ea computes the address of a memory operand: base+disp or absolute sym.
func ea(c *machine.CPU, img *asm.Image, a asm.Arg) (uint64, error) {
	if a.Reg != "" {
		return uint64(getReg(c, a.Reg) + a.Imm), nil
	}
	addr, ok := img.Resolve(a.Sym)
	if !ok {
		return 0, fmt.Errorf("mips: undefined data symbol %q", a.Sym)
	}
	return addr, nil
}

func codeLabel(img *asm.Image, sym string) (int, error) {
	idx, ok := img.Labels[sym]
	if !ok {
		return 0, fmt.Errorf("mips: undefined code label %q", sym)
	}
	return idx, nil
}

func step(c *machine.CPU, img *asm.Image, ins asm.Instr) (int, error) {
	next := c.PC + 1
	switch ins.Op {
	case "addu", "subu", "add", "and", "or", "xor", "nor", "sllv", "srav":
		a := getReg(c, ins.Args[1].Reg)
		b := operand(c, ins.Args[2])
		var r int64
		switch ins.Op {
		case "add", "addu":
			r = a + b
		case "subu":
			r = a - b
		case "and":
			r = a & b
		case "or":
			r = a | b
		case "xor":
			r = a ^ b
		case "nor":
			r = ^(a | b)
		case "sllv":
			r = a << (uint(b) & 31)
		case "srav":
			r = int64(int32(a) >> (uint(b) & 31))
		}
		setReg(c, ins.Args[0].Reg, r)
	case "lw":
		addr, err := ea(c, img, ins.Args[1])
		if err != nil {
			return 0, err
		}
		setReg(c, ins.Args[0].Reg, machine.SignExtend(c.Mem.Load(addr, 4), 32))
	case "sw":
		addr, err := ea(c, img, ins.Args[1])
		if err != nil {
			return 0, err
		}
		c.Mem.Store(addr, 4, machine.Truncate(getReg(c, ins.Args[0].Reg), 32))
	case "li":
		setReg(c, ins.Args[0].Reg, ins.Args[1].Imm)
	case "la":
		addr, ok := img.Resolve(ins.Args[1].Sym)
		if !ok {
			return 0, fmt.Errorf("mips: undefined symbol %q", ins.Args[1].Sym)
		}
		setReg(c, ins.Args[0].Reg, int64(addr))
	case "mult":
		full := int64(int32(getReg(c, ins.Args[0].Reg))) * int64(int32(getReg(c, ins.Args[1].Reg)))
		c.Hidden["lo"] = wrap32(full)
		c.Hidden["hi"] = wrap32(full >> 32)
	case "div":
		a, b := int32(getReg(c, ins.Args[0].Reg)), int32(getReg(c, ins.Args[1].Reg))
		if b == 0 {
			return 0, fmt.Errorf("mips: division by zero")
		}
		c.Hidden["lo"] = int64(a / b)
		c.Hidden["hi"] = int64(a % b)
	case "mflo":
		setReg(c, ins.Args[0].Reg, c.Hidden["lo"])
	case "mfhi":
		setReg(c, ins.Args[0].Reg, c.Hidden["hi"])
	case "beq", "bne", "blt", "ble", "bgt", "bge":
		a := getReg(c, ins.Args[0].Reg)
		b := getReg(c, ins.Args[1].Reg)
		taken := false
		switch ins.Op {
		case "beq":
			taken = a == b
		case "bne":
			taken = a != b
		case "blt":
			taken = a < b
		case "ble":
			taken = a <= b
		case "bgt":
			taken = a > b
		case "bge":
			taken = a >= b
		}
		if taken {
			return codeLabel(img, ins.Args[2].Sym)
		}
	case "j":
		return codeLabel(img, ins.Args[0].Sym)
	case "jal":
		sym := ins.Args[0].Sym
		if _, ok := img.Labels[sym]; !ok && asm.Builtins[sym] {
			c.Regs["$31"] = int64(c.PC + 1)
			if err := builtin(c, sym); err != nil {
				return 0, err
			}
			return c.PC + 1, nil
		}
		idx, err := codeLabel(img, sym)
		if err != nil {
			return 0, err
		}
		c.Regs["$31"] = int64(c.PC + 1)
		return idx, nil
	case "jr":
		return int(getReg(c, ins.Args[0].Reg)), nil
	default:
		return 0, fmt.Errorf("mips: unimplemented opcode %q", ins.Op)
	}
	return next, nil
}

// builtin services printf and exit with arguments in $4..$7.
func builtin(c *machine.CPU, sym string) error {
	switch sym {
	case "printf":
		format, err := c.Mem.LoadCString(uint64(c.Regs["$4"]))
		if err != nil {
			return err
		}
		var args []int64
		for i := 0; i < directives(format); i++ {
			args = append(args, getReg(c, fmt.Sprintf("$%d", 5+i)))
		}
		return c.Printf(format, args)
	case "exit":
		c.Exit = int(int32(c.Regs["$4"]))
		c.Halted = true
		return nil
	}
	return fmt.Errorf("mips: unsupported builtin %q", sym)
}

// directives counts the argument-consuming conversions in a printf format.
func directives(format string) int {
	n := 0
	for i := 0; i+1 < len(format); i++ {
		if format[i] == '%' {
			if format[i+1] == 'i' || format[i+1] == 'd' {
				n++
			}
			i++
		}
	}
	return n
}
