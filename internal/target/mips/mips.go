// Package mips simulates a MIPS R3000-class toolchain: "#" comments,
// dollar-numbered registers, three-address register operations, li/la
// constant synthesis, absolute-symbol memory operands, and the hidden
// hi/lo registers behind mult/div (read back with mflo/mfhi).
package mips

import (
	"strconv"
	"strings"

	"srcg/internal/asm"
)

// Toolchain is the simulated MIPS cc/as/ld/run bundle.
type Toolchain struct {
	dialect asm.Dialect
}

// New returns the simulated MIPS toolchain.
func New() *Toolchain {
	t := &Toolchain{}
	t.dialect = asm.Dialect{
		Arch: "mips",
		Syntax: asm.Syntax{
			CommentChars: []string{"#"},
			LabelSuffix:  ":",
		},
		Decode: decode,
	}
	return t
}

// Name implements target.Toolchain.
func (t *Toolchain) Name() string { return "mips" }

// CompileC implements target.Toolchain.
func (t *Toolchain) CompileC(src string) (string, error) { return compileC(src) }

// Assemble implements target.Toolchain.
func (t *Toolchain) Assemble(text string) (*asm.Unit, error) { return t.dialect.ParseUnit(text) }

// Link implements target.Toolchain.
func (t *Toolchain) Link(units []*asm.Unit) (*asm.Image, error) {
	img, err := asm.Link("mips", 4, units)
	if err != nil {
		return nil, err
	}
	if err := img.CheckUndefined(); err != nil {
		return nil, err
	}
	return img, nil
}

// registers is the MIPS register file: $0..$31 plus the $sp/$fp aliases.
// $0 reads as zero.
var registers = map[string]bool{"$sp": true, "$fp": true}

func init() {
	for i := 0; i < 32; i++ {
		registers["$"+strconv.Itoa(i)] = true
	}
}

func errf(line int, format string, args ...interface{}) error {
	return asm.Errf("mips", line, format, args...)
}

func regOperand(line int, s string) (asm.Arg, error) {
	if !registers[s] {
		return asm.Arg{}, errf(line, "unknown register %q", s)
	}
	return asm.Arg{Kind: asm.Reg, Reg: s, Raw: s}, nil
}

// memOperand decodes disp($reg), ($reg), or a bare non-numeric symbol
// (absolute reference). Bare integers are rejected.
func memOperand(line int, s string) (asm.Arg, error) {
	if i := strings.IndexByte(s, '('); i >= 0 {
		if len(s) == 0 || s[len(s)-1] != ')' {
			return asm.Arg{}, errf(line, "bad memory operand %q", s)
		}
		disp := int64(0)
		if i > 0 {
			v, ok := asm.ParseInt(s[:i])
			if !ok {
				return asm.Arg{}, errf(line, "bad displacement in %q", s)
			}
			disp = v
		}
		base := s[i+1 : len(s)-1]
		if !registers[base] {
			return asm.Arg{}, errf(line, "bad base register in %q", s)
		}
		return asm.Arg{Kind: asm.Mem, Reg: base, Imm: disp, Raw: s}, nil
	}
	if _, ok := asm.ParseInt(s); ok {
		return asm.Arg{}, errf(line, "bare integer memory operand %q", s)
	}
	if s != "" && asm.DefaultValidLabel(s) && s[0] != '$' {
		return asm.Arg{Kind: asm.Mem, Sym: s, Raw: s}, nil
	}
	return asm.Arg{}, errf(line, "bad memory operand %q", s)
}

// regOrImm decodes the third source of addu/subu: a register or a (full
// range) immediate.
func regOrImm(line int, s string) (asm.Arg, error) {
	if registers[s] {
		return asm.Arg{Kind: asm.Reg, Reg: s, Raw: s}, nil
	}
	if v, ok := asm.ParseInt(s); ok {
		return asm.Arg{Kind: asm.Imm, Imm: v, Raw: s}, nil
	}
	return asm.Arg{}, errf(line, "bad operand %q", s)
}

func labelOperand(line int, s string) (asm.Arg, error) {
	if _, ok := asm.ParseInt(s); ok {
		return asm.Arg{}, errf(line, "numeric branch target %q", s)
	}
	if s == "" || !asm.DefaultValidLabel(s) || s[0] == '$' {
		return asm.Arg{}, errf(line, "bad branch target %q", s)
	}
	return asm.Arg{Kind: asm.Sym, Sym: s, Raw: s}, nil
}

var regOps = map[string]bool{
	"add": true, "and": true, "or": true, "xor": true, "nor": true,
	"sllv": true, "srav": true,
}

var immOps = map[string]bool{"addu": true, "subu": true}

var branches = map[string]bool{
	"beq": true, "bne": true, "blt": true, "ble": true, "bgt": true, "bge": true,
}

// decode validates one MIPS instruction line.
func decode(ln asm.Line) (asm.Instr, error) {
	ins := asm.Instr{Op: ln.Op, Line: ln.Num}
	want := func(n int) error {
		if len(ln.Args) != n {
			return errf(ln.Num, "%s takes %d operands, got %d", ln.Op, n, len(ln.Args))
		}
		return nil
	}
	reg := func(i int) (asm.Arg, error) { return regOperand(ln.Num, ln.Args[i]) }
	switch {
	case regOps[ln.Op] || immOps[ln.Op]:
		if err := want(3); err != nil {
			return ins, err
		}
		rd, err := reg(0)
		if err != nil {
			return ins, err
		}
		rs, err := reg(1)
		if err != nil {
			return ins, err
		}
		var rt asm.Arg
		if immOps[ln.Op] {
			rt, err = regOrImm(ln.Num, ln.Args[2])
		} else {
			rt, err = reg(2)
		}
		if err != nil {
			return ins, err
		}
		ins.Args = []asm.Arg{rd, rs, rt}
	case ln.Op == "lw" || ln.Op == "sw":
		if err := want(2); err != nil {
			return ins, err
		}
		r, err := reg(0)
		if err != nil {
			return ins, err
		}
		m, err := memOperand(ln.Num, ln.Args[1])
		if err != nil {
			return ins, err
		}
		ins.Args = []asm.Arg{r, m}
	case ln.Op == "li":
		if err := want(2); err != nil {
			return ins, err
		}
		rd, err := reg(0)
		if err != nil {
			return ins, err
		}
		v, ok := asm.ParseInt(ln.Args[1])
		if !ok {
			return ins, errf(ln.Num, "bad immediate %q", ln.Args[1])
		}
		ins.Args = []asm.Arg{rd, {Kind: asm.Imm, Imm: v, Raw: ln.Args[1]}}
	case ln.Op == "la":
		if err := want(2); err != nil {
			return ins, err
		}
		rd, err := reg(0)
		if err != nil {
			return ins, err
		}
		if _, isNum := asm.ParseInt(ln.Args[1]); isNum || !asm.DefaultValidLabel(ln.Args[1]) {
			return ins, errf(ln.Num, "bad address %q", ln.Args[1])
		}
		ins.Args = []asm.Arg{rd, {Kind: asm.Sym, Sym: ln.Args[1], Raw: ln.Args[1]}}
	case ln.Op == "mult" || ln.Op == "div":
		if err := want(2); err != nil {
			return ins, err
		}
		rs, err := reg(0)
		if err != nil {
			return ins, err
		}
		rt, err := reg(1)
		if err != nil {
			return ins, err
		}
		ins.Args = []asm.Arg{rs, rt}
	case ln.Op == "mflo" || ln.Op == "mfhi" || ln.Op == "jr":
		if err := want(1); err != nil {
			return ins, err
		}
		r, err := reg(0)
		if err != nil {
			return ins, err
		}
		ins.Args = []asm.Arg{r}
	case branches[ln.Op]:
		if err := want(3); err != nil {
			return ins, err
		}
		rs, err := reg(0)
		if err != nil {
			return ins, err
		}
		rt, err := reg(1)
		if err != nil {
			return ins, err
		}
		lab, err := labelOperand(ln.Num, ln.Args[2])
		if err != nil {
			return ins, err
		}
		ins.Args = []asm.Arg{rs, rt, lab}
	case ln.Op == "j" || ln.Op == "jal":
		if err := want(1); err != nil {
			return ins, err
		}
		lab, err := labelOperand(ln.Num, ln.Args[0])
		if err != nil {
			return ins, err
		}
		ins.Args = []asm.Arg{lab}
	default:
		return ins, errf(ln.Num, "unknown opcode %q", ln.Op)
	}
	return ins, nil
}
