package mips

import (
	"fmt"
	"strings"

	"srcg/internal/asm"
	"srcg/internal/cc"
	"srcg/internal/ir"
)

// compileC lowers mini-C to MIPS assembly. Named values live in frame
// slots below $fp; expressions are evaluated in $8..$15 with a fresh
// destination register per operation; $4..$7 carry arguments and $2 the
// return value. Multiplication and division run through the hidden hi/lo
// registers via mult/div + mflo/mfhi.
func compileC(src string) (string, error) {
	u, err := cc.CompileUnit(src)
	if err != nil {
		return "", err
	}
	g := &gen{unit: u}
	for _, f := range u.Funcs {
		if err := g.genFunc(f); err != nil {
			return "", err
		}
	}
	for _, gl := range u.Globals {
		g.raw("\t.comm " + gl.Name + ", 4")
	}
	for _, s := range u.Strings {
		g.raw(s.Label + ":\t.asciz \"" + asm.EscapeString(s.Value) + "\"")
	}
	return g.buf.String(), nil
}

// pool is the expression-temporary allocation order.
var pool = []string{"$8", "$9", "$10", "$11", "$12", "$13", "$14", "$15"}

// maxScratch frame slots hold values that must survive a nested call.
const maxScratch = 4

type gen struct {
	buf     strings.Builder
	unit    *ir.Unit
	fn      *ir.Func
	busy    map[string]bool
	nparams int
	nslots  int
	frame   int
	scratch int
}

func (g *gen) raw(s string)                          { g.buf.WriteString(s + "\n") }
func (g *gen) ins(f string, a ...interface{})        { g.raw("\t" + fmt.Sprintf(f, a...)) }
func (g *gen) label(name string)                     { g.raw(name + ":") }
func (g *gen) errf(f string, a ...interface{}) error { return fmt.Errorf("mips-cc: "+f, a...) }

func (g *gen) alloc() (string, bool) {
	for _, r := range pool {
		if !g.busy[r] {
			g.busy[r] = true
			return r, true
		}
	}
	return "", false
}

func (g *gen) release(r string) { delete(g.busy, r) }

func (g *gen) freeCount() int {
	n := 0
	for _, r := range pool {
		if !g.busy[r] {
			n++
		}
	}
	return n
}

// slotOff returns the $fp-relative offset of a named local or parameter.
func (g *gen) slotOff(l ir.Local) int {
	if l.IsParam {
		return -4 * (l.Index + 1)
	}
	return -4 * (g.nparams + l.Index + 1)
}

// slot renders the frame-slot operand for a named local or parameter.
func (g *gen) slot(l ir.Local) string {
	return fmt.Sprintf("%d($fp)", g.slotOff(l))
}

// scratchPush reserves a spill slot beyond the named slots.
func (g *gen) scratchPush() (string, error) {
	if g.scratch >= maxScratch {
		return "", g.errf("expression too deep: out of spill slots")
	}
	g.scratch++
	return fmt.Sprintf("%d($fp)", -4*(g.nslots+g.scratch)), nil
}

func (g *gen) scratchPop() { g.scratch-- }

// isLeaf reports whether n loads into a register without temporaries.
func (g *gen) isLeaf(n *ir.Node) bool {
	switch n.Op {
	case ir.Const, ir.Addr:
		return true
	case ir.Load:
		return n.Kids[0].Op == ir.Addr
	}
	return false
}

// loadLeaf emits code placing leaf n into register r.
func (g *gen) loadLeaf(n *ir.Node, r string) error {
	switch n.Op {
	case ir.Const:
		g.ins("li %s, %d", r, n.Value)
	case ir.Load:
		name := n.Kids[0].Name
		if l, isLocal := g.fn.LookupLocal(name); isLocal {
			g.ins("lw %s, %s", r, g.slot(l))
		} else {
			g.ins("lw %s, %s", r, name)
		}
	case ir.Addr:
		if l, isLocal := g.fn.LookupLocal(n.Name); isLocal {
			g.ins("addu %s, $fp, %d", r, g.slotOff(l))
		} else {
			g.ins("la %s, %s", r, n.Name)
		}
	default:
		return g.errf("not a leaf: %s", n)
	}
	return nil
}

func (g *gen) genFunc(f *ir.Func) error {
	g.fn = f
	g.busy = map[string]bool{}
	g.scratch = 0
	g.nparams = 0
	nlocals := 0
	for _, l := range f.Locals {
		if l.IsParam {
			g.nparams++
		} else {
			nlocals++
		}
	}
	if g.nparams > 3 {
		return g.errf("%s: more than 3 parameters", f.Name)
	}
	g.nslots = g.nparams + nlocals
	g.frame = 8 + 4*g.nslots + 4*maxScratch
	g.raw("\t.globl " + f.Name)
	g.label(f.Name)
	g.ins("subu $sp, $sp, %d", g.frame)
	g.ins("sw $31, %d($sp)", g.frame-4)
	g.ins("sw $fp, %d($sp)", g.frame-8)
	g.ins("addu $fp, $sp, %d", g.frame-8)
	for _, l := range f.Locals {
		if l.IsParam {
			g.ins("sw $%d, %s", 4+l.Index, g.slot(l))
		}
	}
	for _, st := range f.Body {
		if err := g.genStmt(st); err != nil {
			return err
		}
	}
	if !endsFlow(f.Body) {
		g.epilogue()
	}
	return nil
}

// endsFlow reports whether the function body already ends in a return or a
// call to exit, making a trailing epilogue dead code.
func endsFlow(body []*ir.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	last := body[len(body)-1]
	if last.Kind == ir.SRet {
		return true
	}
	return last.Kind == ir.SExpr && last.Val != nil && last.Val.Op == ir.Call && last.Val.Name == "exit"
}

func (g *gen) epilogue() {
	g.ins("lw $31, 4($fp)")
	g.ins("addu $sp, $fp, 8")
	g.ins("lw $fp, 0($fp)")
	g.ins("jr $31")
}

func (g *gen) genStmt(st *ir.Stmt) error {
	switch st.Kind {
	case ir.SLabel:
		g.label(st.Target)
	case ir.SGoto:
		g.ins("j %s", st.Target)
	case ir.SBranch:
		return g.genBranch(st)
	case ir.SStore:
		return g.genStore(st.Addr, st.Val)
	case ir.SExpr:
		if st.Val != nil && st.Val.Op == ir.Call {
			return g.genCall(st.Val)
		}
	case ir.SRet:
		if st.Val != nil {
			if g.isLeaf(st.Val) {
				if err := g.loadLeaf(st.Val, "$2"); err != nil {
					return err
				}
			} else {
				r, err := g.evalReg(st.Val)
				if err != nil {
					return err
				}
				g.ins("addu $2, %s, $0", r)
				g.release(r)
			}
		}
		g.epilogue()
	}
	return nil
}

var branchOps = map[ir.Rel]string{
	ir.EQ: "beq", ir.NE: "bne", ir.LT: "blt", ir.LE: "ble", ir.GT: "bgt", ir.GE: "bge",
}

func (g *gen) genBranch(st *ir.Stmt) error {
	rA, err := g.evalReg(st.A)
	if err != nil {
		return err
	}
	rB := "$0"
	if st.B.Op != ir.Const || st.B.Value != 0 {
		rB, err = g.evalReg(st.B)
		if err != nil {
			return err
		}
		defer g.release(rB)
	}
	g.release(rA)
	g.ins("%s %s, %s, %s", branchOps[st.Rel], rA, rB, st.Target)
	return nil
}

func (g *gen) genStore(addr, val *ir.Node) error {
	if val.Op == ir.Call {
		if err := g.genCall(val); err != nil {
			return err
		}
		return g.storeReg("$2", addr)
	}
	r, err := g.evalReg(val)
	if err != nil {
		return err
	}
	err = g.storeReg(r, addr)
	g.release(r)
	return err
}

// storeReg stores register r to the location named by addr.
func (g *gen) storeReg(r string, addr *ir.Node) error {
	if addr.Op == ir.Addr {
		if l, isLocal := g.fn.LookupLocal(addr.Name); isLocal {
			g.ins("sw %s, %s", r, g.slot(l))
		} else {
			g.ins("sw %s, %s", r, addr.Name)
		}
		return nil
	}
	ra, err := g.evalReg(addr)
	if err != nil {
		return err
	}
	g.ins("sw %s, 0(%s)", r, ra)
	g.release(ra)
	return nil
}

var binOps = map[ir.Op]string{
	ir.Add: "add", ir.Sub: "subu", ir.And: "and", ir.Or: "or", ir.Xor: "xor",
	ir.Shl: "sllv", ir.Shr: "srav",
}

// evalReg evaluates n into a freshly allocated pool register.
func (g *gen) evalReg(n *ir.Node) (string, error) {
	switch {
	case g.isLeaf(n):
		r, ok := g.alloc()
		if !ok {
			return "", g.errf("register pool exhausted")
		}
		return r, g.loadLeaf(n, r)
	case n.Op == ir.Load: // *p as an rvalue
		r, err := g.evalReg(n.Kids[0])
		if err != nil {
			return "", err
		}
		g.ins("lw %s, 0(%s)", r, r)
		return r, nil
	case n.Op == ir.Neg || n.Op == ir.Not:
		r, err := g.evalReg(n.Kids[0])
		if err != nil {
			return "", err
		}
		d, ok := g.alloc()
		if !ok {
			return "", g.errf("register pool exhausted")
		}
		if n.Op == ir.Neg {
			g.ins("subu %s, $0, %s", d, r)
		} else {
			g.ins("nor %s, %s, $0", d, r)
		}
		g.release(r)
		return d, nil
	case n.Op == ir.Mul || n.Op == ir.Div || n.Op == ir.Mod:
		return g.mulDiv(n)
	case n.Op == ir.Call:
		if err := g.genCall(n); err != nil {
			return "", err
		}
		r, ok := g.alloc()
		if !ok {
			return "", g.errf("register pool exhausted")
		}
		g.ins("addu %s, $2, $0", r)
		return r, nil
	case n.Op.IsBinary():
		return g.binary(n)
	}
	return "", g.errf("cannot evaluate %s", n)
}

// operands evaluates both children of a binary node, spilling the left
// value into the frame when the right one contains a call.
func (g *gen) operands(n *ir.Node) (string, string, error) {
	l, err := g.evalReg(n.Kids[0])
	if err != nil {
		return "", "", err
	}
	if n.Kids[1].ContainsCall() || g.freeCount() < 2 {
		sl, err := g.scratchPush()
		if err != nil {
			return "", "", err
		}
		g.ins("sw %s, %s", l, sl)
		g.release(l)
		r, err := g.evalReg(n.Kids[1])
		if err != nil {
			return "", "", err
		}
		l2, ok := g.alloc()
		if !ok {
			return "", "", g.errf("register pool exhausted")
		}
		g.ins("lw %s, %s", l2, sl)
		g.scratchPop()
		return l2, r, nil
	}
	r, err := g.evalReg(n.Kids[1])
	if err != nil {
		return "", "", err
	}
	return l, r, nil
}

func (g *gen) binary(n *ir.Node) (string, error) {
	op, ok := binOps[n.Op]
	if !ok {
		return "", g.errf("no opcode for %s", n.Op)
	}
	l, r, err := g.operands(n)
	if err != nil {
		return "", err
	}
	d, okd := g.alloc()
	if !okd {
		return "", g.errf("register pool exhausted")
	}
	g.ins("%s %s, %s, %s", op, d, l, r)
	g.release(l)
	g.release(r)
	return d, nil
}

// mulDiv routes multiplication and division through the hidden hi/lo
// registers: mult/div write them, mflo/mfhi read them back.
func (g *gen) mulDiv(n *ir.Node) (string, error) {
	l, r, err := g.operands(n)
	if err != nil {
		return "", err
	}
	if n.Op == ir.Mul {
		g.ins("mult %s, %s", l, r)
	} else {
		g.ins("div %s, %s", l, r)
	}
	d, ok := g.alloc()
	if !ok {
		return "", g.errf("register pool exhausted")
	}
	if n.Op == ir.Mod {
		g.ins("mfhi %s", d)
	} else {
		g.ins("mflo %s", d)
	}
	g.release(l)
	g.release(r)
	return d, nil
}

// genCall loads arguments into $4.., staging them through the frame when a
// later argument contains a nested call, then jumps with jal.
func (g *gen) genCall(n *ir.Node) error {
	if len(n.Kids) > 3 {
		return g.errf("call %s: more than 3 arguments", n.Name)
	}
	anyCall := false
	for _, k := range n.Kids {
		if k.ContainsCall() {
			anyCall = true
		}
	}
	if anyCall && len(n.Kids) > 1 {
		slots := make([]string, len(n.Kids))
		for i, k := range n.Kids {
			r, err := g.evalReg(k)
			if err != nil {
				return err
			}
			sl, err := g.scratchPush()
			if err != nil {
				return err
			}
			g.ins("sw %s, %s", r, sl)
			g.release(r)
			slots[i] = sl
		}
		for i, sl := range slots {
			g.ins("lw $%d, %s", 4+i, sl)
		}
		for range slots {
			g.scratchPop()
		}
	} else {
		for i, k := range n.Kids {
			dst := fmt.Sprintf("$%d", 4+i)
			if g.isLeaf(k) {
				if err := g.loadLeaf(k, dst); err != nil {
					return err
				}
			} else {
				r, err := g.evalReg(k)
				if err != nil {
					return err
				}
				g.ins("addu %s, %s, $0", dst, r)
				g.release(r)
			}
		}
	}
	g.ins("jal %s", n.Name)
	return nil
}
