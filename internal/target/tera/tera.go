// Package tera simulates the Tera computer's toolchain, whose assembler
// "uses a variant of Scheme" (the paper, §3.1). The compiler emits
// S-expressions rather than line-oriented instructions, and the assembler
// is a Scheme reader: it accepts any well-formed sequence of parenthesized
// forms and rejects everything else. The Lexer's line-and-label
// assumptions find nothing to grab onto, so syntax discovery fails
// gracefully — which is exactly what this target exists to demonstrate.
package tera

import (
	"fmt"
	"strings"

	"srcg/internal/asm"
	"srcg/internal/cc"
	"srcg/internal/ir"
)

// Toolchain is the simulated Tera compiler and Scheme-reader assembler.
// Linking and execution are not modelled; discovery never gets that far.
type Toolchain struct{}

// New returns the simulated Tera toolchain.
func New() *Toolchain { return &Toolchain{} }

// Name implements target.Toolchain.
func (t *Toolchain) Name() string { return "tera" }

// CompileC implements target.Toolchain: mini-C lowered to S-expressions.
func (t *Toolchain) CompileC(src string) (string, error) {
	u, err := cc.CompileUnit(src)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, f := range u.Funcs {
		params, locals := []string{}, []string{}
		for _, l := range f.Locals {
			if l.IsParam {
				params = append(params, l.Name)
			} else {
				locals = append(locals, l.Name)
			}
		}
		fmt.Fprintf(&b, "(define (%s%s)\n", f.Name, prefixSpace(params))
		if len(locals) > 0 {
			fmt.Fprintf(&b, "  (locals%s)\n", prefixSpace(locals))
		}
		for _, st := range f.Body {
			fmt.Fprintf(&b, "  %s\n", stmt(st))
		}
		b.WriteString(")\n")
	}
	for _, gl := range u.Globals {
		fmt.Fprintf(&b, "(global %s)\n", gl.Name)
	}
	for _, s := range u.Strings {
		fmt.Fprintf(&b, "(string %s \"%s\")\n", s.Label, asm.EscapeString(s.Value))
	}
	return b.String(), nil
}

func prefixSpace(parts []string) string {
	if len(parts) == 0 {
		return ""
	}
	return " " + strings.Join(parts, " ")
}

var opAtoms = map[ir.Op]string{
	ir.Add: "add", ir.Sub: "sub", ir.Mul: "mul", ir.Div: "div", ir.Mod: "mod",
	ir.And: "and", ir.Or: "or", ir.Xor: "xor", ir.Shl: "shl", ir.Shr: "shr",
	ir.Neg: "neg", ir.Not: "not",
}

var relAtoms = map[ir.Rel]string{
	ir.EQ: "eq", ir.NE: "ne", ir.LT: "lt", ir.LE: "le", ir.GT: "gt", ir.GE: "ge",
}

func expr(n *ir.Node) string {
	switch n.Op {
	case ir.Const:
		return fmt.Sprintf("(const %d)", n.Value)
	case ir.Addr:
		return "(addr " + n.Name + ")"
	case ir.Load:
		return "(load " + expr(n.Kids[0]) + ")"
	case ir.Call:
		parts := make([]string, len(n.Kids))
		for i, k := range n.Kids {
			parts[i] = expr(k)
		}
		return fmt.Sprintf("(call %s%s)", n.Name, prefixSpace(parts))
	default:
		atom, ok := opAtoms[n.Op]
		if !ok {
			atom = strings.ToLower(n.Op.String())
		}
		parts := make([]string, len(n.Kids))
		for i, k := range n.Kids {
			parts[i] = expr(k)
		}
		return fmt.Sprintf("(%s%s)", atom, prefixSpace(parts))
	}
}

func stmt(st *ir.Stmt) string {
	switch st.Kind {
	case ir.SStore:
		return fmt.Sprintf("(set! %s %s)", expr(st.Addr), expr(st.Val))
	case ir.SBranch:
		return fmt.Sprintf("(when (%s %s %s) (goto %s))",
			relAtoms[st.Rel], expr(st.A), expr(st.B), st.Target)
	case ir.SGoto:
		return fmt.Sprintf("(goto %s)", st.Target)
	case ir.SLabel:
		return fmt.Sprintf("(label %s)", st.Target)
	case ir.SExpr:
		return expr(st.Val)
	case ir.SRet:
		if st.Val == nil {
			return "(return)"
		}
		return fmt.Sprintf("(return %s)", expr(st.Val))
	}
	return "(unknown)"
}

// Assemble implements target.Toolchain as a Scheme reader: ";" comments,
// double-quoted strings, and a sequence of balanced parenthesized forms.
// Bare atoms at the top level and unbalanced parentheses are rejected —
// nothing else is. The resulting unit is an opaque husk; the probing
// discipline never inspects it and linking is unimplemented anyway.
func (t *Toolchain) Assemble(text string) (*asm.Unit, error) {
	depth := 0
	line := 1
	for i := 0; i < len(text); i++ {
		ch := text[i]
		switch {
		case ch == '\n':
			line++
		case ch == ' ' || ch == '\t' || ch == '\r':
		case ch == ';':
			for i < len(text) && text[i] != '\n' {
				i++
			}
			line++
		case ch == '(':
			depth++
		case ch == ')':
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("tera-as:%d: unbalanced )", line)
			}
		case ch == '"':
			i++
			for i < len(text) && text[i] != '"' {
				if text[i] == '\\' {
					i++
				}
				if i < len(text) && text[i] == '\n' {
					line++
				}
				i++
			}
			if i >= len(text) {
				return nil, fmt.Errorf("tera-as:%d: unterminated string", line)
			}
		default:
			// An atom. Atoms are only meaningful inside a form.
			if depth == 0 {
				j := i
				for j < len(text) && !strings.ContainsRune(" \t\r\n();\"", rune(text[j])) {
					j++
				}
				return nil, fmt.Errorf("tera-as:%d: datum %q outside a form", line, text[i:j])
			}
		}
	}
	if depth != 0 {
		return nil, fmt.Errorf("tera-as:%d: unterminated form", line)
	}
	return &asm.Unit{Arch: "tera"}, nil
}

// Link implements target.Toolchain; the Tera linker is not modelled.
func (t *Toolchain) Link(units []*asm.Unit) (*asm.Image, error) {
	return nil, fmt.Errorf("tera-ld: linking is not modelled for the Tera")
}

// Execute implements target.Toolchain; the Tera machine is not modelled.
func (t *Toolchain) Execute(img *asm.Image) (string, error) {
	return "", fmt.Errorf("tera: execution is not modelled")
}
