package tera_test

import (
	"strings"
	"testing"

	"srcg/internal/target/tera"
)

func TestCompileEmitsSExpressions(t *testing.T) {
	tc := tera.New()
	out, err := tc.CompileC(`main(){int a=1235; printf("%i\n", a); exit(0);}`)
	if err != nil {
		t.Fatalf("CompileC: %v", err)
	}
	if !strings.Contains(out, "(define (main)") {
		t.Errorf("no define form in:\n%s", out)
	}
	if !strings.Contains(out, "(const 1235)") {
		t.Errorf("literal 1235 not visible in:\n%s", out)
	}
	if _, err := tc.Assemble(out); err != nil {
		t.Errorf("own compiler output rejected: %v", err)
	}
}

func TestReaderAcceptsAndRejects(t *testing.T) {
	tc := tera.New()
	for _, good := range []string{
		"",
		"(define (main) (return))",
		"(a (b c) \"str with ; and (\" )\n; a comment line\n(d)",
	} {
		if _, err := tc.Assemble(good); err != nil {
			t.Errorf("Assemble(%q) rejected: %v", good, err)
		}
	}
	for _, bad := range []string{
		"zzz!!! certainly not an instruction $$$",
		"(define (main)",
		"(a))",
		"(unterminated \"string)",
		"# zzz",
		"! zzz",
	} {
		if _, err := tc.Assemble(bad); err == nil {
			t.Errorf("Assemble(%q) accepted", bad)
		}
	}
}

func TestLinkAndExecuteUnmodelled(t *testing.T) {
	tc := tera.New()
	if _, err := tc.Link(nil); err == nil {
		t.Error("Link should be unmodelled")
	}
	if _, err := tc.Execute(nil); err == nil {
		t.Error("Execute should be unmodelled")
	}
}
