package alpha

import (
	"fmt"

	"srcg/internal/asm"
	"srcg/internal/machine"
)

// Execute implements target.Toolchain. $31 is hardwired to zero; jsr
// deposits the return address in its first operand and ret jumps through
// it. All longword arithmetic wraps to 32 bits.
func (t *Toolchain) Execute(img *asm.Image) (string, error) {
	c := machine.NewCPU()
	c.Mem.AddBound(machine.DataBase, img.DataEnd)
	c.Mem.AddBound(machine.StackTop-machine.StackSize, machine.StackTop)
	for a, b := range img.Data {
		c.Mem.Store(a, 1, uint64(b))
	}
	for r := range registers {
		c.Regs[r] = 0
	}
	c.Regs["$sp"] = machine.StackTop
	c.PC = img.Entry
	for !c.Halted {
		if err := c.Tick(); err != nil {
			return c.Out.String(), err
		}
		if c.PC < 0 || c.PC >= len(img.Instrs) {
			return c.Out.String(), fmt.Errorf("alpha: PC %d outside code [0,%d)", c.PC, len(img.Instrs))
		}
		next, err := step(c, img, img.Instrs[c.PC])
		if err != nil {
			return c.Out.String(), err
		}
		if err := c.Mem.Fault(); err != nil {
			return c.Out.String(), err
		}
		c.PC = next
	}
	return c.Out.String(), nil
}

func wrap32(v int64) int64 { return int64(int32(v)) }

func getReg(c *machine.CPU, r string) int64 {
	if r == "$31" {
		return 0
	}
	return c.Regs[r]
}

func setReg(c *machine.CPU, r string, v int64) {
	if r == "$31" {
		return
	}
	c.Regs[r] = wrap32(v)
}

func operand(c *machine.CPU, a asm.Arg) int64 {
	if a.Kind == asm.Imm {
		return a.Imm
	}
	return getReg(c, a.Reg)
}

// ea computes the address of a memory operand: base+disp or absolute sym.
func ea(c *machine.CPU, img *asm.Image, a asm.Arg) (uint64, error) {
	if a.Reg != "" {
		return uint64(getReg(c, a.Reg) + a.Imm), nil
	}
	addr, ok := img.Resolve(a.Sym)
	if !ok {
		return 0, fmt.Errorf("alpha: undefined data symbol %q", a.Sym)
	}
	return addr, nil
}

func codeLabel(img *asm.Image, sym string) (int, error) {
	idx, ok := img.Labels[sym]
	if !ok {
		return 0, fmt.Errorf("alpha: undefined code label %q", sym)
	}
	return idx, nil
}

func step(c *machine.CPU, img *asm.Image, ins asm.Instr) (int, error) {
	next := c.PC + 1
	switch ins.Op {
	case "addl", "subl", "mull", "divl", "reml", "and", "bis", "xor", "ornot",
		"sll", "sra", "cmpeq", "cmplt", "cmple":
		a := getReg(c, ins.Args[0].Reg)
		b := operand(c, ins.Args[1])
		var r int64
		switch ins.Op {
		case "addl":
			r = a + b
		case "subl":
			r = a - b
		case "mull":
			r = a * b
		case "divl", "reml":
			if int32(b) == 0 {
				return 0, fmt.Errorf("alpha: division by zero")
			}
			if ins.Op == "divl" {
				r = int64(int32(a) / int32(b))
			} else {
				r = int64(int32(a) % int32(b))
			}
		case "and":
			r = a & b
		case "bis":
			r = a | b
		case "xor":
			r = a ^ b
		case "ornot":
			r = a | ^b
		case "sll":
			// The full 64-bit shifter: bits above 31 survive until the
			// next longword operation canonicalizes them.
			if ins.Args[2].Reg != "$31" {
				c.Regs[ins.Args[2].Reg] = a << (uint(b) & 63)
			}
			return next, nil
		case "sra":
			r = int64(int32(a) >> (uint(b) & 31))
		case "cmpeq":
			if a == b {
				r = 1
			}
		case "cmplt":
			if a < b {
				r = 1
			}
		case "cmple":
			if a <= b {
				r = 1
			}
		}
		setReg(c, ins.Args[2].Reg, r)
	case "ldl":
		addr, err := ea(c, img, ins.Args[1])
		if err != nil {
			return 0, err
		}
		setReg(c, ins.Args[0].Reg, machine.SignExtend(c.Mem.Load(addr, 4), 32))
	case "stl":
		addr, err := ea(c, img, ins.Args[1])
		if err != nil {
			return 0, err
		}
		c.Mem.Store(addr, 4, machine.Truncate(getReg(c, ins.Args[0].Reg), 32))
	case "lda":
		addr, err := ea(c, img, ins.Args[1])
		if err != nil {
			return 0, err
		}
		setReg(c, ins.Args[0].Reg, int64(addr))
	case "ldil":
		setReg(c, ins.Args[0].Reg, ins.Args[1].Imm)
	case "beq", "bne":
		v := getReg(c, ins.Args[0].Reg)
		if (ins.Op == "beq") == (v == 0) {
			return codeLabel(img, ins.Args[1].Sym)
		}
	case "br":
		return codeLabel(img, ins.Args[0].Sym)
	case "jsr":
		sym := ins.Args[1].Sym
		setReg(c, ins.Args[0].Reg, int64(c.PC+1))
		if _, ok := img.Labels[sym]; !ok && asm.Builtins[sym] {
			if err := builtin(c, sym); err != nil {
				return 0, err
			}
			return c.PC + 1, nil
		}
		return codeLabel(img, sym)
	case "ret":
		return int(getReg(c, ins.Args[0].Reg)), nil
	default:
		return 0, fmt.Errorf("alpha: unimplemented opcode %q", ins.Op)
	}
	return next, nil
}

// builtin services printf and exit with arguments in $16..$18.
func builtin(c *machine.CPU, sym string) error {
	switch sym {
	case "printf":
		format, err := c.Mem.LoadCString(uint64(c.Regs["$16"]))
		if err != nil {
			return err
		}
		var args []int64
		for i := 0; i < directives(format); i++ {
			args = append(args, getReg(c, fmt.Sprintf("$%d", 17+i)))
		}
		return c.Printf(format, args)
	case "exit":
		c.Exit = int(int32(c.Regs["$16"]))
		c.Halted = true
		return nil
	}
	return fmt.Errorf("alpha: unsupported builtin %q", sym)
}

// directives counts the argument-consuming conversions in a printf format.
func directives(format string) int {
	n := 0
	for i := 0; i+1 < len(format); i++ {
		if format[i] == '%' {
			if format[i+1] == 'i' || format[i+1] == 'd' {
				n++
			}
			i++
		}
	}
	return n
}
