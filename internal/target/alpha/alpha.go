// Package alpha simulates an Alpha-class toolchain: "#" comments,
// dollar-numbered registers, operate-format instructions whose second
// source is a register or an 8-bit literal (0..255), ldil constant
// synthesis, compare-into-register conditionals, and jsr/ret linkage
// through $26.
package alpha

import (
	"strconv"
	"strings"

	"srcg/internal/asm"
)

// Toolchain is the simulated Alpha cc/as/ld/run bundle.
type Toolchain struct {
	dialect asm.Dialect
}

// New returns the simulated Alpha toolchain.
func New() *Toolchain {
	t := &Toolchain{}
	t.dialect = asm.Dialect{
		Arch: "alpha",
		Syntax: asm.Syntax{
			CommentChars: []string{"#"},
			LabelSuffix:  ":",
		},
		Decode: decode,
	}
	return t
}

// Name implements target.Toolchain.
func (t *Toolchain) Name() string { return "alpha" }

// CompileC implements target.Toolchain.
func (t *Toolchain) CompileC(src string) (string, error) { return compileC(src) }

// Assemble implements target.Toolchain.
func (t *Toolchain) Assemble(text string) (*asm.Unit, error) { return t.dialect.ParseUnit(text) }

// Link implements target.Toolchain.
func (t *Toolchain) Link(units []*asm.Unit) (*asm.Image, error) {
	img, err := asm.Link("alpha", 4, units)
	if err != nil {
		return nil, err
	}
	if err := img.CheckUndefined(); err != nil {
		return nil, err
	}
	return img, nil
}

// registers is the Alpha register file: $0..$31 plus the $sp/$fp aliases.
// $31 reads as zero.
var registers = map[string]bool{"$sp": true, "$fp": true}

func init() {
	for i := 0; i < 32; i++ {
		registers["$"+strconv.Itoa(i)] = true
	}
}

func errf(line int, format string, args ...interface{}) error {
	return asm.Errf("alpha", line, format, args...)
}

func regOperand(line int, s string) (asm.Arg, error) {
	if !registers[s] {
		return asm.Arg{}, errf(line, "unknown register %q", s)
	}
	return asm.Arg{Kind: asm.Reg, Reg: s, Raw: s}, nil
}

// memOperand decodes disp($reg), ($reg), or a bare non-numeric symbol.
func memOperand(line int, s string) (asm.Arg, error) {
	if i := strings.IndexByte(s, '('); i >= 0 {
		if len(s) == 0 || s[len(s)-1] != ')' {
			return asm.Arg{}, errf(line, "bad memory operand %q", s)
		}
		disp := int64(0)
		if i > 0 {
			v, ok := asm.ParseInt(s[:i])
			if !ok {
				return asm.Arg{}, errf(line, "bad displacement in %q", s)
			}
			disp = v
		}
		base := s[i+1 : len(s)-1]
		if !registers[base] {
			return asm.Arg{}, errf(line, "bad base register in %q", s)
		}
		return asm.Arg{Kind: asm.Mem, Reg: base, Imm: disp, Raw: s}, nil
	}
	if _, ok := asm.ParseInt(s); ok {
		return asm.Arg{}, errf(line, "bare integer memory operand %q", s)
	}
	if s != "" && asm.DefaultValidLabel(s) && s[0] != '$' {
		return asm.Arg{Kind: asm.Mem, Sym: s, Raw: s}, nil
	}
	return asm.Arg{}, errf(line, "bad memory operand %q", s)
}

// regOrLit8 decodes the second source of an operate-format instruction: a
// register or a literal in 0..255.
func regOrLit8(line int, s string) (asm.Arg, error) {
	if registers[s] {
		return asm.Arg{Kind: asm.Reg, Reg: s, Raw: s}, nil
	}
	if v, ok := asm.ParseInt(s); ok {
		if v < 0 || v > 255 {
			return asm.Arg{}, errf(line, "operate literal %d out of range 0..255", v)
		}
		return asm.Arg{Kind: asm.Imm, Imm: v, Raw: s}, nil
	}
	return asm.Arg{}, errf(line, "bad operand %q", s)
}

func labelOperand(line int, s string) (asm.Arg, error) {
	if _, ok := asm.ParseInt(s); ok {
		return asm.Arg{}, errf(line, "numeric branch target %q", s)
	}
	if s == "" || !asm.DefaultValidLabel(s) || s[0] == '$' {
		return asm.Arg{}, errf(line, "bad branch target %q", s)
	}
	return asm.Arg{Kind: asm.Sym, Sym: s, Raw: s}, nil
}

// operate-format instructions: op ra, rb_or_lit, rc.
var operateOps = map[string]bool{
	"addl": true, "subl": true, "mull": true, "divl": true, "reml": true,
	"and": true, "bis": true, "xor": true, "ornot": true, "sll": true, "sra": true,
	"cmpeq": true, "cmplt": true, "cmple": true,
}

// decode validates one Alpha instruction line.
func decode(ln asm.Line) (asm.Instr, error) {
	ins := asm.Instr{Op: ln.Op, Line: ln.Num}
	want := func(n int) error {
		if len(ln.Args) != n {
			return errf(ln.Num, "%s takes %d operands, got %d", ln.Op, n, len(ln.Args))
		}
		return nil
	}
	switch {
	case operateOps[ln.Op]:
		if err := want(3); err != nil {
			return ins, err
		}
		ra, err := regOperand(ln.Num, ln.Args[0])
		if err != nil {
			return ins, err
		}
		rb, err := regOrLit8(ln.Num, ln.Args[1])
		if err != nil {
			return ins, err
		}
		rc, err := regOperand(ln.Num, ln.Args[2])
		if err != nil {
			return ins, err
		}
		ins.Args = []asm.Arg{ra, rb, rc}
	case ln.Op == "ldl" || ln.Op == "stl":
		if err := want(2); err != nil {
			return ins, err
		}
		r, err := regOperand(ln.Num, ln.Args[0])
		if err != nil {
			return ins, err
		}
		m, err := memOperand(ln.Num, ln.Args[1])
		if err != nil {
			return ins, err
		}
		ins.Args = []asm.Arg{r, m}
	case ln.Op == "lda":
		if err := want(2); err != nil {
			return ins, err
		}
		r, err := regOperand(ln.Num, ln.Args[0])
		if err != nil {
			return ins, err
		}
		m, err := memOperand(ln.Num, ln.Args[1])
		if err != nil {
			return ins, err
		}
		ins.Args = []asm.Arg{r, m}
	case ln.Op == "ldil":
		if err := want(2); err != nil {
			return ins, err
		}
		r, err := regOperand(ln.Num, ln.Args[0])
		if err != nil {
			return ins, err
		}
		v, ok := asm.ParseInt(ln.Args[1])
		if !ok {
			return ins, errf(ln.Num, "bad immediate %q", ln.Args[1])
		}
		ins.Args = []asm.Arg{r, {Kind: asm.Imm, Imm: v, Raw: ln.Args[1]}}
	case ln.Op == "beq" || ln.Op == "bne":
		if err := want(2); err != nil {
			return ins, err
		}
		r, err := regOperand(ln.Num, ln.Args[0])
		if err != nil {
			return ins, err
		}
		lab, err := labelOperand(ln.Num, ln.Args[1])
		if err != nil {
			return ins, err
		}
		ins.Args = []asm.Arg{r, lab}
	case ln.Op == "br":
		if err := want(1); err != nil {
			return ins, err
		}
		lab, err := labelOperand(ln.Num, ln.Args[0])
		if err != nil {
			return ins, err
		}
		ins.Args = []asm.Arg{lab}
	case ln.Op == "jsr":
		if err := want(2); err != nil {
			return ins, err
		}
		r, err := regOperand(ln.Num, ln.Args[0])
		if err != nil {
			return ins, err
		}
		lab, err := labelOperand(ln.Num, ln.Args[1])
		if err != nil {
			return ins, err
		}
		ins.Args = []asm.Arg{r, lab}
	case ln.Op == "ret":
		if err := want(1); err != nil {
			return ins, err
		}
		m, err := memOperand(ln.Num, ln.Args[0])
		if err != nil || m.Reg == "" || m.Imm != 0 {
			return ins, errf(ln.Num, "ret operand must be (reg)")
		}
		ins.Args = []asm.Arg{m}
	default:
		return ins, errf(ln.Num, "unknown opcode %q", ln.Op)
	}
	return ins, nil
}
