// Package target defines the toolchain abstraction the discovery unit
// drives. A Toolchain bundles a native C compiler, assembler, linker, and
// machine-level executor for one simulated architecture — the "existing
// native compiler" of the paper (§2, Fig. 1), which the Lexer, Analyzer,
// and Extractor treat as a black box: programs go in, output text comes
// out, and nothing else about the machine may be consulted.
package target

import "srcg/internal/asm"

// Toolchain is one simulated native toolchain. Implementations live in the
// per-architecture subpackages (x86, sparc, mips, alpha, vax, tera).
type Toolchain interface {
	// Name returns the architecture name ("x86", "sparc", ...).
	Name() string
	// CompileC compiles mini-C source to assembly text.
	CompileC(src string) (string, error)
	// Assemble parses assembly text into an object unit, rejecting any
	// opcode or operand the architecture's assembler would reject.
	Assemble(text string) (*asm.Unit, error)
	// Link combines assembled units into an executable image.
	Link(units []*asm.Unit) (*asm.Image, error)
	// Execute runs a linked image and returns its standard output.
	Execute(img *asm.Image) (string, error)
}

// BuildAndRun compiles each C source, assembles the results, links them
// into one image, and executes it — the cc/as/ld/run pipeline a discovery
// probe exercises end to end.
func BuildAndRun(tc Toolchain, sources []string) (string, error) {
	units := make([]*asm.Unit, 0, len(sources))
	for _, src := range sources {
		text, err := tc.CompileC(src)
		if err != nil {
			return "", err
		}
		u, err := tc.Assemble(text)
		if err != nil {
			return "", err
		}
		units = append(units, u)
	}
	img, err := tc.Link(units)
	if err != nil {
		return "", err
	}
	return tc.Execute(img)
}
