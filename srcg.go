// Package srcg is the public face of a from-scratch reproduction of
// Christian Collberg's "Reverse Interpretation + Mutation Analysis =
// Automatic Retargeting" (PLDI 1997): an automatic architecture discovery
// unit that learns a machine's assembly syntax, register set, calling
// convention, and instruction semantics purely by interrogating its
// toolchain — and a BEG-style back-end generator that turns the resulting
// machine description into a working code generator (Self-Retargeting Code
// Generation).
//
// Quick start:
//
//	d, err := srcg.Discover(srcg.NewTarget("x86"), srcg.Options{Seed: 1})
//	fmt.Println(d.Report())
//	results := d.Validate(srcg.NewTarget("x86"), srcg.ValidationSuite)
//
// Five simulated machines stand in for the paper's physical targets:
// SPARC, Alpha, MIPS, VAX, and x86, each with its own C compiler,
// assembler, linker, and instruction-level executor; a sixth ("tera")
// demonstrates the Lexer's graceful failure on an exotic Scheme-syntax
// assembler.
package srcg

import (
	"fmt"
	"sort"

	"srcg/internal/check"
	"srcg/internal/core"
	"srcg/internal/target"
	"srcg/internal/target/alpha"
	"srcg/internal/target/mips"
	"srcg/internal/target/sparc"
	"srcg/internal/target/tera"
	"srcg/internal/target/vax"
	"srcg/internal/target/x86"
)

// Target is a machine reachable only through its toolchain: a C compiler
// that emits assembly, an assembler that flags illegal code, a linker, and
// a remote execution facility — the paper's §2 requirements.
type Target = target.Toolchain

// Options configures a discovery run.
type Options = core.Options

// Discovery is the complete result of analyzing a target: the discovered
// syntax model, per-sample analyses, extracted instruction semantics, and
// the synthesized machine description.
type Discovery = core.Discovery

// Program is a mini-C validation program.
type Program = core.Program

// CheckReport is the static verification layer's findings for a discovery
// run with Options.Check set (see internal/check and cmd/srcgvet).
type CheckReport = check.Report

// ValidationSuite is the standard end-to-end program suite.
var ValidationSuite = core.ValidationSuite

// constructors for the simulated machines.
var targets = map[string]func() Target{
	"x86":   func() Target { return x86.New() },
	"sparc": func() Target { return sparc.New() },
	"mips":  func() Target { return mips.New() },
	"alpha": func() Target { return alpha.New() },
	"vax":   func() Target { return vax.New() },
	"tera":  func() Target { return tera.New() },
}

// TargetNames lists the available simulated machines (tera excluded: it
// exists to demonstrate Lexer failure).
func TargetNames() []string {
	names := []string{}
	for n := range targets {
		if n != "tera" {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// NewTarget constructs a simulated machine by name ("x86", "sparc",
// "mips", "alpha", "vax", or "tera"). It panics on unknown names; use
// LookupTarget to probe.
func NewTarget(name string) Target {
	t, err := LookupTarget(name)
	if err != nil {
		panic(err)
	}
	return t
}

// LookupTarget constructs a simulated machine by name.
func LookupTarget(name string) (Target, error) {
	ctor, ok := targets[name]
	if !ok {
		return nil, fmt.Errorf("srcg: unknown target %q (have %v)", name, TargetNames())
	}
	return ctor(), nil
}

// Discover runs the complete architecture discovery pipeline (paper
// Fig. 2) against the target: sample generation, assembler-syntax probing,
// mutation analysis, data-flow graph construction, reverse interpretation,
// and machine-description synthesis.
func Discover(t Target, opts Options) (*Discovery, error) {
	return core.Discover(t, opts)
}
