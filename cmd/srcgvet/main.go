// Command srcgvet runs the static verification layer against a simulated
// target: it performs a full discovery with the checker enabled, then
// prints every diagnostic the dataflow verifier and the
// machine-description linter produced. A clean discovery prints a one-line
// summary and exits 0; any Error-severity diagnostic exits 1.
//
// Usage:
//
//	srcgvet -target sparc [-seed 1] [-full] [-signedshifts] [-faults 7:0.1]
package main

import (
	"flag"
	"fmt"
	"os"

	"srcg"
	"srcg/internal/faulty"
)

func main() {
	targetName := flag.String("target", "x86", "target architecture (x86, sparc, mips, alpha, vax)")
	seed := flag.Int64("seed", 1, "random seed for sample generation and mutations")
	full := flag.Bool("full", false, "verify the complete operand-shape sample set")
	ash := flag.Bool("signedshifts", false, "enable the signed-count shift primitive")
	faults := flag.String("faults", "", "inject transient toolchain faults and output noise: <seed>:<rate> (e.g. 7:0.1)")
	flag.Parse()

	t, err := srcg.LookupTarget(*targetName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *faults != "" {
		cfg, err := faulty.ParseSpec(*faults)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		t = faulty.New(t, cfg)
	}
	d, err := srcg.Discover(t, srcg.Options{
		Seed: *seed, Full: *full, SignedShifts: *ash, Check: true,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "srcgvet: discovery failed: %v\n", err)
		os.Exit(1)
	}
	if *faults != "" {
		fmt.Printf("srcgvet: probe: %s\n", d.ProbeStats)
	}
	rep := d.CheckReport
	if len(rep.Diags) == 0 {
		fmt.Printf("srcgvet: %s: %d graphs verified, spec linted, no diagnostics\n",
			*targetName, len(d.Graphs))
		return
	}
	fmt.Print(rep.String())
	fmt.Printf("srcgvet: %s: %d diagnostics (%d errors)\n",
		*targetName, len(rep.Diags), rep.Errors())
	if rep.Errors() > 0 {
		os.Exit(1)
	}
}
