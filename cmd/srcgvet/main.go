// Command srcgvet runs the static verification layer against a simulated
// target: it performs a full discovery with the checker enabled, then
// prints every diagnostic the dataflow verifier and the
// machine-description linter produced. A clean discovery prints a one-line
// summary and exits 0; any Error-severity diagnostic exits 1.
//
// With -md the semantic machine-description analyzer (SA020–SA025) runs
// on top of the linter: coverage closure over the IR demand set, rule
// shadowing and rewrite-cycle detection, symbolic template verification
// against the mutation-analysis attributions, and cross-target
// structural invariants.
//
// Usage:
//
//	srcgvet -target sparc [-seed 1] [-full] [-signedshifts] [-md]
//	        [-faults 7:0.1] [-trace run.jsonl [-traceformat chrome]]
package main

import (
	"flag"
	"fmt"
	"os"

	"srcg"
	"srcg/internal/cliflags"
)

func main() {
	targetName := flag.String("target", "x86", "target architecture (x86, sparc, mips, alpha, vax)")
	common := cliflags.Register(flag.CommandLine)
	flag.Parse()

	t, err := common.WrapTarget(*targetName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	tr, closeTrace, err := common.OpenTrace()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	opts := common.Options(tr)
	opts.Check = true
	opts.CheckMD = common.MD
	d, err := srcg.Discover(t, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "srcgvet: discovery failed: %v\n", err)
		os.Exit(1)
	}
	if tr != nil {
		if err := closeTrace(); err != nil {
			fmt.Fprintf(os.Stderr, "srcgvet: trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "srcgvet: trace: %d events -> %s\n", tr.Events(), common.TracePath)
	}
	if common.Faults != "" {
		fmt.Printf("srcgvet: probe: %s\n", d.ProbeStats)
	}
	rep := d.CheckReport
	if len(rep.Diags) == 0 {
		what := "spec linted"
		if common.MD {
			what = "spec linted, MD verified"
		}
		fmt.Printf("srcgvet: %s: %d graphs verified, %s, no diagnostics\n",
			*targetName, len(d.Graphs), what)
		return
	}
	fmt.Print(rep.String())
	fmt.Printf("srcgvet: %s: %d diagnostics (%d errors)\n",
		*targetName, len(rep.Diags), rep.Errors())
	if rep.Errors() > 0 {
		os.Exit(1)
	}
}
