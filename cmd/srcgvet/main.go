// Command srcgvet runs the static verification layer against a simulated
// target: it performs a full discovery with the checker enabled, then
// prints every diagnostic the dataflow verifier and the
// machine-description linter produced. A clean discovery prints a one-line
// summary and exits 0; any Error-severity diagnostic exits 1.
//
// Usage:
//
//	srcgvet -target sparc [-seed 1] [-full] [-signedshifts]
package main

import (
	"flag"
	"fmt"
	"os"

	"srcg"
)

func main() {
	targetName := flag.String("target", "x86", "target architecture (x86, sparc, mips, alpha, vax)")
	seed := flag.Int64("seed", 1, "random seed for sample generation and mutations")
	full := flag.Bool("full", false, "verify the complete operand-shape sample set")
	ash := flag.Bool("signedshifts", false, "enable the signed-count shift primitive")
	flag.Parse()

	t, err := srcg.LookupTarget(*targetName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	d, err := srcg.Discover(t, srcg.Options{
		Seed: *seed, Full: *full, SignedShifts: *ash, Check: true,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "srcgvet: discovery failed: %v\n", err)
		os.Exit(1)
	}
	rep := d.CheckReport
	if len(rep.Diags) == 0 {
		fmt.Printf("srcgvet: %s: %d graphs verified, spec linted, no diagnostics\n",
			*targetName, len(d.Graphs))
		return
	}
	fmt.Print(rep.String())
	fmt.Printf("srcgvet: %s: %d diagnostics (%d errors)\n",
		*targetName, len(rep.Diags), rep.Errors())
	if rep.Errors() > 0 {
		os.Exit(1)
	}
}
