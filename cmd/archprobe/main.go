// Command archprobe runs only the assembler-syntax discovery phase (paper
// §3.1): comment character, literal bases, register set, clobber template,
// immediate ranges, and addressing-mode shapes.
//
// Usage:
//
//	archprobe -arch vax
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"srcg/internal/discovery"
	"srcg/internal/gen"
	"srcg/internal/lexer"

	"srcg"
)

func main() {
	arch := flag.String("arch", "x86", "target architecture")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	t, err := srcg.LookupTarget(*arch)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	rig := discovery.NewRig(t)
	samples, err := gen.Samples(gen.Config{Rand: rand.New(rand.NewSource(*seed))})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	model, err := lexer.Bootstrap(rig, samples)
	if err != nil {
		fmt.Fprintf(os.Stderr, "probe failed: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(lexer.DescribeModel(model))
	fmt.Printf("cost: %s\n", rig.Stats())
}
