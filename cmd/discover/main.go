// Command discover runs the architecture discovery unit against a
// simulated target machine and prints the discovered model, the extracted
// instruction semantics, and the synthesized BEG-style machine
// description.
//
// Usage:
//
//	discover -arch sparc [-seed 1] [-full] [-beg] [-validate] [-faults 7:0.1]
//	         [-trace run.jsonl [-traceformat chrome]]
package main

import (
	"flag"
	"fmt"
	"os"

	"srcg"
	"srcg/internal/cliflags"
)

func main() {
	arch := flag.String("arch", "x86", "target architecture (x86, sparc, mips, alpha, vax)")
	beg := flag.Bool("beg", false, "print the synthesized BEG machine description")
	validate := flag.Bool("validate", false, "compile and run the validation suite through the generated back end")
	dot := flag.String("dot", "", "print the data-flow graph of the named sample (e.g. int.div.b_c) in Graphviz format")
	common := cliflags.Register(flag.CommandLine)
	flag.Parse()

	t, err := common.WrapTarget(*arch)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	tr, closeTrace, err := common.OpenTrace()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	d, err := srcg.Discover(t, common.Options(tr))
	if err != nil {
		fmt.Fprintf(os.Stderr, "discovery failed: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(d.Report())
	if d.SpecErr != nil {
		fmt.Printf("synthesis: %v\n", d.SpecErr)
	}
	if *beg && d.Spec != nil {
		fmt.Println()
		fmt.Print(d.Spec.RenderBEG(d.Model))
	}
	if *dot != "" {
		g, ok := d.Graphs[*dot]
		if !ok {
			fmt.Fprintf(os.Stderr, "no graph for sample %q\n", *dot)
			os.Exit(1)
		}
		fmt.Println()
		fmt.Print(g.Dot())
	}
	if *validate && d.Spec != nil {
		fmt.Println()
		for _, r := range d.Validate(t, srcg.ValidationSuite) {
			status := "ok"
			if !r.OK {
				status = fmt.Sprintf("FAIL (%v)", r.Err)
			}
			fmt.Printf("validate %-12s %s\n", r.Program, status)
		}
	}
	if tr != nil {
		if err := closeTrace(); err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "trace: %d events -> %s\n", tr.Events(), common.TracePath)
	}
}
