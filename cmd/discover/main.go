// Command discover runs the architecture discovery unit against a
// simulated target machine and prints the discovered model, the extracted
// instruction semantics, and the synthesized BEG-style machine
// description.
//
// Usage:
//
//	discover -arch sparc [-seed 1] [-full] [-beg] [-validate] [-faults 7:0.1]
package main

import (
	"flag"
	"fmt"
	"os"

	"srcg"
	"srcg/internal/faulty"
)

func main() {
	arch := flag.String("arch", "x86", "target architecture (x86, sparc, mips, alpha, vax)")
	seed := flag.Int64("seed", 1, "random seed for sample generation and mutations")
	full := flag.Bool("full", false, "generate the complete operand-shape sample set")
	ash := flag.Bool("signedshifts", false, "enable the signed-count shift primitive (extension beyond the paper; resolves the VAX ashl limitation)")
	beg := flag.Bool("beg", false, "print the synthesized BEG machine description")
	validate := flag.Bool("validate", false, "compile and run the validation suite through the generated back end")
	dot := flag.String("dot", "", "print the data-flow graph of the named sample (e.g. int.div.b_c) in Graphviz format")
	faults := flag.String("faults", "", "inject transient toolchain faults and output noise: <seed>:<rate> (e.g. 7:0.1)")
	flag.Parse()

	t, err := srcg.LookupTarget(*arch)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *faults != "" {
		cfg, err := faulty.ParseSpec(*faults)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		t = faulty.New(t, cfg)
	}
	d, err := srcg.Discover(t, srcg.Options{Seed: *seed, Full: *full, SignedShifts: *ash})
	if err != nil {
		fmt.Fprintf(os.Stderr, "discovery failed: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(d.Report())
	if d.SpecErr != nil {
		fmt.Printf("synthesis: %v\n", d.SpecErr)
	}
	if *beg && d.Spec != nil {
		fmt.Println()
		fmt.Print(d.Spec.RenderBEG(d.Model))
	}
	if *dot != "" {
		g, ok := d.Graphs[*dot]
		if !ok {
			fmt.Fprintf(os.Stderr, "no graph for sample %q\n", *dot)
			os.Exit(1)
		}
		fmt.Println()
		fmt.Print(g.Dot())
	}
	if *validate && d.Spec != nil {
		fmt.Println()
		for _, r := range d.Validate(t, srcg.ValidationSuite) {
			status := "ok"
			if !r.OK {
				status = fmt.Sprintf("FAIL (%v)", r.Err)
			}
			fmt.Printf("validate %-12s %s\n", r.Program, status)
		}
	}
}
