// Command benchdiff compares two bench-trajectory files (the
// BENCH_discover.json format: recorded runs of BenchmarkDiscoverEndToEnd
// with per-phase attribution) and reports per-target and per-phase
// deltas, flagging regressions beyond a threshold.
//
// Usage:
//
//	benchdiff [-threshold 0.10] [-run -1] old.json new.json
//	benchdiff -self trajectory.json     # compare the last two runs of one file
//
// By default the last run of each file is compared. Exit status is 0
// when nothing regressed, 1 on regression, 2 on usage or parse errors.
// The threshold is a ratio margin: 0.10 flags anything >10% slower.
package main

import (
	"flag"
	"fmt"
	"os"

	"srcg/internal/obs"
)

func main() {
	threshold := flag.Float64("threshold", 0.10, "regression ratio margin (0.10 = flag >10% slower)")
	self := flag.Bool("self", false, "compare the last two runs of a single trajectory file")
	quiet := flag.Bool("quiet", false, "print only regressions")
	flag.Parse()

	var old, new obs.TrajectoryRun
	switch {
	case *self && flag.NArg() == 1:
		t := load(flag.Arg(0))
		if len(t.Runs) < 2 {
			fmt.Fprintf(os.Stderr, "benchdiff: %s has %d run(s); -self needs two\n", flag.Arg(0), len(t.Runs))
			os.Exit(2)
		}
		old, new = t.Runs[len(t.Runs)-2], t.Runs[len(t.Runs)-1]
	case !*self && flag.NArg() == 2:
		old, new = load(flag.Arg(0)).Last(), load(flag.Arg(1)).Last()
	default:
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold 0.10] old.json new.json | benchdiff -self trajectory.json")
		os.Exit(2)
	}

	deltas := obs.DiffRuns(old, new, *threshold)
	regressed := obs.Regressions(deltas)
	if *quiet {
		deltas = regressed
	}
	fmt.Print(obs.FormatDiff(deltas))
	if len(regressed) > 0 {
		fmt.Printf("benchdiff: %d regression(s) beyond %.0f%%\n", len(regressed), *threshold*100)
		os.Exit(1)
	}
	fmt.Println("benchdiff: no regressions")
}

func load(path string) *obs.Trajectory {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	t, err := obs.ParseTrajectory(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %s: %v\n", path, err)
		os.Exit(2)
	}
	return t
}
