// Command experiments regenerates every evaluation artifact of the paper
// (the E01-E18 index in DESIGN.md) and prints them in order. EXPERIMENTS.md
// records this output alongside the paper's claims.
//
// Usage:
//
//	experiments [E01 E07 ...]
package main

import (
	"fmt"
	"os"

	"srcg/internal/experiments"
)

func main() {
	ids := os.Args[1:]
	if len(ids) == 0 {
		ids = experiments.IDs()
	}
	suite := experiments.NewSuite()
	for _, id := range ids {
		r, err := suite.Run(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("==== %s — %s ====\n%s\n", r.ID, r.Title, r.Report)
	}
}
