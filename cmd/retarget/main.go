// Command retarget is the paper's Fig. 1 demo: the self-retargeting
// compiler `ac`. Given only a target name (standing in for the Internet
// address of a machine plus its toolchain command lines), it discovers the
// architecture, generates a back end from the synthesized machine
// description, then compiles and runs a mini-C program on the new target.
//
// Usage:
//
//	retarget -arch alpha [-src program.c]
package main

import (
	"flag"
	"fmt"
	"os"

	"srcg/internal/asm"
	"srcg/internal/beg"
	"srcg/internal/cc"
	"srcg/internal/ir"

	"srcg"
)

const defaultProgram = `
int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
main() {
	int i;
	i = 1;
	while (i < 13) {
		printf("%i\n", fib(i));
		i = i + 1;
	}
	exit(0);
}`

func main() {
	arch := flag.String("arch", "sparc", "target architecture to retarget to")
	srcPath := flag.String("src", "", "mini-C source file (default: a fibonacci demo)")
	seed := flag.Int64("seed", 1, "random seed")
	emit := flag.Bool("S", false, "print the generated assembly instead of running")
	ash := flag.Bool("signedshifts", false, "enable the signed-count shift primitive (extension beyond the paper)")
	flag.Parse()

	t, err := srcg.LookupTarget(*arch)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	source := defaultProgram
	if *srcPath != "" {
		data, err := os.ReadFile(*srcPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		source = string(data)
	}

	fmt.Fprintf(os.Stderr, "ac: retargeting to %s (discovering architecture)...\n", *arch)
	d, err := srcg.Discover(t, srcg.Options{Seed: *seed, SignedShifts: *ash})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ac: discovery failed: %v\n", err)
		os.Exit(1)
	}
	if d.SpecErr != nil {
		fmt.Fprintf(os.Stderr, "ac: synthesis failed: %v\n", d.SpecErr)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "ac: %d instruction semantics extracted; back end generated\n", len(d.Ext.Sems))

	unit, err := cc.CompileUnit(source)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ac: front end: %v\n", err)
		os.Exit(1)
	}
	text, err := beg.New(d.Spec).Compile(unit)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ac: back end: %v\n", err)
		os.Exit(1)
	}
	if *emit {
		fmt.Print(text)
		return
	}
	u, err := t.Assemble(text)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ac: as: %v\n", err)
		os.Exit(1)
	}
	img, err := t.Link([]*asm.Unit{u})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ac: ld: %v\n", err)
		os.Exit(1)
	}
	out, err := t.Execute(img)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ac: run: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(out)
	if want, err := ir.Eval(unit); err == nil {
		if want == out {
			fmt.Fprintf(os.Stderr, "ac: output matches the reference interpreter\n")
		} else {
			fmt.Fprintf(os.Stderr, "ac: OUTPUT MISMATCH (reference: %q)\n", want)
			os.Exit(1)
		}
	}
}
