// Command srcganalyze runs the repository's source-level analyzer suite:
// the black-box import analyzer plus the five determinism-contract
// analyzers (wallclock, seededrand, mapiter, globalstate, gohygiene).
// It walks every analysis-side package under internal/, prints one line
// per finding (file:line: analyzer: message), and exits nonzero if any
// invariant is violated. CI runs it next to gofmt and go vet; the suite
// must stay clean with zero suppressions — the parallel probe engine
// depends on the contract it enforces.
//
// Usage:
//
//	srcganalyze [-root <module dir>]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"srcg/internal/check/analyzers"
)

func main() {
	root := flag.String("root", ".", "module root (directory containing internal/)")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: srcganalyze [-root <module dir>]")
		os.Exit(2)
	}

	internalRoot := filepath.Join(*root, "internal")
	if _, err := os.Stat(internalRoot); err != nil {
		fmt.Fprintf(os.Stderr, "srcganalyze: %v\n", err)
		os.Exit(2)
	}

	total := 0
	report := func(name string, findings []analyzers.Finding) {
		for _, f := range findings {
			fmt.Printf("%s: %s: %s\n", f.Pos, name, f.Message)
		}
		total += len(findings)
	}

	bb, err := analyzers.RunAll(analyzers.BlackBox, internalRoot)
	if err != nil {
		fmt.Fprintf(os.Stderr, "srcganalyze: %s: %v\n", analyzers.BlackBox.Name, err)
		os.Exit(2)
	}
	report(analyzers.BlackBox.Name, bb)

	for _, a := range analyzers.Determinism {
		findings, err := analyzers.RunScope(a, internalRoot, analyzers.DeterminismScope)
		if err != nil {
			fmt.Fprintf(os.Stderr, "srcganalyze: %s: %v\n", a.Name, err)
			os.Exit(2)
		}
		report(a.Name, findings)
	}

	if total > 0 {
		fmt.Printf("srcganalyze: %d finding(s)\n", total)
		os.Exit(1)
	}
	fmt.Println("srcganalyze: clean (blackbox + determinism contract)")
}
