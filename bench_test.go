// Benchmark harness: one benchmark per paper artifact (the E01–E18 index
// in DESIGN.md). Each benchmark regenerates its experiment's table/figure;
// EXPERIMENTS.md records the outputs next to the paper's claims. Run with
//
//	go test -bench=. -benchmem
package srcg_test

import (
	"encoding/json"
	"os"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"srcg"
	"srcg/internal/experiments"
	"srcg/internal/faulty"
	"srcg/internal/obs"
	"srcg/internal/probe"
)

// benchSuite shares discovery results across all benchmarks in this file,
// matching the long-lived process a real evaluation run is.
var benchSuite = experiments.NewSuite()

// benchExperiment reruns one experiment per iteration. The first run per
// architecture performs full discovery (cached afterwards), so the first
// iteration is the honest end-to-end cost and later ones the analysis cost.
func benchExperiment(b *testing.B, id string, metrics ...string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r, err := benchSuite.Run(id)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, m := range metrics {
				if v, ok := r.Metrics[m]; ok {
					b.ReportMetric(v, m)
				}
			}
		}
	}
}

func BenchmarkE01_Extraction(b *testing.B) {
	benchExperiment(b, "E01", "vax.region_instrs", "x86.region_instrs")
}

func BenchmarkE02_SyntaxProbe(b *testing.B) {
	benchExperiment(b, "E02", "sparc.add_lo", "sparc.add_hi")
}

func BenchmarkE03_Irregularities(b *testing.B) {
	benchExperiment(b, "E03", "x86.eax_ranges", "sparc.delay_slots", "alpha.redundant")
}

func BenchmarkE04_RedundantElim(b *testing.B) {
	benchExperiment(b, "E04", "alpha.removed", "vax.removed")
}

func BenchmarkE05_LiveRangeSplit(b *testing.B) {
	benchExperiment(b, "E05", "ranges")
}

func BenchmarkE06_ImplicitArgs(b *testing.B) {
	benchExperiment(b, "E06", "sparc.call_reads")
}

func BenchmarkE07_DefUse(b *testing.B) {
	benchExperiment(b, "E07")
}

func BenchmarkE08_DFG(b *testing.B) {
	benchExperiment(b, "E08", "mips.steps", "x86.steps")
}

func BenchmarkE09_GraphMatch(b *testing.B) {
	benchExperiment(b, "E09", "x86.matched")
}

func BenchmarkE10_ReverseInterp(b *testing.B) {
	benchExperiment(b, "E10", "x86.candidates", "x86.solved")
}

func BenchmarkE11_Primitives(b *testing.B) {
	benchExperiment(b, "E11", "x86.sems", "sparc.sems")
}

func BenchmarkE12_BEGSpec(b *testing.B) {
	benchExperiment(b, "E12", "rules", "chains")
}

func BenchmarkE13_Combiner(b *testing.B) {
	benchExperiment(b, "E13", "vax.Add", "sparc.Mul")
}

func BenchmarkE14_FullDiscovery(b *testing.B) {
	benchExperiment(b, "E14", "x86.valid", "vax.gaps")
}

func BenchmarkE15_CostAccounting(b *testing.B) {
	benchExperiment(b, "E15", "x86.executions")
}

func BenchmarkE16_LikelihoodAblation(b *testing.B) {
	benchExperiment(b, "E16", "full", "blind")
}

func BenchmarkE17_Limits(b *testing.B) {
	benchExperiment(b, "E17", "vax.failed")
}

func BenchmarkE18_HardwiredRegs(b *testing.B) {
	benchExperiment(b, "E18", "sparc.hardwired", "x86.hardwired")
}

func BenchmarkE19_SignedShiftExtension(b *testing.B) {
	benchExperiment(b, "E19", "vax.base.failed", "vax.ash.failed")
}

func BenchmarkE20_VariantsAblation(b *testing.B) {
	benchExperiment(b, "E20", "base.validated", "abl.validated")
}

// BenchmarkDiscoverEndToEnd measures a complete, uncached discovery run
// per architecture — the headline §7.2 cost ("a complete analysis ...
// several hours" on 1997 hardware, seconds here). The clean variant is
// the baseline; the faulty variant runs the same discovery through the
// fault-injecting gauntlet (10% transient errors + 10% output noise,
// DESIGN.md §7), so clean-vs-faulty is the probe layer's resilience
// overhead. Results are tracked over time in BENCH_discover.json.
// benchTrajectory accumulates this process's end-to-end results; when
// SRCG_BENCH_OUT names a file, each sub-benchmark rewrites it as a
// one-run trajectory in the BENCH_discover.json format, so CI can
// benchdiff a fresh run against the committed baseline.
var benchTrajectory struct {
	sync.Mutex
	results map[string]obs.TrajectoryResult
}

// recordBenchResult reports the per-phase breakdown as benchmark metrics
// and, under SRCG_BENCH_OUT, persists the trajectory entry.
func recordBenchResult(b *testing.B, key string, d *srcg.Discovery) {
	b.Helper()
	// Real per-phase nanoseconds, averaged per op: the tracer carried a
	// wall clock and accumulated all b.N iterations.
	phases := obs.PhaseSelfNanos(d.Trace.PhaseSummary())
	for name, ns := range phases {
		phases[name] = ns / float64(b.N)
	}
	names := make([]string, 0, len(phases))
	for name := range phases {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b.ReportMetric(phases[name], name+"_ns")
	}

	out := os.Getenv("SRCG_BENCH_OUT")
	if out == "" {
		return
	}
	res := obs.TrajectoryResult{
		NsPerOp:    float64(b.Elapsed().Nanoseconds()) / float64(b.N),
		Executions: float64(d.Rig.Stats().Executions),
		Attempts:   float64(d.ProbeStats.Attempts),
		Retries:    float64(d.ProbeStats.Retries),
		Solved:     float64(len(d.Outcome.Solved)),
		Phases:     phases,
	}
	benchTrajectory.Lock()
	defer benchTrajectory.Unlock()
	if benchTrajectory.results == nil {
		benchTrajectory.results = map[string]obs.TrajectoryResult{}
	}
	benchTrajectory.results[key] = res
	traj := obs.Trajectory{
		Benchmark:   "BenchmarkDiscoverEndToEnd",
		Description: "fresh run written by SRCG_BENCH_OUT for benchdiff against the committed BENCH_discover.json",
		Runs: []obs.TrajectoryRun{{
			Date:    time.Now().UTC().Format("2006-01-02"),
			Go:      runtime.Version(),
			CPU:     runtime.GOARCH,
			Results: benchTrajectory.results,
		}},
	}
	data, err := json.MarshalIndent(traj, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkDiscoverEndToEnd(b *testing.B) {
	for _, arch := range []string{"x86", "sparc", "mips", "alpha", "vax"} {
		arch := arch
		b.Run(arch+"/clean", func(b *testing.B) {
			// One wall-clock tracer for all iterations: real time enters
			// through clock injection at this edge only, and the phase
			// breakdown divides out b.N afterwards.
			tr := obs.New(obs.NewWallClock())
			var last *srcg.Discovery
			for i := 0; i < b.N; i++ {
				t := srcg.NewTarget(arch)
				d, err := srcg.Discover(t, srcg.Options{Seed: int64(i) + 1, Trace: tr})
				if err != nil {
					b.Fatal(err)
				}
				last = d
			}
			b.StopTimer()
			b.ReportMetric(float64(last.Rig.Stats().Executions), "executions")
			b.ReportMetric(float64(last.ProbeStats.Attempts), "attempts")
			b.ReportMetric(float64(len(last.Outcome.Solved)), "solved")
			recordBenchResult(b, arch+"/clean", last)
		})
		b.Run(arch+"/parallel8", func(b *testing.B) {
			// Same discovery as clean, fanned over 8 pool workers. The
			// results are byte-identical by the determinism contract; only
			// the wall clock may move.
			tr := obs.New(obs.NewWallClock())
			var last *srcg.Discovery
			for i := 0; i < b.N; i++ {
				t := srcg.NewTarget(arch)
				d, err := srcg.Discover(t, srcg.Options{Seed: int64(i) + 1, Trace: tr, Workers: 8})
				if err != nil {
					b.Fatal(err)
				}
				last = d
			}
			b.StopTimer()
			b.ReportMetric(float64(last.Rig.Stats().Executions), "executions")
			b.ReportMetric(float64(last.ProbeStats.Attempts), "attempts")
			b.ReportMetric(float64(len(last.Outcome.Solved)), "solved")
			recordBenchResult(b, arch+"/parallel8", last)
		})
		b.Run(arch+"/warm", func(b *testing.B) {
			// Warm-cache variant: one discovery outside the timer fills a
			// shared content-addressed cache; the timed iterations rerun the
			// identical discovery (same seed) and replay from it. This is
			// the repeat-run cost the cache exists to eliminate.
			cache := probe.NewCache()
			warmup := srcg.NewTarget(arch)
			if _, err := srcg.Discover(warmup, srcg.Options{Seed: 1, Workers: 8, Cache: cache,
				Trace: obs.New(obs.NewWallClock())}); err != nil {
				b.Fatal(err)
			}
			tr := obs.New(obs.NewWallClock())
			var last *srcg.Discovery
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t := srcg.NewTarget(arch)
				d, err := srcg.Discover(t, srcg.Options{Seed: 1, Trace: tr, Workers: 8, Cache: cache})
				if err != nil {
					b.Fatal(err)
				}
				last = d
			}
			b.StopTimer()
			b.ReportMetric(float64(last.Rig.Stats().Executions), "executions")
			b.ReportMetric(float64(tr.Counter(probe.CtrCacheHits))/float64(b.N), "cache_hits")
			b.ReportMetric(float64(len(last.Outcome.Solved)), "solved")
			recordBenchResult(b, arch+"/warm", last)
		})
		b.Run(arch+"/faulty", func(b *testing.B) {
			tr := obs.New(obs.NewWallClock())
			var last *srcg.Discovery
			for i := 0; i < b.N; i++ {
				t := faulty.New(srcg.NewTarget(arch),
					faulty.Config{Seed: int64(i) + 7, Rate: 0.10, Noise: 0.10})
				d, err := srcg.Discover(t, srcg.Options{Seed: int64(i) + 1, Trace: tr})
				if err != nil {
					b.Fatal(err)
				}
				last = d
			}
			b.StopTimer()
			b.ReportMetric(float64(last.Rig.Stats().Executions), "executions")
			b.ReportMetric(float64(last.ProbeStats.Attempts), "attempts")
			b.ReportMetric(float64(last.ProbeStats.Retries), "retries")
			b.ReportMetric(float64(len(last.Outcome.Solved)), "solved")
			recordBenchResult(b, arch+"/faulty", last)
		})
	}
}

// BenchmarkRetargetedCompile measures compiling and running a program
// through a generated back end (the inner loop of a self-retargeted
// compiler), excluding the one-time discovery.
// BenchmarkDiscoverFullShape measures discovery with the complete §3
// operand-shape sample set (105 samples, the paper's scale) on one CISC
// and one RISC target.
func BenchmarkDiscoverFullShape(b *testing.B) {
	for _, arch := range []string{"x86", "mips"} {
		arch := arch
		b.Run(arch, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t := srcg.NewTarget(arch)
				d, err := srcg.Discover(t, srcg.Options{Seed: int64(i) + 1, Full: true})
				if err != nil {
					b.Fatal(err)
				}
				if len(d.Outcome.Failed) != 0 {
					b.Fatalf("failed samples: %v", d.Outcome.Failed)
				}
				if i == b.N-1 {
					b.ReportMetric(float64(len(d.Outcome.Solved)), "solved")
				}
			}
		})
	}
}

func BenchmarkRetargetedCompile(b *testing.B) {
	for _, arch := range []string{"x86", "sparc"} {
		arch := arch
		b.Run(arch, func(b *testing.B) {
			d, err := benchSuite.Discovered(arch)
			if err != nil {
				b.Fatal(err)
			}
			t := srcg.NewTarget(arch)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, r := range d.Validate(t, srcg.ValidationSuite[:2]) {
					if !r.OK {
						b.Fatalf("%s: %v", r.Program, r.Err)
					}
				}
			}
		})
	}
}
