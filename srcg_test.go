package srcg_test

import (
	"strings"
	"testing"

	"srcg"
)

func TestTargetRegistry(t *testing.T) {
	names := srcg.TargetNames()
	if strings.Join(names, ",") != "alpha,mips,sparc,vax,x86" {
		t.Errorf("TargetNames = %v", names)
	}
	for _, n := range names {
		if srcg.NewTarget(n).Name() != n {
			t.Errorf("target %q misnamed", n)
		}
	}
	if _, err := srcg.LookupTarget("pdp11"); err == nil {
		t.Error("unknown target must fail")
	}
}

// TestFacadeDiscovery is the README quick-start, verified.
func TestFacadeDiscovery(t *testing.T) {
	tgt := srcg.NewTarget("x86")
	d, err := srcg.Discover(tgt, srcg.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	report := d.Report()
	for _, want := range []string{"registers:", "imm range:", "solved"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
	results := d.Validate(tgt, srcg.ValidationSuite)
	for _, r := range results {
		if !r.OK {
			t.Errorf("validation %s failed: %v", r.Program, r.Err)
		}
	}
}
