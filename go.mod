module srcg

go 1.22
