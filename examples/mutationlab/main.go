// Mutationlab demonstrates each mutation analysis of the paper's §4 on the
// figures' own scenarios: redundant-instruction elimination on the Alpha
// (Fig. 6), delay-slot normalization and implicit call arguments on the
// SPARC (Figs. 4a/4c), live-range splitting of the x86's reused %eax
// (Figs. 4b/7), definition/use classification (Fig. 9), and the hidden
// hi/lo channel of the MIPS (§7.1).
package main

import (
	"fmt"
	"math/rand"
	"os"

	"srcg"
	"srcg/internal/discovery"
	"srcg/internal/gen"
	"srcg/internal/lexer"
	"srcg/internal/mutate"
)

func analyze(name, sample string) (*mutate.Engine, *mutate.Analysis) {
	t := srcg.NewTarget(name)
	rig := discovery.NewRig(t)
	samples, err := gen.Samples(gen.Config{Rand: rand.New(rand.NewSource(1))})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	model, err := lexer.Bootstrap(rig, samples)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	engine := mutate.New(rig, model, rand.New(rand.NewSource(2)))
	for _, s := range samples {
		if s.Name == sample {
			a, err := engine.Analyze(s)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			return engine, a
		}
	}
	panic("no such sample " + sample)
}

func show(a *mutate.Analysis) {
	for i, ins := range a.Region {
		tags := ""
		if a.Filler[i] {
			tags += " (filler inserted by the preprocessor)"
		}
		if a.Slotted[i] {
			tags += " (has a delay slot)"
		}
		fmt.Printf("  %2d: %s%s\n", i, ins, tags)
	}
}

func main() {
	fmt.Println("== Fig. 6: redundant-instruction elimination (alpha, a = b << c) ==")
	_, a := analyze("alpha", "int.shl.b_c")
	show(a)
	fmt.Printf("  removed %d redundant instruction(s) (the canonicalizing addl $n,0,$n)\n\n", len(a.Removed))

	fmt.Println("== Figs. 4a/4c: delay slots and implicit call arguments (sparc, a = b * c) ==")
	e, a := analyze("sparc", "int.mul.b_c")
	show(a)
	for g := range a.Groups {
		ins := a.GroupInstr(g)
		if ins.Op == "call" {
			fmt.Printf("  call group %d: reads %v, defines %v (implicit %%o0/%%o1 arguments)\n",
				g, regsAt(a.Reads, g), regsAt(a.Defs, g))
		}
	}
	fmt.Println()

	fmt.Println("== Figs. 4b/7: live-range splitting (x86, a = P2(b, c)) ==")
	e, a = analyze("x86", "int.call.b_c")
	show(a)
	for _, r := range e.SplitLiveRanges(a, "%eax") {
		fmt.Printf("  %%eax range at instructions %v, contains its definition: %v\n", r.Refs, r.Valid)
	}
	fmt.Println()

	fmt.Println("== Fig. 9: definition/use classification (x86, a = b * c) ==")
	e, a = analyze("x86", "int.mul.b_c")
	show(a)
	for _, r := range e.SplitLiveRanges(a, "%edx") {
		uses := e.ClassifyRefs(a, r)
		for i, ref := range r.Refs {
			fmt.Printf("  %%edx at instruction %d: %s\n", ref, uses[i])
		}
	}
	fmt.Println()

	fmt.Println("== §7.1: hidden-register communication (mips, a = b / c) ==")
	_, a = analyze("mips", "int.div.b_c")
	show(a)
	for _, h := range a.Hidden {
		fmt.Printf("  hidden channel: group %d (%s) -> group %d (%s)\n",
			h.From, a.GroupInstr(h.From).Op, h.To, a.GroupInstr(h.To).Op)
	}
}

func regsAt(m map[string][]int, g int) []string {
	var out []string
	for reg, gs := range m {
		for _, x := range gs {
			if x == g {
				out = append(out, reg)
			}
		}
	}
	return out
}
