// Selfretarget: the paper's Fig. 1 scenario as a library user would run
// it. The compiler `ac` is pointed at a SPARC it has never seen; the
// discovery unit learns the machine, the back-end generator produces a
// code generator from the synthesized description, and two programs (gcd
// and fibonacci) are compiled, executed on the simulated machine, and
// checked against the reference interpreter.
package main

import (
	"fmt"
	"os"

	"srcg"
	"srcg/internal/asm"
	"srcg/internal/beg"
	"srcg/internal/cc"
	"srcg/internal/ir"
)

var programs = []struct{ name, src string }{
	{"gcd", `
int gcd(int a, int b) { while (b != 0) { int t; t = a % b; a = b; b = t; } return a; }
main() { printf("%i\n", gcd(20448, 2841)); exit(0); }`},
	{"fib", `
int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
main() { int i; i = 1; while (i < 11) { printf("%i\n", fib(i)); i = i + 1; } exit(0); }`},
}

func main() {
	t := srcg.NewTarget("sparc")
	fmt.Println("discovering the sparc architecture...")
	d, err := srcg.Discover(t, srcg.Options{Seed: 1})
	if err != nil || d.SpecErr != nil {
		fmt.Fprintln(os.Stderr, err, d.SpecErr)
		os.Exit(1)
	}
	fmt.Printf("done: %d instruction semantics, %d samples solved, cost %s\n\n",
		len(d.Ext.Sems), len(d.Outcome.Solved), d.Rig.Stats())

	backend := beg.New(d.Spec)
	for _, p := range programs {
		unit, err := cc.CompileUnit(p.src)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		text, err := backend.Compile(unit)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		u, err := t.Assemble(text)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		img, err := t.Link([]*asm.Unit{u})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		got, err := t.Execute(img)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		want, _ := ir.Eval(unit)
		status := "MISMATCH"
		if got == want {
			status = "matches the reference interpreter"
		}
		fmt.Printf("%s on sparc: %s\n%s", p.name, status, got)
	}
}
