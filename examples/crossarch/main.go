// Crossarch reproduces the paper's §7.2 status table: the discovery unit
// runs against all five simulated architectures and reports, per machine,
// the discovered syntax, register count, extracted semantics, validation
// outcome of the generated back end, and the toolchain interaction cost.
package main

import (
	"fmt"
	"os"

	"srcg"
)

func main() {
	fmt.Printf("%-6s %4s %5s %7s %6s %9s %10s\n",
		"arch", "regs", "sems", "samples", "valid", "mutations", "executions")
	for _, name := range srcg.TargetNames() {
		t := srcg.NewTarget(name)
		d, err := srcg.Discover(t, srcg.Options{Seed: 1})
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		valid := 0
		if d.Spec != nil {
			for _, r := range d.Validate(t, srcg.ValidationSuite) {
				if r.OK {
					valid++
				}
			}
		}
		fmt.Printf("%-6s %4d %5d %4d/%-2d %4d/%-2d %9d %10d\n",
			name, len(d.Model.Registers), len(d.Ext.Sems),
			len(d.Outcome.Solved), len(d.Outcome.Solved)+len(d.Outcome.Failed),
			valid, len(srcg.ValidationSuite),
			d.Rig.Stats().Mutations, d.Rig.Stats().Executions)
	}
	fmt.Println("\n(the paper, §7.2: \"tested on the integer instruction sets of five")
	fmt.Println(" machines ... shown to generate (almost) correct machine specifications\")")
}
