// Extensions demonstrates the two knobs this reproduction adds beyond the
// paper, both reachable through the public API:
//
//   - Options.SignedShifts admits a signed-count shift primitive to the
//     reverse interpreter, making the VAX's bidirectional ashl — the
//     limitation the paper reports in §5.2.3 — expressible (E19).
//   - Options.NoVariants strips the extra hidden-value valuations from
//     every sample, degrading discovery to the paper's literal
//     single-Init observation model; the generated back end then
//     miscompiles or refuses most of the validation suite (E20).
package main

import (
	"fmt"
	"os"

	"srcg"
)

func run(t srcg.Target, opts srcg.Options) (solved, failed, valid int, gaps []string) {
	d, err := srcg.Discover(t, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if d.Spec != nil {
		gaps = d.Spec.Gaps
		for _, r := range d.Validate(t, srcg.ValidationSuite) {
			if r.OK {
				valid++
			}
		}
	}
	return len(d.Outcome.Solved), len(d.Outcome.Failed), valid, gaps
}

func main() {
	n := len(srcg.ValidationSuite)

	fmt.Println("-- VAX: the paper's ashl limitation vs the SignedShifts extension")
	s, f, v, g := run(srcg.NewTarget("vax"), srcg.Options{Seed: 1})
	fmt.Printf("%-24s solved=%-3d failed=%-2d validated=%d/%d gaps=%v\n", "paper primitives", s, f, v, n, g)
	s, f, v, g = run(srcg.NewTarget("vax"), srcg.Options{Seed: 1, SignedShifts: true})
	fmt.Printf("%-24s solved=%-3d failed=%-2d validated=%d/%d gaps=%v\n", "with signed shifts", s, f, v, n, g)

	fmt.Println("\n-- x86: why samples carry several hidden-value valuations")
	s, f, v, _ = run(srcg.NewTarget("x86"), srcg.Options{Seed: 1})
	fmt.Printf("%-24s solved=%-3d failed=%-2d validated=%d/%d\n", "with variants", s, f, v, n)
	s, f, v, _ = run(srcg.NewTarget("x86"), srcg.Options{Seed: 1, NoVariants: true})
	fmt.Printf("%-24s solved=%-3d failed=%-2d validated=%d/%d\n", "single valuation", s, f, v, n)
}
