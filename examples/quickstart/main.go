// Quickstart: discover the architecture of a simulated x86 machine and
// print everything the unit learned — assembler syntax, registers,
// immediate ranges, and instruction semantics (paper Fig. 2 end to end).
package main

import (
	"fmt"
	"os"

	"srcg"
)

func main() {
	t := srcg.NewTarget("x86")
	d, err := srcg.Discover(t, srcg.Options{Seed: 1})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Print(d.Report())
	if d.Spec != nil {
		fmt.Println("\nintermediate-operation coverage (instructions per operation):")
		for op, n := range d.Spec.Coverage() {
			fmt.Printf("  %-10s %d\n", op, n)
		}
	}
}
